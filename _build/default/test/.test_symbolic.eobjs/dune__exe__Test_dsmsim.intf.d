test/test_dsmsim.mli:
