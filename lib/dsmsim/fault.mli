(** Seeded, deterministic fault injection for communication schedules.

    Perturbs a {!Comm.schedule} the way a lossy interconnect would:
    each message is independently {e dropped} (never arrives),
    {e duplicated} (arrives twice - benign for correctness, priced by
    the simulator), or {e truncated} (arrives without its tail cells),
    with configurable per-message rates driven by a private PRNG seeded
    from [spec.seed] - the same spec on the same schedule always yields
    the same corruption, so failing runs replay exactly.

    A bounded retry discipline can be layered on top: a dropped or
    truncated message is retransmitted up to [retries] times (each
    resend faces the same fault rates), and {!Exec} charges each
    attempt an exponential-backoff startup penalty.  Corruption that
    survives the retry budget is reported in {!stats} and is what
    {!Validate} provably flags as stale reads. *)

type spec = {
  seed : int;
  drop : float;  (** per-message loss probability in [0,1] *)
  dup : float;  (** per-message duplication probability *)
  trunc : float;  (** per-message truncation probability *)
}

val spec : ?drop:float -> ?dup:float -> ?trunc:float -> seed:int -> unit -> spec
(** All rates default to 0; rates are clamped to [0,1]. *)

val parse : string -> (spec, string) result
(** Accepts [SEED:RATE] (drop-only) or [SEED:DROP:DUP:TRUNC]. *)

val to_string : spec -> string

type retry = {
  src : int;
  dst : int;
  words : int;  (** words of the original (intact) message *)
  attempts : int;  (** resends performed (1..retries) *)
  recovered : bool;  (** false when the retry budget was exhausted *)
}

type stats = {
  messages : int;  (** messages in the original schedule *)
  dropped : int;  (** lost for good (after retries, if any) *)
  duplicated : int;
  truncated : int;  (** delivered with missing tail, for good *)
  recovered : int;  (** faulted messages made whole by a resend *)
  retries : retry list;  (** one record per faulted message that was retried *)
}

val total_attempts : stats -> int
(** Total resend attempts across all retried messages. *)

val unrecovered : stats -> int
(** [dropped + truncated]: corruption that survived the retry budget. *)

val apply : spec -> ?retries:int -> Comm.schedule -> Comm.schedule * stats
(** The delivered schedule: dropped messages removed, duplicated ones
    repeated, truncated ones shortened to their first half (a one-word
    message truncates to a drop); [retries] (default 0) bounds the
    resends granted to each dropped/truncated message.  Events whose
    messages all vanish are removed entirely. *)
