(** Upper limits and memory gaps (paper, Sec. 4.2, Fig. 8).

    [UL(I^k(X,i))] is the farthest address of the sub-region that
    iteration [i] touches; the {e memory gap} [h^k] is the number of
    addresses skipped between the region of iteration [i] and that of
    iteration [i+1].  Both are the symbolic building blocks of the
    balanced locality condition: for an ID whose rows all advance in
    the positive direction, [UL(I,i,p) + h = tau_min + (i+p)*delta_P - 1]
    is linear in the chunk size [p]. *)

open Symbolic

val lower_limit : Assume.t -> Id.t -> i:Expr.t -> Expr.t option
(** Probed minimum, over rows, of the region start at iteration [i]. *)

val upper_limit : Assume.t -> Id.t -> i:Expr.t -> Expr.t option
(** Probed maximum, over rows, of the region end at iteration [i]. *)

val upper_limit_chunk : Assume.t -> Id.t -> i:Expr.t -> p:Expr.t -> Expr.t option
(** [UL(I, i, p)]: farthest address over the chunk of [p] consecutive
    iterations starting at [i] (the probed max of the two endpoint
    iterations, covering decreasing rows). *)

val memory_gap : Id.t -> Expr.t option
(** [h^k >= 0]; [None] when rows are incomparable or the phase has no
    parallel loop. *)
