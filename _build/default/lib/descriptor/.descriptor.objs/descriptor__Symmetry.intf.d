lib/descriptor/symmetry.mli: Expr Format Id Symbolic
