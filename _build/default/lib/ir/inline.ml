open Symbolic
open Types

type actual = { target : string; base : Expr.t }

type subroutine = {
  sub_name : string;
  formals : array_decl list;
  body : phase list;
}

type call = {
  sub : subroutine;
  bindings : (string * actual) list;
  tag : string;
}

exception Bad_call of string

let expand (c : call) : phase list =
  let formal_dims name =
    List.find_opt (fun (f : array_decl) -> String.equal f.name name) c.sub.formals
  in
  let rewrite_ref (r : array_ref) : array_ref =
    match formal_dims r.array with
    | None -> r (* caller global, untouched *)
    | Some f -> (
        match List.assoc_opt r.array c.bindings with
        | None -> raise (Bad_call ("unbound formal " ^ r.array ^ " in " ^ c.sub.sub_name))
        | Some actual ->
            (* storage-sequence association: the formal's multi-dim view
               linearizes into the actual's flat section *)
            let flat =
              Expr.add actual.base (Linearize.address ~dims:f.dims r.index)
            in
            { array = actual.target; index = [ flat ]; access = r.access })
  in
  let rec rewrite_stmt = function
    | Assign a -> Assign { a with refs = List.map rewrite_ref a.refs }
    | Loop l -> Loop { l with body = List.map rewrite_stmt l.body }
  in
  List.map
    (fun (ph : phase) ->
      match rewrite_stmt (Loop ph.nest) with
      | Loop nest -> { phase_name = c.tag ^ "_" ^ ph.phase_name; nest }
      | Assign _ -> assert false)
    c.sub.body

let program_with_calls ?(repeats = false) ~name ~params ~arrays items =
  (* Every call target must be flat (rank 1) in the caller. *)
  let phases =
    List.concat_map
      (function
        | `Phase ph -> [ ph ]
        | `Call c ->
            List.iter
              (fun (_, (a : actual)) ->
                match
                  List.find_opt
                    (fun (d : array_decl) -> String.equal d.name a.target)
                    arrays
                with
                | Some d when List.length d.dims = 1 -> ()
                | Some _ ->
                    raise
                      (Bad_call
                         (a.target ^ " must be declared flat to be passed by section"))
                | None -> raise (Bad_call ("undeclared actual " ^ a.target)))
              c.bindings;
            expand c)
      items
  in
  { prog_name = name; params; arrays; phases; repeats }
