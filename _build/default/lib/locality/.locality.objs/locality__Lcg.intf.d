lib/locality/lcg.mli: Balance Descriptor Env Expr Format Id Intra Ir Pd Symbolic Symmetry Table1
