lib/descriptor/symmetry.ml: Access_mix Env Expr Format Hashtbl Id Ir List Option Pd Probe String Symbolic
