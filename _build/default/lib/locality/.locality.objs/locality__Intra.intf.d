lib/locality/intra.mli: Descriptor Id Ir Symmetry
