(** Markdown analysis report: everything the pipeline knows about a
    program, in one human-readable document - LCG (with a Graphviz
    source block), constraint model, solved distribution, communication
    schedule summary, simulated efficiency vs. the BLOCK baseline, and
    the dataflow-validation verdict. *)

val markdown : Pipeline.t -> string
val print : Format.formatter -> Pipeline.t -> unit
