examples/full_compiler.mli:
