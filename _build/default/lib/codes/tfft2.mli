(** The paper's running example: an 8-phase section of TFFT2 (NASA
    benchmark), Figures 1 and 6.

    Only phase F3 (CFFTZWORK) is given in source form by the paper
    (Fig. 1); the other seven are reconstructed so that the analysis
    derives exactly the locality/load-balance/storage constraint system
    of Table 2 for array X and the balanced-locality systems of
    Eqs. 4-6 and Fig. 9:

    - F1 [DO_100_RCFFTZ]  (par P*Q): X read in pairs, Y written with a
      shifted copy at distance P*Q (Delta_d^12 = PQ).
    - F2 [TRANSA]         (par P):   X written by columns of a P x 2Q
      matrix (yields Eq. 4's [p2 + 2QP - P] term), Y read in Q-blocks
      with the +PQ copy (p12 = Q p22, Delta_d^22 = PQ).
    - F3 [CFFTZWORK]      (par Q):   the verbatim Fig. 1 nest on X
      (non-affine 2^(L-1) subscripts), plus a per-iteration workspace
      region of Y (privatizable: written before read, dead after).
    - F4 [TRANSC]         (par Q):   X read back in [2Pi .. 2Pi+P-1]
      blocks (p31 = p41, Fig. 9), Y overwritten transposed (the C edge
      into F5).
    - F5 [CMULTF]         (par P):   Y read in 2Q-blocks, X written in
      2Q-blocks (P p41 = Q p51).
    - F6 [CFFTZWORK]      (par P):   Y workspace written then read, X
      written in 2Q-blocks (p51 = p61).
    - F7 [TRANSB]         (par P):   X read in 2Q-blocks (p61 = p71).
    - F8 [DO_110_RCFFTZ]  (par P*Q): X and Y accessed four ways -
      [m], [m+PQ] (shifted, Delta_d = PQ) and the reversed
      [PQ-1-m], [2PQ-1-m] (Delta_r ~ PQ and 2PQ), giving
      2Q p71 = p81 and the storage constraints of Table 2.

    Both arrays have 2*P*Q elements; P = 2^p and Q = 2^q are the
    benchmark's input parameters. *)

open Symbolic
open Ir.Types

val params : Assume.t
(** p in 2..6, q in 1..5, P = 2^p, Q = 2^q. *)

val phase_f3 : phase
(** Figure 1 verbatim (X references only). *)

val fig1_program : program
(** A single-phase program holding {!phase_f3} - the Fig. 2/3/4/8
    object of study. *)

val program : program
(** The full 8-phase pipeline of Fig. 6 / Table 2. *)

val phase_names : string list

val env : p:int -> q:int -> Env.t
(** Concrete parameter environment: binds p, q, P, Q. *)
