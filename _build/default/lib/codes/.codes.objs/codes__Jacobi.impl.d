lib/codes/jacobi.ml: Assume Env Expr Ir Symbolic
