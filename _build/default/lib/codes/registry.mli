(** The benchmark registry: the six codes of the evaluation, with a
    uniform way to obtain a concrete parameter environment from one
    size knob. *)

open Symbolic
open Ir.Types

type entry = {
  name : string;
  program : program;
  env_of_size : int -> Env.t;
      (** interprets the knob per code: TFFT2 takes [p = q = size]
          (array 2*4^size), grid codes take [N = 2^size] *)
  default_size : int;
}

val all : entry list
val find : string -> entry
(** @raise Not_found for unknown names. *)

val names : string list
