test/test_descriptor.mli:
