(** Intra-phase locality: Theorem 1.

    All accesses of a parallel iteration to array X are local to the
    processor executing it (given the iteration's ID region is placed
    in that processor's memory) iff one of:

    (a) X is privatizable in the phase;
    (b) X is non-privatizable and the phase has no overlapping storage
        for X (consecutive iterations touch disjoint sub-regions);
    (c) X is non-privatizable, overlapping storage exists, but the
        shared cells are only {e read} (replicated overlap sub-regions
        never need updating).  The implementation checks sharing at
        cell granularity - an in-place red/black sweep whose writes
        land outside the shared cells still satisfies (c). *)

open Descriptor

type case = Privatizable | No_overlap | Overlap_read_only | Fails

type verdict = { local : bool; case : case }

val check : ?sym:Symmetry.t -> attr:Ir.Liveness.attr -> Id.t -> verdict
val case_to_string : case -> string
