open Symbolic
open Types

let rec subst_stmt v by = function
  | Assign a ->
      Assign
        { a with
          refs =
            List.map
              (fun r -> { r with index = List.map (Expr.subst v by) r.index })
              a.refs
        }
  | Loop l ->
      Loop
        { l with
          lo = Expr.subst v by l.lo;
          hi = Expr.subst v by l.hi;
          step = Expr.subst v by l.step;
          body = List.map (subst_stmt v by) l.body;
        }

let rec loop (l : loop) : loop =
  let body = List.map stmt l.body in
  let is_trivial =
    Expr.is_zero l.lo && (match Expr.to_int l.step with Some 1 -> true | _ -> false)
  in
  if is_trivial then { l with body }
  else
    (* v_old = lo + step * v_new, trip count = floor((hi-lo)/step) + 1. *)
    let replacement = Expr.add l.lo (Expr.mul l.step (Expr.var l.var)) in
    let hi' = Expr.floor_div (Expr.sub l.hi l.lo) l.step in
    {
      l with
      lo = Expr.zero;
      hi = hi';
      step = Expr.one;
      body = List.map (subst_stmt l.var replacement) body;
    }

and stmt = function Assign a -> Assign a | Loop l -> Loop (loop l)

let phase ph = { ph with nest = loop ph.nest }
let program p = { p with phases = List.map phase p.phases }
