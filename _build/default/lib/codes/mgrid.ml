open Symbolic
open Ir.Build

let params = Assume.of_list [ ("N", Assume.Int_range (16, 256)) ]

let nN = var "N"

let phase_smooth_fine =
  phase "SMOOTHF"
    (doall "i" ~lo:(int 1) ~hi:((int 2 * nN) - int 2)
       [
         assign ~work:4
           [
             read "FINE" [ var "i" - int 1 ];
             read "FINE" [ var "i" ];
             read "FINE" [ var "i" + int 1 ];
             write "FTMP" [ var "i" ];
           ];
       ])

let phase_restrict =
  phase "RESTRICT"
    (doall "i" ~lo:(int 1) ~hi:(nN - int 2)
       [
         assign ~work:4
           [
             read "FTMP" [ (int 2 * var "i") - int 1 ];
             read "FTMP" [ int 2 * var "i" ];
             read "FTMP" [ (int 2 * var "i") + int 1 ];
             write "COARSE" [ var "i" ];
           ];
       ])

let phase_smooth_coarse =
  phase "SMOOTHC"
    (doall "i" ~lo:(int 1) ~hi:(nN - int 2)
       [
         assign ~work:4
           [
             read "COARSE" [ var "i" - int 1 ];
             read "COARSE" [ var "i" ];
             read "COARSE" [ var "i" + int 1 ];
             write "CTMP" [ var "i" ];
           ];
       ])

let phase_prolong =
  phase "PROLONG"
    (doall "i" ~lo:(int 1) ~hi:(nN - int 2)
       [
         assign ~work:6
           [
             read "CTMP" [ var "i" ];
             read "CTMP" [ var "i" + int 1 ];
             read "FTMP" [ int 2 * var "i" ];
             read "FTMP" [ (int 2 * var "i") + int 1 ];
             write "FINE" [ int 2 * var "i" ];
             write "FINE" [ (int 2 * var "i") + int 1 ];
           ];
       ])

let program =
  program ~repeats:true ~name:"mgrid" ~params
    ~arrays:
      [
        array "FINE" [ int 2 * nN ];
        array "FTMP" [ int 2 * nN ];
        array "COARSE" [ nN ];
        array "CTMP" [ nN ];
      ]
    [ phase_smooth_fine; phase_restrict; phase_smooth_coarse; phase_prolong ]

let env ~n = Env.of_list [ ("N", n) ]
