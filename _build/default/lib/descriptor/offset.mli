(** Offset adjustment (paper, Sec. 2.1).

    Expresses the region of each PD relative to [tau_min], the smallest
    offset any phase uses for the array, via the adjust distance
    [R^k = floor((tau_1^k - tau_min) / delta_1^k)] - the number of
    parallel-stride steps separating phase k's first sub-region from
    the array base.  Inter-phase comparisons of upper limits are made
    in this common frame. *)

open Symbolic

val min_offset : Pd.t -> Expr.t option
(** Smallest row offset across the PD's groups (probed order);
    [None] for an empty PD. *)

val tau_min : Pd.t list -> Expr.t option
(** Smallest offset across several same-array PDs. *)

val adjust_distance : Pd.t -> tau_min:Expr.t -> Expr.t option
(** [R^k] for one phase's PD: [floor((tau_1 - tau_min) / delta_par)].
    [None] when the PD has no parallel stride or is empty. *)
