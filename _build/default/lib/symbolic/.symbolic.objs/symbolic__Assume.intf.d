lib/symbolic/assume.mli: Env Expr Format Random
