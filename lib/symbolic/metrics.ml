(* Process-wide registry of named counters, timers, histograms and
   cache statistics.  Cells are created on first use and live for the
   whole process; [reset] zeroes the numbers but keeps the cells, so a
   handle obtained at module-initialization time stays valid across
   resets (the profiling drivers reset between kernels). *)

type counter = { c_name : string; mutable count : int }

type timer = {
  t_name : string;
  mutable calls : int;
  mutable seconds : float;
  mutable depth : int;  (* reentrancy guard: only the outermost call times *)
}

type histogram = {
  h_name : string;
  mutable n : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

type cache = { k_name : string; mutable hits : int; mutable misses : int }

type cell =
  | Counter of counter
  | Timer of timer
  | Histogram of histogram
  | Cache of cache

let registry : (string, cell) Hashtbl.t = Hashtbl.create 64

(* Creation order, so reports are stable and grouped the way the cells
   were introduced rather than in hash order. *)
let order : string list ref = ref []

let find_or_create name make =
  match Hashtbl.find_opt registry name with
  | Some c -> c
  | None ->
      let c = make () in
      Hashtbl.add registry name c;
      order := name :: !order;
      c

let mismatch name = invalid_arg ("Metrics: cell kind mismatch for " ^ name)

let counter name =
  match
    find_or_create name (fun () -> Counter { c_name = name; count = 0 })
  with
  | Counter c -> c
  | _ -> mismatch name

let timer name =
  match
    find_or_create name (fun () ->
        Timer { t_name = name; calls = 0; seconds = 0.0; depth = 0 })
  with
  | Timer t -> t
  | _ -> mismatch name

let histogram name =
  match
    find_or_create name (fun () ->
        Histogram
          { h_name = name; n = 0; sum = 0.0; min_v = infinity; max_v = neg_infinity })
  with
  | Histogram h -> h
  | _ -> mismatch name

let cache name =
  match
    find_or_create name (fun () -> Cache { k_name = name; hits = 0; misses = 0 })
  with
  | Cache c -> c
  | _ -> mismatch name

let incr ?(by = 1) c = c.count <- c.count + by
let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v

let now = Unix.gettimeofday

let with_timer t f =
  t.calls <- t.calls + 1;
  if t.depth > 0 then begin
    (* Recursive entry: count the call but let the outer frame own the
       wall clock, otherwise recursion double-bills. *)
    t.depth <- t.depth + 1;
    Fun.protect ~finally:(fun () -> t.depth <- t.depth - 1) f
  end
  else begin
    t.depth <- 1;
    let t0 = now () in
    Fun.protect
      ~finally:(fun () ->
        t.seconds <- t.seconds +. (now () -. t0);
        t.depth <- t.depth - 1)
      f
  end

let add_time t s =
  t.calls <- t.calls + 1;
  t.seconds <- t.seconds +. s

let hit c = c.hits <- c.hits + 1
let miss c = c.misses <- c.misses + 1

let lookups c = c.hits + c.misses

let hit_rate c =
  let n = lookups c in
  if n = 0 then 0.0 else float_of_int c.hits /. float_of_int n

(* ------------------------------------------------------------------ *)
(* Memo-table clearers.  The caches themselves live with their owning
   modules (Probe, Range, Phase, Region); they register a flush
   callback here so tests and the profiling drivers can force a cold
   start without knowing every table. *)

let clearers : (unit -> unit) list ref = ref []
let register_clearer f = clearers := f :: !clearers
let clear_caches () = List.iter (fun f -> f ()) !clearers

let reset () =
  Hashtbl.iter
    (fun _ -> function
      | Counter c -> c.count <- 0
      | Timer t ->
          t.calls <- 0;
          t.seconds <- 0.0
      | Histogram h ->
          h.n <- 0;
          h.sum <- 0.0;
          h.min_v <- infinity;
          h.max_v <- neg_infinity
      | Cache c ->
          c.hits <- 0;
          c.misses <- 0)
    registry

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type snapshot = {
  counters : (string * int) list;
  timers : (string * (int * float)) list;  (** calls, seconds *)
  histograms : (string * (int * float * float * float)) list;
      (** n, sum, min, max *)
  caches : (string * (int * int)) list;  (** hits, misses *)
}

let snapshot () =
  let names = List.rev !order in
  let pick f = List.filter_map f names in
  {
    counters =
      pick (fun n ->
          match Hashtbl.find_opt registry n with
          | Some (Counter c) -> Some (n, c.count)
          | _ -> None);
    timers =
      pick (fun n ->
          match Hashtbl.find_opt registry n with
          | Some (Timer t) -> Some (n, (t.calls, t.seconds))
          | _ -> None);
    histograms =
      pick (fun n ->
          match Hashtbl.find_opt registry n with
          | Some (Histogram h) -> Some (n, (h.n, h.sum, h.min_v, h.max_v))
          | _ -> None);
    caches =
      pick (fun n ->
          match Hashtbl.find_opt registry n with
          | Some (Cache c) -> Some (n, (c.hits, c.misses))
          | _ -> None);
  }

let pp_table ppf (s : snapshot) =
  let line fmt = Format.fprintf ppf fmt in
  if s.timers <> [] then begin
    line "%-28s %10s %14s %12s@," "timer" "calls" "total ms" "ms/call";
    List.iter
      (fun (n, (calls, sec)) ->
        line "%-28s %10d %14.3f %12.5f@," n calls (1000. *. sec)
          (if calls = 0 then 0.0 else 1000. *. sec /. float_of_int calls))
      s.timers
  end;
  if s.caches <> [] then begin
    line "%-28s %10s %10s %12s@," "cache" "hits" "misses" "hit rate";
    List.iter
      (fun (n, (h, m)) ->
        let total = h + m in
        line "%-28s %10d %10d %11.1f%%@," n h m
          (if total = 0 then 0.0 else 100. *. float_of_int h /. float_of_int total))
      s.caches
  end;
  if s.counters <> [] then begin
    line "%-28s %10s@," "counter" "value";
    List.iter (fun (n, v) -> line "%-28s %10d@," n v) s.counters
  end;
  if s.histograms <> [] then begin
    line "%-28s %10s %14s %12s %12s@," "histogram" "n" "mean" "min" "max";
    List.iter
      (fun (n, (cnt, sum, mn, mx)) ->
        if cnt = 0 then line "%-28s %10d %14s %12s %12s@," n 0 "-" "-" "-"
        else
          line "%-28s %10d %14.3f %12.3f %12.3f@," n cnt
            (sum /. float_of_int cnt)
            mn mx)
      s.histograms
  end

let report () = Format.asprintf "@[<v>%a@]" pp_table (snapshot ())

(* ------------------------------------------------------------------ *)
(* JSON rendering - hand-rolled so the registry stays dependency-free.
   Only cell names reach string positions; escape the JSON specials. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* NaN / infinities are not JSON numbers; map them to null. *)
let json_float f =
  if Float.is_nan f || not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let json_obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> "\"" ^ json_escape k ^ "\":" ^ v) fields) ^ "}"

let to_json (s : snapshot) =
  json_obj
    [
      ( "timers",
        json_obj
          (List.map
             (fun (n, (calls, sec)) ->
               ( n,
                 json_obj
                   [
                     ("calls", string_of_int calls);
                     ("seconds", json_float sec);
                   ] ))
             s.timers) );
      ( "caches",
        json_obj
          (List.map
             (fun (n, (h, m)) ->
               let total = h + m in
               ( n,
                 json_obj
                   [
                     ("hits", string_of_int h);
                     ("misses", string_of_int m);
                     ( "hit_rate",
                       json_float
                         (if total = 0 then 0.0
                          else float_of_int h /. float_of_int total) );
                   ] ))
             s.caches) );
      ( "counters",
        json_obj (List.map (fun (n, v) -> (n, string_of_int v)) s.counters) );
      ( "histograms",
        json_obj
          (List.map
             (fun (n, (cnt, sum, mn, mx)) ->
               ( n,
                 json_obj
                   [
                     ("n", string_of_int cnt);
                     ("sum", json_float sum);
                     ("min", json_float (if cnt = 0 then 0.0 else mn));
                     ("max", json_float (if cnt = 0 then 0.0 else mx));
                   ] ))
             s.histograms) );
    ]
