open Symbolic
open Ir.Build

let params = Assume.of_list [ ("N", Assume.Int_range (8, 64)) ]

let nN = var "N"

let grid r c = (r + (nN * c) : Expr.t)

let phase_sweep =
  phase "SWEEP"
    (doall "c" ~lo:(int 1) ~hi:(nN - int 2)
       [
         do_ "r" ~lo:(int 1) ~hi:(nN - int 2)
           [
             assign ~work:5
               [
                 read "U" [ grid (var "r") (var "c" - int 1) ];
                 read "U" [ grid (var "r") (var "c" + int 1) ];
                 read "U" [ grid (var "r" - int 1) (var "c") ];
                 read "U" [ grid (var "r" + int 1) (var "c") ];
                 read "U" [ grid (var "r") (var "c") ];
                 write "V" [ grid (var "r") (var "c") ];
               ];
           ];
       ])

let phase_copy =
  phase "COPY"
    (doall "c" ~lo:(int 1) ~hi:(nN - int 2)
       [
         do_ "r" ~lo:(int 1) ~hi:(nN - int 2)
           [
             assign ~work:1
               [
                 read "V" [ grid (var "r") (var "c") ];
                 write "U" [ grid (var "r") (var "c") ];
               ];
           ];
       ])

let program =
  program ~repeats:true ~name:"jacobi2d" ~params
    ~arrays:[ array "U" [ nN * nN ]; array "V" [ nN * nN ] ]
    [ phase_sweep; phase_copy ]

let env ~n = Env.of_list [ ("N", n) ]
