open Symbolic
open Ir

type dim = {
  alpha : Expr.t;
  stride : Expr.t;
  sign : int;
  vars : string list;
  uniform : bool;
}

type t = {
  array : string;
  dims : dim list;
  offset : Expr.t;
  mix : Access_mix.t;
  exact : bool;
  phi : Expr.t;
  par_var : string option;
}

exception Unsupported

let span d = Expr.mul (Expr.sub d.alpha Expr.one) d.stride

let dim_key (d : dim) =
  Artifact.Key.(
    list
      [
        expr d.alpha;
        expr d.stride;
        int d.sign;
        list (List.map str d.vars);
        bool d.uniform;
      ])

let key (t : t) =
  Artifact.Key.(
    list
      [
        str t.array;
        list (List.map dim_key t.dims);
        expr t.offset;
        list [ bool t.mix.Access_mix.reads; bool t.mix.Access_mix.writes ];
        bool t.exact;
        expr t.phi;
        opt str t.par_var;
      ])

let digest t = Artifact.Key.hash (key t)

let invariant_dim v =
  { alpha = Expr.one; stride = Expr.zero; sign = 1; vars = [ v ]; uniform = true }

let whole_array (ctx : Phase.t) ~array ~size ~mix =
  {
    array;
    dims =
      [ { alpha = size; stride = Expr.one; sign = 1; vars = []; uniform = true } ];
    offset = Expr.zero;
    mix;
    exact = false;
    phi = Expr.zero;
    par_var = Option.map (fun (l : Phase.loop_info) -> l.var) ctx.par;
  }

(* One dimension of the descriptor: the contribution of loop [v] to the
   subscript [phi]. *)
let dim_of_loop (ctx : Phase.t) (site : Phase.site) v =
  if not (List.mem v site.enclosing) then invariant_dim v
  else
    let phi = site.phi in
    let raw = Expr.sub (Expr.subst v (Expr.add (Expr.var v) Expr.one) phi) phi in
    if Expr.is_zero raw then invariant_dim v
    else begin
      (* A stride may legitimately evaluate to zero on degenerate
         samples (J * 2^(L-1) at J = 0): direction is decided by the
         non-negative / non-positive envelope. *)
      let sign =
        if Probe.nonneg ctx.assume raw then 1
        else if Probe.nonneg ctx.assume (Expr.neg raw) then -1
        else raise Unsupported
      in
      let hi =
        match
          List.find_opt (fun (l : Phase.loop_info) -> String.equal l.var v) ctx.loops
        with
        | Some l -> l.hi
        | None -> raise Unsupported
      in
      let reach =
        Expr.sub (Expr.subst v hi phi) (Expr.subst v Expr.zero phi)
      in
      let alpha = Expr.add (Expr.div reach raw) Expr.one in
      let stride = if sign >= 0 then raw else Expr.neg raw in
      (* The stride may depend on its own index (paper's J*2^(L-1) in
         TFFT2): the LMAD is then symbolic rather than rectangular; the
         [uniform] flag lets consumers that need rectangularity (region
         expansion, upper limits) insist on it. *)
      { alpha; stride; sign; vars = [ v ]; uniform = not (Expr.mem_var v raw) }
    end

let of_site (ctx : Phase.t) (site : Phase.site) : t =
  let array = site.ref_.array in
  let mix = Access_mix.of_access site.ref_.access in
  let par_var = Option.map (fun (l : Phase.loop_info) -> l.var) ctx.par in
  try
    let dims =
      List.map (fun (l : Phase.loop_info) -> dim_of_loop ctx site l.var) ctx.loops
    in
    (* A non-uniform stride is tolerable on sequential dims (coalescing
       and range reasoning handle them - TFFT2's J*2^(L-1)), but the
       parallel dim drives every linear-in-i formula downstream:
       tau_B(i) = tau + i*delta_P.  A subscript whose own-iteration
       stride varies (e.g. quadratic in the parallel index) has no such
       form - fall back to the whole-array descriptor. *)
    (match par_var with
    | Some v ->
        List.iter2
          (fun (l : Phase.loop_info) (d : dim) ->
            if String.equal l.var v && not d.uniform then raise Unsupported)
          ctx.loops dims
    | None -> ());
    (* Offset: phi at all loop lows (0 after normalization). *)
    let offset =
      List.fold_left
        (fun e (l : Phase.loop_info) -> Expr.subst l.var Expr.zero e)
        site.phi ctx.loops
    in
    (* Normalize sequential dims to positive direction: a descending dim
       covers [tau - span, tau]; shift the offset down and flip. *)
    let offset = ref offset in
    let dims =
      List.map
        (fun d ->
          let is_par = match par_var with Some v -> List.mem v d.vars | None -> false in
          if d.sign < 0 && not is_par then begin
            offset := Expr.sub !offset (span d);
            { d with sign = 1 }
          end
          else d)
        dims
    in
    { array; dims; offset = !offset; mix; exact = true; phi = site.phi; par_var }
  with Unsupported ->
    let decl = Types.array_decl ctx.prog site.ref_.array in
    whole_array ctx ~array ~size:(Linearize.size ~dims:decl.dims) ~mix

let par_dim t =
  match t.par_var with
  | None -> None
  | Some v -> List.find_opt (fun d -> List.mem v d.vars) t.dims

let seq_dims t =
  List.filter
    (fun d ->
      (not (Expr.is_zero d.stride))
      &&
      match t.par_var with
      | Some v -> not (List.mem v d.vars)
      | None -> true)
    t.dims

let pp ppf t =
  let pp_dim ppf d =
    Format.fprintf ppf "(a=%a, d=%a%s)" Expr.pp d.alpha Expr.pp d.stride
      (if t.exact && d.sign < 0 then ", -" else "")
  in
  Format.fprintf ppf "%s%s[%a] + %a : %a" t.array
    (if t.exact then "" else "?")
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_dim)
    t.dims Expr.pp t.offset Access_mix.pp t.mix
