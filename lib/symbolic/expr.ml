(* Hash-consed symbolic expressions.  Every [t] is interned: the [node]
   (canonical sum-of-monomials payload) lives in a global weak-ish table
   keyed by shallow structure, so within one intern generation two
   structurally equal expressions are the *same* record.  [equal] is a
   physical check with a hash-gated structural fallback (the fallback
   only fires for duplicates that survive an [intern_reset], e.g.
   registry programs built before a pool worker reset); [compare] keeps
   the exact ordering of the pre-interning structural compare so every
   sorted artifact (symmetry distance lists, golden snapshots) is
   byte-identical to before. *)

type t = { id : int; hash : int; node : node }

and node = (mono * Qnum.t) list
and mono = (atom * int) list

and atom =
  | Var of string
  | Pow2 of t
  | Floor_div of t * t
  | Ceil_div of t * t
  | Opaque_div of t * t

exception Non_integral of string

let id e = e.id
let digest e = e.hash

(* ------------------------------------------------------------------ *)
(* Hashing: structural and bottom-up (children contribute their cached
   [hash] field), so a digest is deterministic across processes and
   intern generations - it depends only on the mathematical term, never
   on id assignment order. *)

let mix h k = (((h * 0x01000193) lxor k) land max_int : int)

let hash_atom = function
  | Var v -> mix 3 (Hashtbl.hash v)
  | Pow2 e -> mix 5 e.hash
  | Floor_div (a, b) -> mix 7 (mix a.hash b.hash)
  | Ceil_div (a, b) -> mix 11 (mix a.hash b.hash)
  | Opaque_div (a, b) -> mix 13 (mix a.hash b.hash)

let hash_mono (m : mono) =
  List.fold_left (fun h (a, k) -> mix (mix h (hash_atom a)) k) 17 m

let hash_node (n : node) =
  List.fold_left (fun h (m, c) -> mix (mix h (hash_mono m)) (Hashtbl.hash c)) 19 n

(* ------------------------------------------------------------------ *)
(* Ordering.  [compare] replicates the pre-interning [Stdlib.compare]
   order on the underlying structure (constructor declaration order,
   lexicographic lists, num-then-den on rationals) but short-circuits on
   physical equality at every node, which is the overwhelmingly common
   case once terms are interned. *)

let compare_q (a : Qnum.t) (b : Qnum.t) =
  let c = Int.compare a.Qnum.num b.Qnum.num in
  if c <> 0 then c else Int.compare a.Qnum.den b.Qnum.den

let rec compare a b = if a == b then 0 else compare_node a.node b.node

and compare_node (a : node) (b : node) =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (ma, ca) :: ta, (mb, cb) :: tb ->
      let c = compare_mono ma mb in
      if c <> 0 then c
      else
        let c = compare_q ca cb in
        if c <> 0 then c else compare_node ta tb

and compare_mono (a : mono) (b : mono) =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (aa, ka) :: ta, (ab, kb) :: tb ->
      let c = compare_atom aa ab in
      if c <> 0 then c
      else
        let c = Int.compare ka kb in
        if c <> 0 then c else compare_mono ta tb

and compare_atom (a : atom) (b : atom) =
  match (a, b) with
  | Var x, Var y -> String.compare x y
  | Var _, _ -> -1
  | _, Var _ -> 1
  | Pow2 x, Pow2 y -> compare x y
  | Pow2 _, _ -> -1
  | _, Pow2 _ -> 1
  | Floor_div (x1, y1), Floor_div (x2, y2) ->
      let c = compare x1 x2 in
      if c <> 0 then c else compare y1 y2
  | Floor_div _, _ -> -1
  | _, Floor_div _ -> 1
  | Ceil_div (x1, y1), Ceil_div (x2, y2) ->
      let c = compare x1 x2 in
      if c <> 0 then c else compare y1 y2
  | Ceil_div _, _ -> -1
  | _, Ceil_div _ -> 1
  | Opaque_div (x1, y1), Opaque_div (x2, y2) ->
      let c = compare x1 x2 in
      if c <> 0 then c else compare y1 y2

let equal a b = a == b || (a.hash = b.hash && compare_node a.node b.node = 0)
let equal_atom a b = compare_atom a b = 0

(* Reference ordering for the test suite: the same structural walk with
   no physical shortcuts anywhere.  [compare]/[equal] must agree with it
   on every input - qcheck pins that down. *)
let rec structural_compare a b = s_node a.node b.node

and s_node (a : node) (b : node) =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (ma, ca) :: ta, (mb, cb) :: tb ->
      let c = s_mono ma mb in
      if c <> 0 then c
      else
        let c = compare_q ca cb in
        if c <> 0 then c else s_node ta tb

and s_mono (a : mono) (b : mono) =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (aa, ka) :: ta, (ab, kb) :: tb ->
      let c = s_atom aa ab in
      if c <> 0 then c
      else
        let c = Int.compare ka kb in
        if c <> 0 then c else s_mono ta tb

and s_atom (a : atom) (b : atom) =
  match (a, b) with
  | Var x, Var y -> String.compare x y
  | Var _, _ -> -1
  | _, Var _ -> 1
  | Pow2 x, Pow2 y -> structural_compare x y
  | Pow2 _, _ -> -1
  | _, Pow2 _ -> 1
  | Floor_div (x1, y1), Floor_div (x2, y2) ->
      let c = structural_compare x1 x2 in
      if c <> 0 then c else structural_compare y1 y2
  | Floor_div _, _ -> -1
  | _, Floor_div _ -> 1
  | Ceil_div (x1, y1), Ceil_div (x2, y2) ->
      let c = structural_compare x1 x2 in
      if c <> 0 then c else structural_compare y1 y2
  | Ceil_div _, _ -> -1
  | _, Ceil_div _ -> 1
  | Opaque_div (x1, y1), Opaque_div (x2, y2) ->
      let c = structural_compare x1 x2 in
      if c <> 0 then c else structural_compare y1 y2

let structural_equal a b = structural_compare a b = 0

(* ------------------------------------------------------------------ *)
(* The intern table. *)

module Tbl = Hashtbl.Make (struct
  type nonrec t = node

  (* Shallow in spirit: children are compared through [compare], which
     physical-shortcuts on same-generation interned subterms. *)
  let equal a b = compare_node a b = 0
  let hash = hash_node
end)

let intern_stats = Metrics.cache "expr.intern"
let table : t Tbl.t = Tbl.create 4096
let next_id = ref 0

let intern (node : node) : t =
  match Tbl.find_opt table node with
  | Some e ->
      Metrics.hit intern_stats;
      e
  | None ->
      Metrics.miss intern_stats;
      incr next_id;
      let e = { id = !next_id; hash = hash_node node; node } in
      Tbl.add table node e;
      e

let intern_size () = Tbl.length table

(* ------------------------------------------------------------------ *)
(* Constructors.  The algebra below works on raw [node] lists and
   interns at the public boundary. *)

let zero : t = intern []
let q c : t = if Qnum.is_zero c then zero else intern [ ([], c) ]
let int n = q (Qnum.of_int n)
let one = int 1
let var v : t = intern [ ([ (Var v, 1) ], Qnum.one) ]
let is_zero e = match e.node with [] -> true | _ -> false

(* [intern_reset] clears the table (so a forked worker or a fresh batch
   job starts with a bounded, history-free intern state) but keeps the
   id counter monotonic: ids are never reused, so expressions created
   before the reset can safely coexist with expressions created after -
   [equal]/[compare] fall back to structure for such cross-generation
   duplicates.  The module-level constants are re-seeded so they keep
   their canonical identity. *)
let intern_reset () =
  Tbl.reset table;
  List.iter (fun e -> Tbl.replace table e.node e) [ zero; one ]

let to_q e =
  match e.node with
  | [] -> Some Qnum.zero
  | [ ([], c) ] -> Some c
  | _ -> None

let to_int e =
  match to_q e with
  | Some c when Qnum.is_integer c -> Some (Qnum.to_int c)
  | _ -> None

let const_part e =
  match List.assoc_opt [] e.node with Some c -> c | None -> Qnum.zero

(* Merge two sorted term lists, combining coefficients. *)
let add_n (a : node) (b : node) : node =
  let rec go a b =
    match (a, b) with
    | [], r | r, [] -> r
    | (ma, ca) :: ta, (mb, cb) :: tb ->
        let c = compare_mono ma mb in
        if c < 0 then (ma, ca) :: go ta b
        else if c > 0 then (mb, cb) :: go a tb
        else
          let s = Qnum.add ca cb in
          if Qnum.is_zero s then go ta tb else (ma, s) :: go ta tb
  in
  go a b

let scale_n c (e : node) : node =
  if Qnum.is_zero c then [] else List.map (fun (m, k) -> (m, Qnum.mul c k)) e

let add a b = intern (add_n a.node b.node)
let scale c e = intern (scale_n c e.node)
let neg e = scale Qnum.minus_one e
let sub a b = add a (neg b)
let sum es = List.fold_left add zero es

(* [split_const e] = (constant integer part, residue) used to normalize
   Pow2 exponents: 2^(L-1) --> (1/2) * 2^L. Only the integer part of the
   constant is extracted so exponents stay integral. *)
let split_const (e : node) : int * node =
  let c = match List.assoc_opt [] e with Some c -> c | None -> Qnum.zero in
  if Qnum.is_zero c then (0, e)
  else
    let k = Qnum.floor c in
    if k = 0 then (0, e) else (k, add_n e [ ([], Qnum.of_int (-k)) ])

let norm_count = Metrics.counter "expr.norm"

(* Build a normalized monomial*coefficient from a raw atom^exp listing.
   All Pow2 atoms are fused: their exponents are summed (weighted by the
   integer power) and any constant part of the sum moves into the
   coefficient. *)
let norm_factors (factors : (atom * int) list) (coeff : Qnum.t) : node =
  Metrics.incr norm_count;
  let pow2_exp = ref [] in
  let others = ref [] in
  List.iter
    (fun (a, k) ->
      if k <> 0 then
        match a with
        | Pow2 e -> pow2_exp := add_n !pow2_exp (scale_n (Qnum.of_int k) e.node)
        | a -> others := (a, k) :: !others)
    factors;
  let kconst, residue = split_const !pow2_exp in
  let coeff = Qnum.mul coeff (Qnum.pow2 kconst) in
  let others =
    match residue with
    | [] -> !others
    | _ -> (Pow2 (intern residue), 1) :: !others
  in
  (* Combine duplicate atoms by summing exponents; the factor lists are
     tiny, so an association list with robust atom equality beats a
     polymorphic hash table (which could miss cross-generation
     duplicates). *)
  let combined = ref [] in
  List.iter
    (fun (a, k) ->
      match List.find_opt (fun (a', _) -> equal_atom a a') !combined with
      | Some (_, r) -> r := !r + k
      | None -> combined := (a, ref k) :: !combined)
    others;
  let mono =
    List.filter_map (fun (a, r) -> if !r = 0 then None else Some (a, !r))
      (List.rev !combined)
  in
  let mono = List.sort (fun (a, _) (b, _) -> compare_atom a b) mono in
  if Qnum.is_zero coeff then [] else [ (mono, coeff) ]

let mul_term (ma, ca) (mb, cb) : node = norm_factors (ma @ mb) (Qnum.mul ca cb)

let mul_n (a : node) (b : node) : node =
  List.fold_left
    (fun acc ta ->
      List.fold_left (fun acc tb -> add_n acc (mul_term ta tb)) acc b)
    [] a

let mul a b = intern (mul_n a.node b.node)
let prod es = List.fold_left mul one es

let pow2 (e : t) : t =
  match to_q e with
  | Some c when Qnum.is_integer c -> q (Qnum.pow2 (Qnum.to_int c))
  | _ -> intern (norm_factors [ (Pow2 e, 1) ] Qnum.one)

(* Divide term-wise by a single monomial: subtract exponents. *)
let div_by_mono (e : node) (dm : mono) (dc : Qnum.t) : node =
  let inv_factors = List.map (fun (a, k) -> (a, -k)) dm in
  List.fold_left
    (fun acc (m, c) ->
      add_n acc (norm_factors (m @ inv_factors) (Qnum.div c dc)))
    [] e

let div (a : t) (b : t) : t =
  match b.node with
  | [] -> raise Qnum.Division_by_zero
  | [ (dm, dc) ] -> intern (div_by_mono a.node dm dc)
  | _ ->
      if equal a b then one
      else if is_zero a then zero
      else intern (norm_factors [ (Opaque_div (a, b), 1) ] Qnum.one)

(* An expression is provably integer-valued when every coefficient is an
   integer and every atom is integer-valued with non-negative exponent.
   Variables are integers by construction (loop indices / parameters);
   Pow2 is integral only for provably non-negative exponents, which we
   cannot see locally, so Pow2 atoms simply disqualify. *)
let provably_integral (e : node) =
  List.for_all
    (fun (m, c) ->
      Qnum.is_integer c
      && List.for_all
           (fun (a, k) ->
             k >= 0
             &&
             match a with Var _ | Floor_div _ | Ceil_div _ -> true | _ -> false)
           m)
    e

let has_opaque (e : node) =
  List.exists
    (fun (m, _) ->
      List.exists (fun (a, _) -> match a with Opaque_div _ -> true | _ -> false) m)
    e

let floor_div (a : t) (b : t) : t =
  match (to_q a, to_q b) with
  | Some ca, Some cb when not (Qnum.is_zero cb) ->
      int (Qnum.floor (Qnum.div ca cb))
  | _, Some cb when Qnum.equal cb Qnum.one -> a
  | _ ->
      let e = div a b in
      if (not (has_opaque e.node)) && provably_integral e.node then e
      else intern (norm_factors [ (Floor_div (a, b), 1) ] Qnum.one)

let ceil_div (a : t) (b : t) : t =
  match (to_q a, to_q b) with
  | Some ca, Some cb when not (Qnum.is_zero cb) ->
      int (Qnum.ceil (Qnum.div ca cb))
  | _, Some cb when Qnum.equal cb Qnum.one -> a
  | _ ->
      let e = div a b in
      if (not (has_opaque e.node)) && provably_integral e.node then e
      else intern (norm_factors [ (Ceil_div (a, b), 1) ] Qnum.one)

let rec vars_atom acc = function
  | Var v -> v :: acc
  | Pow2 e -> vars_node acc e.node
  | Floor_div (a, b) | Ceil_div (a, b) | Opaque_div (a, b) ->
      vars_node (vars_node acc a.node) b.node

and vars_node acc (e : node) =
  List.fold_left
    (fun acc (m, _) -> List.fold_left (fun acc (a, _) -> vars_atom acc a) acc m)
    acc e

let vars e = List.sort_uniq String.compare (vars_node [] e.node)
let mem_var v e = List.mem v (vars e)

(* Rebuild an expression, mapping variables through [f]. *)
let rec map_vars (f : string -> t) (e : t) : t =
  List.fold_left
    (fun acc (m, c) ->
      let term =
        List.fold_left (fun acc (a, k) -> mul acc (atom_power f a k)) (q c) m
      in
      add acc term)
    zero e.node

and atom_power f a k : t =
  let base =
    match a with
    | Var v -> f v
    | Pow2 e -> pow2 (map_vars f e)
    | Floor_div (x, y) -> floor_div (map_vars f x) (map_vars f y)
    | Ceil_div (x, y) -> ceil_div (map_vars f x) (map_vars f y)
    | Opaque_div (x, y) -> div (map_vars f x) (map_vars f y)
  in
  if k >= 0 then
    let rec pow acc n = if n = 0 then acc else pow (mul acc base) (n - 1) in
    pow one k
  else
    (* Negative power: divide 1 by base^|k|. *)
    let rec pow acc n = if n = 0 then acc else pow (mul acc base) (n - 1) in
    div one (pow one (-k))

let subst v by e = map_vars (fun w -> if String.equal w v then by else var w) e

let subst_env bindings e =
  map_vars
    (fun w -> match List.assoc_opt w bindings with Some b -> b | None -> var w)
    e

let linear_in v (e : t) =
  let uses_v_atom a =
    List.mem v (List.sort_uniq String.compare (vars_atom [] a))
  in
  let rec go a b = function
    | [] -> Some (intern a, intern b)
    | (m, c) :: rest -> (
        let v_factors, others =
          List.partition (fun (at, _) -> uses_v_atom at) m
        in
        match v_factors with
        | [] -> go a (add_n b [ (m, c) ]) rest
        | [ (Var _, 1) ] -> go (add_n a [ (others, c) ]) b rest
        | _ -> None)
  in
  go [] [] e.node

let eval lookup (e : t) =
  let rec eval_n (e : node) =
    List.fold_left
      (fun acc (m, c) ->
        Qnum.add acc
          (List.fold_left (fun acc (a, k) -> Qnum.mul acc (atom_val a k)) c m))
      Qnum.zero e
  and atom_val a k =
    let base =
      match a with
      | Var v -> lookup v
      | Pow2 e ->
          let x = eval_n e.node in
          if not (Qnum.is_integer x) then raise (Non_integral "Pow2 exponent");
          Qnum.pow2 (Qnum.to_int x)
      | Floor_div (x, y) ->
          Qnum.of_int (Qnum.floor (Qnum.div (eval_n x.node) (eval_n y.node)))
      | Ceil_div (x, y) ->
          Qnum.of_int (Qnum.ceil (Qnum.div (eval_n x.node) (eval_n y.node)))
      | Opaque_div (x, y) -> Qnum.div (eval_n x.node) (eval_n y.node)
    in
    let rec pow acc n = if n = 0 then acc else pow (Qnum.mul acc base) (n - 1) in
    if k >= 0 then pow Qnum.one k else Qnum.inv (pow Qnum.one (-k))
  in
  eval_n e.node

let eval_int lookup e =
  let v = eval lookup e in
  if Qnum.is_integer v then Qnum.to_int v
  else raise (Non_integral (Format.asprintf "value %a" Qnum.pp v))

let rec pp ppf e = pp_node ppf e.node

and pp_atom ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Pow2 e -> Format.fprintf ppf "2^(%a)" pp e
  | Floor_div (a, b) -> Format.fprintf ppf "floor(%a / %a)" pp a pp b
  | Ceil_div (a, b) -> Format.fprintf ppf "ceil(%a / %a)" pp a pp b
  | Opaque_div (a, b) -> Format.fprintf ppf "(%a / %a)" pp a pp b

and pp_mono ppf (m : mono) =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "*")
    (fun ppf (a, k) ->
      if k = 1 then pp_atom ppf a else Format.fprintf ppf "%a^%d" pp_atom a k)
    ppf m

and pp_node ppf (e : node) =
  match e with
  | [] -> Format.pp_print_string ppf "0"
  | terms ->
      List.iteri
        (fun i (m, c) ->
          let neg = Qnum.sign c < 0 in
          if i = 0 then (if neg then Format.pp_print_string ppf "-")
          else Format.pp_print_string ppf (if neg then " - " else " + ");
          let c = Qnum.abs c in
          match m with
          | [] -> Qnum.pp ppf c
          | _ ->
              if not (Qnum.equal c Qnum.one) then
                Format.fprintf ppf "%a*" Qnum.pp c;
              pp_mono ppf m)
        terms

let to_string e = Format.asprintf "%a" pp e
