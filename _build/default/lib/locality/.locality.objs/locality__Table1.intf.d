lib/locality/table1.mli: Format Ir
