lib/codes/mgrid.ml: Assume Env Ir Symbolic
