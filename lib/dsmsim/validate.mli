(** Dataflow validation of the communication schedule.

    The simulator ({!Exec}) prices accesses; this module checks
    {e correctness}: replaying the program with versioned memory, it
    verifies that under the plan plus the generated communication
    schedule ({!Comm}), every read observes the value sequential
    execution would produce.

    Model: every (array, address) carries a version incremented by each
    write in sequential program order (the golden trace).  Each
    processor holds its own copy of every address (owners are
    authoritative; ghost replicas go stale when someone else writes).
    Writes update the owner's copy (a remote put) and the writer's own;
    redistribution and frontier messages copy the source processor's
    versions into the destination's replicas, exactly as the schedule
    says.  A read is {e stale} when the copy it is served from (its own
    replica for owned/halo-local reads, the owner's for remote reads)
    does not carry the golden version.

    A zero-stale result certifies that the plan's layout epochs, halo
    widths, copy-in elisions and frontier updates are mutually
    consistent - the property the paper's Theorems 1-2 promise. *)

open Locality

type report = {
  reads : int;
  stale : int;
  stale_examples : (string * int * int) list;
      (** up to 10 (array, addr, phase) witnesses *)
}

val run :
  ?rounds:int ->
  ?on_error:(string -> unit) ->
  ?sched:Comm.schedule ->
  Lcg.t ->
  Ilp.Distribution.plan ->
  report
(** [sched] overrides the generated communication schedule - used to
    demonstrate that omitting messages is detected, and to replay
    fault-injected deliveries ({!Fault.apply}).  [on_error] receives
    schedule-generation diagnostics (see {!Comm.generate}). *)

val ok : report -> bool
(** [stale = 0]. *)

val pp : Format.formatter -> report -> unit
