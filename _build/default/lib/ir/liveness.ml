open Symbolic
open Types

type attr = R | W | RW | P

let equal_attr a b =
  match (a, b) with
  | R, R | W, W | RW, RW | P, P -> true
  | (R | W | RW | P), _ -> false

let attr_to_string = function R -> "R" | W -> "W" | RW -> "R/W" | P -> "P"
let pp_attr ppf a = Format.pp_print_string ppf (attr_to_string a)

let static_attr _prog ph ~array =
  let refs =
    stmt_refs (Loop ph.nest) |> List.filter (fun r -> String.equal r.array array)
  in
  let has k = List.exists (fun r -> equal_access r.access k) refs in
  match (has Read, has Write) with
  | true, true -> RW
  | true, false -> R
  | false, true -> W
  | false, false -> R

let def_before_use prog env ph ~array =
  (* Per parallel iteration, every read must hit a location already
     written by the same iteration. *)
  let written = Hashtbl.create 64 in
  let current = ref None in
  let ok = ref true in
  Enumerate.iter prog env ph ~f:(fun ~par ~array:a ~addr access ~work:_ ->
      if String.equal a array then begin
        if par <> !current then begin
          Hashtbl.reset written;
          current := par
        end;
        match access with
        | Write -> Hashtbl.replace written addr ()
        | Read -> if not (Hashtbl.mem written addr) then ok := false
      end);
  !ok

let dead_after prog env k ~array =
  (* Forward scan over the phases executed after phase k (wrapping once
     when the program repeats): a location written by k is live if some
     later phase reads it before overwriting it. *)
  let exposed = Hashtbl.create 64 in
  (* start: all addresses phase k writes *)
  Enumerate.iter prog env (List.nth prog.phases k) ~f:(fun ~par:_ ~array:a ~addr access ~work:_ ->
      if String.equal a array && equal_access access Write then
        Hashtbl.replace exposed addr ());
  let n = List.length prog.phases in
  let order =
    (* Phases after k in execution order; with repetition the whole
       program runs again, including phase k's predecessors and k itself. *)
    let tail = List.init (n - k - 1) (fun i -> k + 1 + i) in
    if prog.repeats then tail @ List.init (n - List.length tail) (fun i -> i mod n)
    else tail
  in
  let live = ref false in
  List.iter
    (fun g ->
      if (not !live) && Hashtbl.length exposed > 0 then begin
        let killed = Hashtbl.create 64 in
        Enumerate.iter prog env (List.nth prog.phases g)
          ~f:(fun ~par:_ ~array:a ~addr access ~work:_ ->
            if String.equal a array then
              match access with
              | Read ->
                  if Hashtbl.mem exposed addr && not (Hashtbl.mem killed addr)
                  then live := true
              | Write -> Hashtbl.replace killed addr ());
        Hashtbl.iter (fun addr () -> Hashtbl.remove exposed addr) killed
      end)
    order;
  (* A non-repeating program's arrays are outputs: values that survive
     to program exit are live. *)
  (not !live) && (prog.repeats || Hashtbl.length exposed = 0)

let default_envs prog =
  (* Small, deterministic parameter samples. *)
  let st = Random.State.make [| 7; 13; 2029 |] in
  List.init 3 (fun _ -> Assume.sample ~state:st prog.params)

let attr ?envs prog k ~array =
  let ph = List.nth prog.phases k in
  match static_attr prog ph ~array with
  | R -> R
  | W | RW -> (
      let envs = match envs with Some e -> e | None -> default_envs prog in
      let privatizable =
        envs <> []
        && List.for_all
             (fun env ->
               def_before_use prog env ph ~array && dead_after prog env k ~array)
             envs
      in
      if privatizable then P
      else match static_attr prog ph ~array with W -> W | _ -> RW)
  | P -> assert false

let attrs ?envs prog =
  let arrays = List.map (fun (a : array_decl) -> a.name) prog.arrays in
  let envs = match envs with Some e -> e | None -> default_envs prog in
  List.map
    (fun name ->
      ( name,
        Array.init (List.length prog.phases) (fun k -> attr ~envs prog k ~array:name)
      ))
    arrays
