(* Tests for the symbolic expression substrate: Qnum, Expr normal form,
   Probe and Range, exercised on the paper's own TFFT2 expressions. *)

open Symbolic

let expr = Alcotest.testable Expr.pp Expr.equal

let qnum = Alcotest.testable Qnum.pp Qnum.equal

(* Shorthand *)
let v = Expr.var
let i = Expr.int
let ( + ) = Expr.add
let ( - ) = Expr.sub
let ( * ) = Expr.mul
let ( / ) = Expr.div
let p2 = Expr.pow2

(* ------------------------------------------------------------------ *)
(* Qnum *)

let test_qnum_basic () =
  Alcotest.(check qnum) "1/2 + 1/3" (Qnum.make 5 6) (Qnum.add (Qnum.make 1 2) (Qnum.make 1 3));
  Alcotest.(check qnum) "normalization" (Qnum.make 1 2) (Qnum.make (-3) (-6));
  Alcotest.(check int) "floor -7/2" (-4) (Qnum.floor (Qnum.make (-7) 2));
  Alcotest.(check int) "ceil -7/2" (-3) (Qnum.ceil (Qnum.make (-7) 2));
  Alcotest.(check int) "floor 7/2" 3 (Qnum.floor (Qnum.make 7 2));
  Alcotest.(check qnum) "pow2 -3" (Qnum.make 1 8) (Qnum.pow2 (-3));
  Alcotest.(check int) "compare" (-1) (Qnum.compare (Qnum.make 1 3) (Qnum.make 1 2))

let test_qnum_overflow () =
  Alcotest.check_raises "mul overflow" Qnum.Overflow (fun () ->
      ignore (Qnum.mul (Qnum.of_int max_int) (Qnum.of_int 3)));
  Alcotest.check_raises "div by zero" Qnum.Division_by_zero (fun () ->
      ignore (Qnum.make 1 0))

(* Saturation boundaries of the 63-bit integer representation: the
   largest power of two with an exactly-representable square-free
   numerator/denominator is 2^61; max_int itself is 2^62 - 1. *)
let test_qnum_boundaries () =
  Alcotest.(check qnum) "pow2 61" (Qnum.of_int (1 lsl 61)) (Qnum.pow2 61);
  Alcotest.(check qnum) "pow2 -61"
    (Qnum.make 1 (1 lsl 61))
    (Qnum.pow2 (-61));
  Alcotest.check_raises "pow2 62" Qnum.Overflow (fun () ->
      ignore (Qnum.pow2 62));
  Alcotest.check_raises "pow2 -62" Qnum.Overflow (fun () ->
      ignore (Qnum.pow2 (-62)));
  Alcotest.check_raises "add saturates" Qnum.Overflow (fun () ->
      ignore (Qnum.add (Qnum.of_int max_int) Qnum.one));
  Alcotest.check_raises "mul 2^31 * 2^31" Qnum.Overflow (fun () ->
      (* 2^62 exceeds max_int = 2^62 - 1 *)
      ignore (Qnum.mul (Qnum.of_int (1 lsl 31)) (Qnum.of_int (1 lsl 31))));
  (* differing signs cannot overflow *)
  Alcotest.(check qnum) "max_int + min_int" (Qnum.of_int (-1))
    (Qnum.add (Qnum.of_int max_int) (Qnum.of_int min_int));
  Alcotest.(check qnum) "2^30 * 2^31"
    (Qnum.of_int (1 lsl 61))
    (Qnum.mul (Qnum.of_int (1 lsl 30)) (Qnum.of_int (1 lsl 31)))

(* Regression: [compare] used to raise [Overflow] on rationals whose
   cross products exceed Stdlib.max_int.  It now cross-reduces by gcd (exact
   when that fits) and otherwise falls back to sign / floating-point
   comparison - a total order even at the representation boundary. *)
let test_qnum_compare_total () =
  let big = Qnum.of_int Stdlib.max_int in
  let near = Qnum.of_int Stdlib.(max_int - 1) in
  Alcotest.(check int) "Stdlib.max_int vs Stdlib.max_int-1" 1 (Qnum.compare big near);
  Alcotest.(check int) "Stdlib.max_int-1 vs Stdlib.max_int" (-1) (Qnum.compare near big);
  Alcotest.(check int) "Stdlib.max_int vs Stdlib.max_int" 0 (Qnum.compare big big);
  (* gcd cross-reduction: the naive cross products Stdlib.max_int * 3 and
     Stdlib.max_int * 2 overflow, but dividing out gcd(Stdlib.max_int, Stdlib.max_int)
     leaves the exact comparison 3 vs 2 *)
  Alcotest.(check int) "Stdlib.max_int/2 vs Stdlib.max_int/3" 1
    (Qnum.compare (Qnum.make Stdlib.max_int 2) (Qnum.make Stdlib.max_int 3));
  Alcotest.(check int) "Stdlib.max_int/3 vs Stdlib.max_int/3" 0
    (Qnum.compare (Qnum.make Stdlib.max_int 3) (Qnum.make Stdlib.max_int 3));
  (* opposite signs decide on sign alone, no products formed *)
  Alcotest.(check int) "-Stdlib.max_int vs Stdlib.max_int" (-1)
    (Qnum.compare (Qnum.of_int (- Stdlib.max_int)) big);
  (* coprime huge components (gcd(2^62-1, 2^61-1) = 1): the reduced
     cross products still overflow, so the float fallback decides
     ~2.0 vs ~0.5 *)
  let a = Qnum.make Stdlib.max_int Stdlib.((1 lsl 61) - 1) in
  let b = Qnum.make Stdlib.((1 lsl 61) - 1) Stdlib.max_int in
  Alcotest.(check int) "float fallback orders" 1 (Qnum.compare a b);
  Alcotest.(check int) "float fallback antisym" (-1) (Qnum.compare b a);
  (* min/max are built on compare and must not raise either *)
  Alcotest.(check qnum) "min near boundary" near (Qnum.min big near);
  Alcotest.(check qnum) "max near boundary" big (Qnum.max big near)

(* ------------------------------------------------------------------ *)
(* Expr normal form *)

let test_expr_ring () =
  Alcotest.(check expr) "x+y = y+x" (v "x" + v "y") (v "y" + v "x");
  Alcotest.(check expr) "(x+1)^2 expand"
    ((v "x" * v "x") + (i 2 * v "x") + i 1)
    ((v "x" + i 1) * (v "x" + i 1));
  Alcotest.(check expr) "x - x = 0" Expr.zero (v "x" - v "x");
  Alcotest.(check expr) "distribute"
    ((v "a" * v "c") + (v "b" * v "c"))
    ((v "a" + v "b") * v "c")

let test_expr_pow2 () =
  (* 2^(L-1) = (1/2) * 2^L *)
  Alcotest.(check expr) "2^(L-1)"
    (Expr.scale (Qnum.make 1 2) (p2 (v "L")))
    (p2 (v "L" - i 1));
  (* 2^L * 2^(-L) = 1 *)
  Alcotest.(check expr) "2^L * 2^-L" Expr.one (p2 (v "L") * p2 (i 0 - v "L"));
  (* 2^3 = 8 *)
  Alcotest.(check expr) "2^3" (i 8) (p2 (i 3));
  (* 2^(L-1) * 2^(1-L) = 1 *)
  Alcotest.(check expr) "cross" Expr.one (p2 (v "L" - i 1) * p2 (i 1 - v "L"));
  (* 2^(p-1)*J - J  vs (2^p - 2) * 2^-1 * J *)
  Alcotest.(check expr) "tfft2 alpha numerator"
    ((p2 (v "p" - i 1) * v "J") - v "J")
    (Expr.scale (Qnum.make 1 2) ((p2 (v "p") - i 2) * v "J"))

let test_expr_div () =
  Alcotest.(check expr) "x*y / y" (v "x") (v "x" * v "y" / v "y");
  Alcotest.(check expr) "monomial div with pow2"
    (p2 (v "p" - v "L") - p2 (i 1 - v "L"))
    (((p2 (v "p" - i 1) * v "J") - v "J") / (v "J" * p2 (v "L" - i 1)));
  (* multi-term divisor falls back to an opaque atom, but a/a = 1 *)
  Alcotest.(check expr) "self division" Expr.one ((v "x" + i 1) / (v "x" + i 1));
  Alcotest.(check bool) "opaque kept" false
    (Expr.is_zero ((v "x" + v "y") / (v "x" + i 1)))

let test_expr_floor_ceil () =
  Alcotest.(check expr) "floor 7/2" (i 3) (Expr.floor_div (i 7) (i 2));
  Alcotest.(check expr) "ceil 7/2" (i 4) (Expr.ceil_div (i 7) (i 2));
  Alcotest.(check expr) "exact poly quotient"
    (v "x" + i 1)
    (Expr.floor_div ((i 2 * v "x") + i 2) (i 2));
  (* ceil(x/H) stays symbolic *)
  let e = Expr.ceil_div (v "x") (v "H") in
  Alcotest.(check int) "ceil eval"
    3
    (Expr.eval_int (Env.lookup (Env.of_list [ ("x", 9); ("H", 4) ])) e)

let test_expr_subst () =
  (* phi = 2*P*I + 2^(L-1)*J + K; stride wrt L is J*2^(L-1) *)
  let phi = (i 2 * v "P" * v "I") + (p2 (v "L" - i 1) * v "J") + v "K" in
  let stride = Expr.subst "L" (v "L" + i 1) phi - phi in
  Alcotest.(check expr) "tfft2 stride_L" (v "J" * p2 (v "L" - i 1)) stride;
  let stride_i = Expr.subst "I" (v "I" + i 1) phi - phi in
  Alcotest.(check expr) "tfft2 stride_I" (i 2 * v "P") stride_i;
  Alcotest.(check expr) "subst into pow2" (p2 (v "x" + i 2) ) (Expr.subst "L" (v "x" + i 2) (p2 (v "L")))

let test_linear_in () =
  let e = (i 2 * v "P" * v "I") + (p2 (v "L") * v "J") in
  (match Expr.linear_in "I" e with
  | Some (a, b) ->
      Alcotest.(check expr) "coeff" (i 2 * v "P") a;
      Alcotest.(check expr) "rest" (p2 (v "L") * v "J") b
  | None -> Alcotest.fail "linear_in I");
  (match Expr.linear_in "L" e with
  | Some _ -> Alcotest.fail "L occurs inside pow2: nonlinear"
  | None -> ());
  match Expr.linear_in "x" (v "x" * v "x") with
  | Some _ -> Alcotest.fail "quadratic"
  | None -> ()

let test_eval () =
  let env = Env.of_list [ ("P", 8); ("I", 2); ("L", 3); ("J", 1); ("K", 2) ] in
  let phi = (i 2 * v "P" * v "I") + (p2 (v "L" - i 1) * v "J") + v "K" in
  Alcotest.(check int) "phi eval" 38 (Env.eval env phi);
  Alcotest.check_raises "non-integral"
    (Expr.Non_integral "value 1/2")
    (fun () -> ignore (Env.eval env (Expr.scale (Qnum.make 1 2) Expr.one)))

(* ------------------------------------------------------------------ *)
(* Probe *)

let tfft2_assume =
  Assume.of_list
    [
      ("p", Assume.Int_range (2, 6));
      ("q", Assume.Int_range (1, 5));
      ("P", Assume.Pow2_of "p");
      ("Q", Assume.Pow2_of "q");
      ("I", Assume.Expr_range (Expr.zero, v "Q" - i 1));
      ("L", Assume.Expr_range (i 1, v "p"));
      ("J", Assume.Expr_range (Expr.zero, (v "P" * p2 (i 0 - v "L")) - i 1));
      ("K", Assume.Expr_range (Expr.zero, p2 (v "L" - i 1) - i 1));
    ]

let test_probe_equal () =
  Probe.with_seed 42 (fun () ->
      (* (P-2)*2^-L + 1 equals 2^(p-L) - 2^(1-L) + 1 under P = 2^p *)
      let a = ((v "P" - i 2) * p2 (i 0 - v "L")) + i 1 in
      let b = p2 (v "p" - v "L") - p2 (i 1 - v "L") + i 1 in
      Alcotest.(check bool) "paper alpha2 forms" true (Probe.equal tfft2_assume a b);
      Alcotest.(check bool) "not equal" false
        (Probe.equal tfft2_assume a (b + i 1)))

let test_probe_sign_div () =
  Probe.with_seed 43 (fun () ->
      Alcotest.(check (option int)) "J*2^(L-1) nonneg" (Some 1)
        (Probe.sign tfft2_assume ((v "J" * p2 (v "L" - i 1)) + i 1));
      Alcotest.(check bool) "K bound lt P" true
        (Probe.lt tfft2_assume (v "K") (v "P"));
      (* P * 2^-L is integral over the domain (L <= p) *)
      Alcotest.(check bool) "P*2^-L integral" true
        (Probe.integral tfft2_assume (v "P" * p2 (i 0 - v "L")));
      Alcotest.(check bool) "2^(L-1) divides P/2... i.e. P/2 multiple" true
        (Probe.divides tfft2_assume (p2 (v "L" - i 1)) (v "P" * p2 (i 0 - v "L") * p2 (v "L" - i 1))))

let test_probe_constant_in () =
  Probe.with_seed 44 (fun () ->
      Alcotest.(check bool) "P/2 - 1 constant in L" true
        (Probe.constant_in tfft2_assume "L" ((v "P" / i 2) - i 1));
      Alcotest.(check bool) "2^L not constant in L" false
        (Probe.constant_in tfft2_assume "L" (p2 (v "L"))))

(* ------------------------------------------------------------------ *)
(* Range *)

let test_range_tfft2_reach () =
  Probe.with_seed 45 (fun () ->
      (* max over L,J,K of 2^(L-1)*J + K must be P/2 - 1: the key fact
         behind the paper's Fig. 3 coalescing chain. *)
      let e = (p2 (v "L" - i 1) * v "J") + v "K" in
      match Range.maximize tfft2_assume ~over:[ "L"; "J"; "K" ] e with
      | None -> Alcotest.fail "maximize failed"
      | Some m ->
          Alcotest.(check bool) "reach = P/2 - 1" true
            (Probe.equal tfft2_assume m ((v "P" / i 2) - i 1)))

let test_range_monotone () =
  Probe.with_seed 46 (fun () ->
      (match Range.monotonicity tfft2_assume "J" ((p2 (v "L" - i 1) * v "J") + v "K") with
      | `Inc -> ()
      | _ -> Alcotest.fail "J monotone inc");
      (match Range.monotonicity tfft2_assume "L" (p2 (i 0 - v "L")) with
      | `Dec -> ()
      | _ -> Alcotest.fail "2^-L dec");
      match Range.minimize tfft2_assume ~over:[ "K" ] (v "K" + i 5) with
      | Some m -> Alcotest.(check expr) "min K+5" (i 5) m
      | None -> Alcotest.fail "minimize failed")

(* ------------------------------------------------------------------ *)
(* QCheck properties *)

let arb_small_expr =
  (* Random expressions over x,y with small ints, built from +,-,*. *)
  let open QCheck.Gen in
  let leaf =
    oneof [ map Expr.int (int_range (-4) 4); oneofl [ v "x"; v "y" ] ]
  in
  let rec go n =
    if n = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          (2, map2 Expr.add (go (pred n)) (go (pred n)));
          (2, map2 Expr.mul (go (pred n)) (go (pred n)));
          (1, map2 Expr.sub (go (pred n)) (go (pred n)));
        ]
  in
  QCheck.make (go 4) ~print:Expr.to_string

let eval_xy ex ey e = Expr.eval (function
    | "x" -> Qnum.of_int ex
    | "y" -> Qnum.of_int ey
    | v -> failwith v) e

let prop_eval_homomorphic =
  QCheck.Test.make ~name:"normal form preserves value" ~count:300
    (QCheck.triple arb_small_expr (QCheck.int_range (-20) 20) (QCheck.int_range (-20) 20))
    (fun (e, ex, ey) ->
      (* Rebuilding the expression by substituting variables with
         constants must agree with direct evaluation. *)
      let direct = eval_xy ex ey e in
      let substituted =
        Expr.subst "x" (Expr.int ex) e |> Expr.subst "y" (Expr.int ey)
      in
      match Expr.to_q substituted with
      | Some c -> Qnum.equal c direct
      | None -> false)

let prop_add_commutes =
  QCheck.Test.make ~name:"add commutes structurally" ~count:200
    (QCheck.pair arb_small_expr arb_small_expr)
    (fun (a, b) -> Expr.equal (Expr.add a b) (Expr.add b a))

let prop_mul_distributes =
  QCheck.Test.make ~name:"mul distributes structurally" ~count:200
    (QCheck.triple arb_small_expr arb_small_expr arb_small_expr)
    (fun (a, b, c) ->
      Expr.equal (Expr.mul a (Expr.add b c)) (Expr.add (Expr.mul a b) (Expr.mul a c)))

let prop_qnum_field =
  QCheck.Test.make ~name:"qnum field laws" ~count:500
    (QCheck.triple (QCheck.int_range (-50) 50) (QCheck.int_range 1 50) (QCheck.int_range (-50) 50))
    (fun (a, b, c) ->
      let x = Qnum.make a b and y = Qnum.make c b in
      Qnum.equal (Qnum.add x y) (Qnum.add y x)
      && Qnum.equal (Qnum.sub (Qnum.add x y) y) x
      && (Qnum.is_zero x || Qnum.equal (Qnum.div (Qnum.mul x y) x) y))

let test_range_mixed () =
  Probe.with_seed 48 (fun () ->
      (* v*(v-5) is not monotone over 0..6: elimination must refuse
         rather than return a wrong bound *)
      let asm =
        Assume.of_list [ ("v", Assume.Expr_range (i 0, i 6)) ]
      in
      let e = v "v" * (v "v" - i 5) in
      (match Range.monotonicity asm "v" e with
      | `Mixed -> ()
      | _ -> Alcotest.fail "expected mixed monotonicity");
      Alcotest.(check bool) "maximize refuses" true
        (Range.maximize asm ~over:[ "v" ] e = None));
  Probe.with_seed 49 (fun () ->
      (* ... but a monotone expression over the same domain succeeds *)
      let asm = Assume.of_list [ ("v", Assume.Expr_range (i 0, i 6)) ] in
      match Range.maximize asm ~over:[ "v" ] (v "v" * v "v") with
      | Some m -> Alcotest.(check expr) "36" (i 36) m
      | None -> Alcotest.fail "monotone square should maximize")

(* ------------------------------------------------------------------ *)
(* Edge cases *)

let test_expr_corner_cases () =
  (* floor/ceil with symbolic divisor stay symbolic but evaluate *)
  let e = Expr.floor_div (v "x" + i 3) (v "y") in
  let env = Env.of_list [ ("x", 7); ("y", 4) ] in
  Alcotest.(check int) "floor_div eval" 2 (Env.eval env e);
  let c = Expr.ceil_div (v "x" + i 3) (v "y") in
  Alcotest.(check int) "ceil_div eval" 3 (Env.eval env c);
  (* subst reaches inside floor/ceil atoms *)
  let e2 = Expr.subst "x" (i 9) e in
  Alcotest.(check int) "subst into floor" 3
    (Expr.eval_int (Env.lookup (Env.of_list [ ("y", 4) ])) e2);
  (* opaque division cancels syntactically equal args *)
  Alcotest.(check expr) "opaque self" Expr.one
    ((v "a" + v "b") / (v "a" + v "b"));
  (* negative power via division round trip *)
  let r = v "x" * (Expr.one / v "x") in
  Alcotest.(check expr) "x * 1/x" Expr.one r

(* ------------------------------------------------------------------ *)
(* Interning: physical sharing within a generation, stable digests and
   correct equality across an [intern_reset] generation boundary. *)

(* A term mixing every atom kind, rebuilt on demand so the same
   mathematical value can be constructed on either side of a reset. *)
let intern_specimen () =
  let n = v "n" and m = v "m" in
  (p2 n * Expr.floor_div m (i 3 + n)) + Expr.ceil_div (n * m) (i 5) - (m / i 2)

let test_intern_sharing () =
  let a = intern_specimen () and b = intern_specimen () in
  Alcotest.(check bool) "physically shared" true (a == b);
  Alcotest.(check int) "same id" (Expr.id a) (Expr.id b);
  Alcotest.(check int) "same digest" (Expr.digest a) (Expr.digest b);
  Alcotest.(check bool) "intern table non-empty" true
    (Expr.intern_size () > 0)

let test_intern_reset () =
  let a = intern_specimen () in
  let size_before = Expr.intern_size () in
  Expr.intern_reset ();
  Alcotest.(check bool) "table dropped" true
    (Expr.intern_size () < size_before);
  let b = intern_specimen () in
  Alcotest.(check bool) "fresh record after reset" true (not (a == b));
  Alcotest.(check bool) "ids never reused" true (Expr.id b > Expr.id a);
  (* identity survives the generation boundary *)
  Alcotest.(check bool) "equal across generations" true (Expr.equal a b);
  Alcotest.(check int) "compare 0 across generations" 0 (Expr.compare a b);
  Alcotest.(check bool) "structural_equal agrees" true
    (Expr.structural_equal a b);
  Alcotest.(check int) "digest stable across reset" (Expr.digest a)
    (Expr.digest b);
  (* mixed-generation algebra still normalises: old minus new is zero *)
  Alcotest.(check bool) "a - b = 0 across generations" true
    (Expr.is_zero (a - b));
  Alcotest.(check expr) "constants keep canonical identity" Expr.one
    (i 1)

let test_linear_in_with_atoms () =
  (* a ceil atom not involving v is a coefficient like any other *)
  let e = (Expr.ceil_div (v "N") (v "H") * v "t") + i 5 in
  match Expr.linear_in "t" e with
  | Some (a, b) ->
      Alcotest.(check expr) "coeff" (Expr.ceil_div (v "N") (v "H")) a;
      Alcotest.(check expr) "const" (i 5) b
  | None -> Alcotest.fail "linear in t"

let test_assume_set_domain () =
  let asm = tfft2_assume in
  let pinned = Assume.set_domain asm "L" (Assume.Expr_range (i 2, i 2)) in
  Probe.with_seed 47 (fun () ->
      Alcotest.(check bool) "L pinned to 2" true
        (Probe.equal pinned (p2 (v "L")) (i 4)));
  (* unknown vars are appended *)
  let extended = Assume.set_domain asm "Z" (Assume.Int_range (1, 1)) in
  Alcotest.(check bool) "appended" true
    (List.mem "Z" (Assume.vars extended))

let prop_pow2_laws =
  QCheck.Test.make ~name:"2^a * 2^b = 2^(a+b)" ~count:200
    (QCheck.pair (QCheck.int_range (-6) 6) (QCheck.int_range (-6) 6))
    (fun (a, b) ->
      let ea = Expr.add (v "k") (i a) and eb = Expr.sub (i b) (v "k") in
      Expr.equal
        (Expr.mul (p2 ea) (p2 eb))
        (p2 (Expr.add ea eb)))

let prop_subst_compose =
  QCheck.Test.make ~name:"subst composes" ~count:200
    (QCheck.pair arb_small_expr (QCheck.int_range (-9) 9))
    (fun (e, n) ->
      (* substituting y:=n then x:=n equals substituting both at once *)
      let one_by_one = Expr.subst "x" (i n) (Expr.subst "y" (i n) e) in
      let both = Expr.subst_env [ ("x", i n); ("y", i n) ] e in
      Expr.equal one_by_one both)

let prop_qnum_floor_ceil =
  QCheck.Test.make ~name:"floor <= q <= ceil, gap < 1" ~count:500
    (QCheck.pair (QCheck.int_range (-200) 200) (QCheck.int_range 1 50))
    (fun (a, b) ->
      let q = Qnum.make a b in
      let f = Qnum.floor q and c = Qnum.ceil q in
      Qnum.compare (Qnum.of_int f) q <= 0
      && Qnum.compare q (Qnum.of_int c) <= 0
      && Stdlib.(c - f <= 1)
      && Qnum.is_integer q = (f = c))

let () =
  Alcotest.run "symbolic"
    [
      ( "qnum",
        [
          Alcotest.test_case "basic" `Quick test_qnum_basic;
          Alcotest.test_case "overflow" `Quick test_qnum_overflow;
          Alcotest.test_case "boundaries" `Quick test_qnum_boundaries;
          Alcotest.test_case "compare total" `Quick test_qnum_compare_total;
        ] );
      ( "expr",
        [
          Alcotest.test_case "ring" `Quick test_expr_ring;
          Alcotest.test_case "pow2" `Quick test_expr_pow2;
          Alcotest.test_case "div" `Quick test_expr_div;
          Alcotest.test_case "floor/ceil" `Quick test_expr_floor_ceil;
          Alcotest.test_case "subst" `Quick test_expr_subst;
          Alcotest.test_case "linear_in" `Quick test_linear_in;
          Alcotest.test_case "eval" `Quick test_eval;
        ] );
      ( "probe",
        [
          Alcotest.test_case "equal" `Quick test_probe_equal;
          Alcotest.test_case "sign/div" `Quick test_probe_sign_div;
          Alcotest.test_case "constant_in" `Quick test_probe_constant_in;
        ] );
      ( "range",
        [
          Alcotest.test_case "tfft2 reach" `Quick test_range_tfft2_reach;
          Alcotest.test_case "monotonicity" `Quick test_range_monotone;
          Alcotest.test_case "mixed refused" `Quick test_range_mixed;
        ] );
      ( "intern",
        [
          Alcotest.test_case "sharing" `Quick test_intern_sharing;
          Alcotest.test_case "reset" `Quick test_intern_reset;
        ] );
      ( "corner-cases",
        [
          Alcotest.test_case "expr corners" `Quick test_expr_corner_cases;
          Alcotest.test_case "linear_in with atoms" `Quick
            test_linear_in_with_atoms;
          Alcotest.test_case "assume set_domain" `Quick test_assume_set_domain;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_eval_homomorphic; prop_add_commutes; prop_mul_distributes;
            prop_qnum_field; prop_pow2_laws; prop_subst_compose;
            prop_qnum_floor_ceil;
          ] );
    ]
