type spec = { seed : int; drop : float; dup : float; trunc : float }

let clamp r = if r < 0.0 then 0.0 else if r > 1.0 then 1.0 else r

let spec ?(drop = 0.0) ?(dup = 0.0) ?(trunc = 0.0) ~seed () =
  { seed; drop = clamp drop; dup = clamp dup; trunc = clamp trunc }

let parse s =
  let num what v =
    match float_of_string_opt v with
    | Some f when f >= 0.0 && f <= 1.0 -> Ok f
    | _ -> Error (Printf.sprintf "bad %s rate %S (want a float in [0,1])" what v)
  in
  let ( let* ) = Result.bind in
  match String.split_on_char ':' s with
  | [ seed; rate ] | [ seed; rate; ""; "" ] -> (
      match int_of_string_opt seed with
      | None -> Error (Printf.sprintf "bad seed %S" seed)
      | Some seed ->
          let* drop = num "drop" rate in
          Ok (spec ~drop ~seed ()))
  | [ seed; d; u; t ] -> (
      match int_of_string_opt seed with
      | None -> Error (Printf.sprintf "bad seed %S" seed)
      | Some seed ->
          let* drop = num "drop" d in
          let* dup = num "dup" u in
          let* trunc = num "trunc" t in
          Ok (spec ~drop ~dup ~trunc ~seed ()))
  | _ -> Error (Printf.sprintf "bad fault spec %S (want SEED:RATE or SEED:DROP:DUP:TRUNC)" s)

let to_string s =
  Printf.sprintf "%d:%g:%g:%g" s.seed s.drop s.dup s.trunc

type retry = {
  src : int;
  dst : int;
  words : int;
  attempts : int;
  recovered : bool;
}

type stats = {
  messages : int;
  dropped : int;
  duplicated : int;
  truncated : int;
  recovered : int;
  retries : retry list;
}

let total_attempts st =
  List.fold_left (fun acc r -> acc + r.attempts) 0 st.retries

let unrecovered st = st.dropped + st.truncated

type outcome = Intact | Drop | Dup | Trunc

let draw st (s : spec) =
  let u = Random.State.float st 1.0 in
  if u < s.drop then Drop
  else if u < s.drop +. s.dup then Dup
  else if u < s.drop +. s.dup +. s.trunc then Trunc
  else Intact

(* First [k] cells of a message's range list. *)
let rec take_words k = function
  | [] -> []
  | (lo, hi) :: rest ->
      let n = hi - lo + 1 in
      if k <= 0 then []
      else if n <= k then (lo, hi) :: take_words (k - n) rest
      else [ (lo, lo + k - 1) ]

let truncate (m : Comm.message) =
  let keep = m.words / 2 in
  if keep <= 0 then None
  else Some { m with ranges = take_words keep m.ranges; words = keep }

let apply (s : spec) ?(retries = 0) (sched : Comm.schedule) :
    Comm.schedule * stats =
  let rng = Random.State.make [| s.seed; 0x0fa17 |] in
  let messages = ref 0 in
  let dropped = ref 0 and duplicated = ref 0 and truncated = ref 0 in
  let recovered = ref 0 in
  let retry_log = ref [] in
  (* Resolve one message: the delivered copies (possibly none), after
     granting the bounded retry budget to drops and truncations. *)
  let resolve (m : Comm.message) : Comm.message list =
    incr messages;
    match draw rng s with
    | Intact -> [ m ]
    | Dup ->
        incr duplicated;
        [ m; m ]
    | (Drop | Trunc) as first ->
        let rec resend attempt =
          if attempt > retries then `Exhausted
          else
            match draw rng s with
            | Intact | Dup -> `Recovered attempt
            | Drop | Trunc -> resend (attempt + 1)
        in
        let log attempts rec_ =
          if attempts > 0 then
            retry_log :=
              {
                src = m.src;
                dst = m.dst;
                words = m.words;
                attempts;
                recovered = rec_;
              }
              :: !retry_log
        in
        (match resend 1 with
        | `Recovered attempts ->
            incr recovered;
            log attempts true;
            [ m ]
        | `Exhausted ->
            log retries false;
            (match first with
            | Drop ->
                incr dropped;
                []
            | Trunc -> (
                match truncate m with
                | None ->
                    (* a one-word message has no deliverable prefix *)
                    incr dropped;
                    []
                | Some short ->
                    incr truncated;
                    [ short ])
            | Intact | Dup -> assert false))
  in
  let perturb_messages msgs = List.concat_map resolve msgs in
  let delivered =
    List.filter_map
      (fun (e : Comm.event) ->
        match e with
        | Comm.Redistribute r -> (
            match perturb_messages r.messages with
            | [] -> None
            | messages -> Some (Comm.Redistribute { r with messages }))
        | Comm.Frontier f -> (
            match perturb_messages f.messages with
            | [] -> None
            | messages -> Some (Comm.Frontier { f with messages })))
      sched
  in
  ( delivered,
    {
      messages = !messages;
      dropped = !dropped;
      duplicated = !duplicated;
      truncated = !truncated;
      recovered = !recovered;
      retries = List.rev !retry_log;
    } )
