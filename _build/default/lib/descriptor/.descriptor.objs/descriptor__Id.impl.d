lib/descriptor/id.ml: Access_mix Expr Format Ir List Pd Symbolic
