(** Branch-and-bound integer programming on top of {!Lp}.

    Maximizes the (rational) objective over integer points.  Problems
    in this repo have a handful of small-bounded variables, so plain
    most-fractional branching with LP bounds is instantaneous and
    exact. *)

open Symbolic

type outcome =
  | Optimal of { value : Qnum.t; point : int array }
  | Infeasible
  | Unbounded

val solve_budgeted : ?max_nodes:int -> Lp.problem -> outcome * bool
(** All variables are required integer (and >= 0, inherited from
    {!Lp}).  [max_nodes] (default 100_000) guards pathological
    instances: once the budget is spent the search stops expanding and
    returns the incumbent found so far as [Optimal] (or [Infeasible]
    when none), never an exception.  The boolean is true exactly when
    the budget was exhausted, i.e. the outcome may be sub-optimal; the
    pipeline surfaces it as a [SOLVE-BUDGET] warning and falls back to
    the BLOCK baseline plan. *)

val solve : ?max_nodes:int -> Lp.problem -> outcome
(** [solve_budgeted] without the budget flag, for callers that only
    need the (possibly incumbent) outcome. *)
