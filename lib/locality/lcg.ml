open Symbolic
open Descriptor
open Ir

type node = {
  phase_idx : int;
  name : string;
  attr : Liveness.attr;
  pd : Pd.t;
  id : Id.t;
  sym : Symmetry.t;
  intra : Intra.verdict;
  par_n : int;
  par_expr : Expr.t;
  work : int;
}

type edge = {
  src : int;
  dst : int;
  label : Table1.label;
  solution : Balance.solution option;
  relation : Balance.relation option;
  back : bool;
}

type graph = { array : string; nodes : node list; edges : edge list }

type t = { prog : Types.program; env : Env.t; h : int; graphs : graph list }

(* Total abstract work of a phase under the environment: closed form
   from the phase's event shapes, enumerated only as the oracle (or as
   the counted fallback when the phase is outside the fragment). *)
let phase_work prog env ph =
  let enum () =
    let total = ref 0 in
    Enumerate.iter prog env ph ~f:(fun ~par:_ ~array:_ ~addr:_ _ ~work ->
        total := !total + work);
    !total
  in
  match !Lattice.mode with
  | Lattice.Enumerated_only -> enum ()
  | Lattice.Auto | Lattice.Symbolic_only -> (
      match Shape.of_phase prog env ph with
      | Some t -> Shape.total_work t
      | None ->
          Lattice.note_fallback ~stage:"lcg-work"
            ("phase " ^ ph.Types.phase_name ^ " outside affine fragment");
          enum ())

let build_timer = Metrics.timer "lcg.build"
let classify_timer = Metrics.timer "lcg.classify"
let edge_count = Metrics.counter "table1.edges"

let build_raw (prog : Types.program) ~env ~h : t =
  Metrics.with_timer build_timer @@ fun () ->
  let attrs = Liveness.attrs prog ~envs:[ env ] in
  let phase_ctxs =
    List.map (fun ph -> (ph, Phase.analyze prog ph)) prog.phases
  in
  let works =
    List.map (fun (ph, _) -> phase_work prog env ph) phase_ctxs
  in
  let graphs =
    List.map
      (fun (decl : Types.array_decl) ->
        let array = decl.name in
        let attr_row = List.assoc array attrs in
        let nodes =
          List.concat
            (List.mapi
               (fun k ((ph : Types.phase), ctx) ->
                 if List.mem array (Types.phase_arrays ph) then begin
                   let pd = Unionize.simplify (Pd.of_phase ctx ~array) in
                   let id = Id.of_pd pd in
                   let attr = attr_row.(k) in
                   let sym = Symmetry.analyze id in
                   [
                     {
                       phase_idx = k;
                       name = ph.phase_name;
                       attr;
                       pd;
                       id;
                       sym;
                       intra = Intra.check ~sym ~attr id;
                       par_n =
                         (try Env.eval env (Phase.par_count ctx)
                          with Expr.Non_integral _ | Env.Unbound _ -> 1);
                       par_expr = Phase.par_count ctx;
                       work = List.nth works k;
                     };
                   ]
                 end
                 else [])
               phase_ctxs)
        in
        let n = List.length nodes in
        let mk_edge i j back =
          let nk = List.nth nodes i and ng = List.nth nodes j in
          Metrics.incr edge_count;
          let r =
            Metrics.with_timer classify_timer @@ fun () ->
            Inter.label ~env ~h
              {
                attr_k = nk.attr;
                attr_g = ng.attr;
                id_k = nk.id;
                id_g = ng.id;
                sym_k = Some nk.sym;
                sym_g = Some ng.sym;
                nk = nk.par_n;
                ng = ng.par_n;
              }
          in
          (* A degraded (whole-array, inexact) descriptor at either
             endpoint means the regions compared above are conservative
             supersets: an L verdict would be unsound, so force such
             edges to C.  D (privatization un-coupling) stands - it is
             decided by liveness, not by descriptors. *)
          if
            Table1.equal_label r.label Table1.L
            && not (nk.pd.Pd.exact && ng.pd.Pd.exact)
          then
            { src = i; dst = j; label = Table1.C; solution = None;
              relation = None; back }
          else
            {
              src = i;
              dst = j;
              label = r.label;
              solution = r.solution;
              relation = r.relation;
              back;
            }
        in
        let edges =
          if n <= 1 then []
          else
            List.init (n - 1) (fun i -> mk_edge i (i + 1) false)
            @ (if prog.repeats then [ mk_edge (n - 1) 0 true ] else [])
        in
        { array; nodes; edges })
      prog.arrays
  in
  { prog; env; h; graphs }

(* The full graph build (descriptors, symmetry, Table 1 classification)
   is by far the most expensive pipeline stage, and the registry sweep,
   the H-sensitivity scan and the simulator all rebuild the same
   (program, environment, halo) triple.  Edge labels rest on probed
   verdicts, so the store is volatile. *)
let build_memo : t Artifact.store =
  Artifact.store ~capacity:256 ~volatile:true "lcg.graph"

let build (prog : Types.program) ~env ~h : t =
  Artifact.find build_memo
    Artifact.Key.(
      list
        [
          Types.program_key prog;
          int (Env.id env);
          int h;
          (* node works and attrs depend on the accounting mode; keep
             cross-checking runs from sharing entries *)
          int (Lattice.mode_tag ());
        ])
    (fun () -> build_raw prog ~env ~h)

let chains (g : graph) =
  let n = List.length g.nodes in
  if n = 0 then []
  else
    let breaks =
      List.filter_map
        (fun e ->
          if (not e.back) && Table1.equal_label e.label L then None
          else if e.back then None
          else Some e.src)
        g.edges
    in
    let rec go i current acc =
      if i >= n then List.rev (List.rev current :: acc)
      else if List.mem (i - 1) breaks then go (i + 1) [ i ] (List.rev current :: acc)
      else go (i + 1) (i :: current) acc
    in
    go 1 [ 0 ] []

let node_of_phase (g : graph) ~phase_idx =
  List.find_opt (fun n -> n.phase_idx = phase_idx) g.nodes

(* Exact inclusive hull of one parallel iteration's region:
   (max_int, min_int) when empty, mirroring the enumerating fold. *)
let iteration_bounds (t : t) (node : node) par =
  match !Lattice.mode with
  | Lattice.Enumerated_only ->
      let tbl = Region.addresses t.env node.pd ~par:(Some par) in
      Hashtbl.fold (fun a () (lo, hi) -> (min lo a, max hi a)) tbl
        (max_int, min_int)
  | Lattice.Auto | Lattice.Symbolic_only -> (
      (* Hull bounds of a union are always closed-form; Overflow means
         addresses past native range, which enumeration could not
         represent either - degrade the same way. *)
      match Setalg.bounds t.env node.pd ~par:(Some par) with
      | Some b -> b
      | None -> (max_int, min_int))

let halo_raw (t : t) (node : node) =
  match node.sym.overlap with
  | Symmetry.No_overlap -> 0
  | Symmetry.Overlap _ | Symmetry.Overlap_unknown -> (
      try
        let _, ul0 = iteration_bounds t node 0
        and lb1, _ = iteration_bounds t node 1 in
        if ul0 = min_int || lb1 = max_int then 0 else max 0 (ul0 - lb1 + 1)
      with Region.Not_rectangular _ | Expr.Non_integral _ | Env.Unbound _ -> 0)

(* The solver's word-count pricing asks for the same node's halo once
   per enumerated candidate; keyed on the overlap verdict (probed,
   hence volatile) plus the environment and descriptor that determine
   the region bounds. *)
let halo_memo : int Artifact.store =
  Artifact.store ~capacity:4_096 ~volatile:true "lcg.halo"

let overlap_key = function
  | Symmetry.No_overlap -> Artifact.Key.int 0
  | Symmetry.Overlap e -> Artifact.Key.(list [ int 1; expr e ])
  | Symmetry.Overlap_unknown -> Artifact.Key.int 2

let halo (t : t) (node : node) =
  Artifact.find halo_memo
    Artifact.Key.(
      list
        [
          int (Env.id t.env);
          Pd.key node.pd;
          overlap_key node.sym.overlap;
          int (Lattice.mode_tag ());
        ])
    (fun () -> halo_raw t node)

let pp ppf (t : t) =
  Format.fprintf ppf "@[<v>LCG (H=%d, %a)@," t.h Env.pp t.env;
  List.iter
    (fun (g : graph) ->
      Format.fprintf ppf "@[<v 2>array %s:@," g.array;
      List.iteri
        (fun i (nd : node) ->
          let out =
            List.find_opt (fun e -> e.src = i && not e.back) g.edges
          in
          Format.fprintf ppf "%-4s (%s)%s  intra=%s@," nd.name
            (Liveness.attr_to_string nd.attr)
            (match out with
            | Some e ->
                Printf.sprintf "  --%s-->" (Table1.label_to_string e.label)
            | None -> "")
            (Intra.case_to_string nd.intra.case))
        g.nodes;
      Format.fprintf ppf "@]@,")
    t.graphs;
  Format.fprintf ppf "@]"

let region_bounds (t : t) (node : node) ~par =
  try
    let b = iteration_bounds t node par in
    if fst b = max_int then None else Some b
  with Region.Not_rectangular _ | Expr.Non_integral _ | Env.Unbound _ -> None

let to_dot (t : t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph lcg {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n";
  List.iteri
    (fun gi (g : graph) ->
      Buffer.add_string buf
        (Printf.sprintf "  subgraph cluster_%d {\n    label=\"%s\";\n" gi g.array);
      List.iteri
        (fun i (n : node) ->
          Buffer.add_string buf
            (Printf.sprintf "    n%d_%d [label=\"%s (%s)\"];\n" gi i n.name
               (Liveness.attr_to_string n.attr)))
        g.nodes;
      List.iter
        (fun (e : edge) ->
          let style =
            match e.label with
            | Table1.L -> "color=green"
            | Table1.C -> "color=red, penwidth=2"
            | Table1.D -> "style=dashed, color=gray"
          in
          Buffer.add_string buf
            (Printf.sprintf "    n%d_%d -> n%d_%d [label=\"%s\", %s%s];\n" gi
               e.src gi e.dst
               (Table1.label_to_string e.label)
               style
               (if e.back then ", constraint=false" else "")))
        g.edges;
      Buffer.add_string buf "  }\n")
    t.graphs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
