(** Lexer for the surface language (see {!Parse} for the grammar). *)

type token =
  | INT of int
  | IDENT of string
  | KW of string
      (** program / param / pow2 / real / phase / doall / do / end /
          repeat / work / to / step / sub / endsub / call *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CARET  (** exponentiation, [2^e] *)
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | EQUAL
  | DOTDOT
  | NEWLINE
  | EOF

exception Error of { line : int; message : string }

type t

val of_string : string -> t
val peek : t -> token
val next : t -> token
val line : t -> int
val pp_token : Format.formatter -> token -> unit
