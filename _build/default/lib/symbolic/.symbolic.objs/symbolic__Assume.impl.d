lib/symbolic/assume.ml: Env Expr Format List Random String
