lib/ir/types.mli: Assume Expr Format Symbolic
