test/test_codes.ml: Alcotest Codes Core Descriptor Dsmsim Enumerate Ilp Ir Lcg List Liveness Locality Phase Printf Probe String Symbolic Table1 Types
