(** Sharded multi-process batch analysis driver.

    A fixed-size pool of [Unix.fork]ed workers drains a work queue held
    by the parent: jobs travel to workers over per-worker pipes as
    length-prefixed [Marshal] frames, results come back the same way.
    The pool provides the three guarantees the batch surface
    ([dsmloc batch], the bench sweep) is built on:

    - {b Crash isolation}: a worker that dies mid-job (signal, [exit],
      stack overflow) or whose job raises an uncaught exception fails
      only that job.  A crashed worker is reaped and replaced by a
      freshly forked one, and the job is retried ([retries] extra
      attempts, default one) before being reported as [Failed]; the
      batch always runs to completion.
    - {b Deterministic output}: results are indexed (and the [stream]
      callback fired) in submission order regardless of completion
      order or worker count.  Each attempt runs under
      [Probe.with_seed] with a seed derived from the job index alone,
      and from a reset metrics registry with flushed memo caches, so a
      job's result does not depend on which worker ran it or what ran
      before it.
    - {b Observability}: every worker serialises its per-job
      {!Metrics} snapshot over the result pipe with the registry's own
      JSON emitter; the parent parses them back ({!Metrics.of_json})
      and folds them with {!Metrics.merge} into the fleet-wide
      snapshot returned beside the outcomes (counter totals equal the
      sum of the per-job snapshots).

    Jobs and results cross an address-space boundary, so both must be
    marshalable: no closures, no custom blocks.  See DESIGN.md
    section 13 for the wire protocol. *)

type 'r outcome =
  | Done of {
      value : 'r;
      attempts : int;  (** 1 unless earlier attempts were lost *)
      lost : string list;
          (** reasons of the failed attempts that preceded success,
              oldest first (empty on a clean first attempt) *)
      metrics : Metrics.snapshot;
          (** the worker's registry deltas for this job *)
    }
  | Failed of {
      attempts : int;
      reasons : string list;  (** one per attempt, oldest first *)
    }

val map :
  ?workers:int ->
  ?retries:int ->
  ?deadline:float ->
  ?stream:(int -> 'b outcome -> unit) ->
  ?diags:Diag.collector ->
  f:(attempt:int -> 'a -> 'b) ->
  'a list ->
  'b outcome list * Metrics.snapshot
(** [map ~f jobs] analyses every job on a pool of [workers] (default 4,
    clamped to the job count) forked processes and returns the outcomes
    in submission order plus the merged fleet metrics snapshot.

    [f] runs in the worker; [attempt] is 1-based so fault-injection
    hooks can crash a first attempt only.  [retries] is the number of
    extra attempts granted to a job whose attempt crashed or raised
    (default 1: retry once).  A crashed attempt's retry is dispatched
    to the freshly forked replacement worker; an attempt that raised
    (the worker survives) re-enters the queue.

    [deadline] is a per-attempt wall-clock budget in seconds: a worker
    that sits on one job longer is hung (a crash would have surfaced as
    EOF), so it is SIGKILLed and replaced, and the attempt fails with a
    [POOL-DEADLINE] reason through the ordinary retry path - the
    [pool.deadline_kills] counter tracks how often.  Without it a
    non-crashing stuck worker would stall the whole map forever.

    [stream] is called in the parent, in submission order, as the
    completed prefix grows - the CLI uses it to print reports
    incrementally without ever reordering them.

    Every job starts from a reset worker state (metric cells zeroed,
    artifact stores and the expression intern table dropped, probe
    stream seeded from the job index), so results are byte-identical
    whatever the worker count or scheduling order.

    Pipe I/O is EINTR-safe and the marshal frame length is validated
    against a hard cap before allocating: a worker that emits a corrupt
    or oversized frame is killed and its job fails with a
    [POOL-BAD-FRAME] reason (counted in [pool.bad_frames]) instead of
    raising [Out_of_memory] in the parent.

    A worker whose profile JSON does not parse degrades to an empty
    snapshot for that job: the job's value is kept, the
    [pool.profile_bad] counter is bumped, and - when [diags] is
    supplied - a [POOL-PROFILE-BAD] warning is recorded. *)

(** Persistent recycling worker fleet: the long-lived generalisation of
    {!map} that [dsmloc serve] dispatches onto.

    Jobs arrive over time ({!Server.submit}) instead of as one batch;
    admission is bounded (past [queue_cap] queued jobs, [submit] sheds
    with [`Overloaded] instead of growing without bound); workers stay
    {e warm} - no per-job state reset, so interned expressions and
    artifact stores persist across requests and repeated programs hit
    their digests - and are bounded instead by {e recycling}: a worker
    that has served [max_worker_jobs] requests or grown past
    [max_worker_rss_kb] resident is stopped and replaced by a fresh
    fork that starts from clean analysis state ([Metrics.reset],
    [Artifact.clear_all], [Expr.intern_reset]).

    The owner drives the pool from its own [select] loop:
    {!Server.readable_fds} contributes the result-pipe fds,
    {!Server.next_deadline} bounds the timeout, and {!Server.step}
    turns readable fds into completions, expires deadlines, recycles
    and refills workers. *)
module Server : sig
  type ('a, 'b) t

  type 'b completion = {
    c_id : int;  (** the id {!submit} returned *)
    c_outcome : ('b, string * string) result;
        (** [Error (code, reason)] with [code] one of [POOL-DEADLINE]
            (budget expired, queued or in flight; never retried),
            [POOL-WORKER-LOST] (worker died; retried [retries] times
            first), [POOL-BAD-FRAME] (worker emitted a corrupt or
            over-cap result frame), [POOL-RAISED] (the job function
            raised) or [POOL-DRAIN] (shutdown overtook the job) *)
    c_attempts : int;
    c_queued_s : float;  (** time spent in the admission queue *)
    c_ran_s : float;  (** service time of the final attempt *)
    c_worker_jobs : int;
        (** jobs the serving worker has completed since its fork, this
            one included (1 = served cold, >1 = warm) *)
  }

  val create :
    ?workers:int ->
    ?queue_cap:int ->
    ?retries:int ->
    ?max_worker_jobs:int ->
    ?max_worker_rss_kb:int ->
    ?result_cap:int ->
    f:('a -> 'b) ->
    unit ->
    ('a, 'b) t
  (** Fork [workers] (default 4) warm workers running [f] per job.
      Defaults: [queue_cap] 64, [retries] 1 (crashes only),
      [max_worker_jobs] 512, [max_worker_rss_kb] 1 GiB, [result_cap]
      the pool frame cap.  SIGPIPE is ignored for the pool's lifetime
      (restored by {!destroy}). *)

  val submit :
    ('a, 'b) t ->
    ?affinity:int ->
    ?deadline:float ->
    'a ->
    (int, [ `Overloaded ]) result
  (** Enqueue (or directly dispatch) a job; returns its completion id,
      or [`Overloaded] when the admission queue is full - the caller
      sheds the request instead of buffering unboundedly.  [affinity]
      (e.g. a program digest hash) steers the job towards the worker
      slot that served it before, so repeats hit warm artifact stores.
      [deadline] (seconds) covers queue time plus service time. *)

  val step : ('a, 'b) t -> ?readable:Unix.file_descr list -> unit -> 'b completion list
  (** Process result frames on [readable] (from the owner's select),
      expire deadlines, respawn/recycle workers and dispatch queued
      jobs.  Returns completions in arrival order. *)

  val wait_step : ('a, 'b) t -> timeout:float -> 'b completion list
  (** Self-contained [select]+[step] for owners without their own fd
      loop (negative [timeout] = wait indefinitely, bounded by the next
      deadline). *)

  val drain : ('a, 'b) t -> deadline:float -> 'b completion list
  (** Run the queue down: step until no job is queued or in flight or
      [deadline] (seconds from now) passes; whatever outlives it is
      killed and completed with [POOL-DRAIN].  Call {!destroy} after. *)

  val destroy : ('a, 'b) t -> unit
  (** Stop and reap every worker; in-flight work is abandoned (use
      {!drain} first for a graceful stop).  Idempotent. *)

  val readable_fds : ('a, 'b) t -> Unix.file_descr list
  val next_deadline : ('a, 'b) t -> float option
  (** Earliest absolute deadline over queued and in-flight jobs. *)

  val queue_depth : ('a, 'b) t -> int
  val in_flight : ('a, 'b) t -> int
  val recycles : ('a, 'b) t -> int
  (** Workers recycled (job-count or RSS watermark) since [create]. *)
end
