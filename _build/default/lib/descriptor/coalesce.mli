(** Stride coalescing (paper, Sec. 2.1; originally Paek et al. [9]).

    Removes redundant stride entries from a PD group without changing
    the described address set.  Three sound rules, each checked for
    {e every} row of the group (rows share the stride vector):

    - {b contiguous merge}: dim [i] steps exactly where dim [j]'s span
      ends ([delta_i = alpha_j * delta_j]); dims fuse with
      [alpha' = alpha_i * alpha_j].  This is the classic LMAD rule and
      performs Fig. 3 (a)->(b) on TFFT2.
    - {b overlap merge}: [delta_i = c * delta_j] for a constant integer
      [1 <= c <= alpha_j]; the shifted copies interleave into one dim
      with [alpha' = (alpha_i - 1)*c + alpha_j].
    - {b subsumption deletion}: the remaining sequential dims form a
      dense contiguous region, dim [i]'s stride lands on its grid, and
      pinning dim [i]'s loop indices at their lower bounds provably
      leaves the nest's reach unchanged (checked with {!Symbolic.Range}
      on the source subscripts).  This removes the non-uniform
      [J*2^(L-1)] dim of TFFT2, Fig. 3 (b)->(c).

    The parallel dim is never touched: it is the distribution handle. *)

val group : Ir.Phase.t -> Pd.group -> Pd.group
val pd : Pd.t -> Pd.t
