lib/descriptor/pd.mli: Access_mix Assume Expr Format Ir Phase Symbolic
