open Symbolic
open Ir

(* The termination measure doubles as the minimality objective: the
   printed surface form.  Every candidate the greedy loop accepts must
   strictly shrink it, so [run] terminates unconditionally and the
   fixpoint is as small as this candidate set can make it. *)
let size p = String.length (Frontend.Unparse.to_string p)

(* Capture-avoiding substitution of a loop variable: a shadowing inner
   loop keeps its own body untouched (its bounds are still evaluated in
   the outer scope). *)
let rec subst_stmt v value = function
  | Types.Assign a ->
      Types.Assign
        {
          a with
          refs =
            List.map
              (fun (r : Types.array_ref) ->
                { r with index = List.map (Expr.subst v value) r.index })
              a.refs;
        }
  | Types.Loop l ->
      let lo = Expr.subst v value l.lo
      and hi = Expr.subst v value l.hi
      and step = Expr.subst v value l.step in
      if l.var = v then Types.Loop { l with lo; hi; step }
      else
        Types.Loop
          { l with lo; hi; step; body = List.map (subst_stmt v value) l.body }

let set_nth l i x = List.mapi (fun j y -> if j = i then x else y) l
let indexed l = Seq.mapi (fun i x -> (i, x)) (List.to_seq l)

(* ------------------------------------------------------------------ *)
(* Candidate rewrites, shallowest (most aggressive) first.  All lazy:
   the greedy loop stops at the first accepted candidate. *)

(* Shrunk variants of one subscript expression: zero out a variable's
   contribution, drop the constant offset, or reset a variable's
   coefficient to one.  All purely generic - [Expr] is abstract, but
   substitution and the linear view are enough. *)
let expr_shrinks (e : Expr.t) : Expr.t Seq.t =
  let vs = Expr.vars e in
  let zero_var = Seq.map (fun v -> Expr.subst v Expr.zero e) (List.to_seq vs) in
  let drop_const =
    let c = Expr.const_part e in
    if Qnum.is_zero c then Seq.empty else Seq.return (Expr.sub e (Expr.q c))
  in
  let unit_coeff =
    List.to_seq vs
    |> Seq.filter_map (fun v ->
           match Expr.linear_in v e with
           | Some (a, b) when Expr.to_int a <> Some 1 ->
               Some (Expr.add (Expr.var v) b)
           | _ -> None)
  in
  Seq.filter
    (fun e' -> not (Expr.equal e' e))
    (Seq.append zero_var (Seq.append drop_const unit_coeff))

let assign_rewrites (a : Types.assign) : Types.assign Seq.t =
  let drops =
    indexed a.refs
    |> Seq.filter_map (fun (i, (r : Types.array_ref)) ->
           if r.access <> Types.Read || List.length a.refs <= 1 then None
           else Some { a with refs = List.filteri (fun j _ -> j <> i) a.refs })
  in
  let work = if a.work > 1 then Seq.return { a with work = 1 } else Seq.empty in
  let subscripts =
    indexed a.refs
    |> Seq.concat_map (fun (i, (r : Types.array_ref)) ->
           indexed r.index
           |> Seq.concat_map (fun (d, e) ->
                  expr_shrinks e
                  |> Seq.map (fun e' ->
                         { a with
                           refs = set_nth a.refs i { r with index = set_nth r.index d e' };
                         })))
  in
  Seq.append drops (Seq.append work subscripts)

let rec stmt_rewrites = function
  | Types.Assign a -> Seq.map (fun a -> Types.Assign a) (assign_rewrites a)
  | Types.Loop l -> Seq.map (fun l -> Types.Loop l) (loop_rewrites l)

(* Rewrites of a statement list: drop one statement (never all), splice
   an inner loop away (body substituted at the loop's lower bound), or
   rewrite one statement in place. *)
and body_rewrites (body : Types.stmt list) : Types.stmt list Seq.t =
  let n = List.length body in
  let drops =
    if n <= 1 then Seq.empty
    else Seq.init n (fun i -> List.filteri (fun j _ -> j <> i) body)
  in
  let splices =
    indexed body
    |> Seq.filter_map (fun (i, s) ->
           match s with
           | Types.Loop l when l.body <> [] ->
               let sub = List.map (subst_stmt l.var l.lo) l.body in
               Some
                 (List.concat
                    (List.mapi (fun j x -> if j = i then sub else [ x ]) body))
           | _ -> None)
  in
  let rewrites =
    indexed body
    |> Seq.concat_map (fun (i, s) ->
           Seq.map (fun s' -> set_nth body i s') (stmt_rewrites s))
  in
  Seq.append drops (Seq.append splices rewrites)

and loop_rewrites (l : Types.loop) : Types.loop Seq.t =
  let hi_shrinks =
    List.to_seq [ 1; 2 ]
    |> Seq.filter_map (fun k ->
           match Expr.to_int l.hi with
           | Some c when c <= k -> None
           | _ -> Some { l with hi = Expr.int k })
  in
  let step_one =
    if Expr.to_int l.step = Some 1 then Seq.empty
    else Seq.return { l with step = Expr.one }
  in
  let sequential =
    if l.parallel then Seq.return { l with parallel = false } else Seq.empty
  in
  let deeper = Seq.map (fun b -> { l with body = b }) (body_rewrites l.body) in
  Seq.append hi_shrinks (Seq.append step_one (Seq.append sequential deeper))

let phase_rewrites (ph : Types.phase) : Types.phase Seq.t =
  (* Promote a singleton inner loop to the top of the nest (a phase's
     nest must remain a loop, so the outermost level is removed by
     promotion rather than splicing). *)
  let promote =
    match ph.nest.body with
    | [ Types.Loop inner ] when inner.var <> ph.nest.var -> (
        match subst_stmt ph.nest.var ph.nest.lo (Types.Loop inner) with
        | Types.Loop li -> Seq.return { ph with nest = li }
        | _ -> Seq.empty)
    | _ -> Seq.empty
  in
  Seq.append promote
    (Seq.map (fun l -> { ph with nest = l }) (loop_rewrites ph.nest))

(* Garbage-collect declarations the phases no longer reference:
   unreferenced arrays, then parameters no retained expression (or
   retained parameter domain) depends on. *)
let gc_candidate (p : Types.program) : Types.program Seq.t =
  let used = List.concat_map Types.phase_arrays p.phases in
  let arrays =
    List.filter (fun (d : Types.array_decl) -> List.mem d.name used) p.arrays
  in
  let rec stmt_vars = function
    | Types.Assign a ->
        List.concat_map
          (fun (r : Types.array_ref) -> List.concat_map Expr.vars r.index)
          a.refs
    | Types.Loop l ->
        Expr.vars l.lo @ Expr.vars l.hi @ Expr.vars l.step
        @ List.concat_map stmt_vars l.body
  in
  let roots =
    List.concat_map (fun (ph : Types.phase) -> stmt_vars (Types.Loop ph.nest)) p.phases
    @ List.concat_map (fun (d : Types.array_decl) -> List.concat_map Expr.vars d.dims) arrays
  in
  let domain_deps = function
    | Assume.Int_range _ -> []
    | Assume.Pow2_of b -> [ b ]
    | Assume.Expr_range (a, b) -> Expr.vars a @ Expr.vars b
  in
  let decls = Assume.to_list p.params in
  let rec close live =
    let more =
      List.filter_map
        (fun (n, d) ->
          if List.mem n live then
            match List.filter (fun v -> not (List.mem v live)) (domain_deps d) with
            | [] -> None
            | vs -> Some vs
          else None)
        decls
      |> List.concat
    in
    if more = [] then live else close (more @ live)
  in
  let live = close roots in
  let params = List.filter (fun (n, _) -> List.mem n live) decls in
  if
    List.length arrays = List.length p.arrays
    && List.length params = List.length decls
  then Seq.empty
  else Seq.return { p with arrays; params = Assume.of_list params }

(* Eliminate a parameter outright: substitute 1 for it everywhere (loop
   bounds, subscripts, array extents) and drop its declaration.  Only
   offered for parameters no other declared domain depends on; anything
   it transitively freed (e.g. the base of a [pow2]) is collected by
   {!gc_candidate} on a later iteration. *)
let param_drops (p : Types.program) : Types.program Seq.t =
  let decls = Assume.to_list p.params in
  let domain_deps = function
    | Assume.Int_range _ -> []
    | Assume.Pow2_of b -> [ b ]
    | Assume.Expr_range (a, b) -> Expr.vars a @ Expr.vars b
  in
  List.to_seq decls
  |> Seq.filter_map (fun (v, _) ->
         if
           List.exists
             (fun (n, d) -> n <> v && List.mem v (domain_deps d))
             decls
         then None
         else
           let subst_phase (ph : Types.phase) =
             match subst_stmt v Expr.one (Types.Loop ph.nest) with
             | Types.Loop l -> { ph with nest = l }
             | _ -> ph
           in
           Some
             {
               p with
               params =
                 Assume.of_list (List.filter (fun (n, _) -> n <> v) decls);
               arrays =
                 List.map
                   (fun (d : Types.array_decl) ->
                     { d with dims = List.map (Expr.subst v Expr.one) d.dims })
                   p.arrays;
               phases = List.map subst_phase p.phases;
             })

(* Merge array [x] into a same-rank array [y] with elementwise-max
   (concrete) extents: one declaration line fewer, and often the last
   step to a single-array reproducer. *)
let array_merges (p : Types.program) : Types.program Seq.t =
  let rec rename_stmt x y = function
    | Types.Assign a ->
        Types.Assign
          {
            a with
            refs =
              List.map
                (fun (r : Types.array_ref) ->
                  if String.equal r.array x then { r with array = y } else r)
                a.refs;
          }
    | Types.Loop l ->
        Types.Loop { l with body = List.map (rename_stmt x y) l.body }
  in
  List.to_seq p.arrays
  |> Seq.concat_map (fun (dx : Types.array_decl) ->
         List.to_seq p.arrays
         |> Seq.filter_map (fun (dy : Types.array_decl) ->
                if String.equal dx.name dy.name then None
                else if List.length dx.dims <> List.length dy.dims then None
                else
                  let merged =
                    List.map2
                      (fun a b ->
                        match (Expr.to_int a, Expr.to_int b) with
                        | Some ia, Some ib -> Some (Expr.int (max ia ib))
                        | _ -> None)
                      dx.dims dy.dims
                  in
                  if List.exists Option.is_none merged then None
                  else
                    Some
                      {
                        p with
                        arrays =
                          List.filter_map
                            (fun (d : Types.array_decl) ->
                              if String.equal d.name dx.name then None
                              else if String.equal d.name dy.name then
                                Some
                                  { d with dims = List.map Option.get merged }
                              else Some d)
                            p.arrays;
                        phases =
                          List.map
                            (fun (ph : Types.phase) ->
                              match
                                rename_stmt dx.name dy.name (Types.Loop ph.nest)
                              with
                              | Types.Loop l -> { ph with nest = l }
                              | _ -> ph)
                            p.phases;
                      }))

let candidates (p : Types.program) : Types.program Seq.t =
  let phases = p.Types.phases in
  let n = List.length phases in
  (* Delta-debugging-style chunked phase drops, largest chunks first,
     so 100-phase pipelines collapse in O(log n) accepted steps instead
     of O(n) single drops. *)
  let chunk_drops =
    let rec chunk_sizes s acc = if s >= 1 then chunk_sizes (s / 2) (s :: acc) else acc in
    let sizes = if n <= 1 then [] else List.rev (chunk_sizes (n / 2) []) in
    List.to_seq sizes
    |> Seq.concat_map (fun sz ->
           Seq.init ((n + sz - 1) / sz) (fun ci ->
               List.filteri
                 (fun i _ -> i < ci * sz || i >= (ci + 1) * sz)
                 phases)
           |> Seq.filter (fun kept -> kept <> [])
           |> Seq.map (fun kept -> { p with phases = kept }))
  in
  let no_repeat =
    if p.repeats then Seq.return { p with repeats = false } else Seq.empty
  in
  let phase_edits =
    indexed phases
    |> Seq.concat_map (fun (i, ph) ->
           Seq.map
             (fun ph' -> { p with phases = set_nth phases i ph' })
             (phase_rewrites ph))
  in
  Seq.append chunk_drops
    (Seq.append no_repeat
       (Seq.append (array_merges p)
          (Seq.append (param_drops p)
             (Seq.append phase_edits (gc_candidate p)))))

let run ~keep p0 =
  if not (keep p0) then p0
  else
    let rec go p =
      let sz = size p in
      match Seq.find keep (Seq.filter (fun c -> size c < sz) (candidates p)) with
      | Some c -> go c
      | None -> p
    in
    go p0
