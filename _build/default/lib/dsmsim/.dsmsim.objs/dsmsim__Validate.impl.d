lib/dsmsim/validate.ml: Array Comm Distribution Env Format Hashtbl Ilp Ir Lcg List Locality Symbolic
