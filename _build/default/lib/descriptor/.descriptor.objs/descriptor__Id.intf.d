lib/descriptor/id.mli: Access_mix Expr Format Ir Pd Symbolic
