(** Sharded multi-process batch analysis driver.

    A fixed-size pool of [Unix.fork]ed workers drains a work queue held
    by the parent: jobs travel to workers over per-worker pipes as
    length-prefixed [Marshal] frames, results come back the same way.
    The pool provides the three guarantees the batch surface
    ([dsmloc batch], the bench sweep) is built on:

    - {b Crash isolation}: a worker that dies mid-job (signal, [exit],
      stack overflow) or whose job raises an uncaught exception fails
      only that job.  A crashed worker is reaped and replaced by a
      freshly forked one, and the job is retried ([retries] extra
      attempts, default one) before being reported as [Failed]; the
      batch always runs to completion.
    - {b Deterministic output}: results are indexed (and the [stream]
      callback fired) in submission order regardless of completion
      order or worker count.  Each attempt runs under
      [Probe.with_seed] with a seed derived from the job index alone,
      and from a reset metrics registry with flushed memo caches, so a
      job's result does not depend on which worker ran it or what ran
      before it.
    - {b Observability}: every worker serialises its per-job
      {!Metrics} snapshot over the result pipe with the registry's own
      JSON emitter; the parent parses them back ({!Metrics.of_json})
      and folds them with {!Metrics.merge} into the fleet-wide
      snapshot returned beside the outcomes (counter totals equal the
      sum of the per-job snapshots).

    Jobs and results cross an address-space boundary, so both must be
    marshalable: no closures, no custom blocks.  See DESIGN.md
    section 13 for the wire protocol. *)

type 'r outcome =
  | Done of {
      value : 'r;
      attempts : int;  (** 1 unless earlier attempts were lost *)
      lost : string list;
          (** reasons of the failed attempts that preceded success,
              oldest first (empty on a clean first attempt) *)
      metrics : Metrics.snapshot;
          (** the worker's registry deltas for this job *)
    }
  | Failed of {
      attempts : int;
      reasons : string list;  (** one per attempt, oldest first *)
    }

val map :
  ?workers:int ->
  ?retries:int ->
  ?stream:(int -> 'b outcome -> unit) ->
  ?diags:Diag.collector ->
  f:(attempt:int -> 'a -> 'b) ->
  'a list ->
  'b outcome list * Metrics.snapshot
(** [map ~f jobs] analyses every job on a pool of [workers] (default 4,
    clamped to the job count) forked processes and returns the outcomes
    in submission order plus the merged fleet metrics snapshot.

    [f] runs in the worker; [attempt] is 1-based so fault-injection
    hooks can crash a first attempt only.  [retries] is the number of
    extra attempts granted to a job whose attempt crashed or raised
    (default 1: retry once).  A crashed attempt's retry is dispatched
    to the freshly forked replacement worker; an attempt that raised
    (the worker survives) re-enters the queue.

    [stream] is called in the parent, in submission order, as the
    completed prefix grows - the CLI uses it to print reports
    incrementally without ever reordering them.

    Every job starts from a reset worker state (metric cells zeroed,
    artifact stores and the expression intern table dropped, probe
    stream seeded from the job index), so results are byte-identical
    whatever the worker count or scheduling order.

    A worker whose profile JSON does not parse degrades to an empty
    snapshot for that job: the job's value is kept, the
    [pool.profile_bad] counter is bumped, and - when [diags] is
    supplied - a [POOL-PROFILE-BAD] warning is recorded. *)
