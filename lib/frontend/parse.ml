open Symbolic
open Ir

exception Error of { line : int; message : string }

type state = {
  lx : Lexer.t;
  mutable arrays : Types.array_decl list;  (** declared so far *)
  mutable subs : Inline.subroutine list;
  mutable depth : int;  (** expression nesting, bounded by [max_depth] *)
}

let fail st message = raise (Error { line = Lexer.line st.lx; message })

(* Hostile sources (a megabyte of '(' or of '^') must fail with a
   positioned error, not blow the stack: expression nesting is bounded
   here, and [program] additionally converts a [Stack_overflow] from
   any other unbounded recursion (e.g. pathological statement counts)
   into a positioned parse error. *)
let max_depth = 200

let deeper st f =
  if st.depth >= max_depth then fail st "expression nested too deeply";
  st.depth <- st.depth + 1;
  let v = f () in
  st.depth <- st.depth - 1;
  v

let expect st tok =
  let got = Lexer.next st.lx in
  if got <> tok then
    fail st
      (Format.asprintf "expected %a, got %a" Lexer.pp_token tok Lexer.pp_token
         got)

let expect_ident st =
  match Lexer.next st.lx with
  | Lexer.IDENT s -> s
  | got -> fail st (Format.asprintf "expected identifier, got %a" Lexer.pp_token got)

let expect_int st =
  match Lexer.next st.lx with
  | Lexer.INT n -> n
  | Lexer.MINUS -> (
      match Lexer.next st.lx with
      | Lexer.INT n -> -n
      | got -> fail st (Format.asprintf "expected integer, got %a" Lexer.pp_token got))
  | got -> fail st (Format.asprintf "expected integer, got %a" Lexer.pp_token got)

let skip_newlines st =
  while Lexer.peek st.lx = Lexer.NEWLINE do
    ignore (Lexer.next st.lx)
  done

let newline st =
  match Lexer.next st.lx with
  | Lexer.NEWLINE | Lexer.EOF -> skip_newlines st
  | got -> fail st (Format.asprintf "expected end of line, got %a" Lexer.pp_token got)

let is_array st name =
  List.exists (fun (a : Types.array_decl) -> String.equal a.name name) st.arrays

(* ------------------------------------------------------------------ *)
(* Expressions.  Array references found inside an expression are
   collected as reads; the arithmetic value of a reference is opaque
   (the analysis only needs the reference set), so an expression
   containing reads has no usable symbolic value - using one inside a
   subscript or bound is an error. *)

type value = { expr : Expr.t option; reads : Types.array_ref list }

let pure e = { expr = Some e; reads = [] }

let lift2 st op a b =
  match (a.expr, b.expr) with
  | Some x, Some y -> { expr = Some (op x y); reads = a.reads @ b.reads }
  | _ ->
      if a.reads = [] && b.reads = [] then fail st "malformed expression"
      else { expr = None; reads = a.reads @ b.reads }

let rec parse_expr st : value = parse_add st

and parse_add st =
  let rec go acc =
    match Lexer.peek st.lx with
    | Lexer.PLUS ->
        ignore (Lexer.next st.lx);
        go (lift2 st Expr.add acc (parse_mul st))
    | Lexer.MINUS ->
        ignore (Lexer.next st.lx);
        go (lift2 st Expr.sub acc (parse_mul st))
    | _ -> acc
  in
  go (parse_mul st)

and parse_mul st =
  let rec go acc =
    match Lexer.peek st.lx with
    | Lexer.STAR ->
        ignore (Lexer.next st.lx);
        go (lift2 st Expr.mul acc (parse_pow st))
    | Lexer.SLASH ->
        ignore (Lexer.next st.lx);
        go (lift2 st Expr.div acc (parse_pow st))
    | _ -> acc
  in
  go (parse_pow st)

and parse_pow st =
  let base = parse_atom st in
  match Lexer.peek st.lx with
  | Lexer.CARET -> (
      ignore (Lexer.next st.lx);
      let exponent = deeper st (fun () -> parse_pow st) (* right associative *) in
      match (base.expr, exponent.expr) with
      | Some b, Some e when Expr.equal b (Expr.int 2) ->
          { expr = Some (Expr.pow2 e); reads = base.reads @ exponent.reads }
      | Some b, Some e -> (
          match Expr.to_int e with
          | Some n when n >= 0 ->
              let rec pow acc k = if k = 0 then acc else pow (Expr.mul acc b) (k - 1) in
              { expr = Some (pow Expr.one n); reads = base.reads @ exponent.reads }
          | _ -> fail st "only 2^e or a constant exponent is supported")
      | _ -> fail st "array reference in exponent")
  | _ -> base

and parse_atom st =
  match Lexer.next st.lx with
  | Lexer.INT n -> pure (Expr.int n)
  | Lexer.MINUS ->
      let v = parse_atom st in
      (match v.expr with
      | Some e -> { v with expr = Some (Expr.neg e) }
      | None -> fail st "cannot negate an array reference")
  | Lexer.LPAREN ->
      let v = deeper st (fun () -> parse_expr st) in
      expect st Lexer.RPAREN;
      v
  | Lexer.IDENT name ->
      if Lexer.peek st.lx = Lexer.LPAREN && is_array st name then begin
        ignore (Lexer.next st.lx);
        let subscripts = parse_subscripts st [] in
        {
          expr = None;
          reads = [ { Types.array = name; index = subscripts; access = Read } ];
        }
      end
      else pure (Expr.var name)
  | got -> fail st (Format.asprintf "unexpected %a in expression" Lexer.pp_token got)

and parse_subscripts st acc =
  let v = parse_expr st in
  let e =
    match v.expr with
    | Some e when v.reads = [] -> e
    | _ -> fail st "array reference inside a subscript"
  in
  match Lexer.next st.lx with
  | Lexer.COMMA -> parse_subscripts st (e :: acc)
  | Lexer.RPAREN -> List.rev (e :: acc)
  | got -> fail st (Format.asprintf "expected , or ) in subscripts, got %a" Lexer.pp_token got)

let parse_pure_expr st what =
  let v = parse_expr st in
  match v.expr with
  | Some e when v.reads = [] -> e
  | _ -> fail st ("array reference not allowed in " ^ what)

(* ------------------------------------------------------------------ *)
(* Statements and loops *)

let rec parse_body st : Types.stmt list =
  skip_newlines st;
  match Lexer.peek st.lx with
  | Lexer.KW "end" ->
      ignore (Lexer.next st.lx);
      newline st;
      []
  | Lexer.KW ("do" | "doall") ->
      let l = parse_loop st in
      l :: parse_body st
  | _ ->
      let s = parse_stmt st in
      s :: parse_body st

and parse_loop st : Types.stmt =
  let parallel =
    match Lexer.next st.lx with
    | Lexer.KW "doall" -> true
    | Lexer.KW "do" -> false
    | got -> fail st (Format.asprintf "expected do/doall, got %a" Lexer.pp_token got)
  in
  let var = expect_ident st in
  expect st Lexer.EQUAL;
  let lo = parse_pure_expr st "loop bounds" in
  (match Lexer.next st.lx with
  | Lexer.COMMA | Lexer.KW "to" -> ()
  | got -> fail st (Format.asprintf "expected , in loop header, got %a" Lexer.pp_token got));
  let hi = parse_pure_expr st "loop bounds" in
  let step =
    if Lexer.peek st.lx = Lexer.KW "step" then begin
      ignore (Lexer.next st.lx);
      parse_pure_expr st "loop step"
    end
    else Expr.one
  in
  newline st;
  let body = parse_body st in
  Types.Loop { var; lo; hi; step; parallel; body }

and parse_stmt st : Types.stmt =
  (* ref [= expr] [work N] *)
  let name = expect_ident st in
  if not (is_array st name) then fail st (name ^ " is not a declared array");
  expect st Lexer.LPAREN;
  let subscripts = parse_subscripts st [] in
  let lhs = { Types.array = name; index = subscripts; access = Types.Write } in
  let refs, is_assign =
    if Lexer.peek st.lx = Lexer.EQUAL then begin
      ignore (Lexer.next st.lx);
      let rhs = parse_expr st in
      (rhs.reads @ [ lhs ], true)
    end
    else ([ { lhs with access = Types.Read } ], false)
  in
  ignore is_assign;
  let work =
    if Lexer.peek st.lx = Lexer.KW "work" then begin
      ignore (Lexer.next st.lx);
      expect_int st
    end
    else 1
  in
  newline st;
  Types.Assign { refs; work }

let parse_phase st : Types.phase =
  expect st (Lexer.KW "phase");
  let name = expect_ident st in
  if Lexer.peek st.lx = Lexer.COLON then ignore (Lexer.next st.lx);
  newline st;
  skip_newlines st;
  match parse_loop st with
  | Types.Loop nest -> { Types.phase_name = name; nest }
  | _ -> fail st "phase body must be a loop nest"

(* sub NAME(A(dims), B(dims)) ... phases ... endsub *)
let parse_sub st : Inline.subroutine =
  expect st (Lexer.KW "sub");
  let sub_name = expect_ident st in
  expect st Lexer.LPAREN;
  let rec formals acc =
    let name = expect_ident st in
    expect st Lexer.LPAREN;
    let dims = parse_subscripts st [] in
    match Lexer.next st.lx with
    | Lexer.COMMA -> formals ({ Types.name; dims } :: acc)
    | Lexer.RPAREN -> List.rev ({ Types.name; dims } :: acc)
    | got ->
        fail st (Format.asprintf "expected , or ) in formals, got %a" Lexer.pp_token got)
  in
  let fs = formals [] in
  newline st;
  (* formals are visible as arrays inside the body *)
  let saved = st.arrays in
  st.arrays <- st.arrays @ fs;
  let phases = ref [] in
  let rec body () =
    skip_newlines st;
    match Lexer.peek st.lx with
    | Lexer.KW "phase" ->
        phases := parse_phase st :: !phases;
        body ()
    | Lexer.KW "endsub" ->
        ignore (Lexer.next st.lx);
        newline st
    | got ->
        fail st (Format.asprintf "expected phase or endsub, got %a" Lexer.pp_token got)
  in
  body ();
  st.arrays <- saved;
  { Inline.sub_name; formals = fs; body = List.rev !phases }

(* call NAME(G, G2(offset), ...) *)
let parse_call st tag : Inline.call =
  expect st (Lexer.KW "call");
  let name = expect_ident st in
  let sub =
    match
      List.find_opt (fun (s : Inline.subroutine) -> s.sub_name = name) st.subs
    with
    | Some s -> s
    | None -> fail st ("unknown subroutine " ^ name)
  in
  expect st Lexer.LPAREN;
  let rec actuals acc =
    let target = expect_ident st in
    (match
       List.find_opt
         (fun (a : Types.array_decl) -> String.equal a.name target)
         st.arrays
     with
    | None -> fail st (target ^ " is not a declared array")
    | Some d when List.length d.dims <> 1 ->
        fail st (target ^ " must be a flat array to pass by section")
    | Some _ -> ());
    let base =
      if Lexer.peek st.lx = Lexer.LPAREN then begin
        ignore (Lexer.next st.lx);
        let e = parse_pure_expr st "section offset" in
        expect st Lexer.RPAREN;
        e
      end
      else Expr.zero
    in
    let acc = { Inline.target; base } :: acc in
    match Lexer.next st.lx with
    | Lexer.COMMA -> actuals acc
    | Lexer.RPAREN -> List.rev acc
    | got ->
        fail st (Format.asprintf "expected , or ) in call, got %a" Lexer.pp_token got)
  in
  let acts = actuals [] in
  newline st;
  if List.length acts <> List.length sub.formals then
    fail st (Printf.sprintf "%s expects %d arguments, got %d" name
               (List.length sub.formals) (List.length acts));
  {
    Inline.sub;
    bindings =
      List.map2 (fun (f : Types.array_decl) a -> (f.name, a)) sub.formals acts;
    tag;
  }

let program source =
  let st = { lx = Lexer.of_string source; arrays = []; subs = []; depth = 0 } in
  try
    skip_newlines st;
    expect st (Lexer.KW "program");
    let prog_name = expect_ident st in
    newline st;
    let params = ref [] in
    let rec decls () =
      skip_newlines st;
      match Lexer.peek st.lx with
      | Lexer.KW "param" ->
          ignore (Lexer.next st.lx);
          let name = expect_ident st in
          expect st Lexer.EQUAL;
          let lo = expect_int st in
          expect st Lexer.DOTDOT;
          let hi = expect_int st in
          newline st;
          params := (name, Assume.Int_range (lo, hi)) :: !params;
          decls ()
      | Lexer.KW "pow2" ->
          ignore (Lexer.next st.lx);
          let name = expect_ident st in
          expect st Lexer.EQUAL;
          let base = expect_ident st in
          newline st;
          params := (name, Assume.Pow2_of base) :: !params;
          decls ()
      | Lexer.KW "real" ->
          ignore (Lexer.next st.lx);
          let name = expect_ident st in
          expect st Lexer.LPAREN;
          let dims = parse_subscripts st [] in
          newline st;
          st.arrays <- st.arrays @ [ { Types.name; dims } ];
          decls ()
      | _ -> ()
    in
    decls ();
    let phases = ref [] in
    let repeats = ref false in
    let call_count = ref 0 in
    let rec tail () =
      skip_newlines st;
      match Lexer.peek st.lx with
      | Lexer.KW "phase" ->
          phases := parse_phase st :: !phases;
          tail ()
      | Lexer.KW "sub" ->
          st.subs <- st.subs @ [ parse_sub st ];
          tail ()
      | Lexer.KW "call" ->
          incr call_count;
          let c = parse_call st (Printf.sprintf "C%d" !call_count) in
          (try
             List.iter
               (fun ph -> phases := ph :: !phases)
               (Inline.expand c)
           with Inline.Bad_call msg -> fail st msg);
          tail ()
      | Lexer.KW "repeat" ->
          ignore (Lexer.next st.lx);
          repeats := true;
          newline st;
          tail ()
      | Lexer.EOF -> ()
      | got ->
          fail st (Format.asprintf "unexpected %a at top level" Lexer.pp_token got)
    in
    tail ();
    if !phases = [] then fail st "program has no phases";
    {
      Types.prog_name;
      params = Assume.of_list (List.rev !params);
      arrays = st.arrays;
      phases = List.rev !phases;
      repeats = !repeats;
    }
  with
  | Lexer.Error { line; message } -> raise (Error { line; message })
  | Stack_overflow ->
      raise
        (Error { line = Lexer.line st.lx; message = "program nested too deeply" })

let program_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> program (really_input_string ic (in_channel_length ic)))
