open Symbolic
open Descriptor

type side = { id : Id.t; primary : Id.row; gap : Expr.t; overlap : bool }

let side ?overlap (id : Id.t) =
  let asm = id.ctx.assume in
  (* Rows need not be fully congruent (a stencil's ghost rows differ in
     extent after union), but they must advance with one parallel
     stride for a single representative to describe the sweep. *)
  let strides = Id.par_strides id in
  let comparable =
    match strides with
    | [] | [ _ ] -> true
    | s :: rest -> List.for_all (fun s' -> Probe.equal asm s s') rest
  in
  if not comparable then None
  else
    let increasing =
      List.filter
        (fun (r : Id.row) -> r.par_sign > 0 && not (Expr.is_zero r.par_stride))
        (Id.all_rows id)
    in
    let primary =
      match increasing with
      | [] -> None
      | r :: rest ->
          List.fold_left
            (fun acc (x : Id.row) ->
              Option.bind acc (fun (a : Id.row) ->
                  if Probe.le asm a.offset0 x.offset0 then Some a
                  else if Probe.le asm x.offset0 a.offset0 then Some x
                  else None))
            (Some r) rest
    in
    Option.bind primary (fun (r : Id.row) ->
        (* h = delta_P - span - 1, clamped at 0 (interleaved regions). *)
        let raw =
          Expr.sub (Expr.sub r.par_stride r.span_seq) Expr.one
        in
        let overlap =
          match overlap with
          | Some o -> o
          | None -> Symmetry.has_overlap id
        in
        match Probe.sign asm raw with
        | Some s when s >= 0 -> Some { id; primary = r; gap = raw; overlap }
        | Some _ -> Some { id; primary = r; gap = Expr.zero; overlap }
        | None -> None)

let ul_plus_h (s : side) ~p =
  if s.overlap then
    (* Overlapping ID: the union-inflated span counts replicated ghost
       cells, not owned data; the ownership boundary between chunk p-1
       and chunk p is tau + p*delta_P - 1. *)
    Expr.sub
      (Expr.add s.primary.offset0 (Expr.mul p s.primary.par_stride))
      Expr.one
  else
    (* Disjoint iterations (dense, gapped or interleaved): the paper's
       UL(I,0,p) + h = tau + (p-1)*delta_P + span + h; for dense/gapped
       rows this telescopes to tau + p*delta_P - 1, while interleaved
       rows (TFFT2's TRANSA columns) keep their full span - Eq. 4's
       2QP - P term. *)
    Expr.add
      (Expr.add
         (Expr.add s.primary.offset0
            (Expr.mul (Expr.sub p Expr.one) s.primary.par_stride))
         s.primary.span_seq)
      s.gap

type relation = { a : Expr.t; b : Expr.t; c : Expr.t }

(* Offset adjustment (paper Sec. 2.1): express both sides relative to
   tau_min by subtracting R = floor((tau - tau_min)/delta_P) parallel
   strides, so phases whose regions differ by whole iterations (e.g. a
   stencil's read frame vs. its write frame) compare aligned. *)
let adjust asm (s : side) ~tau_min =
  if Expr.is_zero s.primary.par_stride then s
  else
    let r =
      Expr.floor_div (Expr.sub s.primary.offset0 tau_min) s.primary.par_stride
    in
    ignore asm;
    {
      s with
      primary =
        {
          s.primary with
          offset0 = Expr.sub s.primary.offset0 (Expr.mul r s.primary.par_stride);
        };
    }

let relation ?overlap_k ?overlap_g idk idg =
  match (side ?overlap:overlap_k idk, side ?overlap:overlap_g idg) with
  | Some sk, Some sg ->
      let asm = idk.Id.ctx.assume in
      let tau_min =
        if Probe.le asm sk.primary.offset0 sg.primary.offset0 then
          sk.primary.offset0
        else sg.primary.offset0
      in
      let sk = adjust asm sk ~tau_min and sg = adjust asm sg ~tau_min in
      (* lhs(p_k) = a*p_k + ck ; rhs(p_g) = b*p_g + cg.
         Equation: a*p_k = b*p_g + (cg - ck). *)
      let pk = Expr.var "&pk" and pg = Expr.var "&pg" in
      let lhs = ul_plus_h sk ~p:pk and rhs = ul_plus_h sg ~p:pg in
      Option.bind (Expr.linear_in "&pk" lhs) (fun (a, ck) ->
          Option.bind (Expr.linear_in "&pg" rhs) (fun (b, cg) ->
              ignore pg;
              Some { a; b; c = Expr.sub cg ck }))
  | _ -> None

type solution = { pk : int; pg : int; count : int }

let rec egcd a b = if b = 0 then (a, 1, 0) else
    let g, x, y = egcd b (a mod b) in
    (g, y, x - (a / b * y))

(* Floor/ceil division for any numerator, positive divisor. *)
let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)
let cdiv a b = -fdiv (-a) b
let ceil_div a b = cdiv a b

let solve ~env ~h ~nk ~ng (rel : relation) =
  try
    let a = Env.eval env rel.a
    and b = Env.eval env rel.b
    and c = Env.eval env rel.c in
    (* Sub-stride misalignment (|c| below one stride of the coarser
       side) stays inside a block for any chunking: absorb it. *)
    let c = if c <> 0 && abs c < max a b then 0 else c in
    if a <= 0 || b <= 0 then None
    else
      let pk_max = ceil_div nk h and pg_max = ceil_div ng h in
      (* a*pk - b*pg = c *)
      let g, u, _v = egcd a b in
      if c mod g <> 0 then None
      else
        let a' = a / g and b' = b / g in
        (* particular: pk0 = u*(c/g); pg0 = (a*pk0 - c)/b *)
        let pk0 = u * (c / g) in
        let pg0 = ((a * pk0) - c) / b in
        (* family: pk = pk0 + b'*t ; pg = pg0 + a'*t *)
        let t_lo = max (cdiv (1 - pk0) b') (cdiv (1 - pg0) a') in
        let t_hi = min (fdiv (pk_max - pk0) b') (fdiv (pg_max - pg0) a') in
        if t_lo > t_hi then None
        else
          Some
            {
              pk = pk0 + (b' * t_lo);
              pg = pg0 + (a' * t_lo);
              count = t_hi - t_lo + 1;
            }
  with Expr.Non_integral _ | Env.Unbound _ -> None

let balanced ~env ~h ~nk ~ng idk idg =
  Option.bind (relation idk idg) (solve ~env ~h ~nk ~ng)

let pp_relation ppf r =
  Format.fprintf ppf "%a * p_k = %a * p_g%s%a" Expr.pp r.a Expr.pp r.b
    (if Expr.is_zero r.c then "" else " + ")
    (fun ppf c -> if not (Expr.is_zero c) then Expr.pp ppf c)
    r.c
