(** Jacobi 2-D relaxation: the canonical stencil workload.

    Two phases inside a timestep loop (the program {e repeats}, so the
    LCG is cyclic): F1 computes [V <- avg(U)] over interior columns
    with a 5-point stencil - its U reads exhibit {e overlapping
    storage} (ghost columns) while staying read-only (Theorem 1c); F2
    copies V back into U.  Both phases parallelize over columns of the
    column-major N x N grid, so the balanced condition gives
    [p1 = p2] after offset adjustment, and the whole cycle is a single
    L chain per array. *)

open Symbolic
open Ir.Types

val params : Assume.t
val program : program
val env : n:int -> Env.t
