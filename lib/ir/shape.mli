(** Closed-form event shapes of a phase under a concrete environment.

    Where {!Enumerate.iter} replays every iteration of a nest to
    produce its (array, address) events one by one, this module
    extracts the same event multiset {e symbolically}: each reference
    site becomes a [base + par_stride*i + sum_j k_j*s_j] generator
    whose dimension counts and strides are concrete integers, so
    consumers (phase work, liveness, the DSM simulator's accounting)
    can reason about all [n * prod c_j] events in O(sites) time.

    Loop variables whose trip count or subscript coefficient is not
    affine-with-constant-coefficient under the environment (triangular
    bounds, [2^L]-style loop-dependent strides) are {e partially
    evaluated}: their concrete values are enumerated - under a budget -
    and the sites under them are emitted once per value, closing the
    gap between the affine fragment and real kernels at small extents.
    When the parallel variable itself is bad (it bounds an inner loop,
    as in triangular solves), the parallel loop is partially evaluated
    too and each emitted site is pinned to one parallel iteration.

    Extraction is exact: the emitted sites denote event-for-event the
    multiset {!Enumerate.iter} produces (same linearization, same
    normalized nest, same work accounting), which the differential
    tests pin. *)

open Symbolic
open Types

type par_shape =
  | Outside  (** the site is outside the parallel loop: [par = None] *)
  | Strided of int
      (** inside, affine: the address advances by this step per
          parallel iteration, for all [par_n] iterations *)
  | Fixed of int
      (** inside a partially-evaluated parallel loop: this site's
          events belong to exactly this parallel iteration *)

type site = {
  array : string;
  access : access;
  work : int;
      (** statement work charged on this site's events ([0] unless the
          site is the first reference of its statement) *)
  base : int;
      (** flat address at parallel iteration 0 ([Strided]) or at the
          pinned iteration ([Fixed]), all sequential indices 0 *)
  par : par_shape;
  seq : (int * int) list;
      (** one [(count, stride)] per enclosing good sequential loop,
          outermost first; zero strides and repeated strides are kept -
          the event multiset has multiplicity *)
}

type t = {
  par_n : int;  (** parallel trip count ([1] when the phase has none) *)
  sites : site list;
}

val of_phase : program -> Env.t -> phase -> t option
(** [None] when the phase is outside the affine fragment under this
    environment (non-affine parallel subscripts, unbounded partial
    evaluation, unevaluable parameters).  Memoized per (phase, env). *)

val events : site -> int
(** Number of events the site generates per parallel iteration it
    occurs in (product of sequential counts, saturating). *)

val occurrences : t -> site -> int
(** How many parallel iterations the site occurs in: [par_n] for
    [Strided] sites, [1] otherwise. *)

val emits : t -> site -> bool
(** Does the site generate any event at all? *)

val box : t -> site -> Lattice.box option
(** The address {e set} the site touches over all its occurrences
    (multiplicity dropped): [None] when it emits nothing.
    @raise Lattice.Overflow *)

val total_work : t -> int
(** Total statement work of the phase, saturating - the closed form of
    summing [work] over {!Enumerate.iter}. *)
