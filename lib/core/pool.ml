(* Forked worker pool: the parent owns the work queue and feeds workers
   over per-worker pipes; see pool.mli for the contract and DESIGN.md
   section 13 for the wire protocol.

   Framing: every message, both directions, is an 8-byte big-endian
   length followed by that many bytes of [Marshal] payload.  A worker
   writes each result frame with one buffered flush, so the parent can
   treat "select says readable, then the frame truncates" as worker
   death: a healthy worker never parks mid-frame.  Lengths are
   validated against a hard cap before any allocation: a corrupt
   prefix is a [`Bad] frame, never an [Out_of_memory] in the parent. *)

open Symbolic

type 'r outcome =
  | Done of {
      value : 'r;
      attempts : int;
      lost : string list;
      metrics : Metrics.snapshot;
    }
  | Failed of { attempts : int; reasons : string list }

(* parent -> worker *)
type 'a job_msg = Job of int * int * 'a (* idx, attempt, payload *) | Stop

(* worker -> parent frames are [int * ('b, string) result * string]:
   idx, result-or-exception, metrics JSON *)

let empty_snapshot =
  { Metrics.counters = []; timers = []; histograms = []; caches = [] }

(* ------------------------------------------------------------------ *)
(* Framed marshal transport over raw fds *)

let default_frame_cap = 1 lsl 28 (* 256 MiB: far above any real frame *)

let rec restart f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart f

let write_all fd buf =
  let len = Bytes.length buf in
  let ofs = ref 0 in
  while !ofs < len do
    let n = restart (fun () -> Unix.write fd buf !ofs (len - !ofs)) in
    ofs := !ofs + n
  done

(* [None] on EOF, including EOF mid-buffer (a worker killed mid-frame
   leaves a truncated frame behind). *)
let read_exact fd len =
  let buf = Bytes.create len in
  let ofs = ref 0 in
  let eof = ref false in
  while (not !eof) && !ofs < len do
    let n = restart (fun () -> Unix.read fd buf !ofs (len - !ofs)) in
    if n = 0 then eof := true else ofs := !ofs + n
  done;
  if !eof then None else Some buf

let send fd v =
  let payload = Marshal.to_bytes v [] in
  let hdr = Bytes.create 8 in
  Bytes.set_int64_be hdr 0 (Int64.of_int (Bytes.length payload));
  write_all fd hdr;
  write_all fd payload

(* Total receive: a corrupt or adversarial length prefix (negative or
   over the cap) and an undecodable payload both come back as [`Bad],
   distinct from [`Eof] (peer death). *)
let recv ?(cap = default_frame_cap) fd =
  match read_exact fd 8 with
  | None -> `Eof
  | Some hdr -> (
      let len64 = Bytes.get_int64_be hdr 0 in
      if Int64.compare len64 0L < 0 || Int64.compare len64 (Int64.of_int cap) > 0
      then
        `Bad (Printf.sprintf "frame length %Ld exceeds cap %d" len64 cap)
      else
        match read_exact fd (Int64.to_int len64) with
        | None -> `Eof
        | Some payload -> (
            match Marshal.from_bytes payload 0 with
            | v -> `Frame v
            | exception (Failure msg | Invalid_argument msg) ->
                `Bad ("undecodable frame: " ^ msg)))

(* ------------------------------------------------------------------ *)
(* Workers *)

type worker = {
  pid : int;
  job_w : Unix.file_descr;  (* parent writes job frames *)
  res_r : Unix.file_descr;  (* parent reads result frames *)
  mutable running : int option;  (* job index in flight *)
  mutable started : float;  (* when the in-flight job was assigned *)
  mutable death_note : string option;
      (* parent-side kill reason (deadline, bad frame) overriding the
         reaped wait status *)
  mutable reaped : bool;
}

(* Per-job seed for the probe stream: derived from the job index alone
   so a job's randomized decisions are identical whichever worker runs
   it and whatever ran on that worker before. *)
let job_seed idx = 1999 + idx

let worker_loop ~f job_r res_w =
  let rec loop () =
    match recv job_r with
    | `Eof | `Bad _ | `Frame Stop -> ()
    | `Frame (Job (idx, attempt, payload)) ->
        (* Per-job reset protocol (DESIGN.md section 14): zero the
           metric cells, drop every artifact store, and drop the
           expression intern table, so a job's result and profile are
           identical whichever worker runs it and whatever ran on that
           worker before.  [with_seed] below additionally pins the
           probe stream to the job index. *)
        Metrics.reset ();
        Artifact.clear_all ();
        Expr.intern_reset ();
        let result =
          Probe.with_seed (job_seed idx) (fun () ->
              try Ok (f ~attempt payload)
              with e -> Error (Printexc.to_string e))
        in
        let mjson = Metrics.to_json (Metrics.snapshot ()) in
        send res_w (idx, result, mjson);
        loop ()
  in
  loop ()

(* Fork one worker.  [sibling_fds] are the parent-side ends of every
   other live worker's pipes: the child closes its inherited copies so
   a sibling's death still reads as EOF/EPIPE in the parent. *)
let spawn_with ~loop ~sibling_fds =
  let job_r, job_w = Unix.pipe () in
  let res_r, res_w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) sibling_fds;
      Unix.close job_w;
      Unix.close res_r;
      (* _exit, not exit: the worker must not run the parent's at_exit
         handlers (the CLI's profile emitter) or flush its inherited
         copies of the parent's output buffers. *)
      (try loop job_r res_w with _ -> Unix._exit 1);
      Unix._exit 0
  | pid ->
      Unix.close job_r;
      Unix.close res_w;
      {
        pid;
        job_w;
        res_r;
        running = None;
        started = 0.;
        death_note = None;
        reaped = false;
      }

let spawn ~f ~sibling_fds = spawn_with ~loop:(worker_loop ~f) ~sibling_fds

let describe_status = function
  | Unix.WEXITED c -> Printf.sprintf "worker exited with code %d" c
  | Unix.WSIGNALED sg ->
      (* [waitpid] reports OCaml's own (negative) signal numbering *)
      let name =
        if sg = Sys.sigkill then "SIGKILL"
        else if sg = Sys.sigsegv then "SIGSEGV"
        else if sg = Sys.sigterm then "SIGTERM"
        else if sg = Sys.sigabrt then "SIGABRT"
        else Printf.sprintf "signal %d" sg
      in
      Printf.sprintf "worker killed by %s" name
  | Unix.WSTOPPED sg -> Printf.sprintf "worker stopped by signal %d" sg

let reap w =
  if w.reaped then "worker already reaped"
  else begin
    w.reaped <- true;
    match restart (fun () -> Unix.waitpid [] w.pid) with
    | _, status -> (
        match w.death_note with
        | Some note -> note
        | None -> describe_status status)
    | exception Unix.Unix_error _ -> "worker vanished"
  end

let close_worker_fds w =
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ w.job_w; w.res_r ]

(* ------------------------------------------------------------------ *)

let jobs_counter = Metrics.counter "pool.jobs"
let crash_counter = Metrics.counter "pool.worker_lost"
let retry_counter = Metrics.counter "pool.retries"
let pool_timer = Metrics.timer "pool.map"
let deadline_counter = Metrics.counter "pool.deadline_kills"
let bad_frame_counter = Metrics.counter "pool.bad_frames"

let profile_bad_counter = Metrics.counter "pool.profile_bad"

let map ?(workers = 4) ?(retries = 1) ?deadline ?stream ?diags ~f jobs =
  let jobs_a = Array.of_list jobs in
  let nj = Array.length jobs_a in
  if nj = 0 then ([], empty_snapshot)
  else begin
    Metrics.with_timer pool_timer @@ fun () ->
    Metrics.incr jobs_counter ~by:nj;
    let results = Array.make nj None in
    let attempts = Array.make nj 0 in
    let failures = Array.make nj [] in
    (* Dead workers must surface as EPIPE/EOF, not as a parent kill. *)
    let old_sigpipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ -> None
    in
    let alive = ref [] in
    let completed = ref 0 in
    let stream_next = ref 0 in
    let pending = Queue.create () in
    Array.iteri (fun i _ -> Queue.add i pending) jobs_a;
    let sibling_fds () =
      List.concat_map (fun w -> [ w.job_w; w.res_r ]) !alive
    in
    let spawn_worker () =
      let w = spawn ~f ~sibling_fds:(sibling_fds ()) in
      alive := !alive @ [ w ];
      w
    in
    let record idx outcome =
      results.(idx) <- Some outcome;
      incr completed;
      while
        !stream_next < nj && results.(!stream_next) <> None
      do
        (match stream with
        | Some g -> g !stream_next (Option.get results.(!stream_next))
        | None -> ());
        incr stream_next
      done
    in
    let fail_attempt idx reason =
      failures.(idx) <- reason :: failures.(idx);
      if attempts.(idx) > retries then
        record idx
          (Failed
             { attempts = attempts.(idx); reasons = List.rev failures.(idx) })
      else begin
        Metrics.incr retry_counter;
        Queue.add idx pending
      end
    in
    let assign w idx =
      attempts.(idx) <- attempts.(idx) + 1;
      w.running <- Some idx;
      w.started <- Metrics.now ();
      try send w.job_w (Job (idx, attempts.(idx), jobs_a.(idx)))
      with Unix.Unix_error (Unix.EPIPE, _, _) | Sys_error _ ->
        (* already dead: the EOF on its result pipe drives recovery *)
        ()
    in
    (* A worker's death - organic crash, deadline kill or babbling
       (bad frame) kill - always funnels here: reap it, replace it,
       and retry or fail the in-flight job. *)
    let handle_death w =
      Metrics.incr crash_counter;
      let reason = reap w in
      close_worker_fds w;
      alive := List.filter (fun w' -> w'.pid <> w.pid) !alive;
      let lost_job = w.running in
      let fresh =
        if !completed + List.length !alive < nj || lost_job <> None then
          Some (spawn_worker ())
        else None
      in
      match lost_job with
      | None -> ()
      | Some idx ->
          failures.(idx) <- reason :: failures.(idx);
          if attempts.(idx) > retries then
            record idx
              (Failed
                 { attempts = attempts.(idx); reasons = List.rev failures.(idx) })
          else begin
            Metrics.incr retry_counter;
            match fresh with
            | Some w' -> assign w' idx
            | None -> Queue.add idx pending
          end
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun w ->
            (try send w.job_w Stop
             with Unix.Unix_error _ | Sys_error _ -> ());
            close_worker_fds w;
            ignore (reap w))
          !alive;
        match old_sigpipe with
        | Some b -> Sys.set_signal Sys.sigpipe b
        | None -> ())
    @@ fun () ->
    for _ = 1 to max 1 (min workers nj) do
      ignore (spawn_worker ())
    done;
    while !completed < nj do
      (* hand work to idle workers *)
      List.iter
        (fun w ->
          if w.running = None && not (Queue.is_empty pending) then
            assign w (Queue.pop pending))
        !alive;
      let busy = List.filter (fun w -> w.running <> None) !alive in
      if busy = [] then
        (* every remaining job is queued but no worker took one: only
           possible if the pool emptied, which spawn/recovery prevents *)
        assert (Queue.is_empty pending && !completed = nj)
      else begin
        let fds = List.map (fun w -> w.res_r) busy in
        let timeout =
          match deadline with
          | None -> -1.0
          | Some d ->
              let now = Metrics.now () in
              List.fold_left
                (fun acc w -> min acc (max 0. (w.started +. d -. now)))
                d busy
        in
        let readable, _, _ =
          restart (fun () -> Unix.select fds [] [] timeout)
        in
        List.iter
          (fun fd ->
            match List.find_opt (fun w -> w.res_r = fd) !alive with
            | None -> () (* already handled as a casualty this round *)
            | Some w -> (
                match recv w.res_r with
                | `Frame (idx, result, mjson) -> (
                    w.running <- None;
                    match result with
                    | Ok value ->
                        let metrics =
                          (* A malformed profile never kills the parent:
                             the job's value stands, the profile degrades
                             to empty and the corruption is surfaced. *)
                          try Metrics.of_json mjson
                          with Metrics.Parse_error msg ->
                            Metrics.incr profile_bad_counter;
                            (match diags with
                            | Some c ->
                                Diag.addf c ~severity:Diag.Warning
                                  ~stage:Diag.Pool ~code:"POOL-PROFILE-BAD"
                                  "job %d: worker profile unreadable (%s); \
                                   profile dropped"
                                  idx msg
                            | None -> ());
                            empty_snapshot
                        in
                        record idx
                          (Done
                             {
                               value;
                               attempts = attempts.(idx);
                               lost = List.rev failures.(idx);
                               metrics;
                             })
                    | Error reason ->
                        fail_attempt idx ("job raised: " ^ reason))
                | `Bad msg ->
                    (* The worker is alive but its stream is garbage;
                       there is no resynchronising a marshal pipe, so
                       kill it and recover as for a crash. *)
                    Metrics.incr bad_frame_counter;
                    w.death_note <-
                      Some
                        (Printf.sprintf "corrupt result frame: %s (POOL-BAD-FRAME)"
                           msg);
                    (try Unix.kill w.pid Sys.sigkill
                     with Unix.Unix_error _ -> ());
                    handle_death w
                | `Eof ->
                    (* EOF mid-stream: the worker died. *)
                    handle_death w))
          readable;
        (* Deadline sweep: a worker that has sat on one job longer than
           the budget is hung, not crashed - SIGKILL turns it into a
           reapable death with a [POOL-DEADLINE] note.  The snapshot may
           contain workers the readable loop already reaped; skip them
           or the lost job would be failed twice. *)
        match deadline with
        | None -> ()
        | Some d ->
            let now = Metrics.now () in
            List.iter
              (fun w ->
                if (not w.reaped) && w.running <> None && now -. w.started >= d
                then begin
                  Metrics.incr deadline_counter;
                  w.death_note <-
                    Some
                      (Printf.sprintf
                         "job exceeded the %gs deadline (POOL-DEADLINE)" d);
                  (try Unix.kill w.pid Sys.sigkill
                   with Unix.Unix_error _ -> ());
                  handle_death w
                end)
              !alive
      end
    done;
    let outcomes =
      Array.to_list (Array.map (fun r -> Option.get r) results)
    in
    let merged =
      List.fold_left
        (fun acc o ->
          match o with
          | Done { metrics; _ } -> Metrics.merge acc metrics
          | Failed _ -> acc)
        empty_snapshot outcomes
    in
    (outcomes, merged)
  end

(* ================================================================== *)
(* Persistent server pool: the long-lived generalisation of [map] that
   `dsmloc serve` dispatches onto.  Differences from [map]:

   - jobs arrive over time ([submit]) instead of as one batch, and
     admission is bounded: past [queue_cap] queued jobs [submit]
     sheds ([`Overloaded]) instead of growing without bound;
   - workers are warm: no per-job state reset, so interned expressions
     and artifact stores accumulate across requests - that is the
     point - and are instead bounded by recycling (a worker that has
     served [max_worker_jobs] requests or grown past
     [max_worker_rss_kb] is stopped and replaced by a fresh fork that
     starts from clean analysis state);
   - every job can carry an absolute deadline covering queue + service
     time; an expired in-flight job gets its worker SIGKILLed and
     replaced, an expired queued job is failed without running;
   - completions are pulled by the owner's event loop ([step]), which
     multiplexes the pool's pipes into its own [select]. *)

let worker_rss_kb () =
  (* Linux: VmRSS from /proc/self/status.  Elsewhere degrade to the
     OCaml heap size, which under-reports but still catches unbounded
     analysis-state growth. *)
  let from_proc () =
    let ic = open_in "/proc/self/status" in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let rec scan () =
      match input_line ic with
      | line ->
          if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then
            let digits =
              String.to_seq line
              |> Seq.filter (fun c -> c >= '0' && c <= '9')
              |> String.of_seq
            in
            int_of_string_opt digits
          else scan ()
      | exception End_of_file -> None
    in
    scan ()
  in
  let fallback () =
    let words = (Gc.quick_stat ()).Gc.heap_words in
    words * (Sys.word_size / 8) / 1024
  in
  match from_proc () with
  | Some kb -> kb
  | None -> fallback ()
  | exception Sys_error _ -> fallback ()

module Server = struct
  type 'a job = {
    id : int;
    payload : 'a;
    affinity : int option;
    deadline_at : float option;  (* absolute, covers queue + service *)
    submitted : float;
    mutable attempts : int;
  }

  type 'a slot_state = Idle | Busy of 'a job

  type ('a, 'b) slot = {
    index : int;
    mutable w : worker;
    mutable st : 'a slot_state;
    mutable jobs_done : int;  (* since this worker was forked *)
    mutable rss_kb : int;  (* worker's last self-reported RSS *)
  }

  type 'b completion = {
    c_id : int;
    c_outcome : ('b, string * string) result;
        (* Error (code, reason): POOL-DEADLINE, POOL-WORKER-LOST,
           POOL-BAD-FRAME, POOL-RAISED, POOL-DRAIN *)
    c_attempts : int;
    c_queued_s : float;
    c_ran_s : float;
    c_worker_jobs : int;  (* jobs the serving worker has done, this included *)
  }

  type ('a, 'b) t = {
    f : 'a -> 'b;
    retries : int;
    queue_cap : int;
    max_worker_jobs : int;
    max_worker_rss_kb : int;
    result_cap : int;
    slots : ('a, 'b) slot array;
    mutable pending : 'a job list;  (* admission queue, oldest first *)
    mutable next_id : int;
    mutable recycle_count : int;
    mutable destroyed : bool;
    old_sigpipe : Sys.signal_behavior option;
  }

  let recycles t = t.recycle_count
  let queue_depth t = List.length t.pending

  let in_flight t =
    Array.fold_left
      (fun n s -> match s.st with Busy _ -> n + 1 | Idle -> n)
      0 t.slots

  let server_jobs_counter = Metrics.counter "pool.server_jobs"
  let recycle_counter = Metrics.counter "pool.recycles"

  (* Warm worker loop: no per-job reset (recycling bounds the state);
     each result frame carries the worker's current RSS so the parent
     can apply the watermark. *)
  let server_worker_loop ~f job_r res_w =
    (* A recycled slot's replacement starts from clean analysis state
       even though fork copies the parent's heap. *)
    Metrics.reset ();
    Artifact.clear_all ();
    Expr.intern_reset ();
    let rec loop () =
      match recv job_r with
      | `Eof | `Bad _ | `Frame Stop -> ()
      | `Frame (Job (id, _attempt, payload)) ->
          let result =
            try Ok (f payload) with e -> Error (Printexc.to_string e)
          in
          send res_w (id, result, worker_rss_kb ());
          loop ()
    in
    loop ()

  let spawn_slot t index =
    let sibling_fds =
      Array.to_list t.slots
      |> List.concat_map (fun s ->
             if s.index = index || s.w.reaped then []
             else [ s.w.job_w; s.w.res_r ])
    in
    spawn_with ~loop:(server_worker_loop ~f:t.f) ~sibling_fds

  let create ?(workers = 4) ?(queue_cap = 64) ?(retries = 1)
      ?(max_worker_jobs = 512) ?(max_worker_rss_kb = 1 lsl 20)
      ?(result_cap = default_frame_cap) ~f () =
    let old_sigpipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ -> None
    in
    let t =
      {
        f;
        retries;
        queue_cap;
        max_worker_jobs = max 1 max_worker_jobs;
        max_worker_rss_kb = max 1024 max_worker_rss_kb;
        result_cap;
        slots =
          Array.init (max 1 workers) (fun index ->
              {
                index;
                w =
                  {
                    pid = -1;
                    job_w = Unix.stdin;
                    res_r = Unix.stdin;
                    running = None;
                    started = 0.;
                    death_note = None;
                    reaped = true;
                  };
                st = Idle;
                jobs_done = 0;
                rss_kb = 0;
              });
        pending = [];
        next_id = 0;
        recycle_count = 0;
        destroyed = false;
        old_sigpipe;
      }
    in
    Array.iter (fun s -> s.w <- spawn_slot t s.index) t.slots;
    t

  let dispatch _t slot job =
    job.attempts <- job.attempts + 1;
    slot.st <- Busy job;
    slot.w.running <- Some job.id;
    slot.w.started <- Metrics.now ();
    try send slot.w.job_w (Job (job.id, job.attempts, job.payload))
    with Unix.Unix_error (Unix.EPIPE, _, _) | Sys_error _ ->
      (* dead already: its EOF drives recovery on the next step *)
      ()

  (* Pull the next queued job for an idle slot, preferring one whose
     affinity hashes to this slot so repeated programs land on the
     worker that already holds their warm artifacts. *)
  let take_pending t slot_index =
    let n = Array.length t.slots in
    let matches j =
      match j.affinity with Some a -> a mod n = slot_index | None -> false
    in
    match List.find_opt matches t.pending with
    | Some j ->
        t.pending <- List.filter (fun j' -> j'.id <> j.id) t.pending;
        Some j
    | None -> (
        match t.pending with
        | [] -> None
        | j :: rest ->
            t.pending <- rest;
            Some j)

  let fill_idle t =
    Array.iter
      (fun s ->
        if s.st = Idle && t.pending <> [] then
          match take_pending t s.index with
          | Some j -> dispatch t s j
          | None -> ())
      t.slots

  let submit t ?affinity ?deadline payload =
    if t.destroyed then Result.Error `Overloaded
    else begin
      let now = Metrics.now () in
      let job =
        {
          id = t.next_id;
          payload;
          affinity;
          deadline_at = Option.map (fun d -> now +. d) deadline;
          submitted = now;
          attempts = 0;
        }
      in
      let n = Array.length t.slots in
      let idle_pref =
        let pref =
          match affinity with
          | Some a when t.slots.(a mod n).st = Idle -> Some t.slots.(a mod n)
          | _ -> None
        in
        match pref with
        | Some _ -> pref
        | None -> Array.find_opt (fun s -> s.st = Idle) t.slots
      in
      match idle_pref with
      | Some s ->
          t.next_id <- t.next_id + 1;
          Metrics.incr server_jobs_counter;
          dispatch t s job;
          Result.Ok job.id
      | None ->
          if List.length t.pending >= t.queue_cap then Result.Error `Overloaded
          else begin
            t.next_id <- t.next_id + 1;
            Metrics.incr server_jobs_counter;
            t.pending <- t.pending @ [ job ];
            Result.Ok job.id
          end
    end

  let readable_fds t =
    Array.to_list t.slots
    |> List.filter_map (fun s -> if s.w.reaped then None else Some s.w.res_r)

  let next_deadline t =
    let fold acc = function
      | Some d -> ( match acc with None -> Some d | Some a -> Some (min a d))
      | None -> acc
    in
    let acc =
      Array.fold_left
        (fun acc s ->
          match s.st with Busy j -> fold acc j.deadline_at | Idle -> acc)
        None t.slots
    in
    List.fold_left (fun acc j -> fold acc j.deadline_at) acc t.pending

  let completion_of job outcome ~ran ~worker_jobs =
    let now = Metrics.now () in
    {
      c_id = job.id;
      c_outcome = outcome;
      c_attempts = job.attempts;
      c_queued_s = max 0. (now -. job.submitted -. ran);
      c_ran_s = ran;
      c_worker_jobs = worker_jobs;
    }

  let recycle t slot =
    t.recycle_count <- t.recycle_count + 1;
    Metrics.incr recycle_counter;
    (try send slot.w.job_w Stop with Unix.Unix_error _ | Sys_error _ -> ());
    close_worker_fds slot.w;
    ignore (reap slot.w);
    slot.w <- spawn_slot t slot.index;
    slot.st <- Idle;
    slot.jobs_done <- 0;
    slot.rss_kb <- 0

  (* The slot's worker is gone (crash, deadline kill, babble kill):
     reap, respawn, and either retry or fail the in-flight job.
     Deadline expiries never retry - re-running a hung request just
     burns a second deadline. *)
  let handle_slot_death t slot ~code completions =
    Metrics.incr crash_counter;
    let reason = reap slot.w in
    let ran =
      match slot.st with
      | Busy _ -> max 0. (Metrics.now () -. slot.w.started)
      | Idle -> 0.
    in
    let worker_jobs = slot.jobs_done in
    close_worker_fds slot.w;
    let job = match slot.st with Busy j -> Some j | Idle -> None in
    slot.st <- Idle;
    slot.w <- spawn_slot t slot.index;
    slot.jobs_done <- 0;
    slot.rss_kb <- 0;
    match job with
    | None -> completions
    | Some j ->
        let retryable = code = "POOL-WORKER-LOST" in
        if retryable && j.attempts <= t.retries then begin
          Metrics.incr retry_counter;
          t.pending <- j :: t.pending;
          completions
        end
        else
          completion_of j (Result.Error (code, reason)) ~ran ~worker_jobs
          :: completions

  let step t ?(readable = []) () =
    let completions = ref [] in
    (* 1. results and deaths on the worker pipes *)
    List.iter
      (fun fd ->
        match
          Array.find_opt (fun s -> (not s.w.reaped) && s.w.res_r = fd) t.slots
        with
        | None -> ()
        | Some slot -> (
            match recv ~cap:t.result_cap slot.w.res_r with
            | `Frame (id, result, rss) -> (
                slot.rss_kb <- rss;
                match slot.st with
                | Busy job when job.id = id ->
                    slot.jobs_done <- slot.jobs_done + 1;
                    let outcome =
                      match result with
                      | Ok v -> Result.Ok v
                      | Error msg -> Result.Error ("POOL-RAISED", msg)
                    in
                    completions :=
                      completion_of job outcome
                        ~ran:(max 0. (Metrics.now () -. slot.w.started))
                        ~worker_jobs:slot.jobs_done
                      :: !completions;
                    slot.st <- Idle;
                    slot.w.running <- None;
                    if
                      slot.jobs_done >= t.max_worker_jobs
                      || slot.rss_kb >= t.max_worker_rss_kb
                    then recycle t slot
                | _ ->
                    (* stray frame for a job we already wrote off (e.g.
                       its deadline fired between send and receipt):
                       drop it, the worker is healthy *)
                    slot.st <- Idle;
                    slot.w.running <- None)
            | `Bad msg ->
                Metrics.incr bad_frame_counter;
                slot.w.death_note <-
                  Some
                    (Printf.sprintf "corrupt result frame: %s" msg);
                (try Unix.kill slot.w.pid Sys.sigkill
                 with Unix.Unix_error _ -> ());
                completions :=
                  handle_slot_death t slot ~code:"POOL-BAD-FRAME" !completions
            | `Eof ->
                completions :=
                  handle_slot_death t slot ~code:"POOL-WORKER-LOST" !completions
            ))
      readable;
    (* 2. deadline sweep: in-flight jobs past their absolute deadline
       kill their worker; queued jobs past it fail without running *)
    let now = Metrics.now () in
    Array.iter
      (fun slot ->
        match slot.st with
        | Busy job when
            (match job.deadline_at with Some d -> now >= d | None -> false) ->
            Metrics.incr deadline_counter;
            slot.w.death_note <-
              Some
                (Printf.sprintf "request exceeded its deadline after %.3fs"
                   (now -. job.submitted));
            (try Unix.kill slot.w.pid Sys.sigkill
             with Unix.Unix_error _ -> ());
            completions :=
              handle_slot_death t slot ~code:"POOL-DEADLINE" !completions
        | _ -> ())
      t.slots;
    let expired, live =
      List.partition
        (fun j ->
          match j.deadline_at with Some d -> now >= d | None -> false)
        t.pending
    in
    t.pending <- live;
    List.iter
      (fun j ->
        Metrics.incr deadline_counter;
        completions :=
          completion_of j
            (Result.Error
               ("POOL-DEADLINE", "request deadline expired while queued"))
            ~ran:0. ~worker_jobs:0
          :: !completions)
      expired;
    (* 3. hand freed workers the next queued jobs *)
    fill_idle t;
    List.rev !completions

  (* Event-loop helper for owners without their own fd set: select on
     the pool's pipes (bounded by [timeout] and the next deadline) and
     step once. *)
  let wait_step t ~timeout =
    let fds = readable_fds t in
    let timeout =
      match next_deadline t with
      | None -> timeout
      | Some d ->
          let until = max 0. (d -. Metrics.now ()) in
          if timeout < 0. then until else min timeout until
    in
    let readable, _, _ = restart (fun () -> Unix.select fds [] [] timeout) in
    step t ~readable ()

  let drain t ~deadline =
    let until = Metrics.now () +. deadline in
    let completions = ref [] in
    let rec go () =
      if in_flight t = 0 && t.pending = [] then ()
      else
        let left = until -. Metrics.now () in
        if left <= 0. then ()
        else begin
          completions := !completions @ wait_step t ~timeout:left;
          go ()
        end
    in
    go ();
    (* whatever outlived the drain deadline is failed, not awaited *)
    Array.iter
      (fun slot ->
        match slot.st with
        | Busy job ->
            slot.w.death_note <- Some "daemon drain deadline expired";
            (try Unix.kill slot.w.pid Sys.sigkill
             with Unix.Unix_error _ -> ());
            Metrics.incr crash_counter;
            let ran = max 0. (Metrics.now () -. slot.w.started) in
            let reason = reap slot.w in
            close_worker_fds slot.w;
            slot.st <- Idle;
            completions :=
              !completions
              @ [
                  completion_of job (Result.Error ("POOL-DRAIN", reason))
                    ~ran ~worker_jobs:slot.jobs_done;
                ]
        | Idle -> ())
      t.slots;
    let leftover = t.pending in
    t.pending <- [];
    completions :=
      !completions
      @ List.map
          (fun j ->
            completion_of j
              (Result.Error ("POOL-DRAIN", "daemon shutting down"))
              ~ran:0. ~worker_jobs:0)
          leftover;
    !completions

  let destroy t =
    if not t.destroyed then begin
      t.destroyed <- true;
      Array.iter
        (fun slot ->
          if not slot.w.reaped then begin
            (try send slot.w.job_w Stop
             with Unix.Unix_error _ | Sys_error _ -> ());
            close_worker_fds slot.w;
            ignore (reap slot.w)
          end)
        t.slots;
      match t.old_sigpipe with
      | Some b -> Sys.set_signal Sys.sigpipe b
      | None -> ()
    end
end
