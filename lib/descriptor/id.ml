open Symbolic

type row = {
  seq_alphas : Expr.t list;
  offset0 : Expr.t;
  par_stride : Expr.t;
  par_sign : int;
  span_seq : Expr.t;
  mix : Access_mix.t;
}

type group = { seq_dims : Pd.dim list; rows : row list }

type t = { array : string; ctx : Ir.Phase.t; groups : group list; exact : bool }

let of_pd (pd : Pd.t) : t =
  let convert_group (g : Pd.group) : group =
    let seq = Pd.seq_dims g in
    let seq_dims = List.map snd seq in
    let rows =
      List.map
        (fun (r : Pd.row) ->
          {
            seq_alphas = List.map (fun (i, _) -> List.nth r.alphas i) seq;
            offset0 = r.offset;
            par_stride =
              (match Pd.par_stride g with Some s -> s | None -> Expr.zero);
            par_sign = Pd.par_sign r g;
            span_seq = Pd.row_span_seq g r;
            mix = r.mix;
          })
        g.rows
    in
    { seq_dims; rows }
  in
  {
    array = pd.array;
    ctx = pd.ctx;
    groups = List.map convert_group pd.groups;
    exact = pd.exact;
  }

(* Like [Pd.key]: the projected content without [ctx] (callers whose
   cached values consult the context - symmetry's write checks - fold
   [Ir.Phase.key] into their own keys). *)
let row_key (r : row) =
  Artifact.Key.(
    list
      [
        list (List.map expr r.seq_alphas);
        expr r.offset0;
        expr r.par_stride;
        int r.par_sign;
        expr r.span_seq;
        list [ bool r.mix.Access_mix.reads; bool r.mix.Access_mix.writes ];
      ])

let group_key (g : group) =
  Artifact.Key.(
    list
      [
        list (List.map Pd.dim_key g.seq_dims);
        list (List.map row_key g.rows);
      ])

let key (t : t) =
  Artifact.Key.(
    list [ str t.array; list (List.map group_key t.groups); bool t.exact ])

let digest t = Artifact.Key.hash (key t)

let offset_at r ~i =
  Expr.add r.offset0
    (Expr.mul (Expr.int r.par_sign) (Expr.mul r.par_stride i))

let upper_at r ~i = Expr.add (offset_at r ~i) r.span_seq

let all_rows t = List.concat_map (fun g -> g.rows) t.groups

let par_strides t =
  all_rows t
  |> List.filter_map (fun r ->
         if Expr.is_zero r.par_stride then None else Some r.par_stride)
  |> List.sort_uniq Expr.compare

let rectangular t =
  List.for_all
    (fun g -> List.for_all (fun (d : Pd.dim) -> d.uniform) g.seq_dims)
    t.groups

let pp ppf t =
  let pp_row ppf r =
    Format.fprintf ppf "tau_B(i)=%a%s%a*i span=%a %a" Expr.pp r.offset0
      (if r.par_sign >= 0 then " + " else " - ")
      Expr.pp r.par_stride Expr.pp r.span_seq Access_mix.pp r.mix
  in
  Format.fprintf ppf "@[<v 2>ID %s:@,%a@]" t.array
    (Format.pp_print_list pp_row) (all_rows t)
