open Symbolic

type verdict = Pass | Skip of string | Fail of string

type check = {
  name : string;
  doc : string;
  run : Ir.Types.program -> verdict;
}

let h = 4

let with_mode m f =
  let saved = !Lattice.mode in
  Fun.protect
    ~finally:(fun () -> Lattice.mode := saved)
    (fun () ->
      Lattice.mode := m;
      f ())

let run_pipeline prog =
  Core.Pipeline.run prog ~env:(Gen.midpoint_env prog) ~h

let render prog =
  let t = run_pipeline prog in
  (Format.asprintf "%a@." Core.Pipeline.report_core t, t)

let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i = function
    | [], [] -> None
    | x :: xs, y :: ys -> if String.equal x y then go (i + 1) (xs, ys) else Some (i, x, y)
    | x :: _, [] -> Some (i, x, "<missing>")
    | [], y :: _ -> Some (i, "<missing>", y)
  in
  go 1 (la, lb)

(* ------------------------------------------------------------------ *)

let roundtrip prog =
  let src = Frontend.Unparse.to_string prog in
  match Core.Pipeline.parse_program ~where:"<fuzz>" src with
  | None -> Fail "generated source does not parse back"
  | Some p2 ->
      let src2 = Frontend.Unparse.to_string p2 in
      if String.equal src src2 then Pass
      else
        Fail
          (match first_diff src src2 with
          | Some (l, a, b) ->
              Printf.sprintf "unparse not a fixed point at line %d: %S vs %S" l a b
          | None -> "unparse not a fixed point")

(* Diagnostics compared structurally, modulo the fallback-visibility
   note only the symbolic side can emit (mode-dependent by design). *)
let diag_sig t =
  List.filter_map
    (fun (d : Core.Diag.t) ->
      if String.equal d.Core.Diag.code "LINT-SYMBOLIC-FALLBACK" then None
      else Some (Printf.sprintf "%s|%s" d.Core.Diag.code d.Core.Diag.message))
    (Core.Pipeline.diagnostics t)

let enum_parity prog =
  let sym, t = with_mode Lattice.Auto (fun () -> render prog) in
  let enu, te = with_mode Lattice.Enumerated_only (fun () -> render prog) in
  match first_diff sym enu with
  | Some (l, a, b) ->
      Fail
        (Printf.sprintf
           "symbolic and enumerated reports diverge at line %d: %S vs %S" l a b)
  | None ->
      if diag_sig t <> diag_sig te then
        Fail "symbolic and enumerated diagnostics diverge"
      else Pass

let race_oracle prog =
  let diags = Core.Diag.collector () in
  let (_ : Ir.Types.program) =
    Core.Lint.autopar ~envs:[ Gen.midpoint_env prog ] ~diags prog
  in
  match
    List.find_opt
      (fun (d : Core.Diag.t) -> String.equal d.code "RACE-ORACLE-MISMATCH")
      (Core.Diag.to_list diags)
  with
  | Some d -> Fail ("certifier vs dynamic oracle: " ^ d.message)
  | None -> Pass

(* Exact evaluation of an LP row at an integer point. *)
let satisfies_row (c : Ilp.Lp.constr) (p : int array) =
  let s = ref Qnum.zero in
  Array.iteri (fun i q -> s := Qnum.add !s (Qnum.mul q (Qnum.of_int p.(i)))) c.coeffs;
  match c.cmp with
  | Ilp.Lp.Le -> Qnum.compare !s c.rhs <= 0
  | Ilp.Lp.Ge -> Qnum.compare !s c.rhs >= 0
  | Ilp.Lp.Eq -> Qnum.equal !s c.rhs

let satisfies_lp (lp : Ilp.Lp.problem) p =
  List.for_all (fun c -> satisfies_row c p) lp.constraints

let ilp_chain prog =
  let t = with_mode Lattice.Auto (fun () -> run_pipeline prog) in
  if Core.Pipeline.degraded t then Skip "pipeline degraded"
  else if t.solution.budget_exhausted then Skip "chain enumeration budget exhausted"
  else begin
    let model = t.model in
    let sol = t.solution in
    (* 1. The chain point satisfies every row it claims to: the
       non-broken locality equalities and the load-balance bounds. *)
    let broken (l : Ilp.Model.locality) =
      List.exists
        (fun (a, k, g) -> String.equal a l.array && k = l.k && g = l.g)
        sol.broken
    in
    let bad_loc =
      List.find_opt
        (fun (l : Ilp.Model.locality) ->
          (not (broken l)) && l.ai * sol.p.(l.k) <> (l.bi * sol.p.(l.g)) + l.ci)
        model.locality
    in
    let bad_bound =
      List.find_opt
        (fun (b : Ilp.Model.bound) -> sol.p.(b.k) < 1 || sol.p.(b.k) > b.hi)
        model.bounds
    in
    match (bad_loc, bad_bound) with
    | Some l, _ ->
        Fail
          (Printf.sprintf
             "chain point violates unbroken locality row %s: %d p%d = %d p%d + %d"
             l.array l.ai l.k l.bi l.g l.ci)
    | _, Some b ->
        Fail
          (Printf.sprintf "chain point violates bound row: p%d = %d not in 1..%d"
             b.k sol.p.(b.k) b.hi)
    | None, None -> (
        (* 2. Branch-and-bound over the same rows (maximize sum p_k)
           must agree on feasibility, and its optimum bounds any chain
           point that satisfies the full row set (storage included). *)
        let lp =
          Ilp.Model.to_lp model
            ~objective:(Array.make model.n_phases Qnum.one)
        in
        let chain_fully_feasible = sol.broken = [] && satisfies_lp lp sol.p in
        match Ilp.Ilp_solver.solve_budgeted lp with
        | _, true -> Skip "branch-and-bound budget exhausted"
        | Ilp.Ilp_solver.Infeasible, false ->
            if chain_fully_feasible then
              Fail "B&B says infeasible, but the chain point satisfies every row"
            else Pass
        | Ilp.Ilp_solver.Unbounded, false ->
            if model.bounds <> [] then
              Fail "B&B says unbounded despite load-balance bound rows"
            else Skip "no bound rows"
        | Ilp.Ilp_solver.Optimal { value; point }, false ->
            if not (satisfies_lp lp point) then
              Fail "B&B optimum violates its own rows"
            else if
              chain_fully_feasible
              && Qnum.compare
                   (Qnum.of_int (Array.fold_left ( + ) 0 sol.p))
                   value
                 > 0
            then
              Fail
                (Printf.sprintf
                   "chain point is feasible with sum %d, above the B&B maximum %s"
                   (Array.fold_left ( + ) 0 sol.p)
                   (Qnum.to_string value))
            else Pass)
  end

let comm_parity prog =
  let t = with_mode Lattice.Auto (fun () -> run_pipeline prog) in
  let schedule mode =
    with_mode mode (fun () ->
        let errs = ref [] in
        let sched =
          Dsmsim.Comm.generate ~on_error:(fun m -> errs := m :: !errs) t.lcg t.plan
        in
        ( Format.asprintf "%a@." Dsmsim.Comm.pp sched,
          Dsmsim.Comm.total_words sched,
          Dsmsim.Comm.message_count sched,
          List.rev !errs ))
  in
  let ps, ws, ms, es = schedule Lattice.Auto in
  let pe, we, me, ee = schedule Lattice.Enumerated_only in
  if ws <> we then
    Fail (Printf.sprintf "total_words %d (symbolic) vs %d (enumerated)" ws we)
  else if ms <> me then
    Fail (Printf.sprintf "message_count %d (symbolic) vs %d (enumerated)" ms me)
  else if es <> ee then Fail "schedule generation errors diverge between modes"
  else
    match first_diff ps pe with
    | Some (l, a, b) ->
        Fail (Printf.sprintf "schedules diverge at line %d: %S vs %S" l a b)
    | None -> Pass

let cold_warm prog =
  (* Both runs re-parse the same source so every expression is rebuilt
     against the current intern table; only the artifact store's
     temperature differs. *)
  let src = Frontend.Unparse.to_string prog in
  let parse () =
    match Core.Pipeline.parse_program ~where:"<fuzz>" src with
    | Some p -> p
    | None -> failwith "cold-warm: source does not parse"
  in
  Artifact.clear_all ();
  let cold, _ = with_mode Lattice.Auto (fun () -> render (parse ())) in
  let warm, _ = with_mode Lattice.Auto (fun () -> render (parse ())) in
  match first_diff cold warm with
  | Some (l, a, b) ->
      Fail
        (Printf.sprintf "cold and warm reports diverge at line %d: %S vs %S" l a b)
  | None -> Pass

(* Simulated-vs-executed parity: actually run the generated program on
   OCaml domains and hold it to the model - delivered messages must
   equal the Comm schedule under the same gating, every executed read
   must equal its sequential-replay value, and final-epoch contents
   must land in the owners' replicas.  Generated parallel loops are
   race-free by construction (see {!Gen}), so any stale read here is a
   protocol bug, not a program bug. *)
let exec_budget_words = 1 lsl 16

let exec_parity prog =
  let t = with_mode Lattice.Auto (fun () -> run_pipeline prog) in
  if Core.Pipeline.degraded t then Skip "pipeline degraded"
  else begin
    let unsized =
      List.find_opt
        (fun (d : Ir.Types.array_decl) ->
          Dsmsim.Comm.array_size t.lcg d.name = None)
        t.lcg.prog.arrays
    in
    match unsized with
    | Some d -> Skip ("size of " ^ d.name ^ " does not evaluate")
    | None ->
        let total =
          List.fold_left
            (fun acc (d : Ir.Types.array_decl) ->
              acc
              + Option.value ~default:0 (Dsmsim.Comm.array_size t.lcg d.name))
            0 t.lcg.prog.arrays
        in
        if total > exec_budget_words then
          Skip (Printf.sprintf "arrays total %d words, over budget" total)
        else begin
          let rounds = if prog.Ir.Types.repeats then 2 else 1 in
          let v = Dsmsim.Validate.run ~rounds t.lcg t.plan in
          if v.stale > 0 then
            Skip "simulated replay itself reads stale (caught by validate)"
          else
            match Exec.Runner.execute ~rounds t.lcg t.plan with
            | exception Exec.Runner.Unsupported m -> Skip ("unsupported: " ^ m)
            | r ->
                if r.errors <> [] then
                  Fail ("executor error: " ^ String.concat "; " r.errors)
                else if not (Exec.Runner.schedule_parity r) then
                  Fail
                    (Printf.sprintf
                       "delivered %d msgs / %d words, schedule has %d / %d"
                       r.sched_messages r.sched_words r.expected_messages
                       r.expected_words)
                else if r.stale > 0 then
                  Fail
                    (Printf.sprintf "%d stale reads (of %d checked)" r.stale
                       r.reads_checked)
                else if r.content_mismatches > 0 then
                  Fail
                    (Printf.sprintf "%d final cells differ from replay (of %d)"
                       r.content_mismatches r.content_cells)
                else Pass
        end
  end

(* ------------------------------------------------------------------ *)

let guarded f prog = try f prog with e -> Fail ("exception: " ^ Printexc.to_string e)

let checks =
  [
    { name = "roundtrip";
      doc = "unparse -> parse -> unparse is a fixed point";
      run = guarded roundtrip;
    };
    { name = "enum-parity";
      doc = "report_core identical under symbolic and enumerated accounting";
      run = guarded enum_parity;
    };
    { name = "race-oracle";
      doc = "static race certifier agrees with the dynamic sampling oracle";
      run = guarded race_oracle;
    };
    { name = "ilp-chain";
      doc = "chain enumerator and branch-and-bound agree on the Table-2 rows";
      run = guarded ilp_chain;
    };
    { name = "comm-parity";
      doc = "communication schedule identical under both accounting modes";
      run = guarded comm_parity;
    };
    { name = "cold-warm";
      doc = "warm artifact store reproduces the cold report";
      run = guarded cold_warm;
    };
    { name = "exec-parity";
      doc = "domain execution matches the schedule and the sequential replay";
      run = guarded exec_parity;
    };
  ]

let find name = List.find (fun c -> String.equal c.name name) checks

let battery prog = List.map (fun c -> (c.name, c.run prog)) checks

let first_failure prog =
  List.fold_left
    (fun acc c ->
      match acc with
      | Some _ -> acc
      | None -> ( match c.run prog with Fail d -> Some (c.name, d) | _ -> None))
    None checks
