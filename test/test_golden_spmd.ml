(* Golden snapshots of the SPMD prose emitter for every registry
   kernel: the exact text of `Codegen.Spmd.generate` under the default
   size knob on 4 processors is pinned so that the Machine-signature
   refactor of the execution stack (and any later change to the plan or
   schedule machinery) cannot silently change emitted code.

   Regenerate after an intentional emitter change with

     GOLDEN_UPDATE=1 dune exec test/test_golden_spmd.exe

   and paste the emitted bindings over the [golden] table below. *)

open Symbolic

let snapshot name =
  let e = Codes.Registry.find name in
  Probe.with_seed 701 (fun () ->
      Core.Artifact.clear_all ();
      let t =
        Core.Pipeline.run e.program ~env:(e.env_of_size e.default_size) ~h:4
      in
      Codegen.Spmd.generate t.Core.Pipeline.lcg t.Core.Pipeline.plan
        t.Core.Pipeline.machine)

let golden : (string * string) list =
  [
    ("tfft2", {golden|! SPMD code generated from the LCG-derived distribution
! program tfft2 on 4 processors (me = 0..3)

! layout X: CYCLIC(64) anchored at 0
! layout Y: CYCLIC(32) anchored at 0
subroutine phase_F1(me)
  do M_blk = 0 + me*32, -1 + P*Q, NPROC*32   ! CYCLIC(32) chunks of mine
  do M = M_blk, min(M_blk + 31, -1 + P*Q)
    Y(M) = X(2*M) + X(1 + 2*M)
    Y(M + P*Q) = X(2*M) + X(1 + 2*M)
    
  end do
  end do
  
end subroutine

! layout X: CYCLIC(1) anchored at 0
subroutine phase_F2(me)
  do J_blk = 0 + me*1, -1 + P, NPROC*1   ! CYCLIC(1) chunks of mine
  do J = J_blk, min(J_blk + 0, -1 + P)
    do I = 0, -1 + Q
      X(2*I*P + J) = Y(I + J*Q) + Y(I + J*Q + P*Q)
      X(2*I*P + J + P) = Y(I + J*Q) + Y(I + J*Q + P*Q)
      
    end do
    
  end do
  end do
  
end subroutine

call redistribute_X()   ! 12 aggregated puts, 1536 words

! layout X: CYCLIC(64) anchored at 0
! Y privatized: each processor uses a local copy
subroutine phase_F3(me)
  do I_blk = 0 + me*1, -1 + Q, NPROC*1   ! CYCLIC(1) chunks of mine
  do I = I_blk, min(I_blk + 0, -1 + Q)
    do S = 0, -1 + 2*P
      Y(2*I*P + S) = ...
      
    end do
    do L = 1, p
      do J = 0, -1 + P*2^(-L)
        do K = 0, -1 + 1/2*2^(L)
          X(2*I*P + 1/2*J*2^(L) + K) = Y(2*I*P + K) + X(2*I*P + 1/2*J*2^(L) + K) + X(2*I*P + 1/2*J*2^(L) + K + 1/2*P)
          
        end do
        
      end do
      
    end do
    
  end do
  end do
  
end subroutine

! layout Y: CYCLIC(1) anchored at 0
subroutine phase_F4(me)
  do I_blk = 0 + me*1, -1 + Q, NPROC*1   ! CYCLIC(1) chunks of mine
  do I = I_blk, min(I_blk + 0, -1 + Q)
    do J = 0, -1 + P
      ... = X(2*I*P + J)
      
    end do
    do J2 = 0, -1 + 2*P
      Y(I + J2*Q) = ...
      
    end do
    
  end do
  end do
  
end subroutine

call redistribute_Y()   ! 12 aggregated puts, 1536 words

! layout Y: CYCLIC(64) anchored at 0
subroutine phase_F5(me)
  do J_blk = 0 + me*1, -1 + P, NPROC*1   ! CYCLIC(1) chunks of mine
  do J = J_blk, min(J_blk + 0, -1 + P)
    do I = 0, -1 + 2*Q
      X(I + 2*J*Q) = Y(I + 2*J*Q)
      
    end do
    
  end do
  end do
  
end subroutine

subroutine phase_F6(me)
  do J_blk = 0 + me*1, -1 + P, NPROC*1   ! CYCLIC(1) chunks of mine
  do J = J_blk, min(J_blk + 0, -1 + P)
    do I = 0, -1 + 2*Q
      Y(I + 2*J*Q) = X(I + 2*J*Q)
      
    end do
    do I2 = 0, -1 + 2*Q
      X(I2 + 2*J*Q) = Y(I2 + 2*J*Q)
      
    end do
    
  end do
  end do
  
end subroutine

subroutine phase_F7(me)
  do J_blk = 0 + me*1, -1 + P, NPROC*1   ! CYCLIC(1) chunks of mine
  do J = J_blk, min(J_blk + 0, -1 + P)
    do I = 0, -1 + 2*Q
      ... = X(I + 2*J*Q)
      
    end do
    
  end do
  end do
  
end subroutine

subroutine phase_F8(me)
  do M_blk = 0 + me*64, -1 + 1/2*P*Q, NPROC*64   ! CYCLIC(64) chunks of mine
  do M = M_blk, min(M_blk + 63, -1 + 1/2*P*Q)
    X(M) = Y(M) + Y(M + P*Q) + Y(-1 - M + P*Q) + Y(-1 - M + 2*P*Q)
    X(M + P*Q) = Y(M) + Y(M + P*Q) + Y(-1 - M + P*Q) + Y(-1 - M + 2*P*Q)
    X(-1 - M + P*Q) = Y(M) + Y(M + P*Q) + Y(-1 - M + P*Q) + Y(-1 - M + 2*P*Q)
    X(-1 - M + 2*P*Q) = Y(M) + Y(M + P*Q) + Y(-1 - M + P*Q) + Y(-1 - M + 2*P*Q)
    
  end do
  end do
  
end subroutine

|golden});
    ("jacobi2d", {golden|! SPMD code generated from the LCG-derived distribution
! program jacobi2d on 4 processors (me = 0..3)

! layout U: CYCLIC(256) anchored at 33, ghost zone 32
! layout V: CYCLIC(256) anchored at 33
subroutine phase_SWEEP(me)
  do c_blk = 1 + me*8, -2 + N, NPROC*8   ! CYCLIC(8) chunks of mine
  do c = c_blk, min(c_blk + 7, -2 + N)
    do r = 1, -2 + N
      V(N*c + r) = U(-N + N*c + r) + U(N + N*c + r) + U(-1 + N*c + r) + U(1 + N*c + r) + U(N*c + r)
      
    end do
    
  end do
  end do
  
end subroutine

subroutine phase_COPY(me)
  do c_blk = 1 + me*8, -2 + N, NPROC*8   ! CYCLIC(8) chunks of mine
  do c = c_blk, min(c_blk + 7, -2 + N)
    do r = 1, -2 + N
      U(N*c + r) = V(N*c + r)
      
    end do
    
  end do
  end do
  
end subroutine
call frontier_update_U()   ! 6 boundary puts, 192 words

|golden});
    ("swim", {golden|! SPMD code generated from the LCG-derived distribution
! program swim on 4 processors (me = 0..3)

! layout U: CYCLIC(256) anchored at 32
! layout V: CYCLIC(256) anchored at 33, ghost zone 30
! layout P: CYCLIC(256) anchored at 33, ghost zone 30
! layout CU: CYCLIC(256) anchored at 33, ghost zone 30
! layout CV: CYCLIC(256) anchored at 33
! layout PNEW: CYCLIC(256) anchored at 33
subroutine phase_CALC1(me)
  do c_blk = 1 + me*8, -2 + N, NPROC*8   ! CYCLIC(8) chunks of mine
  do c = c_blk, min(c_blk + 7, -2 + N)
    do r = 1, -2 + N
      CU(N*c + r) = P(N*c + r) + P(-N + N*c + r) + U(N*c + r) + U(-1 + N*c + r)
      CV(N*c + r) = P(N*c + r) + V(N*c + r) + V(-N + N*c + r)
      
    end do
    
  end do
  end do
  
end subroutine
call frontier_update_CU()   ! 6 boundary puts, 180 words

subroutine phase_CALC2(me)
  do c_blk = 1 + me*8, -2 + N, NPROC*8   ! CYCLIC(8) chunks of mine
  do c = c_blk, min(c_blk + 7, -2 + N)
    do r = 1, -2 + N
      PNEW(N*c + r) = CU(N*c + r) + CU(N + N*c + r) + CV(N*c + r) + CV(1 + N*c + r) + P(N*c + r)
      
    end do
    
  end do
  end do
  
end subroutine

subroutine phase_CALC3(me)
  do c_blk = 1 + me*8, -2 + N, NPROC*8   ! CYCLIC(8) chunks of mine
  do c = c_blk, min(c_blk + 7, -2 + N)
    do r = 1, -2 + N
      P(N*c + r) = PNEW(N*c + r)
      U(N*c + r) = PNEW(N*c + r)
      V(N*c + r) = PNEW(N*c + r)
      
    end do
    
  end do
  end do
  
end subroutine
call frontier_update_P()   ! 6 boundary puts, 180 words
call frontier_update_V()   ! 6 boundary puts, 180 words

|golden});
    ("tomcatv", {golden|! SPMD code generated from the LCG-derived distribution
! program tomcatv on 4 processors (me = 0..3)

call redistribute_PARTIAL()   ! 3 aggregated puts, 3 words

! layout X: CYCLIC(256) anchored at 33, ghost zone 32
! layout Y: CYCLIC(256) anchored at 33, ghost zone 32
! layout RX: CYCLIC(256) anchored at 33
! layout RY: CYCLIC(256) anchored at 33
! layout PARTIAL: CYCLIC(8) anchored at 1
subroutine phase_RESID(me)
  do c_blk = 1 + me*8, -2 + N, NPROC*8   ! CYCLIC(8) chunks of mine
  do c = c_blk, min(c_blk + 7, -2 + N)
    do r = 1, -2 + N
      RX(N*c + r) = X(N*c + r) + X(-N + N*c + r) + X(N + N*c + r) + X(-1 + N*c + r) + X(1 + N*c + r)
      RY(N*c + r) = Y(N*c + r) + Y(-N + N*c + r) + Y(N + N*c + r) + Y(-1 + N*c + r) + Y(1 + N*c + r)
      
    end do
    
  end do
  end do
  
end subroutine

subroutine phase_NORM(me)
  do c_blk = 1 + me*8, -2 + N, NPROC*8   ! CYCLIC(8) chunks of mine
  do c = c_blk, min(c_blk + 7, -2 + N)
    do r = 1, -2 + N
      PARTIAL(c) = RX(N*c + r) + RY(N*c + r)
      
    end do
    
  end do
  end do
  
end subroutine

call redistribute_PARTIAL()   ! 3 aggregated puts, 3 words

! layout PARTIAL: CYCLIC(8) anchored at 0
subroutine phase_COMBINE(me)
  do c = 1, -2 + N
    ... = PARTIAL(c)
    
  end do
  
end subroutine

subroutine phase_UPDATE(me)
  do c_blk = 1 + me*8, -2 + N, NPROC*8   ! CYCLIC(8) chunks of mine
  do c = c_blk, min(c_blk + 7, -2 + N)
    do r = 1, -2 + N
      X(N*c + r) = RX(N*c + r) + X(N*c + r)
      Y(N*c + r) = RY(N*c + r) + Y(N*c + r)
      
    end do
    
  end do
  end do
  
end subroutine
call frontier_update_X()   ! 6 boundary puts, 192 words
call frontier_update_Y()   ! 6 boundary puts, 192 words

|golden});
    ("matmul", {golden|! SPMD code generated from the LCG-derived distribution
! program matmul on 4 processors (me = 0..3)

! layout A: CYCLIC(64) anchored at 0, ghost zone 256
! layout B: CYCLIC(16) anchored at 0
! layout C: CYCLIC(16) anchored at 0
subroutine phase_INIT(me)
  do j_blk = 0 + me*1, -1 + N, NPROC*1   ! CYCLIC(1) chunks of mine
  do j = j_blk, min(j_blk + 0, -1 + N)
    do i = 0, -1 + N
      C(N*j + i) = ...
      
    end do
    
  end do
  end do
  
end subroutine

subroutine phase_MULT(me)
  do j_blk = 0 + me*1, -1 + N, NPROC*1   ! CYCLIC(1) chunks of mine
  do j = j_blk, min(j_blk + 0, -1 + N)
    do k = 0, -1 + N
      do i = 0, -1 + N
        C(N*j + i) = A(N*k + i) + B(N*j + k) + C(N*j + i)
        
      end do
      
    end do
    
  end do
  end do
  
end subroutine

subroutine phase_SCALE(me)
  do j_blk = 0 + me*1, -1 + N, NPROC*1   ! CYCLIC(1) chunks of mine
  do j = j_blk, min(j_blk + 0, -1 + N)
    do i = 0, -1 + N
      C(N*j + i) = C(N*j + i)
      
    end do
    
  end do
  end do
  
end subroutine

|golden});
    ("adi", {golden|! SPMD code generated from the LCG-derived distribution
! program adi on 4 processors (me = 0..3)

call redistribute_U()   ! 12 aggregated puts, 768 words

! layout U: CYCLIC(32) anchored at 0
subroutine phase_COLSWEEP(me)
  do c_blk = 0 + me*1, -1 + N, NPROC*1   ! CYCLIC(1) chunks of mine
  do c = c_blk, min(c_blk + 0, -1 + N)
    do r = 1, -1 + N
      U(N*c + r) = U(-1 + N*c + r) + U(N*c + r)
      
    end do
    
  end do
  end do
  
end subroutine

call redistribute_U()   ! 12 aggregated puts, 768 words

! layout U: CYCLIC(1) anchored at 0
subroutine phase_ROWSWEEP(me)
  do r_blk = 0 + me*1, -1 + N, NPROC*1   ! CYCLIC(1) chunks of mine
  do r = r_blk, min(r_blk + 0, -1 + N)
    do c = 1, -1 + N
      U(N*c + r) = U(-N + N*c + r) + U(N*c + r)
      
    end do
    
  end do
  end do
  
end subroutine

|golden});
    ("redblack", {golden|! SPMD code generated from the LCG-derived distribution
! program redblack on 4 processors (me = 0..3)

! layout G: CYCLIC(32) anchored at 1
subroutine phase_RED(me)
  do i_blk = 1 + me*16, -1 + N, NPROC*16   ! CYCLIC(16) chunks of mine
  do i = i_blk, min(i_blk + 15, -1 + N)
    G(2*i) = G(-1 + 2*i) + G(1 + 2*i)
    
  end do
  end do
  
end subroutine

subroutine phase_BLACK(me)
  do i_blk = 0 + me*16, -2 + N, NPROC*16   ! CYCLIC(16) chunks of mine
  do i = i_blk, min(i_blk + 15, -2 + N)
    G(1 + 2*i) = G(2*i) + G(2 + 2*i)
    
  end do
  end do
  
end subroutine

|golden});
    ("trisolve", {golden|! SPMD code generated from the LCG-derived distribution
! program trisolve on 4 processors (me = 0..3)

! layout L: CYCLIC(64) anchored at 0
! layout X: CYCLIC(4) anchored at 0
! layout Y: CYCLIC(64) anchored at 0
subroutine phase_SOLVE(me)
  do j_blk = 0 + me*1, -1 + N, NPROC*1   ! CYCLIC(1) chunks of mine
  do j = j_blk, min(j_blk + 0, -1 + N)
    do r = 0, j
      Y(N*j + r) = L(N*j + r) + X(r)
      
    end do
    
  end do
  end do
  
end subroutine

! layout Y: CYCLIC(64) anchored at 0
subroutine phase_REDUCE(me)
  do j_blk = 0 + me*1, -1 + N, NPROC*1   ! CYCLIC(1) chunks of mine
  do j = j_blk, min(j_blk + 0, -1 + N)
    do r = 0, j
      ... = Y(N*j + r)
      
    end do
    
  end do
  end do
  
end subroutine

|golden});
    ("mgrid", {golden|! SPMD code generated from the LCG-derived distribution
! program mgrid on 4 processors (me = 0..3)

! layout FINE: CYCLIC(64) anchored at 1
! layout FTMP: CYCLIC(64) anchored at 1
! layout COARSE: CYCLIC(32) anchored at 1
! layout CTMP: CYCLIC(32) anchored at 1
subroutine phase_SMOOTHF(me)
  do i_blk = 1 + me*64, -2 + 2*N, NPROC*64   ! CYCLIC(64) chunks of mine
  do i = i_blk, min(i_blk + 63, -2 + 2*N)
    FTMP(i) = FINE(-1 + i) + FINE(i) + FINE(1 + i)
    
  end do
  end do
  
end subroutine

subroutine phase_RESTRICT(me)
  do i_blk = 1 + me*32, -2 + N, NPROC*32   ! CYCLIC(32) chunks of mine
  do i = i_blk, min(i_blk + 31, -2 + N)
    COARSE(i) = FTMP(-1 + 2*i) + FTMP(2*i) + FTMP(1 + 2*i)
    
  end do
  end do
  
end subroutine

subroutine phase_SMOOTHC(me)
  do i_blk = 1 + me*32, -2 + N, NPROC*32   ! CYCLIC(32) chunks of mine
  do i = i_blk, min(i_blk + 31, -2 + N)
    CTMP(i) = COARSE(-1 + i) + COARSE(i) + COARSE(1 + i)
    
  end do
  end do
  
end subroutine

subroutine phase_PROLONG(me)
  do i_blk = 1 + me*32, -2 + N, NPROC*32   ! CYCLIC(32) chunks of mine
  do i = i_blk, min(i_blk + 31, -2 + N)
    FINE(2*i) = CTMP(i) + CTMP(1 + i) + FTMP(2*i) + FTMP(1 + 2*i)
    FINE(1 + 2*i) = CTMP(i) + CTMP(1 + i) + FTMP(2*i) + FTMP(1 + 2*i)
    
  end do
  end do
  
end subroutine

|golden});
  ]

let update_mode = Sys.getenv_opt "GOLDEN_UPDATE" = Some "1"

let emit_update () =
  List.iter
    (fun (e : Codes.Registry.entry) ->
      Printf.printf "    (\"%s\", {golden|%s|golden});\n" e.name
        (snapshot e.name))
    Codes.Registry.all

let test_kernel name () =
  let expected =
    match List.assoc_opt name golden with
    | Some s -> s
    | None -> Alcotest.failf "no golden snapshot for %s" name
  in
  Alcotest.(check string) (name ^ " SPMD prose matches golden") expected
    (snapshot name)

let () =
  if update_mode then emit_update ()
  else
    Alcotest.run "golden-spmd"
      [
        ( "spmd",
          List.map
            (fun (e : Codes.Registry.entry) ->
              Alcotest.test_case e.name `Quick (test_kernel e.name))
            Codes.Registry.all );
      ]
