(** Iteration Descriptors (paper, Sec. 3).

    The ID of array X at parallel iteration [i] of a phase describes the
    sub-region that iteration touches: the PD with the parallel
    dimension projected out, the offset turned into the function
    [tau_B(i) = tau + i * sign * delta_P], and the sequential span
    giving the extent.  Rows keep their parallel direction so reverse
    storage symmetry remains visible. *)

open Symbolic

type row = {
  seq_alphas : Expr.t list;  (** aligned with [seq_dims] of the group *)
  offset0 : Expr.t;  (** region start at iteration 0 *)
  par_stride : Expr.t;  (** zero when invariant across iterations *)
  par_sign : int;
  span_seq : Expr.t;  (** region extent: covers [tau_B(i) .. tau_B(i)+span] *)
  mix : Access_mix.t;
}

type group = { seq_dims : Pd.dim list; rows : row list }

type t = {
  array : string;
  ctx : Ir.Phase.t;
  groups : group list;
  exact : bool;
}

val key : t -> Artifact.Key.t
(** Structural artifact key over the projected content (array, groups,
    exactness), without the context - pair with [Ir.Phase.key] when a
    cached value also depends on the owning phase. *)

val digest : t -> int
(** Stable structural digest, [Artifact.Key.hash] of {!key}. *)

val of_pd : Pd.t -> t

val offset_at : row -> i:Expr.t -> Expr.t
(** [tau_B(i)]. *)

val upper_at : row -> i:Expr.t -> Expr.t
(** Farthest address of the row's sub-region at iteration [i]. *)

val all_rows : t -> row list
val par_strides : t -> Expr.t list
(** Distinct parallel strides across rows (zeros excluded). *)

val rectangular : t -> bool
(** All dims uniform: the symbolic span/upper-limit formulas are exact. *)

val pp : Format.formatter -> t -> unit
