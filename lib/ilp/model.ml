open Symbolic
open Locality

type locality = {
  array : string;
  k : int;
  g : int;
  a : Expr.t;
  b : Expr.t;
  c : Expr.t;
  ai : int;
  bi : int;
  ci : int;
}

type bound = { k : int; hi : int; hi_expr : Expr.t }

type storage = {
  array : string;
  k : int;
  kind : [ `Shifted | `Reverse ];
  coeff : int;
  coeff_expr : Expr.t;
  limit : int;
  limit_expr : Expr.t;
}

type t = {
  lcg : Lcg.t;
  n_phases : int;
  locality : locality list;
  bounds : bound list;
  storage : storage list;
}

let ceil_div a b = (a + b - 1) / b

let of_lcg (lcg : Lcg.t) : t =
  let env = lcg.env and h = lcg.h in
  let n_phases = List.length lcg.prog.phases in
  let locality =
    List.concat_map
      (fun (g : Lcg.graph) ->
        List.filter_map
          (fun (e : Lcg.edge) ->
            match (e.label, e.relation) with
            | Table1.L, Some r -> (
                try
                  let nk = List.nth g.nodes e.src
                  and ng = List.nth g.nodes e.dst in
                  Some
                    {
                      array = g.array;
                      k = nk.phase_idx;
                      g = ng.phase_idx;
                      a = r.a;
                      b = r.b;
                      c = r.c;
                      ai = Env.eval env r.a;
                      bi = Env.eval env r.b;
                      ci =
                        (let ai = Env.eval env r.a
                         and bi = Env.eval env r.b
                         and ci = Env.eval env r.c in
                         if ci <> 0 && abs ci < max ai bi then 0 else ci);
                    }
                with Expr.Non_integral _ | Env.Unbound _ | Qnum.Overflow -> None)
            | _ -> None)
          g.edges)
      lcg.graphs
  in
  (* One load-balance bound per phase that has nodes; use the smallest
     parallel count across its array views (they coincide). *)
  let bounds =
    List.init n_phases (fun k ->
        let counts =
          List.filter_map
            (fun (g : Lcg.graph) ->
              Option.map
                (fun (n : Lcg.node) -> (n.par_n, n.par_expr))
                (Lcg.node_of_phase g ~phase_idx:k))
            lcg.graphs
        in
        match counts with
        | [] -> None
        | (n, ne) :: _ ->
            Some
              {
                k;
                hi = max 1 (ceil_div n h);
                hi_expr = Expr.ceil_div ne (Expr.var "H");
              })
    |> List.filter_map Fun.id
  in
  let storage =
    List.concat_map
      (fun (g : Lcg.graph) ->
        List.concat_map
          (fun (n : Lcg.node) ->
            match Balance.side n.id with
            | None -> []
            | Some side -> (
                try
                  let dp = Env.eval env side.primary.par_stride in
                  if dp <= 0 then []
                  else
                    (* A distance within one iteration's reach (span +
                       stride) is a stencil frame, not a distant copy:
                       it constrains nothing - the overlap machinery
                       owns it. *)
                    let near =
                      try Env.eval env side.primary.span_seq + (2 * dp)
                      with Expr.Non_integral _ | Env.Unbound _ | Qnum.Overflow -> 0
                    in
                    let coeff = dp * h in
                    let coeff_expr =
                      Expr.mul side.primary.par_stride (Expr.int h)
                    in
                    let mk kind limit_expr =
                      try
                        let lim = Qnum.floor (Env.eval_q env limit_expr) in
                        if lim <= near then None
                        else
                        Some
                          {
                            array = g.array;
                            k = n.phase_idx;
                            kind;
                            coeff;
                            coeff_expr;
                            limit =
                              Qnum.floor (Env.eval_q env limit_expr);
                            limit_expr;
                          }
                      with Expr.Non_integral _ | Env.Unbound _ | Qnum.Overflow -> None
                    in
                    List.filter_map Fun.id
                      (List.map (fun d -> mk `Shifted d) n.sym.shifted
                      @ List.map
                          (fun d ->
                            mk `Reverse
                              (Expr.scale (Qnum.make 1 2) d))
                          n.sym.reverse)
                with Expr.Non_integral _ | Env.Unbound _ | Qnum.Overflow -> []))
          g.nodes)
      lcg.graphs
  in
  { lcg; n_phases; locality; bounds; storage }

let to_lp (t : t) ~objective : Lp.problem =
  let n = t.n_phases in
  let unit_row f =
    let r = Array.make n Qnum.zero in
    f r;
    r
  in
  let loc_rows =
    List.map
      (fun (l : locality) ->
        Lp.constr
          (unit_row (fun r ->
               r.(l.k) <- Qnum.of_int l.ai;
               r.(l.g) <- Qnum.add r.(l.g) (Qnum.of_int (-l.bi))))
          Lp.Eq (Qnum.of_int l.ci))
      t.locality
  in
  let bound_rows =
    List.concat_map
      (fun (b : bound) ->
        [
          Lp.constr (unit_row (fun r -> r.(b.k) <- Qnum.one)) Lp.Ge Qnum.one;
          Lp.constr
            (unit_row (fun r -> r.(b.k) <- Qnum.one))
            Lp.Le (Qnum.of_int b.hi);
        ])
      t.bounds
  in
  let storage_rows =
    List.map
      (fun (s : storage) ->
        Lp.constr
          (unit_row (fun r -> r.(s.k) <- Qnum.of_int s.coeff))
          Lp.Le (Qnum.of_int s.limit))
      t.storage
  in
  { Lp.n_vars = n; objective; constraints = loc_rows @ bound_rows @ storage_rows }

let pp ppf (t : t) =
  let pname k =
    (List.nth t.lcg.prog.phases k).Ir.Types.phase_name
  in
  Format.fprintf ppf "@[<v>Locality constraints:@,";
  List.iter
    (fun l ->
      let lhs =
        if Expr.equal l.a Expr.one then Printf.sprintf "p[%s]" (pname l.k)
        else Format.asprintf "%a * p[%s]" Expr.pp l.a (pname l.k)
      in
      let rhs =
        if Expr.equal l.b Expr.one then Printf.sprintf "p[%s]" (pname l.g)
        else Format.asprintf "%a * p[%s]" Expr.pp l.b (pname l.g)
      in
      Format.fprintf ppf "  [%s] %s = %s%s@," l.array lhs rhs
        (if Expr.is_zero l.c then ""
         else Format.asprintf " + %a" Expr.pp l.c))
    t.locality;
  Format.fprintf ppf "Load-balance constraints:@,";
  List.iter
    (fun (b : bound) ->
      Format.fprintf ppf "  1 <= p[%s] <= %a = %d@," (pname b.k) Expr.pp
        b.hi_expr b.hi)
    t.bounds;
  Format.fprintf ppf
    "Affinity constraints: implicit (one variable per phase; the@,\
    \  paper's p_k1 = p_k2 = ... rows are folded into p_k)@,";
  Format.fprintf ppf "Storage constraints:@,";
  List.iter
    (fun (s : storage) ->
      Format.fprintf ppf "  [%s] %a * p[%s] <= %a  (%s, = %d)@," s.array
        Expr.pp s.coeff_expr (pname s.k) Expr.pp s.limit_expr
        (match s.kind with `Shifted -> "Delta_d" | `Reverse -> "Delta_r/2")
        s.limit)
    t.storage;
  Format.fprintf ppf "@]"
