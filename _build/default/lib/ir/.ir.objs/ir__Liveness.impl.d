lib/ir/liveness.ml: Array Assume Enumerate Format Hashtbl List Random String Symbolic Types
