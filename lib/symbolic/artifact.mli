(** Unified digest-keyed artifact cache.

    One bounded, generation-aware store family replaces the ad-hoc memo
    [Hashtbl]s that previously lived with each analysis stage.  Keys are
    small trees whose leaves are ints, strings and interned {!Expr.t}
    values: equality is structural with O(1) expression leaves, hashing
    reuses the expressions' precomputed digests, and therefore a key can
    never collide with a different key - the digest only buckets.

    Invalidation rules (see DESIGN.md section 14):
    - a store created with [~volatile:true] holds values that depend on
      the probe stream; its contents are dropped (lazily) whenever the
      global generation advances, which [Probe.with_seed] does on entry
      and exit;
    - a non-volatile store holds pure functions of the key (values that
      depend on an environment carry the [Env.id] in their key) and
      survives re-seeding;
    - {!clear_all} drops every store and advances the generation - the
      pool worker's between-jobs reset;
    - a store that reaches its capacity is dropped wholesale (counted in
      {!type-stat}[.evictions]) rather than evicting piecemeal: the
      sweeps this cache serves re-fill it in one pass. *)

module Key : sig
  type t

  val int : int -> t
  val bool : bool -> t
  val str : string -> t
  val expr : Expr.t -> t
  val list : t list -> t
  val opt : ('a -> t) -> 'a option -> t
  val hash : t -> int
  val equal : t -> t -> bool
end

type 'v store

val store : ?capacity:int -> ?volatile:bool -> string -> 'v store
(** Create (and register) a store.  [name] is also the {!Metrics.cache}
    cell receiving hit/miss counts.  Default capacity 65536,
    non-volatile. *)

val find : 'v store -> Key.t -> (unit -> 'v) -> 'v
(** [find s k compute] returns the cached value for [k], or runs
    [compute], stores and returns its result.  A volatile store whose
    generation is stale is flushed first; a value computed while the
    generation moved (nested re-seed) is returned but not retained. *)

val new_generation : unit -> unit
(** Advance the global generation: every volatile store is invalidated
    (flushed lazily on next access). *)

val clear_all : unit -> unit
(** Advance the generation and flush every store, volatile or not. *)

type stat = {
  s_name : string;
  entries : int;
  capacity : int;
  volatile : bool;
  hits : int;
  misses : int;
  evictions : int;
}

val stats : unit -> stat list
(** One entry per store, sorted by name; hit/miss numbers mirror the
    [Metrics] cells (and thus reset with [Metrics.reset]). *)

val pp_stats : Format.formatter -> unit -> unit
val report : unit -> string
(** The [--cache-stats] table. *)
