(** Access descriptor union and descriptor homogenization (Sec. 2.1).

    {b Union} merges rows of one group that describe the same access
    pattern shifted by an offset distance: identical iteration counts
    and signs, with the shift either (a) zero (duplicate reference,
    e.g. the read and write of [X(phi)] in one statement), (b) landing
    on the grid of the finest sequential dim within one span of its end
    (the TFFT2 [tau = 0 / P/2] pair, Fig. 3 (c)->(d)), or (c) small
    enough to stay adjacent to the row's sequential span, in which case
    a fresh 2-element dimension records the aggregation (how stencil
    reads [A(i-1)], [A(i)], [A(i+1)] fuse into one 3-wide row).
    Distant copies are deliberately {e not} merged - their distance is
    exactly what storage symmetry (shifted/reverse distances) captures
    for the ILP's storage constraints.

    {b Homogenization} applies the same merging across the groups of
    two PDs from {e different} phases, yielding the common-region view
    used by inter-phase analysis. *)

val rows : Pd.t -> Pd.t
(** Union rows within every group. *)

val simplify : Pd.t -> Pd.t
(** The full pipeline: coalesce, union rows, coalesce again. *)

val homogenize : Pd.t -> Pd.t -> Pd.t option
(** Merge two same-array PDs from different phases when their groups
    are structurally compatible; [None] otherwise.  The result is
    attached to the first PD's phase context. *)
