(** Branch-and-bound integer programming on top of {!Lp}.

    Maximizes the (rational) objective over integer points.  Problems
    in this repo have a handful of small-bounded variables, so plain
    most-fractional branching with LP bounds is instantaneous and
    exact. *)

open Symbolic

type outcome =
  | Optimal of { value : Qnum.t; point : int array }
  | Infeasible
  | Unbounded

val solve : ?max_nodes:int -> Lp.problem -> outcome
(** All variables are required integer (and >= 0, inherited from
    {!Lp}).  [max_nodes] (default 100_000) guards pathological
    instances; exceeding it raises [Failure]. *)
