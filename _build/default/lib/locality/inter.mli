(** Inter-phase locality: Theorem 2, producing LCG edge labels.

    [derive] re-computes Table 1 from the theorems themselves:

    - a privatizable endpoint un-couples the phases (label D) - except
      that a {e write-only} F_k with overlapping storage must still
      flush its replicated overlap sub-regions (label C);
    - a write-only F_k with overlapping storage always communicates
      (Theorem 1 fails for it, so its frontier regions are stale);
    - otherwise the label is L exactly when the balanced locality
      condition has a solution within the load-balance bounds and the
      intra-phase locality condition holds in F_k. *)

open Symbolic
open Descriptor

val derive :
  Ir.Liveness.attr ->
  Ir.Liveness.attr ->
  overlap:bool ->
  balanced:bool ->
  Table1.label

type input = {
  attr_k : Ir.Liveness.attr;
  attr_g : Ir.Liveness.attr;
  id_k : Id.t;
  id_g : Id.t;
  sym_k : Symmetry.t option;  (** precomputed symmetry, else re-derived *)
  sym_g : Symmetry.t option;
  nk : int;  (** parallel trip count of F_k under the environment *)
  ng : int;
}

type result = {
  label : Table1.label;
  solution : Balance.solution option;  (** when the edge could be L *)
  relation : Balance.relation option;
}

val label : env:Env.t -> h:int -> input -> result
(** Full edge labeling under a concrete parameter environment and
    processor count: storage symmetry, balanced-condition solve,
    intra-phase check of F_k, then {!derive}. *)
