open Symbolic

exception Not_rectangular of string

let eval_const env e =
  try Env.eval env e
  with Expr.Non_integral _ | Env.Unbound _ ->
    raise (Not_rectangular (Expr.to_string e))

let row_addresses env (g : Pd.group) (r : Pd.row) ~par acc =
  let base = eval_const env r.offset in
  let par_contrib =
    match (g.par, par) with
    | Some pi, Some i ->
        let stride = eval_const env (List.nth g.dims pi).stride in
        let sign = List.nth r.signs pi in
        `Fixed (sign * stride * i)
    | Some pi, None ->
        let stride = eval_const env (List.nth g.dims pi).stride in
        let sign = List.nth r.signs pi in
        let count = eval_const env (List.nth r.alphas pi) in
        `Sweep (sign * stride, count)
    | None, _ -> `Fixed 0
  in
  let seq =
    Pd.seq_dims g
    |> List.map (fun (i, (d : Pd.dim)) ->
           (eval_const env (List.nth r.alphas i), eval_const env d.stride))
  in
  let rec sweep_seq base = function
    | [] -> Hashtbl.replace acc base ()
    | (count, stride) :: rest ->
        for k = 0 to count - 1 do
          sweep_seq (base + (k * stride)) rest
        done
  in
  match par_contrib with
  | `Fixed off -> sweep_seq (base + off) seq
  | `Sweep (stride, count) ->
      for i = 0 to count - 1 do
        sweep_seq (base + (stride * i)) seq
      done

let group_addresses env g ~par =
  let acc = Hashtbl.create 256 in
  List.iter (fun r -> row_addresses env g r ~par acc) g.Pd.rows;
  acc

(* Companion to [enum.iter]: counts descriptor-region expansions that
   actually swept addresses (cache hits in [addresses] do not count). *)
let enum_count = Metrics.counter "enum.addresses"

let addresses_raw env (t : Pd.t) ~par =
  Metrics.incr enum_count;
  let acc = Hashtbl.create 256 in
  List.iter
    (fun (g : Pd.group) -> List.iter (fun r -> row_addresses env g r ~par acc) g.rows)
    t.groups;
  acc

(* Whole-descriptor enumeration is re-requested with identical arguments
   by the halo computation, the ILP word counts and the simulator's
   sizing; keyed on the environment identity (never its bindings - see
   DESIGN.md section 12) plus the PD's structural key, the second and
   later calls are table lookups.  The store is non-volatile: addresses
   are a pure function of (environment, descriptor).  Callers receive
   the cached table itself and must not mutate it. *)
let memo : (int, unit) Hashtbl.t Artifact.store =
  Artifact.store ~capacity:4_096 "region.addresses"

let addresses_timer = Metrics.timer "region.enumerate"

let addresses env (t : Pd.t) ~par =
  let key =
    Artifact.Key.(list [ int (Env.id env); Pd.key t; opt int par ])
  in
  Artifact.find memo key (fun () ->
      Metrics.with_timer addresses_timer (fun () -> addresses_raw env t ~par))

let sorted tbl =
  Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare
