type direction = Max | Min

let monotonicity asm v e =
  if not (Expr.mem_var v e) then `Const
  else
    let inc = ref true and dec = ref true in
    let check env =
      match Assume.range_in_env asm env v with
      | None -> false
      | Some (lo, hi) when hi <= lo -> true
      | Some (lo, hi) ->
          let at x =
            Expr.eval
              (fun w -> if String.equal w v then Qnum.of_int x else Env.lookup env w)
              e
          in
          let steps = min 4 (hi - lo) in
          let rec walk k prev =
            if k > steps then true
            else
              let cur = at (lo + k) in
              let c = Qnum.compare cur prev in
              if c > 0 then dec := false else if c < 0 then inc := false;
              walk (k + 1) cur
          in
          walk 1 (at lo)
    in
    let ok = ref true in
    let sample = Probe.sampler () in
    (try
       for _ = 1 to !Probe.samples do
         let env = sample asm in
         if not (check env) then ok := false
       done
     with Expr.Non_integral _ | Env.Unbound _ | Division_by_zero | Qnum.Division_by_zero
     -> ok := false);
    if not !ok then `Mixed
    else
      match (!inc, !dec) with
      | true, true -> `Const
      | true, false -> `Inc
      | false, true -> `Dec
      | false, false -> `Mixed

(* Bound expressions of a variable within the assumption set. *)
let bounds_of asm v =
  match Assume.domain_of asm v with
  | Some (Assume.Int_range (lo, hi)) -> Some (Expr.int lo, Expr.int hi)
  | Some (Assume.Expr_range (lo, hi)) -> Some (lo, hi)
  | Some (Assume.Pow2_of w) ->
      (* 2^w with w ranged: monotone in w, but we treat the var itself as
         atomic; give bounds only when w's range is concrete. *)
      (match Assume.domain_of asm w with
      | Some (Assume.Int_range (lo, hi)) ->
          Some (Expr.int (1 lsl lo), Expr.int (1 lsl hi))
      | _ -> None)
  | None -> None

(* Bound elimination is deterministic given the probe stream, and the
   coalescing fixpoint re-asks the same (assumptions, direction, over,
   expr) queries many times per phase; memoize the final validated
   answer.  The store is volatile (flushed on generation change, i.e.
   whenever the probe stream is re-seeded) so an answer never crosses
   seeds; the descriptor property suite pins that the memoized analysis
   still matches the brute-force oracle. *)
let memo : Expr.t option Artifact.store =
  Artifact.store ~capacity:100_000 ~volatile:true "range.bounds"

let eliminate_timer = Metrics.timer "range.eliminate"

let eliminate_raw asm dir ~over e =
  let order =
    (* Reverse declaration order, restricted to [over]. *)
    List.rev (List.filter (fun v -> List.mem v over) (Assume.vars asm))
  in
  let result =
    List.fold_left
      (fun acc v ->
        match acc with
        | None -> None
        | Some e ->
            if not (Expr.mem_var v e) then Some e
            else
              let pick_hi =
                match (monotonicity asm v e, dir) with
                | `Const, _ -> Some false
                | `Inc, Max | `Dec, Min -> Some true
                | `Dec, Max | `Inc, Min -> Some false
                | `Mixed, _ -> None
              in
              Option.bind pick_hi (fun hi ->
                  Option.map
                    (fun (lo_e, hi_e) ->
                      Expr.subst v (if hi then hi_e else lo_e) e)
                    (bounds_of asm v)))
      (Some e) order
  in
  (* Validate: the bound must dominate the original on samples. *)
  match result with
  | None -> None
  | Some bound ->
      let cmp a b = match dir with Max -> Qnum.compare a b >= 0 | Min -> Qnum.compare a b <= 0 in
      let ok = ref true in
      let sample = Probe.sampler () in
      (try
         for _ = 1 to !Probe.samples do
           let env = sample asm in
           if not (cmp (Env.eval_q env bound) (Env.eval_q env e)) then ok := false
         done
       with Expr.Non_integral _ | Env.Unbound _ | Division_by_zero | Qnum.Division_by_zero
       -> ok := false);
      if !ok then Some bound else None

let eliminate asm dir ~over e =
  let key =
    Artifact.Key.(
      list
        [
          int (match dir with Max -> 0 | Min -> 1);
          Assume.key asm;
          list (List.map str over);
          expr e;
        ])
  in
  Artifact.find memo key (fun () ->
      Metrics.with_timer eliminate_timer (fun () ->
          eliminate_raw asm dir ~over e))

let maximize asm ~over e = eliminate asm Max ~over e
let minimize asm ~over e = eliminate asm Min ~over e
