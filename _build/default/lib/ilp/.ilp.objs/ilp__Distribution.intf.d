lib/ilp/distribution.mli: Format Locality
