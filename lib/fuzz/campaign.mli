(** The mass differential-fuzzing campaign behind [dsmloc fuzz].

    Generated programs are dispatched in deterministic submission order
    through {!Core.Pool.map} - each battery run is crash-isolated in a
    forked worker with fully reset analysis state - in bounded chunks
    so a wall-clock cap can stop between chunks.  The campaign then:

    - re-runs a prefix of the indices on a single worker and compares
      the verdict vectors structurally (the 1-vs-N worker determinism
      differential);
    - reproduces every failing index in-process, shrinks it with
      {!Shrink} under the finding's own check as the keep predicate,
      and writes a [fuzz_<check>_s<seed>_<index>.dsm] reproducer plus a
      [.golden] snapshot of the verdict into [out_dir];
    - converts worker crashes and non-reproducible failures into
      findings of their own rather than dropping them.

    [skew] threads {!Symbolic.Lattice.test_card_skew} into every worker
    (and into in-process reproduction), so the deliberately injected
    descriptor-algebra mutation exercises the whole detect-shrink-write
    path as a self-test. *)

type config = {
  count : int;  (** programs to generate *)
  seed : int;  (** campaign seed; program i is [Gen.program ~seed ~index:i] *)
  jobs : int;  (** pool worker processes *)
  deep_every : int;  (** every n-th program uses {!Gen.deep}; 0 = never *)
  determinism_sample : int;  (** prefix re-run at 1 worker; 0 = skip *)
  wall_cap : float;  (** seconds; 0 = uncapped.  Checked between chunks. *)
  out_dir : string;  (** where reproducers and goldens are written *)
  skew : int;  (** injected {!Symbolic.Lattice.test_card_skew} *)
  shrink : bool;  (** minimize failing programs before writing *)
}

val default_config : config
(** 200 programs, seed 42, 4 jobs, deep every 25th, determinism over
    the first 8, no wall cap, [examples/programs], no skew, shrinking
    on. *)

type finding = {
  f_index : int;  (** generation index, -1 for campaign-level findings *)
  f_profile : string;  (** ["default"] | ["deep"] | ["campaign"] *)
  f_check : string;  (** failing check, or ["worker-crash"] / ["determinism"] *)
  f_detail : string;
  f_source : string;  (** unshrunk source ([""] for campaign-level) *)
  f_shrunk : string option;  (** minimized source, when shrinking succeeded *)
  f_repro : string option;  (** path of the written reproducer *)
}

type stats = {
  s_ran : int;  (** battery runs completed (including retried ones) *)
  s_findings : finding list;  (** in index order *)
  s_wall_capped : bool;  (** true when the cap stopped the campaign early *)
}

val run : ?log:(string -> unit) -> config -> stats
(** Execute the campaign.  [log] receives one-line progress messages
    (chunk boundaries, findings, reproducer paths).  Never raises on
    differential findings - they are data; file-system errors writing
    reproducers do raise. *)
