(** SPMD code generation: the compiler back end the LCG drives.

    Emits Fortran-flavoured SPMD pseudo-code for a program under a
    distribution plan: per phase, the parallel loop is rewritten as a
    CYCLIC(p) sweep over the executing processor's own chunks; array
    declarations carry their layout epoch annotations (block size,
    period, mirror, halo); redistribution and frontier-update calls are
    inserted exactly where {!Dsmsim.Comm} schedules them, annotated
    with aggregated message counts and volumes.

    The output documents what the generated code {e would} do; it is
    prose for humans and build systems, not compilable Fortran - the
    executable semantics live in the simulator, which the test suite
    holds to the same schedule. *)

val generate :
  Locality.Lcg.t -> Ilp.Distribution.plan -> Ilp.Cost.machine -> string

val pp :
  Format.formatter ->
  Locality.Lcg.t * Ilp.Distribution.plan * Ilp.Cost.machine ->
  unit
