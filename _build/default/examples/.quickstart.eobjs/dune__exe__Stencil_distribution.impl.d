examples/stencil_distribution.ml: Array Codes Core Descriptor Dsmsim Format Ilp Intra Ir Lcg List Locality Sys
