open Symbolic

let address ~dims index =
  if List.length dims <> List.length index then
    invalid_arg "Linearize.address: rank mismatch";
  (* i1 + d1*(i2 + d2*(i3 + ...)); the last extent is never used. *)
  let rec go index dims =
    match (index, dims) with
    | [ i ], [ _ ] -> i
    | i :: index, d :: dims -> Expr.add i (Expr.mul d (go index dims))
    | [], [] -> Expr.zero
    | _ -> assert false
  in
  go index dims

let size ~dims = Expr.prod dims
