lib/codes/tomcatv.ml: Assume Env Expr Ir Symbolic
