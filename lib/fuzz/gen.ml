open Symbolic
open Ir

type profile = {
  min_phases : int;
  max_phases : int;
  max_depth : int;
  pow2_bias : int;
  triangular_bias : int;
  two_d_bias : int;
  reduction_bias : int;
  repeat_bias : int;
}

let default =
  {
    min_phases = 1;
    max_phases = 5;
    max_depth = 3;
    pow2_bias = 40;
    triangular_bias = 35;
    two_d_bias = 35;
    reduction_bias = 25;
    repeat_bias = 15;
  }

let deep =
  {
    default with
    min_phases = 50;
    max_phases = 100;
    max_depth = 2;
    two_d_bias = 20;
    reduction_bias = 10;
    repeat_bias = 5;
  }

(* ------------------------------------------------------------------ *)

let ri st lo hi = lo + Random.State.int st (hi - lo + 1)
let chance st pct = Random.State.int st 100 < pct
let pick st l = List.nth l (Random.State.int st (List.length l))

(* The largest value a parameter can take under its declared domain:
   [n = 4..8] and [Q = 2^q, q = 1..3] both top out at 8.  Subscript
   maxima (and hence array extents) are computed against these. *)
let param_max = 8

type ctx = {
  st : Random.State.t;
  has_pow2 : bool;
  arrays1d : string list;
  two_d : bool;
  reduction : bool;
  maxes : (string, int array) Hashtbl.t;
  mutable written : string list;  (** most recently written first *)
}

let note_ref ctx name maxima =
  let dims =
    match Hashtbl.find_opt ctx.maxes name with
    | Some a -> a
    | None ->
        let a = Array.make (List.length maxima) 0 in
        Hashtbl.replace ctx.maxes name a;
        a
  in
  List.iteri (fun d m -> dims.(d) <- max dims.(d) m) maxima

(* One loop level: the bound expression plus the largest value its
   variable can take (used for injective write subscripts and for
   extent derivation). *)
type lvl = { v : string; lo : Expr.t; hi : Expr.t; vmax : int; par : bool; step : Expr.t }

let var_names = [| "i"; "j"; "k" |]

let gen_levels ctx prof ~allow_par =
  let depth = ri ctx.st 1 prof.max_depth in
  let par_level =
    if not allow_par then -1
    else if depth = 1 || chance ctx.st 70 then 0
    else ri ctx.st 1 (depth - 1)
  in
  let rec go level outer =
    if level >= depth then []
    else
      let v = var_names.(level) in
      let triangular =
        level > 0 && chance ctx.st prof.triangular_bias
      in
      let lo, lo_min =
        if triangular || chance ctx.st 85 then (Expr.zero, 0) else (Expr.one, 1)
      in
      ignore lo_min;
      let hi, vmax =
        if triangular then
          let ov = pick ctx.st outer in
          let c = ri ctx.st 0 2 in
          (Expr.add (Expr.var ov.v) (Expr.int c), ov.vmax + c)
        else
          match ri ctx.st 0 (if ctx.has_pow2 then 3 else 2) with
          | 0 | 1 ->
              let c = ri ctx.st 2 8 in
              (Expr.int c, c)
          | 2 -> (Expr.sub (Expr.var "n") Expr.one, param_max - 1)
          | _ -> (Expr.sub (Expr.var "Q") Expr.one, param_max - 1)
      in
      let step =
        match ri ctx.st 0 9 with
        | 0 | 1 -> Expr.int 2
        | 2 -> Expr.int 4
        | 3 when ctx.has_pow2 && not triangular -> Expr.var "Q"
        | _ -> Expr.one
      in
      let l = { v; lo; hi; vmax; par = level = par_level; step } in
      l :: go (level + 1) (l :: outer)
  in
  go 0 []

let build_nest levels body =
  List.fold_right
    (fun l inner ->
      [
        Types.Loop
          {
            var = l.v;
            lo = l.lo;
            hi = l.hi;
            step = l.step;
            parallel = l.par;
            body = inner;
          };
      ])
    levels body
  |> function
  | [ nest ] -> nest
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Subscripts.

   Writes are race-free by construction: the parallel variable carries
   a coefficient strictly larger than the seq-window span (mixed-radix
   over the sequential variables plus offset head-room), so distinct
   parallel iterations touch disjoint address windows.  Reads are
   unconstrained affine maps - reads cannot race. *)

type mexpr = { e : Expr.t; mx : int }

let mint n = { e = Expr.int n; mx = n }

let madd a b = { e = Expr.add a.e b.e; mx = a.mx + b.mx }

let mscale_const c (l : lvl) = { e = Expr.mul (Expr.int c) (Expr.var l.v); mx = c * l.vmax }

(* Mixed-radix coefficients over the sequential levels, innermost
   fastest; returns the terms and the (exclusive) window size. *)
let seq_window ctx seqs =
  let base = if chance ctx.st 60 then 1 else 2 in
  let rec go = function
    | [] -> ([], base)
    | l :: outer ->
        let terms, c = go outer in
        let keep = not (chance ctx.st 15) in
        let terms = if keep then mscale_const c l :: terms else terms in
        (terms, c * (l.vmax + 1))
  in
  (* [seqs] arrives outermost-first; recurse so the innermost gets the
     base coefficient. *)
  let terms, window = go (List.rev seqs) in
  (terms, window)

let write_subscript ctx levels =
  let pv = List.find_opt (fun l -> l.par) levels in
  let seqs = List.filter (fun l -> not l.par) levels in
  let terms, window = seq_window ctx seqs in
  let off = ri ctx.st 0 3 in
  let padded = window + 4 in
  let par_term =
    match pv with
    | None -> mint 0
    | Some l -> (
        match ri ctx.st 0 (if ctx.has_pow2 then 3 else 2) with
        | 0 -> mscale_const padded l
        | 1 -> mscale_const (padded * 2) l
        | 2 -> mscale_const (padded * 4) l
        | _ ->
            {
              e = Expr.mul (Expr.int padded) (Expr.mul (Expr.var "Q") (Expr.var l.v));
              mx = padded * param_max * l.vmax;
            })
  in
  let body = List.fold_left madd (mint off) terms in
  (madd par_term body, par_term, terms, window)

let read_subscript ctx levels =
  let off = ri ctx.st 0 6 in
  List.fold_left
    (fun acc l ->
      let t =
        match ri ctx.st 0 (if ctx.has_pow2 then 5 else 4) with
        | 0 -> mint 0
        | 1 | 2 -> mscale_const (ri ctx.st 1 3) l
        | 3 -> mscale_const (pick ctx.st [ 2; 4; 8 ]) l
        | 4 when ctx.has_pow2 ->
            { e = Expr.mul (Expr.var "Q") (Expr.var l.v); mx = param_max * l.vmax }
        | _ -> mscale_const 1 l
      in
      madd acc t)
    (mint off) levels

let mk_ref ctx name access (subs : mexpr list) =
  note_ref ctx name (List.map (fun m -> m.mx) subs);
  { Types.array = name; index = List.map (fun m -> m.e) subs; access }

(* A read target for the current statement.  [avoid] holds the arrays
   the current phase writes: reading one of those from another parallel
   iteration would be a loop-carried dependence, making the doall racy,
   so they are excluded here (the only same-array reads allowed are the
   window-confined ones [stencil_stmt] builds explicitly). *)
let read_target ctx ~avoid =
  match List.filter (fun a -> not (List.mem a avoid)) ctx.arrays1d with
  | [] -> None
  | allowed -> (
      match List.filter (fun a -> List.mem a allowed) ctx.written with
      | a :: _ when chance ctx.st 60 -> Some a
      | _ -> Some (pick ctx.st allowed))

(* ------------------------------------------------------------------ *)
(* Phase bodies.  [phase_written] holds ALL the arrays the current
   phase writes - committed up front by [gen_phase], before any
   statement body is generated - so that no statement reads an array
   some other statement of the same phase writes (a loop-carried
   dependence that would make the doall racy), and no two statements
   write the same array (two distinct injective maps onto one array
   can still collide across parallel iterations).  The only same-array
   reads allowed are the window-confined ones each statement builds
   against its own write. *)

let stencil_stmt ctx levels ~target ~phase_written =
  let wsub, par_term, terms, _ = write_subscript ctx levels in
  let lhs = mk_ref ctx target Types.Write [ wsub ] in
  let same_array_read () =
    (* stay inside the parallel window: vary only the offset *)
    let off2 = ri ctx.st 0 3 in
    let sub = madd par_term (List.fold_left madd (mint off2) terms) in
    mk_ref ctx target Types.Read [ sub ]
  in
  let other_read () =
    match read_target ctx ~avoid:phase_written with
    | Some a -> mk_ref ctx a Types.Read [ read_subscript ctx levels ]
    | None -> same_array_read ()
  in
  let reads =
    List.init (ri ctx.st 1 3) (fun _ ->
        if chance ctx.st 30 then same_array_read () else other_read ())
  in
  let work = if chance ctx.st 30 then ri ctx.st 2 8 else 1 in
  ctx.written <- target :: ctx.written;
  Types.Assign { refs = reads @ [ lhs ]; work }

let transpose_stmt ctx levels ~phase_written =
  (* depth-2 nests only; writes T(fi, fj), reads the transposed mix *)
  match levels with
  | [ l0; l1 ] ->
      let pl, ol = if l0.par then (l0, l1) else (l1, l0) in
      let fi = madd (mscale_const (ri ctx.st 1 2) pl) (mint (ri ctx.st 0 2)) in
      let fj = madd (mscale_const (ri ctx.st 0 2) ol) (mint (ri ctx.st 0 2)) in
      let wdims = if l0.par then [ fi; fj ] else [ fj; fi ] in
      let lhs = mk_ref ctx "T" Types.Write wdims in
      let reads =
        match
          if chance ctx.st 70 then None else read_target ctx ~avoid:phase_written
        with
        | Some a -> [ mk_ref ctx a Types.Read [ read_subscript ctx levels ] ]
        | None ->
            (* the transposed read: U(fj, fi) against the T(fi, fj)
               write.  U is read-only across the whole program, so the
               transposed access mix cannot race the doall. *)
            [ mk_ref ctx "U" Types.Read (List.rev wdims) ]
      in
      ctx.written <- "T" :: ctx.written;
      Types.Assign { refs = reads @ [ lhs ]; work = 1 }
  | _ -> stencil_stmt ctx levels ~target:(pick ctx.st ctx.arrays1d) ~phase_written

let reduction_stmt ctx levels =
  let r = mint (ri ctx.st 0 3) in
  let acc_read = mk_ref ctx "S" Types.Read [ r ] in
  let data =
    match read_target ctx ~avoid:[ "S" ] with
    | Some a -> mk_ref ctx a Types.Read [ read_subscript ctx levels ]
    | None -> mk_ref ctx "S" Types.Read [ r ]
  in
  let lhs = mk_ref ctx "S" Types.Write [ r ] in
  ctx.written <- "S" :: ctx.written;
  Types.Assign { refs = [ acc_read; data; lhs ]; work = 1 }

(* Pick [n] distinct elements of [l], in random order. *)
let pick_distinct st n l =
  let rec go n avail acc =
    if n = 0 || avail = [] then List.rev acc
    else
      let a = pick st avail in
      go (n - 1) (List.filter (fun x -> x <> a) avail) (a :: acc)
  in
  go n l []

let gen_phase ctx prof idx =
  let kind =
    if ctx.reduction && chance ctx.st 20 then `Reduction
    else if ctx.two_d && prof.max_depth >= 2 && chance ctx.st 40 then `Two_d
    else `Stencil
  in
  let levels =
    match kind with
    | `Reduction -> gen_levels ctx { prof with max_depth = min prof.max_depth 2 } ~allow_par:false
    | `Two_d ->
        (* exactly two levels so (i, j) indexes both dimensions *)
        let rec retry n =
          let ls = gen_levels ctx { prof with max_depth = 2 } ~allow_par:true in
          if List.length ls = 2 || n = 0 then ls else retry (n - 1)
        in
        retry 5
    | `Stencil -> gen_levels ctx prof ~allow_par:true
  in
  (* Commit the full write set of the phase before generating any
     statement body: reads steer around it (see [read_target]). *)
  let body =
    match kind with
    | `Reduction -> [ reduction_stmt ctx levels ]
    | `Two_d when List.length levels = 2 ->
        [ transpose_stmt ctx levels ~phase_written:[ "T" ] ]
    | _ ->
        let nstmts =
          if prof.max_phases > 10 then 1
          else min (ri ctx.st 1 2) (List.length ctx.arrays1d)
        in
        let targets = pick_distinct ctx.st nstmts ctx.arrays1d in
        List.map
          (fun target -> stencil_stmt ctx levels ~target ~phase_written:targets)
          targets
  in
  match build_nest levels body with
  | Types.Loop nest -> { Types.phase_name = Printf.sprintf "P%d" idx; nest }
  | _ -> assert false

(* ------------------------------------------------------------------ *)

let round_extent st v =
  let need = v + 1 in
  if chance st 30 then
    let rec p2 n = if n >= need then n else p2 (n * 2) in
    p2 8
  else ((need + 7) / 8) * 8

let program prof ~seed ~index =
  let st = Random.State.make [| 0x5eed; seed; index |] in
  let has_pow2 = chance st prof.pow2_bias in
  let arrays1d =
    "A" :: (if chance st 60 then [ "B" ] else []) @ (if chance st 30 then [ "C" ] else [])
  in
  let two_d = chance st prof.two_d_bias in
  let reduction = chance st prof.reduction_bias in
  let ctx =
    {
      st;
      has_pow2;
      arrays1d;
      two_d;
      reduction;
      maxes = Hashtbl.create 8;
      written = [];
    }
  in
  let nphases = ri st prof.min_phases prof.max_phases in
  let phases = List.init nphases (gen_phase ctx prof) in
  let params =
    (("n", Assume.Int_range (4, 8)) :: (if has_pow2 then [ ("q", Assume.Int_range (1, 3)); ("Q", Assume.Pow2_of "q") ] else []))
  in
  let decl name rank =
    let dims =
      match Hashtbl.find_opt ctx.maxes name with
      | Some a -> Array.to_list (Array.map (fun v -> Expr.int (round_extent st v)) a)
      | None -> List.init rank (fun _ -> Expr.int 8)
    in
    { Types.name; dims }
  in
  let arrays =
    List.map (fun a -> decl a 1) arrays1d
    @ (if two_d then [ decl "T" 2; decl "U" 2 ] else [])
    @ if reduction then [ decl "S" 1 ] else []
  in
  {
    Types.prog_name = Printf.sprintf "fz_s%d_%d" seed index;
    params = Assume.of_list params;
    arrays;
    phases;
    repeats = chance st prof.repeat_bias;
  }

let midpoint_env (prog : Types.program) =
  List.fold_left
    (fun env (vn, d) ->
      match d with
      | Assume.Int_range (lo, hi) -> Env.add vn ((lo + hi) / 2) env
      | Assume.Pow2_of w -> Env.add vn (1 lsl Env.find env w) env
      | Assume.Expr_range _ -> env)
    Env.empty
    (Assume.to_list prog.params)
