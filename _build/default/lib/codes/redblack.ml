open Symbolic
open Ir.Build

let params = Assume.of_list [ ("N", Assume.Int_range (8, 128)) ]

let nN = var "N"

(* grid of 2N cells; red = even positions, black = odd *)
let phase_red =
  phase "RED"
    (doall "i" ~lo:(int 1) ~hi:(nN - int 1)
       [
         assign ~work:4
           [
             read "G" [ (int 2 * var "i") - int 1 ];
             read "G" [ (int 2 * var "i") + int 1 ];
             write "G" [ int 2 * var "i" ];
           ];
       ])

let phase_black =
  phase "BLACK"
    (doall "i" ~lo:(int 0) ~hi:(nN - int 2)
       [
         assign ~work:4
           [
             read "G" [ int 2 * var "i" ];
             read "G" [ (int 2 * var "i") + int 2 ];
             write "G" [ (int 2 * var "i") + int 1 ];
           ];
       ])

let program =
  program ~repeats:true ~name:"redblack" ~params
    ~arrays:[ array "G" [ int 2 * nN ] ]
    [ phase_red; phase_black ]

let env ~n = Env.of_list [ ("N", n) ]
