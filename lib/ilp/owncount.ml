open Symbolic

let budget = 8192

let intervals_of own ~lo ~hi =
  if lo > hi then None
  else Lattice.Own.intervals own ~lo ~hi ~budget

(* Enumerate the address offsets of the non-window sequential
   dimensions, with multiplicity (zero and duplicate strides emit
   duplicate offsets, exactly as the nest would). *)
let offsets dims =
  List.fold_left
    (fun acc (c, s) ->
      List.concat_map
        (fun off ->
          List.init c (fun k -> Lattice.Safe.add off (Lattice.Safe.mul k s)))
        acc)
    [ 0 ] dims

let per_proc ~h ~chunk ~par ~par_n ~base ~seq ~sets =
  let events = Array.make h 0 and hits = Array.make h 0 in
  let empty =
    List.exists (fun (c, _) -> c <= 0) seq
    || match par with Ir.Shape.Strided _ -> par_n <= 0 | _ -> false
  in
  if empty then Some (events, hits)
  else
    try
      (* One |stride| = 1 dimension becomes the contiguous window; the
         rest are enumerated. *)
      let contig, rest =
        let rec pick acc = function
          | [] -> (None, List.rev acc)
          | (c, s) :: tl when abs s = 1 && c > 1 ->
              (Some (c, s), List.rev_append acc tl)
          | d :: tl -> pick (d :: acc) tl
        in
        pick [] seq
      in
      let len, woff =
        match contig with
        | None -> (1, 0)
        | Some (c, s) -> (c, if s = 1 then 0 else -(c - 1))
      in
      let prod =
        List.fold_left (fun a (c, _) -> Lattice.Safe.mul a c) 1 rest
      in
      if prod > budget then None
      else begin
        let offs = offsets rest in
        let add_run ~pr ~n ~d start =
          events.(pr) <-
            Lattice.Safe.add events.(pr)
              (Lattice.Safe.mul n (Lattice.Safe.mul len prod));
          List.iter
            (fun off ->
              let a = Lattice.Safe.add start (Lattice.Safe.add woff off) in
              hits.(pr) <-
                Lattice.Safe.add hits.(pr)
                  (Lattice.window_hits ~a ~d ~n ~len sets.(pr)))
            offs
        in
        match par with
        | Ir.Shape.Outside -> (
            add_run ~pr:0 ~n:1 ~d:0 base;
            Some (events, hits))
        | Ir.Shape.Fixed i ->
            let pr = i / max 1 chunk mod h in
            add_run ~pr ~n:1 ~d:0 base;
            Some (events, hits)
        | Ir.Shape.Strided s ->
            let chunk = max 1 chunk in
            let runs = (par_n + chunk - 1) / chunk in
            if runs > budget then None
            else begin
              for q = 0 to runs - 1 do
                let i0 = q * chunk in
                let n = min chunk (par_n - i0) in
                add_run ~pr:(q mod h) ~n ~d:s
                  (Lattice.Safe.add base (Lattice.Safe.mul s i0))
              done;
              Some (events, hits)
            end
      end
    with Lattice.Overflow -> None
