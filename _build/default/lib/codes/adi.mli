(** ADI (Alternating Direction Implicit) sweep: the classic
    redistribution workload.

    A timestep alternates a row-direction sweep and a column-direction
    sweep over the same N x N grid.  In column-major storage the column
    sweep (parallel over columns, recurrence down each column) accesses
    contiguous blocks, while the row sweep (parallel over rows,
    recurrence along each row) accesses N-strided rows: no single
    static distribution serves both, so the LCG necessarily contains C
    edges and the ILP must weigh a per-timestep transpose-style
    redistribution against remote accesses - the situation the paper's
    Global-communication machinery exists for. *)

open Symbolic
open Ir.Types

val params : Assume.t
val program : program
val env : n:int -> Env.t
