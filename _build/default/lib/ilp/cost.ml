type machine = {
  h : int;
  t_local : int;
  t_remote : int;
  t_put : int;
  t_startup : int;
  t_word : int;
}

let default_machine ~h =
  { h; t_local = 1; t_remote = 30; t_put = 4; t_startup = 100; t_word = 3 }

let max_chunk_load ~n ~p ~h =
  if n <= 0 then 0
  else begin
    let p = max 1 p in
    let round = p * h in
    let full = n / round and rem = n mod round in
    (full * p) + min p rem
  end

let load_imbalance ~n ~p ~h ~work =
  if n <= 0 || work <= 0 then 0.0
  else
    let per_iter = float_of_int work /. float_of_int n in
    let excess =
      float_of_int (max_chunk_load ~n ~p ~h) -. (float_of_int n /. float_of_int h)
    in
    if excess <= 0.0 then 0.0 else excess *. per_iter

let redistribution m ~words =
  if m.h <= 1 then 0.0
  else
    let h = float_of_int m.h in
    let share = float_of_int words /. h in
    (float_of_int m.t_startup *. (h -. 1.0))
    +. (share *. (h -. 1.0) /. h *. float_of_int m.t_word)

let frontier m ~words =
  if m.h <= 1 then 0.0
  else
    float_of_int m.t_startup
    +. (float_of_int words /. float_of_int m.h *. float_of_int m.t_word)
