(** Combinator DSL for writing benchmark kernels in the IR.

    Mirrors the Fortran surface syntax of the paper's examples:
    {[
      let f3 =
        Build.(
          phase "F3"
            (doall "I" ~lo:(int 0) ~hi:(var "Q" - int 1)
               [ do_ "L" ~lo:(int 1) ~hi:(var "p")
                   [ ... ] ]))
    ]} *)

open Symbolic
open Types

val int : int -> Expr.t
val var : string -> Expr.t
val ( + ) : Expr.t -> Expr.t -> Expr.t
val ( - ) : Expr.t -> Expr.t -> Expr.t
val ( * ) : Expr.t -> Expr.t -> Expr.t
val ( / ) : Expr.t -> Expr.t -> Expr.t
(** Exact division. *)

val pow2 : Expr.t -> Expr.t

val doall : string -> lo:Expr.t -> hi:Expr.t -> stmt list -> stmt
val do_ : string -> lo:Expr.t -> hi:Expr.t -> ?step:Expr.t -> stmt list -> stmt

val read : string -> Expr.t list -> array_ref
val write : string -> Expr.t list -> array_ref

val assign : ?work:int -> array_ref list -> stmt
(** One abstract statement; [work] defaults to 1 cycle. *)

val phase : string -> stmt -> phase
(** @raise Invalid_argument if the statement is not a loop. *)

val array : string -> Expr.t list -> array_decl

val program :
  ?repeats:bool ->
  name:string ->
  params:Assume.t ->
  arrays:array_decl list ->
  phase list ->
  program
