lib/codes/redblack.ml: Assume Env Ir Symbolic
