(** Randomized decision procedures over the descriptor expression class.

    Canonical-form normalization in {!Expr} proves most identities the
    analysis needs; the residue (identities involving [Floor_div],
    [Ceil_div] or [Opaque_div] atoms, and inequalities) is decided by
    evaluating at sampled assignments drawn from an {!Assume} domain.
    For the polynomial-exponential class this is polynomial identity
    testing: agreement at enough random points over large ranges makes a
    false positive vanishingly unlikely.  Every client treats a negative
    answer conservatively (a missed simplification or a C label, never
    an unsound L label), so probing cannot compromise soundness of the
    locality claims - only precision.

    All functions answer [false] (or [None]) if evaluation fails at any
    sample (unbound variable, fractional [Pow2] exponent). *)

val samples : int ref
(** Number of sampled assignments per query (default 64). *)

val with_seed : int -> (unit -> 'a) -> 'a
(** Run a query deterministically (tests).  Entry and exit advance the
    {!Artifact} generation, flushing every volatile store, so no cached
    answer derived under one probe seed survives into a run under
    another. *)

val sampler : unit -> Assume.t -> Env.t
(** A fresh sampling function forked from the probe's base state.
    Successive calls to the returned function draw distinct
    assignments; distinct [sampler ()] forks replay the same stream, so
    a sampling loop's outcome depends only on the seed policy, never on
    how many probes ran before it. *)

val equal : Assume.t -> Expr.t -> Expr.t -> bool
val is_zero : Assume.t -> Expr.t -> bool

val sign : Assume.t -> Expr.t -> int option
(** [Some s] when the expression has the same sign [s] (-1, 0, +1) at
    every sample; [None] when the sign varies. *)

val nonneg : Assume.t -> Expr.t -> bool
val le : Assume.t -> Expr.t -> Expr.t -> bool
val lt : Assume.t -> Expr.t -> Expr.t -> bool

val integral : Assume.t -> Expr.t -> bool
(** Whether the expression is integer-valued on every sample. *)

val divides : Assume.t -> Expr.t -> Expr.t -> bool
(** [divides asm d e]: is [e / d] an integer everywhere (and [d] never
    zero)? *)

val constant_in : Assume.t -> string -> Expr.t -> bool
(** Whether the value is independent of variable [v]: evaluates the
    expression at multiple values of [v] with everything else fixed. *)
