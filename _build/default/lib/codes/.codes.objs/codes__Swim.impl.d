lib/codes/swim.ml: Assume Env Expr Ir Symbolic
