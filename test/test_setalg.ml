(* Differential tests for the closed-form set algebra (Lattice) and
   the descriptor-level facade (Setalg).

   Every closed-form answer - cardinality, bounds, membership, subset
   and disjointness verdicts, union volume, per-processor ownership
   intersection, progression-window hit counts - is cross-checked
   against brute-force enumeration on small extents, for all three
   distribution kinds (BLOCK, CYCLIC, BLOCK-CYCLIC).  Three-valued
   verdicts are checked for soundness: a Yes/No must agree with the
   oracle, an Unknown is merely counted.  Overflow guards get targeted
   regression cases at the 2^62 boundary. *)

open Symbolic

let count = 300

module IntSet = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Brute-force oracle: expand a raw (count, stride) generator list. *)

let expand ~base dims =
  let rec go acc = function
    | [] -> acc
    | (c, s) :: rest ->
        let acc' =
          List.concat_map
            (fun x -> List.init c (fun k -> x + (k * s)))
            acc
        in
        go acc' rest
  in
  IntSet.of_list (go [ base ] dims)

let gen_dims =
  QCheck.Gen.(
    let* n = int_range 0 3 in
    list_repeat n
      (pair (int_range 1 6) (oneofl [ -7; -3; -2; -1; 0; 1; 2; 3; 4; 5; 8; 12 ])))

let gen_box =
  QCheck.Gen.(
    let* base = int_range (-30) 30 in
    let* dims = gen_dims in
    return (base, dims))

let arb_box = QCheck.make ~print:(fun (b, ds) ->
    Printf.sprintf "base=%d dims=[%s]" b
      (String.concat ";" (List.map (fun (c, s) -> Printf.sprintf "(%d,%d)" c s) ds)))
    gen_box

let arb_box2 = QCheck.pair arb_box arb_box

let box_of (base, dims) = Lattice.make ~base dims

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

(* ------------------------------------------------------------------ *)
(* Box algebra vs the oracle. *)

let card_exact =
  prop "card/bounds exact vs enumeration" arb_box (fun (base, dims) ->
      let set = expand ~base dims in
      match box_of (base, dims) with
      | None -> IntSet.is_empty set || QCheck.Test.fail_report "empty for non-empty set"
      | Some b ->
          let ok_card =
            match Lattice.card b with
            | Some n -> n = IntSet.cardinal set
            | None -> true
          in
          let ok_bounds =
            Lattice.lo b = IntSet.min_elt set && Lattice.hi b = IntSet.max_elt set
          in
          let ok_interval =
            match Lattice.interval b with
            | Some (l, h) ->
                l = IntSet.min_elt set && h = IntSet.max_elt set
                && IntSet.cardinal set = h - l + 1
            | None -> IntSet.cardinal set <> IntSet.max_elt set - IntSet.min_elt set + 1
          in
          if not ok_card then QCheck.Test.fail_report "cardinality mismatch";
          if not ok_bounds then QCheck.Test.fail_report "bounds mismatch";
          if not ok_interval then QCheck.Test.fail_report "intervality mismatch";
          true)

let mem_sound =
  prop "mem sound vs enumeration" arb_box (fun (base, dims) ->
      let set = expand ~base dims in
      match box_of (base, dims) with
      | None -> true
      | Some b ->
          let lo = IntSet.min_elt set - 3 and hi = IntSet.max_elt set + 3 in
          let ok = ref true in
          for x = lo to hi do
            match Lattice.mem b x with
            | Lattice.Yes -> if not (IntSet.mem x set) then ok := false
            | Lattice.No -> if IntSet.mem x set then ok := false
            | Lattice.Unknown -> ()
          done;
          !ok)

let subset_sound =
  prop "subset sound vs enumeration" arb_box2 (fun (ba, bb) ->
      match (box_of ba, box_of bb) with
      | Some a, Some b ->
          let sa = expand ~base:(fst ba) (snd ba)
          and sb = expand ~base:(fst bb) (snd bb) in
          let truth = IntSet.subset sa sb in
          (match Lattice.subset a b with
          | Lattice.Yes -> truth
          | Lattice.No -> not truth
          | Lattice.Unknown -> true)
      | _ -> true)

let disjoint_sound =
  prop "disjoint sound vs enumeration" arb_box2 (fun (ba, bb) ->
      match (box_of ba, box_of bb) with
      | Some a, Some b ->
          let sa = expand ~base:(fst ba) (snd ba)
          and sb = expand ~base:(fst bb) (snd bb) in
          let truth = IntSet.is_empty (IntSet.inter sa sb) in
          (match Lattice.disjoint a b with
          | Lattice.Yes -> truth
          | Lattice.No -> not truth
          | Lattice.Unknown -> true)
      | _ -> true)

let union_card_exact =
  prop "union_card exact vs enumeration"
    (QCheck.list_of_size (QCheck.Gen.int_range 0 4) arb_box)
    (fun raws ->
      let boxes = List.filter_map box_of raws in
      let sets =
        List.filter_map
          (fun (base, dims) ->
            let s = expand ~base dims in
            if IntSet.is_empty s then None else Some s)
          raws
      in
      let union = List.fold_left IntSet.union IntSet.empty sets in
      match Lattice.union_card boxes with
      | Some n -> n = IntSet.cardinal union
      | None -> true)

(* ------------------------------------------------------------------ *)
(* Interval lists. *)

let gen_ivs =
  QCheck.Gen.(
    let* n = int_range 0 5 in
    list_repeat n (pair (int_range (-20) 20) (int_range 0 6))
    >|= List.map (fun (l, w) -> (l, l + w)))

let arb_ivs2 = QCheck.make (QCheck.Gen.pair gen_ivs gen_ivs)

let set_of_ivs ivs =
  List.fold_left
    (fun acc (l, h) ->
      let rec go acc x = if x > h then acc else go (IntSet.add x acc) (x + 1) in
      go acc l)
    IntSet.empty ivs

let iv_ops =
  prop "interval-list union/inter/subtract vs sets" arb_ivs2 (fun (a, b) ->
      let sa = set_of_ivs a and sb = set_of_ivs b in
      let check op truth =
        let got = set_of_ivs (op (Lattice.Iv.norm a) (Lattice.Iv.norm b)) in
        IntSet.equal got truth
      in
      check Lattice.Iv.union (IntSet.union sa sb)
      && check Lattice.Iv.inter (IntSet.inter sa sb)
      && check Lattice.Iv.subtract (IntSet.diff sa sb)
      && Lattice.Iv.total (Lattice.Iv.norm a) = IntSet.cardinal sa)

(* ------------------------------------------------------------------ *)
(* Ownership: owner must equal Distribution.proc_of; the segment walk
   must partition the range into constant-owner runs, for all three
   distribution kinds. *)

let gen_own =
  QCheck.Gen.(
    let* h = int_range 1 5 in
    let* base = int_range (-4) 8 in
    let* block = int_range 1 7 in
    let* kind = int_range 0 3 in
    let* period = int_range 1 40 in
    let* mirror = int_range 1 40 in
    let period, mirror =
      match kind with
      | 0 -> (None, None) (* BLOCK (wide block) / BLOCK-CYCLIC *)
      | 1 -> (Some period, None) (* periodic BLOCK-CYCLIC *)
      | 2 -> (Some period, Some (min mirror period)) (* mirrored fold *)
      | _ -> (None, Some mirror)
    in
    return Lattice.Own.{ h; base; block; period; mirror })

let arb_own = QCheck.make gen_own

let own_vs_distribution =
  prop "Own.owner = Distribution.proc_of on all kinds" arb_own (fun o ->
      let layout =
        Ilp.Distribution.
          {
            array = "A";
            first_phase = 0;
            last_phase = 0;
            base = o.Lattice.Own.base;
            block = o.Lattice.Own.block;
            period = o.Lattice.Own.period;
            mirror = o.Lattice.Own.mirror;
            halo = 0;
          }
      in
      let plan =
        Ilp.Distribution.
          {
            h = o.Lattice.Own.h;
            chunk = [| 1 |];
            layouts = [ layout ];
            privatized = [];
          }
      in
      let ok = ref true in
      for addr = -10 to 60 do
        if
          Lattice.Own.owner o addr
          <> Ilp.Distribution.proc_of plan layout ~addr
        then ok := false
      done;
      !ok)

let own_segments =
  prop "Own.segments partitions into constant runs" arb_own (fun o ->
      match Lattice.Own.segments o ~lo:(-8) ~hi:55 ~budget:1000 with
      | None -> QCheck.Test.fail_report "budget exhausted on tiny range"
      | Some segs ->
          let x = ref (-8) in
          List.iter
            (fun (l, h, p) ->
              if l <> !x || h < l then QCheck.Test.fail_report "not a partition";
              for a = l to h do
                if Lattice.Own.owner o a <> p then
                  QCheck.Test.fail_report "owner not constant on run"
              done;
              x := h + 1)
            segs;
          !x = 56)

(* ------------------------------------------------------------------ *)
(* Progression-window hits. *)

let window_hits_exact =
  prop "window_hits vs brute force"
    (QCheck.make
       QCheck.Gen.(
         tup5 (int_range (-30) 30) (int_range (-9) 9) (int_range 0 12)
           (int_range 0 8) gen_ivs))
    (fun (a, d, n, len, ivs) ->
      let set = Lattice.Iv.norm ivs in
      let brute = ref 0 in
      for i = 0 to n - 1 do
        for x = a + (i * d) to a + (i * d) + len - 1 do
          if Lattice.Iv.mem set x then incr brute
        done
      done;
      Lattice.window_hits ~a ~d ~n ~len set = !brute)

(* ------------------------------------------------------------------ *)
(* Shape extraction vs the enumeration oracle: the symbolic event
   multiset must equal Enumerate.iter's event-for-event on every
   registry kernel at its seed size (tfft2's loop-dependent strides and
   trisolve's triangular bounds exercise the partial evaluator). *)

let event_multiset_enum prog env ph =
  let tbl = Hashtbl.create 1024 in
  let bump k =
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  Ir.Enumerate.iter prog env ph ~f:(fun ~par ~array ~addr access ~work ->
      bump (par, array, addr, access, work));
  tbl

let event_multiset_shape (t : Ir.Shape.t) =
  let tbl = Hashtbl.create 1024 in
  let bump n k =
    Hashtbl.replace tbl k (n + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  let rec tuples base = function
    | [] -> [ base ]
    | (c, s) :: rest ->
        List.concat (List.init c (fun k -> tuples (base + (k * s)) rest))
  in
  List.iter
    (fun (s : Ir.Shape.site) ->
      let addrs = tuples s.base s.seq in
      match s.par with
      | Ir.Shape.Strided st ->
          for i = 0 to t.Ir.Shape.par_n - 1 do
            List.iter
              (fun a -> bump 1 (Some i, s.array, a + (i * st), s.access, s.work))
              addrs
          done
      | Ir.Shape.Fixed i ->
          List.iter (fun a -> bump 1 (Some i, s.array, a, s.access, s.work)) addrs
      | Ir.Shape.Outside ->
          List.iter (fun a -> bump 1 (None, s.array, a, s.access, s.work)) addrs)
    t.Ir.Shape.sites;
  tbl

let shape_matches_oracle () =
  List.iter
    (fun (e : Codes.Registry.entry) ->
      let env = e.env_of_size e.default_size in
      List.iter
        (fun (ph : Ir.Types.phase) ->
          match Ir.Shape.of_phase e.program env ph with
          | None ->
              Alcotest.failf "%s/%s: outside fragment at seed size" e.name
                ph.phase_name
          | Some t ->
              let want = event_multiset_enum e.program env ph in
              let got = event_multiset_shape t in
              let agree =
                Hashtbl.length want = Hashtbl.length got
                && Hashtbl.fold
                     (fun k n acc -> acc && Hashtbl.find_opt got k = Some n)
                     want true
              in
              if not agree then
                Alcotest.failf "%s/%s: symbolic events <> enumerated" e.name
                  ph.phase_name)
        e.program.phases)
    Codes.Registry.all

let shape_work_matches () =
  List.iter
    (fun (e : Codes.Registry.entry) ->
      let env = e.env_of_size e.default_size in
      List.iter
        (fun (ph : Ir.Types.phase) ->
          let enum = ref 0 in
          Ir.Enumerate.iter e.program env ph
            ~f:(fun ~par:_ ~array:_ ~addr:_ _ ~work -> enum := !enum + work);
          match Ir.Shape.of_phase e.program env ph with
          | None -> Alcotest.failf "%s/%s: outside fragment" e.name ph.phase_name
          | Some t ->
              Alcotest.(check int)
                (Printf.sprintf "%s/%s work" e.name ph.phase_name)
                !enum (Ir.Shape.total_work t))
        e.program.phases)
    Codes.Registry.all

(* ------------------------------------------------------------------ *)
(* Overflow boundaries (satellite): checked ops raise, saturating ops
   clamp, and box construction near 2^62 degrades to None/Unknown
   rather than wrapping. *)

let big = max_int / 2

let overflow_boundaries () =
  Alcotest.check_raises "add overflow" Lattice.Overflow (fun () ->
      ignore (Lattice.Safe.add max_int 1));
  Alcotest.check_raises "mul overflow" Lattice.Overflow (fun () ->
      ignore (Lattice.Safe.mul big 3));
  Alcotest.(check int) "add at boundary" max_int (Lattice.Safe.add (max_int - 1) 1);
  Alcotest.(check int) "mul at boundary" (big * 2) (Lattice.Safe.mul big 2);
  Alcotest.(check int) "add_sat clamps" max_int (Lattice.Safe.add_sat max_int 5);
  Alcotest.(check int) "mul_sat clamps" max_int (Lattice.Safe.mul_sat big 3);
  Alcotest.(check int) "mul_sat sign" min_int (Lattice.Safe.mul_sat big (-3));
  (* A box spanning nearly the whole int range: bounds stay exact,
     cardinality answers must not wrap. *)
  (match Lattice.make ~base:0 [ (1 lsl 31, 1 lsl 31) ] with
  | Some b ->
      Alcotest.(check int) "huge hull hi" (((1 lsl 31) - 1) * (1 lsl 31)) (Lattice.hi b);
      Alcotest.(check (option int)) "huge card" (Some (1 lsl 31)) (Lattice.card b)
  | None -> Alcotest.fail "huge box should construct");
  (* Overflowing normalization degrades, never wraps. *)
  (match Lattice.make ~base:(max_int - 10) [ (4, max_int / 2) ] with
  | exception Lattice.Overflow -> ()
  | Some b -> (
      match Lattice.card b with
      | Some n -> Alcotest.fail (Printf.sprintf "wrapped cardinality %d" n)
      | None -> ())
  | None -> Alcotest.fail "nonempty box became empty")

let saturating_window () =
  (* n * len beyond max_int: the closed form must clamp, not wrap. *)
  let n = 1 lsl 31 and len = 1 lsl 32 in
  let hits =
    Lattice.window_hits ~a:0 ~d:0 ~n ~len [ (0, max_int - 1) ]
  in
  Alcotest.(check bool) "saturates at max_int" true (hits = max_int)

let () =
  Alcotest.run "setalg"
    [
      ( "lattice",
        [
          card_exact;
          mem_sound;
          subset_sound;
          disjoint_sound;
          union_card_exact;
          iv_ops;
        ] );
      ("ownership", [ own_vs_distribution; own_segments ]);
      ("windows", [ window_hits_exact ]);
      ( "shape",
        [
          Alcotest.test_case "events = oracle on registry" `Quick
            shape_matches_oracle;
          Alcotest.test_case "work = oracle on registry" `Quick
            shape_work_matches;
        ] );
      ( "overflow",
        [
          Alcotest.test_case "boundaries" `Quick overflow_boundaries;
          Alcotest.test_case "saturating window" `Quick saturating_window;
        ] );
    ]
