(** Cost model: load-unbalance D^k and communication C^kg terms of the
    objective function (paper Eq. 7; the full functions live in the
    companion report [8], so the concrete shapes here are our
    documented reconstruction, calibrated against the DSM simulator).

    Machine parameters are in cycles: a remote word costs [t_remote]
    against [t_local] for a local one; an aggregated message costs
    [t_startup] plus [t_word] per word. *)

type machine = {
  h : int;
  t_local : int;
  t_remote : int;  (** remote read: full round trip *)
  t_put : int;  (** remote write: pipelined single-sided put *)
  t_startup : int;
  t_word : int;
}

val default_machine : h:int -> machine
(** t_local=1, t_remote=30, t_put=4, t_startup=100, t_word=3 - a
    T3D/SHMEM-flavoured ratio set (puts pipeline, gets round-trip). *)

val max_chunk_load : n:int -> p:int -> h:int -> int
(** Iterations executed by the most loaded processor under a CYCLIC(p)
    schedule of [n] iterations on [h] processors. *)

val load_imbalance : n:int -> p:int -> h:int -> work:int -> float
(** D^k: critical-path excess work, [(max_load - n/h) * (work/n)]
    where [work] is the phase's total abstract work. *)

val redistribution : machine -> words:int -> float
(** C^kg for a Global (redistribution) edge: every processor exchanges
    its share with the others, messages aggregated per destination:
    per-processor time [(h-1)*t_startup + (words/h)*((h-1)/h)*t_word]. *)

val frontier : machine -> words:int -> float
(** C^kg for a Frontier (overlap-update) edge: each processor ships one
    aggregated boundary message of [words] words to each neighbour. *)
