module M = Map.Make (String)

type t = int M.t

exception Unbound of string

let empty = M.empty
let of_list l = List.fold_left (fun m (k, v) -> M.add k v m) M.empty l
let add = M.add

let find env v =
  match M.find_opt v env with Some x -> x | None -> raise (Unbound v)
let find_opt env v = M.find_opt v env
let mem env v = M.mem v env
let bindings = M.bindings
let lookup env v = Qnum.of_int (find env v)
let eval env e = Expr.eval_int (lookup env) e
let eval_q env e = Expr.eval (lookup env) e

let pp ppf env =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (k, v) -> Format.fprintf ppf "%s=%d" k v))
    (bindings env)
