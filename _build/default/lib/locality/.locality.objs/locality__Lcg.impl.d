lib/locality/lcg.ml: Array Balance Buffer Descriptor Enumerate Env Expr Format Hashtbl Id Inter Intra Ir List Liveness Pd Phase Printf Region Symbolic Symmetry Table1 Types Unionize
