open Symbolic
open Locality
open Ilp

type message = {
  src : int;
  dst : int;
  ranges : (int * int) list;
  words : int;
}

type event =
  | Redistribute of {
      array : string;
      before_phase : int;
      messages : message list;
    }
  | Frontier of { array : string; after_phase : int; messages : message list }

type schedule = event list

(* Narrowed to the symbolic-evaluation failures only (an undeclared
   array is an internal invariant violation and must keep crashing): a
   size that does not evaluate means this array's messages cannot be
   generated, which [on_error] surfaces and [None] makes explicit so
   callers skip the array's events instead of doing layout math on a
   phantom size-0 array. *)
let array_size ?on_error (lcg : Lcg.t) array =
  let report msg =
    match on_error with Some f -> f msg | None -> ()
  in
  try
    Some
      (Env.eval lcg.env
         (Ir.Linearize.size ~dims:(Ir.Types.array_decl lcg.prog array).dims))
  with
  | Env.Unbound v ->
      report
        (Printf.sprintf
           "array %s: size has unbound parameter %s; omitting its messages"
           array v);
      None
  | Expr.Non_integral e ->
      report
        (Printf.sprintf
           "array %s: size is non-integral (%s); omitting its messages" array
           e);
      None
  | Qnum.Overflow ->
      report
        (Printf.sprintf "array %s: size overflowed; omitting its messages"
           array);
      None

(* Group (src, dst, addr) triples into aggregated messages with maximal
   contiguous ranges. *)
let aggregate (triples : (int * int * int) list) : message list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (src, dst, addr) ->
      let key = (src, dst) in
      let prev = try Hashtbl.find tbl key with Not_found -> [] in
      Hashtbl.replace tbl key (addr :: prev))
    triples;
  Hashtbl.fold
    (fun (src, dst) addrs acc ->
      let sorted = List.sort_uniq compare addrs in
      let ranges =
        List.fold_left
          (fun acc a ->
            match acc with
            | (lo, hi) :: rest when a = hi + 1 -> (lo, a) :: rest
            | _ -> (a, a) :: acc)
          [] sorted
        |> List.rev
      in
      let words = List.length sorted in
      { src; dst; ranges; words } :: acc)
    tbl []
  |> List.sort (fun a b -> compare (a.src, a.dst) (b.src, b.dst))

(* Copy-in elision: entering a new layout epoch needs no
   redistribution when the epoch's accesses are all covered by writes
   performed inside the epoch before any exposed read - checked
   conservatively as "the epoch's first accessing phase writes a
   superset of everything the epoch touches". *)
let write_covers_epoch (lcg : Lcg.t) (l : Distribution.layout) =
    let phases_of r = List.filteri (fun k _ -> r k) lcg.prog.phases in
    let head = List.nth lcg.prog.phases l.first_phase in
    let written = Hashtbl.create 256 in
    let all = Hashtbl.create 256 in
    Ir.Enumerate.iter lcg.prog lcg.env head
      ~f:(fun ~par:_ ~array ~addr access ~work:_ ->
        if String.equal array l.array then begin
          Hashtbl.replace all addr ();
          match access with
          | Ir.Types.Write -> Hashtbl.replace written addr ()
          | Ir.Types.Read -> ()
        end);
    (* the head phase itself must be write-only on this array *)
    let head_write_only =
      Hashtbl.length written = Hashtbl.length all && Hashtbl.length all > 0
    in
    head_write_only
    && List.for_all
         (fun ph ->
           let covered = ref true in
           Ir.Enumerate.iter lcg.prog lcg.env ph
             ~f:(fun ~par:_ ~array ~addr _ ~work:_ ->
               if String.equal array l.array && not (Hashtbl.mem written addr)
               then covered := false);
           !covered)
         (phases_of (fun k -> k > l.first_phase && k <= l.last_phase))

(* The frontier strips of a halo'd layout: each block owner's edge
   cells, addressed to the neighbouring blocks' owners. *)
let strip_triples (plan : Distribution.plan) (l : Distribution.layout) size =
  if l.halo <= 0 || l.halo >= size then []
  else begin
    let triples = ref [] in
    let b = l.block in
    let w = min l.halo b in
    let nblocks = ((size - l.base) + b - 1) / b in
    for blk = 0 to nblocks - 1 do
      let start = l.base + (blk * b) in
      let owner = Distribution.proc_of plan l ~addr:start in
      let strip lo hi target =
        if target >= 0 && target < plan.h && target <> owner then
          for a = max 0 lo to min (size - 1) hi do
            triples := (owner, target, a) :: !triples
          done
      in
      if start + b < size then
        strip (start + b - w) (start + b - 1)
          (Distribution.proc_of plan l ~addr:(start + b));
      if blk > 0 || l.base > 0 then
        strip start (start + w - 1)
          (Distribution.proc_of plan l ~addr:(start - 1))
    done;
    !triples
  end

let generate ?on_error (lcg : Lcg.t) (plan : Distribution.plan) : schedule =
  let array_size lcg a = array_size ?on_error lcg a in
  let events = ref [] in
  let n_phases = List.length lcg.prog.phases in
  List.iteri
    (fun k _ph ->
      (* Redistributions entering epochs that start at phase k; for a
         repeating program the wrap from the last phase back into the
         first epoch (before_phase = 0) is a boundary too. *)
      List.iter
        (fun (l : Distribution.layout) ->
          if
            l.first_phase = k
            && (k > 0 || lcg.prog.repeats)
            && not (write_covers_epoch lcg l)
          then
            match
              Distribution.layout_for plan ~array:l.array
                ~phase_idx:((k - 1 + n_phases) mod n_phases)
            with
            | Some prev when prev <> l -> (
                match array_size lcg l.array with
                | None -> () (* size unevaluable: reported, events omitted *)
                | Some size ->
                    let triples = ref [] in
                    for a = 0 to size - 1 do
                      let po = Distribution.proc_of plan prev ~addr:a in
                      let no = Distribution.proc_of plan l ~addr:a in
                      if po <> no then triples := (po, no, a) :: !triples
                    done;
                    if !triples <> [] then
                      events :=
                        Redistribute
                          {
                            array = l.array;
                            before_phase = k;
                            messages = aggregate !triples;
                          }
                        :: !events;
                    (* a second round initializes the ghost replicas from
                       the now-current owners (order matters: strips read
                       the owners' post-copy-in data) *)
                    let strips = strip_triples plan l size in
                    if strips <> [] then
                      events :=
                        Redistribute
                          {
                            array = l.array;
                            before_phase = k;
                            messages = aggregate strips;
                          }
                        :: !events)
            | _ -> ())
        plan.layouts;
      (* Frontier updates after phases writing halo'd arrays. *)
      let ph = List.nth lcg.prog.phases k in
      let written = Hashtbl.create 4 in
      Ir.Enumerate.iter lcg.prog lcg.env ph
        ~f:(fun ~par:_ ~array ~addr:_ access ~work:_ ->
          match access with
          | Ir.Types.Write -> Hashtbl.replace written array ()
          | Ir.Types.Read -> ());
      Hashtbl.iter
        (fun array () ->
          match Distribution.layout_for plan ~array ~phase_idx:k with
          | Some l when l.halo > 0 && List.length lcg.prog.phases > 1 -> (
              match array_size lcg array with
              | None -> ()
              | Some size ->
                  let triples = strip_triples plan l size in
                  if triples <> [] then
                    events :=
                      Frontier
                        { array; after_phase = k; messages = aggregate triples }
                      :: !events)
          | _ -> ())
        written)
    lcg.prog.phases;
  List.rev !events

let event_messages = function
  | Redistribute { messages; _ } | Frontier { messages; _ } -> messages

let total_words s =
  List.fold_left
    (fun acc e ->
      List.fold_left (fun acc m -> acc + m.words) acc (event_messages e))
    0 s

let message_count s =
  List.fold_left (fun acc e -> acc + List.length (event_messages e)) 0 s

let redistributions s =
  List.filter (function Redistribute _ -> true | Frontier _ -> false) s

let frontiers s =
  List.filter (function Frontier _ -> true | Redistribute _ -> false) s

let pp_message ppf m =
  Format.fprintf ppf "put %d -> %d: %d words in %d ranges [%s]" m.src m.dst
    m.words (List.length m.ranges)
    (String.concat "; "
       (List.map (fun (lo, hi) -> Printf.sprintf "%d..%d" lo hi) m.ranges))

let pp ppf (s : schedule) =
  List.iter
    (fun e ->
      (match e with
      | Redistribute { array; before_phase; messages } ->
          Format.fprintf ppf "@[<v 2>redistribute %s before phase %d (%d msgs):@,"
            array before_phase (List.length messages);
          List.iter (fun m -> Format.fprintf ppf "%a@," pp_message m) messages
      | Frontier { array; after_phase; messages } ->
          Format.fprintf ppf "@[<v 2>frontier %s after phase %d (%d msgs):@,"
            array after_phase (List.length messages);
          List.iter (fun m -> Format.fprintf ppf "%a@," pp_message m) messages);
      Format.fprintf ppf "@]@,")
    s
