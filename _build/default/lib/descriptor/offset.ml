open Symbolic

let min2 asm a b = if Probe.le asm a b then a else b

let min_offset (t : Pd.t) =
  let asm = t.ctx.assume in
  let offsets =
    List.concat_map (fun (g : Pd.group) ->
        List.map (fun (r : Pd.row) -> r.offset) g.rows)
      t.groups
  in
  match offsets with
  | [] -> None
  | o :: rest -> Some (List.fold_left (min2 asm) o rest)

let tau_min (pds : Pd.t list) =
  match List.filter_map min_offset pds with
  | [] -> None
  | o :: rest -> (
      match pds with
      | t :: _ -> Some (List.fold_left (min2 t.ctx.assume) o rest)
      | [] -> None)

let adjust_distance (t : Pd.t) ~tau_min =
  match (min_offset t, t.groups) with
  | Some tau1, g :: _ -> (
      match Pd.par_stride g with
      | Some dp when not (Expr.is_zero dp) ->
          Some (Expr.floor_div (Expr.sub tau1 tau_min) dp)
      | _ -> None)
  | _ -> None
