(** The shared-window shim the executor runs against.

    Each array gets one {!window} replica per processor (a float64
    [Bigarray], outside the OCaml heap, so domains read and write
    concurrently without touching the GC).  Scheduled communication is
    {!deliver}: a put-style range copy from the source processor's
    replica into the destination's, attributed to the source's traffic
    counters - the executable analogue of the simulator's priced
    message events. *)

type window = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type counters = {
  mutable sched_msgs : int;  (** scheduled messages sent *)
  mutable sched_words : int;  (** words in scheduled messages *)
  mutable gets : int;  (** direct remote reads served by an owner *)
  mutable puts : int;  (** direct write-throughs to an owner *)
  mutable local : int;  (** replica-local accesses *)
  mutable workc : int;  (** abstract work cycles executed *)
  mutable busy : float;  (** seconds spent inside phase sweeps *)
}

type t = {
  h : int;
  replicas : (string, window array) Hashtbl.t;
  counters : counters array;  (** one record per domain, uncontended *)
}

val create : h:int -> (string * int) list -> t
(** [create ~h sizes] allocates [h] zero-filled replicas per named
    array (size clamped to at least one cell). *)

val window : t -> proc:int -> array:string -> window

val deliver : t -> array:string -> Dsmsim.Comm.message -> unit
(** Copy the message's ranges src-replica to dst-replica and charge the
    source's [sched_msgs]/[sched_words].  Call only between phase
    sweeps (all domains parked at the barrier). *)

(** Reusable sense-reversing barrier over [Mutex]/[Condition]. *)
module Barrier : sig
  type t

  val create : int -> t
  (** Barrier for [n] participants. *)

  val await : t -> unit

  val poison : t -> unit
  (** Unblock every current and future {!await} - the error escape
      hatch when a participant dies mid-sweep. *)
end
