(* dsmloc: command-line front end for the locality analysis pipeline.

     dsmloc list
     dsmloc analyze  <code> [--size N] [--procs H] [--strict] [--max-errors N]
     dsmloc batch    [CODE...] [--all] [--jobs N] [--size N] [--procs H,H..]
                              [--inject-crash CODE]
     dsmloc lcg      <code> [--size N] [--procs H]
     dsmloc solve    <code> [--size N] [--procs H]
     dsmloc simulate <code> [--size N] [--procs H] [--baseline]
                            [--inject-faults SEED:RATE] [--retries N]
     dsmloc validate <code> [--size N] [--procs H]
                            [--inject-faults SEED:RATE] [--retries N]
     dsmloc sweep    <code> [--size N]
     dsmloc file     <path.dsm> [--procs H] [--env K=V,K=V]
     dsmloc fuzz     [--count N] [--seed S] [--jobs N] [--deep-every N]
                     [--determinism-sample N] [--wall-cap S] [--out DIR]
                     [--inject-mutation] [--no-shrink]
     dsmloc serve    --socket PATH | --stdio [--workers N] [--deadline S] ...
     dsmloc request  <path.dsm|-> --socket PATH [--procs H] [--env K=V]

   Exit codes: 0 clean; 1 fatal (bad arguments, parse error, strict-mode
   failure, too many errors); 2 the analysis degraded (error-severity
   diagnostics recorded); 3 dataflow validation found stale reads.
   `request` additionally: 3 shed by admission control, 4 deadline.
*)

open Cmdliner

let code_arg =
  let doc =
    Printf.sprintf "Benchmark code to analyze (%s)."
      (String.concat ", " Codes.Registry.names)
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CODE" ~doc)

(* "B^E" power notation.  For --size it names the problem extent and
   maps onto the registry's power-of-two exponent knob (so `--size
   2^30` selects a 2^30-element extent); everywhere else it is the
   literal value (`--procs 2^10` is 1024 processors). *)
let pow_split s =
  match String.index_opt s '^' with
  | None -> None
  | Some i ->
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let size_conv =
  let parse s =
    match pow_split s with
    | None -> (
        match int_of_string_opt s with
        | Some v -> Ok v
        | None -> Error (`Msg (Printf.sprintf "invalid size %S" s)))
    | Some (b, e) -> (
        match (int_of_string_opt b, int_of_string_opt e) with
        | Some 2, Some e when e >= 0 && e <= 62 -> Ok e
        | Some _, Some _ ->
            Error
              (`Msg
                "power-notation sizes must be 2^E with 0 <= E <= 62 (the \
                 size knob is a power-of-two exponent)")
        | _ -> Error (`Msg (Printf.sprintf "invalid size %S" s)))
  in
  Arg.conv (parse, Format.pp_print_int)

let pow_int_conv =
  let parse s =
    let plain () =
      match int_of_string_opt s with
      | Some v -> Ok v
      | None -> Error (`Msg (Printf.sprintf "invalid integer %S" s))
    in
    match pow_split s with
    | None -> plain ()
    | Some (b, e) -> (
        match (int_of_string_opt b, int_of_string_opt e) with
        | Some b, Some e when b > 0 && e >= 0 ->
            let rec go acc k =
              if k = 0 then Ok acc
              else if acc > max_int / b then
                Error (`Msg (Printf.sprintf "%S overflows" s))
              else go (acc * b) (k - 1)
            in
            go 1 e
        | _ -> plain ())
  in
  Arg.conv (parse, Format.pp_print_int)

let size_arg =
  let doc =
    "Problem-size knob (code-specific exponent).  Power notation names \
     the extent directly: $(b,--size 2\\^30) selects a 2^30-element \
     problem."
  in
  Arg.(value & opt (some size_conv) None & info [ "size"; "s" ] ~docv:"N" ~doc)

let procs_arg =
  let doc = "Number of processors H (power notation accepted: 2^10)." in
  Arg.(value & opt pow_int_conv 4 & info [ "procs"; "H" ] ~docv:"H" ~doc)

let symbolic_only_arg =
  let doc =
    "Refuse enumeration fallbacks: an analysis step outside the \
     closed-form symbolic fragment fails (recoverable, surfaced as a \
     diagnostic) instead of silently enumerating addresses."
  in
  Arg.(value & flag & info [ "symbolic-only" ] ~doc)

let enum_only_arg =
  let doc =
    "Force the historical enumerated accounting everywhere (the \
     differential baseline for --enum-oracle)."
  in
  Arg.(value & flag & info [ "enum-only" ] ~doc)

let install_mode symbolic_only enum_only =
  match (symbolic_only, enum_only) with
  | true, true ->
      prerr_endline "--symbolic-only and --enum-only are mutually exclusive";
      exit 1
  | true, false -> Symbolic.Lattice.mode := Symbolic.Lattice.Symbolic_only
  | false, true -> Symbolic.Lattice.mode := Symbolic.Lattice.Enumerated_only
  | false, false -> ()

let mode_term = Term.(const install_mode $ symbolic_only_arg $ enum_only_arg)

let enum_oracle_arg =
  let doc =
    "Differential oracle: run the analysis twice - closed-form symbolic \
     and enumerated - and compare the rendered reports byte for byte; a \
     divergence prints the first differing line and exits 1."
  in
  Arg.(value & flag & info [ "enum-oracle" ] ~doc)

let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i la lb =
    match (la, lb) with
    | x :: xs, y :: ys -> if String.equal x y then go (i + 1) xs ys else Some (i, x, y)
    | [], [] -> None
    | x :: _, [] -> Some (i, x, "<missing>")
    | [], y :: _ -> Some (i, "<missing>", y)
  in
  go 1 la lb

let baseline_arg =
  let doc = "Use the naive BLOCK / owner-computes baseline plan." in
  Arg.(value & flag & info [ "baseline" ] ~doc)

let strict_arg =
  let doc =
    "Disable the degradation ladder: the first recoverable analysis \
     failure aborts the run instead of falling back."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let max_errors_arg =
  let doc =
    "Abort (exit 1) once more than $(docv) error-severity diagnostics \
     have been recorded."
  in
  Arg.(value & opt (some int) None & info [ "max-errors" ] ~docv:"N" ~doc)

let faults_conv =
  let parse s =
    match Dsmsim.Fault.parse s with Ok v -> Ok v | Error e -> Error (`Msg e)
  in
  let print ppf s = Format.pp_print_string ppf (Dsmsim.Fault.to_string s) in
  Arg.conv (parse, print)

let faults_arg =
  let doc =
    "Inject deterministic message faults into the communication schedule: \
     $(docv) is SEED:RATE (drop rate) or SEED:DROP:DUP:TRUNC."
  in
  Arg.(
    value
    & opt (some faults_conv) None
    & info [ "inject-faults" ] ~docv:"SPEC" ~doc)

let retries_arg =
  let doc = "Bounded resend budget per faulted message (default 0)." in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

let profile_arg =
  let doc =
    "Print the metrics registry (pipeline stage timers, kernel counters, \
     cache hit rates) as a table on stderr when the command exits."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let profile_json_arg =
  let doc = "Write the metrics registry as JSON to $(docv) on exit." in
  Arg.(
    value & opt (some string) None & info [ "profile-json" ] ~docv:"FILE" ~doc)

let cache_stats_arg =
  let doc =
    "Print the artifact cache registry (per-store entries, hit/miss counts, \
     volatility, evictions) as a table on stderr when the command exits."
  in
  Arg.(value & flag & info [ "cache-stats" ] ~doc)

(* Emission happens in [at_exit] because the exit-code contract above
   leaves commands through [exit] at many points (degraded runs exit 2
   from [finish]); the profile must still be written on those paths. *)
let install_profile profile json_file cache_stats =
  if profile || json_file <> None then
    at_exit (fun () ->
        let snap = Core.Metrics.snapshot () in
        if profile then
          Format.eprintf "%a@?" Core.Metrics.pp_table snap;
        match json_file with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            output_string oc (Core.Metrics.to_json snap);
            output_char oc '\n';
            close_out oc);
  if cache_stats then
    at_exit (fun () ->
        prerr_string (Core.Artifact.report ());
        flush stderr)

let profile_term =
  Term.(
    const install_profile $ profile_arg $ profile_json_arg $ cache_stats_arg)

let with_entry name size f =
  match Codes.Registry.find name with
  | entry ->
      let size = Option.value size ~default:entry.default_size in
      f entry (entry.env_of_size size)
  | exception Not_found ->
      Printf.eprintf "unknown code %S; try: %s\n" name
        (String.concat ", " Codes.Registry.names);
      exit 1

let run_pipeline ?(strict = false) ?max_errors entry env h =
  let diags = Core.Diag.collector ?max_errors () in
  match
    Core.Pipeline.run ~strict ~diags entry.Codes.Registry.program ~env ~h
  with
  | t -> t
  | exception Core.Diag.Too_many_errors n ->
      Printf.eprintf "aborted: more than %d error-severity diagnostics\n" n;
      exit 1
  | exception Core.Lint.Failed ds ->
      Format.eprintf "%a@?" Core.Diag.pp_table ds;
      Printf.eprintf "strict mode: lint found errors\n";
      exit 1
  | exception e when strict ->
      Printf.eprintf "strict mode: %s\n" (Printexc.to_string e);
      exit 1

(* Print any accumulated diagnostics to stderr (stdout carries the
   command's payload) and translate the run's outcome into the exit
   code contract above. *)
let finish ?(failed = false) t =
  (match Core.Pipeline.diagnostics t with
  | [] -> ()
  | ds -> Format.eprintf "%a@?" Core.Diag.pp_table ds);
  if failed then exit 3;
  if Core.Pipeline.degraded t then exit 2

(* Simulation and schedule generation replay the program itself; a
   program whose sizes or bounds do not evaluate cannot be replayed,
   and there is no further rung to degrade to - surface as fatal with
   whatever diagnostics were collected. *)
let fatal_guard t f =
  try f ()
  with e when Core.Pipeline.recoverable e ->
    (match Core.Pipeline.diagnostics t with
    | [] -> ()
    | ds -> Format.eprintf "%a@?" Core.Diag.pp_table ds);
    Printf.eprintf "fatal: cannot replay the program (%s)\n"
      (Core.Pipeline.describe e);
    exit 1

let list_cmd =
  let f () =
    List.iter
      (fun (e : Codes.Registry.entry) ->
        Printf.printf "%-10s (default size %d): %d phases, arrays %s\n" e.name
          e.default_size
          (List.length e.program.phases)
          (String.concat ", "
             (List.map
                (fun (a : Ir.Types.array_decl) -> a.name)
                e.program.arrays)))
      Codes.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available benchmark codes.")
    Term.(const f $ const ())

let analyze_cmd =
  let f () () name size h strict max_errors enum_oracle =
    with_entry name size (fun entry env ->
        if enum_oracle then begin
          (* Render the same analysis under both accountings.  The
             artifact stores key mode-dependent entries on the mode
             tag, so the two runs cannot poison each other. *)
          let render mode =
            Symbolic.Lattice.mode := mode;
            let t = run_pipeline ~strict ?max_errors entry env h in
            (Format.asprintf "%a@." Core.Pipeline.report_core t, t)
          in
          let base_mode =
            match !Symbolic.Lattice.mode with
            | Symbolic.Lattice.Enumerated_only -> Symbolic.Lattice.Auto
            | m -> m
          in
          let sym, t = render base_mode in
          let enu, te = render Symbolic.Lattice.Enumerated_only in
          (* Diagnostics are compared structurally, modulo the
             fallback-visibility code that only the symbolic side can
             emit. *)
          let diag_sig t =
            List.filter_map
              (fun (d : Core.Diag.t) ->
                if String.equal d.Core.Diag.code "LINT-SYMBOLIC-FALLBACK" then
                  None
                else
                  Some
                    (Printf.sprintf "%s|%s" d.Core.Diag.code d.Core.Diag.message))
              (Core.Pipeline.diagnostics t)
          in
          Format.printf "%a@." Core.Pipeline.report t;
          (match first_diff sym enu with
          | Some (line, s, e) ->
              Printf.eprintf
                "enum-oracle: symbolic and enumerated reports diverge at \
                 line %d:\n\
                \  symbolic:   %s\n\
                \  enumerated: %s\n"
                line s e;
              exit 1
          | None ->
              if diag_sig t <> diag_sig te then begin
                Printf.eprintf
                  "enum-oracle: symbolic and enumerated diagnostics diverge\n";
                exit 1
              end;
              Printf.eprintf "enum-oracle: reports identical\n");
          if Core.Pipeline.degraded t then exit 2
        end
        else begin
          let t = run_pipeline ~strict ?max_errors entry env h in
          Format.printf "%a@." Core.Pipeline.report t;
          if Core.Pipeline.degraded t then exit 2
        end)
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Full pipeline report: LCG, model, solution, plan.")
    Term.(
      const f $ profile_term $ mode_term $ code_arg $ size_arg $ procs_arg
      $ strict_arg $ max_errors_arg $ enum_oracle_arg)

let lcg_cmd =
  let f () () name size h =
    with_entry name size (fun entry env ->
        let lcg = Locality.Lcg.build entry.program ~env ~h in
        Format.printf "%a@." Locality.Lcg.pp lcg)
  in
  Cmd.v (Cmd.info "lcg" ~doc:"Print the Locality-Communication Graph.")
    Term.(const f $ profile_term $ mode_term $ code_arg $ size_arg $ procs_arg)

let solve_cmd =
  let f () () name size h strict max_errors =
    with_entry name size (fun entry env ->
        let t = run_pipeline ~strict ?max_errors entry env h in
        Format.printf "%a@.@." Ilp.Model.pp t.model;
        Format.printf "objective %.1f (D %.1f + C %.1f)@." t.solution.objective
          t.solution.d_cost t.solution.c_cost;
        Format.printf "%a@." Ilp.Distribution.pp t.plan;
        finish t)
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Print the Table-2 constraint model and the solved distribution.")
    Term.(
      const f $ profile_term $ mode_term $ code_arg $ size_arg $ procs_arg
      $ strict_arg $ max_errors_arg)

let simulate_cmd =
  let f () () name size h baseline strict max_errors faults retries =
    with_entry name size (fun entry env ->
        let t = run_pipeline ~strict ?max_errors entry env h in
        let r =
          fatal_guard t (fun () ->
              if baseline then Core.Pipeline.simulate_baseline t
              else Core.Pipeline.simulate ?faults ~retries t)
        in
        Format.printf "%a@." Dsmsim.Exec.pp r;
        finish t)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Replay the code on the DSM machine model.")
    Term.(
      const f $ profile_term $ mode_term $ code_arg $ size_arg $ procs_arg
      $ baseline_arg $ strict_arg $ max_errors_arg $ faults_arg $ retries_arg)

let sweep_cmd =
  let f () () name size =
    with_entry name size (fun entry env ->
        Printf.printf "%4s %12s %12s\n" "H" "LCG eff" "BLOCK eff";
        List.iter
          (fun h ->
            let t = run_pipeline entry env h in
            let eff, base = fatal_guard t (fun () -> Core.Pipeline.efficiency t) in
            Printf.printf "%4d %11.1f%% %11.1f%%\n%!" h (100. *. eff)
              (100. *. base))
          [ 1; 2; 4; 8; 16; 32; 64 ])
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Efficiency sweep over processor counts.")
    Term.(const f $ profile_term $ mode_term $ code_arg $ size_arg)

let table1_cmd =
  let f () = Format.printf "%a" Locality.Table1.pp_grid () in
  Cmd.v
    (Cmd.info "table1" ~doc:"Print the paper's Table 1 edge classification.")
    Term.(const f $ const ())

let stability_cmd =
  let f name =
    with_entry name None (fun entry _env ->
        let t = Locality.Stability.analyze entry.program in
        Format.printf "@[<v>%a@]@." Locality.Stability.pp t;
        Format.printf "all edges stable: %b@." (Locality.Stability.all_stable t))
  in
  Cmd.v
    (Cmd.info "stability"
       ~doc:"LCG label stability across sampled sizes and machine widths.")
    Term.(const f $ code_arg)

let validate_cmd =
  let f () () name size h strict max_errors faults retries =
    with_entry name size (fun entry env ->
        let t = run_pipeline ~strict ?max_errors entry env h in
        fatal_guard t @@ fun () ->
        let rounds = if entry.program.repeats then 2 else 1 in
        let sched =
          match faults with
          | None -> None
          | Some spec ->
              let base =
                Dsmsim.Comm.generate
                  ~on_error:(Core.Pipeline.record_comm_error t)
                  t.lcg t.plan
              in
              let delivered, st = Dsmsim.Fault.apply spec ~retries base in
              Core.Pipeline.record_fault_stats t st;
              Some delivered
        in
        let r =
          Dsmsim.Validate.run ~rounds
            ~on_error:(Core.Pipeline.record_comm_error t)
            ?sched t.lcg t.plan
        in
        Format.printf "%a@." Dsmsim.Validate.pp r;
        finish ~failed:(not (Dsmsim.Validate.ok r)) t)
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Replay with versioned memory: certify every read is fresh \
          (optionally under injected message faults).")
    Term.(
      const f $ profile_term $ mode_term $ code_arg $ size_arg $ procs_arg
      $ strict_arg $ max_errors_arg $ faults_arg $ retries_arg)

let report_cmd =
  let f () () name size h strict max_errors =
    with_entry name size (fun entry env ->
        let t = run_pipeline ~strict ?max_errors entry env h in
        print_string (fatal_guard t (fun () -> Core.Report.markdown t));
        if Core.Pipeline.degraded t then exit 2)
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Full markdown analysis report.")
    Term.(
      const f $ profile_term $ mode_term $ code_arg $ size_arg $ procs_arg
      $ strict_arg $ max_errors_arg)

let spmd_cmd =
  let f name size h =
    with_entry name size (fun entry env ->
        let t = run_pipeline entry env h in
        print_string
          (fatal_guard t (fun () -> Codegen.Spmd.generate t.lcg t.plan t.machine));
        finish t)
  in
  Cmd.v
    (Cmd.info "spmd" ~doc:"Emit the SPMD pseudo-code the plan implies.")
    Term.(const f $ code_arg $ size_arg $ procs_arg)

let run_cmd =
  let domains_arg =
    let doc = "Number of OCaml domains to execute on (the machine width H)." in
    Arg.(value & opt pow_int_conv 4 & info [ "domains"; "d" ] ~docv:"H" ~doc)
  in
  let rounds_arg =
    let doc =
      "Traversals of the phase sequence (default: 2 for repeating programs, \
       1 otherwise)."
    in
    Arg.(value & opt (some int) None & info [ "rounds" ] ~docv:"N" ~doc)
  in
  let spin_arg =
    let doc =
      "Busy-loop iterations per abstract work cycle, scaling statement \
       compute into real time."
    in
    Arg.(value & opt int 0 & info [ "spin" ] ~docv:"K" ~doc)
  in
  let validate_run_arg =
    let doc =
      "Fail (exit 3) on any stale read or final-content mismatch against \
       the sequential replay, not just on schedule-parity violations."
    in
    Arg.(value & flag & info [ "validate" ] ~doc)
  in
  let f name size h rounds spin validate =
    with_entry name size (fun entry env ->
        let t = run_pipeline entry env h in
        fatal_guard t @@ fun () ->
        let rounds =
          match rounds with
          | Some r -> r
          | None -> if entry.program.repeats then 2 else 1
        in
        match Exec.Runner.execute ~rounds ~spin t.lcg t.plan with
        | exception Exec.Runner.Unsupported msg ->
            Printf.eprintf "unsupported: %s\n" msg;
            exit 1
        | r ->
            let sim =
              Dsmsim.Exec.run ~rounds
                ~on_error:(Core.Pipeline.record_comm_error t)
                t.lcg t.plan t.machine
            in
            Format.printf "%a@." Exec.Runner.pp r;
            Format.printf
              "simulator: T_par=%.0f T_seq=%.0f efficiency=%.1f%% (%d remote \
               accesses predicted, %d measured)@."
              sim.par_time sim.seq_time
              (100.0 *. sim.efficiency)
              sim.total_remote
              (r.remote_gets + r.remote_puts);
            let failed =
              (not (Exec.Runner.schedule_parity r))
              || r.errors <> []
              || (validate && (r.stale > 0 || r.content_mismatches > 0))
            in
            finish ~failed t)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Execute the compiled program on OCaml domains over put-style \
          shared windows and check it against the schedule and a \
          sequential replay.")
    Term.(
      const f $ code_arg $ size_arg $ domains_arg $ rounds_arg $ spin_arg
      $ validate_run_arg)

let dot_cmd =
  let f name size h =
    with_entry name size (fun entry env ->
        let lcg = Locality.Lcg.build entry.program ~env ~h in
        print_string (Locality.Lcg.to_dot lcg))
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit the LCG as Graphviz (pipe into `dot -Tsvg`).")
    Term.(const f $ code_arg $ size_arg $ procs_arg)

let comm_cmd =
  let f name size h =
    with_entry name size (fun entry env ->
        let t = run_pipeline entry env h in
        let sched =
          fatal_guard t (fun () ->
              Dsmsim.Comm.generate
                ~on_error:(Core.Pipeline.record_comm_error t)
                t.lcg t.plan)
        in
        Format.printf "%a@." Dsmsim.Comm.pp sched;
        Format.printf
          "total: %d messages, %d words (%d redistribution events, %d frontier events)@."
          (Dsmsim.Comm.message_count sched)
          (Dsmsim.Comm.total_words sched)
          (List.length (Dsmsim.Comm.redistributions sched))
          (List.length (Dsmsim.Comm.frontiers sched));
        finish t)
  in
  Cmd.v
    (Cmd.info "comm"
       ~doc:"Print the generated single-sided communication schedule.")
    Term.(const f $ code_arg $ size_arg $ procs_arg)

let file_cmd =
  let path_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Surface-language program (.dsm; see lib/frontend/parse.mli).")
  in
  let env_arg =
    let doc = "Comma-separated parameter bindings, e.g. N=32,M=16." in
    Arg.(value & opt string "" & info [ "env"; "e" ] ~docv:"BINDINGS" ~doc)
  in
  let autopar_arg =
    let doc =
      "Ignore doall markings and derive parallel loops automatically."
    in
    Arg.(value & flag & info [ "autopar" ] ~doc)
  in
  let f () () path h bindings autopar strict max_errors =
    match Frontend.Parse.program_file path with
    | exception Frontend.Parse.Error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" path line message;
        exit 1
    | prog ->
        let diags = Core.Diag.collector ?max_errors () in
        (* Certified auto-parallelization: the descriptor-based race
           certifier decides loops statically, sampling is only the
           fallback, and any static/dynamic disagreement surfaces as a
           RACE-ORACLE-MISMATCH diagnostic. *)
        let prog = if autopar then Core.Lint.autopar ~diags prog else prog in
        let env =
          if bindings = "" then
            (* default: midpoint of each declared parameter range *)
            List.fold_left
              (fun env (v, d) ->
                match d with
                | Symbolic.Assume.Int_range (lo, hi) ->
                    Symbolic.Env.add v ((lo + hi) / 2) env
                | Symbolic.Assume.Pow2_of w -> (
                    match Symbolic.Env.find env w with
                    | e -> Symbolic.Env.add v (1 lsl e) env
                    | exception Symbolic.Env.Unbound _ ->
                        Printf.eprintf
                          "parameter %s = 2^%s: %s is not bound (declare it \
                           first or pass --env)\n"
                          v w w;
                        exit 1)
                | Symbolic.Assume.Expr_range _ -> env)
              Symbolic.Env.empty
              (Symbolic.Assume.to_list prog.params)
          else
            String.split_on_char ',' bindings
            |> List.fold_left
                 (fun env kv ->
                   match String.split_on_char '=' kv with
                   | [ k; v ] -> Symbolic.Env.add k (int_of_string v) env
                   | _ ->
                       Printf.eprintf "bad binding %S\n" kv;
                       exit 1)
                 Symbolic.Env.empty
        in
        let t =
          match Core.Pipeline.run ~strict ~diags prog ~env ~h with
          | t -> t
          | exception Core.Diag.Too_many_errors n ->
              Printf.eprintf
                "aborted: more than %d error-severity diagnostics\n" n;
              exit 1
          | exception Core.Lint.Failed ds ->
              Format.eprintf "%a@?" Core.Diag.pp_table ds;
              Printf.eprintf "strict mode: lint found errors\n";
              exit 1
          | exception e when strict ->
              Printf.eprintf "strict mode: %s\n" (Printexc.to_string e);
              exit 1
        in
        Format.printf "%a@.@." Core.Pipeline.report t;
        let eff, base = fatal_guard t (fun () -> Core.Pipeline.efficiency t) in
        Format.printf "Simulated efficiency: %.1f%% (LCG) vs %.1f%% (BLOCK)@."
          (100. *. eff) (100. *. base);
        if Core.Pipeline.degraded t then exit 2
  in
  Cmd.v
    (Cmd.info "file"
       ~doc:"Parse a surface-language program and run the full pipeline on it.")
    Term.(
      const f $ profile_term $ mode_term $ path_arg $ procs_arg $ env_arg
      $ autopar_arg $ strict_arg $ max_errors_arg)

(* ------------------------------------------------------------------ *)
(* batch: sharded multi-process analysis over many codes at once.

   Jobs and results cross the fork boundary by Marshal, so both are
   plain records of strings/ints; the worker renders its report and
   diagnostics to strings before shipping them back. *)

type batch_job = {
  bj_name : string;
  bj_size : int;
  bj_h : int;
  bj_crash : bool;  (* fault injection: die on the first attempt *)
}

type batch_result = {
  br_body : string;  (* rendered pipeline report *)
  br_diags : string;  (* rendered diagnostics table, [""] when clean *)
  br_degraded : bool;
}

let batch_worker ~attempt (j : batch_job) =
  (* --inject-crash: SIGKILL ourselves on the first attempt only, so
     the retry (on a fresh worker) succeeds and the batch exits 0 with
     the loss on record as a POOL-WORKER-LOST diagnostic. *)
  if j.bj_crash && attempt = 1 then Unix.kill (Unix.getpid ()) Sys.sigkill;
  let entry = Codes.Registry.find j.bj_name in
  let env = entry.env_of_size j.bj_size in
  let diags = Core.Diag.collector () in
  let t = Core.Pipeline.run ~diags entry.program ~env ~h:j.bj_h in
  {
    br_body = Format.asprintf "%a" Core.Pipeline.report t;
    br_diags =
      (match Core.Pipeline.diagnostics t with
      | [] -> ""
      | ds -> Format.asprintf "%a" Core.Diag.pp_table ds);
    br_degraded = Core.Pipeline.degraded t;
  }

let batch_cmd =
  let codes_arg =
    let doc =
      Printf.sprintf "Benchmark codes to analyze (default: all of %s)."
        (String.concat ", " Codes.Registry.names)
    in
    Arg.(value & pos_all string [] & info [] ~docv:"CODE" ~doc)
  in
  let all_arg =
    let doc = "Analyze every registry benchmark (in addition to CODEs)." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let jobs_arg =
    let doc = "Number of forked worker processes." in
    Arg.(value & opt int 4 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let procs_list_arg =
    let doc =
      "Comma-separated processor counts; each code is analyzed once per \
       count."
    in
    Arg.(
      value & opt (list pow_int_conv) [ 4 ] & info [ "procs"; "H" ] ~docv:"H,.." ~doc)
  in
  let crash_arg =
    let doc =
      "Fault injection: the worker running $(docv)'s first attempt kills \
       itself (SIGKILL) mid-job, exercising the pool's crash-recovery \
       path.  The job is retried on a fresh worker."
    in
    Arg.(
      value & opt (some string) None & info [ "inject-crash" ] ~docv:"CODE" ~doc)
  in
  let f () () names all jobs size hs crash =
    let names = names @ (if all then Codes.Registry.names else []) in
    let names = if names = [] then Codes.Registry.names else names in
    List.iter
      (fun n ->
        if not (List.mem n Codes.Registry.names) then begin
          Printf.eprintf "unknown code %S; try: %s\n" n
            (String.concat ", " Codes.Registry.names);
          exit 1
        end)
      names;
    (match crash with
    | Some c when not (List.mem c names) ->
        Printf.eprintf "--inject-crash %s: code is not part of this batch\n" c;
        exit 1
    | _ -> ());
    let job_list =
      List.concat_map
        (fun name ->
          let entry = Codes.Registry.find name in
          let sz = Option.value size ~default:entry.default_size in
          List.map
            (fun h ->
              { bj_name = name; bj_size = sz; bj_h = h;
                bj_crash = crash = Some name })
            hs)
        names
    in
    let diags = Core.Diag.collector () in
    let failed = ref false in
    let describe (j : batch_job) =
      Printf.sprintf "%s (size %d, H=%d)" j.bj_name j.bj_size j.bj_h
    in
    let stream idx outcome =
      let j = List.nth job_list idx in
      match outcome with
      | Core.Pool.Done d ->
          List.iter
            (fun reason ->
              Core.Diag.addf diags ~severity:Core.Diag.Error
                ~stage:Core.Diag.Pool ~where:j.bj_name ~code:"POOL-WORKER-LOST"
                "job %s lost an attempt (%s); retried on a fresh worker"
                (describe j) reason)
            d.lost;
          let (r : batch_result) = d.value in
          Printf.printf "=== %s ===\n" (describe j);
          print_string r.br_body;
          print_newline ();
          prerr_string r.br_diags;
          if r.br_degraded then failed := true
      | Core.Pool.Failed { attempts; reasons } ->
          Core.Diag.addf diags ~severity:Core.Diag.Error ~stage:Core.Diag.Pool
            ~where:j.bj_name ~code:"POOL-WORKER-LOST"
            "job %s failed permanently after %d attempts (%s)" (describe j)
            attempts
            (String.concat "; " reasons);
          Printf.printf "=== %s ===\n" (describe j);
          Printf.printf "FAILED after %d attempts\n\n" attempts;
          failed := true
    in
    let _outcomes, merged =
      Core.Pool.map ~workers:jobs ~f:batch_worker ~stream ~diags job_list
    in
    (* Fold the workers' per-job snapshots into the parent registry so
       the at_exit --profile/--profile-json report is fleet-wide. *)
    Core.Metrics.absorb merged;
    (match Core.Diag.to_list diags with
    | [] -> ()
    | ds -> Format.eprintf "%a@?" Core.Diag.pp_table ds);
    if !failed then exit 2
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Analyze many codes in parallel on a pool of forked worker \
          processes: crash-isolated, deterministically ordered output, \
          fleet-merged metrics.")
    Term.(
      const f $ profile_term $ mode_term $ codes_arg $ all_arg $ jobs_arg
      $ size_arg $ procs_list_arg $ crash_arg)

(* ------------------------------------------------------------------ *)
(* serve / request: the warm analysis daemon and its client.

   Exit codes for `request` extend the base contract with the serving
   statuses: 0 ok; 1 fatal (transport failure, SERVE-* error); 2
   degraded; 3 shed by admission control (retry after the hint); 4
   deadline exceeded. *)

let socket_doc = "Unix-domain socket path of the daemon."

let socket_opt_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:socket_doc)

let socket_req_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:socket_doc)

let serve_cmd =
  let stdio_arg =
    let doc =
      "Serve a single connection on stdin/stdout instead of a socket."
    in
    Arg.(value & flag & info [ "stdio" ] ~doc)
  in
  let workers_arg =
    let doc = "Number of persistent forked analysis workers." in
    Arg.(value & opt int 4 & info [ "workers"; "j" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc =
      "Admission-queue bound: past $(docv) queued requests the daemon \
       sheds with SERVE-OVERLOAD and a retry-after hint."
    in
    Arg.(value & opt int 64 & info [ "queue-cap" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc =
      "Default per-request budget in seconds (a request's own %deadline \
       directive wins).  Past it the worker is killed and the client \
       gets SERVE-DEADLINE."
    in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"S" ~doc)
  in
  let max_frame_arg =
    let doc = "Wire frame cap in bytes (oversized frames: SERVE-BAD-FRAME)." in
    Arg.(
      value
      & opt int Frontend.Wire.default_max_frame
      & info [ "max-frame" ] ~docv:"BYTES" ~doc)
  in
  let max_jobs_arg =
    let doc = "Recycle a worker after serving $(docv) requests." in
    Arg.(value & opt int 256 & info [ "max-worker-jobs" ] ~docv:"N" ~doc)
  in
  let max_rss_arg =
    let doc = "Recycle a worker past $(docv) KiB resident set." in
    Arg.(
      value & opt int (1 lsl 20) & info [ "max-worker-rss-kb" ] ~docv:"KB" ~doc)
  in
  let drain_arg =
    let doc =
      "Seconds granted to in-flight work on SIGTERM before it is killed \
       with SERVE-DRAIN."
    in
    Arg.(value & opt float 5.0 & info [ "drain-deadline" ] ~docv:"S" ~doc)
  in
  let max_conns_arg =
    let doc = "Concurrent client connection limit." in
    Arg.(value & opt int 64 & info [ "max-connections" ] ~docv:"N" ~doc)
  in
  let hooks_arg =
    let doc =
      "Honour the %hang/%crash request directives (torture tests and CI \
       only; without this flag they are stripped on admission)."
    in
    Arg.(value & flag & info [ "test-hooks" ] ~doc)
  in
  let verbose_arg =
    let doc = "Per-request log lines on stderr." in
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc)
  in
  let f () socket stdio workers queue_cap deadline max_frame max_jobs max_rss
      drain max_conns hooks verbose =
    let socket =
      match (socket, stdio) with
      | Some s, false -> Some s
      | None, true -> None
      | Some _, true ->
          Printf.eprintf "--socket and --stdio are mutually exclusive\n";
          exit 1
      | None, false ->
          Printf.eprintf "serve needs --socket PATH or --stdio\n";
          exit 1
    in
    let diags = Core.Diag.collector () in
    let cfg =
      {
        Core.Server.socket;
        workers;
        queue_cap;
        default_deadline = deadline;
        max_frame;
        max_worker_jobs = max_jobs;
        max_worker_rss_kb = max_rss;
        drain_deadline = drain;
        max_connections = max_conns;
        test_hooks = hooks;
        verbose;
      }
    in
    (match Core.Server.run ~diags cfg with
    | () -> ()
    | exception Unix.Unix_error (e, fn, arg) ->
        Printf.eprintf "serve: %s(%s): %s\n" fn arg (Unix.error_message e);
        exit 1);
    match Core.Diag.to_list diags with
    | [] -> ()
    | ds -> Format.eprintf "%a@?" Core.Diag.pp_table ds
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the warm analysis daemon: persistent recycling workers, \
          per-request deadlines, bounded admission, graceful SIGTERM drain.")
    Term.(
      const f $ profile_term $ socket_opt_arg $ stdio_arg
      $ workers_arg $ queue_arg $ deadline_arg $ max_frame_arg $ max_jobs_arg
      $ max_rss_arg $ drain_arg $ max_conns_arg $ hooks_arg $ verbose_arg)

let request_cmd =
  let path_arg =
    let doc = "Surface-language program (.dsm), or - for stdin." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let env_arg =
    let doc = "Comma-separated parameter bindings, e.g. N=32,M=16." in
    Arg.(value & opt string "" & info [ "env"; "e" ] ~docv:"BINDINGS" ~doc)
  in
  let deadline_arg =
    let doc = "Per-request deadline in seconds (%deadline directive)." in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"S" ~doc)
  in
  let timeout_arg =
    let doc = "Client-side timeout for the whole round trip." in
    Arg.(value & opt float 60. & info [ "timeout" ] ~docv:"S" ~doc)
  in
  let hang_arg =
    let doc =
      "Test hook: ask the worker to sleep $(docv) seconds first (needs a \
       daemon started with --test-hooks)."
    in
    Arg.(value & opt float 0. & info [ "hang" ] ~docv:"S" ~doc)
  in
  let crash_arg =
    let doc = "Test hook: ask the worker to SIGKILL itself (ditto)." in
    Arg.(value & flag & info [ "crash" ] ~doc)
  in
  let quiet_arg =
    let doc = "Suppress the response summary line on stderr." in
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc)
  in
  let read_all ic =
    let b = Buffer.create 4096 in
    (try
       while true do
         Buffer.add_channel b ic 4096
       done
     with End_of_file -> ());
    Buffer.contents b
  in
  let f path socket h bindings deadline timeout hang crash quiet =
    let source =
      if path = "-" then read_all stdin
      else
        match open_in_bin path with
        | ic ->
            let s = read_all ic in
            close_in ic;
            s
        | exception Sys_error msg ->
            Printf.eprintf "%s\n" msg;
            exit 1
    in
    let env =
      if bindings = "" then []
      else
        String.split_on_char ',' bindings
        |> List.map (fun kv ->
               match String.split_on_char '=' kv with
               | [ k; v ] -> (
                   match int_of_string_opt v with
                   | Some v -> (k, v)
                   | None ->
                       Printf.eprintf "bad binding %S\n" kv;
                       exit 1)
               | _ ->
                   Printf.eprintf "bad binding %S\n" kv;
                   exit 1)
    in
    let req =
      Frontend.Wire.request ~env ~procs:h ?deadline ~hang ~crash source
    in
    match Core.Server.Client.request ~socket ~timeout req with
    | Error msg ->
        Printf.eprintf "request failed: %s\n" msg;
        exit 1
    | Ok r ->
        print_string r.Frontend.Wire.body;
        if not quiet then begin
          Printf.eprintf "status %s%s; %.1fms; artifact hits %d; worker request #%d%s\n"
            (Frontend.Wire.status_to_string r.status)
            (match r.code with Some c -> " (" ^ c ^ ")" | None -> "")
            r.elapsed_ms r.artifact_hits r.worker_requests
            (match r.retry_after with
            | Some s -> Printf.sprintf "; retry after %.2fs" s
            | None -> "")
        end;
        exit
          (match r.status with
          | Frontend.Wire.Ok -> 0
          | Frontend.Wire.Degraded -> 2
          | Frontend.Wire.Error -> 1
          | Frontend.Wire.Overload -> 3
          | Frontend.Wire.Deadline -> 4)
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Send one program to a running `dsmloc serve` daemon and print \
          the response body (exit: 0 ok, 1 error, 2 degraded, 3 overload, \
          4 deadline).")
    Term.(
      const f $ path_arg $ socket_req_arg $ procs_arg $ env_arg
      $ deadline_arg $ timeout_arg $ hang_arg $ crash_arg $ quiet_arg)

let lint_cmd =
  let targets_arg =
    let doc =
      "Registry benchmark name or surface-language file (.dsm) to lint."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"TARGET" ~doc)
  in
  let all_arg =
    let doc = "Lint every registry benchmark (in addition to TARGETs)." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let lint_strict_arg =
    let doc = "Fail (exit 2) on warning-severity findings too." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let f targets all strict =
    let targets = targets @ if all then Codes.Registry.names else [] in
    if targets = [] then begin
      Printf.eprintf
        "nothing to lint; give a benchmark name or a .dsm file, or --all\n";
      exit 1
    end;
    let failed = ref false in
    List.iter
      (fun target ->
        let prog =
          if Filename.check_suffix target ".dsm" || Sys.file_exists target then
            match Frontend.Parse.program_file target with
            | p -> p
            | exception Frontend.Parse.Error { line; message } ->
                Printf.eprintf "%s:%d: %s\n" target line message;
                exit 1
            | exception Sys_error msg ->
                Printf.eprintf "%s\n" msg;
                exit 1
          else
            match Codes.Registry.find target with
            | e -> e.program
            | exception Not_found ->
                Printf.eprintf "unknown target %S; try a .dsm path or: %s\n"
                  target
                  (String.concat ", " Codes.Registry.names);
                exit 1
        in
        (* one tab-separated line per finding: machine-readable, stable
           columns target/severity/code/where/message *)
        List.iter
          (fun (d : Core.Diag.t) ->
            Printf.printf "%s\t%s\t%s\t%s\t%s\n" target
              (Core.Diag.severity_to_string d.severity)
              d.code
              (Core.Diag.where_to_string d)
              d.message;
            match d.severity with
            | Core.Diag.Error -> failed := true
            | Core.Diag.Warning -> if strict then failed := true
            | Core.Diag.Info -> ())
          (Core.Lint.check prog))
      targets;
    if !failed then exit 2
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static lint pass (LINT-* catalog) over benchmarks or .dsm \
          files; exits 2 when any error-severity finding is reported.")
    Term.(const f $ targets_arg $ all_arg $ lint_strict_arg)

(* ------------------------------------------------------------------ *)
(* fuzz: the mass differential-fuzzing campaign (Fuzz.Campaign) behind
   a thin flag surface.  Exit codes: 0 campaign clean, 2 findings. *)

let fuzz_cmd =
  let count_arg =
    let doc = "Number of programs to generate and run through the battery." in
    Arg.(value & opt int 200 & info [ "count"; "n" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc =
      "Campaign seed: program $(i,i) is deterministic in (seed, $(i,i))."
    in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let jobs_arg =
    let doc = "Number of forked worker processes." in
    Arg.(value & opt int 4 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let deep_arg =
    let doc =
      "Every $(docv)-th program uses the deep 50-100-phase profile (0 \
       disables deep programs)."
    in
    Arg.(value & opt int 25 & info [ "deep-every" ] ~docv:"N" ~doc)
  in
  let det_arg =
    let doc =
      "Re-run the first $(docv) programs on a single worker and require \
       verdict-vector equality (the 1-vs-N determinism differential; 0 \
       disables)."
    in
    Arg.(value & opt int 8 & info [ "determinism-sample" ] ~docv:"N" ~doc)
  in
  let wall_arg =
    let doc =
      "Wall-clock cap in seconds, checked between scheduling chunks; 0 \
       means uncapped."
    in
    Arg.(value & opt float 0. & info [ "wall-cap" ] ~docv:"SECONDS" ~doc)
  in
  let out_arg =
    let doc = "Directory where shrunk reproducers (and .golden snapshots) land." in
    Arg.(
      value
      & opt string (Filename.concat "examples" "programs")
      & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let mutation_arg =
    let doc =
      "Self-test fault injection: skew every closed-form union \
       cardinality by +1 (Symbolic.Lattice.test_card_skew) in every \
       worker.  The enum-parity differential must catch it, so a clean \
       exit under this flag is itself a campaign failure."
    in
    Arg.(value & flag & info [ "inject-mutation" ] ~doc)
  in
  let no_shrink_arg =
    let doc = "Keep failing programs at full size (skip the shrinker)." in
    Arg.(value & flag & info [ "no-shrink" ] ~doc)
  in
  let f () count seed jobs deep_every det wall out mutation no_shrink =
    let cfg =
      {
        Fuzz.Campaign.count;
        seed;
        jobs;
        deep_every;
        determinism_sample = det;
        wall_cap = wall;
        out_dir = out;
        skew = (if mutation then 1 else 0);
        shrink = not no_shrink;
      }
    in
    let st = Fuzz.Campaign.run ~log:prerr_endline cfg in
    List.iter
      (fun (fd : Fuzz.Campaign.finding) ->
        Printf.printf "FINDING\t%s\t%d\t%s\t%s\t%s\n" fd.f_profile fd.f_index
          fd.f_check
          (Option.value fd.f_repro ~default:"-")
          fd.f_detail)
      st.s_findings;
    Printf.printf "fuzz: %d/%d programs, %d finding(s)%s\n" st.s_ran count
      (List.length st.s_findings)
      (if st.s_wall_capped then " (wall cap reached)" else "");
    if mutation && st.s_findings = [] then begin
      prerr_endline
        "fuzz: --inject-mutation produced no findings - the differential \
         battery failed to catch a known-bad descriptor algebra";
      exit 1
    end;
    if st.s_findings <> [] then exit 2
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Mass differential fuzzing: generate seeded random phase \
          pipelines, run each through the differential battery \
          (symbolic-vs-enumerated parity, race certifier vs dynamic \
          oracle, ILP vs chain solver, schedule parity, cold-vs-warm, \
          1-vs-N determinism) on a crash-isolated worker pool, and \
          shrink every mismatch to a minimal reproducer.")
    Term.(
      const f $ profile_term $ count_arg $ seed_arg $ jobs_arg $ deep_arg
      $ det_arg $ wall_arg $ out_arg $ mutation_arg $ no_shrink_arg)

let () =
  let info =
    Cmd.info "dsmloc" ~version:"1.0.0"
      ~doc:
        "Access-descriptor-based locality analysis for DSM multiprocessors \
         (Navarro, Asenjo, Zapata, Padua; ICPP'99)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; analyze_cmd; batch_cmd; lcg_cmd; solve_cmd; simulate_cmd; sweep_cmd; comm_cmd; dot_cmd; spmd_cmd; run_cmd; report_cmd; table1_cmd; stability_cmd; validate_cmd; file_cmd; lint_cmd; fuzz_cmd; serve_cmd; request_cmd ]))
