(* Tests for the SPMD code generator: structural properties of the
   emitted text against the plan and communication schedule. *)

open Symbolic

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let count_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i acc =
    if i + nn > nh then acc
    else if String.sub hay i nn = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  if nn = 0 then 0 else go 0 0

let generate name size h =
  let e = Codes.Registry.find name in
  let t = Core.Pipeline.run e.program ~env:(e.env_of_size size) ~h in
  (t, Codegen.Spmd.generate t.lcg t.plan t.machine)

let test_phase_subroutines () =
  Probe.with_seed 90 (fun () ->
      let t, code = generate "tfft2" 3 4 in
      (* one subroutine per phase, in order *)
      List.iter
        (fun (ph : Ir.Types.phase) ->
          Alcotest.(check bool)
            ("subroutine for " ^ ph.phase_name)
            true
            (contains code ("subroutine phase_" ^ ph.phase_name ^ "(me)")))
        t.prog.phases;
      Alcotest.(check int) "eight subroutines" 8
        (count_substring code "end subroutine"))

let test_comm_calls_match_schedule () =
  Probe.with_seed 91 (fun () ->
      let t, code = generate "tfft2" 4 4 in
      let sched = Dsmsim.Comm.generate t.lcg t.plan in
      Alcotest.(check int) "redistribute calls"
        (List.length (Dsmsim.Comm.redistributions sched))
        (count_substring code "call redistribute_");
      Alcotest.(check int) "frontier calls"
        (List.length (Dsmsim.Comm.frontiers sched))
        (count_substring code "call frontier_update_"))

let test_cyclic_sweep_and_privatized () =
  Probe.with_seed 92 (fun () ->
      let t, code = generate "tfft2" 3 4 in
      (* the F8 chunk (2Q * p7) appears in its CYCLIC comment *)
      let p8 = t.plan.chunk.(7) in
      Alcotest.(check bool) "F8 cyclic chunk" true
        (contains code (Printf.sprintf "CYCLIC(%d) chunks of mine" p8));
      (* the privatized workspace is called out *)
      Alcotest.(check bool) "privatization note" true
        (contains code "Y privatized"))

let test_layout_annotations () =
  Probe.with_seed 93 (fun () ->
      let _, code = generate "jacobi2d" 4 4 in
      Alcotest.(check bool) "halo annotated" true
        (contains code "ghost zone");
      let _, code2 = generate "adi" 4 4 in
      (* two layouts for U: the column epoch and the row epoch *)
      Alcotest.(check bool) "adi redistributes" true
        (contains code2 "call redistribute_U"))

let () =
  Alcotest.run "codegen"
    [
      ( "spmd",
        [
          Alcotest.test_case "phase subroutines" `Quick test_phase_subroutines;
          Alcotest.test_case "comm calls = schedule" `Quick
            test_comm_calls_match_schedule;
          Alcotest.test_case "cyclic + privatized" `Quick
            test_cyclic_sweep_and_privatized;
          Alcotest.test_case "layout annotations" `Quick test_layout_annotations;
        ] );
    ]
