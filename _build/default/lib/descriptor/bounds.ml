open Symbolic

let fold_extreme ~keep_left exprs =
  match exprs with
  | [] -> None
  | e :: rest ->
      List.fold_left
        (fun acc x ->
          Option.bind acc (fun a ->
              if keep_left a x then Some a
              else if keep_left x a then Some x
              else None))
        (Some e) rest

let lower_limit asm (id : Id.t) ~i =
  Id.all_rows id
  |> List.map (fun r -> Id.offset_at r ~i)
  |> fold_extreme ~keep_left:(fun a x -> Probe.le asm a x)

let upper_limit asm (id : Id.t) ~i =
  Id.all_rows id
  |> List.map (fun r -> Id.upper_at r ~i)
  |> fold_extreme ~keep_left:(fun a x -> Probe.le asm x a)

let upper_limit_chunk asm id ~i ~p =
  let last = Expr.sub (Expr.add i p) Expr.one in
  match (upper_limit asm id ~i, upper_limit asm id ~i:last) with
  | Some a, Some b ->
      if Probe.le asm a b then Some b
      else if Probe.le asm b a then Some a
      else None
  | _ -> None

let memory_gap (id : Id.t) =
  let asm = id.ctx.assume in
  match id.ctx.par with
  | None -> None
  | Some _ -> (
      match (lower_limit asm id ~i:Expr.one, upper_limit asm id ~i:Expr.zero) with
      | Some lb1, Some ul0 -> (
          let raw = Expr.sub (Expr.sub lb1 ul0) Expr.one in
          match Probe.sign asm raw with
          | Some s when s >= 0 -> Some raw
          | Some _ -> Some Expr.zero
          | None -> None)
      | _ -> None)
