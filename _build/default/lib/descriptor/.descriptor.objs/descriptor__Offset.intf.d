lib/descriptor/offset.mli: Expr Pd Symbolic
