(* dsmloc: command-line front end for the locality analysis pipeline.

     dsmloc list
     dsmloc analyze  <code> [--size N] [--procs H]
     dsmloc lcg      <code> [--size N] [--procs H]
     dsmloc solve    <code> [--size N] [--procs H]
     dsmloc simulate <code> [--size N] [--procs H] [--baseline]
     dsmloc sweep    <code> [--size N]
     dsmloc file     <path.dsm> [--procs H] [--env K=V,K=V]
*)

open Cmdliner

let code_arg =
  let doc =
    Printf.sprintf "Benchmark code to analyze (%s)."
      (String.concat ", " Codes.Registry.names)
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CODE" ~doc)

let size_arg =
  let doc = "Problem-size knob (code-specific exponent)." in
  Arg.(value & opt (some int) None & info [ "size"; "s" ] ~docv:"N" ~doc)

let procs_arg =
  let doc = "Number of processors H." in
  Arg.(value & opt int 4 & info [ "procs"; "H" ] ~docv:"H" ~doc)

let baseline_arg =
  let doc = "Use the naive BLOCK / owner-computes baseline plan." in
  Arg.(value & flag & info [ "baseline" ] ~doc)

let with_entry name size f =
  match Codes.Registry.find name with
  | entry ->
      let size = Option.value size ~default:entry.default_size in
      f entry (entry.env_of_size size)
  | exception Not_found ->
      Printf.eprintf "unknown code %S; try: %s\n" name
        (String.concat ", " Codes.Registry.names);
      exit 1

let run_pipeline entry env h =
  Core.Pipeline.run entry.Codes.Registry.program ~env ~h

let list_cmd =
  let f () =
    List.iter
      (fun (e : Codes.Registry.entry) ->
        Printf.printf "%-10s (default size %d): %d phases, arrays %s\n" e.name
          e.default_size
          (List.length e.program.phases)
          (String.concat ", "
             (List.map
                (fun (a : Ir.Types.array_decl) -> a.name)
                e.program.arrays)))
      Codes.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available benchmark codes.")
    Term.(const f $ const ())

let analyze_cmd =
  let f name size h =
    with_entry name size (fun entry env ->
        let t = run_pipeline entry env h in
        Format.printf "%a@." Core.Pipeline.report t)
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Full pipeline report: LCG, model, solution, plan.")
    Term.(const f $ code_arg $ size_arg $ procs_arg)

let lcg_cmd =
  let f name size h =
    with_entry name size (fun entry env ->
        let lcg = Locality.Lcg.build entry.program ~env ~h in
        Format.printf "%a@." Locality.Lcg.pp lcg)
  in
  Cmd.v (Cmd.info "lcg" ~doc:"Print the Locality-Communication Graph.")
    Term.(const f $ code_arg $ size_arg $ procs_arg)

let solve_cmd =
  let f name size h =
    with_entry name size (fun entry env ->
        let t = run_pipeline entry env h in
        Format.printf "%a@.@." Ilp.Model.pp t.model;
        Format.printf "objective %.1f (D %.1f + C %.1f)@." t.solution.objective
          t.solution.d_cost t.solution.c_cost;
        Format.printf "%a@." Ilp.Distribution.pp t.plan)
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Print the Table-2 constraint model and the solved distribution.")
    Term.(const f $ code_arg $ size_arg $ procs_arg)

let simulate_cmd =
  let f name size h baseline =
    with_entry name size (fun entry env ->
        let t = run_pipeline entry env h in
        let r =
          if baseline then Core.Pipeline.simulate_baseline t
          else Core.Pipeline.simulate t
        in
        Format.printf "%a@." Dsmsim.Exec.pp r)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Replay the code on the DSM machine model.")
    Term.(const f $ code_arg $ size_arg $ procs_arg $ baseline_arg)

let sweep_cmd =
  let f name size =
    with_entry name size (fun entry env ->
        Printf.printf "%4s %12s %12s\n" "H" "LCG eff" "BLOCK eff";
        List.iter
          (fun h ->
            let t = run_pipeline entry env h in
            let eff, base = Core.Pipeline.efficiency t in
            Printf.printf "%4d %11.1f%% %11.1f%%\n%!" h (100. *. eff)
              (100. *. base))
          [ 1; 2; 4; 8; 16; 32; 64 ])
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Efficiency sweep over processor counts.")
    Term.(const f $ code_arg $ size_arg)

let table1_cmd =
  let f () = Format.printf "%a" Locality.Table1.pp_grid () in
  Cmd.v
    (Cmd.info "table1" ~doc:"Print the paper's Table 1 edge classification.")
    Term.(const f $ const ())

let stability_cmd =
  let f name =
    with_entry name None (fun entry _env ->
        let t = Locality.Stability.analyze entry.program in
        Format.printf "@[<v>%a@]@." Locality.Stability.pp t;
        Format.printf "all edges stable: %b@." (Locality.Stability.all_stable t))
  in
  Cmd.v
    (Cmd.info "stability"
       ~doc:"LCG label stability across sampled sizes and machine widths.")
    Term.(const f $ code_arg)

let validate_cmd =
  let f name size h =
    with_entry name size (fun entry env ->
        let t = run_pipeline entry env h in
        let rounds = if entry.program.repeats then 2 else 1 in
        let r = Dsmsim.Validate.run ~rounds t.lcg t.plan in
        Format.printf "%a@." Dsmsim.Validate.pp r;
        if not (Dsmsim.Validate.ok r) then exit 1)
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Replay with versioned memory: certify every read is fresh.")
    Term.(const f $ code_arg $ size_arg $ procs_arg)

let report_cmd =
  let f name size h =
    with_entry name size (fun entry env ->
        let t = run_pipeline entry env h in
        print_string (Core.Report.markdown t))
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Full markdown analysis report.")
    Term.(const f $ code_arg $ size_arg $ procs_arg)

let spmd_cmd =
  let f name size h =
    with_entry name size (fun entry env ->
        let t = run_pipeline entry env h in
        print_string (Codegen.Spmd.generate t.lcg t.plan t.machine))
  in
  Cmd.v
    (Cmd.info "spmd" ~doc:"Emit the SPMD pseudo-code the plan implies.")
    Term.(const f $ code_arg $ size_arg $ procs_arg)

let dot_cmd =
  let f name size h =
    with_entry name size (fun entry env ->
        let lcg = Locality.Lcg.build entry.program ~env ~h in
        print_string (Locality.Lcg.to_dot lcg))
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit the LCG as Graphviz (pipe into `dot -Tsvg`).")
    Term.(const f $ code_arg $ size_arg $ procs_arg)

let comm_cmd =
  let f name size h =
    with_entry name size (fun entry env ->
        let t = run_pipeline entry env h in
        let sched = Dsmsim.Comm.generate t.lcg t.plan in
        Format.printf "%a@." Dsmsim.Comm.pp sched;
        Format.printf
          "total: %d messages, %d words (%d redistribution events, %d frontier events)@."
          (Dsmsim.Comm.message_count sched)
          (Dsmsim.Comm.total_words sched)
          (List.length (Dsmsim.Comm.redistributions sched))
          (List.length (Dsmsim.Comm.frontiers sched)))
  in
  Cmd.v
    (Cmd.info "comm"
       ~doc:"Print the generated single-sided communication schedule.")
    Term.(const f $ code_arg $ size_arg $ procs_arg)

let file_cmd =
  let path_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Surface-language program (.dsm; see lib/frontend/parse.mli).")
  in
  let env_arg =
    let doc = "Comma-separated parameter bindings, e.g. N=32,M=16." in
    Arg.(value & opt string "" & info [ "env"; "e" ] ~docv:"BINDINGS" ~doc)
  in
  let autopar_arg =
    let doc =
      "Ignore doall markings and derive parallel loops automatically."
    in
    Arg.(value & flag & info [ "autopar" ] ~doc)
  in
  let f path h bindings autopar =
    match Frontend.Parse.program_file path with
    | exception Frontend.Parse.Error { line; message } ->
        Printf.eprintf "%s:%d: %s\n" path line message;
        exit 1
    | prog ->
        let prog =
          if autopar then
            Ir.Autopar.mark (Ir.Autopar.recognize_reductions prog)
          else prog
        in
        let env =
          if bindings = "" then
            (* default: midpoint of each declared parameter range *)
            List.fold_left
              (fun env (v, d) ->
                match d with
                | Symbolic.Assume.Int_range (lo, hi) ->
                    Symbolic.Env.add v ((lo + hi) / 2) env
                | Symbolic.Assume.Pow2_of w ->
                    Symbolic.Env.add v (1 lsl Symbolic.Env.find env w) env
                | Symbolic.Assume.Expr_range _ -> env)
              Symbolic.Env.empty
              (Symbolic.Assume.to_list prog.params)
          else
            String.split_on_char ',' bindings
            |> List.fold_left
                 (fun env kv ->
                   match String.split_on_char '=' kv with
                   | [ k; v ] -> Symbolic.Env.add k (int_of_string v) env
                   | _ ->
                       Printf.eprintf "bad binding %S\n" kv;
                       exit 1)
                 Symbolic.Env.empty
        in
        let t = Core.Pipeline.run prog ~env ~h in
        Format.printf "%a@.@." Core.Pipeline.report t;
        let eff, base = Core.Pipeline.efficiency t in
        Format.printf "Simulated efficiency: %.1f%% (LCG) vs %.1f%% (BLOCK)@."
          (100. *. eff) (100. *. base)
  in
  Cmd.v
    (Cmd.info "file"
       ~doc:"Parse a surface-language program and run the full pipeline on it.")
    Term.(const f $ path_arg $ procs_arg $ env_arg $ autopar_arg)

let () =
  let info =
    Cmd.info "dsmloc" ~version:"1.0.0"
      ~doc:
        "Access-descriptor-based locality analysis for DSM multiprocessors \
         (Navarro, Asenjo, Zapata, Padua; ICPP'99)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; analyze_cmd; lcg_cmd; solve_cmd; simulate_cmd; sweep_cmd; comm_cmd; dot_cmd; spmd_cmd; report_cmd; table1_cmd; stability_cmd; validate_cmd; file_cmd ]))
