(** Discrete DSM machine simulator (the Cray T3D stand-in).

    Replays a program's memory traffic phase by phase under an
    iteration/data distribution plan, charging [t_local] or [t_remote]
    cycles per access against the owning processor's clock, plus
    aggregated single-sided [put] redistribution traffic whenever an
    array's layout epoch changes between phases.  Parallel time is the
    max over processor clocks; efficiency is measured against the same
    program replayed sequentially with every access local. *)

open Locality

type phase_stats = Machine.phase_stats = {
  name : string;
  local : int;  (** local accesses *)
  remote : int;
  compute : int;  (** work cycles *)
  time : float;  (** parallel time of this phase (max over processors) *)
}

type comm_kind = Machine.comm_kind = Redistribution | Frontier_update

type comm_stats = Machine.comm_stats = {
  array : string;
  kind : comm_kind;
  before_phase : int;
      (** redistribution: fires before this phase; frontier update:
          fires after phase [before_phase - 1] *)
  words : int;  (** words moved *)
  time : float;
}

type proc_stats = Machine.proc_stats = {
  compute_time : float;
  access_time : float;  (** local + remote access cycles *)
}

type run = Machine.run = {
  h : int;
  phases : phase_stats list;
  comms : comm_stats list;
  par_time : float;  (** sum of phase maxima + communication + retries *)
  seq_time : float;  (** one processor, all local *)
  efficiency : float;  (** seq / (h * par) *)
  total_local : int;
  total_remote : int;
  per_proc : proc_stats array;  (** work distribution across processors *)
  retry_time : float;
      (** exponential-backoff cycles spent resending faulted messages
          (0 when fault injection is off) *)
  fault_stats : Fault.stats option;  (** present when [faults] was given *)
}

val run :
  ?rounds:int ->
  ?on_error:(string -> unit) ->
  ?faults:Fault.spec ->
  ?retries:int ->
  Lcg.t ->
  Ilp.Distribution.plan ->
  Ilp.Cost.machine ->
  run
(** [rounds] (default 1) replays the whole phase sequence that many
    times - the steady state of a repeating (timestep) program,
    including the wrap-around layout boundary between the last and
    first phases.  [on_error] receives schedule-generation diagnostics
    (see {!Comm.generate}); [faults] perturbs the delivered schedule
    with {!Fault.apply} under a [retries]-bounded resend budget whose
    backoff cost is charged to [par_time] and reported in
    [retry_time]. *)

val pp : Format.formatter -> run -> unit

val proc_of_iteration : chunk:int -> h:int -> int -> int
(** CYCLIC(p): iteration [i] runs on [(i / p) mod h]. *)

val seq_env_run : Lcg.t -> Ilp.Cost.machine -> float
(** Sequential reference time (exported for cross-checks). *)

