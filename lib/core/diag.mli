(** Structured diagnostics for the analysis pipeline.

    Every recoverable failure inside {!Pipeline.run} (and the simulator
    entry points it drives) is recorded here instead of crashing the
    run: a diagnostic carries the severity, the pipeline stage that hit
    the problem, a stable machine-readable code, and a human-readable
    message.  The collector accumulates diagnostics across stages so a
    single run can report everything it degraded on; an optional
    [max_errors] cap aborts runs that degrade too much to be useful.

    Severities:
    - [Info]: bookkeeping (e.g. fault-injection summaries);
    - [Warning]: the analysis degraded conservatively but the result is
      still sound (whole-array descriptors, violated locality rows);
    - [Error]: a whole stage failed and was replaced by its documented
      fallback (see DESIGN.md, "Error handling & degradation ladder").

    Stable codes currently emitted:
    - [DESC-WHOLE-ARRAY]: a reference degraded to the conservative
      whole-array descriptor (its phase's edges are forced to C);
    - [LCG-FAIL], [MODEL-FAIL], [SOLVE-FAIL], [PLAN-FAIL]: stage-level
      degradation to the documented fallback;
    - [SOLVE-BROKEN]: the solver kept a plan that violates locality
      rows (they are priced as communication instead);
    - [SOLVE-BUDGET]: the solver's search budget ran out before the
      enumeration finished; the incumbent solution may be sub-optimal,
      so the run falls back to the BLOCK baseline plan;
    - [POOL-WORKER-LOST]: a batch worker process died mid-job (signal
      or unclean exit); the job was retried on a freshly forked worker
      (or, past the retry budget, reported as permanently failed);
    - [POOL-PROFILE-BAD]: a batch worker's metrics profile did not
      parse; the job's value is kept and its profile degrades to an
      empty snapshot (warning severity);
    - [POOL-DEADLINE]: a worker sat on one job past the per-job
      deadline; it was SIGKILLed and replaced, and the job failed (in
      {!Pool.map}, through the ordinary retry path);
    - [POOL-BAD-FRAME]: a worker emitted a corrupt or over-cap marshal
      frame; it was killed and the job failed instead of the parent
      allocating an adversarial length;
    - [SERVE-BAD-FRAME]: a client connection sent a corrupt, oversized
      or undecodable wire frame; the request is answered with a
      structured error and the connection closed;
    - [SERVE-BAD-REQUEST]: a well-framed request document that does not
      parse (bad directive, empty program);
    - [SERVE-PARSE]: the program inside a request failed
      {!Frontend.Parse} (reported per-request, not fatal to the
      daemon);
    - [SERVE-OVERLOAD]: admission control shed a request because the
      queue was at capacity; the reply carries a retry-after hint;
    - [SERVE-DEADLINE]: a request exceeded its deadline (queued or in
      flight); a hung worker is killed and replaced;
    - [SERVE-WORKER-LOST]: the worker serving a request died and the
      retry budget was exhausted;
    - [SERVE-DRAIN]: the daemon shut down before the request finished
      (graceful-drain deadline overtook it);
    - [COMM-SIZE]: an array size would not evaluate while generating
      the communication schedule (the array's messages are omitted);
    - [FAULT-INJECTED], [FAULT-UNRECOVERED]: fault-injection summary /
      corruption that survived the bounded-retry budget;
    - [LINT-*]: the static lint catalog (see {!Lint.catalog} and
      DESIGN.md, "Static certification & lint catalog");
    - [RACE-ORACLE-MISMATCH]: the static race certifier and the dynamic
      sampling oracle contradicted each other on a loop - a soundness
      alarm, never silently resolved (emitted by {!Lint.autopar}).

    The optional [where] field pins a diagnostic to a program location:
    by convention ["<phase>/<loop var>"] for loop-level findings (e.g.
    ["SWEEP/j"]), ["<phase>"] for phase-level ones, or an array name
    for declaration-level ones. *)

type severity = Info | Warning | Error

type stage =
  | Frontend
  | Lint
  | Autopar
  | Descriptors
  | Lcg
  | Model
  | Solve
  | Plan
  | Comm
  | Exec
  | Validation
  | Pool  (** the batch driver's forked-worker pool (see {!Pool}) *)
  | Serve  (** the [dsmloc serve] daemon (see {!Server}) *)

type t = {
  severity : severity;
  stage : stage;
  where : string option;  (** source position: phase / loop / array *)
  code : string;  (** stable machine-readable code, e.g. [DESC-WHOLE-ARRAY] *)
  message : string;
}

exception Too_many_errors of int
(** Raised by {!add} when the collector's [max_errors] cap is hit; the
    payload is the cap. *)

type collector

val collector : ?max_errors:int -> unit -> collector
(** A fresh accumulating collector.  [max_errors] bounds the number of
    [Error]-severity diagnostics accepted before {!add} raises
    {!Too_many_errors} (unbounded by default). *)

val add :
  collector ->
  severity:severity ->
  stage:stage ->
  ?where:string ->
  code:string ->
  string ->
  unit

val addf :
  collector ->
  severity:severity ->
  stage:stage ->
  ?where:string ->
  code:string ->
  ('a, unit, string, unit) format4 ->
  'a
(** [Printf]-style variant of {!add}. *)

val to_list : collector -> t list
(** Diagnostics in the order they were recorded. *)

val count : collector -> int
val errors : collector -> int
(** Number of [Error]-severity diagnostics recorded so far. *)

val has_errors : collector -> bool
val max_severity : collector -> severity option
(** [None] when empty. *)

val severity_to_string : severity -> string
val stage_to_string : stage -> string

val where_to_string : t -> string
(** The [where] field, or ["-"] when absent. *)

val pp : Format.formatter -> t -> unit
val pp_table : Format.formatter -> t list -> unit
(** Aligned table, one diagnostic per row; prints nothing when empty. *)
