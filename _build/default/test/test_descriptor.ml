(* Tests for the descriptor algebra: ARDs (Fig. 2), PD simplification
   (Fig. 3), iteration descriptors and regions (Fig. 4), storage
   symmetry (Fig. 5), upper limits and memory gap (Fig. 8) - plus
   property tests validating every operation against the IR enumeration
   oracle. *)

open Symbolic
open Ir
open Descriptor

let expr = Alcotest.testable Expr.pp Expr.equal
let v = Expr.var
let i = Expr.int
let ( + ) = Expr.add
let ( - ) = Expr.sub
let ( * ) = Expr.mul
let ( / ) = Expr.div
let p2 = Expr.pow2

let fig1 = Codes.Tfft2.fig1_program
let f3_ctx = Phase.analyze fig1 (List.hd fig1.phases)
let asm = f3_ctx.assume
let peq msg a b = Alcotest.(check bool) msg true (Probe.equal asm a b)

(* ------------------------------------------------------------------ *)
(* Fig. 2: the ARDs of the two X reads in F3 *)

let test_fig2_ards () =
  Probe.with_seed 7 (fun () ->
      let sites = Phase.sites_of_array f3_ctx "X" in
      Alcotest.(check int) "three refs (2 reads + 1 write)" 3 (List.length sites);
      let a1 = Ard.of_site f3_ctx (List.nth sites 0) in
      let a2 = Ard.of_site f3_ctx (List.nth sites 1) in
      Alcotest.(check bool) "exact" true (a1.exact && a2.exact);
      (* The paper's alpha = (Q, (P-2)*2^-L + 1, P*2^-L, 2^(L-1)) with
         L in 1..p; after loop normalization L runs 0..p-1, so every L
         below is the paper's L-1. *)
      let expected_alphas =
        [
          v "Q";
          ((v "P" - i 2) * p2 (i (-1) - v "L")) + i 1;
          v "P" * p2 (i (-1) - v "L");
          p2 (v "L");
        ]
      in
      List.iteri
        (fun k (d : Ard.dim) ->
          peq (Printf.sprintf "alpha_%d" k) (List.nth expected_alphas k) d.alpha)
        a1.dims;
      (* delta = (2P, J*2^(L-1), 2^(L-1), 1) in paper terms = with
         normalized L: (2P, J*2^L, 2^L, 1) *)
      let expected_strides =
        [ i 2 * v "P"; v "J" * p2 (v "L"); p2 (v "L"); i 1 ]
      in
      List.iteri
        (fun k (d : Ard.dim) ->
          peq (Printf.sprintf "delta_%d" k) (List.nth expected_strides k) d.stride)
        a1.dims;
      (* signs all +1, offsets 0 and P/2 *)
      List.iter (fun (d : Ard.dim) -> Alcotest.(check int) "sign" 1 d.sign) a1.dims;
      Alcotest.(check expr) "tau_1" Expr.zero a1.offset;
      peq "tau_2 = P/2" (v "P" / i 2) a2.offset;
      (* the L dim is flagged non-uniform (stride depends on L itself) *)
      let dl = List.nth a1.dims 1 in
      Alcotest.(check bool) "L dim non-uniform" false dl.uniform)

(* ------------------------------------------------------------------ *)
(* Fig. 3: coalescing chain (a) -> (c), union -> (d) *)

let x_pd_raw () = Pd.of_phase f3_ctx ~array:"X"
let x_pd_coalesced () = Coalesce.pd (x_pd_raw ())
let x_pd_final () = Unionize.simplify (x_pd_raw ())

let test_fig3_coalesce () =
  Probe.with_seed 8 (fun () ->
      let pd = x_pd_coalesced () in
      Alcotest.(check int) "one group" 1 (List.length pd.groups);
      let g = List.hd pd.groups in
      Alcotest.(check int) "two dims survive" 2 (List.length g.dims);
      Alcotest.(check (option int)) "par dim is first" (Some 0) g.par;
      peq "par stride 2P" (i 2 * v "P") (List.nth g.dims 0).stride;
      peq "seq stride 1" (i 1) (List.nth g.dims 1).stride;
      (* rows: alphas (Q, P/2); coalescing alone keeps all three
         reference rows (R at 0, R at P/2, W at 0) - deduplication is
         the union's job *)
      Alcotest.(check int) "three rows" 3 (List.length g.rows);
      List.iter
        (fun (r : Pd.row) ->
          peq "alpha par = Q" (v "Q") (List.nth r.alphas 0);
          peq "alpha seq = P/2" (v "P" / i 2) (List.nth r.alphas 1))
        g.rows)

let test_fig3_union () =
  Probe.with_seed 9 (fun () ->
      let pd = x_pd_final () in
      let g = List.hd pd.groups in
      Alcotest.(check int) "single row after union" 1 (List.length g.rows);
      let r = List.hd g.rows in
      peq "alpha par = Q" (v "Q") (List.nth r.alphas 0);
      peq "alpha seq = P" (v "P") (List.nth r.alphas 1);
      Alcotest.(check expr) "tau = 0" Expr.zero r.offset;
      Alcotest.(check bool) "mix RW" true
        (r.mix.Access_mix.reads && r.mix.Access_mix.writes))

(* ------------------------------------------------------------------ *)
(* Fig. 4: ID regions for P=4, Q=3 *)

let test_fig4_ids () =
  Probe.with_seed 10 (fun () ->
      let id = Id.of_pd (x_pd_final ()) in
      let env = Env.of_list [ ("p", 2); ("P", 4); ("q", 0); ("Q", 3) ] in
      let region par =
        Region.sorted
          (Region.addresses env
             { (x_pd_final ()) with groups = (x_pd_final ()).groups }
             ~par)
      in
      Alcotest.(check (list int)) "I(X,0)" [ 0; 1; 2; 3 ] (region (Some 0));
      Alcotest.(check (list int)) "I(X,1)" [ 8; 9; 10; 11 ] (region (Some 1));
      Alcotest.(check (list int)) "I(X,2)" [ 16; 17; 18; 19 ] (region (Some 2));
      Alcotest.(check bool) "rectangular" true (Id.rectangular id))

(* ------------------------------------------------------------------ *)
(* Fig. 8: upper limits UL = 3, 11, 19 and memory gap h = 4 *)

let test_fig8_bounds () =
  Probe.with_seed 11 (fun () ->
      let id = Id.of_pd (x_pd_final ()) in
      let env = Env.of_list [ ("p", 2); ("P", 4); ("q", 0); ("Q", 3) ] in
      let ul k =
        match Bounds.upper_limit asm id ~i:(Expr.int k) with
        | Some e -> Env.eval env e
        | None -> Alcotest.fail "no UL"
      in
      Alcotest.(check int) "UL(I(X,0))" 3 (ul 0);
      Alcotest.(check int) "UL(I(X,1))" 11 (ul 1);
      Alcotest.(check int) "UL(I(X,2))" 19 (ul 2);
      (match Bounds.memory_gap id with
      | Some h ->
          peq "h = P symbolically" (v "P") h;
          Alcotest.(check int) "h = 4 at P=4" 4 (Env.eval env h)
      | None -> Alcotest.fail "no gap");
      (* chunked UL: UL(I, 0, p) = 2P(p-1) + P - 1 *)
      let asm' = Assume.add asm "pk" (Assume.Int_range (1, 8)) in
      match Bounds.upper_limit_chunk asm' id ~i:Expr.zero ~p:(v "pk") with
      | Some e ->
          Alcotest.(check bool) "UL chunk" true
            (Probe.equal asm' e
               ((i 2 * v "P" * (v "pk" - i 1)) + v "P" - i 1))
      | None -> Alcotest.fail "no chunk UL")

(* ------------------------------------------------------------------ *)
(* Fig. 5: the three storage symmetries with the paper's distances *)

let sym_params = Assume.of_list [ ("N", Assume.Int_range (40, 80)) ]

let sym_program phases =
  Build.program ~name:"sym" ~params:sym_params
    ~arrays:[ Build.array "A" [ i 200 ] ]
    phases

let id_of prog name array =
  let ph = List.find (fun (ph : Types.phase) -> ph.phase_name = name) prog.Types.phases in
  let ctx = Phase.analyze prog ph in
  Id.of_pd (Unionize.simplify (Pd.of_phase ctx ~array))

let test_fig5_shifted () =
  Probe.with_seed 12 (fun () ->
      (* (a) shifted storage, Delta_d = 17 *)
      let prog =
        sym_program
          [
            Build.(
              phase "S"
                (doall "i" ~lo:(int 0) ~hi:(var "N" - int 1)
                   [ assign [ read "A" [ var "i" ]; read "A" [ var "i" + int 17 ] ] ]));
          ]
      in
      let id = id_of prog "S" "A" in
      let sym = Symmetry.analyze id in
      Alcotest.(check int) "one shifted pair" 1 (List.length sym.shifted);
      Alcotest.(check expr) "Delta_d = 17" (i 17) (List.hd sym.shifted);
      Alcotest.(check int) "no reverse" 0 (List.length sym.reverse))

let test_fig5_reverse () =
  Probe.with_seed 13 (fun () ->
      (* (b) reverse storage, Delta_r = 27: A(i) up, A(26 - i) down -
         the inclusive span [0..26] has 27 elements *)
      let prog =
        sym_program
          [
            Build.(
              phase "R"
                (doall "i" ~lo:(int 0) ~hi:(int 13)
                   [ assign [ read "A" [ var "i" ]; read "A" [ int 26 - var "i" ] ] ]));
          ]
      in
      let id = id_of prog "R" "A" in
      let sym = Symmetry.analyze id in
      Alcotest.(check int) "one reverse pair" 1 (List.length sym.reverse);
      Alcotest.(check expr) "Delta_r = 27" (i 27) (List.hd sym.reverse);
      Alcotest.(check int) "no shifted" 0 (List.length sym.shifted))

let test_fig5_overlap () =
  Probe.with_seed 14 (fun () ->
      (* (c) overlapping storage, Delta_s = 5: regions [3i .. 3i+7] *)
      let prog =
        sym_program
          [
            Build.(
              phase "O"
                (doall "i" ~lo:(int 0) ~hi:(var "N" - int 1)
                   [
                     do_ "j" ~lo:(int 0) ~hi:(int 7)
                       [ assign [ read "A" [ (int 3 * var "i") + var "j" ] ] ];
                   ]));
          ]
      in
      let id = id_of prog "O" "A" in
      let sym = Symmetry.analyze id in
      (match sym.overlap with
      | Symmetry.Overlap d -> Alcotest.(check expr) "Delta_s = 5" (i 5) d
      | Symmetry.No_overlap | Symmetry.Overlap_unknown ->
          Alcotest.fail "expected closed-form overlap");
      Alcotest.(check bool) "has_overlap" true (Symmetry.has_overlap id))

let test_no_overlap_dense () =
  Probe.with_seed 15 (fun () ->
      let id = Id.of_pd (x_pd_final ()) in
      Alcotest.(check bool) "tfft2 F3 has no overlap" false (Symmetry.has_overlap id))

(* ------------------------------------------------------------------ *)
(* F8 symmetry: Delta_d = PQ; Delta_r = PQ-1 and 2PQ-1 *)

let test_f8_symmetry () =
  Probe.with_seed 16 (fun () ->
      let prog = Codes.Tfft2.program in
      let id = id_of prog "F8" "X" in
      let sym = Symmetry.analyze id in
      let pq = v "P" * v "Q" in
      Alcotest.(check int) "one distinct Delta_d" 1 (List.length sym.shifted);
      peq "Delta_d = PQ" pq (List.hd sym.shifted);
      Alcotest.(check int) "two distinct Delta_r" 2 (List.length sym.reverse);
      let sorted_r = sym.reverse in
      Alcotest.(check bool) "Delta_r = {PQ, 2PQ}" true
        (List.exists (fun d -> Probe.equal asm d pq) sorted_r
        && List.exists (fun d -> Probe.equal asm d (i 2 * pq)) sorted_r))

(* ------------------------------------------------------------------ *)
(* F2 (TRANSA): interleaved column write merges to alpha=(P, 2Q),
   stride (1; P) - Eq. 4's LHS shape *)

let test_f2_columns () =
  Probe.with_seed 17 (fun () ->
      let prog = Codes.Tfft2.program in
      let ph = List.nth prog.phases 1 in
      let ctx = Phase.analyze prog ph in
      let pd = Unionize.simplify (Pd.of_phase ctx ~array:"X") in
      let g = List.hd pd.groups in
      Alcotest.(check int) "one group" 1 (List.length pd.groups);
      Alcotest.(check int) "one row" 1 (List.length g.rows);
      let r = List.hd g.rows in
      peq "par stride 1" (i 1)
        (match Pd.par_stride g with Some s -> s | None -> Expr.zero);
      let seq = Pd.seq_dims g in
      Alcotest.(check int) "one seq dim" 1 (List.length seq);
      let _, d = List.hd seq in
      peq "seq stride P" (v "P") d.stride;
      peq "seq count 2Q" (i 2 * v "Q")
        (List.nth r.alphas (fst (List.hd seq)));
      Alcotest.(check expr) "tau 0" Expr.zero r.offset)

(* F3-with-workspace: the Y read region is contained in the written
   region and disappears; one dense RW row of width 2P remains. *)
let test_f3_workspace_containment () =
  Probe.with_seed 18 (fun () ->
      let prog = Codes.Tfft2.program in
      let ph = List.nth prog.phases 2 in
      let ctx = Phase.analyze prog ph in
      let pd = Unionize.simplify (Pd.of_phase ctx ~array:"Y") in
      let rows = List.concat_map (fun (g : Pd.group) -> g.rows) pd.groups in
      Alcotest.(check int) "single row" 1 (List.length rows);
      let r = List.hd rows in
      Alcotest.(check bool) "RW" true (r.mix.reads && r.mix.writes))

(* ------------------------------------------------------------------ *)
(* Offset adjustment *)

let test_offset_adjust () =
  Probe.with_seed 19 (fun () ->
      let prog =
        sym_program
          [
            Build.(
              phase "A1"
                (doall "i" ~lo:(int 0) ~hi:(int 9)
                   [ assign [ read "A" [ (int 4 * var "i") + int 12 ] ] ]));
            Build.(
              phase "A2"
                (doall "i" ~lo:(int 0) ~hi:(int 9)
                   [ assign [ read "A" [ int 4 * var "i" ] ] ]));
          ]
      in
      let pd_of name =
        let ph = List.find (fun (ph : Types.phase) -> ph.phase_name = name) prog.phases in
        Unionize.simplify (Pd.of_phase (Phase.analyze prog ph) ~array:"A")
      in
      let pd1 = pd_of "A1" and pd2 = pd_of "A2" in
      (match Offset.tau_min [ pd1; pd2 ] with
      | Some t -> Alcotest.(check expr) "tau_min 0" Expr.zero t
      | None -> Alcotest.fail "no tau_min");
      match Offset.adjust_distance pd1 ~tau_min:Expr.zero with
      | Some r -> Alcotest.(check expr) "R = floor(12/4) = 3" (i 3) r
      | None -> Alcotest.fail "no adjust distance")

(* ------------------------------------------------------------------ *)
(* Property: descriptor region = oracle region, for random affine nests *)

let gen_program =
  let open QCheck.Gen in
  let* depth = int_range 1 3 in
  let* bounds = list_repeat depth (int_range 2 5) in
  let* coeffs = list_repeat depth (int_range 0 7) in
  let* offset = int_range 0 10 in
  let* second_ref = bool in
  let* shift = int_range 0 9 in
  let vars = List.mapi (fun k _ -> Printf.sprintf "v%d" k) bounds in
  let subscript extra =
    List.fold_left2
      (fun acc v c -> acc + (i c * Expr.var v))
      (i (Stdlib.( + ) offset extra))
      vars coeffs
  in
  let refs =
    if second_ref then [ Build.read "A" [ subscript 0 ]; Build.read "A" [ subscript shift ] ]
    else [ Build.read "A" [ subscript 0 ] ]
  in
  let body = [ Build.assign refs ] in
  let nest =
    List.fold_right2
      (fun vn b inner ->
        [ Build.do_ vn ~lo:(i 0) ~hi:(i (Stdlib.( - ) b 1)) inner ])
      (List.tl vars) (List.tl bounds) body
  in
  let outer =
    Build.doall (List.hd vars) ~lo:(i 0) ~hi:(i (Stdlib.( - ) (List.hd bounds) 1)) nest
  in
  let ph = Build.phase "G" outer in
  return
    (Build.program ~name:"gen" ~params:Assume.empty
       ~arrays:[ Build.array "A" [ i 2000 ] ]
       [ ph ])

let arb_program = QCheck.make gen_program ~print:(fun p ->
    Format.asprintf "%a" Types.pp_program p)

let oracle_equal prog ~par =
  let ph = List.hd prog.Types.phases in
  let ctx = Phase.analyze prog ph in
  let pd = Unionize.simplify (Pd.of_phase ctx ~array:"A") in
  let env = Env.empty in
  let descriptor_region =
    try Some (Region.sorted (Region.addresses env pd ~par))
    with Region.Not_rectangular _ -> None
  in
  match descriptor_region with
  | None -> false (* affine constant nests must stay rectangular *)
  | Some got ->
      let expected =
        match par with
        | None ->
            Enumerate.address_set prog env ph ~array:"A"
            |> Region.sorted
        | Some k ->
            Enumerate.iteration_addresses prog env ph ~array:"A" ~par:k
            |> List.map fst |> List.sort_uniq compare
      in
      got = expected

let prop_region_whole =
  QCheck.Test.make ~name:"descriptor region = oracle (whole phase)" ~count:150
    arb_program (fun prog -> oracle_equal prog ~par:None)

let prop_region_iteration =
  QCheck.Test.make ~name:"descriptor region = oracle (iteration 0 and 1)" ~count:150
    arb_program (fun prog ->
      oracle_equal prog ~par:(Some 0) && oracle_equal prog ~par:(Some 1))

(* The TFFT2 F3 phase itself, at several concrete sizes: the coalesced
   + unioned descriptor expands to exactly the enumerated set. *)
let test_tfft2_region_oracle () =
  Probe.with_seed 20 (fun () ->
      let pd = x_pd_final () in
      List.iter
        (fun (p, q) ->
          let env = Codes.Tfft2.env ~p ~q in
          let got = Region.sorted (Region.addresses env pd ~par:None) in
          let expected =
            Region.sorted
              (Enumerate.address_set fig1 env (List.hd fig1.phases) ~array:"X")
          in
          Alcotest.(check (list int))
            (Printf.sprintf "whole region p=%d q=%d" p q)
            expected got;
          (* and per iteration *)
          for it = 0 to Stdlib.( - ) (1 lsl q) 1 do
            let got = Region.sorted (Region.addresses env pd ~par:(Some it)) in
            let expected =
              Enumerate.iteration_addresses fig1 env (List.hd fig1.phases)
                ~array:"X" ~par:it
              |> List.map fst |> List.sort_uniq compare
            in
            Alcotest.(check (list int))
              (Printf.sprintf "iter %d p=%d q=%d" it p q)
              expected got
          done)
        [ (2, 1); (3, 2); (4, 2) ])

(* A richer adversarial generator: negative strides (reversed access),
   sibling sequential loops (non-perfect nesting), shifted multi-ref
   statements, two arrays. *)
let gen_stress_program =
  let open QCheck.Gen in
  let* n_par = int_range 3 7 in
  let* s1 = int_range 1 5 in
  let* inner_n = int_range 1 4 in
  let* inner_stride = int_range 1 4 in
  let* reversed = bool in
  let* shift = int_range 0 6 in
  let* sibling = bool in
  let* base = int_range 0 9 in
  let v = Expr.var and ic = Expr.int in
  let par_term =
    if reversed then
      Expr.sub (ic Stdlib.((s1 * (n_par - 1)) + base + 40))
        (Expr.mul (ic s1) (v "i"))
    else Expr.add (Expr.mul (ic s1) (v "i")) (ic base)
  in
  let idx extra =
    Expr.add par_term
      (Expr.add (Expr.mul (ic inner_stride) (v "j")) (ic extra))
  in
  let inner_body =
    [
      Build.assign
        [ Build.read "A" [ idx 0 ]; Build.read "A" [ idx shift ];
          Build.write "B" [ idx 0 ] ];
    ]
  in
  let first_loop =
    Build.do_ "j" ~lo:(ic 0) ~hi:(ic (Stdlib.( - ) inner_n 1)) inner_body
  in
  let body =
    if sibling then
      [
        first_loop;
        Build.do_ "j2" ~lo:(ic 0) ~hi:(ic 1)
          [ Build.assign [ Build.read "B" [ Expr.add par_term (v "j2") ] ] ];
      ]
    else [ first_loop ]
  in
  return
    (Build.program ~name:"stress" ~params:Assume.empty
       ~arrays:[ Build.array "A" [ ic 4000 ]; Build.array "B" [ ic 4000 ] ]
       [
         Build.phase "S"
           (Build.doall "i" ~lo:(ic 0) ~hi:(ic (Stdlib.( - ) n_par 1)) body);
       ])

let arb_stress = QCheck.make gen_stress_program ~print:(fun p ->
    Format.asprintf "%a" Types.pp_program p)

let stress_oracle prog array ~par =
  let ph = List.hd prog.Types.phases in
  let ctx = Phase.analyze prog ph in
  let pd = Unionize.simplify (Pd.of_phase ctx ~array) in
  match Region.sorted (Region.addresses Env.empty pd ~par) with
  | got ->
      let expected =
        match par with
        | None -> Region.sorted (Enumerate.address_set prog Env.empty ph ~array)
        | Some k ->
            Enumerate.iteration_addresses prog Env.empty ph ~array ~par:k
            |> List.map fst |> List.sort_uniq compare
      in
      got = expected
  | exception Region.Not_rectangular _ -> false

let prop_stress_region =
  QCheck.Test.make ~name:"stress: descriptor region = oracle" ~count:200
    arb_stress (fun prog ->
      stress_oracle prog "A" ~par:None
      && stress_oracle prog "B" ~par:None
      && stress_oracle prog "A" ~par:(Some 0)
      && stress_oracle prog "A" ~par:(Some 1)
      && stress_oracle prog "B" ~par:(Some 2))

(* Homogenization merges same-pattern PDs from two phases. *)
let test_homogenize () =
  Probe.with_seed 21 (fun () ->
      let prog =
        sym_program
          [
            Build.(
              phase "H1"
                (doall "i" ~lo:(int 0) ~hi:(int 9)
                   [ assign [ write "A" [ int 4 * var "i" ] ] ]));
            Build.(
              phase "H2"
                (doall "i" ~lo:(int 0) ~hi:(int 9)
                   [ assign [ read "A" [ (int 4 * var "i") + int 40 ] ] ]));
          ]
      in
      let pd_of name =
        let ph = List.find (fun (p : Types.phase) -> p.phase_name = name) prog.phases in
        Unionize.simplify (Pd.of_phase (Phase.analyze prog ph) ~array:"A")
      in
      match Unionize.homogenize (pd_of "H1") (pd_of "H2") with
      | Some merged ->
          (* single group, rows fused into one region [0,4,...,76] *)
          let g = List.hd merged.groups in
          Alcotest.(check int) "rows fused" 1 (List.length g.rows);
          let region = Region.sorted (Region.addresses Env.empty merged ~par:None) in
          Alcotest.(check int) "20 addresses" 20 (List.length region);
          Alcotest.(check int) "last" 76 (List.nth region 19)
      | None -> Alcotest.fail "expected homogenization to apply")

let test_homogenize_rejects () =
  Probe.with_seed 22 (fun () ->
      let prog =
        sym_program
          [
            Build.(
              phase "H1"
                (doall "i" ~lo:(int 0) ~hi:(int 9)
                   [ assign [ write "A" [ int 4 * var "i" ] ] ]));
            Build.(
              phase "H3"
                (doall "i" ~lo:(int 0) ~hi:(int 9)
                   [ assign [ read "A" [ int 3 * var "i" ] ] ]));
          ]
      in
      let pd_of name =
        let ph = List.find (fun (p : Types.phase) -> p.phase_name = name) prog.phases in
        Unionize.simplify (Pd.of_phase (Phase.analyze prog ph) ~array:"A")
      in
      Alcotest.(check bool) "different strides do not merge" true
        (Unionize.homogenize (pd_of "H1") (pd_of "H3") = None))

(* Simplification is idempotent and never changes the address set. *)
let prop_simplify_idempotent =
  QCheck.Test.make ~name:"Unionize.simplify idempotent" ~count:80 arb_program
    (fun prog ->
      let ph = List.hd prog.Types.phases in
      let ctx = Phase.analyze prog ph in
      let once = Unionize.simplify (Pd.of_phase ctx ~array:"A") in
      let twice = Unionize.simplify once in
      let expand pd =
        try Some (Region.sorted (Region.addresses Env.empty pd ~par:None))
        with Region.Not_rectangular _ -> None
      in
      match (expand once, expand twice) with
      | Some a, Some b -> a = b
      | None, None -> true
      | _ -> false)

(* The whole-array fallback: a subscript quadratic in its own index has
   no LMAD; the reference degrades to an inexact full-array descriptor
   and everything downstream stays conservative but functional. *)
let test_whole_array_fallback () =
  Probe.with_seed 23 (fun () ->
      let prog =
        Build.program ~name:"quad" ~params:Assume.empty
          ~arrays:[ Build.array "A" [ i 500 ] ]
          [
            Build.phase "Q"
              (Build.doall "x" ~lo:(i 0) ~hi:(i 9)
                 [ Build.assign [ Build.read "A" [ v "x" * v "x" ] ] ]);
          ]
      in
      let ctx = Phase.analyze prog (List.hd prog.phases) in
      let pd = Unionize.simplify (Pd.of_phase ctx ~array:"A") in
      Alcotest.(check bool) "inexact" false pd.exact;
      (* the fallback covers the whole array *)
      let region = Region.sorted (Region.addresses Env.empty pd ~par:None) in
      Alcotest.(check int) "full coverage" 500 (List.length region);
      (* and the full pipeline still runs on it *)
      let t = Core.Pipeline.run prog ~env:Env.empty ~h:4 in
      let r = Core.Pipeline.simulate t in
      Alcotest.(check bool) "simulates" true (r.par_time > 0.0))

(* Reversed sequential loop: A(c - j) swept downward normalizes to a
   positive-direction dim with a shifted offset. *)
let test_reversed_seq_dim () =
  Probe.with_seed 24 (fun () ->
      let prog =
        Build.program ~name:"rev" ~params:Assume.empty
          ~arrays:[ Build.array "A" [ i 400 ] ]
          [
            Build.phase "R"
              (Build.doall "x" ~lo:(i 0) ~hi:(i 7)
                 [
                   Build.do_ "j" ~lo:(i 0) ~hi:(i 4)
                     [
                       Build.assign
                         [ Build.read "A" [ (i 10 * v "x") + i 9 - v "j" ] ];
                     ];
                 ]);
          ]
      in
      let ctx = Phase.analyze prog (List.hd prog.phases) in
      let pd = Unionize.simplify (Pd.of_phase ctx ~array:"A") in
      (* region per iteration x: [10x+5 .. 10x+9] *)
      let r0 = Region.sorted (Region.addresses Env.empty pd ~par:(Some 0)) in
      Alcotest.(check (list int)) "iter 0" [ 5; 6; 7; 8; 9 ] r0;
      let g = List.hd pd.groups in
      List.iter
        (fun (row : Pd.row) ->
          List.iteri
            (fun idx s ->
              if g.par <> Some idx then
                Alcotest.(check int) "seq dims normalized positive" 1 s)
            row.signs)
        g.rows)

let () =
  Alcotest.run "descriptor"
    [
      ("fig2", [ Alcotest.test_case "ARDs of F3" `Quick test_fig2_ards ]);
      ( "fig3",
        [
          Alcotest.test_case "coalescing chain" `Quick test_fig3_coalesce;
          Alcotest.test_case "access descriptor union" `Quick test_fig3_union;
        ] );
      ("fig4", [ Alcotest.test_case "ID regions P=4 Q=3" `Quick test_fig4_ids ]);
      ("fig8", [ Alcotest.test_case "UL and memory gap" `Quick test_fig8_bounds ]);
      ( "fig5",
        [
          Alcotest.test_case "shifted Delta_d=17" `Quick test_fig5_shifted;
          Alcotest.test_case "reverse Delta_r=27" `Quick test_fig5_reverse;
          Alcotest.test_case "overlap Delta_s=5" `Quick test_fig5_overlap;
          Alcotest.test_case "dense no-overlap" `Quick test_no_overlap_dense;
        ] );
      ( "tfft2-phases",
        [
          Alcotest.test_case "F8 storage symmetry" `Quick test_f8_symmetry;
          Alcotest.test_case "F2 column merge" `Quick test_f2_columns;
          Alcotest.test_case "F3 workspace containment" `Quick
            test_f3_workspace_containment;
        ] );
      ("offset", [ Alcotest.test_case "adjust distance" `Quick test_offset_adjust ]);
      ( "oracle",
        [
          Alcotest.test_case "tfft2 F3 exact region" `Slow test_tfft2_region_oracle;
          QCheck_alcotest.to_alcotest prop_region_whole;
          QCheck_alcotest.to_alcotest prop_region_iteration;
          QCheck_alcotest.to_alcotest prop_simplify_idempotent;
          QCheck_alcotest.to_alcotest prop_stress_region;
        ] );
      ( "fallbacks",
        [
          Alcotest.test_case "whole-array descriptor" `Quick
            test_whole_array_fallback;
          Alcotest.test_case "reversed seq loop" `Quick test_reversed_seq_dim;
        ] );
      ( "homogenize",
        [
          Alcotest.test_case "merges shifted phases" `Quick test_homogenize;
          Alcotest.test_case "rejects mismatched strides" `Quick
            test_homogenize_rejects;
        ] );
    ]
