open Descriptor

type case = Privatizable | No_overlap | Overlap_read_only | Fails

type verdict = { local : bool; case : case }

let check ?sym ~attr (id : Id.t) =
  match attr with
  | Ir.Liveness.P -> { local = true; case = Privatizable }
  | _ ->
      let sym =
        match sym with Some s -> s | None -> Symmetry.analyze id
      in
      if sym.overlap = Symmetry.No_overlap then
        { local = true; case = No_overlap }
      else if not sym.write_overlap then
        (* the shared cells are only read: replicate them (Theorem 1c) *)
        { local = true; case = Overlap_read_only }
      else { local = false; case = Fails }

let case_to_string = function
  | Privatizable -> "privatizable"
  | No_overlap -> "no-overlap"
  | Overlap_read_only -> "overlap-read-only"
  | Fails -> "fails"
