lib/ilp/ilp_solver.mli: Lp Qnum Symbolic
