open Symbolic

type access = Read | Write

type array_ref = { array : string; index : Expr.t list; access : access }

type stmt = Assign of assign | Loop of loop

and assign = { refs : array_ref list; work : int }

and loop = {
  var : string;
  lo : Expr.t;
  hi : Expr.t;
  step : Expr.t;
  parallel : bool;
  body : stmt list;
}

type array_decl = { name : string; dims : Expr.t list }
type phase = { phase_name : string; nest : loop }

type program = {
  prog_name : string;
  params : Assume.t;
  arrays : array_decl list;
  phases : phase list;
  repeats : bool;
}

let equal_access a b = match (a, b) with
  | Read, Read | Write, Write -> true
  | Read, Write | Write, Read -> false

let pp_access ppf = function
  | Read -> Format.pp_print_string ppf "R"
  | Write -> Format.pp_print_string ppf "W"

let pp_ref ppf r =
  Format.fprintf ppf "%s(%a):%a" r.array
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Expr.pp)
    r.index pp_access r.access

let rec pp_stmt ppf = function
  | Assign a ->
      Format.fprintf ppf "@[<h>{%a}@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           pp_ref)
        a.refs
  | Loop l ->
      Format.fprintf ppf "@[<v 2>%s %s = %a to %a%s%s@,%a@]"
        (if l.parallel then "doall" else "do")
        l.var Expr.pp l.lo Expr.pp l.hi
        (match Expr.to_int l.step with
        | Some 1 -> ""
        | _ -> Format.asprintf " step %a" Expr.pp l.step)
        "" (Format.pp_print_list pp_stmt) l.body

let pp_phase ppf ph =
  Format.fprintf ppf "@[<v 2>phase %s:@,%a@]" ph.phase_name pp_stmt (Loop ph.nest)

let pp_program ppf p =
  Format.fprintf ppf "@[<v>program %s%s@,params: %a@,arrays: %a@,%a@]"
    p.prog_name
    (if p.repeats then " (repeating)" else "")
    Assume.pp p.params
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf a ->
         Format.fprintf ppf "%s(%a)" a.name
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
              Expr.pp)
           a.dims))
    p.arrays
    (Format.pp_print_list pp_phase)
    p.phases

(* Artifact cache keys over the syntax: a faithful structural encoding
   (interned expression leaves), so caches keyed on programs/phases are
   collision-free without hashing whole syntax trees per lookup. *)
let access_key = function
  | Read -> Artifact.Key.int 0
  | Write -> Artifact.Key.int 1

let ref_key (r : array_ref) =
  Artifact.Key.(
    list [ str r.array; list (List.map expr r.index); access_key r.access ])

let rec stmt_key = function
  | Assign a ->
      Artifact.Key.(
        list [ int 0; list (List.map ref_key a.refs); int a.work ])
  | Loop l -> Artifact.Key.(list [ int 1; loop_key l ])

and loop_key (l : loop) =
  Artifact.Key.(
    list
      [
        str l.var;
        expr l.lo;
        expr l.hi;
        expr l.step;
        bool l.parallel;
        list (List.map stmt_key l.body);
      ])

let phase_key (ph : phase) =
  Artifact.Key.(list [ str ph.phase_name; loop_key ph.nest ])

let arrays_key (p : program) =
  Artifact.Key.(
    list
      (List.map
         (fun (a : array_decl) ->
           list [ str a.name; list (List.map expr a.dims) ])
         p.arrays))

let program_key (p : program) =
  Artifact.Key.(
    list
      [
        str p.prog_name;
        Assume.key p.params;
        arrays_key p;
        list (List.map phase_key p.phases);
        bool p.repeats;
      ])

(* Identity of one phase *in context*: the phase's own syntax plus the
   parts of the program it can actually observe (parameter domains and
   array declarations) - deliberately NOT the sibling phases, so an
   edited program re-analyzes only the phases whose digests changed
   while the warm server reuses the rest. *)
let phase_context_key (p : program) (ph : phase) =
  Artifact.Key.(list [ Assume.key p.params; arrays_key p; phase_key ph ])

let array_decl p name = List.find (fun (a : array_decl) -> String.equal a.name name) p.arrays

let rec stmt_refs = function
  | Assign a -> a.refs
  | Loop l -> List.concat_map stmt_refs l.body

let phase_arrays ph =
  stmt_refs (Loop ph.nest)
  |> List.map (fun r -> r.array)
  |> List.sort_uniq String.compare
