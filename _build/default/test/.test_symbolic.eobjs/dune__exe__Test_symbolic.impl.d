test/test_symbolic.ml: Alcotest Assume Env Expr List Probe QCheck QCheck_alcotest Qnum Range Stdlib Symbolic
