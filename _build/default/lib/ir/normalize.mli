(** Loop normalization.

    Rewrites every loop to run from 0 with step 1, replacing the index
    [v] by [lo + step*v] in all enclosed expressions, as conventional
    compilers do before LMAD construction (paper, Sec. 2 opening). *)

open Types

val loop : loop -> loop
val phase : phase -> phase
val program : program -> program
