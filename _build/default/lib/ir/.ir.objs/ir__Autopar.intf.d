lib/ir/autopar.mli: Env Symbolic Types
