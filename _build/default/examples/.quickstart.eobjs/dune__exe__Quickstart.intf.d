examples/quickstart.mli:
