(** The backend-parameterized machine interface.

    Everything that replays a program under a distribution plan - the
    priced DSM simulator ({!Exec}), the versioned-memory validator
    ({!Validate}), and the real OCaml-domains executor (library
    [exec]) - follows the same protocol: per round, per phase, deliver
    the gated incoming redistribution events, run the phase's
    CYCLIC(p_k) owner-computes sweep, deliver the outgoing frontier
    events.  {!walk} encodes that protocol once; {!BACKEND} is what a
    machine must provide (perform or price one scheduled communication
    event, run one phase sweep, report per-processor clocks); and
    {!Driver} turns any backend into a {!run} record with the exact
    accounting the simulator always produced. *)



type phase_stats = {
  name : string;
  local : int;  (** local accesses *)
  remote : int;
  compute : int;  (** work cycles *)
  time : float;  (** parallel time of this phase (max over processors) *)
}

type comm_kind = Redistribution | Frontier_update

type comm_stats = {
  array : string;
  kind : comm_kind;
  before_phase : int;
      (** redistribution: fires before this phase; frontier update:
          fires after phase [before_phase - 1] *)
  words : int;  (** words moved *)
  time : float;
}

type proc_stats = {
  compute_time : float;
  access_time : float;  (** local + remote access cycles *)
}

type run = {
  h : int;
  phases : phase_stats list;
  comms : comm_stats list;
  par_time : float;  (** sum of phase maxima + communication + retries *)
  seq_time : float;  (** one processor, all local *)
  efficiency : float;  (** seq / (h * par) *)
  total_local : int;
  total_remote : int;
  per_proc : proc_stats array;  (** work distribution across processors *)
  retry_time : float;
      (** exponential-backoff cycles spent resending faulted messages
          (0 when fault injection is off) *)
  fault_stats : Fault.stats option;  (** present when [faults] was given *)
}

val walk :
  rounds:int ->
  sched:Comm.schedule ->
  phases:'a list ->
  step:
    (round:int ->
    k:int ->
    'a ->
    incoming:Comm.event list ->
    outgoing:Comm.event list ->
    unit) ->
  unit
(** Drive the round/phase/event protocol over a schedule: [step] is
    called once per (round, phase) with the redistribution events that
    enter the phase (wrap-around events, [before_phase = 0], gated to
    fire only from the second round on) and the frontier events that
    leave it.  Deliver [incoming], sweep, deliver [outgoing]. *)

module type BACKEND = sig
  type t

  val comm : t -> round:int -> k:int -> Comm.event -> comm_stats option
  (** Perform (or price) one scheduled event adjacent to phase [k];
      [None] means the backend filtered the event (no stats recorded,
      no time charged).  Called after {!phase} for frontier events of
      the same phase, so a backend may condition on what the phase
      actually wrote. *)

  val phase : t -> round:int -> k:int -> Ir.Types.phase -> phase_stats * float
  (** Run (or price) one phase sweep under the plan's CYCLIC(p_k)
      owner-computes schedule.  Returns the phase's stats and its
      contribution to the serialized baseline. *)

  val per_proc : t -> proc_stats array
  (** Per-processor clocks, read once after the last phase. *)
end

module Driver (B : BACKEND) : sig
  val drive :
    ?initial_time:float ->
    rounds:int ->
    sched:Comm.schedule ->
    phases:Ir.Types.phase list ->
    h:int ->
    B.t ->
    run
  (** Replay [rounds] traversals of the phase sequence against the
      backend and assemble the {!run} record: [par_time] accumulates
      each redistribution event's time as it fires, then phase time
      plus folded frontier time, preserving the simulator's historical
      float-summation order bit for bit.  [initial_time] seeds
      [par_time] (the simulator charges its retry budget there); the
      returned record has [retry_time = 0] and [fault_stats = None],
      which the caller owning those concerns overrides. *)
end
