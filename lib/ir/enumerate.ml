open Symbolic
open Types

(* Every address-by-address walk passes through here; the counter is
   the "did we enumerate at all?" probe the symbolic-coverage checks
   assert on (zero on the closed-form hot path). *)
let iter_count = Metrics.counter "enum.iter"

let iter (prog : program) (env : Env.t) (ph : phase) ~f =
  Metrics.incr iter_count;
  let ph = Normalize.phase ph in
  let dims_of = Hashtbl.create 8 in
  let eval_dims env name =
    match Hashtbl.find_opt dims_of name with
    | Some d -> d
    | None ->
        let decl = array_decl prog name in
        (* [flat] never multiplies by the final extent, so leave it
           unevaluated: an array whose trailing (size-only) dimension
           does not evaluate can still have its accesses enumerated
           (the schedule generator skips such arrays' events via
           [Comm.array_size], but the other references in the same
           statement must not be lost with them). *)
        let d =
          match List.rev decl.dims with
          | [] -> []
          | _last :: rest_rev ->
              List.rev (0 :: List.map (Env.eval env) rest_rev)
        in
        Hashtbl.add dims_of name d;
        d
  in
  let flat dims idx =
    let rec go idx dims =
      match (idx, dims) with
      | [ i ], [ _ ] -> i
      | i :: idx, d :: dims -> i + (d * go idx dims)
      | [], [] -> 0
      | _ -> invalid_arg "rank mismatch"
    in
    go idx dims
  in
  (* The loop below rebinds [env] once per iteration; those bindings
     die with the iteration, so they must not insert into the global
     evaluation store (DESIGN.md section 14). *)
  let env = Env.ephemeral env in
  let rec walk env par = function
    | Assign a ->
        List.iteri
          (fun k (r : array_ref) ->
            let dims = eval_dims env r.array in
            let idx = List.map (Env.eval env) r.index in
            f ~par ~array:r.array ~addr:(flat dims idx) r.access
              ~work:(if k = 0 then a.work else 0))
          a.refs
    | Loop l ->
        let lo = Env.eval env l.lo and hi = Env.eval env l.hi in
        for v = lo to hi do
          let env = Env.add l.var v env in
          let par = if l.parallel then Some v else par in
          List.iter (walk env par) l.body
        done
  in
  walk env None (Loop ph.nest)

let addresses prog env ph ~array =
  let acc = ref [] in
  iter prog env ph ~f:(fun ~par:_ ~array:a ~addr access ~work:_ ->
      if String.equal a array then acc := (addr, access) :: !acc);
  List.rev !acc

let address_set prog env ph ~array =
  let tbl = Hashtbl.create 256 in
  iter prog env ph ~f:(fun ~par:_ ~array:a ~addr _ ~work:_ ->
      if String.equal a array then Hashtbl.replace tbl addr ());
  tbl

let iteration_addresses prog env ph ~array ~par =
  let acc = ref [] in
  iter prog env ph ~f:(fun ~par:p ~array:a ~addr access ~work:_ ->
      if String.equal a array && p = Some par then acc := (addr, access) :: !acc);
  List.rev !acc
