(** Dense exact-rational linear programming (two-phase primal simplex).

    Stands in for the GAMS solver the paper used.  Problems here are
    tiny (Table 2 is ~16 variables), so a dictionary simplex with
    Bland's rule over {!Symbolic.Qnum} is exact and always terminates.

    Problem form: maximize [c.x] subject to row constraints
    [a.x <= / = / >= b] and [x >= 0]. *)

open Symbolic

type cmp = Le | Ge | Eq

type constr = { coeffs : Qnum.t array; cmp : cmp; rhs : Qnum.t }

type problem = {
  n_vars : int;
  objective : Qnum.t array;  (** maximized *)
  constraints : constr list;
}

type outcome =
  | Optimal of { value : Qnum.t; point : Qnum.t array }
  | Unbounded
  | Infeasible

val solve : problem -> outcome

val constr : Qnum.t array -> cmp -> Qnum.t -> constr
val of_ints : int list -> Qnum.t array
