lib/ir/normalize.mli: Types
