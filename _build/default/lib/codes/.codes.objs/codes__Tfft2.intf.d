lib/codes/tfft2.mli: Assume Env Ir Symbolic
