open Symbolic

type edge_report = {
  array : string;
  src : string;
  dst : string;
  labels : (int * Table1.label list) list;
  stable : Table1.label option;
}

type t = edge_report list

let sample_envs ?(samples = 3) (prog : Ir.Types.program) =
  let st = Random.State.make [| 23; 42; 2029 |] in
  List.init samples (fun _ -> Assume.sample ~state:st prog.params)

let analyze ?(samples = 3) ?(h_values = [ 2; 4; 8; 16; 32; 64 ])
    (prog : Ir.Types.program) : t =
  let envs = sample_envs ~samples prog in
  (* index edges structurally via the first build *)
  let builds =
    List.map
      (fun h -> (h, List.map (fun env -> Lcg.build prog ~env ~h) envs))
      h_values
  in
  match builds with
  | [] -> []
  | (_, first :: _) :: _ ->
      List.concat_map
        (fun (g0 : Lcg.graph) ->
          List.map
            (fun (e0 : Lcg.edge) ->
              let src = (List.nth g0.nodes e0.src).name
              and dst = (List.nth g0.nodes e0.dst).name in
              let labels =
                List.map
                  (fun (h, lcgs) ->
                    ( h,
                      List.filter_map
                        (fun (lcg : Lcg.t) ->
                          let g =
                            List.find_opt
                              (fun (g : Lcg.graph) -> g.array = g0.array)
                              lcg.graphs
                          in
                          Option.bind g (fun g ->
                              List.find_opt
                                (fun (e : Lcg.edge) ->
                                  e.src = e0.src && e.dst = e0.dst
                                  && e.back = e0.back)
                                g.edges)
                          |> Option.map (fun (e : Lcg.edge) -> e.label))
                        lcgs ))
                  builds
              in
              let all = List.concat_map snd labels in
              let stable =
                match all with
                | [] -> None
                | l :: rest ->
                    if List.for_all (Table1.equal_label l) rest then Some l
                    else None
              in
              { array = g0.array; src; dst; labels; stable })
            g0.edges)
        first.graphs
  | _ -> []

let all_stable t = List.for_all (fun e -> e.stable <> None) t

let pp ppf (t : t) =
  List.iter
    (fun e ->
      Format.fprintf ppf "@[<h>[%s] %s -> %s: " e.array e.src e.dst;
      (match e.stable with
      | Some l -> Format.fprintf ppf "stable %s" (Table1.label_to_string l)
      | None ->
          Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "  ")
            (fun ppf (h, ls) ->
              Format.fprintf ppf "H=%d:%s" h
                (String.concat "/"
                   (List.sort_uniq compare (List.map Table1.label_to_string ls))))
            ppf e.labels);
      Format.fprintf ppf "@]@,")
    t
