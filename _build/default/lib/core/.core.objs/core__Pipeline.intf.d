lib/core/pipeline.mli: Dsmsim Env Format Ilp Ir Locality Symbolic
