lib/descriptor/coalesce.ml: Assume Expr Fun Ir List Pd Probe Range Symbolic
