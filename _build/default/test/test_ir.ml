(* Tests for the loop-nest IR: builder, normalization, linearization,
   phase analysis, the enumeration oracle and privatizability. *)

open Symbolic
open Ir

let expr = Alcotest.testable Expr.pp Expr.equal

let v = Expr.var
let i = Expr.int

(* The paper's Figure 1: phase F3 of TFFT2. *)
let tfft2_params =
  Assume.of_list
    [
      ("p", Assume.Int_range (2, 6));
      ("q", Assume.Int_range (1, 5));
      ("P", Assume.Pow2_of "p");
      ("Q", Assume.Pow2_of "q");
    ]

let phase_f3 =
  Build.(
    phase "F3"
      (doall "I" ~lo:(int 0) ~hi:(var "Q" - int 1)
         [
           do_ "L" ~lo:(int 1) ~hi:(var "p")
             [
               do_ "J" ~lo:(int 0) ~hi:((var "P" * pow2 (int 0 - var "L")) - int 1)
                 [
                   do_ "K" ~lo:(int 0) ~hi:(pow2 (var "L" - int 1) - int 1)
                     [
                       assign
                         [
                           read "X"
                             [ (int 2 * var "P" * var "I")
                               + (pow2 (var "L" - int 1) * var "J")
                               + var "K" ];
                           read "X"
                             [ (int 2 * var "P" * var "I")
                               + (pow2 (var "L" - int 1) * var "J")
                               + var "K" + (var "P" / int 2) ];
                           write "X"
                             [ (int 2 * var "P" * var "I")
                               + (pow2 (var "L" - int 1) * var "J")
                               + var "K" ];
                         ];
                     ];
                 ];
             ];
         ]))

let tfft2_f3_program =
  Build.program ~name:"tfft2-f3" ~params:tfft2_params
    ~arrays:[ Build.array "X" [ Expr.mul (Expr.int 2) (Expr.mul (v "P") (v "Q")) ] ]
    [ phase_f3 ]

(* ------------------------------------------------------------------ *)

let test_normalize () =
  (* do L = 1 to p  ==>  do L = 0 to p-1 with L := 1 + L in the body *)
  let ph = Normalize.phase phase_f3 in
  match ph.nest.body with
  | [ Loop l ] ->
      Alcotest.(check expr) "lo" Expr.zero l.lo;
      Alcotest.(check expr) "hi" Expr.(sub (v "p") (i 1)) l.hi;
      (* K loop bound becomes 2^((L+1)-1) - 1 = 2^L - 1 *)
      (match l.body with
      | [ Loop j ] -> (
          match j.body with
          | [ Loop k ] ->
              Alcotest.(check expr) "K hi after subst"
                Expr.(sub (pow2 (v "L")) (i 1))
                k.hi
          | _ -> Alcotest.fail "expected K loop")
      | _ -> Alcotest.fail "expected J loop")
  | _ -> Alcotest.fail "expected L loop"

let test_normalize_step () =
  (* do v = 4 to 20 step 3 ==> 0..5, body index 4 + 3v *)
  let l =
    match Build.(do_ "v" ~lo:(int 4) ~hi:(int 20) ~step:(int 3)
                    [ assign [ read "A" [ var "v" ] ] ])
    with
    | Loop l -> l
    | _ -> assert false
  in
  let n = Normalize.loop l in
  Alcotest.(check expr) "hi" (i 5) n.hi;
  match n.body with
  | [ Assign a ] ->
      Alcotest.(check expr) "index expr"
        Expr.(add (i 4) (mul (i 3) (v "v")))
        (List.hd (List.hd a.refs).index)
  | _ -> Alcotest.fail "expected assign"

let test_linearize () =
  let addr =
    Linearize.address ~dims:[ i 10; i 20; i 30 ] [ v "a"; v "b"; v "c" ]
  in
  Alcotest.(check expr) "column major"
    Expr.(add (v "a") (mul (i 10) (add (v "b") (mul (i 20) (v "c")))))
    addr;
  Alcotest.(check expr) "size" (i 6000) (Linearize.size ~dims:[ i 10; i 20; i 30 ]);
  Alcotest.check_raises "rank mismatch"
    (Invalid_argument "Linearize.address: rank mismatch") (fun () ->
      ignore (Linearize.address ~dims:[ i 10 ] [ v "a"; v "b" ]))

let test_phase_analyze () =
  let t = Phase.analyze tfft2_f3_program phase_f3 in
  Alcotest.(check int) "4 loops" 4 (List.length t.loops);
  Alcotest.(check int) "3 sites" 3 (List.length t.sites);
  (match t.par with
  | Some l ->
      Alcotest.(check string) "parallel var" "I" l.var;
      Alcotest.(check expr) "par count" (v "Q") l.count
  | None -> Alcotest.fail "no parallel loop");
  Alcotest.(check int) "I position" 0 (Phase.loop_index t "I");
  Alcotest.(check int) "K position" 3 (Phase.loop_index t "K");
  let s = List.hd t.sites in
  Alcotest.(check (list string)) "enclosing" [ "I"; "L"; "J"; "K" ] s.enclosing

let test_phase_two_parallel () =
  let bad =
    Build.(
      phase "bad"
        (doall "I" ~lo:(int 0) ~hi:(int 7)
           [ doall "J" ~lo:(int 0) ~hi:(int 7) [ assign [ read "X" [ var "J" ] ] ] ]))
  in
  let prog =
    Build.program ~name:"bad" ~params:Assume.empty
      ~arrays:[ Build.array "X" [ i 8 ] ]
      [ bad ]
  in
  Alcotest.check_raises "two parallel loops"
    (Phase.Invalid_phase "bad: more than one parallel loop") (fun () ->
      ignore (Phase.analyze prog bad))

(* Enumerate the TFFT2 F3 accesses for P=4, Q=2 and compare to a direct
   transliteration of the Fortran loop nest. *)
let test_enumerate_tfft2 () =
  let env = Env.of_list [ ("p", 2); ("q", 1); ("P", 4); ("Q", 2) ] in
  let expected = ref [] in
  for iI = 0 to 1 do
    for l = 1 to 2 do
      for j = 0 to (4 * 1 lsl 0 * 1 lsl l / (1 lsl l) / (1 lsl l)) - 1 do
        (* J upper bound: P * 2^-L - 1 *)
        ignore j
      done
    done;
    ignore iI
  done;
  (* Hand-roll exactly: *)
  let p_param = 4 in
  for iI = 0 to 1 do
    for l = 1 to 2 do
      for j = 0 to (p_param / (1 lsl l)) - 1 do
        for k = 0 to (1 lsl (l - 1)) - 1 do
          let base = (2 * p_param * iI) + ((1 lsl (l - 1)) * j) + k in
          expected := (base + (p_param / 2), Types.Read) :: (base, Types.Read)
                      :: (base, Types.Write) :: !expected
        done
      done
    done
  done;
  let expected =
    List.sort compare (List.map (fun (a, k) -> (a, k)) !expected)
  in
  let got = List.sort compare (Enumerate.addresses tfft2_f3_program env phase_f3 ~array:"X") in
  Alcotest.(check int) "event count" (List.length expected) (List.length got);
  Alcotest.(check bool) "same multiset" true (expected = got)

let test_enumerate_iteration () =
  let env = Env.of_list [ ("p", 2); ("q", 1); ("P", 4); ("Q", 2) ] in
  let it0 =
    Enumerate.iteration_addresses tfft2_f3_program env phase_f3 ~array:"X" ~par:0
  in
  let addrs = List.sort_uniq compare (List.map fst it0) in
  (* Iteration 0 touches [0..3]: 2^(L-1)J + K spans 0..1 plus offset P/2=2. *)
  Alcotest.(check (list int)) "iter 0 footprint" [ 0; 1; 2; 3 ] addrs;
  let it1 =
    Enumerate.iteration_addresses tfft2_f3_program env phase_f3 ~array:"X" ~par:1
  in
  let addrs1 = List.sort_uniq compare (List.map fst it1) in
  Alcotest.(check (list int)) "iter 1 footprint" [ 8; 9; 10; 11 ] addrs1

(* ------------------------------------------------------------------ *)
(* Liveness / privatizability *)

(* Two phases over a work array W: F1 writes then reads W per iteration
   (classic privatizable workspace), F2 overwrites W entirely. *)
let priv_params = Assume.of_list [ ("N", Assume.Int_range (4, 16)) ]

let priv_f1 =
  Build.(
    phase "F1"
      (doall "i" ~lo:(int 0) ~hi:(var "N" - int 1)
         [
           assign [ write "W" [ var "i" ]; read "A" [ var "i" ] ];
           assign [ read "W" [ var "i" ]; write "B" [ var "i" ] ];
         ]))

let priv_f2 =
  Build.(
    phase "F2"
      (doall "i" ~lo:(int 0) ~hi:(var "N" - int 1)
         [ assign [ write "W" [ var "i" ] ] ]))

let priv_prog =
  Build.program ~name:"priv" ~params:priv_params
    ~arrays:[ Build.array "W" [ v "N" ]; Build.array "A" [ v "N" ]; Build.array "B" [ v "N" ] ]
    [ priv_f1; priv_f2 ]

let test_privatizable () =
  let attr = Liveness.attr priv_prog 0 ~array:"W" in
  Alcotest.(check string) "W privatizable in F1" "P" (Liveness.attr_to_string attr);
  let attr_a = Liveness.attr priv_prog 0 ~array:"A" in
  Alcotest.(check string) "A read-only" "R" (Liveness.attr_to_string attr_a);
  (* B is written and never overwritten: it survives to program exit,
     i.e. it is an output - live, hence W rather than P. *)
  let attr_b = Liveness.attr priv_prog 0 ~array:"B" in
  Alcotest.(check string) "B is a live-out write" "W"
    (Liveness.attr_to_string attr_b)

(* Same, but F2 READS W first: now W is live after F1. *)
let live_f2 =
  Build.(
    phase "F2"
      (doall "i" ~lo:(int 0) ~hi:(var "N" - int 1)
         [ assign [ read "W" [ var "i" ]; write "C" [ var "i" ] ] ]))

let live_prog =
  Build.program ~name:"live" ~params:priv_params
    ~arrays:[ Build.array "W" [ v "N" ]; Build.array "A" [ v "N" ];
              Build.array "B" [ v "N" ]; Build.array "C" [ v "N" ] ]
    [ priv_f1; live_f2 ]

let test_live_not_privatizable () =
  let attr = Liveness.attr live_prog 0 ~array:"W" in
  Alcotest.(check string) "W live after F1" "R/W" (Liveness.attr_to_string attr)

(* Upward-exposed read inside the phase: not privatizable either. *)
let exposed_f1 =
  Build.(
    phase "F1"
      (doall "i" ~lo:(int 0) ~hi:(var "N" - int 1)
         [
           assign [ read "W" [ var "i" ]; write "B" [ var "i" ] ];
           assign [ write "W" [ var "i" ] ];
         ]))

let exposed_prog =
  Build.program ~name:"exposed" ~params:priv_params
    ~arrays:[ Build.array "W" [ v "N" ]; Build.array "B" [ v "N" ] ]
    [ exposed_f1; priv_f2 ]

let test_exposed_read () =
  let attr = Liveness.attr exposed_prog 0 ~array:"W" in
  Alcotest.(check string) "read before write" "R/W" (Liveness.attr_to_string attr)

(* Repetition wraps liveness around: F1 writes W, F2 reads W, and with
   repeats=true the value written in F2's... F1's W is read by F2 so W
   is live after F1 regardless; but B (written in F1, read by nobody)
   stays dead even around the back edge. *)
let test_repeats_wrap () =
  let prog = { live_prog with repeats = true } in
  Alcotest.(check string) "wrap: W live" "R/W"
    (Liveness.attr_to_string (Liveness.attr prog 0 ~array:"W"));
  (* C is written in F2 and never read, even on wrap: P. *)
  Alcotest.(check string) "wrap: C dead" "P"
    (Liveness.attr_to_string (Liveness.attr prog 1 ~array:"C"))

(* ------------------------------------------------------------------ *)
(* Inter-procedural inlining with reshaping *)

let test_inline_reshape () =
  let open Inline in
  let nv = Expr.var "N" in
  (* subroutine scale(A(N, 2)): doall r: A(r, 0) = A(r, 1) - the callee
     views its dummy as an N x 2 matrix *)
  let sub =
    {
      sub_name = "scale";
      formals = [ Build.array "A" [ nv; Expr.int 2 ] ];
      body =
        [
          Build.(
            phase "SCALE"
              (doall "r" ~lo:(int 0) ~hi:(nv - int 1)
                 [
                   assign
                     [
                       read "A" [ var "r"; int 1 ];
                       write "A" [ var "r"; int 0 ];
                     ];
                 ]));
        ];
    }
  in
  (* caller: G is a flat 4N vector; call scale on the first and second
     halves - two different sections, reshaped to N x 2 *)
  let prog =
    program_with_calls ~name:"ipc"
      ~params:(Assume.of_list [ ("N", Assume.Int_range (4, 16)) ])
      ~arrays:[ Build.array "G" [ Expr.mul (Expr.int 4) nv ] ]
      [
        `Call { sub; bindings = [ ("A", { target = "G"; base = Expr.zero }) ]; tag = "LO" };
        `Call
          {
            sub;
            bindings =
              [ ("A", { target = "G"; base = Expr.mul (Expr.int 2) nv }) ];
            tag = "HI";
          };
      ]
  in
  Alcotest.(check int) "two inlined phases" 2 (List.length prog.phases);
  Alcotest.(check (list string)) "names" [ "LO_SCALE"; "HI_SCALE" ]
    (List.map (fun (p : Types.phase) -> p.phase_name) prog.phases);
  (* semantics: LO reads G[N..2N) writes G[0..N); HI shifted by 2N *)
  let env = Env.of_list [ ("N", 4) ] in
  let lo = List.hd prog.phases in
  let reads =
    Enumerate.addresses prog env lo ~array:"G"
    |> List.filter (fun (_, a) -> a = Types.Read)
    |> List.map fst |> List.sort compare
  in
  Alcotest.(check (list int)) "LO reads column 1" [ 4; 5; 6; 7 ] reads;
  let writes =
    Enumerate.addresses prog env lo ~array:"G"
    |> List.filter (fun (_, a) -> a = Types.Write)
    |> List.map fst |> List.sort compare
  in
  Alcotest.(check (list int)) "LO writes column 0" [ 0; 1; 2; 3 ] writes;
  let hi = List.nth prog.phases 1 in
  let hi_all =
    Enumerate.addresses prog env hi ~array:"G" |> List.map fst |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "HI section" [ 8; 9; 10; 11; 12; 13; 14; 15 ] hi_all

let test_inline_errors () =
  let open Inline in
  let sub = { sub_name = "s"; formals = [ Build.array "A" [ Expr.int 4 ] ]; body = [] } in
  Alcotest.check_raises "unbound formal"
    (Bad_call "undeclared actual Z")
    (fun () ->
      ignore
        (program_with_calls ~name:"x" ~params:Assume.empty
           ~arrays:[ Build.array "G" [ Expr.int 16 ] ]
           [ `Call { sub; bindings = [ ("A", { target = "Z"; base = Expr.zero }) ]; tag = "T" } ]))

(* ------------------------------------------------------------------ *)
(* Automatic parallelization (the Polaris stand-in) *)

let strip_markings (prog : Types.program) : Types.program =
  let rec clear (l : Types.loop) =
    {
      l with
      parallel = false;
      body =
        List.map
          (function
            | Types.Loop i -> Types.Loop (clear i)
            | Types.Assign a -> Types.Assign a)
          l.body;
    }
  in
  {
    prog with
    phases =
      List.map
        (fun (ph : Types.phase) -> { ph with nest = clear ph.nest })
        prog.phases;
  }

let par_vars (prog : Types.program) =
  List.map
    (fun ph ->
      let ctx = Phase.analyze prog ph in
      Option.map (fun (l : Phase.loop_info) -> l.var) ctx.par)
    prog.phases

let test_autopar_recovers_markings () =
  (* Stripping the hand markings and re-deriving them restores the same
     parallel loop in every phase of every benchmark. *)
  List.iter
    (fun (e : Codes.Registry.entry) ->
      let stripped = strip_markings e.program in
      let marked = Autopar.mark stripped in
      (* every hand-marked parallel loop must be recovered exactly; a
         hand-sequential phase may legitimately gain parallelism (e.g.
         a read-only scan) *)
      List.iter2
        (fun original recovered ->
          match original with
          | Some v ->
              Alcotest.(check (option string))
                (e.name ^ " recovers " ^ v)
                (Some v) recovered
          | None -> ())
        (par_vars e.program) (par_vars marked))
    Codes.Registry.all

let test_autopar_rejects_recurrence () =
  (* A genuine loop-carried flow dependence must not be parallelized at
     that level. *)
  let prog =
    Build.program ~name:"rec" ~params:priv_params
      ~arrays:[ Build.array "A" [ Expr.mul (v "N") (v "N") ] ]
      [
        Build.(
          phase "SCAN"
            (do_ "j" ~lo:(int 0) ~hi:(var "N" - int 1)
               [
                 do_ "i" ~lo:(int 1) ~hi:(var "N" - int 1)
                   [
                     assign
                       [
                         read "A" [ var "i" - int 1 + (var "N" * var "j") ];
                         write "A" [ var "i" + (var "N" * var "j") ];
                       ];
                   ];
               ]));
      ]
  in
  let marked = Autopar.mark prog in
  (* the outer j loop is independent (disjoint columns); the inner scan
     is not - autopar must pick j *)
  Alcotest.(check (list (option string))) "j chosen" [ Some "j" ] (par_vars marked);
  (* and with the outer loop removed, nothing is parallelizable *)
  let inner_only =
    Build.program ~name:"rec2" ~params:priv_params
      ~arrays:[ Build.array "A" [ v "N" ] ]
      [
        Build.(
          phase "SCAN"
            (do_ "i" ~lo:(int 1) ~hi:(var "N" - int 1)
               [
                 assign
                   [ read "A" [ var "i" - int 1 ]; write "A" [ var "i" ] ];
               ]));
      ]
  in
  let marked2 = Autopar.mark inner_only in
  Alcotest.(check (list (option string))) "nothing parallel" [ None ]
    (par_vars marked2)

let test_autopar_reduction_blocked () =
  (* All iterations writing one accumulator cell: blocked (no reduction
     recognition). *)
  let prog =
    Build.program ~name:"red" ~params:priv_params
      ~arrays:[ Build.array "A" [ v "N" ]; Build.array "S" [ i 1 ] ]
      [
        Build.(
          phase "SUM"
            (do_ "i" ~lo:(int 0) ~hi:(var "N" - int 1)
               [
                 assign
                   [ read "A" [ var "i" ]; read "S" [ int 0 ]; write "S" [ int 0 ] ];
               ]));
      ]
  in
  let marked = Autopar.mark prog in
  Alcotest.(check (list (option string))) "blocked" [ None ] (par_vars marked)

(* Property: disjoint-write loops parallelize; adding a carried flow
   dependence blocks them. *)
let test_reduction_recognition () =
  (* SUM over A into scalar S: blocked plain, parallelized after
     reduction privatization, and the transformed program computes the
     same multiset of A accesses. *)
  let prog =
    Build.program ~name:"red" ~params:priv_params
      ~arrays:[ Build.array "A" [ v "N" ]; Build.array "S" [ i 1 ] ]
      [
        Build.(
          phase "SUM"
            (do_ "i" ~lo:(int 0) ~hi:(var "N" - int 1)
               [
                 assign ~work:2
                   [ read "A" [ var "i" ]; read "S" [ int 0 ]; write "S" [ int 0 ] ];
               ]));
      ]
  in
  let blocked = Autopar.mark prog in
  Alcotest.(check (list (option string))) "plain: blocked" [ None ]
    (par_vars blocked);
  let transformed = Autopar.mark (Autopar.recognize_reductions prog) in
  Alcotest.(check (list string)) "split into accumulate + combine"
    [ "SUM"; "SUM_COMBINE" ]
    (List.map (fun (p : Types.phase) -> p.phase_name) transformed.phases);
  Alcotest.(check (list (option string)))
    "accumulation parallel, combine sequential"
    [ Some "i"; None ]
    (par_vars transformed);
  (* A's access multiset is preserved by the transformation *)
  let env = Env.of_list [ ("N", 8) ] in
  let a_events prog =
    List.concat_map
      (fun ph -> Enumerate.addresses prog env ph ~array:"A")
      prog.Types.phases
    |> List.sort compare
  in
  Alcotest.(check bool) "A accesses preserved" true
    (a_events prog = a_events transformed);
  (* the partial array has one slot per iteration *)
  let part = List.nth transformed.phases 0 in
  let writes =
    Enumerate.addresses transformed env part ~array:"__red_S"
    |> List.filter (fun (_, k) -> k = Types.Write)
    |> List.map fst |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "slots 0..7" [ 0; 1; 2; 3; 4; 5; 6; 7 ] writes;
  (* end to end: pipeline runs and validates *)
  let t = Core.Pipeline.run transformed ~env ~h:4 in
  let r = Dsmsim.Validate.run t.lcg t.plan in
  Alcotest.(check int) "dataflow clean" 0 r.stale

let prop_autopar_soundness =
  QCheck.Test.make ~name:"autopar: disjoint writes par, recurrences seq"
    ~count:60
    QCheck.(pair (int_range 4 12) (pair (int_range 1 3) bool))
    (fun (n, (stride, carried)) ->
      let iv = Expr.var "k" in
      let subscript =
        Expr.add (Expr.mul (Expr.int stride) iv) (Expr.int 1)
      in
      let refs =
        if carried then
          [
            Build.read "A" [ Expr.sub subscript (Expr.int stride) ];
            Build.write "A" [ subscript ];
          ]
        else [ Build.read "B" [ subscript ]; Build.write "A" [ subscript ] ]
      in
      let refs_body = [ Build.assign refs ] in
      let prog =
        Build.program ~name:"ap" ~params:Assume.empty
          ~arrays:[ Build.array "A" [ Expr.int 200 ]; Build.array "B" [ Expr.int 200 ] ]
          [
            Build.phase "P"
              (Build.do_ "k" ~lo:(Expr.int 1) ~hi:(Expr.int n) refs_body);
          ]
      in
      let marked = Autopar.mark prog in
      let ctx = Phase.analyze marked (List.hd marked.phases) in
      match (carried, ctx.par) with
      | true, None -> true
      | false, Some _ -> true
      | _ -> false)

let () =
  Alcotest.run "ir"
    [
      ( "normalize",
        [
          Alcotest.test_case "tfft2 L loop" `Quick test_normalize;
          Alcotest.test_case "step loop" `Quick test_normalize_step;
        ] );
      ("linearize", [ Alcotest.test_case "column major" `Quick test_linearize ]);
      ( "phase",
        [
          Alcotest.test_case "analyze tfft2 F3" `Quick test_phase_analyze;
          Alcotest.test_case "reject two parallel" `Quick test_phase_two_parallel;
        ] );
      ( "enumerate",
        [
          Alcotest.test_case "tfft2 oracle" `Quick test_enumerate_tfft2;
          Alcotest.test_case "per-iteration" `Quick test_enumerate_iteration;
        ] );
      ( "autopar",
        [
          Alcotest.test_case "recovers benchmark markings" `Quick
            test_autopar_recovers_markings;
          Alcotest.test_case "rejects recurrences" `Quick
            test_autopar_rejects_recurrence;
          Alcotest.test_case "reduction blocked" `Quick
            test_autopar_reduction_blocked;
          QCheck_alcotest.to_alcotest prop_autopar_soundness;
          Alcotest.test_case "reduction recognition" `Quick
            test_reduction_recognition;
        ] );
      ( "inline",
        [
          Alcotest.test_case "reshape sections" `Quick test_inline_reshape;
          Alcotest.test_case "bad calls" `Quick test_inline_errors;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "privatizable workspace" `Quick test_privatizable;
          Alcotest.test_case "live after" `Quick test_live_not_privatizable;
          Alcotest.test_case "exposed read" `Quick test_exposed_read;
          Alcotest.test_case "repeats wrap" `Quick test_repeats_wrap;
        ] );
    ]
