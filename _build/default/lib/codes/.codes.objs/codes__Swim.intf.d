lib/codes/swim.mli: Assume Env Ir Symbolic
