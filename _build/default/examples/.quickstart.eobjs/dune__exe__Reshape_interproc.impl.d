examples/reshape_interproc.ml: Assume Core Env Expr Format Inline Ir List Locality String Symbolic Types
