(** Phase Descriptors (paper, Sec. 2).

    A PD aggregates the ARDs of all references to one array inside one
    phase.  Rows that share a stride vector live in the same {e group}
    (the paper's matrix A with shared delta vector); references whose
    stride vectors differ remain in separate groups, so a PD is a union
    of groups.  Signs (the paper's Lambda matrix) are kept per row: a
    group may contain an increasing and a decreasing row, which is what
    reverse storage symmetry later detects. *)

open Symbolic
open Ir

type dim = {
  stride : Expr.t;  (** absolute stride, shared by all rows *)
  vars : string list;  (** loop indices folded into this dim *)
  uniform : bool;
}

type row = {
  alphas : Expr.t list;  (** iteration counts, aligned with group dims *)
  signs : int list;  (** per-dim direction for this row *)
  offset : Expr.t;  (** tau *)
  mix : Access_mix.t;
  phis : Expr.t list;  (** source subscripts (provenance for Range) *)
}

type group = {
  dims : dim list;  (** outermost first *)
  par : int option;  (** index of the parallel dim within [dims] *)
  rows : row list;
}

type t = {
  array : string;
  ctx : Phase.t;
  groups : group list;
  exact : bool;  (** false if any reference degraded to whole-array *)
}

val dim_key : dim -> Artifact.Key.t

val key : t -> Artifact.Key.t
(** Structural artifact key over the enumeration-relevant content
    (array, groups, exactness) - deliberately not the context: the
    addresses a PD denotes are a function of its rows alone. *)

val digest : t -> int
(** Stable structural digest, [Artifact.Key.hash] of {!key}. *)

val of_phase : Phase.t -> array:string -> t
(** Raw PD: one row per reference site, rows with identical stride
    vectors grouped.  Zero-stride (loop-invariant) dims are dropped. *)

val par_stride : group -> Expr.t option
(** Stride of the parallel dim ([None] when the region is invariant
    across parallel iterations). *)

val par_sign : row -> group -> int
(** Direction of this row along the parallel loop (+1 when invariant). *)

val seq_dims : group -> (int * dim) list
(** Non-parallel dims with their positions. *)

val row_span_seq : group -> row -> Expr.t
(** Total sequential span [sum (alpha_j - 1) * delta_j] of one row:
    the per-iteration region of the row stretches from its offset to
    offset + span. *)

val group_mix : group -> Access_mix.t
val pd_mix : t -> Access_mix.t

val finest_seq : Assume.t -> group -> (int * dim) option
(** Sequential dim with the (probed) smallest stride. *)

val pp : Format.formatter -> t -> unit
val pp_group : Format.formatter -> group -> unit
