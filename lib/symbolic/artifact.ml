(* The unified artifact cache: one digest-keyed, bounded, generation-
   aware store family replacing the ad-hoc memo Hashtbls that used to
   live in Range, Probe, Phase, Region, Symmetry, Lcg and Solve.

   Keys are small trees whose leaves are ints, strings and *interned*
   expressions, so key equality is O(key size) with O(1) expression
   leaves, and key hashing reuses the expressions' precomputed
   structural digests.  Collisions are therefore impossible by
   construction - the digest only accelerates bucketing.

   Invalidation is by generation, not by per-table flush hooks: stores
   created [~volatile:true] hold values that depend on the probe stream
   and are dropped (lazily, on next access) whenever the global
   generation advances - [Probe.with_seed] advances it on entry and
   exit.  Non-volatile stores hold values that are pure functions of
   their key (an [Env.id] in the key ties environment-dependent values
   to one immutable environment) and survive re-seeding; [clear_all]
   drops everything, which is what a pool worker does between jobs. *)

module Key = struct
  type t = I of int | S of string | E of Expr.t | L of int * t list

  let mix h k = (((h * 0x01000193) lxor k) land max_int : int)

  let hash = function
    | I n -> mix 3 n
    | S s -> mix 5 (Hashtbl.hash s)
    | E e -> mix 7 (Expr.digest e)
    | L (h, _) -> h

  let int n = I n
  let bool b = I (if b then 1 else 0)
  let str s = S s
  let expr e = E e
  let list l = L (List.fold_left (fun h k -> mix h (hash k)) 11 l, l)
  let opt f = function None -> I 0 | Some x -> list [ f x ]

  let rec equal a b =
    match (a, b) with
    | I a, I b -> Int.equal a b
    | S a, S b -> String.equal a b
    | E a, E b -> Expr.equal a b
    | L (ha, la), L (hb, lb) -> Int.equal ha hb && list_equal la lb
    | (I _ | S _ | E _ | L _), _ -> false

  and list_equal a b =
    match (a, b) with
    | [], [] -> true
    | x :: xs, y :: ys -> equal x y && list_equal xs ys
    | _, _ -> false
end

module KT = Hashtbl.Make (Key)

let generation = ref 0

type 'v store = {
  name : string;
  capacity : int;
  volatile : bool;
  stats : Metrics.cache;
  tbl : 'v KT.t;
  mutable gen : int;  (* generation at last sync *)
  mutable evictions : int;  (* whole-table drops on capacity overflow *)
}

type stat = {
  s_name : string;
  entries : int;
  capacity : int;
  volatile : bool;
  hits : int;
  misses : int;
  evictions : int;
}

(* The registry erases the value type so [clear_all] / [stats] can walk
   every store created anywhere in the process. *)
type registered = { r_stat : unit -> stat; r_clear : unit -> unit }

let registry : registered list ref = ref []

let store ?(capacity = 65_536) ?(volatile = false) name =
  let s =
    {
      name;
      capacity;
      volatile;
      stats = Metrics.cache name;
      tbl = KT.create 256;
      gen = !generation;
      evictions = 0;
    }
  in
  registry :=
    {
      r_stat =
        (fun () ->
          {
            s_name = name;
            entries = KT.length s.tbl;
            capacity;
            volatile;
            hits = Metrics.hits s.stats;
            misses = Metrics.misses s.stats;
            evictions = s.evictions;
          });
      r_clear =
        (fun () ->
          KT.reset s.tbl;
          s.gen <- !generation);
    }
    :: !registry;
  s

let sync (s : _ store) =
  if s.volatile && s.gen <> !generation then begin
    KT.reset s.tbl;
    s.gen <- !generation
  end

let find (s : _ store) key compute =
  sync s;
  match KT.find_opt s.tbl key with
  | Some v ->
      Metrics.hit s.stats;
      v
  | None ->
      Metrics.miss s.stats;
      let g = !generation in
      let v = compute () in
      (* If the generation moved during the computation (a nested
         [with_seed] scope), a volatile value was computed under a seed
         this store no longer represents: return it but don't keep it. *)
      if not (s.volatile && !generation <> g) then begin
        if KT.length s.tbl >= s.capacity then begin
          KT.reset s.tbl;
          s.evictions <- s.evictions + 1
        end;
        KT.replace s.tbl key v
      end;
      v

let new_generation () = incr generation

let clear_all () =
  incr generation;
  List.iter (fun r -> r.r_clear ()) !registry

let stats () =
  List.sort
    (fun a b -> String.compare a.s_name b.s_name)
    (List.map (fun r -> r.r_stat ()) !registry)

let pp_stats ppf () =
  Format.fprintf ppf "%-24s %9s %9s %9s %9s %8s %5s %9s@," "artifact store"
    "entries" "capacity" "hits" "misses" "rate" "vol" "evicted";
  List.iter
    (fun st ->
      let total = st.hits + st.misses in
      Format.fprintf ppf "%-24s %9d %9d %9d %9d %7.1f%% %5s %9d@," st.s_name
        st.entries st.capacity st.hits st.misses
        (if total = 0 then 0.0
         else 100. *. float_of_int st.hits /. float_of_int total)
        (if st.volatile then "yes" else "no")
        st.evictions)
    (stats ())

let report () = Format.asprintf "@[<v>%a@]" pp_stats ()
