(* Golden snapshots of the LCG for every registry kernel: node access
   attributes (R / W / R/W / P, Sec. 3) and Table 1 edge labels
   (L / C / D, Theorem 2) are pinned so that the memoisation layer
   (env.eval, range.bounds, phase.analyze, region.addresses) can never
   silently change an analysis result.

   Regenerate after an intentional analysis change with

     GOLDEN_UPDATE=1 dune exec test/test_golden_lcg.exe

   and paste the emitted bindings over the [golden] table below. *)

open Symbolic

let size_of (e : Codes.Registry.entry) = min e.default_size 6

let render (t : Locality.Lcg.t) : string =
  let buf = Buffer.create 256 in
  List.iter
    (fun (g : Locality.Lcg.graph) ->
      Buffer.add_string buf ("array " ^ g.array ^ "\n");
      List.iteri
        (fun i (n : Locality.Lcg.node) ->
          Buffer.add_string buf
            (Printf.sprintf "  node %d %s(%s)\n" i n.name
               (Ir.Liveness.attr_to_string n.attr)))
        g.nodes;
      List.iter
        (fun (e : Locality.Lcg.edge) ->
          Buffer.add_string buf
            (Printf.sprintf "  edge %d->%d:%s%s\n" e.src e.dst
               (Locality.Table1.label_to_string e.label)
               (if e.back then " back" else "")))
        g.edges)
    t.graphs;
  Buffer.contents buf

let snapshot name =
  let e = Codes.Registry.find name in
  Probe.with_seed 601 (fun () ->
      Core.Artifact.clear_all ();
      let t =
        Core.Pipeline.run e.program ~env:(e.env_of_size (size_of e)) ~h:4
      in
      (* a second run answers from warm caches; it must render the same *)
      let t2 =
        Core.Pipeline.run e.program ~env:(e.env_of_size (size_of e)) ~h:4
      in
      (render t.Core.Pipeline.lcg, render t2.Core.Pipeline.lcg))

let golden : (string * string) list =
  [
    ("tfft2", {golden|array X
  node 0 F1(R)
  node 1 F2(W)
  node 2 F3(R/W)
  node 3 F4(R)
  node 4 F5(W)
  node 5 F6(R/W)
  node 6 F7(R)
  node 7 F8(W)
  edge 0->1:C
  edge 1->2:C
  edge 2->3:L
  edge 3->4:L
  edge 4->5:L
  edge 5->6:L
  edge 6->7:L
array Y
  node 0 F1(W)
  node 1 F2(R)
  node 2 F3(P)
  node 3 F4(W)
  node 4 F5(R)
  node 5 F6(R/W)
  node 6 F8(R)
  edge 0->1:L
  edge 1->2:D
  edge 2->3:D
  edge 3->4:C
  edge 4->5:L
  edge 5->6:L
|golden});
    ("jacobi2d", {golden|array U
  node 0 SWEEP(R)
  node 1 COPY(W)
  edge 0->1:L
  edge 1->0:L back
array V
  node 0 SWEEP(W)
  node 1 COPY(R)
  edge 0->1:L
  edge 1->0:L back
|golden});
    ("swim", {golden|array U
  node 0 CALC1(R)
  node 1 CALC3(W)
  edge 0->1:L
  edge 1->0:L back
array V
  node 0 CALC1(R)
  node 1 CALC3(W)
  edge 0->1:L
  edge 1->0:L back
array P
  node 0 CALC1(R)
  node 1 CALC2(R)
  node 2 CALC3(W)
  edge 0->1:L
  edge 1->2:L
  edge 2->0:L back
array CU
  node 0 CALC1(W)
  node 1 CALC2(R)
  edge 0->1:L
  edge 1->0:L back
array CV
  node 0 CALC1(W)
  node 1 CALC2(R)
  edge 0->1:L
  edge 1->0:L back
array PNEW
  node 0 CALC2(W)
  node 1 CALC3(R)
  edge 0->1:L
  edge 1->0:L back
|golden});
    ("tomcatv", {golden|array X
  node 0 RESID(R)
  node 1 UPDATE(R/W)
  edge 0->1:L
  edge 1->0:L back
array Y
  node 0 RESID(R)
  node 1 UPDATE(R/W)
  edge 0->1:L
  edge 1->0:L back
array RX
  node 0 RESID(W)
  node 1 NORM(R)
  node 2 UPDATE(R)
  edge 0->1:L
  edge 1->2:L
  edge 2->0:L back
array RY
  node 0 RESID(W)
  node 1 NORM(R)
  node 2 UPDATE(R)
  edge 0->1:L
  edge 1->2:L
  edge 2->0:L back
array PARTIAL
  node 0 NORM(W)
  node 1 COMBINE(R)
  edge 0->1:C
  edge 1->0:C back
|golden});
    ("matmul", {golden|array A
  node 0 MULT(R)
array B
  node 0 MULT(R)
array C
  node 0 INIT(W)
  node 1 MULT(R/W)
  node 2 SCALE(R/W)
  edge 0->1:L
  edge 1->2:L
|golden});
    ("adi", {golden|array U
  node 0 COLSWEEP(R/W)
  node 1 ROWSWEEP(R/W)
  edge 0->1:C
  edge 1->0:C back
|golden});
    ("redblack", {golden|array G
  node 0 RED(R/W)
  node 1 BLACK(R/W)
  edge 0->1:L
  edge 1->0:L back
|golden});
    ("trisolve", {golden|array L
  node 0 SOLVE(R)
array X
  node 0 SOLVE(R)
array Y
  node 0 SOLVE(W)
  node 1 REDUCE(R)
  edge 0->1:C
|golden});
    ("mgrid", {golden|array FINE
  node 0 SMOOTHF(R)
  node 1 PROLONG(W)
  edge 0->1:L
  edge 1->0:L back
array FTMP
  node 0 SMOOTHF(W)
  node 1 RESTRICT(R)
  node 2 PROLONG(R)
  edge 0->1:L
  edge 1->2:L
  edge 2->0:L back
array COARSE
  node 0 RESTRICT(W)
  node 1 SMOOTHC(R)
  edge 0->1:L
  edge 1->0:L back
array CTMP
  node 0 SMOOTHC(W)
  node 1 PROLONG(R)
  edge 0->1:L
  edge 1->0:L back
|golden});
  ]

let update_mode = Sys.getenv_opt "GOLDEN_UPDATE" = Some "1"

let emit_update () =
  List.iter
    (fun (e : Codes.Registry.entry) ->
      let cold, _ = snapshot e.name in
      Printf.printf "    (\"%s\", {golden|%s|golden});\n" e.name cold)
    Codes.Registry.all

let test_kernel name () =
  let expected =
    match List.assoc_opt name golden with
    | Some s -> s
    | None -> Alcotest.failf "no golden snapshot for %s" name
  in
  let cold, warm = snapshot name in
  Alcotest.(check string) (name ^ " cold run matches golden") expected cold;
  Alcotest.(check string) (name ^ " warm (cached) run matches golden") expected
    warm

let () =
  if update_mode then emit_update ()
  else
    Alcotest.run "golden-lcg"
      [
        ( "table1",
          List.map
            (fun (e : Codes.Registry.entry) ->
              Alcotest.test_case e.name `Quick (test_kernel e.name))
            Codes.Registry.all );
      ]
