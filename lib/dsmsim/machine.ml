

type phase_stats = {
  name : string;
  local : int;
  remote : int;
  compute : int;
  time : float;
}

type comm_kind = Redistribution | Frontier_update

type comm_stats = {
  array : string;
  kind : comm_kind;
  before_phase : int;
  words : int;
  time : float;
}

type proc_stats = {
  compute_time : float;
  access_time : float;
}

type run = {
  h : int;
  phases : phase_stats list;
  comms : comm_stats list;
  par_time : float;
  seq_time : float;
  efficiency : float;
  total_local : int;
  total_remote : int;
  per_proc : proc_stats array;
  retry_time : float;
  fault_stats : Fault.stats option;
}

(* The round/phase/event protocol every backend replays identically:
   redistribution events deliver on entry to their phase, except that
   wrap-around events (before_phase = 0) only fire from the second
   round on; frontier events deliver on exit from their phase, every
   round.  [step] receives the events already gated and ordered, so a
   backend cannot get the protocol wrong by construction. *)
let walk ~rounds ~sched ~phases ~step =
  for round = 0 to rounds - 1 do
    List.iteri
      (fun k ph ->
        let incoming =
          List.filter
            (function
              | Comm.Redistribute { before_phase; _ } ->
                  before_phase = k && (k > 0 || round > 0)
              | Comm.Frontier _ -> false)
            sched
        in
        let outgoing =
          List.filter
            (function
              | Comm.Frontier { after_phase; _ } -> after_phase = k
              | Comm.Redistribute _ -> false)
            sched
        in
        step ~round ~k ph ~incoming ~outgoing)
      phases
  done

module type BACKEND = sig
  type t

  val comm : t -> round:int -> k:int -> Comm.event -> comm_stats option
  (** Perform (or price) one scheduled event adjacent to phase [k];
      [None] means the backend filtered the event (no stats recorded,
      no time charged).  Called after {!phase} for frontier events of
      the same phase, so a backend may condition on what the phase
      actually wrote. *)

  val phase : t -> round:int -> k:int -> Ir.Types.phase -> phase_stats * float
  (** Run (or price) one phase sweep under the plan's CYCLIC(p_k)
      owner-computes schedule.  Returns the phase's stats and its
      contribution to the serialized baseline. *)

  val per_proc : t -> proc_stats array
  (** Per-processor clocks, read once after the last phase. *)
end

module Driver (B : BACKEND) = struct
  (* Accumulation order is part of the contract: each redistribution
     event's time is added to [par_time] as it fires, then one addition
     of phase time plus the folded frontier time - the float-summation
     order the priced simulator always used, preserved so reports stay
     byte-identical across the refactor. *)
  let drive ?(initial_time = 0.0) ~rounds ~sched ~phases ~h b : run =
    let phase_acc = ref [] and comms = ref [] in
    let total_local = ref 0 and total_remote = ref 0 in
    let par_time = ref initial_time and seq_time = ref 0.0 in
    walk ~rounds ~sched ~phases ~step:(fun ~round ~k ph ~incoming ~outgoing ->
        List.iter
          (fun ev ->
            match B.comm b ~round ~k ev with
            | Some cs ->
                par_time := !par_time +. cs.time;
                comms := cs :: !comms
            | None -> ())
          incoming;
        let ps, seq = B.phase b ~round ~k ph in
        seq_time := !seq_time +. seq;
        let frontier_t =
          List.fold_left
            (fun acc ev ->
              match B.comm b ~round ~k ev with
              | Some cs ->
                  comms := cs :: !comms;
                  acc +. cs.time
              | None -> acc)
            0.0 outgoing
        in
        par_time := !par_time +. ps.time +. frontier_t;
        total_local := !total_local + ps.local;
        total_remote := !total_remote + ps.remote;
        phase_acc := ps :: !phase_acc);
    let par = !par_time and seq = !seq_time in
    {
      h;
      phases = List.rev !phase_acc;
      comms = List.rev !comms;
      par_time = par;
      seq_time = seq;
      efficiency = (if par <= 0.0 then 1.0 else seq /. (float_of_int h *. par));
      total_local = !total_local;
      total_remote = !total_remote;
      per_proc = B.per_proc b;
      retry_time = 0.0;
      fault_stats = None;
    }
end
