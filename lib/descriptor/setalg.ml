open Symbolic

(* Mirror of Region.eval_const: the same failures must raise the same
   exception so both accounting modes degrade identically. *)
let eval_const env e =
  try Env.eval env e
  with Expr.Non_integral _ | Env.Unbound _ ->
    raise (Region.Not_rectangular (Expr.to_string e))

let row_box env (g : Pd.group) (r : Pd.row) ~par =
  let base = eval_const env r.offset in
  let par_dim =
    match (g.par, par) with
    | Some pi, Some i ->
        let stride = eval_const env (List.nth g.dims pi).stride in
        let sign = List.nth r.signs pi in
        `Fixed (Lattice.Safe.mul (Lattice.Safe.mul sign stride) i)
    | Some pi, None ->
        let stride = eval_const env (List.nth g.dims pi).stride in
        let sign = List.nth r.signs pi in
        let count = eval_const env (List.nth r.alphas pi) in
        `Dim (count, sign * stride)
    | None, _ -> `Fixed 0
  in
  let seq =
    Pd.seq_dims g
    |> List.map (fun (i, (d : Pd.dim)) ->
           (eval_const env (List.nth r.alphas i), eval_const env d.stride))
  in
  match par_dim with
  | `Fixed off -> Lattice.make ~base:(Lattice.Safe.add base off) seq
  | `Dim (count, stride) -> Lattice.make ~base ((count, stride) :: seq)

let boxes env (t : Pd.t) ~par =
  List.concat_map
    (fun (g : Pd.group) ->
      List.filter_map (fun r -> row_box env g r ~par) g.rows)
    t.groups

let card env t ~par =
  match boxes env t ~par with
  | bs -> Lattice.union_card bs
  | exception Lattice.Overflow -> None

let bounds env t ~par =
  match boxes env t ~par with
  | bs -> Lattice.bounds bs
  | exception Lattice.Overflow -> raise (Region.Not_rectangular "overflow")
