(* Tests for the surface-language frontend: lexing, parsing, error
   reporting, and semantic agreement with the DSL-built kernels. *)

open Symbolic
open Ir
open Frontend

let parse = Parse.program

let tfft2_src =
  {|program tfft2_f3
param p = 2..6
param q = 1..5
pow2 P = p
pow2 Q = q
real X(2*P*Q)

phase F3:
  doall I = 0, Q-1
    do L = 1, p
      do J = 0, P * 2^(0-L) - 1
        do K = 0, 2^(L-1) - 1
          X(2*P*I + 2^(L-1)*J + K) = X(2*P*I + 2**(L-1)*J + K) + X(2*P*I + 2^(L-1)*J + K + P/2) work 8
        end
      end
    end
  end
|}

let test_parse_tfft2 () =
  let prog = parse tfft2_src in
  Alcotest.(check string) "name" "tfft2_f3" prog.Types.prog_name;
  Alcotest.(check int) "one phase" 1 (List.length prog.phases);
  Alcotest.(check int) "one array" 1 (List.length prog.arrays);
  Alcotest.(check bool) "not repeating" false prog.repeats;
  (* structural: 4 loops, 3 refs *)
  let ctx = Phase.analyze prog (List.hd prog.phases) in
  Alcotest.(check int) "4 loops" 4 (List.length ctx.loops);
  Alcotest.(check int) "3 refs" 3 (List.length ctx.sites);
  match ctx.par with
  | Some l -> Alcotest.(check string) "parallel over I" "I" l.var
  | None -> Alcotest.fail "expected a parallel loop"

(* The parsed phase touches exactly the same addresses as the DSL-built
   Fig. 1 program, read/write multiset included. *)
let test_tfft2_semantics () =
  let parsed = parse tfft2_src in
  let built = Codes.Tfft2.fig1_program in
  List.iter
    (fun (p, q) ->
      let env = Codes.Tfft2.env ~p ~q in
      let a =
        Enumerate.addresses parsed env (List.hd parsed.phases) ~array:"X"
      in
      let b = Enumerate.addresses built env (List.hd built.phases) ~array:"X" in
      Alcotest.(check int)
        (Printf.sprintf "event count p=%d q=%d" p q)
        (List.length b) (List.length a);
      Alcotest.(check bool) "same multiset" true
        (List.sort compare a = List.sort compare b))
    [ (2, 1); (3, 2) ]

(* And the analysis produces the same final descriptor. *)
let test_tfft2_descriptor () =
  Probe.with_seed 80 (fun () ->
      let parsed = parse tfft2_src in
      let ctx = Phase.analyze parsed (List.hd parsed.phases) in
      let pd =
        Descriptor.Unionize.simplify (Descriptor.Pd.of_phase ctx ~array:"X")
      in
      let g = List.hd pd.groups in
      Alcotest.(check int) "single row" 1 (List.length g.rows);
      let r = List.hd g.rows in
      Alcotest.(check bool) "alpha = (Q, P)" true
        (Probe.equal ctx.assume (List.nth r.alphas 0) (Expr.var "Q")
        && Probe.equal ctx.assume (List.nth r.alphas 1) (Expr.var "P")))

(* Locate the sample file whether we run under `dune runtest` (cwd in
   _build) or directly; walk up to the first ancestor that has it. *)
let sample name =
  let rec up dir =
    let candidate = Filename.concat dir (Filename.concat "examples/programs" name) in
    if Sys.file_exists candidate then candidate
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then failwith ("sample not found: " ^ name)
      else up parent
  in
  up (Sys.getcwd ())

let test_parse_file () =
  let prog = Parse.program_file (sample "jacobi.dsm") in
  Alcotest.(check string) "name" "jacobi2d" prog.Types.prog_name;
  Alcotest.(check bool) "repeats" true prog.repeats;
  Alcotest.(check int) "two phases" 2 (List.length prog.phases);
  (* runs through the pipeline *)
  let env = Env.of_list [ ("N", 16) ] in
  let t = Core.Pipeline.run prog ~env ~h:4 in
  let eff, _ = Core.Pipeline.efficiency t in
  Alcotest.(check bool) "positive efficiency" true (eff > 0.0)

let test_step_and_sink () =
  let prog =
    parse
      {|program steps
param N = 8..32
real A(N)
real B(N)

phase S:
  doall i = 0, N-1 step 2
    A(i) = B(i) work 3
    B(i)
  end
|}
  in
  let ph = List.hd prog.Types.phases in
  (* normalized enumeration honours the step *)
  let env = Env.of_list [ ("N", 8) ] in
  let writes =
    Enumerate.addresses prog env ph ~array:"A" |> List.map fst
  in
  Alcotest.(check (list int)) "strided writes" [ 0; 2; 4; 6 ] writes;
  let b_reads = Enumerate.addresses prog env ph ~array:"B" in
  Alcotest.(check int) "sink + rhs reads" 8 (List.length b_reads);
  Alcotest.(check bool) "all reads" true
    (List.for_all (fun (_, a) -> a = Types.Read) b_reads)

let check_error src fragment =
  match parse src with
  | exception Parse.Error { message; _ } ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        nn = 0 || go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %S (got %S)" fragment message)
        true (contains message fragment)
  | _ -> Alcotest.fail "expected a parse error"

let test_errors () =
  check_error {|program x
real A(10)
phase P:
  doall i = 0, 9
    B(i) = A(i)
  end
|} "not a declared array";
  check_error {|program x
real A(10)
phase P:
  doall i = 0, 9
    A(A(i)) = A(i)
  end
|} "subscript";
  check_error {|program x
real A(10)
phase P:
  doall i = 0, 9
    A(i) = 3 ^ i
  end
|} "exponent";
  check_error "program x\n" "no phases"

let test_lexer_tokens () =
  let lx = Lexer.of_string "do 2**3 .. ^ ! comment\nA_1" in
  let toks = ref [] in
  let rec go () =
    match Lexer.next lx with
    | Lexer.EOF -> ()
    | t ->
        toks := t :: !toks;
        go ()
  in
  go ();
  Alcotest.(check int) "token count" 8 (List.length !toks)

(* ------------------------------------------------------------------ *)
(* Unparse round trip *)

let same_events prog_a prog_b env =
  List.length prog_a.Types.phases = List.length prog_b.Types.phases
  && List.for_all2
       (fun a b ->
         List.for_all
           (fun (d : Types.array_decl) ->
             let ea = Enumerate.addresses prog_a env a ~array:d.name in
             let eb = Enumerate.addresses prog_b env b ~array:d.name in
             List.sort compare ea = List.sort compare eb)
           prog_a.arrays)
       prog_a.phases prog_b.phases

let test_roundtrip_registry () =
  List.iter
    (fun (e : Codes.Registry.entry) ->
      let text = Unparse.to_string e.program in
      match Parse.program text with
      | prog ->
          Alcotest.(check bool) (e.name ^ " roundtrip") true
            (same_events e.program prog (e.env_of_size 3))
      | exception Parse.Error { line; message } ->
          Alcotest.fail
            (Printf.sprintf "%s: unparsed text fails to parse at line %d: %s"
               e.name line message))
    Codes.Registry.all

let gen_simple_program =
  let open QCheck.Gen in
  let* n = int_range 4 12 in
  let* stride = int_range 1 3 in
  let* off = int_range 0 3 in
  let* work = int_range 1 9 in
  let* inner = int_range 1 4 in
  let v = Expr.var and i = Expr.int in
  let idx =
    Expr.add (Expr.mul (i stride) (v "x")) (Expr.add (v "y") (i off))
  in
  return
    (Build.program ~name:"rt" ~params:Assume.empty
       ~arrays:[ Build.array "A" [ i 200 ]; Build.array "B" [ i 200 ] ]
       [
         Build.phase "P"
           (Build.doall "x" ~lo:(i 0) ~hi:(i (Stdlib.( - ) n 1))
              [
                Build.do_ "y" ~lo:(i 0) ~hi:(i (Stdlib.( - ) inner 1))
                  [
                    Build.assign ~work
                      [ Build.read "B" [ idx ]; Build.write "A" [ idx ] ];
                  ];
              ]);
       ])

let prop_roundtrip_random =
  QCheck.Test.make ~name:"parse(unparse(p)) preserves events" ~count:60
    (QCheck.make gen_simple_program ~print:Unparse.to_string)
    (fun prog ->
      match Parse.program (Unparse.to_string prog) with
      | parsed -> same_events prog parsed Env.empty
      | exception Parse.Error _ -> false)

(* Subroutines and calls: the inter-procedural path from text. *)
let test_sub_call () =
  let prog = Parse.program_file (sample "reshape_calls.dsm") in
  Alcotest.(check (list string)) "phases spliced in order"
    [ "INIT"; "C1_SMOOTH"; "C2_SMOOTH"; "USE" ]
    (List.map (fun (p : Types.phase) -> p.phase_name) prog.phases);
  (* the two calls touch disjoint halves of G2 *)
  let env = Env.of_list [ ("N", 8); ("M", 8) ] in
  let c1 = List.nth prog.phases 1 and c2 = List.nth prog.phases 2 in
  let touches ph =
    Enumerate.addresses prog env ph ~array:"G2"
    |> List.map fst |> List.sort_uniq compare
  in
  let t1 = touches c1 and t2 = touches c2 in
  Alcotest.(check bool) "disjoint halves" true
    (List.for_all (fun a -> not (List.mem a t2)) t1);
  Alcotest.(check bool) "second half shifted by N*M" true
    (List.for_all (fun a -> a >= 64) t2);
  (* full pipeline + dataflow validation *)
  let t = Core.Pipeline.run prog ~env ~h:4 in
  let v = Dsmsim.Validate.run t.lcg t.plan in
  Alcotest.(check int) "no stale reads" 0 v.stale

let test_sub_errors () =
  check_error {|program x
real G(10)
sub s(A(4))
phase P:
  doall i = 0, 3
    A(i) = A(i)
  end
endsub
call s(G, G)
|} "expects 1 arguments";
  check_error {|program x
real G(10)
call nope(G)
|} "unknown subroutine"

(* ------------------------------------------------------------------ *)
(* Hostile inputs: whatever the bytes, the frontend either parses or
   raises [Parse.Error] - never any other exception - and the total
   wrapper [Core.Pipeline.parse_program] turns every failure into a
   positioned FRONTEND-PARSE diagnostic. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let hostile_corpus () =
  let base = read_file (sample "jacobi.dsm") in
  let n = String.length base in
  (* truncations at many offsets *)
  let truncations =
    List.init ((n / 7) + 1) (fun i -> String.sub base 0 (min n (i * 7)))
  in
  let st = Random.State.make [| 0xbad; 0xf00d |] in
  (* random garbage, raw and spliced into valid source *)
  let garbage =
    List.init 40 (fun _ ->
        String.init
          (Random.State.int st 200)
          (fun _ -> Char.chr (Random.State.int st 256)))
  in
  let spliced =
    List.init 40 (fun _ ->
        let cut = Random.State.int st (n + 1) in
        let len = Random.State.int st 8 in
        String.sub base 0 cut
        ^ String.init len (fun _ -> Char.chr (Random.State.int st 256))
        ^ String.sub base cut (n - cut))
  in
  let nuls = [ "\000"; "program x\000y\nreal A(4)\n"; base ^ "\000" ] in
  let huge =
    [
      "program x\nreal A(99999999999999999999999)\n";
      "program x\nparam N = 1..123456789123456789123456789\n";
    ]
  in
  let deep =
    let parens k = String.make k '(' ^ "i" ^ String.make k ')' in
    [
      "program x\nreal A(10)\nphase P:\ndo i = 0, 9\n  A" ^ parens 5000
      ^ " = 0\nend\n";
      "program x\nreal A(10)\nphase P:\ndo i = 0, 9\n  A(2"
      ^ String.concat "" (List.init 5000 (fun _ -> "^2"))
      ^ ") = 0\nend\n";
    ]
  in
  let unterminated =
    [
      "program x\nreal A(4)\nphase P:\ndo i = 0, 3\n  A(i) = 0\n";
      "program x\nreal A(4)\nphase P:\ndoall i = 0, 3\n";
      "program x\nsub s(A(4))\nphase P:\ndo i = 0, 3\n  A(i) = 0\nend\n";
      "program x\nreal A(4)\nphase P:\ndo i = 0, 3\n  A(i";
      "program";
      "";
    ]
  in
  truncations @ garbage @ spliced @ nuls @ huge @ deep @ unterminated

let test_hostile_inputs () =
  let cases = hostile_corpus () in
  Alcotest.(check bool) "corpus is substantial" true (List.length cases > 80);
  List.iteri
    (fun i src ->
      let tag = Printf.sprintf "hostile[%d]" i in
      (* Only Parse.Error may escape the raw parser. *)
      (match Parse.program src with
      | (_ : Types.program) -> ()
      | exception Parse.Error _ -> ()
      | exception e ->
          Alcotest.fail
            (Printf.sprintf "%s: unexpected exception %s" tag
               (Printexc.to_string e)));
      (* And the total wrapper never raises at all; on failure it
         returns None with a positioned Frontend-stage diagnostic. *)
      let diags = Core.Diag.collector () in
      match Core.Pipeline.parse_program ~diags ~where:tag src with
      | Some _ -> Alcotest.(check int) (tag ^ " clean") 0 (Core.Diag.count diags)
      | None -> (
          match Core.Diag.to_list diags with
          | [ d ] ->
              Alcotest.(check string) (tag ^ " code") "FRONTEND-PARSE" d.code;
              Alcotest.(check bool) (tag ^ " positioned") true
                (match d.where with
                | Some w ->
                    String.length w > String.length tag
                    && String.sub w 0 (String.length tag) = tag
                | None -> false)
          | l ->
              Alcotest.fail
                (Printf.sprintf "%s: expected exactly one diagnostic, got %d"
                   tag (List.length l))))
    cases

(* Every shipped .dsm sample parses and analyzes. *)
let test_all_samples_parse () =
  let dir = Filename.dirname (sample "jacobi.dsm") in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".dsm")
  in
  Alcotest.(check bool) "several samples" true (List.length files >= 10);
  List.iter
    (fun f ->
      match Parse.program_file (Filename.concat dir f) with
      | prog ->
          Alcotest.(check bool) (f ^ " has phases") true (prog.phases <> [])
      | exception Parse.Error { line; message } ->
          Alcotest.fail (Printf.sprintf "%s:%d: %s" f line message))
    files

let () =
  Alcotest.run "frontend"
    [
      ( "parse",
        [
          Alcotest.test_case "tfft2 structure" `Quick test_parse_tfft2;
          Alcotest.test_case "tfft2 semantics = DSL" `Quick test_tfft2_semantics;
          Alcotest.test_case "tfft2 descriptor" `Quick test_tfft2_descriptor;
          Alcotest.test_case "file + pipeline" `Quick test_parse_file;
          Alcotest.test_case "step loops and sinks" `Quick test_step_and_sink;
        ] );
      ( "errors",
        [
          Alcotest.test_case "diagnostics" `Quick test_errors;
          Alcotest.test_case "lexer" `Quick test_lexer_tokens;
          Alcotest.test_case "hostile inputs" `Quick test_hostile_inputs;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "registry codes" `Quick test_roundtrip_registry;
          Alcotest.test_case "all shipped samples parse" `Quick
            test_all_samples_parse;
          Alcotest.test_case "sub/call reshaping" `Quick test_sub_call;
          Alcotest.test_case "sub/call errors" `Quick test_sub_errors;
          QCheck_alcotest.to_alcotest prop_roundtrip_random;
        ] );
    ]
