(** Array Reference Descriptors (paper, Sec. 2).

    The ARD of the s-th reference to array X in phase F_k is the tuple
    (alpha, delta, lambda, tau): per enclosing loop, the iteration count
    [alpha_j = (phi(hi_j) - phi(lo_j)) / delta_j + 1], the absolute
    stride [delta_j = |phi(i_j + 1) - phi(i_j)|], the stride sign
    [lambda_j], and the offset [tau = phi] at all loop lower bounds.
    Strides and counts are symbolic and may depend on other loop
    indices (the paper's [J * 2^(L-1)] stride in TFFT2).

    When a subscript is not uniform in its own index (stride varies with
    the index itself, e.g. a quadratic subscript) no LMAD exists; the
    reference degrades to an inexact whole-array descriptor, which every
    downstream consumer treats conservatively. *)

open Symbolic
open Ir

type dim = {
  alpha : Expr.t;  (** iteration count (>= 1) *)
  stride : Expr.t;  (** absolute stride; zero for loop-invariant dims *)
  sign : int;  (** +1 / -1; +1 for zero strides *)
  vars : string list;  (** loop vars this dim accounts for (provenance) *)
  uniform : bool;
      (** false when the stride depends on its own loop index (the
          paper's [J*2^(L-1)] stride for the [L] loop of TFFT2) - the
          descriptor is then symbolic rather than rectangular *)
}

type t = {
  array : string;
  dims : dim list;  (** one per nest loop, outermost first *)
  offset : Expr.t;
  mix : Access_mix.t;
  exact : bool;  (** false for the whole-array fallback *)
  phi : Expr.t;  (** linearized subscript (provenance) *)
  par_var : string option;  (** parallel loop var of the owning phase *)
}

exception Unsupported
(** Raised internally while a dimension is analyzed; {!of_site} catches
    it and degrades to {!whole_array}.  Exported so callers can treat
    an escape (a bug) as a recoverable analysis failure. *)

val key : t -> Artifact.Key.t
(** Structural artifact key over the full descriptor tuple. *)

val digest : t -> int
(** Stable structural digest, [Artifact.Key.hash] of {!key}. *)

val of_site : Phase.t -> Phase.site -> t
(** Builds the descriptor of one reference site; normalizes every
    {e sequential} dimension to a positive direction (folding the span
    into the offset), keeping the sign only on the parallel dimension
    where it encodes increasing/decreasing access - what reverse
    storage symmetry needs. *)

val whole_array : Phase.t -> array:string -> size:Expr.t -> mix:Access_mix.t -> t
(** The conservative fallback: stride-1 coverage of the full array. *)

val par_dim : t -> dim option
(** The dimension of the parallel loop, if the phase has one. *)

val seq_dims : t -> dim list
(** All non-parallel dims with non-zero stride. *)

val span : dim -> Expr.t
(** [(alpha - 1) * stride]. *)

val pp : Format.formatter -> t -> unit
