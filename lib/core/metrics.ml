(** Pipeline-level entry point to the process-wide metrics registry.

    The registry itself lives at the bottom of the dependency stack
    ({!Symbolic.Metrics}) so the symbolic/descriptor hot kernels can
    report into it; this module re-exports it under [Core] for the
    drivers (CLI [--profile], bench) that consume whole-pipeline
    snapshots.  See DESIGN.md section 12. *)

include Symbolic.Metrics
