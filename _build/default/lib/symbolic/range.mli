(** Symbolic range analysis by monotone bound substitution.

    To bound an expression over a block of loop indices (e.g. the reach
    of a subscript function over the sequential loops of a nest), each
    index is eliminated innermost-first: the index is replaced by its
    upper or lower bound expression according to the monotonicity of the
    current expression in that index.  Monotonicity is established by
    {!Probe} sampling, and the final symbolic bound is re-validated by
    sampling against the original expression, so an incorrect bound is
    reported as [None] (callers then fall back to conservative
    behaviour) rather than silently used. *)

type direction = Max | Min

val eliminate :
  Assume.t -> direction -> over:string list -> Expr.t -> Expr.t option
(** [eliminate asm dir ~over e] returns a symbolic upper (resp. lower)
    bound of [e] over all assignments of the variables in [over], as an
    expression in the remaining variables.  [over] must be a subset of
    [Assume.vars asm]; elimination proceeds in reverse declaration
    order so that substituted bounds only mention earlier variables. *)

val maximize : Assume.t -> over:string list -> Expr.t -> Expr.t option
val minimize : Assume.t -> over:string list -> Expr.t -> Expr.t option

val monotonicity :
  Assume.t -> string -> Expr.t -> [ `Inc | `Dec | `Const | `Mixed ]
(** Sampled monotonicity of the expression in one variable, everything
    else drawn from the assumption domain. *)
