lib/ir/build.ml: Expr Symbolic Types
