lib/dsmsim/validate.mli: Comm Format Ilp Lcg Locality
