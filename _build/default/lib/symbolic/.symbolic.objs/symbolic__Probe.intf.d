lib/symbolic/probe.mli: Assume Env Expr
