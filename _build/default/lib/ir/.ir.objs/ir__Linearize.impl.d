lib/ir/linearize.ml: Expr List Symbolic
