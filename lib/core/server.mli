(** [dsmloc serve]: a hardened, warm analysis daemon.

    The daemon accepts {!Frontend.Wire} request frames - surface
    language programs plus [%]-directives - over a Unix-domain socket
    (or stdin/stdout in [--stdio] mode), dispatches them onto a
    persistent recycling {!Pool.Server} worker fleet, and keeps the
    expensive per-process state ({!Symbolic.Expr} interning and the
    {!Artifact} stores) warm across requests: a repeated program is
    answered from the digest-keyed response artifact, an edited one
    re-analyzes only the phases whose {!Ir.Types.phase_context_key}
    digests changed.

    Robustness contract (DESIGN.md section 15):
    - {b total wire decoding}: a corrupt length prefix, oversized or
      truncated frame yields a structured [SERVE-BAD-FRAME] reply (and
      connection close), never a multi-GB allocation or a parser crash;
      slow-trickle frames are accumulated non-blockingly and cannot
      stall other connections;
    - {b per-request deadlines}: a request carrying [%deadline] (or the
      server default) that exceeds its budget - queued or in flight -
      gets a [SERVE-DEADLINE] reply; a hung worker is SIGKILLed and
      replaced (crashes were already isolated; deadlines close the
      stuck-loop gap);
    - {b bounded admission}: past [queue_cap] queued requests the
      daemon sheds with [SERVE-OVERLOAD] plus a retry-after hint
      instead of buffering unboundedly;
    - {b worker recycling}: a worker that served [max_worker_jobs]
      requests or crossed the RSS watermark is replaced by a fresh fork
      with clean analysis state, so memory stays bounded over any
      request count;
    - {b graceful drain}: SIGTERM/SIGINT stop accepting, finish
      in-flight and queued work within [drain_deadline] seconds
      ([SERVE-DRAIN] past it), flush replies, emit a final metrics
      snapshot on stderr, and remove the socket. *)

type config = {
  socket : string option;  (** [None] = stdio mode *)
  workers : int;
  queue_cap : int;  (** admission-queue bound (backpressure) *)
  default_deadline : float option;
      (** per-request budget (seconds) when the request names none *)
  max_frame : int;  (** wire frame cap, bytes *)
  max_worker_jobs : int;  (** recycle a worker after this many requests *)
  max_worker_rss_kb : int;  (** ... or past this resident-set watermark *)
  drain_deadline : float;  (** seconds granted to in-flight work on shutdown *)
  max_connections : int;  (** concurrent client connections *)
  test_hooks : bool;
      (** honour the [%hang]/[%crash] request directives (torture/CI
          only; ignored - stripped - otherwise) *)
  verbose : bool;  (** per-request log lines on stderr *)
}

val default_config : config
(** 4 workers, queue 64, no default deadline, 16 MiB frames, recycle at
    256 requests / 1 GiB RSS, 5 s drain, 64 connections, hooks off. *)

val run : ?diags:Diag.collector -> config -> unit
(** Run the daemon until SIGTERM/SIGINT (or, in stdio mode, EOF on
    stdin), then drain and return.  Collects daemon-side diagnostics
    ([SERVE-*]) into [diags] when given.
    @raise Unix.Unix_error when the socket cannot be bound. *)

(** Client side of the wire protocol: used by [dsmloc request], the
    tests and the CI smoke script. *)
module Client : sig
  val request :
    socket:string ->
    ?timeout:float ->
    Frontend.Wire.request ->
    (Frontend.Wire.response, string) result
  (** One round trip: connect, send the framed request, decode the
      framed response ([timeout] seconds for the whole trip, default
      60).  [Error] is transport-level (refused, timeout, bad frame);
      request-level failures come back as a response with a non-[Ok]
      status. *)

  val raw :
    socket:string ->
    ?timeout:float ->
    bytes ->
    (Frontend.Wire.response, string) result
  (** Send pre-encoded bytes verbatim (tests use this to deliver
      corrupt frames) and decode one response frame. *)
end
