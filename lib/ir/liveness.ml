open Symbolic
open Types

type attr = R | W | RW | P

let equal_attr a b =
  match (a, b) with
  | R, R | W, W | RW, RW | P, P -> true
  | (R | W | RW | P), _ -> false

let attr_to_string = function R -> "R" | W -> "W" | RW -> "R/W" | P -> "P"
let pp_attr ppf a = Format.pp_print_string ppf (attr_to_string a)

let static_attr _prog ph ~array =
  let refs =
    stmt_refs (Loop ph.nest) |> List.filter (fun r -> String.equal r.array array)
  in
  let has k = List.exists (fun r -> equal_access r.access k) refs in
  match (has Read, has Write) with
  | true, true -> RW
  | true, false -> R
  | false, true -> W
  | false, false -> R

let def_before_use_enum prog env ph ~array =
  (* Per parallel iteration, every read must hit a location already
     written by the same iteration. *)
  let written = Hashtbl.create 64 in
  let current = ref None in
  let ok = ref true in
  Enumerate.iter prog env ph ~f:(fun ~par ~array:a ~addr access ~work:_ ->
      if String.equal a array then begin
        if par <> !current then begin
          Hashtbl.reset written;
          current := par
        end;
        match access with
        | Write -> Hashtbl.replace written addr ()
        | Read -> if not (Hashtbl.mem written addr) then ok := false
      end);
  !ok

(* ------------------------------------------------------------------ *)
(* Closed-form liveness.  The symbolic rules answer only when certain
   (their verdict must equal the enumerating oracle's, since attributes
   feed the printed reports); anything subtler returns [None] and the
   caller falls back to enumeration, counted as a fragment exit.       *)

let equal_par a b =
  match (a, b) with
  | Shape.Outside, Shape.Outside -> true
  | Shape.Strided x, Shape.Strided y -> x = y
  | Shape.Fixed x, Shape.Fixed y -> x = y
  | (Shape.Outside | Shape.Strided _ | Shape.Fixed _), _ -> false

(* [def_before_use] in closed form.  Sound cases:
   - no reads on the array: vacuously true;
   - the first emitting site on the array is a read: its first event is
     the first event on the array in the whole phase, so it cannot be
     covered - definitely false;
   - every read site has a strictly-earlier write site of *identical*
     shape (base, parallel shape, sequential dims): then at every
     iteration the read's address was written earlier in the same
     parallel iteration - definitely true.  For sites outside the
     parallel loop the per-iteration write table is reset when the
     loop's event group starts and ends, so the covering write must
     additionally sit on the same side of the parallel loop: no
     emitting in-loop site may separate the pair. *)
let def_before_use_symbolic prog env ph ~array =
  match Shape.of_phase prog env ph with
  | None -> None
  | Some t -> (
      try
        let sites =
          List.mapi (fun i s -> (i, s)) t.sites
          |> List.filter (fun (_, s) -> Shape.emits t s)
        in
        let mine =
          List.filter (fun (_, s) -> String.equal s.Shape.array array) sites
        in
        match mine with
        | [] -> Some true
        | (_, first) :: _ when Types.equal_access first.access Types.Read ->
            Some false
        | _ ->
            let same_side wi ri =
              List.for_all
                (fun (j, s) ->
                  j <= wi || j >= ri
                  || match s.Shape.par with
                     | Shape.Outside -> true
                     | Shape.Strided _ | Shape.Fixed _ -> false)
                sites
            in
            let covered (ri, (r : Shape.site)) =
              Types.equal_access r.access Types.Write
              || List.exists
                   (fun (wi, (w : Shape.site)) ->
                     wi < ri
                     && Types.equal_access w.access Types.Write
                     && w.base = r.base
                     && equal_par w.par r.par
                     && w.seq = r.seq
                     && (match r.par with
                        | Shape.Outside -> same_side wi ri
                        | Shape.Strided _ | Shape.Fixed _ -> true))
                   mine
            in
            if List.for_all covered mine then Some true else None
      with Lattice.Overflow -> None)

let dead_after_enum prog env k ~array =
  (* Forward scan over the phases executed after phase k (wrapping once
     when the program repeats): a location written by k is live if some
     later phase reads it before overwriting it. *)
  let exposed = Hashtbl.create 64 in
  (* start: all addresses phase k writes *)
  Enumerate.iter prog env (List.nth prog.phases k) ~f:(fun ~par:_ ~array:a ~addr access ~work:_ ->
      if String.equal a array && equal_access access Write then
        Hashtbl.replace exposed addr ());
  let n = List.length prog.phases in
  let order =
    (* Phases after k in execution order; with repetition the whole
       program runs again, including phase k's predecessors and k itself. *)
    let tail = List.init (n - k - 1) (fun i -> k + 1 + i) in
    if prog.repeats then tail @ List.init (n - List.length tail) (fun i -> i mod n)
    else tail
  in
  let live = ref false in
  List.iter
    (fun g ->
      if (not !live) && Hashtbl.length exposed > 0 then begin
        let killed = Hashtbl.create 64 in
        Enumerate.iter prog env (List.nth prog.phases g)
          ~f:(fun ~par:_ ~array:a ~addr access ~work:_ ->
            if String.equal a array then
              match access with
              | Read ->
                  if Hashtbl.mem exposed addr && not (Hashtbl.mem killed addr)
                  then live := true
              | Write -> Hashtbl.replace killed addr ());
        Hashtbl.iter (fun addr () -> Hashtbl.remove exposed addr) killed
      end)
    order;
  (* A non-repeating program's arrays are outputs: values that survive
     to program exit are live. *)
  (not !live) && (prog.repeats || Hashtbl.length exposed = 0)

(* [dead_after] in closed form.  The exposed set is carried as an exact
   list of boxes; each later phase either certainly leaves it alone
   (all its reads and writes provably disjoint), certainly reads it
   while unable to kill it first (some read definitely intersects and
   the phase writes nothing on the array), or certainly erases it
   (every exposed box inside some write box).  Any subtler interaction
   - partial kills, possible-but-unproven overlap - returns [None]. *)
let dead_after_symbolic prog env k ~array =
  let exception Subtle in
  try
    let shape_of ph =
      match Shape.of_phase prog env ph with
      | Some t -> t
      | None -> raise Subtle
    in
    let boxes_of t acc =
      List.filter_map
        (fun (s : Shape.site) ->
          if
            String.equal s.array array
            && Types.equal_access s.access acc
            && Shape.emits t s
          then Shape.box t s
          else None)
        t.sites
    in
    let tk = shape_of (List.nth prog.phases k) in
    let exposed = ref (boxes_of tk Types.Write) in
    let n = List.length prog.phases in
    let order =
      let tail = List.init (n - k - 1) (fun i -> k + 1 + i) in
      if prog.repeats then
        tail @ List.init (n - List.length tail) (fun i -> i mod n)
      else tail
    in
    let all_disjoint xs ys =
      List.for_all
        (fun x ->
          List.for_all
            (fun y ->
              match Lattice.disjoint x y with
              | Lattice.Yes -> true
              | Lattice.No | Lattice.Unknown -> false)
            ys)
        xs
    in
    let some_certainly_meets xs ys =
      List.exists
        (fun x ->
          List.exists
            (fun y ->
              match Lattice.disjoint x y with
              | Lattice.No -> true
              | Lattice.Yes | Lattice.Unknown -> false)
            ys)
        xs
    in
    let live = ref false in
    List.iter
      (fun g ->
        if (not !live) && !exposed <> [] then begin
          let tg = shape_of (List.nth prog.phases g) in
          let reads = boxes_of tg Types.Read
          and writes = boxes_of tg Types.Write in
          if all_disjoint reads !exposed then
            if all_disjoint writes !exposed then ()
            else if
              List.for_all
                (fun e ->
                  List.exists
                    (fun w ->
                      match Lattice.subset e w with
                      | Lattice.Yes -> true
                      | Lattice.No | Lattice.Unknown -> false)
                    writes)
                !exposed
            then exposed := []
            else raise Subtle
          else if writes = [] && some_certainly_meets reads !exposed then
            (* nothing in this phase can kill an address first *)
            live := true
          else raise Subtle
        end)
      order;
    Some ((not !live) && (prog.repeats || !exposed = []))
  with Subtle | Lattice.Overflow -> None

let def_before_use prog env ph ~array =
  match !Lattice.mode with
  | Lattice.Enumerated_only -> def_before_use_enum prog env ph ~array
  | Lattice.Auto | Lattice.Symbolic_only -> (
      match def_before_use_symbolic prog env ph ~array with
      | Some b -> b
      | None ->
          Lattice.note_fallback ~stage:"liveness"
            (array ^ " def-before-use in " ^ ph.phase_name);
          def_before_use_enum prog env ph ~array)

let dead_after prog env k ~array =
  match !Lattice.mode with
  | Lattice.Enumerated_only -> dead_after_enum prog env k ~array
  | Lattice.Auto | Lattice.Symbolic_only -> (
      match dead_after_symbolic prog env k ~array with
      | Some b -> b
      | None ->
          Lattice.note_fallback ~stage:"liveness" (array ^ " dead-after");
          dead_after_enum prog env k ~array)

let default_envs prog =
  (* Small, deterministic parameter samples. *)
  let st = Random.State.make [| 7; 13; 2029 |] in
  List.init 3 (fun _ -> Assume.sample ~state:st prog.params)

let attr ?envs prog k ~array =
  let ph = List.nth prog.phases k in
  match static_attr prog ph ~array with
  | R -> R
  | W | RW -> (
      let envs = match envs with Some e -> e | None -> default_envs prog in
      let privatizable =
        envs <> []
        && List.for_all
             (fun env ->
               def_before_use prog env ph ~array && dead_after prog env k ~array)
             envs
      in
      if privatizable then P
      else match static_attr prog ph ~array with W -> W | _ -> RW)
  | P -> assert false

let attrs ?envs prog =
  let arrays = List.map (fun (a : array_decl) -> a.name) prog.arrays in
  let envs = match envs with Some e -> e | None -> default_envs prog in
  List.map
    (fun name ->
      ( name,
        Array.init (List.length prog.phases) (fun k -> attr ~envs prog k ~array:name)
      ))
    arrays
