open Symbolic

type outcome =
  | Optimal of { value : Qnum.t; point : int array }
  | Infeasible
  | Unbounded

let is_integral q = Qnum.is_integer q

let solve_budgeted ?(max_nodes = 100_000) (p : Lp.problem) : outcome * bool =
  let best = ref None in
  let nodes = ref 0 in
  let exhausted = ref false in
  let better value =
    match !best with
    | None -> true
    | Some (bv, _) -> Qnum.compare value bv > 0
  in
  let rec branch (extra : Lp.constr list) =
    incr nodes;
    (* Budget exceeded: stop expanding this subtree but keep whatever
       incumbent the search has found so far - the caller decides how
       to degrade (the pipeline warns and falls back to BLOCK). *)
    if !nodes > max_nodes then exhausted := true
    else
      match Lp.solve { p with constraints = p.constraints @ extra } with
      | Lp.Infeasible -> ()
      | Lp.Unbounded -> raise Exit
      | Lp.Optimal { value; point } ->
          if better value then begin
            (* Most fractional variable. *)
            let frac = ref None in
            Array.iteri
              (fun j x ->
                if not (is_integral x) then
                  let f =
                    Qnum.sub x (Qnum.of_int (Qnum.floor x))
                  in
                  let dist =
                    Qnum.abs (Qnum.sub f (Qnum.make 1 2))
                  in
                  match !frac with
                  | None -> frac := Some (j, x, dist)
                  | Some (_, _, d) ->
                      if Qnum.compare dist d < 0 then frac := Some (j, x, dist))
              point;
            match !frac with
            | None ->
                (* Integral optimum of this node. *)
                if better value then
                  best :=
                    Some
                      ( value,
                        Array.map (fun q -> Qnum.to_int q) point )
            | Some (j, x, _) ->
                let unit j n =
                  Array.init n (fun k -> if k = j then Qnum.one else Qnum.zero)
                in
                let fl = Qnum.of_int (Qnum.floor x) in
                branch
                  (Lp.constr (unit j p.n_vars) Lp.Le fl :: extra);
                branch
                  (Lp.constr (unit j p.n_vars) Lp.Ge (Qnum.add fl Qnum.one)
                  :: extra)
          end
  in
  try
    branch [];
    let outcome =
      match !best with
      | Some (value, point) -> Optimal { value; point }
      | None -> Infeasible
    in
    (outcome, !exhausted)
  with Exit -> (Unbounded, !exhausted)

let solve ?max_nodes p = fst (solve_budgeted ?max_nodes p)
