open Locality

type result = {
  p : int array;
  d_cost : float;
  c_cost : float;
  objective : float;
  broken : (string * int * int) list;
  budget_exhausted : bool;
}

(* Cap on the representative values enumerated per component; a
   component whose feasible window extends past it is only partially
   searched, which the result records as budget exhaustion. *)
let t_budget = 200_000

let communication_words (lcg : Lcg.t) ~array ~phase_idx =
  match
    List.find_opt (fun (g : Lcg.graph) -> String.equal g.array array) lcg.graphs
  with
  | None -> 0
  | Some g -> (
      match Lcg.node_of_phase g ~phase_idx with
      | None -> 0
      | Some node -> (
          let whole_array () =
            try
              Symbolic.Env.eval lcg.env
                (Ir.Linearize.size
                   ~dims:(Ir.Types.array_decl lcg.prog array).dims)
            with
            | Symbolic.Expr.Non_integral _ | Symbolic.Env.Unbound _
            | Symbolic.Qnum.Overflow ->
                0
          in
          let enum () =
            try
              Hashtbl.length
                (Descriptor.Region.addresses lcg.env node.pd ~par:None)
            with Descriptor.Region.Not_rectangular _ -> whole_array ()
          in
          match !Symbolic.Lattice.mode with
          | Symbolic.Lattice.Enumerated_only -> enum ()
          | Symbolic.Lattice.Auto | Symbolic.Lattice.Symbolic_only -> (
              (* Setalg mirrors enumeration's Not_rectangular failures,
                 so the whole-array degradation fires identically. *)
              match Descriptor.Setalg.card lcg.env node.pd ~par:None with
              | Some c -> c
              | None ->
                  Symbolic.Lattice.note_fallback ~stage:"solve-words"
                    (array ^ " region volume");
                  enum ()
              | exception Descriptor.Region.Not_rectangular _ ->
                  whole_array ())))

(* The affine-rational value of a variable in terms of the component
   representative t: p = (num * t + off) / den. *)
type affine = { num : int; off : int; den : int }

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Keep affines in lowest terms with positive denominator so that equal
   rationals compare structurally equal. *)
let reduce (a : affine) =
  let s = if a.den < 0 then -1 else 1 in
  let g = gcd (gcd a.num a.off) a.den in
  let g = if g = 0 then 1 else g * s in
  { num = a.num / g; off = a.off / g; den = a.den / g }

let eval_affine (a : affine) t =
  let v = (a.num * t) + a.off in
  if v mod a.den <> 0 then None else Some (v / a.den)

let solve_timer = Symbolic.Metrics.timer "ilp.solve"

let solve (model : Model.t) (m : Cost.machine) : result =
  Symbolic.Metrics.with_timer solve_timer @@ fun () ->
  let lcg = model.lcg in
  let n = model.n_phases in
  let bound = Array.make n 1 in
  List.iter (fun (b : Model.bound) -> bound.(b.k) <- b.hi) model.bounds;
  (* Adjacency from locality equalities: a p_k = b p_g + c. *)
  let adj = Array.make n [] in
  List.iter
    (fun (l : Model.locality) ->
      adj.(l.k) <- (l.g, `Fwd l) :: adj.(l.k);
      adj.(l.g) <- (l.k, `Bwd l) :: adj.(l.g))
    model.locality;
  let comp = Array.make n (-1) in
  let exprs : affine array = Array.make n { num = 1; off = 0; den = 1 } in
  let broken = ref [] in
  let n_comp = ref 0 in
  (* BFS assigning affine expressions in t per component. *)
  for root = 0 to n - 1 do
    if comp.(root) < 0 then begin
      let c = !n_comp in
      incr n_comp;
      comp.(root) <- c;
      exprs.(root) <- { num = 1; off = 0; den = 1 };
      let q = Queue.create () in
      Queue.add root q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        List.iter
          (fun (v, rel) ->
            let derived =
              reduce @@
              (* from p_u = (nu t + ou)/du *)
              let e = exprs.(u) in
              match rel with
              | `Fwd (l : Model.locality) ->
                  (* a p_u = b p_v + c  =>  p_v = (a p_u - c) / b *)
                  {
                    num = l.ai * e.num;
                    off = (l.ai * e.off) - (l.ci * e.den);
                    den = l.bi * e.den;
                  }
              | `Bwd (l : Model.locality) ->
                  (* a p_v = b p_u + c  =>  p_v = (b p_u + c) / a *)
                  {
                    num = l.bi * e.num;
                    off = (l.bi * e.off) + (l.ci * e.den);
                    den = l.ai * e.den;
                  }
            in
            if comp.(v) < 0 then begin
              comp.(v) <- c;
              exprs.(v) <- derived;
              Queue.add v q
            end
            else if exprs.(v) <> derived then begin
              (* Inconsistent cycle: give up on this relation. *)
              let (l : Model.locality) =
                match rel with `Fwd l | `Bwd l -> l
              in
              broken := (l.array, l.k, l.g) :: !broken
            end)
          adj.(u)
      done
    end
  done;
  (* Storage constraints indexed per phase. *)
  let storage_of = Array.make n [] in
  List.iter
    (fun (s : Model.storage) -> storage_of.(s.k) <- s :: storage_of.(s.k))
    model.storage;
  let nodes_of_phase k =
    List.concat_map
      (fun (g : Lcg.graph) ->
        match Lcg.node_of_phase g ~phase_idx:k with
        | Some nd -> [ (g.array, nd) ]
        | None -> [])
      lcg.graphs
  in
  let array_written =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (g : Lcg.graph) ->
        if
          List.exists
            (fun (nd : Lcg.node) ->
              match nd.attr with
              | Ir.Liveness.W | Ir.Liveness.RW | Ir.Liveness.P -> true
              | Ir.Liveness.R -> false)
            g.nodes
        then Hashtbl.replace tbl g.array ())
      lcg.graphs;
    fun a -> Hashtbl.mem tbl a
  in
  (* The t-search below prices every candidate chunking, so the
     per-phase constants (lead node, halo widths, written flags) are
     hoisted out of the loop; only the p-dependent arithmetic stays
     inside. *)
  let phase_nodes = Array.init n nodes_of_phase in
  let frontier_terms =
    Array.map
      (fun nodes ->
        List.filter_map
          (fun (array, (nd : Lcg.node)) ->
            let w = Lcg.halo lcg nd in
            if w > 0 && array_written array then Some (nd.par_n, w) else None)
          nodes)
      phase_nodes
  in
  let d_cost_of k p =
    match phase_nodes.(k) with
    | [] -> 0.0
    | (_, node) :: _ ->
        let imbalance =
          Cost.load_imbalance ~n:node.par_n ~p ~h:m.h ~work:node.work
        in
        (* Frontier traffic: each processor owns ~n/(pH) blocks and per
           writing phase ships two strip messages per block (the
           per-processor costing of Exec.event_time). *)
        let frontier =
          List.fold_left
            (fun acc (par_n, w) ->
              let blocks_per_proc =
                float_of_int par_n
                /. float_of_int (max 1 p)
                /. float_of_int m.h
              in
              acc
              +. (blocks_per_proc
                  *. float_of_int ((2 * m.t_startup) + (4 * w * m.t_word))))
            0.0 frontier_terms.(k)
        in
        imbalance +. frontier
  in
  let feasible_p k p =
    p >= 1 && p <= bound.(k)
    && List.for_all
         (fun (s : Model.storage) -> s.coeff * p <= s.limit)
         storage_of.(k)
  in
  (* Choose t per component minimizing the component's D cost. *)
  let p = Array.make n 1 in
  let budget_exhausted = ref false in
  for c = 0 to !n_comp - 1 do
    let members = List.filter (fun k -> comp.(k) = c) (List.init n Fun.id) in
    let best = ref None in
    let t_max =
      List.fold_left
        (fun acc k ->
          let e = exprs.(k) in
          if e.num = 0 then acc
          else
            (* p_k <= bound implies t <= (bound*den - off)/num *)
            min acc (((bound.(k) * abs e.den) - e.off) / abs e.num))
        1_000_000 members
    in
    if t_max > t_budget then budget_exhausted := true;
    for t = 1 to min t_max t_budget do
      let vals =
        List.map (fun k -> (k, eval_affine exprs.(k) t)) members
      in
      if List.for_all (function _, Some v -> v >= 1 | _, None -> false) vals
      then begin
        let vals = List.map (function k, Some v -> (k, v) | _ -> assert false) vals in
        if List.for_all (fun (k, v) -> feasible_p k v) vals then begin
          let cost =
            List.fold_left (fun acc (k, v) -> acc +. d_cost_of k v) 0.0 vals
          in
          match !best with
          | Some (bc, _) when bc <= cost -> ()
          | _ -> best := Some (cost, vals)
        end
      end
    done;
    match !best with
    | Some (_, vals) -> List.iter (fun (k, v) -> p.(k) <- v) vals
    | None ->
        (* No consistent t: fall back to p=1 and record every L edge
           within the component as broken. *)
        List.iter (fun k -> p.(k) <- min 1 bound.(k)) members;
        List.iter
          (fun (l : Model.locality) ->
            if comp.(l.k) = c then broken := (l.array, l.k, l.g) :: !broken)
          model.locality
  done;
  (* Costs. *)
  let d_cost =
    List.fold_left
      (fun acc k -> acc +. d_cost_of k p.(k))
      0.0
      (List.init n Fun.id)
  in
  let c_edge_cost (g : Lcg.graph) (e : Lcg.edge) =
    let dst = List.nth g.nodes e.dst in
    let words = communication_words lcg ~array:g.array ~phase_idx:dst.phase_idx in
    match dst.sym.overlap with
    | Descriptor.Symmetry.No_overlap -> Cost.redistribution m ~words
    | _ -> Cost.redistribution m ~words +. Cost.frontier m ~words
  in
  let c_cost =
    List.fold_left
      (fun acc (g : Lcg.graph) ->
        List.fold_left
          (fun acc (e : Lcg.edge) ->
            match e.label with
            | Table1.C -> acc +. c_edge_cost g e
            | Table1.L ->
                let nk = (List.nth g.nodes e.src).phase_idx
                and ng = (List.nth g.nodes e.dst).phase_idx in
                if List.mem (g.array, nk, ng) !broken then
                  acc +. c_edge_cost g e
                else acc
            | Table1.D -> acc)
          acc g.edges)
      0.0 lcg.graphs
  in
  { p; d_cost; c_cost; objective = d_cost +. c_cost; broken = !broken;
    budget_exhausted = !budget_exhausted }
