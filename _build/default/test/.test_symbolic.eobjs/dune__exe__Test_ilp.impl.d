test/test_ilp.ml: Alcotest Array Codes Core Cost Distribution Expr Gen Ilp Ilp_solver Ir List Locality Lp Model Probe QCheck QCheck_alcotest Qnum Solve String Symbolic
