open Symbolic
open Ir.Build

let params = Assume.of_list [ ("N", Assume.Int_range (8, 64)) ]

let nN = var "N"
let at r c = (r + (nN * c) : Expr.t)

let phase_resid =
  phase "RESID"
    (doall "c" ~lo:(int 1) ~hi:(nN - int 2)
       [
         do_ "r" ~lo:(int 1) ~hi:(nN - int 2)
           [
             assign ~work:12
               [
                 read "X" [ at (var "r") (var "c") ];
                 read "X" [ at (var "r") (var "c" - int 1) ];
                 read "X" [ at (var "r") (var "c" + int 1) ];
                 read "X" [ at (var "r" - int 1) (var "c") ];
                 read "X" [ at (var "r" + int 1) (var "c") ];
                 write "RX" [ at (var "r") (var "c") ];
               ];
             assign ~work:12
               [
                 read "Y" [ at (var "r") (var "c") ];
                 read "Y" [ at (var "r") (var "c" - int 1) ];
                 read "Y" [ at (var "r") (var "c" + int 1) ];
                 read "Y" [ at (var "r" - int 1) (var "c") ];
                 read "Y" [ at (var "r" + int 1) (var "c") ];
                 write "RY" [ at (var "r") (var "c") ];
               ];
           ];
       ])

(* The residual-norm reduction, parallelized the way Polaris does:
   per-column partial maxima in parallel, then a short sequential
   combine over the N partials. *)
let phase_norm =
  phase "NORM"
    (doall "c" ~lo:(int 1) ~hi:(nN - int 2)
       [
         do_ "r" ~lo:(int 1) ~hi:(nN - int 2)
           [
             assign ~work:2
               [
                 read "RX" [ at (var "r") (var "c") ];
                 read "RY" [ at (var "r") (var "c") ];
                 write "PARTIAL" [ var "c" ];
               ];
           ];
       ])

(* Sequential combine: a genuinely serial phase (no parallel loop). *)
let phase_combine =
  phase "COMBINE"
    (do_ "c" ~lo:(int 1) ~hi:(nN - int 2)
       [ assign ~work:1 [ read "PARTIAL" [ var "c" ] ] ])

let phase_update =
  phase "UPDATE"
    (doall "c" ~lo:(int 1) ~hi:(nN - int 2)
       [
         do_ "r" ~lo:(int 1) ~hi:(nN - int 2)
           [
             assign ~work:4
               [
                 read "RX" [ at (var "r") (var "c") ];
                 read "X" [ at (var "r") (var "c") ];
                 write "X" [ at (var "r") (var "c") ];
               ];
             assign ~work:4
               [
                 read "RY" [ at (var "r") (var "c") ];
                 read "Y" [ at (var "r") (var "c") ];
                 write "Y" [ at (var "r") (var "c") ];
               ];
           ];
       ])

let program =
  program ~repeats:true ~name:"tomcatv" ~params
    ~arrays:
      [
        array "X" [ nN * nN ];
        array "Y" [ nN * nN ];
        array "RX" [ nN * nN ];
        array "RY" [ nN * nN ];
        array "PARTIAL" [ nN ];
      ]
    [ phase_resid; phase_norm; phase_combine; phase_update ]

let env ~n = Env.of_list [ ("N", n) ]
