open Symbolic
open Ir
module Racecheck = Descriptor.Racecheck

exception Failed of Diag.t list

let catalog =
  [
    ( "LINT-MULTI-PARALLEL",
      Diag.Error,
      "more than one loop of a phase is marked parallel" );
    ("LINT-UNDECLARED-ARRAY", Diag.Error, "reference to an undeclared array");
    ( "LINT-SUBSCRIPT",
      Diag.Warning,
      "subscript outside the affine class (or rank mismatch: error)" );
    ( "LINT-UNBOUND-PARAM",
      Diag.Error,
      "bound, subscript or extent mentions an undeclared variable" );
    ("LINT-NONNORMAL", Diag.Info, "loop does not run from 0 with step 1");
    ( "LINT-BOUNDS",
      Diag.Error,
      "sampled access outside the array's declared extent" );
    ("LINT-DEAD-WRITE", Diag.Warning, "array written but never read");
    ( "LINT-RACE",
      Diag.Error,
      "declared parallel loop carries a cross-iteration dependence" );
    ( "LINT-UNCERTIFIED",
      Diag.Info,
      "declared parallel loop neither certified nor refuted" );
    ( "LINT-SYMBOLIC-FALLBACK",
      Diag.Info,
      "analysis left the closed-form symbolic fragment and fell back to \
       address enumeration (emitted by the pipeline, not a lint rule)" );
  ]

let where_loop (ph : Types.phase) v = ph.Types.phase_name ^ "/" ^ v

(* Exceptions descriptor/enumeration machinery may raise on malformed
   or out-of-class programs; lint rules that depend on analysis skip
   the phase on these (the structural rules report the cause). *)
let recoverable = function
  | Phase.Invalid_phase _ | Env.Unbound _ | Expr.Non_integral _ | Not_found
  | Invalid_argument _ | Division_by_zero | Qnum.Overflow
  | Qnum.Division_by_zero ->
      true
  | _ -> false

let default_envs (prog : Types.program) =
  let st = Random.State.make [| 5; 13; 1999 |] in
  List.init 3 (fun _ -> Assume.sample ~state:st prog.Types.params)

(* ------------------------------------------------------------------ *)
(* Structural walks *)

let rec fold_loops f acc (l : Types.loop) =
  let acc = f acc l in
  List.fold_left
    (fun acc -> function Types.Loop i -> fold_loops f acc i | Types.Assign _ -> acc)
    acc l.Types.body

let loop_vars (ph : Types.phase) =
  List.rev (fold_loops (fun acc l -> l.Types.var :: acc) [] ph.Types.nest)

(* Marked parallel loops of a nest, with their Autopar-style paths. *)
let parallel_paths (nest : Types.loop) =
  List.filter
    (fun path ->
      let rec at (l : Types.loop) = function
        | [] -> l
        | k :: rest ->
            let inner =
              List.filter_map
                (function Types.Loop i -> Some i | Types.Assign _ -> None)
                l.Types.body
            in
            at (List.nth inner k) rest
      in
      (at nest path).Types.parallel)
    (Autopar.loop_paths nest)

(* ------------------------------------------------------------------ *)
(* Per-phase structural rules *)

let rule_multi_parallel c (ph : Types.phase) =
  match parallel_paths ph.Types.nest with
  | [] | [ _ ] -> ()
  | paths ->
      Diag.addf c ~severity:Error ~stage:Lint ~where:ph.Types.phase_name
        ~code:"LINT-MULTI-PARALLEL"
        "%d loops marked parallel; a phase admits at most one"
        (List.length paths)

let rule_refs c (prog : Types.program) (ph : Types.phase) =
  let seen = Hashtbl.create 8 in
  let once key f = if not (Hashtbl.mem seen key) then (Hashtbl.add seen key (); f ()) in
  List.iter
    (fun (r : Types.array_ref) ->
      match
        List.find_opt
          (fun (d : Types.array_decl) -> String.equal d.Types.name r.Types.array)
          prog.Types.arrays
      with
      | None ->
          once ("undecl", r.Types.array) (fun () ->
              Diag.addf c ~severity:Error ~stage:Lint ~where:ph.Types.phase_name
                ~code:"LINT-UNDECLARED-ARRAY" "array %s is not declared"
                r.Types.array)
      | Some d ->
          let rank = List.length d.Types.dims in
          let used = List.length r.Types.index in
          if rank <> used then
            once ("rank", r.Types.array) (fun () ->
                Diag.addf c ~severity:Error ~stage:Lint
                  ~where:ph.Types.phase_name ~code:"LINT-SUBSCRIPT"
                  "%s referenced with %d subscripts but declared with rank %d"
                  r.Types.array used rank))
    (Types.stmt_refs (Types.Loop ph.Types.nest))

let rule_unbound c (prog : Types.program) (ph : Types.phase) =
  let known = loop_vars ph @ Assume.vars prog.Types.params in
  let seen = Hashtbl.create 8 in
  let report what e =
    List.iter
      (fun v ->
        if (not (List.mem v known)) && not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          Diag.addf c ~severity:Error ~stage:Lint ~where:(where_loop ph what)
            ~code:"LINT-UNBOUND-PARAM"
            "%s mentions %s, which is neither a loop index nor a declared \
             parameter"
            (Expr.to_string e) v
        end)
      (Expr.vars e)
  in
  ignore
    (fold_loops
       (fun () (l : Types.loop) ->
         report l.Types.var l.Types.lo;
         report l.Types.var l.Types.hi;
         report l.Types.var l.Types.step;
         List.iter
           (function
             | Types.Assign a ->
                 List.iter
                   (fun (r : Types.array_ref) ->
                     List.iter (report l.Types.var) r.Types.index)
                   a.Types.refs
             | Types.Loop _ -> ())
           l.Types.body)
       () ph.Types.nest)

let rule_nonnormal c (ph : Types.phase) =
  ignore
    (fold_loops
       (fun () (l : Types.loop) ->
         if not (Expr.is_zero l.Types.lo && Expr.equal l.Types.step Expr.one)
         then
           Diag.addf c ~severity:Info ~stage:Lint
             ~where:(where_loop ph l.Types.var) ~code:"LINT-NONNORMAL"
             "loop %s runs %s..%s step %s (normalized before analysis)"
             l.Types.var
             (Expr.to_string l.Types.lo)
             (Expr.to_string l.Types.hi)
             (Expr.to_string l.Types.step))
       () ph.Types.nest)

let rule_subscript c (ph : Types.phase) =
  let lvars = loop_vars ph in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (r : Types.array_ref) ->
      List.iter
        (fun e ->
          List.iter
            (fun v ->
              if
                List.mem v lvars
                && Expr.linear_in v e = None
                && not (Hashtbl.mem seen (r.Types.array, v))
              then begin
                Hashtbl.add seen (r.Types.array, v) ();
                Diag.addf c ~severity:Warning ~stage:Lint
                  ~where:(where_loop ph v) ~code:"LINT-SUBSCRIPT"
                  "%s(%s) is non-linear in %s; its descriptor degrades to the \
                   whole array"
                  r.Types.array (Expr.to_string e) v
              end)
            (Expr.vars e))
        r.Types.index)
    (Types.stmt_refs (Types.Loop ph.Types.nest))

(* ------------------------------------------------------------------ *)
(* Sampled rules *)

let rule_bounds c (prog : Types.program) envs (ph : Types.phase) =
  let bad = Hashtbl.create 4 in
  (try
     List.iter
       (fun env ->
         let size =
           let tbl = Hashtbl.create 8 in
           fun array ->
             match Hashtbl.find_opt tbl array with
             | Some s -> s
             | None ->
                 let d = Types.array_decl prog array in
                 let s = Env.eval env (Linearize.size ~dims:d.Types.dims) in
                 Hashtbl.add tbl array s;
                 s
         in
         Enumerate.iter prog env ph ~f:(fun ~par:_ ~array ~addr _ ~work:_ ->
             if (addr < 0 || addr >= size array) && not (Hashtbl.mem bad array)
             then Hashtbl.add bad array addr))
       envs
   with e when recoverable e -> ());
  Hashtbl.iter
    (fun array addr ->
      Diag.addf c ~severity:Error ~stage:Lint ~where:ph.Types.phase_name
        ~code:"LINT-BOUNDS"
        "access to %s at flat address %d, outside its declared extent" array
        addr)
    bad

let rule_dead_write c (prog : Types.program) =
  List.iter
    (fun (d : Types.array_decl) ->
      let name = d.Types.name in
      let attrs =
        List.filter_map
          (fun ph ->
            if List.mem name (Types.phase_arrays ph) then
              try Some (Liveness.static_attr prog ph ~array:name)
              with e when recoverable e -> None
            else None)
          prog.Types.phases
      in
      let writes =
        List.exists (fun a -> a = Liveness.W || a = Liveness.RW) attrs
      in
      let reads =
        List.exists (fun a -> a = Liveness.R || a = Liveness.RW) attrs
      in
      if writes && not reads then
        Diag.addf c ~severity:Warning ~stage:Lint ~where:name
          ~code:"LINT-DEAD-WRITE"
          "%s is written but never read; dead computation or un-consumed \
           output"
          name)
    prog.Types.arrays

(* ------------------------------------------------------------------ *)
(* Certifier-backed rules *)

let rule_race c (prog : Types.program) envs (ph : Types.phase) =
  List.iter
    (fun path ->
      let var = try Autopar.loop_var_at ph.Types.nest path with _ -> "?" in
      match Racecheck.certify prog ph ~loop_path:path with
      | Racecheck.Proved_independent -> ()
      | Racecheck.Proved_dependent w ->
          Diag.addf c ~severity:Error ~stage:Lint ~where:(where_loop ph var)
            ~code:"LINT-RACE"
            "declared parallel, but iterations share %s (%s, distance %+d): %s"
            w.Racecheck.w_array w.Racecheck.w_kind w.Racecheck.w_distance
            w.Racecheck.w_note
      | Racecheck.Unknown reason -> (
          match
            try
              Some
                (List.for_all
                   (fun env -> Autopar.independent prog env ph ~loop_path:path)
                   envs)
            with e when recoverable e -> None
          with
          | Some true | None ->
              Diag.addf c ~severity:Info ~stage:Lint ~where:(where_loop ph var)
                ~code:"LINT-UNCERTIFIED"
                "parallel marking rests on sampling only; certifier: %s" reason
          | Some false ->
              Diag.addf c ~severity:Error ~stage:Lint
                ~where:(where_loop ph var) ~code:"LINT-RACE"
                "declared parallel, but sampling found a cross-iteration \
                 conflict (certifier: %s)"
                reason))
    (parallel_paths ph.Types.nest)

(* ------------------------------------------------------------------ *)

let check ?(racecheck = true) ?envs ?diags (prog : Types.program) =
  let envs = match envs with Some e -> e | None -> default_envs prog in
  let c = Diag.collector () in
  List.iter
    (fun ph ->
      rule_multi_parallel c ph;
      rule_refs c prog ph;
      rule_unbound c prog ph;
      rule_nonnormal c ph;
      rule_subscript c ph;
      rule_bounds c prog envs ph;
      if racecheck then rule_race c prog envs ph)
    prog.Types.phases;
  rule_dead_write c prog;
  let findings = Diag.to_list c in
  (match diags with
  | None -> ()
  | Some d ->
      List.iter
        (fun (f : Diag.t) ->
          Diag.add d ~severity:f.Diag.severity ~stage:f.Diag.stage
            ?where:f.Diag.where ~code:f.Diag.code f.Diag.message)
        findings);
  findings

let autopar ?envs ?diags (prog : Types.program) =
  let envs = match envs with Some e -> e | None -> default_envs prog in
  let prog = Autopar.recognize_reductions ~envs prog in
  let phases =
    List.map
      (fun ph ->
        let d = Autopar.decide ~certify:Racecheck.certifier ~envs prog ph in
        (match diags with
        | None -> ()
        | Some c ->
            List.iter
              (fun (r : Autopar.probe_report) ->
                let static =
                  match r.Autopar.static_verdict with
                  | Some `Independent -> "independent"
                  | Some `Dependent -> "dependent"
                  | _ -> "unknown"
                in
                Diag.addf c ~severity:Error ~stage:Autopar
                  ~where:(where_loop ph r.Autopar.var)
                  ~code:"RACE-ORACLE-MISMATCH"
                  "certifier says %s but the sampling oracle %s; one of them \
                   is wrong - please report"
                  static
                  (if r.Autopar.sampled = Some true then
                     "found no conflict on any sample"
                   else "found a conflict"))
              (Autopar.mismatches d));
        d.Autopar.dec_phase)
      prog.Types.phases
  in
  { prog with Types.phases }
