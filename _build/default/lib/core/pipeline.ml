open Symbolic

type t = {
  prog : Ir.Types.program;
  env : Env.t;
  machine : Ilp.Cost.machine;
  lcg : Locality.Lcg.t;
  model : Ilp.Model.t;
  solution : Ilp.Solve.result;
  plan : Ilp.Distribution.plan;
}

let run ?machine prog ~env ~h =
  let machine =
    match machine with Some m -> m | None -> Ilp.Cost.default_machine ~h
  in
  let lcg = Locality.Lcg.build prog ~env ~h in
  let model = Ilp.Model.of_lcg lcg in
  let solution = Ilp.Solve.solve model machine in
  let plan = Ilp.Distribution.of_solution lcg ~p:solution.p in
  { prog; env; machine; lcg; model; solution; plan }

let simulate t = Dsmsim.Exec.run t.lcg t.plan t.machine

let simulate_baseline t =
  Dsmsim.Exec.run t.lcg (Ilp.Distribution.block_plan t.lcg) t.machine

let efficiency t =
  ((simulate t).efficiency, (simulate_baseline t).efficiency)

let report ppf t =
  Format.fprintf ppf "@[<v>%a@,=== Constraint model (Table 2 form) ===@,%a@,"
    Locality.Lcg.pp t.lcg Ilp.Model.pp t.model;
  Format.fprintf ppf "=== Solution ===@,objective %.1f (D %.1f + C %.1f)%s@,"
    t.solution.objective t.solution.d_cost t.solution.c_cost
    (match t.solution.broken with
    | [] -> ""
    | b -> Printf.sprintf "  (%d violated locality rows)" (List.length b));
  Format.fprintf ppf "%a@]" Ilp.Distribution.pp t.plan
