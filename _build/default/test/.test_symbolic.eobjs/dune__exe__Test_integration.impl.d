test/test_integration.ml: Alcotest Assume Build Codes Core Enumerate Env Expr Float Format Ilp Ir List Locality Printf Probe QCheck QCheck_alcotest Stdlib String Symbolic Types
