lib/codes/mgrid.mli: Assume Env Ir Symbolic
