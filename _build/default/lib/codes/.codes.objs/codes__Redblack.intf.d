lib/codes/redblack.mli: Assume Env Ir Symbolic
