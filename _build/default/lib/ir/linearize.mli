(** Column-major (Fortran) array linearization.

    Multi-dimensional arrays are flattened to one dimension before
    descriptor construction, as the paper assumes (Sec. 2).  For an
    array with extents [d1; d2; ...] and zero-based subscripts
    [i1; i2; ...], the flat address is [i1 + d1*(i2 + d2*(i3 + ...))]. *)

open Symbolic

val address : dims:Expr.t list -> Expr.t list -> Expr.t
(** @raise Invalid_argument on rank mismatch. *)

val size : dims:Expr.t list -> Expr.t
(** Total element count. *)
