(** Access attributes and privatizability (paper, Sec. 4 opening).

    Each (phase, array) node of the LCG carries one of four attributes:
    W (write-only), R (read-only), RW, or P (privatizable).  Following
    the paper's restricted definition, an array is privatizable in a
    phase when (a) within every parallel iteration each read location
    was previously written by the same iteration, and (b) the values it
    holds after the phase are dead - every later access overwrites
    before reading, considering the wrap-around edge when the program
    repeats.

    Both conditions are checked concretely under sampled parameter
    environments (the analysis-time analogue of the paper relying on
    Polaris' dynamic-scope privatization tests): a location-precise
    def-before-use scan per iteration, and a forward kill/expose scan
    across the following phases. *)

open Symbolic
open Types

type attr = R | W | RW | P

val equal_attr : attr -> attr -> bool
val pp_attr : Format.formatter -> attr -> unit
val attr_to_string : attr -> string

val static_attr : program -> phase -> array:string -> attr
(** R / W / RW from the reference kinds alone (never P). *)

val def_before_use : program -> Env.t -> phase -> array:string -> bool
(** Condition (a) under one concrete environment. *)

val dead_after : program -> Env.t -> int -> array:string -> bool
(** Condition (b) for phase index [k] under one concrete environment. *)

val attr : ?envs:Env.t list -> program -> int -> array:string -> attr
(** Attribute of phase [k] for [array].  [envs] are the sample
    parameter environments (default: 3 samples from [program.params]);
    P is reported only when every sample agrees. *)

val attrs : ?envs:Env.t list -> program -> (string * attr array) list
(** Per array: attribute of each phase that references it, indexed by
    phase position ([attr] of unreferenced phases is irrelevant and
    reported as [R]). *)
