(** Seeded, size-parameterized generator of well-formed multi-phase
    programs, biased toward the paper's hard cases.

    Every generated program is in the analyzable surface class - it
    parses back from its own unparsing, every parameter has a bounded
    domain, and all subscripts are affine in the loop variables with
    non-negative values inside the declared extents (extents are
    derived {e after} generation from the maximal subscript values, so
    LINT-BOUNDS never fires by construction).  Parallel loops are
    race-free by construction: the parallel index always carries the
    dominant mixed-radix coefficient of every write subscript, so
    distinct parallel iterations write disjoint windows.

    The hard-case biases, all tunable through {!profile}:
    - non-unit and power-of-two strides (constant [2]/[4]/[8] and the
      symbolic [Q = 2^q] parameter as subscript coefficients and loop
      steps);
    - triangular / non-constant bounds (inner [hi] mentioning an outer
      loop variable);
    - reshaped and transposed access mixes (2-D arrays read as [T(j,i)]
      against writes of [T(i,j)], and cross-array reads with unrelated
      affine maps);
    - sequential reductions into a small accumulator array;
    - deep 50-100-phase pipelines ({!deep}). *)

type profile = {
  min_phases : int;
  max_phases : int;
  max_depth : int;  (** loop-nest depth, 1..3 *)
  pow2_bias : int;  (** percent chance the program declares [Q = 2^q] *)
  triangular_bias : int;  (** percent chance an inner bound is triangular *)
  two_d_bias : int;  (** percent chance a 2-D array (and phases) exist *)
  reduction_bias : int;  (** percent chance of an accumulator array *)
  repeat_bias : int;  (** percent chance of a [repeat] timestep loop *)
}

val default : profile
(** 1-5 phases, depth up to 3: the mass-campaign workhorse. *)

val deep : profile
(** 50-100 phases at depth up to 2 with single-statement bodies: the
    ILP / chain solver scale-up shape (ROADMAP item 5). *)

val program : profile -> seed:int -> index:int -> Ir.Types.program
(** The [index]-th program of campaign [seed]: deterministic in
    [(profile, seed, index)] and independent of any ambient random
    state. *)

val midpoint_env : Ir.Types.program -> Symbolic.Env.t
(** Midpoint bindings for each declared parameter, [Pow2_of] resolved
    through its base - the same default environment the [dsmloc file]
    command uses. *)
