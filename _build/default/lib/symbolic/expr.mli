(** Symbolic expressions in canonical sum-of-monomials form.

    The expression class covers everything the paper's descriptors need:
    polynomials over parameters and loop indices with rational
    coefficients and [2^e] factors ([e] itself an expression), e.g.
    [2*P*Q], [P * 2^(-L)], [J * 2^(L-1)], [(P-2) * 2^(-L) + 1].  Exact
    and floor/ceil division are supported; divisions that cannot be
    reduced are kept as opaque atoms so normalization never loses
    information.

    Normal form: a sorted list of (monomial, rational coefficient)
    pairs; a monomial is a sorted list of (atom, integer exponent)
    pairs; all [2^e] factors of a monomial are fused into a single
    [Pow2] atom whose exponent has no constant term (the constant is
    folded into the coefficient).  Two expressions denoting the same
    polynomial-exponential function therefore compare structurally
    equal whenever the rewrite rules suffice; [Probe] supplies the
    randomized fallback for the residual cases. *)

type atom =
  | Var of string
  | Pow2 of t  (** [2^e]; invariant: [e] is non-constant with zero constant term *)
  | Floor_div of t * t  (** [floor (a / b)] where exact division failed *)
  | Ceil_div of t * t  (** [ceil (a / b)] where exact division failed *)
  | Opaque_div of t * t  (** [a / b] asserted exact but irreducible *)

and mono = (atom * int) list
and t = (mono * Qnum.t) list

(** {1 Constructors} *)

val zero : t
val one : t
val int : int -> t
val q : Qnum.t -> t
val var : string -> t
val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val scale : Qnum.t -> t -> t
val sum : t list -> t
val prod : t list -> t

val pow2 : t -> t
(** [pow2 e] is [2^e]. *)

val div : t -> t -> t
(** Exact division.  Always reduces when the divisor is a single
    monomial (negative exponents are allowed); otherwise attempts
    term-wise reduction and falls back to an [Opaque_div] atom. *)

val floor_div : t -> t -> t
val ceil_div : t -> t -> t

(** {1 Inspection} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val is_zero : t -> bool
val to_q : t -> Qnum.t option
(** [Some c] iff the expression is the constant [c]. *)

val to_int : t -> int option
val const_part : t -> Qnum.t
(** Coefficient of the empty monomial. *)

val vars : t -> string list
(** All variables occurring anywhere (sorted, deduplicated). *)

val mem_var : string -> t -> bool

val linear_in : string -> t -> (t * t) option
(** [linear_in v e = Some (a, b)] when [e = a*v + b] with [v] occurring
    nowhere in [a] or [b]; [None] if [e] is non-linear in [v]. *)

(** {1 Transformation} *)

val subst : string -> t -> t -> t
(** [subst v by e] replaces every occurrence of variable [v] in [e]
    (including inside [Pow2] exponents and division atoms) with [by],
    then renormalizes. *)

val subst_env : (string * t) list -> t -> t

(** {1 Evaluation} *)

exception Non_integral of string
(** Raised when an integer is required (a [Pow2] exponent or a final
    [eval_int]) but the value is fractional. *)

val eval : (string -> Qnum.t) -> t -> Qnum.t
(** @raise Non_integral if a [Pow2] exponent evaluates to a non-integer.
    @raise Not_found if a variable is unbound. *)

val eval_int : (string -> Qnum.t) -> t -> int
(** @raise Non_integral if the result is fractional. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
