type severity = Info | Warning | Error

type stage =
  | Frontend
  | Lint
  | Autopar
  | Descriptors
  | Lcg
  | Model
  | Solve
  | Plan
  | Comm
  | Exec
  | Validation
  | Pool
  | Serve

type t = {
  severity : severity;
  stage : stage;
  where : string option;
  code : string;
  message : string;
}

exception Too_many_errors of int

type collector = {
  mutable items : t list;  (** reverse order *)
  mutable n_errors : int;
  max_errors : int option;
}

let collector ?max_errors () = { items = []; n_errors = 0; max_errors }

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let stage_to_string = function
  | Frontend -> "frontend"
  | Lint -> "lint"
  | Autopar -> "autopar"
  | Descriptors -> "descriptors"
  | Lcg -> "lcg"
  | Model -> "model"
  | Solve -> "solve"
  | Plan -> "plan"
  | Comm -> "comm"
  | Exec -> "exec"
  | Validation -> "validation"
  | Pool -> "pool"
  | Serve -> "serve"

let add c ~severity ~stage ?where ~code message =
  (* the diagnostic that would exceed the cap is not recorded *)
  (if severity = Error then
     match c.max_errors with
     | Some cap when c.n_errors >= cap -> raise (Too_many_errors cap)
     | _ -> ());
  c.items <- { severity; stage; where; code; message } :: c.items;
  if severity = Error then c.n_errors <- c.n_errors + 1

let addf c ~severity ~stage ?where ~code fmt =
  Printf.ksprintf (add c ~severity ~stage ?where ~code) fmt

let where_to_string d = Option.value d.where ~default:"-"

let to_list c = List.rev c.items
let count c = List.length c.items
let errors c = c.n_errors
let has_errors c = c.n_errors > 0

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let max_severity c =
  List.fold_left
    (fun acc d ->
      match acc with
      | Some s when severity_rank s >= severity_rank d.severity -> acc
      | _ -> Some d.severity)
    None c.items

let pp ppf d =
  match d.where with
  | None ->
      Format.fprintf ppf "[%s] %s %s: %s"
        (severity_to_string d.severity)
        (stage_to_string d.stage) d.code d.message
  | Some w ->
      Format.fprintf ppf "[%s] %s %s at %s: %s"
        (severity_to_string d.severity)
        (stage_to_string d.stage) d.code w d.message

let pp_table ppf = function
  | [] -> ()
  | ds ->
      let w_sev, w_stage, w_code, w_where =
        List.fold_left
          (fun (a, b, c, w) d ->
            ( max a (String.length (severity_to_string d.severity)),
              max b (String.length (stage_to_string d.stage)),
              max c (String.length d.code),
              max w (String.length (where_to_string d)) ))
          (0, 0, 0, 0) ds
      in
      Format.fprintf ppf "@[<v>";
      List.iter
        (fun d ->
          Format.fprintf ppf "%-*s  %-*s  %-*s  %-*s  %s@," w_sev
            (severity_to_string d.severity)
            w_stage (stage_to_string d.stage) w_code d.code w_where
            (where_to_string d) d.message)
        ds;
      Format.fprintf ppf "@]"
