(* Tests for the locality analysis: Theorem 1 (intra-phase), the
   balanced locality condition (Fig. 9, Eqs. 4-6), Table 1 (spec vs.
   theorem-derived labels), and the LCG of the TFFT2 section (Fig. 6,
   chains). *)

open Symbolic
open Ir
open Descriptor
open Locality

let v = Expr.var
let i = Expr.int
let ( + ) = Expr.add

let label = Alcotest.testable Table1.pp_label Table1.equal_label

(* ------------------------------------------------------------------ *)
(* Theorem 1 *)

let simple_phase ?(par_hi = Expr.int 31) name refs =
  Build.phase name (Build.doall "i" ~lo:(Expr.int 0) ~hi:par_hi [ Build.assign refs ])

let id_of prog name array =
  let ph =
    List.find (fun (ph : Types.phase) -> ph.phase_name = name) prog.Types.phases
  in
  Id.of_pd (Unionize.simplify (Pd.of_phase (Phase.analyze prog ph) ~array))

let test_intra_cases () =
  Probe.with_seed 30 (fun () ->
      let prog =
        Build.program ~name:"t" ~params:Assume.empty
          ~arrays:[ Build.array "A" [ i 200 ] ]
          [
            simple_phase "DISJOINT" [ Build.write "A" [ v "i" ] ];
            simple_phase "OVERLAP_R"
              [ Build.read "A" [ v "i" ]; Build.read "A" [ v "i" + i 1 ] ];
            simple_phase "OVERLAP_W"
              [ Build.write "A" [ v "i" ]; Build.write "A" [ v "i" + i 1 ] ];
          ]
      in
      let check name attr expect_local expect_case =
        let verdict = Intra.check ~attr (id_of prog name "A") in
        Alcotest.(check bool) (name ^ " local") expect_local verdict.local;
        Alcotest.(check string)
          (name ^ " case") expect_case
          (Intra.case_to_string verdict.case)
      in
      check "DISJOINT" Liveness.W true "no-overlap";
      check "OVERLAP_R" Liveness.R true "overlap-read-only";
      check "OVERLAP_W" Liveness.W false "fails";
      check "OVERLAP_W" Liveness.P true "privatizable")

(* ------------------------------------------------------------------ *)
(* Balanced locality: Fig. 9 (F3-F4: ceil(Q/H) solutions) and
   Eqs. 4-6 (F2-F3 infeasible). *)

let tfft2_lcg ~p ~q ~h =
  Lcg.build Codes.Tfft2.program ~env:(Codes.Tfft2.env ~p ~q) ~h

let graph_of lcg array =
  List.find (fun (g : Lcg.graph) -> String.equal g.array array) lcg.Lcg.graphs

let edge_of (g : Lcg.graph) src_name =
  let idx = ref (-1) in
  List.iteri
    (fun k (n : Lcg.node) -> if String.equal n.name src_name then idx := k)
    g.nodes;
  List.find (fun (e : Lcg.edge) -> e.src = !idx && not e.back) g.edges

let test_fig9_f3_f4 () =
  Probe.with_seed 31 (fun () ->
      let h = 4 and p = 4 and q = 4 in
      let lcg = tfft2_lcg ~p ~q ~h in
      let gx = graph_of lcg "X" in
      let e = edge_of gx "F3" in
      Alcotest.check label "F3->F4 is L" Table1.L e.label;
      match e.solution with
      | Some s ->
          (* ceil(Q/H) integer solutions; p3 = p4 = 1 is the smallest. *)
          Alcotest.(check int) "count = ceil(Q/H)" 4 s.count;
          Alcotest.(check int) "p3" 1 s.pk;
          Alcotest.(check int) "p4" 1 s.pg
      | None -> Alcotest.fail "expected a solution")

let test_eq4_f2_f3 () =
  Probe.with_seed 32 (fun () ->
      let lcg = tfft2_lcg ~p:4 ~q:4 ~h:4 in
      let gx = graph_of lcg "X" in
      let e = edge_of gx "F2" in
      Alcotest.check label "F2->F3 is C" Table1.C e.label;
      (* The relation is Eq. 4: p2 + 2QP - P = 2P p3. *)
      match e.relation with
      | Some r ->
          let asm = Codes.Tfft2.params in
          Alcotest.(check bool) "a = 1" true (Probe.equal asm r.a Expr.one);
          Alcotest.(check bool) "b = 2P" true
            (Probe.equal asm r.b Expr.(mul (int 2) (v "P")));
          Alcotest.(check bool) "c = P - 2PQ" true
            (Probe.equal asm r.c
               Expr.(sub (v "P") (mul (int 2) (mul (v "P") (v "Q")))));
          (* Integer solution p2 = P, p3 = Q exists but violates the
             load-balance bounds (Eqs. 5-6). *)
          let env = Codes.Tfft2.env ~p:4 ~q:4 in
          let unbounded =
            Balance.solve ~env ~h:1 ~nk:100_000 ~ng:100_000 r
          in
          (match unbounded with
          | Some s ->
              let pP = 16 and qQ = 16 in
              (* family: pk = P(2t - 2Q + 1), pg = t; smallest feasible
                 has pk = P at t = Q *)
              Alcotest.(check bool) "p2 = P, p3 = Q solves Eq. 4" true
                Stdlib.(s.pk + (2 * qQ * pP) - pP = 2 * pP * s.pg)
          | None -> Alcotest.fail "Eq. 4 should be solvable without bounds");
          let bounded =
            Balance.solve ~env ~h:4 ~nk:16 ~ng:16 r
          in
          Alcotest.(check bool) "infeasible under Eqs. 5-6" true (bounded = None)
      | None -> Alcotest.fail "expected a relation")

(* ------------------------------------------------------------------ *)
(* Table 1: the verbatim table agrees with the theorem-derived rule on
   all 60 cells. *)

let test_table1_agreement () =
  List.iter
    (fun (ak, ag) ->
      List.iter
        (fun overlap ->
          List.iter
            (fun balanced ->
              match Table1.spec ak ag ~overlap ~balanced with
              | None -> ()
              | Some expected ->
                  Alcotest.check label
                    (Printf.sprintf "%s-%s overlap=%b balanced=%b"
                       (Liveness.attr_to_string ak)
                       (Liveness.attr_to_string ag)
                       overlap balanced)
                    expected
                    (Inter.derive ak ag ~overlap ~balanced))
            [ true; false ])
        [ true; false ])
    Table1.rows

(* Every Table 1 row exists and the 15 pairs are exactly the paper's. *)
let test_table1_shape () =
  Alcotest.(check int) "15 rows" 15 (List.length Table1.rows);
  List.iter
    (fun (ak, ag) ->
      Alcotest.(check bool) "cell defined" true
        (Table1.spec ak ag ~overlap:true ~balanced:true <> None))
    Table1.rows;
  (* the paper omits P-R *)
  Alcotest.(check bool) "P-R omitted" true
    (Table1.spec Liveness.P Liveness.R ~overlap:false ~balanced:false = None)

(* Spot-check classified cells end-to-end with synthetic phase pairs. *)
let test_inter_end_to_end () =
  Probe.with_seed 33 (fun () ->
      let prog =
        Build.program ~name:"t" ~params:Assume.empty
          ~arrays:[ Build.array "A" [ i 200 ] ]
          [
            simple_phase "W_OVER"
              [ Build.write "A" [ v "i" ]; Build.write "A" [ v "i" + i 1 ] ];
            simple_phase "R_AFTER" [ Build.read "A" [ v "i" ] ];
          ]
      in
      let env = Env.empty in
      let lcg = Lcg.build prog ~env ~h:4 in
      let g = graph_of lcg "A" in
      let e = List.hd g.edges in
      (* W with overlapping storage into R: always C (Table 1 row 5). *)
      Alcotest.check label "W(overlap)->R = C" Table1.C e.label)

(* ------------------------------------------------------------------ *)
(* Fig. 6: the LCG of the TFFT2 section *)

let test_fig6_lcg () =
  Probe.with_seed 34 (fun () ->
      let lcg = tfft2_lcg ~p:4 ~q:4 ~h:4 in
      let gx = graph_of lcg "X" and gy = graph_of lcg "Y" in
      let attrs g =
        List.map
          (fun (n : Lcg.node) -> (n.name, Liveness.attr_to_string n.attr))
          g.Lcg.nodes
      in
      Alcotest.(check (list (pair string string)))
        "X attributes"
        [
          ("F1", "R"); ("F2", "W"); ("F3", "R/W"); ("F4", "R");
          ("F5", "W"); ("F6", "R/W"); ("F7", "R"); ("F8", "W");
        ]
        (attrs gx);
      Alcotest.(check (list (pair string string)))
        "Y attributes"
        [
          ("F1", "W"); ("F2", "R"); ("F3", "P"); ("F4", "W");
          ("F5", "R"); ("F6", "R/W"); ("F8", "R");
        ]
        (attrs gy);
      let labels g =
        List.filter_map
          (fun (e : Lcg.edge) ->
            if e.back then None else Some (Table1.label_to_string e.label))
          g.Lcg.edges
      in
      (* X: F1 -C- F2 -C- F3 -L- F4 -L- F5 -L- F6 -L- F7 -L- F8 *)
      Alcotest.(check (list string)) "X labels"
        [ "C"; "C"; "L"; "L"; "L"; "L"; "L" ]
        (labels gx);
      (* Y: F1 -L- F2 -D- F3 -D- F4 -C- F5 -L- F6 -L- F8
         (paper: (F2,F3) and (F3,F4) un-coupled) *)
      Alcotest.(check (list string)) "Y labels"
        [ "L"; "D"; "D"; "C"; "L"; "L" ]
        (labels gy);
      (* chains *)
      Alcotest.(check (list (list int))) "X chains"
        [ [ 0 ]; [ 1 ]; [ 2; 3; 4; 5; 6; 7 ] ]
        (Lcg.chains gx);
      Alcotest.(check (list (list int))) "Y chains"
        [ [ 0; 1 ]; [ 2 ]; [ 3 ]; [ 4; 5; 6 ] ]
        (Lcg.chains gy))

(* Privatizable workspace: F3's Y is P because F4 overwrites all of Y
   before F5 reads it; un-coupling removes both adjacent edges. *)
let test_uncoupled_edges () =
  Probe.with_seed 35 (fun () ->
      let lcg = tfft2_lcg ~p:3 ~q:3 ~h:2 in
      let gy = graph_of lcg "Y" in
      let nd =
        List.find (fun (n : Lcg.node) -> String.equal n.name "F3") gy.nodes
      in
      Alcotest.(check string) "F3 Y attr" "P" (Liveness.attr_to_string nd.attr);
      Alcotest.(check bool) "intra" true nd.intra.local)

(* The halo of a stencil node measures the ghost frontier. *)
let test_halo () =
  Probe.with_seed 36 (fun () ->
      let prog = Codes.Jacobi.program in
      let env = Codes.Jacobi.env ~n:16 in
      let lcg = Lcg.build prog ~env ~h:2 in
      let gu = graph_of lcg "U" in
      let sweep = List.hd gu.nodes in
      (* U regions of consecutive columns share 2 ghost columns:
         UL(I(0)) - LB(I(1)) + 1 = 2N - 2 = 30 *)
      Alcotest.(check int) "jacobi U halo" 30 (Lcg.halo lcg sweep);
      let gv = graph_of lcg "V" in
      let sweep_v = List.hd gv.nodes in
      Alcotest.(check int) "jacobi V halo" 0 (Lcg.halo lcg sweep_v))

(* ------------------------------------------------------------------ *)
(* The diophantine solver against brute force *)

let prop_solve_bruteforce =
  QCheck.Test.make ~name:"Balance.solve = brute force" ~count:300
    QCheck.(
      tup4 (int_range 1 12) (int_range 1 12) (int_range (-30) 30)
        (pair (int_range 1 6) (pair (int_range 1 40) (int_range 1 40))))
    (fun (a, b, c, (h, (nk, ng))) ->
      let rel =
        { Balance.a = Expr.int a; b = Expr.int b; c = Expr.int c }
      in
      (* replicate the sub-stride snap of the implementation *)
      let c' = if c <> 0 && abs c < max a b then 0 else c in
      let pk_max = Stdlib.((nk + h - 1) / h)
      and pg_max = Stdlib.((ng + h - 1) / h) in
      let brute = ref [] in
      for pk = 1 to pk_max do
        for pg = 1 to pg_max do
          if Stdlib.((a * pk) - (b * pg) = c') then brute := (pk, pg) :: !brute
        done
      done;
      let brute = List.rev !brute in
      match Balance.solve ~env:Env.empty ~h ~nk ~ng rel with
      | None -> brute = []
      | Some s ->
          List.length brute = s.count
          && (match brute with
             | (pk, pg) :: _ -> pk = s.pk && pg = s.pg
             | [] -> false))

(* Chain summaries: coverage of the "common data sub-region" claim. *)
let test_chain_summaries () =
  Probe.with_seed 37 (fun () ->
      let lcg = tfft2_lcg ~p:4 ~q:4 ~h:4 in
      let sums = Chain.summaries lcg in
      (* X: chains F1 | F2 | F3..F8; Y: F1-F2 | F3 | F4 | F5-F6-F8 *)
      Alcotest.(check int) "seven chains" 7 (List.length sums);
      let y_chain =
        List.find
          (fun (s : Chain.summary) ->
            s.array = "Y" && List.length s.members = 3)
          sums
      in
      Alcotest.(check bool) "Y tail chain covers alike" true
        y_chain.covers_alike;
      Alcotest.(check int) "whole array" 512 y_chain.chain_size;
      (* the F3..F8 X chain mixes butterfly halves with full sweeps:
         coverage varies, and the summary must say so *)
      let x_chain =
        List.find
          (fun (s : Chain.summary) ->
            s.array = "X" && List.length s.members = 6)
          sums
      in
      Alcotest.(check bool) "X chain coverage varies" false
        x_chain.covers_alike)

let test_stability_envs_deterministic () =
  let a = Stability.sample_envs ~samples:3 Codes.Tfft2.program in
  let b = Stability.sample_envs ~samples:3 Codes.Tfft2.program in
  Alcotest.(check int) "same count" (List.length a) (List.length b);
  List.iter2
    (fun ea eb ->
      Alcotest.(check bool) "same env" true
        (Env.bindings ea = Env.bindings eb))
    a b

let test_stability () =
  Probe.with_seed 38 (fun () ->
      let t = Stability.analyze ~h_values:[ 2; 4 ] Codes.Jacobi.program in
      (* jacobi's cyclic chain is L at every size and width *)
      Alcotest.(check bool) "jacobi fully stable" true (Stability.all_stable t);
      List.iter
        (fun (e : Stability.edge_report) ->
          Alcotest.(check bool) "stable L" true
            (e.stable = Some Table1.L))
        t;
      (* tfft2's F4-F5 coupling (P p4 = Q p5) degrades with H *)
      let t2 =
        Stability.analyze ~h_values:[ 2; 64 ] Codes.Tfft2.program
      in
      let f45 =
        List.find
          (fun (e : Stability.edge_report) ->
            e.array = "X" && e.src = "F4" && e.dst = "F5")
          t2
      in
      Alcotest.(check bool) "F4-F5 not stable across H" true
        (f45.stable = None))

let () =
  Alcotest.run "locality"
    [
      ("intra", [ Alcotest.test_case "theorem 1 cases" `Quick test_intra_cases ]);
      ( "balance",
        [
          Alcotest.test_case "fig9 F3-F4" `Quick test_fig9_f3_f4;
          Alcotest.test_case "eq4-6 F2-F3" `Quick test_eq4_f2_f3;
        ] );
      ( "table1",
        [
          Alcotest.test_case "spec = derived (60 cells)" `Quick
            test_table1_agreement;
          Alcotest.test_case "shape" `Quick test_table1_shape;
          Alcotest.test_case "end-to-end W(ov)->R" `Quick test_inter_end_to_end;
        ] );
      ( "solver",
        [ QCheck_alcotest.to_alcotest prop_solve_bruteforce ] );
      ( "lcg",
        [
          Alcotest.test_case "fig6 TFFT2" `Quick test_fig6_lcg;
          Alcotest.test_case "uncoupled P nodes" `Quick test_uncoupled_edges;
          Alcotest.test_case "stencil halo" `Quick test_halo;
          Alcotest.test_case "chain summaries" `Quick test_chain_summaries;
          Alcotest.test_case "label stability" `Slow test_stability;
          Alcotest.test_case "stability envs deterministic" `Quick
            test_stability_envs_deterministic;
        ] );
    ]
