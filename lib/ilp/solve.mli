(** Exact minimization of the parallel-overhead objective (Eq. 7).

    The locality (L-edge) equalities tie the [p_k] of each connected
    component of the constraint graph to a single representative, so
    the feasible set is a union of short arithmetic progressions; the
    objective's D terms contain ceilings, making it non-linear - we
    therefore enumerate the representative exactly rather than relax.
    {!Ilp_solver} remains available for linear objectives and is tested
    against this enumerator. *)

type result = {
  p : int array;  (** chosen chunk per phase, CYCLIC(p_k) *)
  d_cost : float;  (** total load-unbalance cost *)
  c_cost : float;  (** total communication cost *)
  objective : float;
  broken : (string * int * int) list;
      (** L edges (array, k, g) the solver had to violate (treated as
          extra C edges); empty in well-posed instances *)
  budget_exhausted : bool;
      (** true when some component's representative window extended
          past the enumeration budget, so [p] may be sub-optimal; the
          pipeline surfaces this as a [SOLVE-BUDGET] warning and falls
          back to the BLOCK baseline plan *)
}

val solve : Model.t -> Cost.machine -> result

val communication_words : Locality.Lcg.t -> array:string -> phase_idx:int -> int
(** Footprint (distinct addresses) of one phase's accesses to one
    array under the LCG environment - the word volume a C edge into
    that phase redistributes. *)
