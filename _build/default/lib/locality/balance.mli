(** The balanced locality condition (paper, Sec. 4.2, Eqs. 1-3).

    Two phases F_k and F_g keep array X local across their boundary
    when chunks of [p_k] and [p_g] consecutive parallel iterations
    cover the same data sub-region:

      UL(I^k(X,0), p_k) + h^k = UL(I^g(X,0), p_g) + h^g

    subject to the load-balance bounds
    [1 <= p_k <= ceil((u_k+1)/H)] and likewise for [p_g].

    For an ID whose rows all share one representative (congruent rows
    related by storage distances), [UL(I,0,p) + h] is the linear
    function [tau + p*delta_P - 1 + (residual span - gap terms)] of
    [p], so Eq. 1 is a linear diophantine equation solved exactly with
    the extended gcd; Eqs. 2-3 select the [t]-window of its solution
    family. *)

open Symbolic
open Descriptor

type side = {
  id : Id.t;
  primary : Id.row;  (** representative: lowest-offset increasing row *)
  gap : Expr.t;  (** memory gap h of the representative *)
  overlap : bool;
      (** consecutive iterations share elements: the span is
          ghost-inflated, so UL+h uses the ownership boundary instead *)
}

val side : ?overlap:bool -> Id.t -> side option
(** [None] when no increasing row exists, rows are not mutually
    congruent, or the gap is undecidable - the caller then treats the
    edge conservatively (C). *)

val ul_plus_h : side -> p:Expr.t -> Expr.t
(** [UL(I,0,p) + h] as a symbolic function of the chunk size. *)

type relation = {
  a : Expr.t;  (** coefficient of [p_k] *)
  b : Expr.t;  (** coefficient of [p_g] *)
  c : Expr.t;  (** constant: the equation is [a*p_k = b*p_g + c] *)
}

val relation :
  ?overlap_k:bool -> ?overlap_g:bool -> Id.t -> Id.t -> relation option
(** The balanced equation between two phases' IDs of the same array. *)

type solution = {
  pk : int;
  pg : int;  (** smallest feasible pair *)
  count : int;  (** number of integer solutions within the bounds *)
}

val solve :
  env:Env.t -> h:int -> nk:int -> ng:int -> relation -> solution option
(** Concrete solve: [nk], [ng] are the parallel trip counts; bounds are
    [1 .. ceil(n/H)].  [None] when no integer solution fits. *)

val balanced :
  env:Env.t -> h:int -> nk:int -> ng:int -> Id.t -> Id.t -> solution option
(** End-to-end: sides, relation, solve. *)

val pp_relation : Format.formatter -> relation -> unit
