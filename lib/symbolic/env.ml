module M = Map.Make (String)

(* Each environment carries a unique [id] (the memo-coherence key other
   caches use: see DESIGN.md section 12) and its own expression-value
   memo.  The memo lives *inside* the environment, so cached values can
   never be confused between bindings and die with the environment -
   short-lived sampled environments cost nothing globally. *)
type t = { map : int M.t; id : int; memo : (Expr.t, Qnum.t) Hashtbl.t }

exception Unbound of string

let next_id = ref 0

let make map =
  incr next_id;
  { map; id = !next_id; memo = Hashtbl.create 16 }

let empty = make M.empty
let of_list l = make (List.fold_left (fun m (k, v) -> M.add k v m) M.empty l)
let add k v t = make (M.add k v t.map)
let id t = t.id

let find env v =
  match M.find_opt v env.map with Some x -> x | None -> raise (Unbound v)

let find_opt env v = M.find_opt v env.map
let mem env v = M.mem v env.map
let bindings env = M.bindings env.map
let lookup env v = Qnum.of_int (find env v)

let eval_stats = Metrics.cache "env.eval"

(* Only successful evaluations are cached; an evaluation that raises
   (unbound variable, fractional Pow2 exponent) recomputes - those are
   rare and the exception must propagate unchanged. *)
let eval_q env e =
  match Hashtbl.find_opt env.memo e with
  | Some v ->
      Metrics.hit eval_stats;
      v
  | None ->
      Metrics.miss eval_stats;
      let v = Expr.eval (lookup env) e in
      Hashtbl.add env.memo e v;
      v

let eval env e =
  let v = eval_q env e in
  if Qnum.is_integer v then Qnum.to_int v
  else raise (Expr.Non_integral (Format.asprintf "value %a" Qnum.pp v))

let pp ppf env =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (k, v) -> Format.fprintf ppf "%s=%d" k v))
    (bindings env)
