lib/descriptor/access_mix.mli: Format Ir
