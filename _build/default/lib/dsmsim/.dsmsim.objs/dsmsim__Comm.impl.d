lib/dsmsim/comm.ml: Distribution Env Format Hashtbl Ilp Ir Lcg List Locality Printf String Symbolic
