examples/tfft2_pipeline.ml: Ard Array Bounds Coalesce Codes Core Descriptor Env Expr Format Id Ir List Pd Region String Symbolic Sys Unionize
