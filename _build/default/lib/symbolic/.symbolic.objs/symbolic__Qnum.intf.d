lib/symbolic/qnum.mli: Format
