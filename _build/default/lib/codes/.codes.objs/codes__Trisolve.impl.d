lib/codes/trisolve.ml: Assume Env Expr Ir Symbolic
