lib/locality/chain.ml: Descriptor Format Hashtbl Lcg List Option Pd Region String Unionize
