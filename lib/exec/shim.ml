module A = Bigarray.Array1

type window = (float, Bigarray.float64_elt, Bigarray.c_layout) A.t

(* Per-domain traffic clocks.  Each domain writes only its own record,
   so there is no contention; sums are read after the barriers. *)
type counters = {
  mutable sched_msgs : int;
  mutable sched_words : int;
  mutable gets : int;
  mutable puts : int;
  mutable local : int;
  mutable workc : int;
  mutable busy : float;
}

type t = {
  h : int;
  replicas : (string, window array) Hashtbl.t;
  counters : counters array;
}

let fresh_counters () =
  { sched_msgs = 0; sched_words = 0; gets = 0; puts = 0; local = 0;
    workc = 0; busy = 0.0 }

let create ~h sizes =
  let replicas = Hashtbl.create 8 in
  List.iter
    (fun (name, size) ->
      let mk _ =
        let w = A.create Bigarray.float64 Bigarray.c_layout (max 1 size) in
        A.fill w 0.0;
        w
      in
      Hashtbl.replace replicas name (Array.init h mk))
    sizes;
  { h; replicas; counters = Array.init h (fun _ -> fresh_counters ()) }

let window t ~proc ~array = (Hashtbl.find t.replicas array).(proc)

let deliver t ~array (m : Dsmsim.Comm.message) =
  let src = window t ~proc:m.src ~array in
  let dst = window t ~proc:m.dst ~array in
  List.iter
    (fun (lo, hi) ->
      for a = lo to hi do
        A.set dst a (A.get src a)
      done)
    m.ranges;
  let c = t.counters.(m.src) in
  c.sched_msgs <- c.sched_msgs + 1;
  c.sched_words <- c.sched_words + m.words

(* Sense-reversing barrier: [await] blocks until all [n] participants
   arrive; reusable any number of times.  A domain that dies mid-sweep
   would leave the others parked forever, so the error path [poison]s
   the barrier: every current and future [await] returns immediately
   (the run's results are already flagged unusable at that point). *)
module Barrier = struct
  type t = {
    m : Mutex.t;
    c : Condition.t;
    n : int;
    mutable count : int;
    mutable epoch : int;
    mutable poisoned : bool;
  }

  let create n =
    {
      m = Mutex.create ();
      c = Condition.create ();
      n;
      count = 0;
      epoch = 0;
      poisoned = false;
    }

  let await b =
    Mutex.lock b.m;
    let e = b.epoch in
    b.count <- b.count + 1;
    if b.count = b.n then begin
      b.count <- 0;
      b.epoch <- b.epoch + 1;
      Condition.broadcast b.c
    end
    else
      while (not b.poisoned) && b.epoch = e do
        Condition.wait b.c b.m
      done;
    Mutex.unlock b.m

  let poison b =
    Mutex.lock b.m;
    b.poisoned <- true;
    Condition.broadcast b.c;
    Mutex.unlock b.m
end
