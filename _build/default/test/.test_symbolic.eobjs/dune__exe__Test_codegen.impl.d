test/test_codegen.ml: Alcotest Array Codegen Codes Core Dsmsim Ir List Printf Probe String Symbolic
