(** Communication generation (paper, Sec. 4.3 (b)).

    Turns an LCG + distribution plan into the explicit single-sided
    communication schedule a compiler would emit:

    - {b Global communications} (redistribution): at every layout-epoch
      boundary of an array, each processor [put]s the addresses whose
      owner changes to their new owner; entering a halo'd epoch adds a
      {e second} round that initializes the ghost replicas from the
      now-current owners (order matters - the dataflow validator caught
      strips forwarding pre-copy-in data).  Messages are
      {e aggregated}: one message per (src, dst) pair carrying a list
      of maximal contiguous address ranges.  Boundaries elided by
      {!write_covers_epoch} (the epoch rewrites the array) emit
      nothing.
    - {b Frontier communications}: after every phase that writes a
      halo'd array, each block owner pushes its boundary strips of
      [halo] elements to the neighbouring replicas.

    The schedule is cross-validated against the simulator's independent
    owner-change accounting in the test suite. *)

open Locality

type message = {
  src : int;
  dst : int;
  ranges : (int * int) list;  (** inclusive, maximal, sorted *)
  words : int;
}

type event =
  | Redistribute of {
      array : string;
      before_phase : int;
      messages : message list;
    }
  | Frontier of { array : string; after_phase : int; messages : message list }

type schedule = event list

val write_covers_epoch : Lcg.t -> Ilp.Distribution.layout -> bool
(** Copy-in elision predicate: true when the epoch's first accessing
    phase write-covers everything the epoch touches, so entering the
    epoch needs no redistribution. *)

val array_size : ?on_error:(string -> unit) -> Lcg.t -> string -> int option
(** Concrete linearized size of an array under the LCG's environment.
    Returns [None] (and reports through [on_error]) only for symbolic
    evaluation failures - an unbound parameter, a non-integral size, or
    arithmetic overflow - so callers skip that array's events
    explicitly instead of doing layout math on a phantom size-0 array;
    an undeclared array still raises. *)

val generate : ?on_error:(string -> unit) -> Lcg.t -> Ilp.Distribution.plan -> schedule
(** Events in program order; for a repeating program, events with
    [before_phase = 0] are the wrap-around boundary and apply from the
    second traversal on.  [on_error] receives a message for every array
    whose size failed to evaluate (its events are omitted). *)

val total_words : schedule -> int
val message_count : schedule -> int
val redistributions : schedule -> event list
val frontiers : schedule -> event list
val pp : Format.formatter -> schedule -> unit
