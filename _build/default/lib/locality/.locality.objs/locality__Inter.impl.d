lib/locality/inter.ml: Balance Descriptor Id Intra Ir Option Symmetry Table1
