lib/ir/enumerate.ml: Env Hashtbl List Normalize String Symbolic Types
