(* Wire protocol for `dsmloc serve`: see wire.mli for the format and
   DESIGN.md section 15 for the state machines built on top of it. *)

(* ------------------------------------------------------------------ *)
(* Framing *)

let default_max_frame = 16 * 1024 * 1024

let encode_frame payload =
  let n = String.length payload in
  let b = Bytes.create (8 + n) in
  Bytes.set_int64_be b 0 (Int64.of_int n);
  Bytes.blit_string payload 0 b 8 n;
  b

type frame_result = Frame of string | Need_more | Bad of string

(* The buffer only ever holds the current frame's prefix, so a decoder
   is bounded by [max_frame + 8] bytes however much a peer trickles or
   floods. *)
type decoder = {
  max_frame : int;
  buf : Buffer.t;
  mutable poisoned : string option;
}

let decoder ?(max_frame = default_max_frame) () =
  { max_frame; buf = Buffer.create 256; poisoned = None }

let feed d b ~pos ~len =
  if d.poisoned = None then Buffer.add_subbytes d.buf b pos len

let feed_string d s =
  if d.poisoned = None then Buffer.add_string d.buf s

let buffered d = Buffer.length d.buf

let next d =
  match d.poisoned with
  | Some msg -> Bad msg
  | None ->
      let have = Buffer.length d.buf in
      if have < 8 then Need_more
      else begin
        let hdr = Buffer.sub d.buf 0 8 in
        let len64 = Bytes.get_int64_be (Bytes.unsafe_of_string hdr) 0 in
        (* validate before allocating or converting: an adversarial
           prefix may not even fit in an int *)
        if Int64.compare len64 0L < 0
           || Int64.compare len64 (Int64.of_int d.max_frame) > 0
        then begin
          let msg =
            Printf.sprintf "frame length %Ld exceeds cap %d" len64 d.max_frame
          in
          d.poisoned <- Some msg;
          Buffer.clear d.buf;
          Bad msg
        end
        else
          let len = Int64.to_int len64 in
          if have < 8 + len then Need_more
          else begin
            let payload = Buffer.sub d.buf 8 len in
            let rest = Buffer.sub d.buf (8 + len) (have - 8 - len) in
            Buffer.clear d.buf;
            Buffer.add_string d.buf rest;
            Frame payload
          end
      end

(* ------------------------------------------------------------------ *)
(* Requests *)

type request = {
  source : string;
  env : (string * int) list;
  procs : int;
  deadline : float option;
  hang : float;
  crash : bool;
}

let request ?(env = []) ?(procs = 4) ?deadline ?(hang = 0.) ?(crash = false)
    source =
  { source; env; procs; deadline; hang; crash }

let encode_env env =
  String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) env)

let encode_request r =
  let b = Buffer.create (String.length r.source + 64) in
  Buffer.add_string b (Printf.sprintf "%%procs %d\n" r.procs);
  if r.env <> [] then
    Buffer.add_string b (Printf.sprintf "%%env %s\n" (encode_env r.env));
  (match r.deadline with
  | Some s -> Buffer.add_string b (Printf.sprintf "%%deadline %g\n" s)
  | None -> ());
  if r.hang > 0. then Buffer.add_string b (Printf.sprintf "%%hang %g\n" r.hang);
  if r.crash then Buffer.add_string b "%crash\n";
  Buffer.add_string b r.source;
  Buffer.contents b

(* Directive lines start with '%' and may only precede the program;
   the first non-directive line starts the source verbatim. *)
let parse_request text =
  let exception Malformed of string in
  let parse_env spec =
    List.map
      (fun kv ->
        match String.index_opt kv '=' with
        | Some i -> (
            let k = String.sub kv 0 i in
            let v = String.sub kv (i + 1) (String.length kv - i - 1) in
            match int_of_string_opt v with
            | Some n when k <> "" -> (k, n)
            | _ -> raise (Malformed (Printf.sprintf "bad binding %S" kv)))
        | None -> raise (Malformed (Printf.sprintf "bad binding %S" kv)))
      (String.split_on_char ',' spec)
  in
  let r = ref (request "") in
  let rec go pos =
    if pos >= String.length text then pos
    else if text.[pos] <> '%' then pos
    else begin
      let eol =
        match String.index_from_opt text pos '\n' with
        | Some i -> i
        | None -> String.length text
      in
      let line = String.sub text (pos + 1) (eol - pos - 1) in
      let line = String.trim line in
      let directive, arg =
        match String.index_opt line ' ' with
        | Some i ->
            ( String.sub line 0 i,
              String.trim (String.sub line (i + 1) (String.length line - i - 1))
            )
        | None -> (line, "")
      in
      (match directive with
      | "procs" -> (
          match int_of_string_opt arg with
          | Some n when n >= 1 -> r := { !r with procs = n }
          | _ -> raise (Malformed (Printf.sprintf "bad %%procs %S" arg)))
      | "env" -> r := { !r with env = parse_env arg }
      | "deadline" -> (
          match float_of_string_opt arg with
          | Some s when s > 0. -> r := { !r with deadline = Some s }
          | _ -> raise (Malformed (Printf.sprintf "bad %%deadline %S" arg)))
      | "hang" -> (
          match float_of_string_opt arg with
          | Some s when s >= 0. -> r := { !r with hang = s }
          | _ -> raise (Malformed (Printf.sprintf "bad %%hang %S" arg)))
      | "crash" -> r := { !r with crash = true }
      | d -> raise (Malformed (Printf.sprintf "unknown directive %%%s" d)));
      go (min (eol + 1) (String.length text))
    end
  in
  match go 0 with
  | pos ->
      let source = String.sub text pos (String.length text - pos) in
      if String.trim source = "" then
        Result.Error "empty program"
      else Result.Ok { !r with source }
  | exception Malformed msg -> Result.Error msg

(* ------------------------------------------------------------------ *)
(* Responses *)

type status = Ok | Degraded | Error | Overload | Deadline

let status_to_string = function
  | Ok -> "ok"
  | Degraded -> "degraded"
  | Error -> "error"
  | Overload -> "overload"
  | Deadline -> "deadline"

let status_of_string = function
  | "ok" -> Some Ok
  | "degraded" -> Some Degraded
  | "error" -> Some Error
  | "overload" -> Some Overload
  | "deadline" -> Some Deadline
  | _ -> None

type response = {
  status : status;
  code : string option;
  artifact_hits : int;
  worker_requests : int;
  elapsed_ms : float;
  retry_after : float option;
  body : string;
}

let response ?code ?(artifact_hits = 0) ?(worker_requests = 0)
    ?(elapsed_ms = 0.) ?retry_after status body =
  { status; code; artifact_hits; worker_requests; elapsed_ms; retry_after;
    body }

let separator = "---"

let encode_response r =
  let b = Buffer.create (String.length r.body + 128) in
  Buffer.add_string b
    (Printf.sprintf "%%status %s\n" (status_to_string r.status));
  (match r.code with
  | Some c -> Buffer.add_string b (Printf.sprintf "%%code %s\n" c)
  | None -> ());
  Buffer.add_string b (Printf.sprintf "%%artifact-hits %d\n" r.artifact_hits);
  Buffer.add_string b
    (Printf.sprintf "%%worker-requests %d\n" r.worker_requests);
  Buffer.add_string b (Printf.sprintf "%%elapsed-ms %.3f\n" r.elapsed_ms);
  (match r.retry_after with
  | Some s -> Buffer.add_string b (Printf.sprintf "%%retry-after %g\n" s)
  | None -> ());
  Buffer.add_string b separator;
  Buffer.add_char b '\n';
  Buffer.add_string b r.body;
  Buffer.contents b

let parse_response text =
  let exception Malformed of string in
  let r = ref (response Error "") in
  let seen_status = ref false in
  let rec go pos =
    if pos >= String.length text then
      raise (Malformed "missing --- separator")
    else begin
      let eol =
        match String.index_from_opt text pos '\n' with
        | Some i -> i
        | None -> String.length text
      in
      let line = String.sub text pos (eol - pos) in
      if line = separator then min (eol + 1) (String.length text)
      else begin
        let line = String.trim line in
        (if String.length line > 0 && line.[0] = '%' then
           let line = String.sub line 1 (String.length line - 1) in
           let directive, arg =
             match String.index_opt line ' ' with
             | Some i ->
                 ( String.sub line 0 i,
                   String.trim
                     (String.sub line (i + 1) (String.length line - i - 1)) )
             | None -> (line, "")
           in
           match directive with
           | "status" -> (
               match status_of_string arg with
               | Some s ->
                   seen_status := true;
                   r := { !r with status = s }
               | None -> raise (Malformed ("bad %status " ^ arg)))
           | "code" -> r := { !r with code = Some arg }
           | "artifact-hits" -> (
               match int_of_string_opt arg with
               | Some n -> r := { !r with artifact_hits = n }
               | None -> raise (Malformed ("bad %artifact-hits " ^ arg)))
           | "worker-requests" -> (
               match int_of_string_opt arg with
               | Some n -> r := { !r with worker_requests = n }
               | None -> raise (Malformed ("bad %worker-requests " ^ arg)))
           | "elapsed-ms" -> (
               match float_of_string_opt arg with
               | Some s -> r := { !r with elapsed_ms = s }
               | None -> raise (Malformed ("bad %elapsed-ms " ^ arg)))
           | "retry-after" -> (
               match float_of_string_opt arg with
               | Some s -> r := { !r with retry_after = Some s }
               | None -> raise (Malformed ("bad %retry-after " ^ arg)))
           | d -> raise (Malformed ("unknown directive %" ^ d))
         else if line <> "" then
           raise (Malformed ("unexpected line before separator: " ^ line)));
        go (min (eol + 1) (String.length text))
      end
    end
  in
  match go 0 with
  | pos ->
      if not !seen_status then Result.Error "missing %status"
      else
        Result.Ok
          { !r with body = String.sub text pos (String.length text - pos) }
  | exception Malformed msg -> Result.Error msg
