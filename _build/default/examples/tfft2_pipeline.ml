(* The paper's running example, end to end: the 8-phase TFFT2 section.

   Reproduces, in one run: the ARDs of Fig. 2, the PD simplification of
   Fig. 3, the IDs and upper limits of Figs. 4/8, the LCG of Fig. 6,
   the constraint system of Table 2 and its solution, and the simulated
   parallel efficiency against the BLOCK baseline.

     dune exec examples/tfft2_pipeline.exe [p] [q] [H]
*)

open Symbolic
open Descriptor

let () =
  let p = try int_of_string Sys.argv.(1) with _ -> 4 in
  let q = try int_of_string Sys.argv.(2) with _ -> 4 in
  let h = try int_of_string Sys.argv.(3) with _ -> 4 in
  let env = Codes.Tfft2.env ~p ~q in

  Format.printf "=== TFFT2 (P = 2^%d = %d, Q = 2^%d = %d, H = %d) ===@.@."
    p (1 lsl p) q (1 lsl q) h;

  (* Fig. 1 / Fig. 2: phase F3 and its ARDs. *)
  let fig1 = Codes.Tfft2.fig1_program in
  let ctx = Ir.Phase.analyze fig1 (List.hd fig1.phases) in
  Format.printf "--- Fig. 2: ARDs of X in F3 (normalized loops) ---@.";
  List.iter
    (fun site -> Format.printf "  %a@." Ard.pp (Ard.of_site ctx site))
    (Ir.Phase.sites_of_array ctx "X");

  (* Fig. 3: the simplification chain. *)
  let raw = Pd.of_phase ctx ~array:"X" in
  Format.printf "@.--- Fig. 3(a): raw PD ---@.%a@." Pd.pp raw;
  let coalesced = Coalesce.pd raw in
  Format.printf "--- Fig. 3(c): after stride coalescing ---@.%a@." Pd.pp
    coalesced;
  let final = Unionize.simplify raw in
  Format.printf "--- Fig. 3(d): after access descriptor union ---@.%a@." Pd.pp
    final;

  (* Fig. 4 / Fig. 8: IDs, upper limits, memory gap at P=4, Q=3. *)
  let small = Env.of_list [ ("p", 2); ("P", 4); ("q", 0); ("Q", 3) ] in
  let id = Id.of_pd final in
  Format.printf "@.--- Fig. 4/8: IDs at P=4, Q=3 ---@.";
  for it = 0 to 2 do
    let region = Region.sorted (Region.addresses small final ~par:(Some it)) in
    let ul =
      match Bounds.upper_limit ctx.assume id ~i:(Expr.int it) with
      | Some e -> Env.eval small e
      | None -> -1
    in
    Format.printf "  I(X,%d) = {%s}   UL = %d@." it
      (String.concat ", " (List.map string_of_int region))
      ul
  done;
  (match Bounds.memory_gap id with
  | Some g ->
      Format.printf "  memory gap h = %a = %d@." Expr.pp g (Env.eval small g)
  | None -> Format.printf "  memory gap: n/a@.");

  (* The full pipeline: Fig. 6 LCG, Table 2, solution, plan. *)
  let t = Core.Pipeline.run Codes.Tfft2.program ~env ~h in
  Format.printf "@.--- Fig. 6 LCG + Table 2 + solution ---@.%a@.@."
    Core.Pipeline.report t;

  (* Simulated efficiency. *)
  let eff, base = Core.Pipeline.efficiency t in
  Format.printf "--- Simulated efficiency ---@.";
  Format.printf "LCG-derived distribution: %5.1f%%@." (100. *. eff);
  Format.printf "naive BLOCK baseline:     %5.1f%%@." (100. *. base)
