open Symbolic
open Descriptor

type member = { name : string; phase_idx : int; region_size : int }

type summary = {
  array : string;
  members : member list;
  chain_size : int;
  max_member : int;
  homogenized : Pd.t option;
  covers_alike : bool;
}

(* Member and union sizes by enumeration: the oracle path.  A
   non-rectangular member contributes nothing (size 0, no addresses in
   the union), which the symbolic path mirrors. *)
let sizes_enum (lcg : Lcg.t) (nodes : Lcg.node list) =
  let union = Hashtbl.create 256 in
  let members =
    List.map
      (fun (n : Lcg.node) ->
        let size =
          try
            let tbl = Region.addresses lcg.env n.pd ~par:None in
            Hashtbl.iter (fun a () -> Hashtbl.replace union a ()) tbl;
            Hashtbl.length tbl
          with Region.Not_rectangular _ -> 0
        in
        { name = n.name; phase_idx = n.phase_idx; region_size = size })
      nodes
  in
  (members, Hashtbl.length union)

exception Chain_fallback of string

(* Closed-form member cardinalities and chain-union volume.  A member
   that raises [Not_rectangular] is size 0 and contributes no boxes,
   exactly like the enumerating path above. *)
let sizes_symbolic (lcg : Lcg.t) (nodes : Lcg.node list) =
  try
    let all_boxes = ref [] in
    let members =
      List.map
        (fun (n : Lcg.node) ->
          let size =
            match Setalg.boxes lcg.env n.pd ~par:None with
            | bs -> (
                all_boxes := bs @ !all_boxes;
                match Lattice.union_card bs with
                | Some c -> c
                | None ->
                    raise (Chain_fallback (n.name ^ " member volume")))
            | exception Region.Not_rectangular _ -> 0
            | exception Lattice.Overflow ->
                raise (Chain_fallback (n.name ^ " address overflow"))
          in
          { name = n.name; phase_idx = n.phase_idx; region_size = size })
        nodes
    in
    match Lattice.union_card !all_boxes with
    | Some c -> Some (members, c)
    | None -> raise (Chain_fallback "chain union volume")
  with Chain_fallback reason ->
    Lattice.note_fallback ~stage:"chain" reason;
    None

let sizes (lcg : Lcg.t) nodes =
  match !Lattice.mode with
  | Lattice.Enumerated_only -> sizes_enum lcg nodes
  | Lattice.Auto | Lattice.Symbolic_only -> (
      match sizes_symbolic lcg nodes with
      | Some r -> r
      | None -> sizes_enum lcg nodes)

let summaries_raw (lcg : Lcg.t) : summary list =
  List.concat_map
    (fun (g : Lcg.graph) ->
      List.map
        (fun chain ->
          let nodes = List.map (List.nth g.nodes) chain in
          let members, chain_size = sizes lcg nodes in
          let max_member =
            List.fold_left (fun acc m -> max acc m.region_size) 0 members
          in
          let homogenized =
            match nodes with
            | [] -> None
            | (first : Lcg.node) :: rest ->
                List.fold_left
                  (fun acc (n : Lcg.node) ->
                    Option.bind acc (fun pd -> Unionize.homogenize pd n.pd))
                  (Some first.pd) rest
          in
          let covers_alike =
            chain_size = 0
            || List.for_all
                 (fun m -> 10 * m.region_size >= 8 * chain_size)
                 members
          in
          { array = g.array; members; chain_size; max_member; homogenized; covers_alike })
        (Lcg.chains g))
    lcg.graphs

(* Summaries are a pure function of the graph, which is itself keyed by
   (program, environment, H); chain membership follows the probed edge
   labels, so the store is volatile like [Lcg.build]'s.  The accounting
   mode joins the key so cross-checking runs never share entries. *)
let memo : summary list Artifact.store =
  Artifact.store ~capacity:256 ~volatile:true "chain.summaries"

let summaries (lcg : Lcg.t) : summary list =
  Artifact.find memo
    Artifact.Key.(
      list
        [
          Ir.Types.program_key lcg.prog;
          int (Env.id lcg.env);
          int lcg.h;
          int (Lattice.mode_tag ());
        ])
    (fun () -> summaries_raw lcg)

let pp ppf (s : summary) =
  Format.fprintf ppf "@[<v 2>chain [%s] on %s: %d addresses%s%s@,%a@]"
    (String.concat " -> " (List.map (fun m -> m.name) s.members))
    s.array s.chain_size
    (if s.covers_alike then ", members cover alike" else ", coverage varies")
    (match s.homogenized with Some _ -> ", homogenizes" | None -> "")
    (Format.pp_print_list
       ~pp_sep:Format.pp_print_cut
       (fun ppf m ->
         Format.fprintf ppf "%-10s covers %d" m.name m.region_size))
    s.members
