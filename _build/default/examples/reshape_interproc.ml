(* Inter-procedural analysis with array reshaping.

   One of the paper's selling points over contemporaries: descriptors
   survive array reshaping across subroutine boundaries.  Here a
   subroutine SMOOTH declares its dummy argument as an N x M matrix;
   the caller passes two different flat sections of a 2NM-element
   vector G (Fortran storage-sequence association).  After inlining,
   the flat-address descriptors line up and the LCG still finds L
   edges between the caller's producer, both reshaped calls, and the
   caller's consumer - no redistribution anywhere.

     dune exec examples/reshape_interproc.exe
*)

open Symbolic
open Ir
open Ir.Build

let n = var "N"
let m = var "M"

(* subroutine SMOOTH(A, B):  real A(N, M), B(N, M)
     doall j = 1, M-2: do i = 0, N-1:
       B(i, j) = A(i, j-1) + A(i, j) + A(i, j+1) *)
let smooth : Inline.subroutine =
  {
    sub_name = "SMOOTH";
    formals = [ array "A" [ n; m ]; array "B" [ n; m ] ];
    body =
      [
        phase "SMOOTH"
          (doall "j" ~lo:(int 1) ~hi:(m - int 2)
             [
               do_ "i" ~lo:(int 0) ~hi:(n - int 1)
                 [
                   assign ~work:3
                     [
                       read "A" [ var "i"; var "j" - int 1 ];
                       read "A" [ var "i"; var "j" ];
                       read "A" [ var "i"; var "j" + int 1 ];
                       write "B" [ var "i"; var "j" ];
                     ];
                 ];
             ]);
      ];
  }

let program =
  Inline.program_with_calls ~name:"reshape"
    ~params:
      (Assume.of_list
         [ ("N", Assume.Int_range (8, 32)); ("M", Assume.Int_range (8, 32)) ])
    ~arrays:[ array "G" [ int 2 * n * m ]; array "G2" [ int 2 * n * m ] ]
    [
      (* caller writes the whole vector column-block-wise *)
      `Phase
        (phase "INIT"
           (doall "j" ~lo:(int 0) ~hi:((int 2 * m) - int 1)
              [
                do_ "i" ~lo:(int 0) ~hi:(n - int 1)
                  [ assign ~work:2 [ write "G" [ var "i" + (n * var "j") ] ] ];
              ]));
      (* CALL SMOOTH(G, G2)            - first halves as N x M matrices *)
      `Call
        {
          Inline.sub = smooth;
          bindings =
            [
              ("A", { Inline.target = "G"; base = Expr.zero });
              ("B", { Inline.target = "G2"; base = Expr.zero });
            ];
          tag = "LO";
        };
      (* CALL SMOOTH(G(N*M+1), G2(N*M+1)) - second halves *)
      `Call
        {
          Inline.sub = smooth;
          bindings =
            [
              ("A", { Inline.target = "G"; base = Expr.mul n m });
              ("B", { Inline.target = "G2"; base = Expr.mul n m });
            ];
          tag = "HI";
        };
      (* caller consumes the result flat *)
      `Phase
        (phase "USE"
           (doall "k" ~lo:(int 0) ~hi:((int 2 * n * m) - int 1)
              [ assign ~work:1 [ read "G2" [ var "k" ] ] ]));
    ]

let () =
  let env = Env.of_list [ ("N", 16); ("M", 16) ] in
  let h = 4 in
  Format.printf "=== Reshaping across subroutine calls (H = %d) ===@.@." h;
  Format.printf "Inlined phases: %s@.@."
    (String.concat ", "
       (List.map (fun (p : Types.phase) -> p.phase_name) program.phases));
  let t = Core.Pipeline.run program ~env ~h in
  Format.printf "%a@.@." Core.Pipeline.report t;
  let eff, base = Core.Pipeline.efficiency t in
  Format.printf "Efficiency: %.1f%% (LCG) vs %.1f%% (BLOCK)@." (100. *. eff)
    (100. *. base);
  let g = List.hd t.lcg.graphs in
  let labels =
    List.filter_map
      (fun (e : Locality.Lcg.edge) ->
        if e.back then None
        else Some (Locality.Table1.label_to_string e.label))
      g.edges
  in
  Format.printf "Edge labels through the reshaped calls: %s@."
    (String.concat " " labels)
