lib/ir/autopar.ml: Assume Enumerate Env Expr Hashtbl List Option Random String Symbolic Types
