(** Rule-driven static lint pass over the IR.

    Checks a whole program against a catalog of stable [LINT-*] codes
    before any descriptor machinery runs, so malformed inputs are
    reported with precise positions (phase name, loop variable, array)
    instead of surfacing later as stage-level degradation.  Each rule
    emits through {!Diag} with stage [Lint]; the pipeline runs the pass
    up front and, under [--strict], refuses to analyze a program with
    [Error]-severity findings.

    The catalog (see DESIGN.md, "Static certification & lint catalog"):

    - [LINT-MULTI-PARALLEL] (error): more than one loop of a phase is
      marked parallel - the IR's phase condition.
    - [LINT-UNDECLARED-ARRAY] (error): a reference names an array with
      no declaration.
    - [LINT-SUBSCRIPT] (warning; error for rank mismatches): a
      subscript outside the affine class the descriptors model exactly
      (non-linear in a loop index), or a reference whose rank differs
      from the declaration.
    - [LINT-UNBOUND-PARAM] (error): a loop bound, subscript or array
      extent mentions a variable that is neither an enclosing loop
      index nor a declared program parameter.
    - [LINT-NONNORMAL] (info): a loop that does not run from 0 with
      step 1 (normalized automatically downstream; recorded because
      the paper's formulas assume normalized indices).
    - [LINT-BOUNDS] (error): under a sampled parameter environment,
      some access falls outside the array's declared extent.
    - [LINT-DEAD-WRITE] (warning): an array is written but never read
      anywhere in the program - either dead computation or the
      program's un-consumed output.
    - [LINT-RACE] (error): a loop declared parallel carries a
      cross-iteration dependence - refuted by the static certifier
      ({!Descriptor.Racecheck}) or caught by the sampling oracle.
    - [LINT-UNCERTIFIED] (info): a declared parallel loop the
      certifier cannot decide; sampling found no conflict, so the
      marking stands on probabilistic evidence only. *)

open Symbolic

exception Failed of Diag.t list
(** Raised by {!Pipeline.run} under [--strict] when lint found
    [Error]-severity problems; carries every finding. *)

val catalog : (string * Diag.severity * string) list
(** Every stable code with its default severity and a one-line
    description, in emission order. *)

val check :
  ?racecheck:bool ->
  ?envs:Env.t list ->
  ?diags:Diag.collector ->
  Ir.Types.program ->
  Diag.t list
(** Run every rule over every phase and return the findings (also
    recorded into [diags] when given).  [racecheck] (default [true])
    controls the certifier-backed [LINT-RACE] / [LINT-UNCERTIFIED]
    rules - the only expensive ones; [envs] are the sampled parameter
    environments for the dynamic rules (default: 3 samples of the
    program's parameter domains). *)

val autopar :
  ?envs:Env.t list -> ?diags:Diag.collector -> Ir.Types.program -> Ir.Types.program
(** Certified auto-parallelization: {!Ir.Autopar.recognize_reductions}
    followed by {!Ir.Autopar.mark} with {!Descriptor.Racecheck} as the
    injected certifier.  Any static/dynamic disagreement found while
    marking is emitted as an [Error] diagnostic with code
    [RACE-ORACLE-MISMATCH] (stage [Autopar]) instead of being silently
    resolved; the marking itself always trusts the certifier. *)
