lib/locality/balance.ml: Descriptor Env Expr Format Id List Option Probe Symbolic Symmetry
