lib/frontend/unparse.mli: Format Ir Symbolic
