(** Variable-domain assumptions.

    Describes, in declaration order, the domain from which each symbolic
    variable draws its values.  Later entries may have bounds that are
    expressions over earlier variables (loop indices with non-constant
    limits, such as [0 <= J <= P*2^(-L) - 1] in the TFFT2 nest).  The
    order is the sampling order used by {!Probe}. *)

type domain =
  | Int_range of int * int
      (** Free parameter drawn uniformly from a concrete interval. *)
  | Pow2_of of string
      (** The value is [2^v] for the (already declared) variable [v];
          models the paper's [P = 2^p] input constraints. *)
  | Expr_range of Expr.t * Expr.t
      (** Loop index: inclusive bounds, expressions over earlier vars. *)

type t

val empty : t
val add : t -> string -> domain -> t
val of_list : (string * domain) list -> t
val to_list : t -> (string * domain) list
val vars : t -> string list
val domain_of : t -> string -> domain option

val key : t -> Artifact.Key.t
(** Stable {!Artifact} cache key covering the whole declaration list
    (order-sensitive, like sampling). *)

val set_domain : t -> string -> domain -> t
(** Replace a variable's domain in place (preserving order); appends
    when absent. *)

val sample : ?state:Random.State.t -> t -> Env.t
(** Draw one complete assignment consistent with every domain, in
    declaration order.  Empty [Expr_range] intervals (hi < lo) clamp to
    the lower bound, which matches a zero-trip loop's index staying at
    its initial value. *)

val range_in_env : t -> Env.t -> string -> (int * int) option
(** Concrete inclusive range of one variable once every earlier variable
    is fixed by [env]. *)

val pp : Format.formatter -> t -> unit
