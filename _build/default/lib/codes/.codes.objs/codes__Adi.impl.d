lib/codes/adi.ml: Assume Env Expr Ir Symbolic
