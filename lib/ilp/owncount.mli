(** Closed-form event counting against per-processor address sets.

    One reference site of a phase generates the event multiset
    [{(i, base + par_stride*i + sum_j k_j*s_j)}] over its parallel and
    sequential index space, and the CYCLIC(chunk) schedule executes
    parallel iteration [i] on processor [(i / chunk) mod h].  This
    module counts, per processor, how many of the site's events land
    inside a given interval set (an ownership set, a ghost-zone family)
    - with multiplicity, in closed form: the parallel range is walked
    per constant-processor chunk run, one [|stride| = 1] sequential
    dimension becomes the contiguous window of {!Lattice.window_hits},
    and the remaining sequential dimensions are enumerated under a
    budget.

    Counts are exact (they must reproduce the enumerating oracle's
    totals event-for-event); [None] means a budget or overflow made the
    closed form unavailable and the caller falls back to enumeration. *)

open Symbolic

val budget : int
(** Default cap on chunk runs, enumerated sequential combinations and
    ownership segments. *)

val intervals_of :
  Lattice.Own.t -> lo:int -> hi:int -> Lattice.Iv.t array option
(** Per-processor ownership interval lists over [lo..hi] under the
    default {!budget}; [None] when empty ranges or the segment walk
    exhausts it. *)

val per_proc :
  h:int ->
  chunk:int ->
  par:Ir.Shape.par_shape ->
  par_n:int ->
  base:int ->
  seq:(int * int) list ->
  sets:Lattice.Iv.t array ->
  (int array * int array) option
(** [per_proc ~h ~chunk ~par ~par_n ~base ~seq ~sets] returns
    [(events, hits)] where [events.(p)] is the number of the site's
    events executed by processor [p] and [hits.(p)] is how many of
    those address into [sets.(p)].  [sets] must have length [h];
    events outside the parallel loop ([Outside]) execute on processor
    0, like the enumerator's [par = None] convention.  [None] when the
    chunk-run or sequential enumeration exceeds {!budget} or the
    arithmetic overflows. *)
