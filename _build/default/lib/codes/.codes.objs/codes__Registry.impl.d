lib/codes/registry.ml: Adi Env Ir Jacobi List Matmul Mgrid Redblack String Swim Symbolic Tfft2 Tomcatv Trisolve
