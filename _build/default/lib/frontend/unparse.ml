open Symbolic
open Ir.Types

let expr = Expr.pp

let pp_ref ppf (r : array_ref) =
  Format.fprintf ppf "%s(%a)" r.array
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       expr)
    r.index

(* One Assign may carry several writes; the surface grammar has one
   write per statement, so extra writes are emitted as separate
   zero-work statements (the access multiset and total work are
   preserved). *)
let pp_assign ppf (a : assign) =
  let reads, writes =
    List.partition (fun r -> equal_access r.access Read) a.refs
  in
  match writes with
  | [] ->
      (* read-only sinks, one per line *)
      Format.pp_print_list
        ~pp_sep:Format.pp_print_cut
        (fun ppf r -> pp_ref ppf r)
        ppf reads
  | w :: rest ->
      Format.fprintf ppf "%a = %a" pp_ref w
        (fun ppf -> function
          | [] -> Format.pp_print_string ppf "0"
          | reads ->
              Format.pp_print_list
                ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
                pp_ref ppf reads)
        reads;
      if a.work <> 1 then Format.fprintf ppf " work %d" a.work;
      List.iter
        (fun w -> Format.fprintf ppf "@,%a = 0 work 0" pp_ref w)
        rest

let rec pp_stmt ppf = function
  | Assign a -> pp_assign ppf a
  | Loop l ->
      Format.fprintf ppf "@[<v 2>%s %s = %a, %a%t@,%a@]@,end"
        (if l.parallel then "doall" else "do")
        l.var expr l.lo expr l.hi
        (fun ppf ->
          match Expr.to_int l.step with
          | Some 1 -> ()
          | _ -> Format.fprintf ppf " step %a" expr l.step)
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt)
        l.body

let program ppf (p : program) =
  Format.fprintf ppf "@[<v>program %s@," p.prog_name;
  List.iter
    (fun (v, d) ->
      match d with
      | Assume.Int_range (lo, hi) ->
          Format.fprintf ppf "param %s = %d..%d@," v lo hi
      | Assume.Pow2_of w -> Format.fprintf ppf "pow2 %s = %s@," v w
      | Assume.Expr_range _ -> ())
    (Assume.to_list p.params);
  List.iter
    (fun (a : array_decl) ->
      Format.fprintf ppf "real %s(%a)@," a.name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           expr)
        a.dims)
    p.arrays;
  List.iter
    (fun (ph : phase) ->
      Format.fprintf ppf "@,@[<v>phase %s:@,%a@]@," ph.phase_name pp_stmt
        (Loop ph.nest))
    p.phases;
  if p.repeats then Format.fprintf ppf "@,repeat@,";
  Format.fprintf ppf "@]"

let to_string p = Format.asprintf "%a@." program p
