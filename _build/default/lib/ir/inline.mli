(** Inter-procedural support: subroutines and call-site inlining.

    The paper's descriptors survive {e array reshaping} across
    subroutine boundaries - a callee may view a slice of the caller's
    array as a fresh array of different rank - because everything is
    linearized to flat addresses.  This module provides the mechanism:
    a subroutine is a parametrized phase list over formal arrays;
    [expand] splices a call into the caller by rewriting every formal
    reference into the actual array with the actual's base offset, in
    flat address space.

    A call site binds each formal to an {e actual section}: the target
    array, a flat base-offset expression, and (implicitly) the formal's
    own dims for subscript linearization - exactly Fortran's
    storage-sequence association, e.g. passing [X(K*N + 1)] of a
    1-D [X(N*M)] to a subroutine declaring its dummy as [A(N)], or
    viewing it as an [A(N1, N2)] matrix. *)

open Symbolic
open Types

type actual = {
  target : string;  (** caller array the formal aliases *)
  base : Expr.t;  (** flat offset of the section within [target] *)
}

type subroutine = {
  sub_name : string;
  formals : array_decl list;  (** dummy arrays with their callee-view dims *)
  body : phase list;  (** phases over the formals (and caller globals) *)
}

type call = {
  sub : subroutine;
  bindings : (string * actual) list;  (** formal name -> actual section *)
  tag : string;  (** phase-name prefix to keep call sites distinct *)
}

exception Bad_call of string

val expand : call -> phase list
(** The callee's phases with every formal reference rewritten to the
    actual array at the actual's base offset (flat address space); the
    loop structure is untouched, so descriptors of the result reflect
    the reshaped view.
    @raise Bad_call on an unbound formal. *)

val program_with_calls :
  ?repeats:bool ->
  name:string ->
  params:Assume.t ->
  arrays:array_decl list ->
  [ `Phase of phase | `Call of call ] list ->
  program
(** Build a program from a mix of direct phases and call sites. *)
