lib/descriptor/region.mli: Env Hashtbl Pd Symbolic
