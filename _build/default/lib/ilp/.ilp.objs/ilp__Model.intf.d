lib/ilp/model.mli: Expr Format Locality Lp Qnum Symbolic
