(* Tests for the benchmark kernels: every registry entry analyzes
   cleanly end to end, and per-code structural expectations hold. *)

open Symbolic
open Ir
open Locality

let graph_of (lcg : Lcg.t) array =
  List.find (fun (g : Lcg.graph) -> String.equal g.array array) lcg.graphs

let lcg_of name size h =
  let e = Codes.Registry.find name in
  Lcg.build e.program ~env:(e.env_of_size size) ~h

let test_registry_complete () =
  Alcotest.(check (list string))
    "nine codes"
    [ "tfft2"; "jacobi2d"; "swim"; "tomcatv"; "matmul"; "adi"; "redblack";
      "trisolve"; "mgrid" ]
    Codes.Registry.names;
  List.iter
    (fun (e : Codes.Registry.entry) ->
      (* every phase analyzable, every descriptor exact *)
      List.iter
        (fun ph ->
          let ctx = Phase.analyze e.program ph in
          List.iter
            (fun array ->
              let pd = Descriptor.Pd.of_phase ctx ~array in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s/%s exact" e.name ph.Types.phase_name array)
                true pd.exact)
            (Types.phase_arrays ph))
        e.program.phases)
    Codes.Registry.all

let test_all_analyze () =
  Probe.with_seed 60 (fun () ->
      List.iter
        (fun (e : Codes.Registry.entry) ->
          let lcg = lcg_of e.name 3 4 in
          (* one graph per array, nodes only where referenced *)
          Alcotest.(check int)
            (e.name ^ " graphs")
            (List.length e.program.arrays)
            (List.length lcg.graphs);
          List.iter
            (fun (g : Lcg.graph) ->
              List.iter
                (fun (edge : Lcg.edge) ->
                  Alcotest.(check bool) "edge endpoints valid" true
                    (edge.src >= 0 && edge.dst < List.length g.nodes))
                g.edges)
            lcg.graphs)
        Codes.Registry.all)

let test_jacobi_structure () =
  Probe.with_seed 61 (fun () ->
      let lcg = lcg_of "jacobi2d" 4 4 in
      let gu = graph_of lcg "U" and gv = graph_of lcg "V" in
      (* cyclic program: back edges exist *)
      Alcotest.(check bool) "U back edge" true
        (List.exists (fun (e : Lcg.edge) -> e.back) gu.edges);
      (* all forward edges L: the steady state is communication-free
         modulo frontier updates *)
      List.iter
        (fun (e : Lcg.edge) ->
          Alcotest.(check bool) "U edge L" true
            (Table1.equal_label e.label Table1.L))
        gu.edges;
      List.iter
        (fun (e : Lcg.edge) ->
          Alcotest.(check bool) "V edge L" true
            (Table1.equal_label e.label Table1.L))
        gv.edges;
      (* U read with overlap in SWEEP; read-only so intra holds *)
      let sweep = List.hd gu.nodes in
      Alcotest.(check bool) "overlap" true
        (sweep.sym.overlap <> Descriptor.Symmetry.No_overlap);
      Alcotest.(check bool) "intra via read-only" true sweep.intra.local)

let test_matmul_replication () =
  Probe.with_seed 62 (fun () ->
      let lcg = lcg_of "matmul" 3 4 in
      let ga = graph_of lcg "A" in
      let mult = List.hd ga.nodes in
      (* A is invariant across the parallel loop: reported as total
         overlap, intra-local because read-only *)
      Alcotest.(check string) "A attr" "R" (Liveness.attr_to_string mult.attr);
      Alcotest.(check bool) "A overlap (replicated)" true
        (mult.sym.overlap <> Descriptor.Symmetry.No_overlap);
      Alcotest.(check bool) "A intra" true mult.intra.local;
      (* C chain INIT -> MULT -> SCALE all L *)
      let gc = graph_of lcg "C" in
      List.iter
        (fun (e : Lcg.edge) ->
          Alcotest.(check bool) "C edges L" true
            (Table1.equal_label e.label Table1.L))
        gc.edges)

let test_mgrid_stride_coupling () =
  Probe.with_seed 63 (fun () ->
      let lcg = lcg_of "mgrid" 6 4 in
      let model = Ilp.Model.of_lcg lcg in
      (* the FTMP SMOOTHF->RESTRICT relation must couple p_SF = 2 p_RS *)
      let rel =
        List.find
          (fun (l : Ilp.Model.locality) ->
            String.equal l.array "FTMP" && l.k = 0 && l.g = 1)
          model.locality
      in
      Alcotest.(check (pair int int)) "1 * p_SF = 2 * p_RS" (1, 2) (rel.ai, rel.bi);
      Alcotest.(check int) "no constant" 0 rel.ci)

let test_tomcatv_serial_phase () =
  Probe.with_seed 64 (fun () ->
      let e = Codes.Registry.find "tomcatv" in
      let combine = List.nth e.program.phases 2 in
      let ctx = Phase.analyze e.program combine in
      Alcotest.(check bool) "COMBINE has no parallel loop" true (ctx.par = None);
      (* PARTIAL is written in NORM and read in COMBINE: edge must not
         be D *)
      let lcg = lcg_of "tomcatv" 3 4 in
      let gp = graph_of lcg "PARTIAL" in
      Alcotest.(check int) "two nodes" 2 (List.length gp.nodes))

let test_swim_all_chains () =
  Probe.with_seed 65 (fun () ->
      let lcg = lcg_of "swim" 4 4 in
      (* every array's forward edges are L (single chain per array) *)
      List.iter
        (fun (g : Lcg.graph) ->
          List.iter
            (fun (e : Lcg.edge) ->
              if not e.back then
                Alcotest.(check bool)
                  (Printf.sprintf "swim %s edge L" g.array)
                  true
                  (Table1.equal_label e.label Table1.L))
            g.edges)
        lcg.graphs)

(* The fig-1-only program stays in sync with the full pipeline's F3. *)
let test_tfft2_fig1_consistency () =
  Probe.with_seed 66 (fun () ->
      let fig1 = Codes.Tfft2.fig1_program in
      let full = Codes.Tfft2.program in
      let f3_fig1 = List.hd fig1.phases in
      let f3_full = List.nth full.phases 2 in
      let env = Codes.Tfft2.env ~p:3 ~q:2 in
      let a = Enumerate.address_set fig1 env f3_fig1 ~array:"X" in
      let b = Enumerate.address_set full env f3_full ~array:"X" in
      Alcotest.(check (list int)) "same X footprint"
        (Descriptor.Region.sorted a) (Descriptor.Region.sorted b))

let test_adi_needs_redistribution () =
  Probe.with_seed 67 (fun () ->
      let lcg = lcg_of "adi" 4 4 in
      let gu = graph_of lcg "U" in
      (* no static distribution serves both sweeps: at least one C edge *)
      Alcotest.(check bool) "has C edge" true
        (List.exists
           (fun (e : Lcg.edge) -> Table1.equal_label e.label Table1.C)
           gu.edges);
      (* and the run actually redistributes between the sweeps *)
      let e = Codes.Registry.find "adi" in
      let t = Core.Pipeline.run e.program ~env:(e.env_of_size 4) ~h:4 in
      let r = Core.Pipeline.simulate t in
      Alcotest.(check bool) "redistribution happened" true
        (List.exists (fun (c : Dsmsim.Exec.comm_stats) -> c.words > 0) r.comms))

let test_redblack_write_precision () =
  Probe.with_seed 69 (fun () ->
      let lcg = lcg_of "redblack" 5 4 in
      let gg = graph_of lcg "G" in
      let red = List.hd gg.nodes in
      (* consecutive iterations share READ cells but never written ones *)
      Alcotest.(check bool) "overlap present" true
        (red.sym.overlap <> Descriptor.Symmetry.No_overlap);
      Alcotest.(check bool) "no write overlap" false red.sym.write_overlap;
      Alcotest.(check bool) "intra holds" true red.intra.local;
      (* hence the RED -> BLACK edge can be L despite in-place updates *)
      List.iter
        (fun (e : Lcg.edge) ->
          Alcotest.(check bool) "edge L" true
            (Table1.equal_label e.label Table1.L))
        gg.edges)

let test_epoch_entry_two_rounds () =
  Probe.with_seed 70 (fun () ->
      (* entering a halo'd epoch needs an owner copy-in followed by a
         replica-initialization round - two Redistribute events *)
      let e = Codes.Registry.find "mgrid" in
      let t = Core.Pipeline.run e.program ~env:(e.env_of_size 4) ~h:32 in
      let sched = Dsmsim.Comm.generate t.lcg t.plan in
      let ftmp_entries =
        List.filter
          (function
            | Dsmsim.Comm.Redistribute { array = "FTMP"; before_phase = 1; _ } ->
                true
            | _ -> false)
          sched
      in
      Alcotest.(check int) "copy-in + replica init" 2
        (List.length ftmp_entries))

let test_trisolve_conservative () =
  Probe.with_seed 68 (fun () ->
      (* triangular per-iteration regions: the Y chain SOLVE->REDUCE may
         or may not balance, but the analysis must stay sound - the
         pipeline runs, the simulator conserves accesses, and the
         dataflow validator certifies the schedule *)
      let e = Codes.Registry.find "trisolve" in
      let t = Core.Pipeline.run e.program ~env:(e.env_of_size 4) ~h:4 in
      let r = Core.Pipeline.simulate t in
      Alcotest.(check bool) "runs" true (r.par_time > 0.0);
      let v = Dsmsim.Validate.run t.lcg t.plan in
      Alcotest.(check int) "no stale reads" 0 v.stale)

let () =
  Alcotest.run "codes"
    [
      ( "registry",
        [
          Alcotest.test_case "complete and exact" `Quick test_registry_complete;
          Alcotest.test_case "all analyze" `Quick test_all_analyze;
        ] );
      ( "structure",
        [
          Alcotest.test_case "jacobi" `Quick test_jacobi_structure;
          Alcotest.test_case "matmul replication" `Quick test_matmul_replication;
          Alcotest.test_case "mgrid stride coupling" `Quick
            test_mgrid_stride_coupling;
          Alcotest.test_case "tomcatv serial phase" `Quick
            test_tomcatv_serial_phase;
          Alcotest.test_case "swim chains" `Quick test_swim_all_chains;
          Alcotest.test_case "tfft2 fig1 = full F3" `Quick
            test_tfft2_fig1_consistency;
          Alcotest.test_case "adi needs redistribution" `Quick
            test_adi_needs_redistribution;
          Alcotest.test_case "trisolve conservative" `Quick
            test_trisolve_conservative;
          Alcotest.test_case "redblack write precision" `Quick
            test_redblack_write_precision;
          Alcotest.test_case "epoch entry two rounds" `Quick
            test_epoch_entry_two_rounds;
        ] );
    ]
