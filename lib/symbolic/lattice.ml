type verdict = Yes | No | Unknown

let verdict_to_string = function Yes -> "yes" | No -> "no" | Unknown -> "unknown"

let verdict_and a b =
  match (a, b) with
  | No, _ | _, No -> No
  | Unknown, _ | _, Unknown -> Unknown
  | Yes, Yes -> Yes

exception Overflow

module Safe = struct
  (* Same guards as Qnum's internal add_int/mul_int (PR 4): validate a
     product by dividing back, a sum by the sign of the result. *)
  let add a b =
    let s = a + b in
    if (a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0) then raise Overflow else s

  let mul a b =
    if a = 0 || b = 0 then 0
    else if (a = -1 && b = min_int) || (b = -1 && a = min_int) then raise Overflow
    else
      let p = a * b in
      if p / b <> a then raise Overflow else p

  let add_sat a b =
    match add a b with
    | s -> s
    | exception Overflow -> if a >= 0 then max_int else min_int

  let mul_sat a b =
    match mul a b with
    | p -> p
    | exception Overflow -> if (a >= 0) = (b >= 0) then max_int else min_int
end

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Floor/ceiling division with a positive divisor and any dividend. *)
let fdiv a b = if a >= 0 then a / b else -((-a + b - 1) / b)
let cdiv a b = if a >= 0 then (a + b - 1) / b else -(-a / b)

(* {1 Boxes} *)

type box = { base : int; dims : (int * int) list }

(* Normal form: strides positive and ascending; equal strides merged
   set-wise ((c1,s)+(c2,s) covers 0..(c1+c2-2)*s step s); a dense
   prefix - dimensions whose stride is at most the length of the
   interval accumulated so far - is collapsed into one stride-1
   dimension, because the union of translates of [0,p-1] at step s <= p
   is again an interval. *)
let make ~base dims =
  if List.exists (fun (c, _) -> c <= 0) dims then None
  else begin
    let base = ref base in
    let dims =
      List.filter_map
        (fun (c, s) ->
          if c = 1 || s = 0 then None
          else if s < 0 then begin
            base := Safe.add !base (Safe.mul (c - 1) s);
            Some (c, -s)
          end
          else Some (c, s))
        dims
    in
    let dims = List.sort (fun (_, s1) (_, s2) -> compare s1 s2) dims in
    let rec merge = function
      | (c1, s1) :: (c2, s2) :: rest when s1 = s2 ->
          merge ((Safe.add c1 (c2 - 1), s1) :: rest)
      | d :: rest -> d :: merge rest
      | [] -> []
    in
    let dims = merge dims in
    let p = ref 1 and outer = ref [] in
    List.iter
      (fun (c, s) ->
        if !outer = [] && s <= !p then p := Safe.add !p (Safe.mul (c - 1) s)
        else outer := (c, s) :: !outer)
      dims;
    let dims = (if !p > 1 then [ (!p, 1) ] else []) @ List.rev !outer in
    Some { base = !base; dims }
  end

let point x = { base = x; dims = [] }
let base b = b.base
let dims b = b.dims
let lo b = b.base

let span b =
  List.fold_left (fun acc (c, s) -> Safe.add acc (Safe.mul (c - 1) s)) 0 b.dims

let hi b = Safe.add b.base (span b)
let shift b k = { b with base = Safe.add b.base k }

(* One ascending scan computing cardinality, intervality and span.
   Invariant: [interval] implies the set built so far is exactly
   [0..span], i.e. [card = span + 1]. *)
type shape = { s_card : int option; s_interval : bool }

let analyze b =
  let rec scan sp card interval = function
    | [] -> { s_card = card; s_interval = interval }
    | (c, s) :: rest ->
        if s > sp then
          (* Distinct copies of the current set: positional digits. *)
          scan
            (Safe.add sp (Safe.mul (c - 1) s))
            (Option.map (fun k -> Safe.mul k c) card)
            (interval && s = sp + 1)
            rest
        else if interval then
          (* Overlapping translates of a full interval stay an interval. *)
          let sp' = Safe.add sp (Safe.mul (c - 1) s) in
          scan sp' (Some (Safe.add sp' 1)) true rest
        else scan (Safe.add sp (Safe.mul (c - 1) s)) None false rest
  in
  scan 0 (Some 1) true b.dims

let card b = try (analyze b).s_card with Overflow -> None

let interval b =
  try if (analyze b).s_interval then Some (b.base, hi b) else None
  with Overflow -> None

(* Nested-distinct: ascending strides, each strictly larger than the
   span of everything below it - the positional (mixed-radix) case,
   where greedy decomposition over descending strides is exact. *)
let distinct_nested b =
  let rec go sp = function
    | [] -> true
    | (c, s) :: rest -> s > sp && go (Safe.add sp (Safe.mul (c - 1) s)) rest
  in
  go 0 b.dims

(* Digits of [x - base] over the dimensions of a nested-distinct box,
   descending greedy with per-digit clamping; [None] when x is not a
   member.  Returns digits aligned with [b.dims] (ascending order). *)
let digits_exn b x =
  let desc = List.rev b.dims in
  let rem = ref (x - b.base) in
  let ds =
    List.map
      (fun (c, s) ->
        let d = fdiv !rem s in
        let d = if d < 0 then 0 else if d > c - 1 then c - 1 else d in
        rem := !rem - (d * s);
        d)
      desc
  in
  if !rem = 0 then Some (List.rev ds) else None

let mem b x =
  try
    if x < lo b || x > hi b then No
    else if distinct_nested b then
      match digits_exn b x with Some _ -> Yes | None -> No
    else Unknown
  with Overflow -> Unknown

let subset a w =
  try
    if lo a < lo w || hi a > hi w then No
    else if (analyze w).s_interval then Yes
    else if not (distinct_nested w) then Unknown
    else
      match digits_exn w a.base with
      | None -> No
      | Some ds -> (
          match digits_exn w (hi a) with
          | None -> No
          | Some _ ->
              (* Try to embed each dimension of [a] into the digit space
                 of [w]: a dimension (c, s) maps onto the w-dimension of
                 the largest stride sj dividing s, advancing its digit
                 by s/sj per step; the walk stays inside w iff the
                 digit never exceeds its radix. *)
              let w_dims = Array.of_list w.dims in
              let digit = Array.of_list ds in
              let used = Array.make (Array.length w_dims) 0 in
              let embed (c, s) =
                let j = ref (-1) in
                Array.iteri
                  (fun i (_, sj) -> if sj <= s && s mod sj = 0 then j := i)
                  w_dims;
                if !j < 0 then false
                else
                  let cj, sj = w_dims.(!j) in
                  match Safe.mul (c - 1) (s / sj) with
                  | steps ->
                      if digit.(!j) + used.(!j) + steps <= cj - 1 then begin
                        used.(!j) <- used.(!j) + steps;
                        true
                      end
                      else false
                  | exception Overflow -> false
              in
              if List.for_all embed a.dims then Yes else Unknown)
  with Overflow -> Unknown

(* Same stride vector, combined-nested: each stride strictly larger
   than the combined span of lower dimensions of both boxes.  Then a
   difference of members has a unique digit representation, found by
   descending search over at most two floor candidates per digit. *)
let same_strides a b =
  List.length a.dims = List.length b.dims
  && List.for_all2 (fun (_, s1) (_, s2) -> s1 = s2) a.dims b.dims

let combined_nested a b =
  let rec go sp da db =
    match (da, db) with
    | [], [] -> true
    | (ca, s) :: ra, (cb, _) :: rb ->
        s > sp && go (Safe.add sp (Safe.mul (ca + cb - 2) s)) ra rb
    | _ -> false
  in
  go 0 a.dims b.dims

(* Does delta have a representation sum e_j * s_j with
   e_j in [-(cb_j - 1), ca_j - 1]?  (Dims descending in the search.) *)
let diff_representable a b delta =
  let desc = List.rev (List.combine a.dims b.dims) in
  let rec go delta = function
    | [] -> delta = 0
    | ((ca, s), (cb, _)) :: rest ->
        let f = fdiv delta s in
        let try_e e =
          e >= -(cb - 1) && e <= ca - 1 && go (delta - (e * s)) rest
        in
        try_e f || try_e (f + 1)
  in
  go delta desc

let disjoint a b =
  try
    if hi a < lo b || hi b < lo a then Yes
    else begin
      (* Lattice separation: all strides share a divisor g that does
         not divide the base difference. *)
      let g =
        List.fold_left (fun g (_, s) -> gcd g s) 0 (a.dims @ b.dims)
      in
      if g >= 2 && (a.base - b.base) mod g <> 0 then Yes
      else if a.dims = [] then (match mem b a.base with Unknown -> Unknown | Yes -> No | No -> Yes)
      else if b.dims = [] then (match mem a b.base with Unknown -> Unknown | Yes -> No | No -> Yes)
      else if mem a b.base = Yes || mem b a.base = Yes then
        (* a base is always a member, so a Yes is a witness point *)
        No
      else if (analyze a).s_interval && (analyze b).s_interval then No
        (* hulls overlap and both are full intervals *)
      else if same_strides a b && combined_nested a b then
        if diff_representable a b (b.base - a.base) then No else Yes
      else Unknown
    end
  with Overflow -> Unknown

let bounds = function
  | [] -> None
  | b :: rest ->
      Some
        (List.fold_left
           (fun (l, h) b -> (min l (lo b), max h (hi b)))
           (lo b, hi b) rest)

(* {1 Interval lists} *)

module Iv = struct
  type t = (int * int) list

  let norm ivs =
    let ivs = List.filter (fun (l, h) -> l <= h) ivs in
    let ivs = List.sort compare ivs in
    let rec merge = function
      | (l1, h1) :: (l2, h2) :: rest when l2 <= h1 + 1 ->
          merge ((l1, max h1 h2) :: rest)
      | iv :: rest -> iv :: merge rest
      | [] -> []
    in
    merge ivs

  let union a b = norm (a @ b)

  let inter a b =
    let rec go a b acc =
      match (a, b) with
      | [], _ | _, [] -> List.rev acc
      | (l1, h1) :: ra, (l2, h2) :: rb ->
          let l = max l1 l2 and h = min h1 h2 in
          let acc = if l <= h then (l, h) :: acc else acc in
          if h1 < h2 then go ra b acc else go a rb acc
    in
    go a b []

  let subtract a b =
    let rec go a b acc =
      match a with
      | [] -> List.rev acc
      | (l1, h1) :: ra -> (
          match b with
          | [] -> go ra b ((l1, h1) :: acc)
          | (l2, h2) :: rb ->
              if h2 < l1 then go a rb acc
              else if l2 > h1 then go ra b ((l1, h1) :: acc)
              else
                let acc = if l1 < l2 then (l1, l2 - 1) :: acc else acc in
                if h1 > h2 then go ((h2 + 1, h1) :: ra) rb acc
                else go ra b acc)
    in
    go a b []

  let shift ivs k = List.map (fun (l, h) -> (Safe.add l k, Safe.add h k)) ivs
  let clamp ivs ~lo ~hi = inter ivs [ (lo, hi) ]

  let total ivs =
    List.fold_left (fun acc (l, h) -> Safe.add acc (h - l + 1)) 0 ivs

  let is_empty = function [] -> true | _ -> false
  let mem ivs x = List.exists (fun (l, h) -> l <= x && x <= h) ivs
end

(* {1 Union cardinality via digit-space rectangles} *)

let union_dims_limit = 4

(* Volume of a union of axis-aligned integer rectangles, by coordinate
   compression on the last axis and recursion.  Rectangles are
   (corner, extent) arrays; all the same dimensionality. *)
let rec rect_union_volume dim rects =
  if rects = [] then 0
  else if dim = 0 then 1
  else
    let d = dim - 1 in
    let cuts =
      List.concat_map (fun r -> let c, e = r.(d) in [ c; c + e ]) rects
      |> List.sort_uniq compare
    in
    let rec segs acc = function
      | x1 :: (x2 :: _ as rest) ->
          let active =
            List.filter (fun r -> let c, e = r.(d) in c <= x1 && x2 <= c + e) rects
          in
          let sub = rect_union_volume d active in
          segs (Safe.add acc (Safe.mul (x2 - x1) sub)) rest
      | _ -> acc
    in
    segs 0 cuts

let union_card_exact boxes =
  match boxes with
  | [] -> Some 0
  | [ b ] -> card b
  | _ -> (
      try
        if List.for_all (fun b -> (analyze b).s_interval) boxes then
          Some (Iv.total (Iv.norm (List.map (fun b -> (lo b, hi b)) boxes)))
        else begin
          let strides =
            List.concat_map (fun b -> List.map snd b.dims) boxes
            |> List.sort_uniq compare
          in
          if List.length strides > union_dims_limit then None
          else begin
            let strides = Array.of_list strides in
            let nd = Array.length strides in
            let origin =
              List.fold_left (fun m b -> min m b.base) max_int boxes
            in
            (* Decompose each base offset over the stride basis,
               descending greedy; digits must be exact and >= 0. *)
            let exception Out in
            let rect_of b =
              let rem = ref (b.base - origin) in
              let corner = Array.make nd 0 in
              for j = nd - 1 downto 0 do
                let d = !rem / strides.(j) in
                corner.(j) <- d;
                rem := !rem - (d * strides.(j))
              done;
              if !rem <> 0 then raise Out;
              let extent = Array.make nd 1 in
              List.iter
                (fun (c, s) ->
                  let j = ref (-1) in
                  Array.iteri (fun i sj -> if sj = s then j := i) strides;
                  extent.(!j) <- c)
                b.dims;
              Array.init nd (fun j -> (corner.(j), extent.(j)))
            in
            match List.map rect_of boxes with
            | rects ->
                (* Injectivity of the digit map over the combined hull:
                   each stride must exceed the span of the hulls of all
                   lower digits. *)
                let ok = ref true in
                let sp = ref 0 in
                for j = 0 to nd - 1 do
                  if strides.(j) <= !sp then ok := false;
                  let cmin =
                    List.fold_left (fun m r -> min m (fst r.(j))) max_int rects
                  in
                  let cmax =
                    List.fold_left
                      (fun m r -> max m (fst r.(j) + snd r.(j) - 1))
                      min_int rects
                  in
                  sp := Safe.add !sp (Safe.mul (cmax - cmin) strides.(j))
                done;
                if not !ok then None
                else Some (rect_union_volume nd rects)
            | exception Out -> None
          end
        end
      with Overflow -> None)

let test_card_skew = ref 0

let union_card boxes =
  match union_card_exact boxes with
  | Some n when !test_card_skew <> 0 && n > 0 -> Some (n + !test_card_skew)
  | r -> r

(* {1 Ownership} *)

module Own = struct
  type t = {
    h : int;
    base : int;
    block : int;
    period : int option;
    mirror : int option;
  }

  let owner o addr =
    let rel = addr - o.base in
    let rel = if rel < 0 then 0 else rel in
    let rel =
      match o.period with Some d when d > 0 -> rel mod d | _ -> rel
    in
    let rel =
      match o.mirror with
      | Some m when m > 0 && rel < m -> min rel (m - 1 - rel)
      | _ -> rel
    in
    rel / o.block mod o.h

  (* Largest e in [x, hi] such that the owner is constant on [x, e]:
     intersect the current period cell, the current block of the
     (possibly mirrored) fold coordinate, and the current mirror
     branch. *)
  let run_end o ~hi x =
    if x < o.base then min hi (o.base - 1)
    else begin
      let rel = x - o.base in
      let e_period, r =
        match o.period with
        | Some d when d > 0 -> (x + (d - (rel mod d)) - 1, rel mod d)
        | _ -> (max_int, rel)
      in
      let e =
        match o.mirror with
        | Some m when m > 0 && r < m ->
            let half = (m - 1) / 2 in
            if r <= half then
              (* ascending branch: fold coord f = r *)
              let e_block = x + (o.block - (r mod o.block)) - 1 in
              min (min e_period e_block) (x + (half - r))
            else
              (* descending branch: f = m-1-r decreases as r grows;
                 f stays in its block while f >= floor(f/b)*b *)
              let f = m - 1 - r in
              let flo = f / o.block * o.block in
              min e_period (x + (m - 1 - flo - r))
        | _ -> min e_period (x + (o.block - (r mod o.block)) - 1)
      in
      min hi e
    end

  let segments o ~lo ~hi ~budget =
    if lo > hi || o.h <= 0 || o.block <= 0 then Some []
    else begin
      let acc = ref [] and x = ref lo and n = ref 0 and over = ref false in
      while !x <= hi && not !over do
        incr n;
        if !n > budget then over := true
        else begin
          let e = run_end o ~hi !x in
          let ow = owner o !x in
          assert (owner o e = ow);
          acc := (!x, e, ow) :: !acc;
          x := e + 1
        end
      done;
      if !over then None else Some (List.rev !acc)
    end

  let intervals o ~lo ~hi ~budget =
    match segments o ~lo ~hi ~budget with
    | None -> None
    | Some segs ->
        let per = Array.make (max 1 o.h) [] in
        List.iter (fun (l, h, p) -> per.(p) <- (l, h) :: per.(p)) segs;
        Some (Array.map List.rev per)
end

(* {1 Progression-window hit counting}

   f(x) = |[x, x+len-1] /\ [blo, bhi]| is a trapezoid in x: ascending
   with slope 1 up to the plateau M = min(len, bhi-blo+1), then
   descending with slope -1.  Summing f over x = a + i*d for i < n
   splits the index range into three arithmetic series. *)

let range_sum ~c ~first ~step =
  (* sum_{j=0}^{c-1} (first + j*step); terms are in [0, plateau] so the
     saturating products only clamp when the true total is huge. *)
  if c <= 0 then 0
  else
    let e = if c land 1 = 0 then c / 2 * (c - 1) else c * ((c - 1) / 2) in
    Safe.add_sat (Safe.mul_sat c first) (Safe.mul_sat step e)

let window_hits_1 ~a ~d ~n ~len (blo, bhi) =
  if n <= 0 || len <= 0 || blo > bhi then 0
  else if d = 0 then
    let l = max a blo and h = min (a + len - 1) bhi in
    if l > h then 0 else Safe.mul_sat n (h - l + 1)
  else
    let a, d = if d < 0 then (a + ((n - 1) * d), -d) else (a, d) in
    let m = min len (bhi - blo + 1) in
    let i_lo = max 0 (cdiv (blo - len + 1 - a) d) in
    let i_hi = min (n - 1) (fdiv (bhi - a) d) in
    if i_lo > i_hi then 0
    else begin
      let mid = fdiv (bhi + blo + 1 - len) 2 in
      let t1 = min (blo - len + m) mid in
      let t2 = max (bhi + 1 - m) (mid + 1) in
      let ia_hi = min i_hi (fdiv (t1 - a) d) in
      let id_lo = max i_lo (cdiv (t2 - a) d) in
      let asc =
        if ia_hi >= i_lo then
          range_sum ~c:(ia_hi - i_lo + 1)
            ~first:(a + (i_lo * d) - (blo - len))
            ~step:d
        else 0
      in
      let desc =
        if i_hi >= id_lo then
          range_sum ~c:(i_hi - id_lo + 1)
            ~first:(bhi - (a + (id_lo * d)) + 1)
            ~step:(-d)
        else 0
      in
      let p_lo = max i_lo (ia_hi + 1) and p_hi = min i_hi (id_lo - 1) in
      let plateau =
        if p_hi >= p_lo then Safe.mul_sat (p_hi - p_lo + 1) m else 0
      in
      Safe.add_sat asc (Safe.add_sat desc plateau)
    end

let window_hits ~a ~d ~n ~len set =
  List.fold_left
    (fun acc iv -> Safe.add_sat acc (window_hits_1 ~a ~d ~n ~len iv))
    0 set

(* {1 Mode} *)

type mode = Auto | Symbolic_only | Enumerated_only

let mode = ref Auto

let mode_tag () =
  match !mode with Auto -> 0 | Symbolic_only -> 1 | Enumerated_only -> 2

exception Outside_fragment of string

let fallback_counter = Metrics.counter "symbolic.fallback"
let fallbacks = ref 0

let note_fallback ~stage reason =
  incr fallbacks;
  Metrics.incr fallback_counter;
  Metrics.incr (Metrics.counter ("symbolic.fallback." ^ stage));
  if !mode = Symbolic_only then
    raise (Outside_fragment (stage ^ ": " ^ reason))

let fallback_count () = !fallbacks
