lib/locality/stability.ml: Assume Format Ir Lcg List Option Random String Symbolic Table1
