open Symbolic
open Ilp

exception Unsupported of string

(* Compiled subscript / bound shapes, exposed for tests: the affine
   fast path covers everything the descriptors model exactly; bounds
   or subscripts outside it (2^L factors with a loop-variable
   exponent, opaque divisions) fall back to interpreting the
   hash-consed expression against the slot file. *)
type shape = Const of int | Affine of int * (int * int) list | Opaque

type handlers = {
  read : par:int option -> array:string -> addr:int -> float;
  write : par:int option -> array:string -> addr:int -> v:float -> unit;
  stamp : site:int -> addr:int -> float;
  work : par:int option -> work:int -> unit;
  sync : unit -> unit;
}

type t = {
  phase_name : string;
  parallel : bool;
  nslots : int;
  shapes : shape list;
  sweep : slots:int array -> me:int option -> handlers -> unit;
}

let proc_of_iteration ~chunk ~h i = i / max 1 chunk mod h

(* Compile one expression to a closure over the loop-variable slot
   file.  Program parameters are substituted out of the term first, so
   the residual mentions loop variables only; the affine decomposition
   then peels one [linear_in] per scope variable.  Anything left
   (non-integer coefficients, loop-variable Pow2 exponents, opaque
   divisions) evaluates the interned term per call. *)
let compile_expr env scope shapes e =
  let subs =
    List.filter_map
      (fun v ->
        if List.mem_assoc v scope then None
        else
          match Env.find_opt env v with
          | Some c -> Some (v, Expr.int c)
          | None ->
              raise
                (Unsupported (Printf.sprintf "parameter %s has no binding" v)))
      (Expr.vars e)
  in
  let e = Expr.subst_env subs e in
  let shape =
    match Expr.to_int e with
    | Some c -> Const c
    | None -> (
        let rec peel residual acc = function
          | [] -> (
              match Expr.to_int residual with
              | Some c0 -> Some (Affine (c0, List.rev acc))
              | None -> None)
          | (v, slot) :: rest -> (
              match Expr.linear_in v residual with
              | Some (a, b) -> (
                  match Expr.to_int a with
                  | Some 0 -> peel b acc rest
                  | Some c -> peel b ((slot, c) :: acc) rest
                  | None -> None)
              | None -> None)
        in
        match peel e [] scope with Some s -> s | None -> Opaque)
  in
  shapes := shape :: !shapes;
  match shape with
  | Const c -> fun (_ : int array) -> c
  | Affine (c0, [ (s1, c1) ]) -> fun slots -> c0 + (c1 * slots.(s1))
  | Affine (c0, [ (s1, c1); (s2, c2) ]) ->
      fun slots -> c0 + (c1 * slots.(s1)) + (c2 * slots.(s2))
  | Affine (c0, coeffs) ->
      fun slots ->
        List.fold_left (fun a (s, c) -> a + (c * slots.(s))) c0 coeffs
  | Opaque ->
      let tbl = Hashtbl.create (List.length scope) in
      List.iter (fun (v, slot) -> Hashtbl.replace tbl v slot) scope;
      fun slots ->
        Expr.eval_int (fun v -> Qnum.of_int slots.(Hashtbl.find tbl v)) e

(* Linearized address of one reference: the same recursion as
   [Ir.Enumerate.iter]'s [flat] - the trailing extent never multiplies,
   so it stays unevaluated (sentinel 0). *)
let compile_addr env scope shapes (prog : Ir.Types.program)
    (r : Ir.Types.array_ref) =
  let decl =
    match Ir.Types.array_decl prog r.array with
    | d -> d
    | exception Not_found ->
        raise (Unsupported ("undeclared array " ^ r.array))
  in
  let extent d =
    try Env.eval env d
    with _ ->
      raise
        (Unsupported (Printf.sprintf "extent of %s does not evaluate" r.array))
  in
  let dims =
    match List.rev decl.dims with
    | [] -> []
    | _last :: rest_rev -> List.rev (0 :: List.map extent rest_rev)
  in
  let idx = List.map (compile_expr env scope shapes) r.index in
  if List.length idx <> List.length dims then
    raise (Unsupported ("rank mismatch on " ^ r.array));
  let rec flat idx dims =
    match (idx, dims) with
    | [ i ], [ _ ] -> i
    | i :: idx, d :: dims ->
        let rest = flat idx dims in
        fun slots -> i slots + (d * rest slots)
    | [], [] -> fun _ -> 0
    | _ -> assert false
  in
  flat idx dims

let rec has_parallel (s : Ir.Types.stmt) =
  match s with
  | Ir.Types.Assign _ -> false
  | Ir.Types.Loop l -> l.parallel || List.exists has_parallel l.body

(* One compiled statement: a closure [slots -> par -> me -> handlers].
   Ownership filtering happens at the parallel loop (a phase has at
   most one), and again defensively at each assignment for serial
   statements, which run on processor 0. *)
let rec compile_stmt env scope ~chunk ~h shapes prog (s : Ir.Types.stmt) =
  match s with
  | Ir.Types.Assign a ->
      let compiled =
        List.mapi
          (fun site (r : Ir.Types.array_ref) ->
            (site, r.access, r.array, compile_addr env scope shapes prog r))
          a.refs
      in
      let creads =
        List.filter_map
          (fun (_, acc, array, addr) ->
            if Ir.Types.equal_access acc Ir.Types.Read then Some (array, addr)
            else None)
          compiled
      and cwrites =
        List.filter_map
          (fun (site, acc, array, addr) ->
            if Ir.Types.equal_access acc Ir.Types.Write then
              Some (site, array, addr)
            else None)
          compiled
      in
      let work = a.work in
      fun slots par me (hd : handlers) ->
        let mine =
          match me with
          | None -> true
          | Some p -> (
              match par with
              | Some i -> proc_of_iteration ~chunk ~h i = p
              | None -> p = 0)
        in
        if mine then begin
          hd.work ~par ~work;
          let sum = ref 0.0 in
          List.iter
            (fun (array, addr) ->
              sum := !sum +. hd.read ~par ~array ~addr:(addr slots))
            creads;
          List.iter
            (fun (site, array, addr) ->
              let addr = addr slots in
              hd.write ~par ~array ~addr ~v:(!sum +. hd.stamp ~site ~addr))
            cwrites
        end
  | Ir.Types.Loop l ->
      let lo = compile_expr env scope shapes l.lo in
      let hi = compile_expr env scope shapes l.hi in
      let slot = List.length scope in
      let scope' = (l.var, slot) :: scope in
      let body =
        List.map (compile_stmt env scope' ~chunk ~h shapes prog) l.body
      in
      let parallel = l.parallel in
      let deeper = List.exists has_parallel l.body in
      (* at the (unique) parallel loop, skip foreign iterations
         wholesale - everything beneath belongs to the owner *)
      let prune = parallel && not deeper in
      (* a serial loop above the parallel loop carries cross-processor
         dependences (its iterations, and the serial statements among
         its children, are ordered against every processor's parallel
         work), so every processor syncs after each child - trip counts
         at these levels are identical across processors, so the sync
         counts align *)
      let sync_after = (not parallel) && deeper in
      fun slots par me hd ->
        let lo = lo slots and hi = hi slots in
        for v = lo to hi do
          let skip =
            prune
            &&
            match me with
            | Some p -> proc_of_iteration ~chunk ~h v <> p
            | None -> false
          in
          if not skip then begin
            slots.(slot) <- v;
            let par = if parallel then Some v else par in
            List.iter
              (fun f ->
                f slots par me hd;
                if sync_after then hd.sync ())
              body
          end
        done

let rec loop_depth (s : Ir.Types.stmt) =
  match s with
  | Ir.Types.Assign _ -> 0
  | Ir.Types.Loop l ->
      1 + List.fold_left (fun a b -> max a (loop_depth b)) 0 l.body

let phase (prog : Ir.Types.program) (env : Env.t) (plan : Distribution.plan) k
    (ph : Ir.Types.phase) : t =
  let ph = Ir.Normalize.phase ph in
  let chunk = plan.chunk.(k) in
  let h = plan.h in
  let shapes = ref [] in
  let nest = Ir.Types.Loop ph.nest in
  let body = compile_stmt env [] ~chunk ~h shapes prog nest in
  let parallel = has_parallel nest in
  {
    phase_name = ph.phase_name;
    parallel;
    nslots = loop_depth nest;
    shapes = List.rev !shapes;
    sweep =
      (fun ~slots ~me hd ->
        match me with
        (* a phase with no parallel loop runs wholly on processor 0 *)
        | Some p when p <> 0 && not parallel -> ()
        | _ -> body slots None me hd);
  }

let program (prog : Ir.Types.program) (env : Env.t) (plan : Distribution.plan)
    : t list =
  List.mapi (fun k ph -> phase prog env plan k ph) prog.phases
