open Descriptor
open Ir.Liveness

let derive ak ag ~overlap ~balanced : Table1.label =
  match (ak, ag) with
  | W, P -> if overlap then C else D
  | P, _ | _, P -> D
  | W, _ -> if overlap then C else if balanced then L else C
  | (R | RW), _ -> if balanced then L else C

type input = {
  attr_k : attr;
  attr_g : attr;
  id_k : Id.t;
  id_g : Id.t;
  sym_k : Symmetry.t option;
  sym_g : Symmetry.t option;
  nk : int;
  ng : int;
}

type result = {
  label : Table1.label;
  solution : Balance.solution option;
  relation : Balance.relation option;
}

let label ~env ~h (inp : input) : result =
  let sym_k =
    match inp.sym_k with Some s -> s | None -> Symmetry.analyze inp.id_k
  in
  let any_k = sym_k.overlap <> Symmetry.No_overlap in
  let any_g =
    match inp.sym_g with
    | Some s -> s.overlap <> Symmetry.No_overlap
    | None -> Symmetry.has_overlap inp.id_g
  in
  (* Table 1's overlap column concerns replicated cells that phase F_k
     WRITES (those force frontier flushes); read-only sharing is served
     by ghost replication. *)
  let overlap = sym_k.write_overlap in
  let relation =
    Balance.relation ~overlap_k:any_k ~overlap_g:any_g inp.id_k inp.id_g
  in
  let solution =
    Option.bind relation (Balance.solve ~env ~h ~nk:inp.nk ~ng:inp.ng)
  in
  let intra_k = (Intra.check ~sym:sym_k ~attr:inp.attr_k inp.id_k).local in
  let balanced = solution <> None && intra_k in
  let label = derive inp.attr_k inp.attr_g ~overlap ~balanced in
  {
    label;
    solution = (if Table1.equal_label label L then solution else None);
    relation;
  }
