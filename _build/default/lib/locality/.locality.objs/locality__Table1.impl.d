lib/locality/table1.ml: Format Ir List Printf
