type token =
  | INT of int
  | IDENT of string
  | KW of string
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CARET
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | EQUAL
  | DOTDOT
  | NEWLINE
  | EOF

exception Error of { line : int; message : string }

let keywords =
  [ "program"; "param"; "pow2"; "real"; "phase"; "doall"; "do"; "end";
    "repeat"; "work"; "to"; "step"; "sub"; "endsub"; "call" ]

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable lookahead : token option;
}

let of_string src = { src; pos = 0; line = 1; lookahead = None }
let line t = t.line

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let rec scan t : token =
  if t.pos >= String.length t.src then EOF
  else
    let c = t.src.[t.pos] in
    match c with
    | ' ' | '\t' | '\r' ->
        t.pos <- t.pos + 1;
        scan t
    | '\n' ->
        t.pos <- t.pos + 1;
        t.line <- t.line + 1;
        NEWLINE
    | '!' | '#' ->
        (* comment to end of line *)
        while t.pos < String.length t.src && t.src.[t.pos] <> '\n' do
          t.pos <- t.pos + 1
        done;
        scan t
    | '+' -> t.pos <- t.pos + 1; PLUS
    | '-' -> t.pos <- t.pos + 1; MINUS
    | '*' ->
        (* Fortran's ** is exponentiation too *)
        if t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '*' then begin
          t.pos <- t.pos + 2;
          CARET
        end
        else begin
          t.pos <- t.pos + 1;
          STAR
        end
    | '/' -> t.pos <- t.pos + 1; SLASH
    | '^' -> t.pos <- t.pos + 1; CARET
    | '(' -> t.pos <- t.pos + 1; LPAREN
    | ')' -> t.pos <- t.pos + 1; RPAREN
    | ',' -> t.pos <- t.pos + 1; COMMA
    | ':' -> t.pos <- t.pos + 1; COLON
    | '=' -> t.pos <- t.pos + 1; EQUAL
    | '.' ->
        if t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '.' then begin
          t.pos <- t.pos + 2;
          DOTDOT
        end
        else raise (Error { line = t.line; message = "stray '.'" })
    | c when is_digit c ->
        let start = t.pos in
        while t.pos < String.length t.src && is_digit t.src.[t.pos] do
          t.pos <- t.pos + 1
        done;
        let digits = String.sub t.src start (t.pos - start) in
        (match int_of_string_opt digits with
        | Some n -> INT n
        | None ->
            raise
              (Error
                 {
                   line = t.line;
                   message =
                     Printf.sprintf "integer literal %s out of range" digits;
                 }))
    | c when is_alpha c ->
        let start = t.pos in
        while
          t.pos < String.length t.src
          && (is_alpha t.src.[t.pos] || is_digit t.src.[t.pos])
        do
          t.pos <- t.pos + 1
        done;
        let word = String.sub t.src start (t.pos - start) in
        let lower = String.lowercase_ascii word in
        if List.mem lower keywords then KW lower else IDENT word
    | c ->
        raise
          (Error
             { line = t.line; message = Printf.sprintf "unexpected character %C" c })

let peek t =
  match t.lookahead with
  | Some tok -> tok
  | None ->
      let tok = scan t in
      t.lookahead <- Some tok;
      tok

let next t =
  match t.lookahead with
  | Some tok ->
      t.lookahead <- None;
      tok
  | None -> scan t

let pp_token ppf = function
  | INT n -> Format.fprintf ppf "%d" n
  | IDENT s -> Format.fprintf ppf "%s" s
  | KW s -> Format.fprintf ppf "%s" s
  | PLUS -> Format.pp_print_string ppf "+"
  | MINUS -> Format.pp_print_string ppf "-"
  | STAR -> Format.pp_print_string ppf "*"
  | SLASH -> Format.pp_print_string ppf "/"
  | CARET -> Format.pp_print_string ppf "^"
  | LPAREN -> Format.pp_print_string ppf "("
  | RPAREN -> Format.pp_print_string ppf ")"
  | COMMA -> Format.pp_print_string ppf ","
  | COLON -> Format.pp_print_string ppf ":"
  | EQUAL -> Format.pp_print_string ppf "="
  | DOTDOT -> Format.pp_print_string ppf ".."
  | NEWLINE -> Format.pp_print_string ppf "<newline>"
  | EOF -> Format.pp_print_string ppf "<eof>"
