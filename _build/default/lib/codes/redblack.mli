(** Red-black Gauss-Seidel: strided-parity stencil phases.

    Each half-sweep updates one parity class of a 1-D grid in place
    from the other class: the RED phase writes even cells reading their
    odd neighbours, BLACK the reverse.  Parallel loops run over the
    parity index (stride-2 subscripts [2i], [2i+1]), exercising
    non-unit parallel strides, in-place R/W phases whose reads and
    writes interleave without overlapping, and a cyclic two-phase LCG
    whose balanced relations are [2 p_R = 2 p_B] after offset
    adjustment. *)

open Symbolic
open Ir.Types

val params : Assume.t
val program : program
val env : n:int -> Env.t
(** Grid of [2n] cells. *)
