lib/ilp/solve.mli: Cost Locality Model
