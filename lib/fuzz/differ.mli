(** The differential-check battery one fuzzed program runs through.

    Each check compares two independent computations of the same answer
    and fails only on disagreement - a failing check is a bug in one of
    the two paths, never a property of the generated program:

    - [roundtrip]: unparse -> parse -> unparse is a fixed point;
    - [enum-parity]: {!Core.Pipeline.report_core} is byte-identical
      under the closed-form symbolic accounting and the enumeration
      oracle ([Lattice.Enumerated_only]), and the diagnostics agree
      modulo the mode-dependent [LINT-SYMBOLIC-FALLBACK] note;
    - [race-oracle]: the static race certifier never contradicts the
      dynamic sampling oracle ({!Core.Lint.autopar}'s
      [RACE-ORACLE-MISMATCH]);
    - [ilp-chain]: the exact chain enumerator's point satisfies the
      model's locality and bound rows, and the branch-and-bound solver
      over the same {!Ilp.Model.to_lp} rows agrees on feasibility (and
      bounds the chain point's objective when the chain point happens
      to satisfy every LP row, storage included);
    - [comm-parity]: the communication schedule generated from a fixed
      (LCG, plan) pair is identical under both accounting modes;
    - [cold-warm]: re-analyzing the same source with a warm artifact
      store reproduces the cold run's report byte for byte.

    All checks run at [h = 4] processors under the program's midpoint
    parameter environment ({!Gen.midpoint_env}), leave
    [Lattice.mode] as they found it, and convert any escaped exception
    into a [Fail] - the battery itself never raises. *)

type verdict = Pass | Skip of string | Fail of string

type check = {
  name : string;
  doc : string;
  run : Ir.Types.program -> verdict;
}

val checks : check list
(** The battery, in execution order.  Names are stable identifiers
    ([roundtrip], [enum-parity], [race-oracle], [ilp-chain],
    [comm-parity], [cold-warm]). *)

val find : string -> check
(** @raise Not_found for an unknown name - used to rebuild a shrink
    predicate from a finding's check name. *)

val battery : Ir.Types.program -> (string * verdict) list
(** Every check's verdict, in order. *)

val first_failure : Ir.Types.program -> (string * string) option
(** [(check name, detail)] of the first failing check, if any - the
    campaign's finding predicate and the shrinker's keep function. *)
