lib/codes/registry.mli: Env Ir Symbolic
