lib/symbolic/expr.mli: Format Qnum
