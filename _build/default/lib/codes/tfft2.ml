open Symbolic
open Ir
open Build

let params =
  Assume.of_list
    [
      ("p", Assume.Int_range (2, 6));
      ("q", Assume.Int_range (1, 5));
      ("P", Assume.Pow2_of "p");
      ("Q", Assume.Pow2_of "q");
    ]

let pP = var "P"
let qQ = var "Q"
let pq = pP * qQ
let n2pq = int 2 * pq

(* F3 is the paper's Figure 1, verbatim: the CFFTZ butterfly sweep with
   non-affine subscripts and bounds. *)
let phase_f3 =
  let phi1 =
    (int 2 * pP * var "I") + (pow2 (var "L" - int 1) * var "J") + var "K"
  in
  phase "F3"
    (doall "I" ~lo:(int 0) ~hi:(qQ - int 1)
       [
         do_ "L" ~lo:(int 1) ~hi:(var "p")
           [
             do_ "J" ~lo:(int 0) ~hi:((pP * pow2 (int 0 - var "L")) - int 1)
               [
                 do_ "K" ~lo:(int 0) ~hi:(pow2 (var "L" - int 1) - int 1)
                   [
                     assign ~work:8
                       [
                         read "X" [ phi1 ];
                         read "X" [ phi1 + (pP / int 2) ];
                         write "X" [ phi1 ];
                       ];
                   ];
               ];
           ];
       ])

(* F3 with the Y workspace: per parallel iteration I the region
   [2P*I .. 2P*I + 2P - 1] of Y is written and then read back -
   privatizable (F4 overwrites all of Y before the next read). *)
let phase_f3_full =
  let phi1 =
    (int 2 * pP * var "I") + (pow2 (var "L" - int 1) * var "J") + var "K"
  in
  phase "F3"
    (doall "I" ~lo:(int 0) ~hi:(qQ - int 1)
       [
         do_ "S" ~lo:(int 0) ~hi:((int 2 * pP) - int 1)
           [ assign ~work:2 [ write "Y" [ (int 2 * pP * var "I") + var "S" ] ] ];
         do_ "L" ~lo:(int 1) ~hi:(var "p")
           [
             do_ "J" ~lo:(int 0) ~hi:((pP * pow2 (int 0 - var "L")) - int 1)
               [
                 do_ "K" ~lo:(int 0) ~hi:(pow2 (var "L" - int 1) - int 1)
                   [
                     assign ~work:8
                       [
                         read "Y" [ (int 2 * pP * var "I") + var "K" ];
                         read "X" [ phi1 ];
                         read "X" [ phi1 + (pP / int 2) ];
                         write "X" [ phi1 ];
                       ];
                   ];
               ];
           ];
       ])

(* F1: real-to-complex unpacking sweep. X read in adjacent pairs, Y
   written together with its shifted copy at distance PQ. *)
let phase_f1 =
  phase "F1"
    (doall "M" ~lo:(int 0) ~hi:(pq - int 1)
       [
         assign ~work:4
           [
             read "X" [ int 2 * var "M" ];
             read "X" [ (int 2 * var "M") + int 1 ];
             write "Y" [ var "M" ];
             write "Y" [ var "M" + pq ];
           ];
       ])

(* F2: TRANSA - iteration J writes column J of X viewed as a P x 2Q
   matrix (interleaved columns: Eq. 4's p2 + 2QP - P), reading the
   Q-block of Y (with its +PQ copy) that feeds it. *)
let phase_f2 =
  phase "F2"
    (doall "J" ~lo:(int 0) ~hi:(pP - int 1)
       [
         do_ "I" ~lo:(int 0) ~hi:(qQ - int 1)
           [
             assign ~work:4
               [
                 read "Y" [ (qQ * var "J") + var "I" ];
                 read "Y" [ (qQ * var "J") + var "I" + pq ];
                 write "X" [ var "J" + (int 2 * pP * var "I") ];
                 write "X" [ var "J" + (int 2 * pP * var "I") + pP ];
               ];
           ];
       ])

(* F4: TRANSC - reads back the [2Pi .. 2Pi+P-1] block F3 produced
   (p31 = p41, Fig. 9) and overwrites Y transposed (the access pattern
   mismatch that makes the Y edge into F5 a C edge). *)
let phase_f4 =
  phase "F4"
    (doall "I" ~lo:(int 0) ~hi:(qQ - int 1)
       [
         do_ "J" ~lo:(int 0) ~hi:(pP - int 1)
           [ assign ~work:2 [ read "X" [ (int 2 * pP * var "I") + var "J" ] ] ];
         do_ "J2" ~lo:(int 0) ~hi:((int 2 * pP) - int 1)
           [ assign ~work:2 [ write "Y" [ var "I" + (qQ * var "J2") ] ] ];
       ])

(* F5: CMULTF - twiddle multiply: iteration J owns the 2Q-block of both
   arrays (P p41 = Q p51 against F4). *)
let phase_f5 =
  phase "F5"
    (doall "J" ~lo:(int 0) ~hi:(pP - int 1)
       [
         do_ "I" ~lo:(int 0) ~hi:((int 2 * qQ) - int 1)
           [
             assign ~work:6
               [
                 read "Y" [ (int 2 * qQ * var "J") + var "I" ];
                 write "X" [ (int 2 * qQ * var "J") + var "I" ];
               ];
           ];
       ])

(* F6: second CFFTZWORK - the FFT transforms X in place through the Y
   workspace, whose values F8 then consumes (2Q p62 = p82); X is
   updated in the same 2Q-blocks (p51 = p61). *)
let phase_f6 =
  phase "F6"
    (doall "J" ~lo:(int 0) ~hi:(pP - int 1)
       [
         do_ "I" ~lo:(int 0) ~hi:((int 2 * qQ) - int 1)
           [
             assign ~work:2
               [
                 read "X" [ (int 2 * qQ * var "J") + var "I" ];
                 write "Y" [ (int 2 * qQ * var "J") + var "I" ];
               ];
           ];
         do_ "I2" ~lo:(int 0) ~hi:((int 2 * qQ) - int 1)
           [
             assign ~work:8
               [
                 read "Y" [ (int 2 * qQ * var "J") + var "I2" ];
                 write "X" [ (int 2 * qQ * var "J") + var "I2" ];
               ];
           ];
       ])

(* F7: TRANSB - consumes X in the same 2Q-blocks (p61 = p71). *)
let phase_f7 =
  phase "F7"
    (doall "J" ~lo:(int 0) ~hi:(pP - int 1)
       [
         do_ "I" ~lo:(int 0) ~hi:((int 2 * qQ) - int 1)
           [ assign ~work:2 [ read "X" [ (int 2 * qQ * var "J") + var "I" ] ] ];
       ])

(* F8: the conjugate-symmetric unpacking sweep over the half range
   [0 .. PQ/2): both arrays touched at [m], [m+PQ] (shifted storage,
   Delta_d = PQ) and at the reversed [PQ-1-m], [2PQ-1-m] (reverse
   storage, Delta_r = PQ and 2PQ); each address is written exactly
   once, and 2Q p71 = p81. *)
let phase_f8 =
  let m = var "M" in
  phase "F8"
    (doall "M" ~lo:(int 0) ~hi:((pq / int 2) - int 1)
       [
         assign ~work:16
           [
             read "Y" [ m ];
             read "Y" [ m + pq ];
             read "Y" [ pq - int 1 - m ];
             read "Y" [ n2pq - int 1 - m ];
             write "X" [ m ];
             write "X" [ m + pq ];
             write "X" [ pq - int 1 - m ];
             write "X" [ n2pq - int 1 - m ];
           ];
       ])

let fig1_program =
  program ~name:"tfft2-fig1" ~params
    ~arrays:[ array "X" [ n2pq ] ]
    [ phase_f3 ]

let program =
  program ~name:"tfft2" ~params
    ~arrays:[ array "X" [ n2pq ]; array "Y" [ n2pq ] ]
    [
      phase_f1; phase_f2; phase_f3_full; phase_f4; phase_f5; phase_f6;
      phase_f7; phase_f8;
    ]

let phase_names = [ "F1"; "F2"; "F3"; "F4"; "F5"; "F6"; "F7"; "F8" ]

let env ~p ~q =
  Env.of_list [ ("p", p); ("q", q); ("P", 1 lsl p); ("Q", 1 lsl q) ]
