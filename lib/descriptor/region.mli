(** Concrete expansion of descriptors: the validation oracle.

    Expands a (rectangular, constant-evaluable) PD group into the exact
    set of flat addresses it denotes under a concrete environment -
    either for one parallel iteration (an ID region) or for the whole
    phase.  The test suite checks these sets against the direct IR
    interpretation in {!Ir.Enumerate}, which is what makes the
    descriptor algebra trustworthy without the paper's omitted proofs. *)

open Symbolic

exception Not_rectangular of string
(** Raised when a dim's count or stride does not evaluate to a constant
    under the environment (non-uniform dims that survived coalescing). *)

val row_addresses :
  Env.t -> Pd.group -> Pd.row -> par:int option -> (int, unit) Hashtbl.t -> unit
(** Accumulate the addresses of one row.  [par = Some i] fixes the
    parallel iteration; [None] sweeps all of them. *)

val group_addresses : Env.t -> Pd.group -> par:int option -> (int, unit) Hashtbl.t

val addresses : Env.t -> Pd.t -> par:int option -> (int, unit) Hashtbl.t
(** Union over all groups and rows.  Results are memoized per
    ([Env.id], descriptor, [par]) triple, and the cached table itself is
    returned: treat it as read-only. *)

val sorted : (int, unit) Hashtbl.t -> int list
