(** Loop-nest intermediate representation.

    A {e phase} is a DO-loop nest with at most one parallel loop
    (Polaris-style pre-marked), possibly non-perfectly nested, whose
    array subscripts and loop bounds are arbitrary {!Symbolic.Expr}
    expressions of the loop indices and program parameters.  A
    {e program} is an ordered sequence of phases over a set of shared
    arrays, optionally enclosed in an outer (timestep) loop - which is
    what makes the LCG potentially cyclic. *)

open Symbolic

type access = Read | Write

type array_ref = {
  array : string;
  index : Expr.t list;  (** one subscript per declared dimension *)
  access : access;
}

type stmt =
  | Assign of assign
  | Loop of loop

and assign = {
  refs : array_ref list;
      (** reference sites of the statement, in evaluation order
          (reads then the written lhs, typically) *)
  work : int;  (** abstract compute cost per execution, in cycles *)
}

and loop = {
  var : string;
  lo : Expr.t;
  hi : Expr.t;  (** inclusive *)
  step : Expr.t;
  parallel : bool;
  body : stmt list;
}

type array_decl = { name : string; dims : Expr.t list }

type phase = { phase_name : string; nest : loop }

type program = {
  prog_name : string;
  params : Assume.t;
      (** domains of the program parameters and derived loop indices are
          {e not} stored here - only free parameters (e.g. [p], [q] with
          [P = 2^p]); phase loop indices are added by analysis *)
  arrays : array_decl list;
  phases : phase list;
  repeats : bool;
      (** phases run inside an enclosing sequential loop (adds the LCG
          back edge from the last phase to the first) *)
}

val phase_key : phase -> Artifact.Key.t
val program_key : program -> Artifact.Key.t
(** Faithful structural {!Symbolic.Artifact} cache keys over the syntax
    (interned expression leaves), used by every cache keyed on a program
    or phase. *)

val phase_context_key : program -> phase -> Artifact.Key.t
(** Identity of one phase in context: the phase's syntax plus what it
    can observe of the program (parameter domains, array declarations)
    but {e not} its sibling phases - the key per-phase caches use so
    that editing one phase of a program invalidates only that phase's
    artifacts (the warm-serving incremental-reuse contract). *)

val equal_access : access -> access -> bool
val pp_access : Format.formatter -> access -> unit
val pp_ref : Format.formatter -> array_ref -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_phase : Format.formatter -> phase -> unit
val pp_program : Format.formatter -> program -> unit

val array_decl : program -> string -> array_decl
(** @raise Not_found for undeclared arrays. *)

val stmt_refs : stmt -> array_ref list
(** All reference sites in a statement subtree, textual order. *)

val phase_arrays : phase -> string list
(** Names of arrays referenced in the phase (sorted, unique). *)
