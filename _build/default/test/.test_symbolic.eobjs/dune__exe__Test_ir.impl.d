test/test_ir.ml: Alcotest Assume Autopar Build Codes Core Dsmsim Enumerate Env Expr Inline Ir Linearize List Liveness Normalize Option Phase QCheck QCheck_alcotest Symbolic Types
