lib/ir/liveness.mli: Env Format Symbolic Types
