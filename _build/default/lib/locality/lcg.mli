(** The Locality-Communication Graph (paper, Sec. 4, Fig. 6).

    One connected directed graph per array: a node for every phase that
    references the array (annotated R / W / R+W / P and with its
    descriptors), an edge between control-flow-consecutive accessor
    phases, labelled L / C / D by Theorem 2.  When the program repeats
    (an enclosing timestep loop), a back edge closes the cycle.

    After labeling, D edges are removed and the graph splits at C edges
    into {e chains}: maximal runs of L-connected nodes covering a
    common data sub-region, which is what the ILP distributes as a
    unit. *)

open Symbolic
open Descriptor

type node = {
  phase_idx : int;  (** index into the program's phase list *)
  name : string;
  attr : Ir.Liveness.attr;
  pd : Pd.t;  (** simplified phase descriptor *)
  id : Id.t;
  sym : Symmetry.t;
  intra : Intra.verdict;
  par_n : int;  (** concrete parallel trip count *)
  par_expr : Expr.t;  (** symbolic parallel trip count *)
  work : int;  (** total abstract work of the phase under [env] *)
}

type edge = {
  src : int;  (** positions within [nodes] *)
  dst : int;
  label : Table1.label;
  solution : Balance.solution option;
  relation : Balance.relation option;
  back : bool;  (** the wrap-around edge of a repeating program *)
}

type graph = { array : string; nodes : node list; edges : edge list }

type t = {
  prog : Ir.Types.program;
  env : Env.t;
  h : int;
  graphs : graph list;
}

val build : Ir.Types.program -> env:Env.t -> h:int -> t
(** Runs the whole front half of the paper: descriptors, simplification,
    IDs, symmetry, attributes, intra- and inter-phase analysis. *)

val chains : graph -> int list list
(** Node positions grouped into chains: D and C edges both break the
    sequence; the distinction (redistribution vs nothing) lives on the
    edges themselves. *)

val node_of_phase : graph -> phase_idx:int -> node option

val halo : t -> node -> int
(** Concrete width of the frontier between consecutive parallel
    iterations' regions: [UL(I(0)) - LB(I(1)) + 1] when positive, else
    0.  This is the span a runtime replicates as ghost cells (Theorem
    1c) and the volume a frontier update ships. *)

val pp : Format.formatter -> t -> unit

val region_bounds : t -> node -> par:int -> (int * int) option
(** Concrete [lo, hi] of the node's ID region at one parallel
    iteration; [None] when the descriptor is not rectangular. *)

val to_dot : t -> string
(** Graphviz rendering: one cluster per array, nodes annotated with the
    access attribute, edges with L/C/D labels (D edges dashed, C bold). *)
