(** Greedy structural minimizer for failing programs.

    [run ~keep p] repeatedly applies size-reducing candidate
    transformations - dropping phases (delta-debugging style halving
    chunks first), dropping statements and read references, collapsing
    inner loop levels (substituting the loop variable with its lower
    bound), shrinking loop upper bounds, resetting strides and work
    annotations to one, dropping the timestep loop, and garbage
    collecting unreferenced arrays and parameters - accepting a
    candidate only when the failure predicate [keep] still holds on it
    AND it is strictly smaller under {!size}, until no candidate is
    accepted.

    Properties the test-suite pins down:
    - every intermediate candidate handed to [keep] is a well-formed
      program (it unparses and parses back);
    - the result satisfies [keep] whenever the input did;
    - [run] is idempotent: [run ~keep (run ~keep p) == run ~keep p]
      structurally, because candidate generation is deterministic and a
      fixpoint by definition accepts no further candidate;
    - termination is unconditional: acceptance requires a strict
      {!size} decrease. *)

val size : Ir.Types.program -> int
(** Structural size: AST node count including expression nodes. *)

val run :
  keep:(Ir.Types.program -> bool) -> Ir.Types.program -> Ir.Types.program
(** Minimize while preserving [keep].  [keep] is expected to hold on
    the input; if it does not, the input is returned unchanged. *)
