(** The real executor: a {!Dsmsim.Machine.BACKEND} on OCaml domains.

    Where {!Dsmsim.Exec} prices a program's traffic in cycles, this
    backend runs it: each phase is compiled to closures
    ({!Codegen.Compile}) and swept in parallel by [h] domains (this
    thread doubles as processor 0) over per-processor {!Shim} replicas,
    with scheduled communication performed as range copies between
    sweeps by the same {!Dsmsim.Machine.Driver} protocol the simulator
    replays.  Three checks compare the execution against its model:

    - {b schedule parity}: messages/words actually delivered vs the
      {!Dsmsim.Comm} schedule under the same gating (wrap-around
      redistribution from round two, frontier updates filtered by what
      the phase wrote);
    - {b staleness}: every executed read is paired, per (round, phase,
      parallel iteration) stream, with the value a sequential replay of
      the same closures produced - a mismatch means the replica served
      a stale copy;
    - {b content parity}: cells written during the final layout epoch
      must match the replay in the final owner's replica.

    Wall-clock speedup is measured against the sequential replay; the
    [spin] knob scales each statement's abstract work cycles into real
    compute so the measurement is not pure scheduling overhead. *)

open Locality
open Ilp

exception Unsupported of string
(** Re-export of {!Codegen.Compile.Unsupported}: also raised when an
    array's size does not evaluate under the program environment. *)

type result = {
  h : int;
  rounds : int;
  wall_par : float;  (** seconds, parallel run (clamped positive) *)
  wall_seq : float;  (** seconds, sequential replay *)
  speedup : float;  (** wall_seq / wall_par *)
  busy : float array;  (** per-domain seconds inside phase sweeps *)
  sched_messages : int;  (** scheduled messages actually delivered *)
  sched_words : int;
  expected_messages : int;  (** the Comm schedule under the same gating *)
  expected_words : int;
  remote_gets : int;  (** direct reads served by an owner's replica *)
  remote_puts : int;  (** direct write-throughs to an owner's replica *)
  local_accesses : int;
  reads_checked : int;  (** reads paired with a replay value *)
  stale : int;
  stale_examples : (string * int * int) list;  (** array, addr, phase *)
  content_cells : int;  (** final-epoch cells compared *)
  content_mismatches : int;
  arrays_compared : string list;
  arrays_skipped : string list;
      (** no layout in the final epoch, or nothing written under it *)
  errors : string list;  (** schedule diagnostics and worker failures *)
}

val schedule_parity : result -> bool
(** Delivered messages and words equal the schedule's exactly. *)

val ok : result -> bool
(** Parity holds, no stale reads, no content mismatches, no errors. *)

val execute :
  ?rounds:int ->
  ?spin:int ->
  ?check_reads:bool ->
  Lcg.t ->
  Distribution.plan ->
  result
(** [rounds] (default 1) as in {!Dsmsim.Exec.run}.  [spin] (default 0)
    multiplies each statement's work cycles into a busy-loop of that
    many iterations.  [check_reads] (default true) builds the replay's
    expected-read streams (capped at 5M reads; reads beyond the cap are
    executed but not checked).  @raise Unsupported when the program
    cannot be compiled or an array cannot be allocated. *)

val pp : Format.formatter -> result -> unit
