open Symbolic
open Types

(* All loops of a nest in pre-order, with their paths (child indices of
   Loop statements only, from the root). *)
let loop_paths (nest : loop) : int list list =
  let acc = ref [] in
  let rec walk path (l : loop) =
    acc := List.rev path :: !acc;
    let li = ref 0 in
    List.iter
      (fun s ->
        match s with
        | Loop inner ->
            walk (!li :: path) inner;
            incr li
        | Assign _ -> ())
      l.body
  in
  walk [] nest;
  List.rev !acc

(* Rewrite the nest so that exactly the loop at [path] is parallel. *)
let set_parallel (nest : loop) (path : int list) : loop =
  let rec go (l : loop) path =
    let parallel = path = [] in
    let li = ref (-1) in
    let body =
      List.map
        (fun s ->
          match s with
          | Loop inner ->
              incr li;
              Loop
                (match path with
                | k :: rest when k = !li -> go inner rest
                | _ -> go_clear inner)
          | Assign a -> Assign a)
        l.body
    in
    { l with parallel; body }
  and go_clear (l : loop) =
    {
      l with
      parallel = false;
      body =
        List.map
          (function Loop i -> Loop (go_clear i) | Assign a -> Assign a)
          l.body;
    }
  in
  go nest path

let independent (prog : program) (env : Env.t) (ph : phase) ~loop_path =
  let candidate = { ph with nest = set_parallel ph.nest loop_path } in
  (* per address: the single iteration that writes it / reads it, with
     a "many" marker; conflicts are write + any access from a distinct
     iteration.  Tables reset at each new instance of the loop (outer
     indices advanced), detected by the iteration value decreasing. *)
  let writes = Hashtbl.create 256 and reads = Hashtbl.create 256 in
  let ok = ref true in
  let prev = ref min_int in
  Enumerate.iter prog env candidate ~f:(fun ~par ~array ~addr access ~work:_ ->
      match par with
      | None -> () (* outside the candidate loop: ignore *)
      | Some v ->
          if v < !prev then begin
            Hashtbl.reset writes;
            Hashtbl.reset reads
          end;
          prev := v;
          let key = (array, addr) in
          let conflicts tbl =
            match Hashtbl.find_opt tbl key with
            | None -> false
            | Some w -> w <> v
          in
          (match access with
          | Write ->
              if conflicts writes || conflicts reads then ok := false;
              Hashtbl.replace writes key v
          | Read ->
              if conflicts writes then ok := false;
              (* record only the first reader; a second distinct reader
                 matters only against writers, checked above and on the
                 write side *)
              if not (Hashtbl.mem reads key) then Hashtbl.replace reads key v);
          ());
  !ok

let default_envs (prog : program) =
  let st = Random.State.make [| 11; 17; 2029 |] in
  List.init 3 (fun _ -> Assume.sample ~state:st prog.params)

type verdict = [ `Independent | `Dependent | `Unknown ]
type certifier = program -> phase -> loop_path:int list -> verdict
type source = Certified | Sampled

type probe_report = {
  path : int list;
  var : string;
  static_verdict : verdict option;
  sampled : bool option;
}

type decision = {
  dec_phase : phase;
  chosen : (int list * source) option;
  probes : probe_report list;
}

let loop_var_at (nest : loop) (path : int list) : string =
  let rec go (l : loop) = function
    | [] -> l.var
    | k :: rest ->
        let loops =
          List.filter_map (function Loop i -> Some i | Assign _ -> None) l.body
        in
        go (List.nth loops k) rest
  in
  go nest path

let mismatch (r : probe_report) =
  match (r.static_verdict, r.sampled) with
  | Some `Independent, Some false -> true
  | Some `Dependent, Some true -> true
  | _ -> false

let mismatches (d : decision) = List.filter mismatch d.probes

let clear_markings (l : loop) =
  let rec clear (l : loop) =
    {
      l with
      parallel = false;
      body =
        List.map
          (function Loop i -> Loop (clear i) | Assign a -> Assign a)
          l.body;
    }
  in
  clear l

let decide ?certify ?envs (prog : program) (ph : phase) : decision =
  let envs = match envs with Some e -> e | None -> default_envs prog in
  let paths = loop_paths ph.nest in
  let probes = ref [] in
  let rec scan = function
    | [] -> None
    | path :: rest ->
        let static_verdict =
          Option.map (fun c -> c prog ph ~loop_path:path) certify
        in
        (* The sampled verdict is always computed when environments are
           available - even when the certifier has already decided - so
           that static/dynamic disagreements are visible to callers
           rather than silently resolved. *)
        let sampled =
          if envs = [] then None
          else
            Some
              (List.for_all
                 (fun env -> independent prog env ph ~loop_path:path)
                 envs)
        in
        probes :=
          { path; var = loop_var_at ph.nest path; static_verdict; sampled }
          :: !probes;
        (match (static_verdict, sampled) with
        | Some `Independent, _ -> Some (path, Certified)
        | Some `Dependent, _ ->
            (* The certifier's refutation wins even when sampling saw no
               conflict (a missed-by-sampling race); the disagreement is
               recorded in the probe report. *)
            scan rest
        | _, Some true -> Some (path, Sampled)
        | _, _ -> scan rest)
  in
  let chosen = scan paths in
  let dec_phase =
    match chosen with
    | Some (path, _) -> { ph with nest = set_parallel ph.nest path }
    | None -> { ph with nest = clear_markings ph.nest }
  in
  { dec_phase; chosen; probes = List.rev !probes }

let mark_phase ?certify ?envs (prog : program) (ph : phase) : phase =
  (decide ?certify ?envs prog ph).dec_phase

let mark ?certify ?envs (prog : program) : program =
  { prog with phases = List.map (mark_phase ?certify ?envs prog) prog.phases }

(* ------------------------------------------------------------------ *)
(* Reduction privatization *)

let rec subst_acc ~acc ~part v = function
  | Assign a ->
      Assign
        {
          a with
          refs =
            List.map
              (fun (r : array_ref) ->
                if String.equal r.array acc then
                  { r with array = part; index = [ Expr.var v ] }
                else r)
              a.refs;
        }
  | Loop l -> Loop { l with body = List.map (subst_acc ~acc ~part v) l.body }

(* Does array [acc] appear only as [read acc(e); ... write acc(e)] pairs
   within single statements, with [e] free of every loop variable?  If
   so return that constant subscript. *)
let accumulator_subscript (ph : phase) acc =
  let loop_vars =
    let rec go acc = function
      | Assign _ -> acc
      | Loop l -> List.fold_left go (l.var :: acc) l.body
    in
    go [] (Loop ph.nest)
  in
  let ok = ref true and subscript = ref None in
  let rec walk = function
    | Loop l -> List.iter walk l.body
    | Assign a ->
        let mine =
          List.filter (fun (r : array_ref) -> String.equal r.array acc) a.refs
        in
        if mine <> [] then begin
          let reads, writes =
            List.partition (fun (r : array_ref) -> r.access = Read) mine
          in
          match (reads, writes) with
          | [ r ], [ w ] when r.index = w.index -> (
              match r.index with
              | [ e ] when not (List.exists (fun v -> Expr.mem_var v e) loop_vars)
                -> (
                  match !subscript with
                  | None -> subscript := Some e
                  | Some e0 -> if not (Expr.equal e0 e) then ok := false)
              | _ -> ok := false)
          | _ -> ok := false
        end
  in
  walk (Loop ph.nest);
  if !ok then !subscript else None

let recognize_reductions ?envs (prog : program) : program =
  let envs = match envs with Some e -> e | None -> default_envs prog in
  let fresh_arrays = ref [] in
  let phases =
    List.concat_map
      (fun (ph : phase) ->
        let root = ph.nest in
        (* only attack phases whose root loop is not already independent *)
        let root_indep =
          envs <> []
          && List.for_all (fun env -> independent prog env ph ~loop_path:[]) envs
        in
        if root_indep then [ ph ]
        else begin
          (* candidate accumulators: arrays whose every appearance is a
             read-modify-write with a loop-invariant subscript *)
          let arrays = Types.phase_arrays ph in
          let candidates =
            List.filter_map
              (fun a ->
                Option.map (fun e -> (a, e)) (accumulator_subscript ph a))
              arrays
          in
          match candidates with
          | [] -> [ ph ]
          | (acc, e) :: _ ->
              let part = "__red_" ^ acc in
              let v = root.var in
              let rewritten =
                match subst_acc ~acc ~part v (Loop root) with
                | Loop nest -> { ph with nest }
                | Assign _ -> assert false
              in
              (* is the rewritten root loop independent now? *)
              let count = Expr.add (Expr.sub root.hi root.lo) Expr.one in
              let trial_prog =
                {
                  prog with
                  arrays = prog.arrays @ [ { name = part; dims = [ count ] } ];
                }
              in
              let indep =
                envs <> []
                && List.for_all
                     (fun env ->
                       independent trial_prog env rewritten ~loop_path:[])
                     envs
              in
              if not indep then [ ph ]
              else begin
                fresh_arrays := { name = part; dims = [ count ] } :: !fresh_arrays;
                let combine =
                  {
                    phase_name = ph.phase_name ^ "_COMBINE";
                    nest =
                      {
                        var = v;
                        lo = Expr.zero;
                        hi = Expr.sub count Expr.one;
                        step = Expr.one;
                        parallel = false;
                        body =
                          [
                            Assign
                              {
                                refs =
                                  [
                                    { array = part; index = [ Expr.var v ]; access = Read };
                                    { array = acc; index = [ e ]; access = Write };
                                  ];
                                work = 1;
                              };
                          ];
                      };
                  }
                in
                [ rewritten; combine ]
              end
        end)
      prog.phases
  in
  { prog with phases; arrays = prog.arrays @ List.rev !fresh_arrays }
