(** Descriptor-based static race certification.

    Decides, symbolically, whether the iterations of a candidate
    parallel loop are free of loop-carried dependences - the question
    {!Ir.Autopar} otherwise answers by sampling parameter environments
    and intersecting concrete address sets.  The decision is built
    entirely from the paper's access-descriptor machinery: per-array
    Iteration Descriptors ({!Id}) of the candidate loop give each
    iteration's touched region as [tau_B(i) .. tau_B(i) + span], and
    disjointness across distinct iterations reduces to stride/span/
    offset arithmetic over those rows (the same quantities behind the
    overlap-distance Delta_s test of {!Symmetry}), with
    {!Symbolic.Range} bounding row extents whose offsets still mention
    sequential loop indices.

    The three-valued answer is asymmetric by design:

    - [Proved_independent] is a {e certificate}: no two distinct
      iterations of the loop (within one instance of its enclosing
      loops) can touch a common address with a write involved.  The
      claim rests on {!Symbolic.Probe}'s randomized identity testing,
      so it carries the same vanishingly-small error probability as
      every other identity the analysis trusts - and the differential
      test suite checks it against the dynamic oracle on every sampled
      environment.
    - [Proved_dependent] carries a witness: a pair of descriptor rows
      and an iteration distance at which a written cell is provably
      shared, for {e every} admissible parameter assignment.
    - [Unknown] means the loop is outside the class the certifier can
      decide (non-affine subscripts degraded to whole-array
      descriptors, non-uniform strides, row extents that cannot be
      separated); callers fall back to the sampling oracle.

    Soundness argument (see DESIGN.md, "Static certification"): every
    simplification is one-directional.  Whole-array or non-rectangular
    descriptors, unbounded extents, or failed probes all collapse to
    [Unknown], never to a certificate; dependence witnesses are only
    produced from dense rows whose sequential extent lies entirely
    inside the candidate loop, so a shared cell in the descriptor
    region is a shared cell in one loop instance. *)

type witness = {
  w_array : string;  (** the conflicting array *)
  w_kind : string;  (** [write-write], [write-read] or [read-write] *)
  w_distance : int;  (** iteration distance of the proven conflict *)
  w_note : string;  (** human-readable row/offset evidence *)
}

type verdict =
  | Proved_independent
  | Proved_dependent of witness
  | Unknown of string  (** why the certifier gave up *)

val certify :
  Ir.Types.program -> Ir.Types.phase -> loop_path:int list -> verdict
(** Certify the loop reached by descending [loop_path] (as in
    {!Ir.Autopar.independent}): the loop is re-marked as the phase's
    parallel loop and its cross-iteration dependence structure is
    decided from the per-array Iteration Descriptors. *)

val certifier : Ir.Autopar.certifier
(** {!certify} collapsed to the three-valued shape {!Ir.Autopar}
    consumes ([Proved_dependent] witnesses and [Unknown] reasons
    dropped). *)

val verdict_to_string : verdict -> string
val pp_verdict : Format.formatter -> verdict -> unit
