lib/codegen/spmd.ml: Array Cost Distribution Dsmsim Expr Format Frontend Ilp Ir Lcg List Locality Printf Symbolic
