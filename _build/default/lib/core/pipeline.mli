(** End-to-end driver: the paper's whole tool-chain in one call.

    [run] takes a program with Polaris-style pre-marked parallel loops,
    a concrete parameter environment and a processor count, and
    performs: descriptor construction and simplification, attribute and
    privatizability analysis, intra/inter-phase locality analysis (the
    LCG), constraint generation (Table 2), overhead minimization
    (Eq. 7) and distribution planning.  [simulate] replays the program
    on the DSM machine model under the derived plan;
    [simulate_baseline] does the same under the naive BLOCK /
    owner-computes plan for comparison. *)

open Symbolic

type t = {
  prog : Ir.Types.program;
  env : Env.t;
  machine : Ilp.Cost.machine;
  lcg : Locality.Lcg.t;
  model : Ilp.Model.t;
  solution : Ilp.Solve.result;
  plan : Ilp.Distribution.plan;
}

val run : ?machine:Ilp.Cost.machine -> Ir.Types.program -> env:Env.t -> h:int -> t

val simulate : t -> Dsmsim.Exec.run
val simulate_baseline : t -> Dsmsim.Exec.run

val efficiency : t -> float * float
(** (LCG-plan efficiency, BLOCK-baseline efficiency). *)

val report : Format.formatter -> t -> unit
(** LCG, Table-2 model, solution, and plan, in order. *)
