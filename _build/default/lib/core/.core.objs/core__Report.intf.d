lib/core/report.mli: Format Pipeline
