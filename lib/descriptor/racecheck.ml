open Symbolic

type witness = {
  w_array : string;
  w_kind : string;
  w_distance : int;
  w_note : string;
}

type verdict =
  | Proved_independent
  | Proved_dependent of witness
  | Unknown of string

(* Outcome for one pair of descriptor rows. *)
type pair_result = Disjoint | Conflict of witness | Cannot of string

let recoverable = function
  | Ard.Unsupported | Region.Not_rectangular _ | Qnum.Overflow
  | Qnum.Division_by_zero | Division_by_zero | Env.Unbound _
  | Expr.Non_integral _ | Ir.Phase.Invalid_phase _ | Not_found
  | Invalid_argument _ ->
      true
  | _ -> false

(* A row of an ID paired with the structural facts the tests need. *)
type trow = {
  row : Id.row;
  seq_dims : Pd.dim list;
  signed_stride : Expr.t;  (** par_sign * par_stride *)
  dense : bool;  (** seq region is a gap-free interval *)
  clean : bool;  (** offset and stride free of every loop index *)
  inner : bool;  (** every seq dim sweeps a loop inside the candidate *)
}

let kind_of (m1 : Access_mix.t) (m2 : Access_mix.t) =
  if m1.writes && m2.writes then "write-write"
  else if m1.writes then "write-read"
  else "read-write"

(* Disjointness / conflict between the per-iteration regions of two rows
   that advance with the same signed stride [s] per parallel iteration.
   The region of row r at iteration i is [o_r + s*i, o_r + s*i + sp_r];
   the gap between iterations i and i' = i + d is D(d) = (o2-o1) + s*d,
   linear in d, so its range over d in [1, n-1] (and [-(n-1), -1]) is
   decided at the endpoints. *)
let same_stride_test asm ~n ~array (t1 : trow) (t2 : trow) : pair_result =
  let o1 = t1.row.Id.offset0 and o2 = t2.row.Id.offset0 in
  let sp1 = t1.row.Id.span_seq and sp2 = t2.row.Id.span_seq in
  let s = t1.signed_stride in
  let diff = Expr.sub o2 o1 in
  let d_at d = Expr.add diff (Expr.mul s d) in
  let dmax = Expr.sub n Expr.one in
  let above e1 e2 =
    Probe.lt asm sp1 (d_at e1) && Probe.lt asm sp1 (d_at e2)
  in
  let below e1 e2 =
    Probe.lt asm (d_at e1) (Expr.neg sp2)
    && Probe.lt asm (d_at e2) (Expr.neg sp2)
  in
  let forward = above Expr.one dmax || below Expr.one dmax in
  let backward =
    above (Expr.neg Expr.one) (Expr.neg dmax)
    || below (Expr.neg Expr.one) (Expr.neg dmax)
  in
  if forward && backward then Disjoint
  else begin
    (* Not provably disjoint: try to prove a conflict at distance +-1.
       Only rows that are dense (interval overlap implies a shared
       cell), fully clean (the formulas are the exact region), and
       whose sequential dims all sweep loops nested inside the
       candidate (so the shared cell lives in one loop instance) can
       witness a dependence. *)
    let exact_spans =
      t1.dense && t2.dense && t1.clean && t2.clean && t1.inner && t2.inner
      && Probe.nonneg asm sp1 && Probe.nonneg asm sp2
      && Probe.le asm (Expr.int 2) n
    in
    let conflict_at d =
      let gap = d_at (Expr.int d) in
      Probe.le asm gap sp1 && Probe.le asm (Expr.neg sp2) gap
    in
    if exact_spans && conflict_at 1 then
      Conflict
        {
          w_array = array;
          w_kind = kind_of t1.row.Id.mix t2.row.Id.mix;
          w_distance = 1;
          w_note =
            Format.asprintf
              "iterations i and i+1 share cells: offsets %a / %a, stride %a, \
               spans %a / %a"
              Expr.pp o1 Expr.pp o2 Expr.pp s Expr.pp sp1 Expr.pp sp2;
        }
    else if exact_spans && conflict_at (-1) then
      Conflict
        {
          w_array = array;
          w_kind = kind_of t1.row.Id.mix t2.row.Id.mix;
          w_distance = -1;
          w_note =
            Format.asprintf
              "iterations i and i-1 share cells: offsets %a / %a, stride %a"
              Expr.pp o1 Expr.pp o2 Expr.pp s;
        }
    else
      Cannot
        (Format.asprintf
           "cannot separate rows of %s (offsets %a / %a, stride %a)" array
           Expr.pp o1 Expr.pp o2 Expr.pp s)
  end

(* Fallback for row pairs with different (or loop-dependent) strides:
   compare the bounding boxes of everything either row can ever touch.
   Loop-index-dependent bounds are eliminated by monotone substitution
   (Range), so the boxes only widen - disjoint boxes prove independence,
   overlapping boxes prove nothing. *)
let extent_test asm ~loop_vars ~n ~array (t1 : trow) (t2 : trow) : pair_result
    =
  let dmax = Expr.sub n Expr.one in
  let reach (t : trow) =
    let o = t.row.Id.offset0 and sp = t.row.Id.span_seq in
    let travel = Expr.mul t.signed_stride dmax in
    if t.row.Id.par_sign >= 0 then (o, Expr.add (Expr.add o travel) sp)
    else (Expr.add o travel, Expr.add o sp)
  in
  let bound dir e =
    let over = List.filter (fun v -> Expr.mem_var v e) loop_vars in
    if over = [] then Some e
    else
      match dir with
      | `Max -> Range.maximize asm ~over e
      | `Min -> Range.minimize asm ~over e
  in
  let lo1, hi1 = reach t1 and lo2, hi2 = reach t2 in
  match
    (bound `Min lo1, bound `Max hi1, bound `Min lo2, bound `Max hi2)
  with
  | Some lo1, Some hi1, Some lo2, Some hi2 ->
      if Probe.lt asm hi1 lo2 || Probe.lt asm hi2 lo1 then Disjoint
      else
        Cannot
          (Format.asprintf "overlapping extents of %s rows (%a..%a vs %a..%a)"
             array Expr.pp lo1 Expr.pp hi1 Expr.pp lo2 Expr.pp hi2)
  | _ -> Cannot ("unbounded extent for a row of " ^ array)

(* Residue-class separation for rows whose sequential strides share a
   common modulus [g] (typically the row length N of a linearized
   matrix): every address row r touches at parallel iteration [i] is
   congruent to [offset_r + stride_r * i] mod g, because all sequential
   contributions are multiples of g.  Disjointness then follows from
   modular arithmetic alone, no matter how far the sequential spans
   reach - exactly the case the span-based interval tests cannot
   separate.  Two sound closures:

   - {e apart}: g also divides both parallel strides and the offsets
     differ mod g.  The two rows live in fixed distinct residue
     classes, so no pair of iterations ever meets.
   - {e rotating}: the offsets agree mod g and both rows advance with
     the same signed stride s with 0 < |s| * (n-1) < g.  Distinct
     iterations then occupy distinct residue classes, which excludes
     every loop-carried collision (same-iteration sharing is not a
     race).

   Divisibility and non-divisibility of symbolic expressions are
   decided against small multiplier candidates through Probe
   identities; an undecided modulus is simply skipped, so failure only
   costs precision, never soundness. *)
let congruence_test asm ~n (t1 : trow) (t2 : trow) : bool =
  let quotients = List.init 9 (fun k -> k - 4) in
  let divides g e =
    List.exists
      (fun q -> Probe.equal asm e (Expr.mul g (Expr.int q)))
      quotients
  in
  let strictly_between_multiples g e =
    List.exists
      (fun q ->
        Probe.lt asm (Expr.mul g (Expr.int q)) e
        && Probe.lt asm e (Expr.mul g (Expr.int (q + 1))))
      quotients
  in
  let strides_of (t : trow) =
    List.map (fun (d : Pd.dim) -> d.Pd.stride) t.seq_dims
  in
  let seq_strides = strides_of t1 @ strides_of t2 in
  let diff = Expr.sub t2.row.Id.offset0 t1.row.Id.offset0 in
  let dmax = Expr.sub n Expr.one in
  t1.clean && t2.clean
  && List.exists
       (fun g ->
         Probe.lt asm Expr.one g
         && List.for_all (fun s -> divides g s) seq_strides
         &&
         let apart =
           divides g t1.signed_stride
           && divides g t2.signed_stride
           && strictly_between_multiples g diff
         in
         let rotating =
           divides g diff
           && Probe.equal asm t1.signed_stride t2.signed_stride
           &&
           let s = t1.signed_stride in
           (Probe.lt asm Expr.zero s
           && Probe.lt asm (Expr.mul s dmax) g)
           || Probe.lt asm s Expr.zero
              && Probe.lt asm (Expr.mul (Expr.neg s) dmax) g
         in
         apart || rotating)
       (List.sort_uniq Expr.compare seq_strides)

let pair_test asm ~loop_vars ~n ~array (t1 : trow) (t2 : trow) : pair_result =
  let primary =
    if
      t1.clean && t2.clean
      && Probe.equal asm t1.signed_stride t2.signed_stride
    then same_stride_test asm ~n ~array t1 t2
    else extent_test asm ~loop_vars ~n ~array t1 t2
  in
  match primary with
  | Cannot _ when congruence_test asm ~n t1 t2 -> Disjoint
  | r -> r

let certify_exn (prog : Ir.Types.program) (ph : Ir.Types.phase) loop_path :
    verdict =
  let candidate =
    { ph with Ir.Types.nest = Ir.Autopar.set_parallel ph.Ir.Types.nest loop_path }
  in
  let t = Ir.Phase.analyze prog candidate in
  match t.par with
  | None -> Unknown "no loop at the requested path"
  | Some par ->
      let asm = t.assume in
      let n = par.count in
      if Probe.le asm n Expr.one then
        (* at most one iteration: nothing to race with *)
        Proved_independent
      else begin
        let loop_vars =
          List.map (fun (l : Ir.Phase.loop_info) -> l.var) t.loops
        in
        (* loops nested strictly inside the candidate *)
        let inner_vars =
          let rec subtree (l : Ir.Types.loop) = function
            | [] -> l
            | k :: rest ->
                let inner =
                  List.filter_map
                    (function Ir.Types.Loop i -> Some i | Ir.Types.Assign _ -> None)
                    l.Ir.Types.body
                in
                subtree (List.nth inner k) rest
          in
          let cand = subtree candidate.Ir.Types.nest loop_path in
          let rec go acc = function
            | Ir.Types.Assign _ -> acc
            | Ir.Types.Loop l ->
                List.fold_left go (l.Ir.Types.var :: acc) l.Ir.Types.body
          in
          List.fold_left go [] cand.Ir.Types.body
        in
        let clean_expr e =
          List.for_all (fun v -> not (List.mem v loop_vars)) (Expr.vars e)
        in
        (* Only sites inside the candidate loop participate in its
           cross-iteration dependences; the enumeration oracle likewise
           ignores accesses outside the marked loop. *)
        let enclosed =
          {
            t with
            Ir.Phase.sites =
              List.filter
                (fun (s : Ir.Phase.site) ->
                  List.mem par.var s.Ir.Phase.enclosing)
                t.Ir.Phase.sites;
          }
        in
        let arrays =
          List.sort_uniq String.compare
            (List.map
               (fun (s : Ir.Phase.site) -> s.Ir.Phase.ref_.Ir.Types.array)
               enclosed.Ir.Phase.sites)
        in
        let unknown = ref None in
        let note r = if !unknown = None then unknown := Some r in
        let conflict = ref None in
        List.iter
          (fun array ->
            if !conflict = None then begin
              let pd = Pd.of_phase enclosed ~array in
              if not (Pd.pd_mix pd).Access_mix.writes then
                (* read-only in this loop: cannot carry a dependence *)
                ()
              else if not pd.Pd.exact then
                note
                  (Printf.sprintf
                     "%s degraded to a whole-array descriptor (non-affine \
                      subscript)"
                     array)
              else begin
                let id = Id.of_pd pd in
                if not (Id.rectangular id) then
                  note
                    (Printf.sprintf
                       "%s has non-uniform strides (symbolic, non-rectangular \
                        descriptor)"
                       array)
                else begin
                  let trows =
                    List.concat_map
                      (fun (g : Id.group) ->
                        List.map
                          (fun (r : Id.row) ->
                            let dense =
                              let count =
                                List.fold_left Expr.mul Expr.one
                                  r.Id.seq_alphas
                              in
                              Probe.equal asm
                                (Expr.add r.Id.span_seq Expr.one)
                                count
                            in
                            {
                              row = r;
                              seq_dims = g.Id.seq_dims;
                              signed_stride =
                                Expr.mul (Expr.int r.Id.par_sign)
                                  r.Id.par_stride;
                              dense;
                              clean =
                                clean_expr r.Id.offset0
                                && clean_expr r.Id.par_stride;
                              inner =
                                List.for_all
                                  (fun (d : Pd.dim) ->
                                    List.for_all
                                      (fun v -> List.mem v inner_vars)
                                      d.Pd.vars)
                                  g.Id.seq_dims;
                            })
                          g.Id.rows)
                      id.Id.groups
                  in
                  let rec pairs = function
                    | [] -> []
                    | x :: rest ->
                        (x, x) :: List.map (fun y -> (x, y)) rest @ pairs rest
                  in
                  List.iter
                    (fun (t1, t2) ->
                      if !conflict = None then
                        let m1 = t1.row.Id.mix and m2 = t2.row.Id.mix in
                        if not (m1.Access_mix.writes || m2.Access_mix.writes)
                        then ()
                        else
                          match
                            pair_test asm ~loop_vars ~n ~array t1 t2
                          with
                          | Disjoint -> ()
                          | Conflict w -> conflict := Some w
                          | Cannot r -> note r)
                    (pairs trows)
                end
              end
            end)
          arrays;
        match (!conflict, !unknown) with
        | Some w, _ -> Proved_dependent w
        | None, Some r -> Unknown r
        | None, None -> Proved_independent
      end

let certify prog ph ~loop_path =
  try certify_exn prog ph loop_path
  with e when recoverable e ->
    Unknown ("descriptor construction failed: " ^ Printexc.to_string e)

let certifier : Ir.Autopar.certifier =
 fun prog ph ~loop_path ->
  match certify prog ph ~loop_path with
  | Proved_independent -> `Independent
  | Proved_dependent _ -> `Dependent
  | Unknown _ -> `Unknown

let verdict_to_string = function
  | Proved_independent -> "independent"
  | Proved_dependent w ->
      Printf.sprintf "dependent (%s on %s at distance %+d)" w.w_kind w.w_array
        w.w_distance
  | Unknown r -> "unknown (" ^ r ^ ")"

let pp_verdict ppf v = Format.pp_print_string ppf (verdict_to_string v)
