(** Storage symmetry distances (paper, Sec. 3, Fig. 5).

    Rows of an ID that describe congruent sub-regions are related by a
    {e distance}:

    - {b shifted} [Delta_d]: same pattern and same parallel direction,
      the second region a constant distance above the first (the two
      mirrored halves of an out-of-place FFT);
    - {b reverse} [Delta_r]: same pattern but opposite parallel
      directions - one subscript increases with the parallel index
      while the other decreases;
    - {b overlapping} [Delta_s]: the sub-regions of consecutive
      parallel iterations share elements (stencil ghost zones); the
      distance is the number of shared elements.

    Distances feed the ILP's storage constraints (Table 2) and
    Theorem 1's overlap condition. *)

open Symbolic

type overlap =
  | No_overlap
  | Overlap of Expr.t  (** Delta_s: number of shared elements *)
  | Overlap_unknown
      (** sampling found consecutive iterations sharing addresses but no
          closed-form distance exists (non-dense rows) - treated as
          overlapping by every consumer (conservative) *)

type t = {
  shifted : Expr.t list;  (** one Delta_d per congruent shifted row pair *)
  reverse : Expr.t list;  (** one Delta_r per reverse row pair *)
  overlap : overlap;
  write_overlap : bool;
      (** some {e written} cell is shared between consecutive
          iterations' regions - the condition that actually defeats
          Theorem 1 (shared cells that are only read are replicated as
          ghosts); conservative [true] when sampling fails *)
}

val analyze : Id.t -> t
val has_overlap : Id.t -> bool
val has_write_overlap : Id.t -> bool

(** Every pair of rows shares the sequential structure and parallel
    stride - the precondition for reasoning about the whole ID through
    one representative row plus distances. *)
val all_congruent : Id.t -> bool
val pp : Format.formatter -> t -> unit
