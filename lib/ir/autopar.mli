(** Automatic parallel-loop detection: the Polaris stand-in.

    The paper assumes an auto-parallelizer has already marked one
    parallel loop per phase.  This module provides that step for
    programs written without markings: for each phase it finds the
    outermost loop whose iterations carry no dependence and marks it
    [parallel] (clearing any deeper marking, preserving the at-most-one
    phase invariant).

    The dependence test is dynamic and exact per sample, in the spirit
    of this repo's oracle-first approach: under each sampled parameter
    environment the loop's iterations are executed abstractly and their
    access sets intersected - a loop is independent iff no address
    written by one iteration is touched by another.  Sampling makes the
    verdict probabilistic in the same sense as {!Symbolic.Probe}; a
    loop is only marked when every sample agrees, so false positives
    require an access pattern that changes shape between samples.

    Per-iteration scratch (an address always written before read within
    the same iteration, and dead after the loop) does {e not} block
    parallelization - that is privatization, handled downstream by
    {!Liveness}. *)

open Symbolic
open Types

val loop_paths : loop -> int list list
(** Every loop of the nest in pre-order, as paths of [Loop]-child
    indices from the root ([[]] = the root loop itself). *)

val set_parallel : loop -> int list -> loop
(** Rewrite the nest so that exactly the loop at the given path is
    marked parallel (all other markings cleared). *)

val clear_markings : loop -> loop
(** Clear every parallel marking in the nest. *)

val loop_var_at : loop -> int list -> string
(** Loop variable of the loop at a path. @raise Failure on bad paths. *)

val independent :
  program -> Env.t -> phase -> loop_path:int list -> bool
(** Is the loop reached by descending [loop_path] (child indices from
    the nest root, [] = the root loop) free of loop-carried
    dependences under [env]?  This is the {e dynamic oracle}: exact per
    environment, probabilistic across environments. *)

(** {1 Certified marking}

    A {!certifier} is a static decision procedure consulted {e before}
    the sampling oracle (the descriptor-based one lives in
    [Descriptor.Racecheck]; it is injected here because the descriptor
    layer is built on top of this library).  [`Independent] and
    [`Dependent] are trusted as proofs; sampling is the fallback for
    [`Unknown] only. *)

type verdict = [ `Independent | `Dependent | `Unknown ]

type certifier = program -> phase -> loop_path:int list -> verdict

type source = Certified | Sampled  (** how a marking decision was reached *)

type probe_report = {
  path : int list;
  var : string;  (** loop variable at [path] *)
  static_verdict : verdict option;  (** [None] when no certifier given *)
  sampled : bool option;  (** [None] when no environments available *)
}

type decision = {
  dec_phase : phase;  (** the re-marked phase *)
  chosen : (int list * source) option;
      (** the marked loop and which procedure justified it *)
  probes : probe_report list;
      (** every loop examined, outermost-first, ending at the chosen one *)
}

val mismatch : probe_report -> bool
(** The static and sampled verdicts contradict each other (a certified
    independence the oracle refutes, or a certified dependence the
    oracle never observed). *)

val mismatches : decision -> probe_report list

val decide : ?certify:certifier -> ?envs:Env.t list -> program -> phase -> decision
(** Full marking decision for one phase: walk the loops outermost-first
    and accept the first whose certifier verdict is [`Independent], or -
    when the certifier answers [`Unknown] (or is absent) - the first
    that every sampled environment finds independent.  A [`Dependent]
    verdict rejects the loop even when sampling disagrees; the
    disagreement is visible through {!mismatches} rather than silently
    resolved.  [envs] defaults to 3 samples of the parameter domains. *)

val mark_phase : ?certify:certifier -> ?envs:Env.t list -> program -> phase -> phase
(** [decide] keeping only the re-marked phase. *)

val mark : ?certify:certifier -> ?envs:Env.t list -> program -> program
(** [mark_phase] over every phase. *)

val recognize_reductions : ?envs:Env.t list -> program -> program
(** Reduction privatization, the transformation Polaris applies before
    marking: a phase whose outermost loop is blocked {e only} by a
    scalar accumulator ([... S(c) ... = ... S(c) ...] with a
    loop-invariant subscript) is split into a parallel partial-
    accumulation phase over a fresh [__red_S] array (one slot per
    iteration) and a short sequential combine phase folding the slots
    back into [S(c)].  Phases where the pattern does not apply are left
    untouched; run {!mark} afterwards to parallelize the result. *)
