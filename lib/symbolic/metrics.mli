(** Process-wide metrics registry: named counters, wall-clock timers,
    histograms and cache (memo-table) statistics.

    Cells are interned by name on first use and survive {!reset} (which
    only zeroes their numbers), so modules may safely capture handles at
    initialization time.  Timers use the monotonic-enough
    [Unix.gettimeofday] and are reentrancy-safe: a recursive entry is
    counted as a call but only the outermost frame accumulates wall
    time, so nested or recursive kernels never double-bill.

    The registry deliberately has no dependencies beyond [unix] so every
    layer of the pipeline - [Symbolic.Expr] normalization at the bottom,
    [Core.Pipeline] stages at the top - can report into the same table.
    [Core.Metrics] re-exports this module for pipeline-level callers. *)

type counter
type timer
type histogram
type cache

val counter : string -> counter
(** Intern (find or create) the counter cell of that name. *)

val timer : string -> timer
val histogram : string -> histogram
val cache : string -> cache

val incr : ?by:int -> counter -> unit
val observe : histogram -> float -> unit

val now : unit -> float
(** [Unix.gettimeofday], exposed so drivers use the same clock. *)

val with_timer : timer -> (unit -> 'a) -> 'a
(** Run the thunk, adding its wall time to the cell.  Exceptions
    propagate (the elapsed time is still recorded). *)

val add_time : timer -> float -> unit
(** Record one call of [s] seconds measured externally. *)

val hit : cache -> unit
val miss : cache -> unit
val hits : cache -> int
val misses : cache -> int
val lookups : cache -> int
val hit_rate : cache -> float
(** Hits over total lookups; [0.0] when the cache was never consulted. *)

val reset : unit -> unit
(** Zero every cell, keeping registrations. *)

type snapshot = {
  counters : (string * int) list;
  timers : (string * (int * float)) list;  (** calls, seconds *)
  histograms : (string * (int * float * float * float)) list;
      (** n, sum, min, max *)
  caches : (string * (int * int)) list;  (** hits, misses *)
}

val snapshot : unit -> snapshot
(** Cells in creation order. *)

val merge : snapshot -> snapshot -> snapshot
(** Fleet-wide aggregation: counter values, timer calls/seconds and
    cache hits/misses add; histograms combine count/sum and take the
    min/max of the non-empty sides.  Cell order follows the first
    snapshot, then any names only the second contains.  Used by the
    batch driver to fold per-job worker snapshots into one view. *)

val absorb : snapshot -> unit
(** Add a snapshot's numbers into the live registry (creating cells as
    needed), so a parent process's [--profile]/[--profile-json] report
    includes its workers' merged numbers alongside its own. *)

exception Parse_error of string
(** Malformed JSON handed to {!of_json}. *)

val of_json : string -> snapshot
(** Parse a document produced by {!to_json} back into a snapshot (the
    worker side of the pool's result pipe serialises with [to_json]).
    [hit_rate] fields are ignored (recomputed); [null] floats (NaN or
    infinities on the emitting side) parse as [0.0].
    @raise Parse_error on malformed input. *)

val pp_table : Format.formatter -> snapshot -> unit
(** Human-readable table (the [--profile] stderr output). *)

val report : unit -> string
(** [pp_table] of a fresh snapshot, as a string. *)

val to_json : snapshot -> string
(** Machine-readable snapshot:
    [{"timers":{name:{"calls":n,"seconds":s}},
      "caches":{name:{"hits":h,"misses":m,"hit_rate":r}},
      "counters":{name:v}, "histograms":{...}}]. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal (exposed for
    the drivers that compose larger JSON documents around snapshots). *)

val json_float : float -> string
(** Render a float as a JSON number ([null] for NaN/infinities). *)
