(* Property layer guarding the descriptor algebra and the pipeline.

   Every algebraic operation (stride coalescing, row union, full
   simplification, offset adjustment, homogenization) is checked
   against the brute-force enumeration oracle (Ir.Enumerate expands the
   loop nest reference by reference), on randomly generated affine
   nests.  Two meta-properties pin the new memoization layer: results
   are identical cold (caches flushed) and warm, and the whole pipeline
   is deterministic - running it twice under the same probe seed yields
   byte-identical reports.  Finally parse/unparse is a structural
   round trip. *)

open Symbolic
open Ir
open Descriptor

let count = 200

(* ------------------------------------------------------------------ *)
(* Reproducibility: every qcheck test runs from a deterministic seed,
   overridable with QCHECK_SEED=<int>, and every counterexample printer
   appends the seed plus a copy-pasteable dsmloc repro command, so a CI
   failure can be replayed (and the offending program analyzed) without
   re-running the suite blind. *)

let qcheck_seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some n -> n
  | None -> 730129

let to_alcotest test =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| qcheck_seed |]) test

let repro_footer =
  Printf.sprintf
    "# to replay this run:   QCHECK_SEED=%d dune exec test/test_properties.exe\n\
     # to analyze directly:  save the program above as repro.dsm, then:\n\
     #   dune exec bin/dsmloc.exe -- file repro.dsm --procs 4"
    qcheck_seed

let print_counterexample p =
  Printf.sprintf "%s\n%s" (Frontend.Unparse.to_string p) repro_footer

(* ------------------------------------------------------------------ *)
(* Generators: constant-bound affine nests (always rectangular, so the
   descriptor expansion is defined and the oracle is exact). *)

let i = Expr.int
let v = Expr.var

let gen_affine_program =
  let open QCheck.Gen in
  let* depth = int_range 1 3 in
  let* bounds = list_repeat depth (int_range 2 5) in
  let* coeffs = list_repeat depth (int_range 0 7) in
  let* offset = int_range 0 10 in
  let* second_ref = bool in
  let* shift = int_range 0 9 in
  let* with_write = bool in
  let vars = List.mapi (fun k _ -> Printf.sprintf "v%d" k) bounds in
  let subscript extra =
    List.fold_left2
      (fun acc vn c -> Expr.add acc (Expr.mul (i c) (v vn)))
      (i (offset + extra))
      vars coeffs
  in
  let refs =
    (if second_ref then
       [ Build.read "A" [ subscript 0 ]; Build.read "A" [ subscript shift ] ]
     else [ Build.read "A" [ subscript 0 ] ])
    @ if with_write then [ Build.write "A" [ subscript 0 ] ] else []
  in
  let body = [ Build.assign refs ] in
  let nest =
    List.fold_right2
      (fun vn b inner -> [ Build.do_ vn ~lo:(i 0) ~hi:(i (b - 1)) inner ])
      (List.tl vars) (List.tl bounds) body
  in
  let outer =
    Build.doall (List.hd vars) ~lo:(i 0) ~hi:(i (List.hd bounds - 1)) nest
  in
  return
    (Build.program ~name:"gen" ~params:Assume.empty
       ~arrays:[ Build.array "A" [ i 2000 ] ]
       [ Build.phase "G" outer ])

let arb_affine = QCheck.make gen_affine_program ~print:print_counterexample

(* Two phases over the same array with the same stride and a shifted
   offset: the shape Unionize.homogenize is specified for. *)
let gen_shifted_pair =
  let open QCheck.Gen in
  let* n = int_range 3 8 in
  let* stride = int_range 1 4 in
  let* steps = int_range 0 6 in
  let shift = stride * steps in
  let idx extra = Expr.add (Expr.mul (i stride) (v "x")) (i extra) in
  return
    (Build.program ~name:"pair" ~params:Assume.empty
       ~arrays:[ Build.array "A" [ i 500 ] ]
       [
         Build.phase "P1"
           (Build.doall "x" ~lo:(i 0) ~hi:(i (n - 1))
              [ Build.assign [ Build.write "A" [ idx 0 ] ] ]);
         Build.phase "P2"
           (Build.doall "x" ~lo:(i 0) ~hi:(i (n - 1))
              [ Build.assign [ Build.read "A" [ idx shift ] ] ]);
       ])

let arb_shifted_pair = QCheck.make gen_shifted_pair ~print:print_counterexample

(* ------------------------------------------------------------------ *)
(* Oracles *)

let pd_of prog k =
  let ph = List.nth prog.Types.phases k in
  Pd.of_phase (Phase.analyze prog ph) ~array:"A"

let expand pd ~par =
  try Some (Region.sorted (Region.addresses Env.empty pd ~par))
  with Region.Not_rectangular _ -> None

let oracle prog k ~par =
  let ph = List.nth prog.Types.phases k in
  match par with
  | None -> Region.sorted (Enumerate.address_set prog Env.empty ph ~array:"A")
  | Some it ->
      Enumerate.iteration_addresses prog Env.empty ph ~array:"A" ~par:it
      |> List.map fst |> List.sort_uniq compare

(* Each transform of the simplification chain must leave the denoted
   address set - whole phase and per iteration - untouched. *)
let preserves_region transform prog =
  Probe.with_seed 501 (fun () ->
      let pd = transform (pd_of prog 0) in
      expand pd ~par:None = Some (oracle prog 0 ~par:None)
      && expand pd ~par:(Some 0) = Some (oracle prog 0 ~par:(Some 0))
      && expand pd ~par:(Some 1) = Some (oracle prog 0 ~par:(Some 1)))

let prop_coalesce_oracle =
  QCheck.Test.make ~name:"Coalesce.pd preserves the oracle region" ~count
    arb_affine
    (preserves_region Coalesce.pd)

let prop_unionize_rows_oracle =
  QCheck.Test.make ~name:"Unionize.rows preserves the oracle region" ~count
    arb_affine
    (preserves_region (fun pd -> Unionize.rows (Coalesce.pd pd)))

let prop_simplify_oracle =
  QCheck.Test.make ~name:"Unionize.simplify preserves the oracle region" ~count
    arb_affine
    (preserves_region Unionize.simplify)

let prop_simplify_idempotent =
  QCheck.Test.make ~name:"Unionize.simplify is idempotent on regions" ~count
    arb_affine (fun prog ->
      Probe.with_seed 502 (fun () ->
          let once = Unionize.simplify (pd_of prog 0) in
          let twice = Unionize.simplify once in
          expand once ~par:None = expand twice ~par:None
          && expand once ~par:(Some 0) = expand twice ~par:(Some 0)))

let prop_min_offset_oracle =
  QCheck.Test.make ~name:"Offset.min_offset = smallest oracle address" ~count
    arb_affine (fun prog ->
      Probe.with_seed 503 (fun () ->
          let pd = Unionize.simplify (pd_of prog 0) in
          match Offset.min_offset pd with
          | None -> false
          | Some e -> (
              match oracle prog 0 ~par:None with
              | [] -> false
              | lo :: _ -> Env.eval Env.empty e = lo)))

let prop_homogenize_union =
  QCheck.Test.make ~name:"Unionize.homogenize denotes the union of regions"
    ~count arb_shifted_pair (fun prog ->
      Probe.with_seed 504 (fun () ->
          let pd1 = Unionize.simplify (pd_of prog 0) in
          let pd2 = Unionize.simplify (pd_of prog 1) in
          match Unionize.homogenize pd1 pd2 with
          | None ->
              (* homogenization may conservatively decline; it must not
                 decline the trivial unshifted case *)
              oracle prog 0 ~par:None <> oracle prog 1 ~par:None
          | Some merged -> (
              match expand merged ~par:None with
              | None -> false
              | Some got ->
                  got
                  = List.sort_uniq compare
                      (oracle prog 0 ~par:None @ oracle prog 1 ~par:None))))

(* Offset adjustment: R = (tau - tau_min) / delta_par in parallel-stride
   steps; re-deriving tau from R must land back on the row offset. *)
let prop_adjust_distance =
  QCheck.Test.make ~name:"Offset.adjust_distance inverts to the offset" ~count
    arb_shifted_pair (fun prog ->
      Probe.with_seed 505 (fun () ->
          let pd1 = Unionize.simplify (pd_of prog 0) in
          let pd2 = Unionize.simplify (pd_of prog 1) in
          match Offset.tau_min [ pd1; pd2 ] with
          | None -> false
          | Some tau_min -> (
              let check pd =
                match
                  ( Offset.adjust_distance pd ~tau_min,
                    Offset.min_offset pd,
                    Pd.par_stride (List.hd pd.Pd.groups) )
                with
                | Some r, Some tau, Some dp ->
                    Env.eval Env.empty tau
                    = Env.eval Env.empty tau_min
                      + (Env.eval Env.empty r * Env.eval Env.empty dp)
                | _ -> false
              in
              check pd1 && check pd2)))

(* Memo coherence: flushing every cache (and re-seeding the probe
   stream, which flushes the seed-dependent tables) must not change any
   answer - a cold run and a warm run agree. *)
let prop_memo_coherence =
  QCheck.Test.make ~name:"cold and warm caches give identical results" ~count
    arb_affine (fun prog ->
      let compute () =
        Probe.with_seed 506 (fun () ->
            let pd = Unionize.simplify (pd_of prog 0) in
            (expand pd ~par:None, expand pd ~par:(Some 0)))
      in
      Core.Artifact.clear_all ();
      let cold = compute () in
      let warm = compute () in
      Core.Artifact.clear_all ();
      let cold2 = compute () in
      cold = warm && cold = cold2)

(* ------------------------------------------------------------------ *)
(* Interning: the hash-consed [Expr.equal]/[Expr.compare] must agree
   with the pure structural reference implementations on arbitrary
   expressions - both within one intern generation (where equality is a
   physical check) and across an [intern_reset] (where the structural
   fallback carries it).  Expressions are generated as construction
   recipes so the same term can be rebuilt on either side of a reset. *)

type recipe =
  | RInt of int
  | RVar of string
  | RAdd of recipe * recipe
  | RSub of recipe * recipe
  | RMul of recipe * recipe
  | RPow2 of string * int  (* 2^(v + k): the shape the analyses build *)
  | RFloor of recipe * recipe
  | RCeil of recipe * recipe
  | RDiv of recipe * recipe

let rec build_recipe r =
  let nonzero r =
    let e = build_recipe r in
    if Expr.is_zero e then Expr.one else e
  in
  match r with
  | RInt n -> i n
  | RVar s -> v s
  | RAdd (a, b) -> Expr.add (build_recipe a) (build_recipe b)
  | RSub (a, b) -> Expr.sub (build_recipe a) (build_recipe b)
  | RMul (a, b) -> Expr.mul (build_recipe a) (build_recipe b)
  | RPow2 (s, k) -> Expr.pow2 (Expr.add (v s) (i k))
  | RFloor (a, b) -> Expr.floor_div (build_recipe a) (nonzero b)
  | RCeil (a, b) -> Expr.ceil_div (build_recipe a) (nonzero b)
  | RDiv (a, b) -> Expr.div (build_recipe a) (nonzero b)

let gen_recipe =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> RInt n) (int_range (-8) 8);
        map (fun s -> RVar s) (oneofl [ "x"; "y"; "z" ]);
        map2 (fun s k -> RPow2 (s, k)) (oneofl [ "x"; "y" ]) (int_range 0 3);
      ]
  in
  (* fuel is kept small ([0..8], halving per level): multiplying sums
     multiplies monomial counts, so unbounded towers of RMul-over-RAdd
     make normalisation exponentially expensive *)
  int_range 0 8
  >>= fix (fun self n ->
          if n <= 0 then leaf
          else
            let sub = self (n / 2) in
            frequency
              [
                (2, leaf);
                (3, map2 (fun a b -> RAdd (a, b)) sub sub);
                (2, map2 (fun a b -> RSub (a, b)) sub sub);
                (3, map2 (fun a b -> RMul (a, b)) sub sub);
                (1, map2 (fun a b -> RFloor (a, b)) sub sub);
                (1, map2 (fun a b -> RCeil (a, b)) sub sub);
                (1, map2 (fun a b -> RDiv (a, b)) sub sub);
              ])

let arb_recipe_pair =
  QCheck.make
    QCheck.Gen.(pair gen_recipe gen_recipe)
    ~print:(fun (a, b) ->
      Format.asprintf "%a / %a@.%s" Expr.pp (build_recipe a) Expr.pp
        (build_recipe b) repro_footer)

let prop_intern_agrees_structural =
  QCheck.Test.make ~name:"interned equal/compare = structural reference"
    ~count arb_recipe_pair (fun (r1, r2) ->
      let a = build_recipe r1 and b = build_recipe r2 in
      Expr.equal a b = Expr.structural_equal a b
      && Expr.compare a b = Expr.structural_compare a b
      && Expr.compare a b = -Expr.compare b a
      && (Expr.compare a b = 0) = Expr.equal a b
      && ((not (Expr.equal a b)) || Expr.digest a = Expr.digest b))

let prop_intern_reset_coherent =
  QCheck.Test.make ~name:"equal/compare/digest stable across intern_reset"
    ~count arb_recipe_pair (fun (r1, r2) ->
      let a = build_recipe r1 and a2 = build_recipe r2 in
      let digest_a = Expr.digest a in
      let order = Expr.compare a a2 in
      Expr.intern_reset ();
      let b = build_recipe r1 and b2 = build_recipe r2 in
      (* the same recipe denotes the same interned term, just in a new
         generation: equality, order and digest must all carry over,
         including between a pre-reset and a post-reset value *)
      Expr.equal a b
      && Expr.compare a b = 0
      && Expr.structural_equal a b
      && Expr.digest b = digest_a
      && Expr.compare b b2 = order
      && Expr.compare a b2 = order
      && Expr.compare b a2 = order)

(* Dedicated cold-vs-warm run over the full pipeline: the first run
   starts from empty artifact stores and a fresh intern generation, the
   second answers from the warm stores - the rendered reports must be
   byte-identical. *)
let report_of_cold_warm t = Format.asprintf "%a" Core.Pipeline.report t

let prop_cold_warm_report =
  QCheck.Test.make ~name:"cold and warm pipeline reports byte-identical"
    ~count arb_affine (fun prog ->
      Core.Artifact.clear_all ();
      let once () =
        Probe.with_seed 509 (fun () ->
            report_of_cold_warm (Core.Pipeline.run prog ~env:Env.empty ~h:4))
      in
      let cold = once () in
      let warm = once () in
      cold = warm)

(* ------------------------------------------------------------------ *)
(* Frontend round trip and pipeline determinism *)

(* The parser rebalances affine sums, so structural equality is too
   strong for generated programs; the trip must instead be a fixed
   point of unparsing and leave the denoted address set untouched. *)
let prop_parse_unparse =
  QCheck.Test.make ~name:"parse (unparse p) = p (up to normalisation)" ~count
    arb_affine (fun prog ->
      let text = Frontend.Unparse.to_string prog in
      match Frontend.Parse.program text with
      | exception Frontend.Parse.Error _ -> false
      | parsed ->
          Frontend.Unparse.to_string parsed = text
          && oracle parsed 0 ~par:None = oracle prog 0 ~par:None)

let report_of t = Format.asprintf "%a" Core.Pipeline.report t

let prop_pipeline_deterministic =
  QCheck.Test.make ~name:"Pipeline.run twice = identical report" ~count
    arb_affine (fun prog ->
      let once () =
        Probe.with_seed 507 (fun () ->
            report_of (Core.Pipeline.run prog ~env:Env.empty ~h:4))
      in
      once () = once ())

(* ------------------------------------------------------------------ *)
(* The same two guarantees over every shipped surface program: the
   corpus exercises pow2 parameters, subroutines, repeat loops and
   multi-array phases that the generators above do not reach. *)

let samples_dir =
  let rec up dir =
    let candidate = Filename.concat dir "examples/programs" in
    if Sys.file_exists candidate && Sys.is_directory candidate then candidate
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then failwith "examples/programs not found"
      else up parent
  in
  up (Sys.getcwd ())

let sample_files () =
  Sys.readdir samples_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".dsm")
  |> List.sort compare

(* Midpoint bindings for each declared parameter (the dsmloc `file`
   command's default environment). *)
let midpoint_env (prog : Types.program) =
  List.fold_left
    (fun env (vn, d) ->
      match d with
      | Assume.Int_range (lo, hi) -> Env.add vn ((lo + hi) / 2) env
      | Assume.Pow2_of w -> Env.add vn (1 lsl Env.find env w) env
      | Assume.Expr_range _ -> env)
    Env.empty
    (Assume.to_list prog.params)

let test_samples_roundtrip () =
  List.iter
    (fun f ->
      let path = Filename.concat samples_dir f in
      let prog = Frontend.Parse.program_file path in
      match Frontend.Parse.program (Frontend.Unparse.to_string prog) with
      | parsed -> Alcotest.(check bool) (f ^ " roundtrips") true (parsed = prog)
      | exception Frontend.Parse.Error { line; message } ->
          Alcotest.fail (Printf.sprintf "%s: line %d: %s" f line message))
    (sample_files ())

let test_samples_deterministic () =
  List.iter
    (fun f ->
      let path = Filename.concat samples_dir f in
      let prog = Frontend.Parse.program_file path in
      let env = midpoint_env prog in
      let once () =
        Probe.with_seed 508 (fun () ->
            report_of (Core.Pipeline.run prog ~env ~h:4))
      in
      Alcotest.(check bool) (f ^ " deterministic") true (once () = once ()))
    (sample_files ())

let () =
  Alcotest.run "properties"
    [
      ( "descriptor-algebra",
        List.map to_alcotest
          [
            prop_coalesce_oracle;
            prop_unionize_rows_oracle;
            prop_simplify_oracle;
            prop_simplify_idempotent;
            prop_min_offset_oracle;
            prop_homogenize_union;
            prop_adjust_distance;
          ] );
      ( "caching",
        [
          to_alcotest prop_memo_coherence;
          to_alcotest prop_cold_warm_report;
        ] );
      ( "interning",
        List.map to_alcotest
          [ prop_intern_agrees_structural; prop_intern_reset_coherent ] );
      ( "frontend",
        [
          to_alcotest prop_parse_unparse;
          Alcotest.test_case "all samples roundtrip" `Quick
            test_samples_roundtrip;
        ] );
      ( "pipeline",
        [
          to_alcotest prop_pipeline_deterministic;
          Alcotest.test_case "all samples deterministic" `Slow
            test_samples_deterministic;
        ] );
    ]
