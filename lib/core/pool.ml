(* Forked worker pool: the parent owns the work queue and feeds workers
   over per-worker pipes; see pool.mli for the contract and DESIGN.md
   section 13 for the wire protocol.

   Framing: every message, both directions, is an 8-byte big-endian
   length followed by that many bytes of [Marshal] payload.  A worker
   writes each result frame with one buffered flush, so the parent can
   treat "select says readable, then the frame truncates" as worker
   death: a healthy worker never parks mid-frame. *)

open Symbolic

type 'r outcome =
  | Done of {
      value : 'r;
      attempts : int;
      lost : string list;
      metrics : Metrics.snapshot;
    }
  | Failed of { attempts : int; reasons : string list }

(* parent -> worker *)
type 'a job_msg = Job of int * int * 'a (* idx, attempt, payload *) | Stop

(* worker -> parent frames are [int * ('b, string) result * string]:
   idx, result-or-exception, metrics JSON *)

let empty_snapshot =
  { Metrics.counters = []; timers = []; histograms = []; caches = [] }

(* ------------------------------------------------------------------ *)
(* Framed marshal transport over raw fds *)

let rec restart f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart f

let write_all fd buf =
  let len = Bytes.length buf in
  let ofs = ref 0 in
  while !ofs < len do
    let n = restart (fun () -> Unix.write fd buf !ofs (len - !ofs)) in
    ofs := !ofs + n
  done

(* [None] on EOF, including EOF mid-buffer (a worker killed mid-frame
   leaves a truncated frame behind). *)
let read_exact fd len =
  let buf = Bytes.create len in
  let ofs = ref 0 in
  let eof = ref false in
  while (not !eof) && !ofs < len do
    let n = restart (fun () -> Unix.read fd buf !ofs (len - !ofs)) in
    if n = 0 then eof := true else ofs := !ofs + n
  done;
  if !eof then None else Some buf

let send fd v =
  let payload = Marshal.to_bytes v [] in
  let hdr = Bytes.create 8 in
  Bytes.set_int64_be hdr 0 (Int64.of_int (Bytes.length payload));
  write_all fd hdr;
  write_all fd payload

let recv fd =
  match read_exact fd 8 with
  | None -> None
  | Some hdr -> (
      let len = Int64.to_int (Bytes.get_int64_be hdr 0) in
      match read_exact fd len with
      | None -> None
      | Some payload -> Some (Marshal.from_bytes payload 0))

(* ------------------------------------------------------------------ *)
(* Workers *)

type worker = {
  pid : int;
  job_w : Unix.file_descr;  (* parent writes job frames *)
  res_r : Unix.file_descr;  (* parent reads result frames *)
  mutable running : int option;  (* job index in flight *)
  mutable reaped : bool;
}

(* Per-job seed for the probe stream: derived from the job index alone
   so a job's randomized decisions are identical whichever worker runs
   it and whatever ran on that worker before. *)
let job_seed idx = 1999 + idx

let worker_loop ~f job_r res_w =
  let rec loop () =
    match recv job_r with
    | None | Some Stop -> ()
    | Some (Job (idx, attempt, payload)) ->
        (* Per-job reset protocol (DESIGN.md section 14): zero the
           metric cells, drop every artifact store, and drop the
           expression intern table, so a job's result and profile are
           identical whichever worker runs it and whatever ran on that
           worker before.  [with_seed] below additionally pins the
           probe stream to the job index. *)
        Metrics.reset ();
        Artifact.clear_all ();
        Expr.intern_reset ();
        let result =
          Probe.with_seed (job_seed idx) (fun () ->
              try Ok (f ~attempt payload)
              with e -> Error (Printexc.to_string e))
        in
        let mjson = Metrics.to_json (Metrics.snapshot ()) in
        send res_w (idx, result, mjson);
        loop ()
  in
  loop ()

(* Fork one worker.  [sibling_fds] are the parent-side ends of every
   other live worker's pipes: the child closes its inherited copies so
   a sibling's death still reads as EOF/EPIPE in the parent. *)
let spawn ~f ~sibling_fds =
  let job_r, job_w = Unix.pipe () in
  let res_r, res_w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) sibling_fds;
      Unix.close job_w;
      Unix.close res_r;
      (* _exit, not exit: the worker must not run the parent's at_exit
         handlers (the CLI's profile emitter) or flush its inherited
         copies of the parent's output buffers. *)
      (try worker_loop ~f job_r res_w with _ -> Unix._exit 1);
      Unix._exit 0
  | pid ->
      Unix.close job_r;
      Unix.close res_w;
      { pid; job_w; res_r; running = None; reaped = false }

let describe_status = function
  | Unix.WEXITED c -> Printf.sprintf "worker exited with code %d" c
  | Unix.WSIGNALED sg ->
      (* [waitpid] reports OCaml's own (negative) signal numbering *)
      let name =
        if sg = Sys.sigkill then "SIGKILL"
        else if sg = Sys.sigsegv then "SIGSEGV"
        else if sg = Sys.sigterm then "SIGTERM"
        else if sg = Sys.sigabrt then "SIGABRT"
        else Printf.sprintf "signal %d" sg
      in
      Printf.sprintf "worker killed by %s" name
  | Unix.WSTOPPED sg -> Printf.sprintf "worker stopped by signal %d" sg

let reap w =
  if w.reaped then "worker already reaped"
  else begin
    w.reaped <- true;
    match restart (fun () -> Unix.waitpid [] w.pid) with
    | _, status -> describe_status status
    | exception Unix.Unix_error _ -> "worker vanished"
  end

let close_worker_fds w =
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ w.job_w; w.res_r ]

(* ------------------------------------------------------------------ *)

let jobs_counter = Metrics.counter "pool.jobs"
let crash_counter = Metrics.counter "pool.worker_lost"
let retry_counter = Metrics.counter "pool.retries"
let pool_timer = Metrics.timer "pool.map"

let profile_bad_counter = Metrics.counter "pool.profile_bad"

let map ?(workers = 4) ?(retries = 1) ?stream ?diags ~f jobs =
  let jobs_a = Array.of_list jobs in
  let nj = Array.length jobs_a in
  if nj = 0 then ([], empty_snapshot)
  else begin
    Metrics.with_timer pool_timer @@ fun () ->
    Metrics.incr jobs_counter ~by:nj;
    let results = Array.make nj None in
    let attempts = Array.make nj 0 in
    let failures = Array.make nj [] in
    (* Dead workers must surface as EPIPE/EOF, not as a parent kill. *)
    let old_sigpipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ -> None
    in
    let alive = ref [] in
    let completed = ref 0 in
    let stream_next = ref 0 in
    let pending = Queue.create () in
    Array.iteri (fun i _ -> Queue.add i pending) jobs_a;
    let sibling_fds () =
      List.concat_map (fun w -> [ w.job_w; w.res_r ]) !alive
    in
    let spawn_worker () =
      let w = spawn ~f ~sibling_fds:(sibling_fds ()) in
      alive := !alive @ [ w ];
      w
    in
    let record idx outcome =
      results.(idx) <- Some outcome;
      incr completed;
      while
        !stream_next < nj && results.(!stream_next) <> None
      do
        (match stream with
        | Some g -> g !stream_next (Option.get results.(!stream_next))
        | None -> ());
        incr stream_next
      done
    in
    let fail_attempt idx reason =
      failures.(idx) <- reason :: failures.(idx);
      if attempts.(idx) > retries then
        record idx
          (Failed
             { attempts = attempts.(idx); reasons = List.rev failures.(idx) })
      else begin
        Metrics.incr retry_counter;
        Queue.add idx pending
      end
    in
    let assign w idx =
      attempts.(idx) <- attempts.(idx) + 1;
      w.running <- Some idx;
      try send w.job_w (Job (idx, attempts.(idx), jobs_a.(idx)))
      with Unix.Unix_error (Unix.EPIPE, _, _) | Sys_error _ ->
        (* already dead: the EOF on its result pipe drives recovery *)
        ()
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun w ->
            (try send w.job_w Stop
             with Unix.Unix_error _ | Sys_error _ -> ());
            close_worker_fds w;
            ignore (reap w))
          !alive;
        match old_sigpipe with
        | Some b -> Sys.set_signal Sys.sigpipe b
        | None -> ())
    @@ fun () ->
    for _ = 1 to max 1 (min workers nj) do
      ignore (spawn_worker ())
    done;
    while !completed < nj do
      (* hand work to idle workers *)
      List.iter
        (fun w ->
          if w.running = None && not (Queue.is_empty pending) then
            assign w (Queue.pop pending))
        !alive;
      let busy = List.filter (fun w -> w.running <> None) !alive in
      if busy = [] then
        (* every remaining job is queued but no worker took one: only
           possible if the pool emptied, which spawn/recovery prevents *)
        assert (Queue.is_empty pending && !completed = nj)
      else begin
        let fds = List.map (fun w -> w.res_r) busy in
        let readable, _, _ =
          restart (fun () -> Unix.select fds [] [] (-1.0))
        in
        List.iter
          (fun fd ->
            let w = List.find (fun w -> w.res_r = fd) !alive in
            match (try recv w.res_r with Failure _ -> None) with
            | Some (idx, result, mjson) -> (
                w.running <- None;
                match result with
                | Ok value ->
                    let metrics =
                      (* A malformed profile never kills the parent:
                         the job's value stands, the profile degrades
                         to empty and the corruption is surfaced. *)
                      try Metrics.of_json mjson
                      with Metrics.Parse_error msg ->
                        Metrics.incr profile_bad_counter;
                        (match diags with
                        | Some c ->
                            Diag.addf c ~severity:Diag.Warning
                              ~stage:Diag.Pool ~code:"POOL-PROFILE-BAD"
                              "job %d: worker profile unreadable (%s); \
                               profile dropped"
                              idx msg
                        | None -> ());
                        empty_snapshot
                    in
                    record idx
                      (Done
                         {
                           value;
                           attempts = attempts.(idx);
                           lost = List.rev failures.(idx);
                           metrics;
                         })
                | Error reason ->
                    fail_attempt idx ("job raised: " ^ reason))
            | None ->
                (* EOF mid-stream: the worker died.  Reap it, replace
                   it, and send the lost job (if any) to the fresh
                   worker directly. *)
                Metrics.incr crash_counter;
                let reason = reap w in
                close_worker_fds w;
                alive := List.filter (fun w' -> w'.pid <> w.pid) !alive;
                let lost_job = w.running in
                let fresh =
                  if
                    !completed + List.length !alive < nj
                    || lost_job <> None
                  then Some (spawn_worker ())
                  else None
                in
                (match lost_job with
                | None -> ()
                | Some idx ->
                    failures.(idx) <- reason :: failures.(idx);
                    if attempts.(idx) > retries then
                      record idx
                        (Failed
                           {
                             attempts = attempts.(idx);
                             reasons = List.rev failures.(idx);
                           })
                    else begin
                      Metrics.incr retry_counter;
                      match fresh with
                      | Some w' -> assign w' idx
                      | None -> Queue.add idx pending
                    end))
          readable
      end
    done;
    let outcomes =
      Array.to_list (Array.map (fun r -> Option.get r) results)
    in
    let merged =
      List.fold_left
        (fun acc o ->
          match o with
          | Done { metrics; _ } -> Metrics.merge acc metrics
          | Failed _ -> acc)
        empty_snapshot outcomes
    in
    (outcomes, merged)
  end
