(** Concrete integer assignments for symbolic variables. *)

type t

exception Unbound of string
(** Raised by {!find} (and everything built on it) for an unbound
    variable, carrying the variable's name. *)

val empty : t
val of_list : (string * int) list -> t
val add : string -> int -> t -> t
val find : t -> string -> int
(** @raise Unbound when the variable has no binding. *)

val find_opt : t -> string -> int option
val mem : t -> string -> bool
val bindings : t -> (string * int) list

val id : t -> int
(** Unique identity of this environment value, assigned at creation.
    Caches keyed on an environment use this id (never the bindings), so
    two environments with equal bindings still have distinct cache
    lines - the memo-coherence argument of DESIGN.md section 12. *)

val ephemeral : t -> t
(** A copy (fresh id) whose evaluations bypass the global artifact
    store, as do those of every environment derived from it via {!add}.
    Mark environments that die quickly and in bulk - probe samples, the
    enumerator's per-iteration bindings - so they do not churn the
    store or drag short-lived cache entries into the major heap. *)

val lookup : t -> string -> Qnum.t
(** Shape expected by {!Expr.eval}. *)

val eval : t -> Expr.t -> int
(** [eval env e] = {!Expr.eval_int} under [env]. *)

val eval_q : t -> Expr.t -> Qnum.t
val pp : Format.formatter -> t -> unit
