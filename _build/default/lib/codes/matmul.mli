(** Blocked-row matrix multiply C = A * B with an init and a scale
    phase.

    Exercises the {e replicated} access pattern: every parallel
    iteration j of MULT reads all of A (A's addresses are invariant
    across the parallel loop), which the analysis reports as total
    overlap; being read-only it still satisfies Theorem 1c and A is
    simply replicated.  B and C are accessed by columns (column-major),
    giving clean [p = p] chains INIT -> MULT -> SCALE for C. *)

open Symbolic
open Ir.Types

val params : Assume.t
val program : program
val env : n:int -> Env.t
