(** Exact rational arithmetic on native integers.

    All descriptor algebra in this library uses exact rationals: strides
    such as [P * 2^(-L)] produce rational coefficients during
    normalization even though every final quantity of interest is an
    integer.  Magnitudes stay far below 2{^62} for every workload in the
    repo; overflow in the numerator/denominator products raises
    [Overflow] rather than wrapping silently. *)

type t = private { num : int; den : int }
(** Invariant: [den > 0], [gcd num den = 1] (and [den = 1] when
    [num = 0]). *)

exception Overflow
exception Division_by_zero

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den].
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t
val zero : t
val one : t
val minus_one : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val abs : t -> t
val inv : t -> t

val equal : t -> t -> bool

(** Total order.  Comparison cross-reduces by gcd before multiplying so
    rationals near [max_int] compare exactly; if the reduced cross
    products would still overflow it falls back to sign and then
    floating-point comparison instead of raising [Overflow]. *)
val compare : t -> t -> int
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val to_int : t -> int
(** @raise Invalid_argument if the value is not an integer. *)

val to_float : t -> float

val floor : t -> int
(** Largest integer [<=] the value. *)

val ceil : t -> int
(** Smallest integer [>=] the value. *)

val min : t -> t -> t
val max : t -> t -> t

val pow2 : int -> t
(** [pow2 k] is [2^k] for any integer [k], including negative [k]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
