open Symbolic
open Ir.Types

type entry = {
  name : string;
  program : program;
  env_of_size : int -> Env.t;
  default_size : int;
}

let all =
  [
    {
      name = "tfft2";
      program = Tfft2.program;
      env_of_size = (fun s -> Tfft2.env ~p:s ~q:s);
      default_size = 5;
    };
    {
      name = "jacobi2d";
      program = Jacobi.program;
      env_of_size = (fun s -> Jacobi.env ~n:(1 lsl s));
      default_size = 5;
    };
    {
      name = "swim";
      program = Swim.program;
      env_of_size = (fun s -> Swim.env ~n:(1 lsl s));
      default_size = 5;
    };
    {
      name = "tomcatv";
      program = Tomcatv.program;
      env_of_size = (fun s -> Tomcatv.env ~n:(1 lsl s));
      default_size = 5;
    };
    {
      name = "matmul";
      program = Matmul.program;
      env_of_size = (fun s -> Matmul.env ~n:(1 lsl s));
      default_size = 4;
    };
    {
      name = "adi";
      program = Adi.program;
      env_of_size = (fun s -> Adi.env ~n:(1 lsl s));
      default_size = 5;
    };
    {
      name = "redblack";
      program = Redblack.program;
      env_of_size = (fun s -> Redblack.env ~n:(1 lsl s));
      default_size = 6;
    };
    {
      name = "trisolve";
      program = Trisolve.program;
      env_of_size = (fun s -> Trisolve.env ~n:(1 lsl s));
      default_size = 4;
    };
    {
      name = "mgrid";
      program = Mgrid.program;
      env_of_size = (fun s -> Mgrid.env ~n:(1 lsl s));
      default_size = 7;
    };
  ]

let find name = List.find (fun e -> String.equal e.name name) all
let names = List.map (fun e -> e.name) all
