(* Quickstart: analyze a small two-phase program end to end.

   Build a loop-nest program with the IR DSL, run the locality pipeline
   (descriptors -> LCG -> constraint model -> distribution), and replay
   it on the DSM machine model.

     dune exec examples/quickstart.exe
*)

open Symbolic
open Ir.Build

(* A producer/consumer pair over one array: F1 writes T by blocks of 4,
   F2 reads it back element-wise - the balanced locality condition
   couples their chunk sizes as 4 * p1 = p2. *)
let program =
  let n = var "N" in
  program ~name:"quickstart"
    ~params:(Assume.of_list [ ("N", Assume.Int_range (16, 64)) ])
    ~arrays:[ array "T" [ int 4 * n ] ]
    [
      phase "PRODUCE"
        (doall "i" ~lo:(int 0) ~hi:(n - int 1)
           [
             do_ "j" ~lo:(int 0) ~hi:(int 3)
               [ assign ~work:4 [ write "T" [ (int 4 * var "i") + var "j" ] ] ];
           ]);
      phase "CONSUME"
        (doall "k" ~lo:(int 0) ~hi:((int 4 * n) - int 1)
           [ assign ~work:1 [ read "T" [ var "k" ] ] ]);
    ]

let () =
  let env = Env.of_list [ ("N", 32) ] in
  let h = 4 in
  Format.printf "=== Quickstart: locality analysis on %d processors ===@.@."
    h;

  (* 1. The whole pipeline in one call. *)
  let t = Core.Pipeline.run program ~env ~h in
  Format.printf "%a@.@." Core.Pipeline.report t;

  (* 2. Look inside: the phase descriptor of T in PRODUCE. *)
  let ctx = Ir.Phase.analyze program (List.hd program.phases) in
  let pd =
    Descriptor.Unionize.simplify (Descriptor.Pd.of_phase ctx ~array:"T")
  in
  Format.printf "=== PD of T in PRODUCE (coalesced + unioned) ===@.%a@.@."
    Descriptor.Pd.pp pd;

  (* 3. Simulate under the derived plan and under the naive baseline. *)
  let run = Core.Pipeline.simulate t in
  let base = Core.Pipeline.simulate_baseline t in
  Format.printf "=== Simulation ===@.LCG plan:   %a@.BLOCK plan: %a@."
    Dsmsim.Exec.pp run Dsmsim.Exec.pp base;
  Format.printf "Efficiency: %.1f%% (LCG) vs %.1f%% (BLOCK)@."
    (100. *. run.efficiency)
    (100. *. base.efficiency)
