(* Tests for the ILP layer: the exact simplex, branch & bound, the
   Table 2 model generated from the TFFT2 LCG, the enumeration solver,
   and distribution plans. *)

open Symbolic
open Ilp

let q = Qnum.of_int
let qq a b = Qnum.make a b

(* ------------------------------------------------------------------ *)
(* Simplex *)

let test_lp_basic () =
  (* max x + y  s.t. x + 2y <= 4; 3x + y <= 6  -> (8/5, 6/5), value 14/5 *)
  let p =
    {
      Lp.n_vars = 2;
      objective = [| q 1; q 1 |];
      constraints =
        [
          Lp.constr [| q 1; q 2 |] Lp.Le (q 4);
          Lp.constr [| q 3; q 1 |] Lp.Le (q 6);
        ];
    }
  in
  match Lp.solve p with
  | Lp.Optimal { value; point } ->
      Alcotest.(check bool) "value 14/5" true (Qnum.equal value (qq 14 5));
      Alcotest.(check bool) "x = 8/5" true (Qnum.equal point.(0) (qq 8 5));
      Alcotest.(check bool) "y = 6/5" true (Qnum.equal point.(1) (qq 6 5))
  | _ -> Alcotest.fail "expected optimal"

let test_lp_equality_and_ge () =
  (* max x  s.t. x + y = 10; x >= 2; y >= 3  ->  x = 7 *)
  let p =
    {
      Lp.n_vars = 2;
      objective = [| q 1; q 0 |];
      constraints =
        [
          Lp.constr [| q 1; q 1 |] Lp.Eq (q 10);
          Lp.constr [| q 1; q 0 |] Lp.Ge (q 2);
          Lp.constr [| q 0; q 1 |] Lp.Ge (q 3);
        ];
    }
  in
  match Lp.solve p with
  | Lp.Optimal { value; _ } ->
      Alcotest.(check bool) "x = 7" true (Qnum.equal value (q 7))
  | _ -> Alcotest.fail "expected optimal"

let test_lp_infeasible () =
  let p =
    {
      Lp.n_vars = 1;
      objective = [| q 1 |];
      constraints =
        [ Lp.constr [| q 1 |] Lp.Ge (q 5); Lp.constr [| q 1 |] Lp.Le (q 3) ];
    }
  in
  Alcotest.(check bool) "infeasible" true (Lp.solve p = Lp.Infeasible)

let test_lp_unbounded () =
  let p = { Lp.n_vars = 1; objective = [| q 1 |]; constraints = [] } in
  Alcotest.(check bool) "unbounded" true (Lp.solve p = Lp.Unbounded)

(* Brute-force check on random small LPs: simplex optimum dominates
   every lattice point. *)
let prop_lp_dominates_lattice =
  QCheck.Test.make ~name:"simplex dominates feasible lattice points" ~count:100
    QCheck.(
      triple
        (list_of_size (Gen.int_range 1 3)
           (triple (int_range (-4) 4) (int_range (-4) 4) (int_range 1 12)))
        (int_range (-3) 3) (int_range (-3) 3))
    (fun (rows, c1, c2) ->
      let p =
        {
          Lp.n_vars = 2;
          objective = [| q c1; q c2 |];
          constraints =
            List.map (fun (a, b, r) -> Lp.constr [| q a; q b |] Lp.Le (q r)) rows
            (* keep it bounded *)
            @ [
                Lp.constr [| q 1; q 0 |] Lp.Le (q 20);
                Lp.constr [| q 0; q 1 |] Lp.Le (q 20);
              ];
        }
      in
      match Lp.solve p with
      | Lp.Unbounded -> false
      | Lp.Infeasible ->
          (* no lattice point may be feasible either *)
          let feasible = ref false in
          for x = 0 to 20 do
            for y = 0 to 20 do
              if
                List.for_all
                  (fun (a, b, r) -> (a * x) + (b * y) <= r)
                  rows
              then feasible := true
            done
          done;
          not !feasible
      | Lp.Optimal { value; _ } ->
          let ok = ref true in
          for x = 0 to 20 do
            for y = 0 to 20 do
              if List.for_all (fun (a, b, r) -> (a * x) + (b * y) <= r) rows
              then
                if Qnum.compare (q ((c1 * x) + (c2 * y))) value > 0 then
                  ok := false
            done
          done;
          !ok)

(* ------------------------------------------------------------------ *)
(* Branch & bound *)

let test_ilp_knapsack () =
  (* max 5x + 4y s.t. 6x + 4y <= 24; x + 2y <= 6 -> LP opt fractional,
     integer opt x=4 y=0 value 20 *)
  let p =
    {
      Lp.n_vars = 2;
      objective = [| q 5; q 4 |];
      constraints =
        [
          Lp.constr [| q 6; q 4 |] Lp.Le (q 24);
          Lp.constr [| q 1; q 2 |] Lp.Le (q 6);
        ];
    }
  in
  match Ilp_solver.solve p with
  | Ilp_solver.Optimal { value; point } ->
      Alcotest.(check bool) "value 20" true (Qnum.equal value (q 20));
      Alcotest.(check (array int)) "point" [| 4; 0 |] point
  | _ -> Alcotest.fail "expected optimal"

(* Regression: the branch & bound used to [failwith "node budget
   exceeded"] when the search tree outgrew [max_nodes].  It now prunes
   instead, returning the best incumbent found (or [Infeasible] when
   none was) together with an exhaustion flag. *)
let test_ilp_budget () =
  let p =
    {
      Lp.n_vars = 2;
      objective = [| q 5; q 4 |];
      constraints =
        [
          Lp.constr [| q 6; q 4 |] Lp.Le (q 24);
          Lp.constr [| q 1; q 2 |] Lp.Le (q 6);
        ];
    }
  in
  (* a one-node budget cannot finish the knapsack search: no exception,
     a total outcome, and the flag raised *)
  (match Ilp_solver.solve_budgeted ~max_nodes:1 p with
  | outcome, exhausted ->
      Alcotest.(check bool) "budget reported exhausted" true exhausted;
      (match outcome with
      | Ilp_solver.Optimal { value; _ } ->
          (* whatever incumbent survived is feasible, so <= true optimum *)
          Alcotest.(check bool) "incumbent bounded by optimum" true
            (Qnum.compare value (q 20) <= 0)
      | Ilp_solver.Infeasible -> ()
      | Ilp_solver.Unbounded -> Alcotest.fail "unbounded under a finite box"));
  (* an ample budget reproduces the exact optimum with the flag down *)
  match Ilp_solver.solve_budgeted p with
  | Ilp_solver.Optimal { value; point }, exhausted ->
      Alcotest.(check bool) "no exhaustion" false exhausted;
      Alcotest.(check bool) "value 20" true (Qnum.equal value (q 20));
      Alcotest.(check (array int)) "point" [| 4; 0 |] point
  | _ -> Alcotest.fail "expected optimal"

let prop_ilp_matches_bruteforce =
  QCheck.Test.make ~name:"B&B = brute force on small ILPs" ~count:80
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 3)
           (triple (int_range 0 5) (int_range 0 5) (int_range 1 25)))
        (pair (int_range 0 4) (int_range 0 4)))
    (fun (rows, (c1, c2)) ->
      let rows = (1, 1, 15) :: rows (* bounded *) in
      let p =
        {
          Lp.n_vars = 2;
          objective = [| q c1; q c2 |];
          constraints =
            List.map (fun (a, b, r) -> Lp.constr [| q a; q b |] Lp.Le (q r)) rows;
        }
      in
      let brute = ref min_int in
      for x = 0 to 15 do
        for y = 0 to 15 do
          if List.for_all (fun (a, b, r) -> (a * x) + (b * y) <= r) rows then
            brute := max !brute ((c1 * x) + (c2 * y))
        done
      done;
      match Ilp_solver.solve p with
      | Ilp_solver.Optimal { value; _ } -> Qnum.equal value (q !brute)
      | Ilp_solver.Infeasible -> !brute = min_int
      | Ilp_solver.Unbounded -> false)

(* ------------------------------------------------------------------ *)
(* The Table 2 model from the TFFT2 LCG *)

let tfft2_model ~p ~q:qv ~h =
  let env = Codes.Tfft2.env ~p ~q:qv in
  let lcg = Locality.Lcg.build Codes.Tfft2.program ~env ~h in
  Model.of_lcg lcg

let test_model_table2 () =
  Probe.with_seed 40 (fun () ->
      let m = tfft2_model ~p:4 ~q:4 ~h:4 in
      (* Locality constraints: 5 for X (p3..p8 chain), 3 for Y. *)
      let for_array a =
        List.filter (fun (l : Model.locality) -> String.equal l.array a) m.locality
      in
      Alcotest.(check int) "X locality rows" 5 (List.length (for_array "X"));
      Alcotest.(check int) "Y locality rows" 3 (List.length (for_array "Y"));
      (* X chain relations, in order: p3=p4, P p4 = Q p5 (as 2P/2Q),
         p5=p6, p6=p7, 2Q p7 = p8. *)
      let x = for_array "X" in
      let rel k = List.nth x k in
      Alcotest.(check (pair int int)) "p3 = p4"
        ((rel 0).ai, (rel 0).bi)
        (32, 32);
      Alcotest.(check (pair int int)) "P p4 = Q p5" (32, 32) ((rel 1).ai, (rel 1).bi);
      Alcotest.(check (pair int int)) "2Q p7 = p8" (32, 1) ((rel 4).ai, (rel 4).bi);
      List.iter
        (fun (l : Model.locality) ->
          Alcotest.(check int) "homogeneous" 0 l.ci)
        x;
      (* Load-balance bounds: ceil(n/H). *)
      List.iter
        (fun (b : Model.bound) ->
          Alcotest.(check bool) "bound positive" true (b.hi >= 1))
        m.bounds;
      (* Storage: X F8 carries Delta_d = PQ and two Delta_r/2 rows. *)
      let sx =
        List.filter (fun (s : Model.storage) -> String.equal s.array "X") m.storage
      in
      Alcotest.(check int) "X storage rows" 3 (List.length sx);
      let limits = List.sort compare (List.map (fun (s : Model.storage) -> s.limit) sx) in
      Alcotest.(check (list int)) "limits PQ/2, PQ, PQ" [ 128; 256; 256 ] limits)

let test_model_lp_relaxation () =
  Probe.with_seed 41 (fun () ->
      let m = tfft2_model ~p:4 ~q:4 ~h:4 in
      (* Maximize p[F3] under the constraints: the chain and the F8
         storage rows cap it. *)
      let obj = Array.make m.n_phases Qnum.zero in
      obj.(2) <- Qnum.one;
      let lp = Model.to_lp m ~objective:obj in
      match Ilp_solver.solve lp with
      | Ilp_solver.Optimal { value; point } ->
          (* p3 = p4; 2P p4 = 2Q p5 => p5 = p3; p8 = 2Q p7 = 32 p3 and
             p8 <= min(bound 64, storage 128/4 = 32) => p3 = 1. *)
          Alcotest.(check bool) "max p3 = 1" true (Qnum.equal value (Qnum.of_int 1));
          Alcotest.(check int) "p8 = 32" 32 point.(7)
      | _ -> Alcotest.fail "expected optimal")

(* ------------------------------------------------------------------ *)
(* Enumeration solver + distribution *)

let test_solve_tfft2 () =
  Probe.with_seed 42 (fun () ->
      let env = Codes.Tfft2.env ~p:4 ~q:4 in
      let lcg = Locality.Lcg.build Codes.Tfft2.program ~env ~h:4 in
      let model = Model.of_lcg lcg in
      let r = Solve.solve model (Cost.default_machine ~h:4) in
      Alcotest.(check int) "no broken rows" 0 (List.length r.broken);
      (* chain: p3..p7 = t, p8 = 32 t; storage caps p8 at 32 => t = 1 *)
      Alcotest.(check int) "p3" 1 r.p.(2);
      Alcotest.(check int) "p8" 32 r.p.(7);
      (* affinity/locality: p1 = Q p2 *)
      Alcotest.(check int) "p1 = Q p2" (16 * r.p.(1)) r.p.(0))

let test_max_chunk_load () =
  Alcotest.(check int) "even" 25 (Cost.max_chunk_load ~n:100 ~p:25 ~h:4);
  Alcotest.(check int) "cyclic 1" 25 (Cost.max_chunk_load ~n:100 ~p:1 ~h:4);
  (* n=100 p=16 h=4: one full round of 64 (16 per proc) + remainder 36,
     of which proc 0 takes a full chunk of 16: 16 + 16 = 32. *)
  Alcotest.(check int) "remainder" 32 (Cost.max_chunk_load ~n:100 ~p:16 ~h:4);
  Alcotest.(check int) "partial tail" 25
    (Cost.max_chunk_load ~n:99 ~p:25 ~h:4)

let test_distribution_plan () =
  Probe.with_seed 43 (fun () ->
      let env = Codes.Tfft2.env ~p:4 ~q:4 in
      let lcg = Locality.Lcg.build Codes.Tfft2.program ~env ~h:4 in
      let model = Model.of_lcg lcg in
      let r = Solve.solve model (Cost.default_machine ~h:4) in
      let plan = Distribution.of_solution lcg ~p:r.p in
      (* X: three epochs (F1 | F2 | F3..F8). *)
      let x_layouts =
        List.filter (fun (l : Distribution.layout) -> l.array = "X") plan.layouts
      in
      Alcotest.(check int) "three X epochs" 3 (List.length x_layouts);
      (* the F3..F8 epoch spans phases 2..7 with block 2P*p3 = 32 *)
      let main =
        List.find (fun (l : Distribution.layout) -> l.first_phase = 2) x_layouts
      in
      Alcotest.(check int) "block" 32 main.block;
      Alcotest.(check int) "last phase" 7 main.last_phase;
      (* proc_of is a total function over the array *)
      for a = 0 to 511 do
        let p = Distribution.proc_of plan main ~addr:a in
        Alcotest.(check bool) "proc in range" true (p >= 0 && p < 4)
      done)

let test_block_plan () =
  Probe.with_seed 44 (fun () ->
      let env = Codes.Jacobi.env ~n:16 in
      let lcg = Locality.Lcg.build Codes.Jacobi.program ~env ~h:4 in
      let plan = Distribution.block_plan lcg in
      Alcotest.(check int) "one layout per array" 2 (List.length plan.layouts);
      List.iter
        (fun (l : Distribution.layout) ->
          Alcotest.(check int) "block = size/h" 64 l.block;
          Alcotest.(check int) "halo 0" 0 l.halo)
        plan.layouts)

(* The reverse distribution: a phase sweeping symmetric pairs gets a
   mirrored layout that serves both ends locally. *)
let test_mirror_distribution () =
  Probe.with_seed 45 (fun () ->
      let v = Expr.var and i = Expr.int in
      let prog =
        Ir.Build.program ~name:"sym"
          ~params:(Symbolic.Assume.of_list [ ("N", Symbolic.Assume.Int_range (16, 64)) ])
          ~arrays:[ Ir.Build.array "A" [ Expr.mul (i 2) (v "N") ] ]
          [
            Ir.Build.phase "P1"
              (Ir.Build.doall "m" ~lo:(i 0) ~hi:(Expr.sub (v "N") Expr.one)
                 [
                   Ir.Build.assign
                     [
                       Ir.Build.write "A" [ v "m" ];
                       Ir.Build.write "A"
                         [ Expr.sub (Expr.mul (i 2) (v "N")) (Expr.add (v "m") Expr.one) ];
                     ];
                 ]);
          ]
      in
      let env = Symbolic.Env.of_list [ ("N", 32) ] in
      let t = Core.Pipeline.run prog ~env ~h:4 in
      let layout =
        List.find
          (fun (l : Distribution.layout) -> l.array = "A")
          t.plan.layouts
      in
      Alcotest.(check bool) "mirror layout chosen" true (layout.mirror <> None);
      let r = Core.Pipeline.simulate t in
      Alcotest.(check int) "fully local under the fold" 0 r.total_remote)

(* Stencil layout alignment: the chain anchor lands on the core
   (written) column, not the lowest ghost read, and the halo is fitted
   to the actual stray. *)
let test_stencil_base_alignment () =
  Probe.with_seed 46 (fun () ->
      let e = Codes.Registry.find "jacobi2d" in
      let n = 64 in
      let t =
        Core.Pipeline.run e.program ~env:(Codes.Jacobi.env ~n) ~h:4
      in
      let u =
        List.find
          (fun (l : Distribution.layout) -> l.array = "U")
          t.plan.layouts
      in
      (* tau_min of U's reads is 1 (ghost column); the core column
         starts one parallel stride higher *)
      Alcotest.(check int) "base = tau + delta" (1 + n) u.base;
      Alcotest.(check bool) "halo fitted to ~N" true
        (u.halo > 0 && u.halo <= n);
      let r = Core.Pipeline.simulate t in
      Alcotest.(check int) "all local" 0 r.total_remote)

let () =
  Alcotest.run "ilp"
    [
      ( "lp",
        [
          Alcotest.test_case "basic" `Quick test_lp_basic;
          Alcotest.test_case "eq and ge" `Quick test_lp_equality_and_ge;
          Alcotest.test_case "infeasible" `Quick test_lp_infeasible;
          Alcotest.test_case "unbounded" `Quick test_lp_unbounded;
          QCheck_alcotest.to_alcotest prop_lp_dominates_lattice;
        ] );
      ( "bb",
        [
          Alcotest.test_case "knapsack" `Quick test_ilp_knapsack;
          Alcotest.test_case "node budget total" `Quick test_ilp_budget;
          QCheck_alcotest.to_alcotest prop_ilp_matches_bruteforce;
        ] );
      ( "model",
        [
          Alcotest.test_case "table 2" `Quick test_model_table2;
          Alcotest.test_case "lp relaxation" `Quick test_model_lp_relaxation;
        ] );
      ( "solve",
        [
          Alcotest.test_case "tfft2" `Quick test_solve_tfft2;
          Alcotest.test_case "max chunk load" `Quick test_max_chunk_load;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "tfft2 plan" `Quick test_distribution_plan;
          Alcotest.test_case "block baseline" `Quick test_block_plan;
          Alcotest.test_case "reverse distribution" `Quick
            test_mirror_distribution;
          Alcotest.test_case "stencil base alignment" `Quick
            test_stencil_base_alignment;
        ] );
    ]
