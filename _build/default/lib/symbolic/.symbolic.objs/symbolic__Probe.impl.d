lib/symbolic/probe.ml: Assume Env Expr Fun Hashtbl Qnum Random String
