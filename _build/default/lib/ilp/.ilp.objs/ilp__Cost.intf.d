lib/ilp/cost.mli:
