lib/ir/inline.mli: Assume Expr Symbolic Types
