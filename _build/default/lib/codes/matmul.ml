open Symbolic
open Ir.Build

let params = Assume.of_list [ ("N", Assume.Int_range (4, 24)) ]

let nN = var "N"
let at r c = (r + (nN * c) : Expr.t)

(* Parallel over columns j of C: C(:,j) = A * B(:,j). *)
let phase_init =
  phase "INIT"
    (doall "j" ~lo:(int 0) ~hi:(nN - int 1)
       [
         do_ "i" ~lo:(int 0) ~hi:(nN - int 1)
           [ assign ~work:1 [ write "C" [ at (var "i") (var "j") ] ] ];
       ])

let phase_mult =
  phase "MULT"
    (doall "j" ~lo:(int 0) ~hi:(nN - int 1)
       [
         do_ "k" ~lo:(int 0) ~hi:(nN - int 1)
           [
             do_ "i" ~lo:(int 0) ~hi:(nN - int 1)
               [
                 assign ~work:2
                   [
                     read "A" [ at (var "i") (var "k") ];
                     read "B" [ at (var "k") (var "j") ];
                     read "C" [ at (var "i") (var "j") ];
                     write "C" [ at (var "i") (var "j") ];
                   ];
               ];
           ];
       ])

let phase_scale =
  phase "SCALE"
    (doall "j" ~lo:(int 0) ~hi:(nN - int 1)
       [
         do_ "i" ~lo:(int 0) ~hi:(nN - int 1)
           [
             assign ~work:1
               [
                 read "C" [ at (var "i") (var "j") ];
                 write "C" [ at (var "i") (var "j") ];
               ];
           ];
       ])

let program =
  program ~name:"matmul" ~params
    ~arrays:
      [ array "A" [ nN * nN ]; array "B" [ nN * nN ]; array "C" [ nN * nN ] ]
    [ phase_init; phase_mult; phase_scale ]

let env ~n = Env.of_list [ ("N", n) ]
