(** Parser for the surface language: a Fortran-flavoured mini dialect
    for writing analyzable programs in text form.

    {v
    program tfft2_f3
    param p = 2..6
    param q = 1..5
    pow2 P = p
    pow2 Q = q
    real X(2*P*Q)

    phase F3:
      doall I = 0, Q-1
        do L = 1, p
          do J = 0, P * 2^(0-L) - 1
            do K = 0, 2^(L-1) - 1
              X(2*P*I + 2^(L-1)*J + K) =
                X(2*P*I + 2^(L-1)*J + K) + X(2*P*I + 2^(L-1)*J + K + P/2) work 8
            end
          end
        end
      end
    v}

    - [param x = lo..hi] declares a free integer parameter;
      [pow2 X = x] declares X = 2^x (the paper's input constraints).
    - [real A(e1, e2, ...)] declares an array with symbolic extents.
    - [phase NAME:] introduces one loop nest; [doall] marks the (single)
      parallel loop.  Loop syntax: [do I = lo, hi [step s]] ... [end].
    - A statement [A(e) = rhs [work N]] writes its left-hand reference
      and reads every array reference in [rhs]; [work] sets the
      abstract per-execution cost (default 1).  A bare reference line
      [A(e)] is a read-only sink.
    - [sub NAME(A(dims), ...)] ... [endsub] declares a subroutine over
      dummy arrays; [call NAME(G, G2(offset))] splices its phases with
      each formal rebound to the actual array section (Fortran
      storage-sequence association, flat 0-based offsets) - the
      inter-procedural reshaping path of {!Ir.Inline}.
    - [repeat] (after the phases) marks the program as enclosed in a
      timestep loop.
    - [!] and [#] start comments; [**] and [^] both mean power (base 2
      or constant exponents only). *)

exception Error of { line : int; message : string }

val program : string -> Ir.Types.program
(** Parse a full program from source text.  Total over hostile input:
    {e every} failure - lexer errors, oversized integer literals,
    pathological nesting (bounded expression depth plus a
    [Stack_overflow] net) - surfaces as a positioned {!Error}; no
    other exception escapes.  @raise Error *)

val program_file : string -> Ir.Types.program
(** Parse from a file path. @raise Error and [Sys_error]. *)
