open Symbolic

(* Remove element [i] from a list. *)
let drop i l = List.filteri (fun k _ -> k <> i) l

(* Replace element [j]. *)
let set j x l = List.mapi (fun k y -> if k = j then x else y) l

let is_seq (g : Pd.group) i = g.par <> Some i

let remove_dim (g : Pd.group) i ~(update_row : Pd.row -> Pd.row) : Pd.group =
  let par =
    match g.par with
    | Some p when p > i -> Some (p - 1)
    | p -> p
  in
  {
    dims = drop i g.dims;
    par;
    rows =
      List.map
        (fun r ->
          let r = update_row r in
          { r with Pd.alphas = drop i r.Pd.alphas; signs = drop i r.signs })
        g.rows;
  }

(* Rule: contiguous / overlap merge of dim i into dim j. *)
let try_merge asm (g : Pd.group) i j : Pd.group option =
  if i = j || not (is_seq g i && is_seq g j) then None
  else
    let di = List.nth g.dims i and dj = List.nth g.dims j in
    let contiguous =
      List.for_all
        (fun (r : Pd.row) ->
          Probe.equal asm di.stride (Expr.mul (List.nth r.alphas j) dj.stride))
        g.rows
    in
    if contiguous then
      let update (r : Pd.row) =
        let aj = Expr.mul (List.nth r.alphas i) (List.nth r.alphas j) in
        { r with Pd.alphas = set j aj r.Pd.alphas }
      in
      let g = remove_dim g i ~update_row:update in
      let j' = if j > i then j - 1 else j in
      let dims =
        set j'
          {
            (List.nth g.dims j') with
            Pd.vars = dj.vars @ di.vars;
            uniform = di.uniform && dj.uniform;
          }
          g.dims
      in
      Some { g with dims }
    else
      (* Overlap: delta_i = c * delta_j with constant 1 <= c <= alpha_j. *)
      match Expr.to_int (Expr.div di.stride dj.stride) with
      | Some c when c >= 1 ->
          let fits =
            List.for_all
              (fun (r : Pd.row) -> Probe.le asm (Expr.int c) (List.nth r.alphas j))
              g.rows
          in
          if not fits then None
          else
            let update (r : Pd.row) =
              let ai = List.nth r.alphas i and aj = List.nth r.alphas j in
              let aj' =
                Expr.add (Expr.mul (Expr.sub ai Expr.one) (Expr.int c)) aj
              in
              { r with Pd.alphas = set j aj' r.Pd.alphas }
            in
            let g = remove_dim g i ~update_row:update in
            let j' = if j > i then j - 1 else j in
            let dims =
              set j'
                {
                  (List.nth g.dims j') with
                  Pd.vars = dj.vars @ di.vars;
                  uniform = di.uniform && dj.uniform;
                }
                g.dims
            in
            Some { g with dims }
      | _ -> None

(* Dense-contiguity of the remaining sequential dims of a row: sorted by
   stride, each coarser stride equals the finer stride times the finer
   count. *)
let row_contiguous asm (g : Pd.group) ~without (r : Pd.row) =
  let dims =
    Pd.seq_dims g |> List.filter (fun (i, _) -> i <> without)
  in
  let dims =
    List.sort
      (fun (_, (a : Pd.dim)) (_, (b : Pd.dim)) ->
        if Expr.equal a.stride b.stride then 0
        else if Probe.le asm a.stride b.stride then -1
        else 1)
      dims
  in
  let rec walk = function
    | (i1, (d1 : Pd.dim)) :: ((_, (d2 : Pd.dim)) :: _ as rest) ->
        Probe.equal asm d2.stride
          (Expr.mul d1.stride (List.nth r.alphas i1))
        && walk rest
    | _ -> true
  in
  walk dims

(* Rule: subsumption deletion of dim i - sound when the reach of every
   source subscript over the sequential indices is unchanged once dim
   i's indices are pinned at their lower bound (0 after loop
   normalization), and dim i's stride lands on the dense grid formed by
   the remaining dims. *)
let try_delete (ctx : Ir.Phase.t) (g : Pd.group) i : Pd.group option =
  let asm = ctx.assume in
  if not (is_seq g i) then None
  else
    let di = List.nth g.dims i in
    let rest = Pd.seq_dims g |> List.filter (fun (k, _) -> k <> i) in
    if rest = [] then None
    else
      let finest =
        match rest with
        | [] -> None
        | (k0, d0) :: tl ->
            Some
              (List.fold_left
                 (fun (bk, (bd : Pd.dim)) (k, (d : Pd.dim)) ->
                   if Probe.le asm d.stride bd.stride then (k, d) else (bk, bd))
                 (k0, d0) tl)
      in
      match finest with
      | None -> None
      | Some (_, fine) ->
          let grid_ok = Probe.divides asm fine.stride di.stride in
          let contiguous =
            List.for_all (row_contiguous asm g ~without:i) g.rows
          in
          if not (grid_ok && contiguous) then None
          else
            let seq_vars =
              List.concat_map (fun (_, (d : Pd.dim)) -> d.vars) (Pd.seq_dims g)
            in
            (* Pin dim i's loop indices at their lower bound 0 by
               collapsing their domains - other loops' bounds may
               reference them, so substituting into phi alone is not
               enough. *)
            let asm_pinned =
              List.fold_left
                (fun a v -> Assume.set_domain a v (Assume.Expr_range (Expr.zero, Expr.zero)))
                asm di.vars
            in
            let reach_preserved phi =
              let same extract =
                match
                  ( extract asm ~over:seq_vars phi,
                    extract asm_pinned ~over:seq_vars phi )
                with
                | Some a, Some b -> Probe.equal asm a b
                | _ -> false
              in
              same Range.maximize && same Range.minimize
            in
            let ok =
              List.for_all
                (fun (r : Pd.row) -> List.for_all reach_preserved r.phis)
                g.rows
            in
            if ok then Some (remove_dim g i ~update_row:Fun.id) else None

let group (ctx : Ir.Phase.t) (g : Pd.group) : Pd.group =
  let asm = ctx.assume in
  let rec fixpoint g =
    let n = List.length g.Pd.dims in
    let step =
      let found = ref None in
      (* Try merges first (they keep more structure), then deletions. *)
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if !found = None then found := try_merge asm g i j
        done
      done;
      for i = 0 to n - 1 do
        if !found = None then found := try_delete ctx g i
      done;
      !found
    in
    match step with Some g' -> fixpoint g' | None -> g
  in
  fixpoint g

let pd_timer = Metrics.timer "descriptor.coalesce"

let pd (t : Pd.t) : Pd.t =
  Metrics.with_timer pd_timer (fun () ->
      { t with groups = List.map (group t.ctx) t.groups })
