lib/codes/tfft2.ml: Assume Build Env Ir Symbolic
