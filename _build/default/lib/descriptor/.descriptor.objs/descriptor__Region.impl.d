lib/descriptor/region.ml: Env Expr Hashtbl List Pd Symbolic
