lib/core/report.ml: Buffer Chain Dsmsim Format Ilp Lcg List Locality Pipeline Printf String Symbolic
