type severity = Info | Warning | Error

type stage =
  | Frontend
  | Descriptors
  | Lcg
  | Model
  | Solve
  | Plan
  | Comm
  | Exec
  | Validation

type t = {
  severity : severity;
  stage : stage;
  code : string;
  message : string;
}

exception Too_many_errors of int

type collector = {
  mutable items : t list;  (** reverse order *)
  mutable n_errors : int;
  max_errors : int option;
}

let collector ?max_errors () = { items = []; n_errors = 0; max_errors }

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let stage_to_string = function
  | Frontend -> "frontend"
  | Descriptors -> "descriptors"
  | Lcg -> "lcg"
  | Model -> "model"
  | Solve -> "solve"
  | Plan -> "plan"
  | Comm -> "comm"
  | Exec -> "exec"
  | Validation -> "validation"

let add c ~severity ~stage ~code message =
  (* the diagnostic that would exceed the cap is not recorded *)
  (if severity = Error then
     match c.max_errors with
     | Some cap when c.n_errors >= cap -> raise (Too_many_errors cap)
     | _ -> ());
  c.items <- { severity; stage; code; message } :: c.items;
  if severity = Error then c.n_errors <- c.n_errors + 1

let addf c ~severity ~stage ~code fmt =
  Printf.ksprintf (add c ~severity ~stage ~code) fmt

let to_list c = List.rev c.items
let count c = List.length c.items
let errors c = c.n_errors
let has_errors c = c.n_errors > 0

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

let max_severity c =
  List.fold_left
    (fun acc d ->
      match acc with
      | Some s when severity_rank s >= severity_rank d.severity -> acc
      | _ -> Some d.severity)
    None c.items

let pp ppf d =
  Format.fprintf ppf "[%s] %s %s: %s"
    (severity_to_string d.severity)
    (stage_to_string d.stage) d.code d.message

let pp_table ppf = function
  | [] -> ()
  | ds ->
      let w_sev, w_stage, w_code =
        List.fold_left
          (fun (a, b, c) d ->
            ( max a (String.length (severity_to_string d.severity)),
              max b (String.length (stage_to_string d.stage)),
              max c (String.length d.code) ))
          (0, 0, 0) ds
      in
      Format.fprintf ppf "@[<v>";
      List.iter
        (fun d ->
          Format.fprintf ppf "%-*s  %-*s  %-*s  %s@," w_sev
            (severity_to_string d.severity)
            w_stage (stage_to_string d.stage) w_code d.code d.message)
        ds;
      Format.fprintf ppf "@]"
