type domain =
  | Int_range of int * int
  | Pow2_of of string
  | Expr_range of Expr.t * Expr.t

type t = (string * domain) list

let empty = []
let add t v d = t @ [ (v, d) ]
let of_list l = l
let to_list t = t
let vars t = List.map fst t
let domain_of t v = List.assoc_opt v t

let domain_key = function
  | Int_range (lo, hi) -> Artifact.Key.(list [ int 0; int lo; int hi ])
  | Pow2_of w -> Artifact.Key.(list [ int 1; str w ])
  | Expr_range (lo, hi) -> Artifact.Key.(list [ int 2; expr lo; expr hi ])

let key t =
  Artifact.Key.list
    (List.map
       (fun (v, d) -> Artifact.Key.(list [ str v; domain_key d ]))
       t)

let set_domain t v d =
  if List.mem_assoc v t then
    List.map (fun (w, old) -> if String.equal w v then (w, d) else (w, old)) t
  else t @ [ (v, d) ]

let range_in_env t env v =
  match List.assoc_opt v t with
  | None -> None
  | Some (Int_range (lo, hi)) -> Some (lo, hi)
  | Some (Pow2_of w) ->
      let e = 1 lsl Env.find env w in
      Some (e, e)
  | Some (Expr_range (lo, hi)) -> Some (Env.eval env lo, Env.eval env hi)

let sample ?state t =
  let st = match state with Some s -> s | None -> Random.State.make_self_init () in
  let pick lo hi = if hi <= lo then lo else lo + Random.State.int st (hi - lo + 1) in
  List.fold_left
    (fun env (v, d) ->
      let value =
        match d with
        | Int_range (lo, hi) -> pick lo hi
        | Pow2_of w -> 1 lsl Env.find env w
        | Expr_range (lo, hi) -> pick (Env.eval env lo) (Env.eval env hi)
      in
      Env.add v value env)
    (Env.ephemeral Env.empty) t

let pp_domain ppf = function
  | Int_range (lo, hi) -> Format.fprintf ppf "[%d..%d]" lo hi
  | Pow2_of v -> Format.fprintf ppf "2^%s" v
  | Expr_range (lo, hi) -> Format.fprintf ppf "[%a..%a]" Expr.pp lo Expr.pp hi

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
    (fun ppf (v, d) -> Format.fprintf ppf "%s in %a" v pp_domain d)
    ppf t
