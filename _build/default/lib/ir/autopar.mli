(** Automatic parallel-loop detection: the Polaris stand-in.

    The paper assumes an auto-parallelizer has already marked one
    parallel loop per phase.  This module provides that step for
    programs written without markings: for each phase it finds the
    outermost loop whose iterations carry no dependence and marks it
    [parallel] (clearing any deeper marking, preserving the at-most-one
    phase invariant).

    The dependence test is dynamic and exact per sample, in the spirit
    of this repo's oracle-first approach: under each sampled parameter
    environment the loop's iterations are executed abstractly and their
    access sets intersected - a loop is independent iff no address
    written by one iteration is touched by another.  Sampling makes the
    verdict probabilistic in the same sense as {!Symbolic.Probe}; a
    loop is only marked when every sample agrees, so false positives
    require an access pattern that changes shape between samples.

    Per-iteration scratch (an address always written before read within
    the same iteration, and dead after the loop) does {e not} block
    parallelization - that is privatization, handled downstream by
    {!Liveness}. *)

open Symbolic
open Types

val independent :
  program -> Env.t -> phase -> loop_path:int list -> bool
(** Is the loop reached by descending [loop_path] (child indices from
    the nest root, [] = the root loop) free of loop-carried
    dependences under [env]? *)

val mark_phase : ?envs:Env.t list -> program -> phase -> phase
(** Re-mark the phase: outermost independent loop becomes the parallel
    one; all other markings are cleared.  [envs] defaults to 3 samples
    of the program's parameter domains. *)

val mark : ?envs:Env.t list -> program -> program
(** [mark_phase] over every phase. *)

val recognize_reductions : ?envs:Env.t list -> program -> program
(** Reduction privatization, the transformation Polaris applies before
    marking: a phase whose outermost loop is blocked {e only} by a
    scalar accumulator ([... S(c) ... = ... S(c) ...] with a
    loop-invariant subscript) is split into a parallel partial-
    accumulation phase over a fresh [__red_S] array (one slot per
    iteration) and a short sequential combine phase folding the slots
    back into [S(c)].  Phases where the pattern does not apply are left
    untouched; run {!mark} afterwards to parallelize the result. *)
