open Symbolic
open Types

type par_shape = Outside | Strided of int | Fixed of int

type site = {
  array : string;
  access : access;
  work : int;
  base : int;
  par : par_shape;
  seq : (int * int) list;
}

type t = { par_n : int; sites : site list }

exception Out_of_fragment

(* Partial-evaluation budget: total bad-loop iterations expanded per
   phase.  Registry kernels at seed sizes need a few dozen (tfft2's
   outer stage loop, trisolve's triangular parallel loop); the budget
   exists so a size=2^30 triangular nest degrades to [None] instead of
   hanging. *)
let expand_budget = 8192

(* The set of loop variables that must be enumerated concretely: those
   appearing in loop bounds, in non-affine subscript positions, or in
   another variable's subscript coefficient.  Computed as a fixpoint
   over the phase's loops and sites. *)
let bad_vars (pc : Phase.t) =
  let loopvars = List.map (fun (l : Phase.loop_info) -> l.var) pc.loops in
  let is_loopvar v = List.mem v loopvars in
  let bad = Hashtbl.create 8 in
  let add v = if not (Hashtbl.mem bad v) then Hashtbl.add bad v () in
  let changed = ref true in
  while !changed do
    changed := false;
    let n0 = Hashtbl.length bad in
    List.iter
      (fun (l : Phase.loop_info) ->
        List.iter (fun v -> if is_loopvar v then add v) (Expr.vars l.hi))
      pc.loops;
    List.iter
      (fun (s : Phase.site) ->
        List.iter
          (fun v ->
            if not (Hashtbl.mem bad v) then
              match Expr.linear_in v s.phi with
              | None -> add v
              | Some (a, _) ->
                  List.iter (fun w -> if is_loopvar w then add w) (Expr.vars a))
          s.enclosing)
      pc.sites;
    if Hashtbl.length bad <> n0 then changed := true
  done;
  bad

let cache : t option Artifact.store = Artifact.store ~capacity:512 "shape.sites"

let of_phase_raw (prog : program) (env : Env.t) (ph : phase) : t option =
  match Phase.analyze prog ph with
  | exception Phase.Invalid_phase _ -> None
  | pc -> (
      let bad = bad_vars pc in
      try
        let env0 = Env.ephemeral env in
        let budget = ref expand_budget in
        let sites = ref [] in
        (* Good loop vars are bound to 0 on entry, so evaluating φ
           directly gives the base address (parallel iteration 0, all
           sequential indices 0), and coefficient expressions - which
           the fixpoint guarantees contain only bad vars and
           parameters - evaluate as well.  [goods]: (var, count) of
           enclosing good sequential loops, outermost first; [par]:
           the site's parallel-iteration shape so far. *)
        let rec walk env goods par = function
          | Assign a ->
              List.iteri
                (fun k (r : array_ref) ->
                  let decl = array_decl prog r.array in
                  let phi = Linearize.address ~dims:decl.dims r.index in
                  let coef v =
                    match Expr.linear_in v phi with
                    | Some (c, _) -> Env.eval env c
                    | None -> raise Out_of_fragment
                  in
                  let par =
                    match par with
                    | `No -> Outside
                    | `Var v -> Strided (coef v)
                    | `At i -> Fixed i
                  in
                  let base = Env.eval env phi in
                  let seq = List.map (fun (v, c) -> (c, coef v)) goods in
                  sites :=
                    {
                      array = r.array;
                      access = r.access;
                      work = (if k = 0 then a.work else 0);
                      base;
                      par;
                      seq;
                    }
                    :: !sites)
                a.refs
          | Loop l ->
              let hi = Env.eval env l.hi in
              if hi >= 0 then
                if Hashtbl.mem bad l.var then
                  for v = 0 to hi do
                    decr budget;
                    if !budget < 0 then raise Out_of_fragment;
                    let par = if l.parallel then `At v else par in
                    List.iter (walk (Env.add l.var v env) goods par) l.body
                  done
                else begin
                  let par = if l.parallel then `Var l.var else par in
                  let goods =
                    if l.parallel then goods else goods @ [ (l.var, hi + 1) ]
                  in
                  List.iter (walk (Env.add l.var 0 env) goods par) l.body
                end
        in
        walk env0 [] `No (Loop pc.phase.nest);
        let par_n =
          match pc.par with
          | Some l -> max 0 (Env.eval env0 l.hi + 1)
          | None -> 1
        in
        Some { par_n; sites = List.rev !sites }
      with
      | Out_of_fragment | Env.Unbound _ | Expr.Non_integral _
      | Division_by_zero | Qnum.Division_by_zero ->
        None)

let of_phase prog env ph =
  Artifact.find cache
    Artifact.Key.(list [ Types.phase_context_key prog ph; int (Env.id env) ])
    (fun () -> of_phase_raw prog env ph)

let events (s : site) =
  List.fold_left (fun acc (c, _) -> Lattice.Safe.mul_sat acc c) 1 s.seq

let occurrences (t : t) (s : site) =
  match s.par with Strided _ -> t.par_n | Outside | Fixed _ -> 1

let emits (t : t) (s : site) =
  events s > 0
  && match s.par with Strided _ -> t.par_n > 0 | Outside | Fixed _ -> true

let box (t : t) (s : site) =
  let dims =
    match s.par with
    | Outside | Fixed _ -> s.seq
    | Strided st -> (t.par_n, st) :: s.seq
  in
  Lattice.make ~base:s.base dims

let total_work (t : t) =
  List.fold_left
    (fun acc s ->
      if s.work = 0 then acc
      else
        let per_iter = Lattice.Safe.mul_sat s.work (events s) in
        Lattice.Safe.add_sat acc
          (Lattice.Safe.mul_sat (occurrences t s) per_iter))
    0 t.sites
