open Symbolic
open Ir.Build

let params = Assume.of_list [ ("N", Assume.Int_range (6, 24)) ]

let nN = var "N"
let at r c = (r + (nN * c) : Expr.t)

(* forward substitution structure: column j depends on rows 0..j *)
let phase_solve =
  phase "SOLVE"
    (doall "j" ~lo:(int 0) ~hi:(nN - int 1)
       [
         do_ "r" ~lo:(int 0) ~hi:(var "j")
           [
             assign ~work:4
               [
                 read "L" [ at (var "r") (var "j") ];
                 read "X" [ var "r" ];
                 write "Y" [ at (var "r") (var "j") ];
               ];
           ];
       ])

(* consume the triangular result column-wise *)
let phase_reduce =
  phase "REDUCE"
    (doall "j" ~lo:(int 0) ~hi:(nN - int 1)
       [
         do_ "r" ~lo:(int 0) ~hi:(var "j")
           [ assign ~work:1 [ read "Y" [ at (var "r") (var "j") ] ] ];
       ])

let program =
  program ~name:"trisolve" ~params
    ~arrays:
      [ array "L" [ nN * nN ]; array "X" [ nN ]; array "Y" [ nN * nN ] ]
    [ phase_solve; phase_reduce ]

let env ~n = Env.of_list [ ("N", n) ]
