(* The full compiler, end to end, from text.

   Takes an UNMARKED surface-language program (no doall annotations),
   and runs every stage this repository implements:

     parse -> auto-parallelize (the Polaris stand-in) -> descriptors ->
     LCG -> Table-2 model -> distribution plan -> SPMD code generation
     -> communication schedule -> simulation -> dataflow validation.

     dune exec examples/full_compiler.exe
*)

let source =
  {|! unmarked 2-phase relaxation: the compiler finds the parallel loops
program relax
param N = 8..64
real U(N*N)
real V(N*N)

phase SWEEP:
  do c = 1, N-2
    do r = 1, N-2
      V(r + N*c) = U(r + N*(c-1)) + U(r + N*(c+1)) + U(r + N*c) work 4
    end
  end

phase COPY:
  do c = 1, N-2
    do r = 1, N-2
      U(r + N*c) = V(r + N*c)
    end
  end

repeat
|}

let () =
  Format.printf "=== 1. Parse ===@.";
  let prog = Frontend.Parse.program source in
  Format.printf "parsed %S: %d phases, %d arrays@.@." prog.prog_name
    (List.length prog.phases)
    (List.length prog.arrays);

  Format.printf "=== 2. Auto-parallelize ===@.";
  let prog = Ir.Autopar.mark prog in
  List.iter
    (fun ph ->
      let ctx = Ir.Phase.analyze prog ph in
      Format.printf "%s: parallel loop = %s@." ph.Ir.Types.phase_name
        (match ctx.par with
        | Some l -> l.var
        | None -> "(none)"))
    prog.phases;
  Format.printf "@.";

  let env = Symbolic.Env.of_list [ ("N", 32) ] in
  let h = 4 in

  Format.printf "=== 3-5. Descriptors, LCG, model, plan ===@.";
  let t = Core.Pipeline.run prog ~env ~h in
  Format.printf "%a@.@." Core.Pipeline.report t;

  Format.printf "=== 6. Generated SPMD code ===@.";
  print_string (Codegen.Spmd.generate t.lcg t.plan t.machine);

  Format.printf "@.=== 7. Communication schedule ===@.";
  let sched = Dsmsim.Comm.generate t.lcg t.plan in
  Format.printf "%a@." Dsmsim.Comm.pp sched;

  Format.printf "=== 8. Simulation ===@.";
  let run = Core.Pipeline.simulate t in
  let base = Core.Pipeline.simulate_baseline t in
  Format.printf "LCG plan %.1f%%, BLOCK baseline %.1f%%@.@."
    (100. *. run.efficiency)
    (100. *. base.efficiency);
  Array.iteri
    (fun p (s : Dsmsim.Exec.proc_stats) ->
      Format.printf "  PE %d: compute %.0f cycles, memory %.0f cycles@." p
        s.compute_time s.access_time)
    run.per_proc;

  Format.printf "@.=== 9. Dataflow validation ===@.";
  let v = Dsmsim.Validate.run ~rounds:2 t.lcg t.plan in
  Format.printf "%a@." Dsmsim.Validate.pp v;
  Format.printf "verdict: %s@."
    (if Dsmsim.Validate.ok v then "all reads sequentially fresh"
     else "STALE READS - schedule incomplete")
