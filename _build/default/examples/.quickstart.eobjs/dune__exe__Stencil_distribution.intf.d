examples/stencil_distribution.mli:
