lib/locality/chain.mli: Descriptor Format Lcg Pd
