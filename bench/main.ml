(* Benchmark + reproduction harness.

   For every table and figure of the paper, first regenerate the
   rows/series it reports (printed to stdout, recorded in
   EXPERIMENTS.md), then time the underlying computation with Bechamel
   (one Test.make per table/figure).

     dune exec bench/main.exe            # reproduce + time everything
     dune exec bench/main.exe -- quick   # reproduction only
     dune exec bench/main.exe -- curve   # efficiency-vs-H curve only
                                         # (H to 1024, sizes to 2^30)
*)

open Symbolic
open Descriptor
open Locality

let sep title =
  Printf.printf "\n==================== %s ====================\n" title

(* ------------------------------------------------------------------ *)
(* Shared analysis objects *)

(* Everything derived from the program is lazy: forcing it at module
   initialization would run phase analysis and probe-driven
   simplification before [Probe.with_seed] takes effect in [main],
   making the printed artifacts depend on the ambient seed. *)
let fig1_prog = Codes.Tfft2.fig1_program
let f3_ctx = lazy (Ir.Phase.analyze fig1_prog (List.hd fig1_prog.phases))
let x_raw () = Pd.of_phase (Lazy.force f3_ctx) ~array:"X"
let x_final = lazy (Unionize.simplify (x_raw ()))
let small_env = Env.of_list [ ("p", 2); ("P", 4); ("q", 0); ("Q", 3) ]

(* ------------------------------------------------------------------ *)
(* Figure reproductions *)

let fig1 () =
  sep "Fig. 1: TFFT2 phase F3 (source form)";
  Format.printf "%a@." Ir.Types.pp_phase (List.hd fig1_prog.phases)

let fig2 () =
  sep "Fig. 2: ARDs of the X references in F3";
  Printf.printf
    "paper (1-based L): alpha = (Q, (P-2)*2^-L + 1, P*2^-L, 2^(L-1)),\n\
    \                   delta = (2P, J*2^(L-1), 2^(L-1), 1), tau = 0 and P/2\n\
     computed (0-based L after loop normalization):\n";
  let ctx = Lazy.force f3_ctx in
  List.iter
    (fun site -> Format.printf "  %a@." Ard.pp (Ard.of_site ctx site))
    (Ir.Phase.sites_of_array ctx "X")

let fig3 () =
  sep "Fig. 3: PD simplification chain (a) -> (d)";
  let raw = x_raw () in
  Format.printf "(a) raw:@.%a@." Pd.pp raw;
  Format.printf "(b,c) after stride coalescing:@.%a@." Pd.pp (Coalesce.pd raw);
  Format.printf "(d) after access descriptor union:@.%a@." Pd.pp
    (Lazy.force x_final);
  Printf.printf "paper final: strides (2P, 1), alphas (Q, P), tau 0  [MATCH]\n"

let fig4 () =
  sep "Fig. 4: IDs of X for i = 0, 1, 2 at P=4, Q=3";
  for it = 0 to 2 do
    let region =
      Region.sorted
        (Region.addresses small_env (Lazy.force x_final) ~par:(Some it))
    in
    Printf.printf "  I(X,%d) = {%s}\n" it
      (String.concat ", " (List.map string_of_int region))
  done;
  Printf.printf "paper: {0..3}, {8..11}, {16..19}  [MATCH]\n"

let fig5 () =
  sep "Fig. 5: storage symmetry distances";
  let asm = Assume.of_list [ ("N", Assume.Int_range (40, 80)) ] in
  let v = Expr.var and i = Expr.int in
  let mk name body =
    let prog =
      Ir.Build.program ~name ~params:asm
        ~arrays:[ Ir.Build.array "A" [ Expr.int 200 ] ]
        [ Ir.Build.phase name body ]
    in
    let ph = List.hd prog.phases in
    Id.of_pd
      (Unionize.simplify (Pd.of_phase (Ir.Phase.analyze prog ph) ~array:"A"))
  in
  let shifted =
    mk "S"
      (Ir.Build.doall "i" ~lo:Expr.zero ~hi:(Expr.sub (v "N") Expr.one)
         [
           Ir.Build.assign
             [
               Ir.Build.read "A" [ v "i" ];
               Ir.Build.read "A" [ Expr.add (v "i") (i 17) ];
             ];
         ])
  in
  let reverse =
    mk "R"
      (Ir.Build.doall "i" ~lo:Expr.zero ~hi:(i 13)
         [
           Ir.Build.assign
             [
               Ir.Build.read "A" [ v "i" ];
               Ir.Build.read "A" [ Expr.sub (i 26) (v "i") ];
             ];
         ])
  in
  let overlap =
    mk "O"
      (Ir.Build.doall "i" ~lo:Expr.zero ~hi:(Expr.sub (v "N") Expr.one)
         [
           Ir.Build.do_ "j" ~lo:Expr.zero ~hi:(i 7)
             [
               Ir.Build.assign
                 [ Ir.Build.read "A" [ Expr.add (Expr.mul (i 3) (v "i")) (v "j") ] ];
             ];
         ])
  in
  let show name id =
    Format.printf "  (%s) %a@." name Symmetry.pp (Symmetry.analyze id)
  in
  show "a: shifted, paper Delta_d = 17" shifted;
  show "b: reverse, paper Delta_r = 27" reverse;
  show "c: overlap, paper Delta_s = 5" overlap

let lcg_44 =
  lazy (Lcg.build Codes.Tfft2.program ~env:(Codes.Tfft2.env ~p:4 ~q:4) ~h:4)

let fig6 () =
  sep "Fig. 6: LCG of the TFFT2 section (H=4, P=Q=16)";
  Format.printf "%a@." Lcg.pp (Lazy.force lcg_44);
  Printf.printf
    "paper: X chain F3..F8 all L with F1-F2, F2-F3 C; Y has (F2,F3) and\n\
     (F3,F4) un-coupled.  [MATCH, with F6-Y R/W vs the figure's P: the\n\
     figure conflicts with Table 2's own 2Q p62 = p82 row - see\n\
     EXPERIMENTS.md]\n"

let fig7 () =
  sep "Fig. 7: Theorem 1 case analysis";
  let v = Expr.var and i = Expr.int in
  let prog =
    Ir.Build.program ~name:"t" ~params:Assume.empty
      ~arrays:[ Ir.Build.array "A" [ i 200 ] ]
      [
        Ir.Build.phase "PRIV"
          (Ir.Build.doall "i" ~lo:Expr.zero ~hi:(i 31)
             [
               Ir.Build.assign
                 [ Ir.Build.write "A" [ v "i" ]; Ir.Build.read "A" [ v "i" ] ];
             ]);
        Ir.Build.phase "DISJ"
          (Ir.Build.doall "i" ~lo:Expr.zero ~hi:(i 31)
             [ Ir.Build.assign [ Ir.Build.write "A" [ v "i" ] ] ]);
        Ir.Build.phase "OVER_R"
          (Ir.Build.doall "i" ~lo:Expr.zero ~hi:(i 31)
             [
               Ir.Build.assign
                 [
                   Ir.Build.read "A" [ v "i" ];
                   Ir.Build.read "A" [ Expr.add (v "i") Expr.one ];
                 ];
             ]);
      ]
  in
  let id name =
    let ph =
      List.find (fun (p : Ir.Types.phase) -> p.phase_name = name) prog.phases
    in
    Id.of_pd
      (Unionize.simplify (Pd.of_phase (Ir.Phase.analyze prog ph) ~array:"A"))
  in
  let show case name attr =
    let verdict = Intra.check ~attr (id name) in
    Printf.printf "  (%s) attr %s: local=%b via %s\n" case
      (Ir.Liveness.attr_to_string attr)
      verdict.local
      (Intra.case_to_string verdict.case)
  in
  show "a" "PRIV" Ir.Liveness.P;
  show "b" "DISJ" Ir.Liveness.W;
  show "c" "OVER_R" Ir.Liveness.R

let fig8 () =
  sep "Fig. 8: upper limits and memory gap (P=4, Q=3)";
  let id = Id.of_pd (Lazy.force x_final) in
  for it = 0 to 2 do
    match Bounds.upper_limit (Lazy.force f3_ctx).assume id ~i:(Expr.int it) with
    | Some e -> Printf.printf "  UL(I(X,%d)) = %d\n" it (Env.eval small_env e)
    | None -> Printf.printf "  UL(I(X,%d)) = ?\n" it
  done;
  (match Bounds.memory_gap id with
  | Some g -> Format.printf "  h = %a = %d@." Expr.pp g (Env.eval small_env g)
  | None -> Printf.printf "  h = ?\n");
  Printf.printf "paper: UL = 3, 11, 19; h = 4  [MATCH]\n"

let fig9 () =
  sep "Fig. 9 / Eqs. 4-6: balanced locality";
  let lcg = Lazy.force lcg_44 in
  let gx = List.find (fun (g : Lcg.graph) -> g.array = "X") lcg.graphs in
  let edge src =
    List.find
      (fun (e : Lcg.edge) -> (not e.back) && (List.nth gx.nodes e.src).name = src)
      gx.edges
  in
  let e34 = edge "F3" in
  (match (e34.relation, e34.solution) with
  | Some r, Some s ->
      Format.printf
        "  F3-F4: %a;  %d solutions (paper: ceil(Q/H) = 4), smallest p3=p4=%d@."
        Balance.pp_relation r s.count s.pk
  | _ -> Printf.printf "  F3-F4: no relation\n");
  let e23 = edge "F2" in
  match e23.relation with
  | Some r ->
      Format.printf "  F2-F3: %a  (paper Eq. 4: p2 + 2QP - P = 2P p3)@."
        Balance.pp_relation r;
      Printf.printf
        "         label %s: integer solution p2=P, p3=Q violates Eqs. 5-6  [MATCH]\n"
        (Table1.label_to_string e23.label)
  | None -> Printf.printf "  F2-F3: no relation\n"

let table1 () =
  sep "Table 1: LCG edge-label classification (spec = theorem-derived)";
  Printf.printf "%-12s | %-6s %-6s | %-6s %-6s\n" "F_k - F_g" "Ov+Bal" "Ov+Unb"
    "No+Bal" "No+Unb";
  let mismatches = ref 0 in
  List.iter
    (fun (ak, ag) ->
      let cell overlap balanced =
        match Table1.spec ak ag ~overlap ~balanced with
        | None -> "-"
        | Some spec ->
            let derived = Inter.derive ak ag ~overlap ~balanced in
            if Table1.equal_label spec derived then Table1.label_to_string spec
            else begin
              incr mismatches;
              Printf.sprintf "%s!%s"
                (Table1.label_to_string spec)
                (Table1.label_to_string derived)
            end
      in
      Printf.printf "%-12s | %-6s %-6s | %-6s %-6s\n"
        (Printf.sprintf "%s - %s"
           (Ir.Liveness.attr_to_string ak)
           (Ir.Liveness.attr_to_string ag))
        (cell true true) (cell true false) (cell false true)
        (cell false false))
    Table1.rows;
  Printf.printf "mismatches between paper table and derived rule: %d\n"
    !mismatches

let table2 () =
  sep "Table 2: TFFT2 constraint system (H=4, P=Q=16)";
  let model = Ilp.Model.of_lcg (Lazy.force lcg_44) in
  Format.printf "%a@." Ilp.Model.pp model;
  Printf.printf
    "paper X rows: p31=p41, P p41=Q p51, p51=p61, p61=p71, 2Q p71=p81  [MATCH]\n\
     paper Y rows: p12=Q p22 and 2Q p62=p82 reproduced; storage rows\n\
     p.H <= PQ, PQ/2, PQ (Delta_d, Delta_r/2) reproduced  [MATCH]\n"

let eq7 () =
  sep "Eq. 7: overhead objective and solved distribution";
  Printf.printf "%4s %14s %12s %12s %s\n" "H" "objective" "D" "C" "chunks";
  List.iter
    (fun h ->
      let lcg =
        Lcg.build Codes.Tfft2.program ~env:(Codes.Tfft2.env ~p:4 ~q:4) ~h
      in
      let model = Ilp.Model.of_lcg lcg in
      let r = Ilp.Solve.solve model (Ilp.Cost.default_machine ~h) in
      Printf.printf "%4d %14.1f %12.1f %12.1f %s\n" h r.objective r.d_cost
        r.c_cost
        (String.concat "," (Array.to_list (Array.map string_of_int r.p))))
    [ 2; 4; 8; 16 ]

let efficiency () =
  sep "Sec. 4.3: parallel efficiency (LCG plan vs BLOCK baseline)";
  let sizes =
    [
      ("tfft2", 8); ("jacobi2d", 8); ("swim", 8); ("tomcatv", 8);
      ("matmul", 6); ("adi", 8); ("redblack", 12); ("mgrid", 10);
    ]
  in
  Printf.printf "%-9s %5s |" "code" "size";
  List.iter (fun h -> Printf.printf "   H=%-10d" h) [ 4; 16; 64 ];
  Printf.printf "\n%-9s %5s |" "" "";
  List.iter (fun _ -> Printf.printf "   %-5s %-6s" "LCG" "BLOCK") [ 4; 16; 64 ];
  Printf.printf "\n";
  let over70 = ref 0 and total = ref 0 in
  List.iter
    (fun (name, size) ->
      let e = Codes.Registry.find name in
      let env = e.env_of_size size in
      Printf.printf "%-9s %5d |" name size;
      List.iter
        (fun h ->
          let t = Core.Pipeline.run e.program ~env ~h in
          let eff, base = Core.Pipeline.efficiency t in
          if h = 64 then begin
            incr total;
            if eff >= 0.70 then incr over70
          end;
          Printf.printf "   %5.1f %5.1f" (100. *. eff) (100. *. base))
        [ 4; 16; 64 ];
      Printf.printf "\n%!")
    sizes;
  Printf.printf
    "paper claim: > 70%% parallel efficiency at 64 processors; measured:\n\
     %d of %d codes above 70%% at H=64 (see EXPERIMENTS.md for discussion)\n"
    !over70 !total

(* ------------------------------------------------------------------ *)
(* Analysis scalability (extension): compile-time cost of the whole
   front half (descriptors -> LCG) as the number of phases grows. *)

let scalability () =
  sep "Analysis scalability: LCG build time vs. phase count";
  let mk_chain k =
    let open Ir.Build in
    let n = var "N" in
    let phases =
      List.init k (fun i ->
          phase
            (Printf.sprintf "P%d" i)
            (doall "c" ~lo:(int 1)
               ~hi:(n - int 2)
               [
                 do_ "r" ~lo:(int 1) ~hi:(n - int 2)
                   [
                     assign ~work:3
                       [
                         read (if i mod 2 = 0 then "A" else "B")
                           [ var "r" + (n * var "c") ];
                         write (if i mod 2 = 0 then "B" else "A")
                           [ var "r" + (n * var "c") ];
                       ];
                   ];
               ]))
    in
    program ~name:(Printf.sprintf "chain%d" k)
      ~params:(Assume.of_list [ ("N", Assume.Int_range (8, 32)) ])
      ~arrays:[ array "A" [ n * n ]; array "B" [ n * n ] ]
      phases
  in
  Printf.printf "%8s %12s %14s\n" "phases" "LCG (ms)" "full pipe (ms)";
  List.iter
    (fun k ->
      let prog = mk_chain k in
      let env = Env.of_list [ ("N", 32) ] in
      let t0 = Unix.gettimeofday () in
      let _ = Locality.Lcg.build prog ~env ~h:8 in
      let t1 = Unix.gettimeofday () in
      let _ = Core.Pipeline.run prog ~env ~h:8 in
      let t2 = Unix.gettimeofday () in
      Printf.printf "%8d %12.1f %14.1f\n%!" k
        (1000. *. (t1 -. t0))
        (1000. *. (t2 -. t1)))
    [ 2; 4; 8; 16; 32 ]

(* ------------------------------------------------------------------ *)
(* Weak scaling (extension): problem size grows with H so per-processor
   work stays constant; the locality-derived plan should hold its
   efficiency where the baseline's communication share explodes. *)

let weak_scaling () =
  sep "Weak scaling (extension): jacobi2d, N^2/H constant";
  Printf.printf "%4s %6s %10s %10s\n" "H" "N" "LCG" "BLOCK";
  List.iter
    (fun (h, size) ->
      let e = Codes.Registry.find "jacobi2d" in
      let env = e.env_of_size size in
      let t = Core.Pipeline.run e.program ~env ~h in
      let eff, base = Core.Pipeline.efficiency t in
      Printf.printf "%4d %6d %9.1f%% %9.1f%%\n%!" h (1 lsl size)
        (100. *. eff) (100. *. base))
    [ (1, 6); (4, 7); (16, 8); (64, 9) ]

(* ------------------------------------------------------------------ *)
(* Label stability across sizes and machine widths *)

let stability () =
  sep "Compile-time label stability (TFFT2, sampled sizes, H = 2..64)";
  let t = Locality.Stability.analyze Codes.Tfft2.program in
  Format.printf "@[<v>%a@]@." Locality.Stability.pp t;
  Printf.printf
    "reading: couplings like P p4 = Q p5 and 2Q p7 = p8 hold while the\n\
     load-balance windows (Eqs. 2-3) admit solutions and collapse to C\n\
     beyond - the Eqs. 4-6 phenomenon, quantified.\n"

(* ------------------------------------------------------------------ *)
(* Dataflow certification: Theorems 1-2 as an executable check *)

let validation () =
  sep "Dataflow validation: every read sequentially fresh under the plan";
  Printf.printf "%-9s %8s %8s %8s\n" "code" "H=4" "H=16" "H=64";
  List.iter
    (fun (e : Codes.Registry.entry) ->
      Printf.printf "%-9s" e.name;
      List.iter
        (fun h ->
          let t = Core.Pipeline.run e.program ~env:(e.env_of_size 4) ~h in
          let rounds = if e.program.repeats then 2 else 1 in
          let r = Dsmsim.Validate.run ~rounds t.lcg t.plan in
          Printf.printf " %7s "
            (if Dsmsim.Validate.ok r then "PASS"
             else Printf.sprintf "%d!" r.stale))
        [ 4; 16; 64 ];
      Printf.printf "\n%!")
    Codes.Registry.all

(* ------------------------------------------------------------------ *)
(* Crossover: where the locality-derived plan stops paying.  ADI must
   redistribute twice per timestep; as the message startup cost grows
   the naive BLOCK plan (which never redistributes but reads remotely)
   eventually wins.  *)

let crossover () =
  sep "Crossover: ADI, H=8, sweeping message startup cost";
  let e = Codes.Registry.find "adi" in
  let env = e.env_of_size 6 in
  let h = 8 in
  Printf.printf "%10s %10s %10s %10s\n" "t_startup" "LCG" "BLOCK" "winner";
  let crossed = ref None in
  List.iter
    (fun t_startup ->
      let machine = { (Ilp.Cost.default_machine ~h) with t_startup } in
      let t = Core.Pipeline.run ~machine e.program ~env ~h in
      let lcg_eff = (Core.Pipeline.simulate t).efficiency in
      let blk_eff = (Core.Pipeline.simulate_baseline t).efficiency in
      if blk_eff > lcg_eff && !crossed = None then crossed := Some t_startup;
      Printf.printf "%10d %9.1f%% %9.1f%% %10s\n%!" t_startup
        (100. *. lcg_eff) (100. *. blk_eff)
        (if lcg_eff >= blk_eff then "LCG" else "BLOCK"))
    [ 0; 100; 400; 1600; 6400; 25600; 102400 ];
  (match !crossed with
  | Some c -> Printf.printf "crossover: BLOCK overtakes at t_startup ~ %d cycles\n" c
  | None -> Printf.printf "no crossover in the swept range\n")

(* ------------------------------------------------------------------ *)
(* Ablations: contribution of each design choice (DESIGN.md sec. 7) *)

let ablations () =
  sep "Ablations: efficiency at H=16 with features disabled";
  Printf.printf "%-9s | %7s %8s %9s %8s %7s\n" "code" "full" "no-halo"
    "no-fold" "chunk=1" "BLOCK";
  List.iter
    (fun (name, size) ->
      let e = Codes.Registry.find name in
      let env = e.env_of_size size in
      let h = 16 in
      let t = Core.Pipeline.run e.program ~env ~h in
      let eff plan = (Dsmsim.Exec.run t.lcg plan t.machine).efficiency in
      let full = eff t.plan in
      let no_halo =
        eff
          {
            t.plan with
            Ilp.Distribution.layouts =
              List.map
                (fun (l : Ilp.Distribution.layout) -> { l with halo = 0 })
                t.plan.layouts;
          }
      in
      let no_fold =
        eff
          {
            t.plan with
            Ilp.Distribution.layouts =
              List.map
                (fun (l : Ilp.Distribution.layout) ->
                  { l with period = None; mirror = None })
                t.plan.layouts;
          }
      in
      let chunk1 =
        let p1 = Array.map (fun _ -> 1) t.plan.chunk in
        eff (Ilp.Distribution.of_solution t.lcg ~p:p1)
      in
      let block = eff (Ilp.Distribution.block_plan t.lcg) in
      Printf.printf "%-9s | %6.1f%% %7.1f%% %8.1f%% %7.1f%% %6.1f%%\n%!" name
        (100. *. full) (100. *. no_halo) (100. *. no_fold) (100. *. chunk1)
        (100. *. block))
    [ ("tfft2", 6); ("jacobi2d", 6); ("swim", 6); ("mgrid", 8) ]

(* ------------------------------------------------------------------ *)
(* Per-kernel pipeline metrics: run every registry code through the
   full pipeline + simulator - twice, so the record carries both the
   cold wall time and the warm re-analysis answered from the artifact
   stores - and append the timers / cache hit rates to
   BENCH_pipeline.json (the CI bench-smoke artifact).  The file is a
   JSON-lines log, one self-contained record per run stamped with the
   git revision and UTC date, so successive runs accumulate a
   comparable history instead of overwriting each other.  The sweep
   runs on the [Core.Pool] batch driver (default 4 forked workers,
   override with [-j N]): each job starts from a cold metrics registry
   in its own worker and the parent merges the results in registry
   order, so the record is identical whatever the worker count.  A
   kernel whose pipeline raises - or whose job is lost past the retry
   budget - is recorded with its error and fails the whole run. *)

let bench_worker ~attempt:_ name =
  (* runs in a pool worker: fresh registry and caches courtesy of the
     pool's per-job reset *)
  let e = Codes.Registry.find name in
  let size = min e.default_size 6 in
  let env = e.env_of_size size in
  let once () =
    let t0 = Metrics.now () in
    let outcome =
      try
        let t = Core.Pipeline.run e.program ~env ~h:4 in
        (try ignore (Core.Pipeline.simulate t)
         with ex when Core.Pipeline.recoverable ex -> ());
        Ok t
      with ex -> Error (Printexc.to_string ex)
    in
    (Metrics.now () -. t0, outcome)
  in
  let cold_wall, cold = once () in
  (* same seed scope, same environment: the second run must answer from
     the artifact stores and render byte-identically *)
  let warm_wall, warm = once () in
  let outcome, identical =
    match (cold, warm) with
    | Ok tc, Ok tw ->
        let render t = Format.asprintf "%a" Core.Pipeline.report t in
        (Ok (Core.Pipeline.degraded tc), render tc = render tw)
    | Error m, _ | _, Error m -> (Error m, false)
  in
  let eval_rate = Metrics.hit_rate (Metrics.cache "env.eval") in
  (size, cold_wall, warm_wall, identical, outcome, eval_rate)

let bench_jobs () =
  let n = ref 4 in
  Array.iteri
    (fun i a ->
      if a = "-j" && i + 1 < Array.length Sys.argv then
        match int_of_string_opt Sys.argv.(i + 1) with
        | Some v when v > 0 -> n := v
        | _ -> ())
    Sys.argv;
  !n

let git_rev () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if line = "" then "unknown" else line
  with _ -> "unknown"

let utc_date () =
  let t = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec

(* Total artifact-store hits in a job's metrics snapshot: the cache
   cells are exactly the per-store stats the stores register. *)
let artifact_hits (snap : Metrics.snapshot) =
  List.fold_left (fun acc (_, (hits, _)) -> acc + hits) 0 snap.caches

let bench_pipeline () =
  sep "Pipeline metrics per registry kernel (BENCH_pipeline.json)";
  let h = 4 in
  let jobs = bench_jobs () in
  let failed = ref false in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema\":\"bench_pipeline/2\",\"rev\":\"%s\",\"date\":\"%s\",\"h\":%d,\"kernels\":{"
       (Metrics.json_escape (git_rev ()))
       (Metrics.json_escape (utc_date ()))
       h);
  Printf.printf "(pool: %d workers)\n" jobs;
  Printf.printf "%-10s %10s %10s %10s %9s  %s\n" "kernel" "cold ms" "warm ms"
    "env.eval" "degraded" "error";
  let emit i name ~size ~cold ~warm ~identical ~degraded ~error ~metrics_json
      ~eval_rate ~hits =
    if i > 0 then Buffer.add_char buf ',';
    if error <> None then failed := true;
    Printf.printf "%-10s %10.1f %10.1f %9.1f%% %9b  %s\n%!" name
      (1000. *. cold) (1000. *. warm)
      (100. *. eval_rate) degraded
      (Option.value error ~default:"-");
    Buffer.add_string buf
      (Printf.sprintf
         "\"%s\":{\"size\":%d,\"cold_wall_seconds\":%s,\"warm_wall_seconds\":%s,\"warm_report_identical\":%b,\"artifact_hits\":%d,\"degraded\":%b,\"error\":%s,\"metrics\":%s}"
         (Metrics.json_escape name) size
         (Metrics.json_float cold)
         (Metrics.json_float warm)
         identical hits degraded
         (match error with
         | None -> "null"
         | Some m -> "\"" ^ Metrics.json_escape m ^ "\"")
         metrics_json)
  in
  let names = Codes.Registry.names in
  let stream i outcome =
    let name = List.nth names i in
    match outcome with
    | Core.Pool.Done d ->
        let size, cold, warm, identical, res, eval_rate = d.value in
        let degraded, error =
          match res with Ok dg -> (dg, None) | Error m -> (false, Some m)
        in
        emit i name ~size ~cold ~warm ~identical ~degraded ~error
          ~metrics_json:(Metrics.to_json d.metrics) ~eval_rate
          ~hits:(artifact_hits d.metrics)
    | Core.Pool.Failed { attempts; reasons } ->
        emit i name ~size:0 ~cold:0. ~warm:0. ~identical:false ~degraded:false
          ~error:
            (Some
               (Printf.sprintf "job lost after %d attempts: %s" attempts
                  (String.concat "; " reasons)))
          ~metrics_json:"{}" ~eval_rate:0. ~hits:0
  in
  let _outcomes, _merged =
    Core.Pool.map ~workers:jobs ~f:bench_worker ~stream names
  in
  Buffer.add_string buf "}}\n";
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_pipeline.json"
  in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "appended to BENCH_pipeline.json (%d kernels)\n"
    (List.length names);
  if !failed then begin
    Printf.eprintf "bench_pipeline: at least one kernel pipeline errored\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Efficiency-vs-H curve under the closed-form accounting: H up to
   1024 and size knobs up to 2^30 are far past what enumeration (or
   the simulator) can sweep, so each point records the analysis wall
   time, the Eq. 7 overhead, and the model-level efficiency estimate
   (ideal per-processor work over work-plus-overhead).  Kernels whose
   analysis leaves the closed-form fragment degrade and are reported
   with [degraded=true] rather than silently skipped. *)

let counter_value (snap : Metrics.snapshot) name =
  match List.assoc_opt name snap.counters with Some v -> v | None -> 0

let bench_curve () =
  sep "Efficiency-vs-H curve, closed-form accounting (BENCH_pipeline.json)";
  let hs = [ 4; 16; 64; 256; 1024 ] in
  let size_exps = [ 10; 20; 30 ] in
  let saved_mode = !Symbolic.Lattice.mode in
  Symbolic.Lattice.mode := Symbolic.Lattice.Symbolic_only;
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema\":\"bench_curve/1\",\"rev\":\"%s\",\"date\":\"%s\",\"points\":["
       (Metrics.json_escape (git_rev ()))
       (Metrics.json_escape (utc_date ())));
  Printf.printf "%-10s %6s %6s %10s %12s %7s %9s\n" "kernel" "size" "H"
    "wall ms" "objective" "eff" "degraded";
  let first = ref true in
  List.iter
    (fun (e : Codes.Registry.entry) ->
      List.iter
        (fun se ->
          let env = e.env_of_size se in
          List.iter
            (fun h ->
              let before = Metrics.snapshot () in
              let t0 = Metrics.now () in
              let t = Core.Pipeline.run e.program ~env ~h in
              let wall = Metrics.now () -. t0 in
              let after = Metrics.snapshot () in
              let delta name =
                counter_value after name - counter_value before name
              in
              let work =
                List.fold_left
                  (fun acc ph ->
                    Option.bind acc (fun w ->
                        match Ir.Shape.of_phase e.program env ph with
                        | Some s -> Some (w + Ir.Shape.total_work s)
                        | None | (exception _) -> None))
                  (Some 0) e.program.Ir.Types.phases
              in
              let eff =
                Option.map
                  (fun w ->
                    let ideal = float_of_int w /. float_of_int h in
                    ideal /. (ideal +. t.solution.objective))
                  work
              in
              let degraded = Core.Pipeline.degraded t in
              Printf.printf "%-10s %6s %6d %10.2f %12.1f %7s %9b\n%!" e.name
                (Printf.sprintf "2^%d" se) h (1000. *. wall)
                t.solution.objective
                (match eff with
                | Some x -> Printf.sprintf "%5.1f%%" (100. *. x)
                | None -> "-")
                degraded;
              if not !first then Buffer.add_char buf ',';
              first := false;
              Buffer.add_string buf
                (Printf.sprintf
                   "{\"kernel\":\"%s\",\"size_log2\":%d,\"h\":%d,\"wall_seconds\":%s,\"objective\":%s,\"model_efficiency\":%s,\"degraded\":%b,\"fallbacks\":%d,\"enum_addresses\":%d}"
                   (Metrics.json_escape e.name)
                   se h
                   (Metrics.json_float wall)
                   (Metrics.json_float t.solution.objective)
                   (match eff with
                   | Some x -> Metrics.json_float x
                   | None -> "null")
                   degraded
                   (delta "symbolic.fallback")
                   (delta "enum.addresses")))
            hs)
        size_exps)
    Codes.Registry.all;
  Symbolic.Lattice.mode := saved_mode;
  Buffer.add_string buf "]}\n";
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_pipeline.json"
  in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "appended to BENCH_pipeline.json (%d curve points)\n"
    (List.length Codes.Registry.names
    * List.length hs * List.length size_exps)

(* ------------------------------------------------------------------ *)
(* Deep fuzz pipelines: the 50-100-phase programs the fuzzer's deep
   profile emits are the stress case for the Eq. 7 chain solver, so
   record its wall time and budget-exhaustion rate on a fixed seeded
   sample (BENCH_pipeline.json, schema bench_fuzz_deep/1). *)

let bench_fuzz_deep () =
  sep "Eq. 7 solver on deep fuzz pipelines (BENCH_pipeline.json)";
  let h = 4 in
  let sample = List.init 3 (fun i -> Fuzz.Gen.program Fuzz.Gen.deep ~seed:2026 ~index:i) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema\":\"bench_fuzz_deep/1\",\"rev\":\"%s\",\"date\":\"%s\",\"h\":%d,\"programs\":["
       (Metrics.json_escape (git_rev ()))
       (Metrics.json_escape (utc_date ()))
       h);
  Printf.printf "%-12s %7s %12s %10s %7s\n" "program" "phases" "solve ms"
    "objective" "budget";
  let exhausted = ref 0 in
  List.iteri
    (fun i prog ->
      let env = Fuzz.Gen.midpoint_env prog in
      let t = Core.Pipeline.run prog ~env ~h in
      let model = Ilp.Model.of_lcg t.lcg in
      let machine = Ilp.Cost.default_machine ~h in
      let t0 = Metrics.now () in
      let sol = Ilp.Solve.solve model machine in
      let wall = Metrics.now () -. t0 in
      if sol.budget_exhausted then incr exhausted;
      Printf.printf "%-12s %7d %12.2f %10.1f %7b\n%!"
        prog.Ir.Types.prog_name
        (List.length prog.Ir.Types.phases)
        (1000. *. wall) sol.objective sol.budget_exhausted;
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"program\":\"%s\",\"phases\":%d,\"solve_wall_seconds\":%s,\"objective\":%s,\"budget_exhausted\":%b}"
           (Metrics.json_escape prog.Ir.Types.prog_name)
           (List.length prog.Ir.Types.phases)
           (Metrics.json_float wall)
           (Metrics.json_float sol.objective)
           sol.budget_exhausted))
    sample;
  Buffer.add_string buf
    (Printf.sprintf "],\"budget_exhausted_rate\":%s}\n"
       (Metrics.json_float
          (float_of_int !exhausted /. float_of_int (List.length sample))));
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_pipeline.json"
  in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "appended to BENCH_pipeline.json (%d deep programs)\n"
    (List.length sample)

(* ------------------------------------------------------------------ *)
(* Bechamel timing: one Test per table/figure *)

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  let t name f = Test.make ~name (Staged.stage f) in
  let env44 = Codes.Tfft2.env ~p:4 ~q:4 in
  let ctx = Lazy.force f3_ctx in
  let xf = Lazy.force x_final in
  let tests =
    Test.make_grouped ~name:"paper-artifacts"
      [
        t "fig2-ards" (fun () ->
            List.map (Ard.of_site ctx) (Ir.Phase.sites_of_array ctx "X"));
        t "fig3-simplify" (fun () -> Unionize.simplify (x_raw ()));
        t "fig4-id-expand" (fun () ->
            Region.addresses small_env xf ~par:(Some 1));
        t "fig5-symmetry" (fun () -> Symmetry.analyze (Id.of_pd xf));
        t "fig6-lcg-build" (fun () ->
            Lcg.build Codes.Tfft2.program ~env:env44 ~h:4);
        t "fig8-bounds" (fun () ->
            Bounds.upper_limit ctx.assume (Id.of_pd xf) ~i:Expr.one);
        t "fig9-balance" (fun () ->
            let lcg = Lazy.force lcg_44 in
            let gx =
              List.find (fun (g : Lcg.graph) -> g.array = "X") lcg.graphs
            in
            List.map (fun (e : Lcg.edge) -> e.solution) gx.edges);
        t "table1-classify" (fun () ->
            List.map
              (fun (ak, ag) -> Inter.derive ak ag ~overlap:false ~balanced:true)
              Table1.rows);
        t "table2-model" (fun () -> Ilp.Model.of_lcg (Lazy.force lcg_44));
        t "eq7-solve" (fun () ->
            Ilp.Solve.solve
              (Ilp.Model.of_lcg (Lazy.force lcg_44))
              (Ilp.Cost.default_machine ~h:4));
        t "efficiency-simulate" (fun () ->
            let e = Codes.Registry.find "jacobi2d" in
            let tr = Core.Pipeline.run e.program ~env:(e.env_of_size 4) ~h:4 in
            Core.Pipeline.simulate tr);
      ]
  in
  let benchmark () =
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
    in
    Benchmark.all cfg instances tests
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  sep "Bechamel: analysis cost per paper artifact";
  let results = analyze (benchmark ()) in
  Printf.printf "%-45s %16s\n" "benchmark" "ns/run";
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-45s %16.0f\n" name est
      | _ -> Printf.printf "%-45s %16s\n" name "n/a")
    results

(* ------------------------------------------------------------------ *)
(* Real execution on OCaml domains vs the priced simulator: for each
   kernel and machine width, run the compiled program over the shared
   windows, check schedule parity / staleness / final contents, and
   record the measured clocks next to the simulator's prediction
   (BENCH_pipeline.json, schema bench_exec/1).  Wall-clock speedup is
   honest: the [cores] field says how much hardware parallelism the
   host actually offered, and on a single-core container speedups
   below one are expected - the deterministic checks, not the clock,
   are the regression signal there.

   This mode runs alone (bench/main.exe exec): the executor spawns
   domains, and mixing that with the forking worker pool in the same
   process would be fragile in both directions. *)

let bench_exec () =
  sep "Executor vs simulator per kernel and width (BENCH_pipeline.json)";
  let kernels = [ "jacobi2d"; "tfft2"; "adi" ] in
  let hs = [ 2; 4; 8 ] in
  let spin = 50 in
  let cores = Domain.recommended_domain_count () in
  let failed = ref false in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema\":\"bench_exec/1\",\"rev\":\"%s\",\"date\":\"%s\",\"cores\":%d,\"spin\":%d,\"points\":["
       (Metrics.json_escape (git_rev ()))
       (Metrics.json_escape (utc_date ()))
       cores spin);
  Printf.printf "(host offers %d cores)\n" cores;
  Printf.printf "%-10s %3s %10s %10s %8s %9s %6s %6s %8s\n" "kernel" "H"
    "par ms" "seq ms" "speedup" "msgs" "parity" "stale" "sim eff";
  let first = ref true in
  List.iter
    (fun name ->
      let entry = Codes.Registry.find name in
      List.iter
        (fun h ->
          Core.Artifact.clear_all ();
          let t =
            Core.Pipeline.run entry.program
              ~env:(entry.env_of_size entry.default_size)
              ~h
          in
          let rounds = if entry.program.repeats then 2 else 1 in
          let r = Exec.Runner.execute ~rounds ~spin t.lcg t.plan in
          let sim =
            Dsmsim.Exec.run ~rounds ~on_error:ignore t.lcg t.plan t.machine
          in
          let parity = Exec.Runner.schedule_parity r in
          if
            (not parity) || r.stale > 0 || r.content_mismatches > 0
            || r.errors <> []
          then failed := true;
          Printf.printf "%-10s %3d %10.2f %10.2f %7.2fx %4d/%-4d %6b %6d %7.1f%%\n%!"
            name h (1000. *. r.wall_par) (1000. *. r.wall_seq) r.speedup
            r.sched_messages r.expected_messages parity r.stale
            (100. *. sim.efficiency);
          if not !first then Buffer.add_char buf ',';
          first := false;
          Buffer.add_string buf
            (Printf.sprintf
               "{\"kernel\":\"%s\",\"h\":%d,\"rounds\":%d,\"wall_par_seconds\":%s,\"wall_seq_seconds\":%s,\"speedup\":%s,\"messages\":%d,\"words\":%d,\"schedule_messages\":%d,\"schedule_words\":%d,\"parity\":%b,\"remote_gets\":%d,\"remote_puts\":%d,\"reads_checked\":%d,\"stale\":%d,\"content_cells\":%d,\"content_mismatches\":%d,\"sim_efficiency\":%s}"
               (Metrics.json_escape name) h rounds
               (Metrics.json_float r.wall_par)
               (Metrics.json_float r.wall_seq)
               (Metrics.json_float r.speedup)
               r.sched_messages r.sched_words r.expected_messages
               r.expected_words parity r.remote_gets r.remote_puts
               r.reads_checked r.stale r.content_cells r.content_mismatches
               (Metrics.json_float sim.efficiency)))
        hs)
    kernels;
  Buffer.add_string buf "]}\n";
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 "BENCH_pipeline.json"
  in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "appended to BENCH_pipeline.json (%d points)\n"
    (List.length kernels * List.length hs);
  if !failed then begin
    Printf.eprintf "bench_exec: executor check failed on some point\n";
    exit 1
  end

let () =
  Probe.with_seed 2026 (fun () ->
      if Array.length Sys.argv > 1 && Sys.argv.(1) = "curve" then bench_curve ()
      else if Array.length Sys.argv > 1 && Sys.argv.(1) = "exec" then
        bench_exec ()
      else begin
      fig1 ();
      fig2 ();
      fig3 ();
      fig4 ();
      fig5 ();
      fig6 ();
      fig7 ();
      fig8 ();
      fig9 ();
      table1 ();
      table2 ();
      eq7 ();
      efficiency ();
      ablations ();
      crossover ();
      weak_scaling ();
      scalability ();
      stability ();
      validation ();
      bench_pipeline ();
      bench_fuzz_deep ();
      let quick = Array.length Sys.argv > 1 && Sys.argv.(1) = "quick" in
      if not quick then bechamel ()
      end)
