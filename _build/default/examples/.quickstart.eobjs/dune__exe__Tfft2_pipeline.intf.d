examples/tfft2_pipeline.mli:
