lib/ilp/cost.ml:
