(** TOMCATV-like mesh generation sweep.

    Exercises a phase {e without} a parallel loop: RESID computes
    residuals (column-parallel 9-point stencil), NORM runs a purely
    sequential reduction over the residual arrays (a phase whose nest
    has no doall - the LCG node is iteration-invariant and the edge
    into it can only be C), and UPDATE applies the correction
    column-parallel.  Repeats. *)

open Symbolic
open Ir.Types

val params : Assume.t
val program : program
val env : n:int -> Env.t
