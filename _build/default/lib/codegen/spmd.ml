open Symbolic
open Locality
open Ilp

let expr = Frontend.Unparse.expr

let pp_ref ppf (r : Ir.Types.array_ref) =
  Format.fprintf ppf "%s(%a)" r.array
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       expr)
    r.index

let rec pp_stmt plan phase_idx ppf (s : Ir.Types.stmt) =
  match s with
  | Ir.Types.Assign a ->
      let reads, writes =
        List.partition (fun (r : Ir.Types.array_ref) ->
            Ir.Types.equal_access r.access Ir.Types.Read)
          a.refs
      in
      List.iter
        (fun w ->
          Format.fprintf ppf "%a = %a@," pp_ref w
            (fun ppf -> function
              | [] -> Format.pp_print_string ppf "..."
              | rs ->
                  Format.pp_print_list
                    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
                    pp_ref ppf rs)
            reads)
        writes;
      if writes = [] then
        List.iter (fun r -> Format.fprintf ppf "... = %a@," pp_ref r) reads
  | Ir.Types.Loop l when l.parallel ->
      let p = plan.Distribution.chunk.(phase_idx) in
      Format.fprintf ppf
        "do %s_blk = %a + me*%d, %a, NPROC*%d   ! CYCLIC(%d) chunks of mine@,"
        l.var expr l.lo p expr l.hi p p;
      Format.fprintf ppf
        "@[<v 2>do %s = %s_blk, min(%s_blk + %d, %a)@,%a@]@,end do@,end do@,"
        l.var l.var l.var (p - 1) expr l.hi
        (fun ppf body ->
          List.iter (pp_stmt plan phase_idx ppf) body)
        l.body
  | Ir.Types.Loop l ->
      Format.fprintf ppf "@[<v 2>do %s = %a, %a%s@,%a@]@,end do@," l.var expr
        l.lo expr l.hi
        (match Expr.to_int l.step with
        | Some 1 -> ""
        | _ -> Format.asprintf " step %a" expr l.step)
        (fun ppf body ->
          List.iter (pp_stmt plan phase_idx ppf) body)
        l.body

let pp_layout ppf (l : Distribution.layout) =
  Format.fprintf ppf "%s: CYCLIC(%d) anchored at %d%s%s%s" l.array l.block
    l.base
    (match l.period with
    | Some d -> Printf.sprintf ", copies every %d" d
    | None -> "")
    (match l.mirror with
    | Some m -> Printf.sprintf ", mirrored at %d" m
    | None -> "")
    (if l.halo > 0 then Printf.sprintf ", ghost zone %d" l.halo else "")

let pp ppf ((lcg : Lcg.t), (plan : Distribution.plan), (m : Cost.machine)) =
  let sched = Dsmsim.Comm.generate lcg plan in
  Format.fprintf ppf
    "@[<v>! SPMD code generated from the LCG-derived distribution@,\
     ! program %s on %d processors (me = 0..%d)@,@,"
    lcg.prog.prog_name plan.h (plan.h - 1);
  List.iteri
    (fun k (ph : Ir.Types.phase) ->
      (* communication entering this phase *)
      List.iter
        (fun ev ->
          match ev with
          | Dsmsim.Comm.Redistribute { array; before_phase; messages }
            when before_phase = k ->
              Format.fprintf ppf
                "call redistribute_%s()   ! %d aggregated puts, %d words@,@,"
                array (List.length messages)
                (List.fold_left
                   (fun a (msg : Dsmsim.Comm.message) -> a + msg.words)
                   0 messages)
          | _ -> ())
        sched;
      (* layouts newly in force *)
      List.iter
        (fun (l : Distribution.layout) ->
          if l.first_phase = k then
            Format.fprintf ppf "! layout %a@," pp_layout l)
        plan.layouts;
      (* privatized arrays *)
      List.iter
        (fun (pk, a) ->
          if pk = k then
            Format.fprintf ppf "! %s privatized: each processor uses a local copy@," a)
        plan.privatized;
      Format.fprintf ppf "@[<v 2>subroutine phase_%s(me)@,%a@]@,end subroutine@,"
        ph.phase_name
        (fun ppf () -> pp_stmt plan k ppf (Ir.Types.Loop ph.nest))
        ();
      (* frontier updates leaving this phase *)
      List.iter
        (fun ev ->
          match ev with
          | Dsmsim.Comm.Frontier { array; after_phase; messages }
            when after_phase = k ->
              Format.fprintf ppf
                "call frontier_update_%s()   ! %d boundary puts, %d words@,"
                array (List.length messages)
                (List.fold_left
                   (fun a (msg : Dsmsim.Comm.message) -> a + msg.words)
                   0 messages)
          | _ -> ())
        sched;
      Format.fprintf ppf "@,")
    lcg.prog.phases;
  ignore m;
  Format.fprintf ppf "@]"

let generate lcg plan m = Format.asprintf "%a" pp (lcg, plan, m)
