type label = L | C | D

let equal_label a b =
  match (a, b) with L, L | C, C | D, D -> true | (L | C | D), _ -> false

let label_to_string = function L -> "L" | C -> "C" | D -> "D"
let pp_label ppf l = Format.pp_print_string ppf (label_to_string l)

open Ir.Liveness

let rows =
  [
    (R, R); (R, W); (R, RW); (R, P);
    (W, R); (W, W); (W, RW); (W, P);
    (RW, R); (RW, W); (RW, RW); (RW, P);
    (P, W); (P, RW); (P, P);
  ]

(* Each row: (overlap+balanced, overlap+unbalanced,
              no-overlap+balanced, no-overlap+unbalanced). *)
let table =
  [
    ((R, R), (L, C, L, C));
    ((R, W), (L, C, L, C));
    ((R, RW), (L, C, L, C));
    ((R, P), (D, D, D, D));
    ((W, R), (C, C, L, C));
    ((W, W), (C, C, L, C));
    ((W, RW), (C, C, L, C));
    ((W, P), (C, C, D, D));
    ((RW, R), (L, C, L, C));
    ((RW, W), (L, C, L, C));
    ((RW, RW), (L, C, L, C));
    ((RW, P), (D, D, D, D));
    ((P, W), (D, D, D, D));
    ((P, RW), (D, D, D, D));
    ((P, P), (D, D, D, D));
  ]

let spec ak ag ~overlap ~balanced =
  match
    List.find_opt (fun ((a, g), _) -> equal_attr a ak && equal_attr g ag) table
  with
  | None -> None
  | Some (_, (ob, ou, nb, nu)) ->
      Some
        (match (overlap, balanced) with
        | true, true -> ob
        | true, false -> ou
        | false, true -> nb
        | false, false -> nu)

let pp_grid ppf () =
  Format.fprintf ppf "%-12s | %-6s %-6s | %-6s %-6s@." "F_k - F_g" "Ov+Bal"
    "Ov+Unb" "No+Bal" "No+Unb";
  List.iter
    (fun (ak, ag) ->
      let cell overlap balanced =
        match spec ak ag ~overlap ~balanced with
        | None -> "-"
        | Some l -> label_to_string l
      in
      Format.fprintf ppf "%-12s | %-6s %-6s | %-6s %-6s@."
        (Printf.sprintf "%s - %s" (attr_to_string ak) (attr_to_string ag))
        (cell true true) (cell true false) (cell false true)
        (cell false false))
    rows
