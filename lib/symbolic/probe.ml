let samples = ref 64
let probe_state = ref (Random.State.make [| 0x5eed; 2024 |])

(* Artifact stores whose contents depend on the probe stream (this
   module's predicate memo, Range's bound memo, the symmetry and LCG
   stores) are created volatile: advancing the artifact generation
   whenever the stream is re-seeded flushes them lazily, so no cached
   answer derived under one seed survives into a run under another. *)
let with_seed seed f =
  let saved = !probe_state in
  probe_state := Random.State.make [| seed |];
  Artifact.new_generation ();
  Fun.protect
    ~finally:(fun () ->
      probe_state := saved;
      Artifact.new_generation ())
    f

(* The base state is never advanced by queries: every query (and every
   external sampling loop, via [sampler]) draws from its own fork.  A
   probe's answer therefore depends only on the seed policy and the
   question asked - never on how many other probes ran first - which is
   what lets the symbolic and enumerated accountings, whose probe
   traffic differs, still agree on every shared decision. *)
let sampler () =
  let st = Random.State.copy !probe_state in
  fun asm -> Assume.sample ~state:st asm

(* Bounded memo for the public predicates: probes are deterministic
   given the seed policy, and the analysis re-asks the same questions
   (stride comparisons, offset orders) thousands of times. *)
let memo : bool Artifact.store =
  Artifact.store ~capacity:200_000 ~volatile:true "probe.memo"

let memoized tag asm a b compute =
  Artifact.find memo
    Artifact.Key.(list [ int tag; Assume.key asm; expr a; expr b ])
    compute

let forall_count = Metrics.counter "probe.forall"

(* Evaluate [f] on [!samples] sampled environments; return [Some true]
   if the predicate holds everywhere, [Some false] if it fails
   somewhere, [None] if some evaluation raised. *)
let forall asm (f : Env.t -> bool) =
  Metrics.incr forall_count;
  let sample = sampler () in
  let ok = ref true in
  (try
     for _ = 1 to !samples do
       let env = sample asm in
       if not (f env) then ok := false
     done;
     ()
   with Expr.Non_integral _ | Env.Unbound _ | Division_by_zero | Qnum.Division_by_zero ->
     ok := false);
  !ok

let equal asm a b =
  Expr.equal a b
  || memoized 0 asm a b (fun () ->
         forall asm (fun env -> Qnum.equal (Env.eval_q env a) (Env.eval_q env b)))

let is_zero asm e = Expr.is_zero e || forall asm (fun env -> Qnum.is_zero (Env.eval_q env e))

let sign asm e =
  let signs = Hashtbl.create 3 in
  let ok =
    forall asm (fun env ->
        Hashtbl.replace signs (Qnum.sign (Env.eval_q env e)) ();
        true)
  in
  if not ok then None
  else
    match Hashtbl.fold (fun s () acc -> s :: acc) signs [] with
    | [ s ] -> Some s
    | _ -> None

let nonneg asm e =
  memoized 1 asm e Expr.zero (fun () ->
      forall asm (fun env -> Qnum.sign (Env.eval_q env e) >= 0))
let le asm a b = nonneg asm (Expr.sub b a)
let lt asm a b = forall asm (fun env -> Qnum.compare (Env.eval_q env a) (Env.eval_q env b) < 0)
let integral asm e =
  memoized 3 asm e Expr.zero (fun () ->
      forall asm (fun env -> Qnum.is_integer (Env.eval_q env e)))

let divides asm d e =
  memoized 2 asm d e (fun () ->
      forall asm (fun env ->
          let dv = Env.eval_q env d in
          (not (Qnum.is_zero dv))
          && Qnum.is_integer (Qnum.div (Env.eval_q env e) dv)))

let constant_in asm v e =
  if not (Expr.mem_var v e) then true
  else
    forall asm (fun env ->
        match Assume.range_in_env asm env v with
        | None -> false
        | Some (lo, hi) ->
            let value_at x = Expr.eval (fun w ->
                if String.equal w v then Qnum.of_int x else Env.lookup env w) e
            in
            let reference = value_at lo in
            let steps = min 4 (hi - lo) in
            let rec check k =
              k > steps
              || (Qnum.equal (value_at (lo + k)) reference && check (k + 1))
            in
            check 1)
