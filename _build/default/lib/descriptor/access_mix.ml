type t = { reads : bool; writes : bool }

let of_access = function
  | Ir.Types.Read -> { reads = true; writes = false }
  | Ir.Types.Write -> { reads = false; writes = true }

let join a b = { reads = a.reads || b.reads; writes = a.writes || b.writes }
let read_only t = t.reads && not t.writes
let write_only t = t.writes && not t.reads
let equal a b = a.reads = b.reads && a.writes = b.writes

let pp ppf t =
  Format.pp_print_string ppf
    (match (t.reads, t.writes) with
    | true, true -> "RW"
    | true, false -> "R"
    | false, true -> "W"
    | false, false -> "-")
