lib/descriptor/unionize.ml: Access_mix Coalesce Expr List Pd Probe String Symbolic
