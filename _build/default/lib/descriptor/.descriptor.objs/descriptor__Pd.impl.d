lib/descriptor/pd.ml: Access_mix Ard Expr Format Ir List Option Phase Printf Probe Symbolic
