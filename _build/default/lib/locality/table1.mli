(** The paper's Table 1 - the 15 x 4 edge-label classification -
    encoded verbatim as the executable specification.

    Columns: does phase F_k exhibit parallel-iteration overlapping
    storage, and does the balanced locality condition hold between F_k
    and F_g.  Cells: L (locality exploitable), C (communication
    required), D (un-coupled phases; the edge is later removed).

    {!Inter.derive} computes the same function from Theorems 1-2; the
    test suite checks the two agree on all 60 cells. *)

type label = L | C | D

val equal_label : label -> label -> bool
val label_to_string : label -> string
val pp_label : Format.formatter -> label -> unit

val rows : (Ir.Liveness.attr * Ir.Liveness.attr) list
(** The 15 attribute pairs of the table, in the paper's order. *)

val spec :
  Ir.Liveness.attr ->
  Ir.Liveness.attr ->
  overlap:bool ->
  balanced:bool ->
  label option
(** The table cell; [None] for the P-R pair the paper omits (a
    privatizable array is dead after the phase, so a following pure
    read cannot occur in a correct program). *)

val pp_grid : Format.formatter -> unit -> unit
(** Render the full 15 x 4 table in the paper's layout. *)
