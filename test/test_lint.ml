(* The lint catalog: a targeted negative test per LINT-* code (each
   code must fire on a minimal crafted program), golden expected-code
   sets for every registry benchmark, and the no-error guarantee the CI
   lint job enforces over the shipped samples. *)

open Symbolic
open Ir
module Diag = Core.Diag
module Lint = Core.Lint

let v = Expr.var

let prog ?(params = Assume.of_list [ ("N", Assume.Int_range (8, 24)) ])
    ?(arrays = []) nest =
  Build.program ~name:"t" ~params ~arrays [ Build.phase "P" nest ]

let codes findings =
  List.sort_uniq String.compare (List.map (fun (d : Diag.t) -> d.Diag.code) findings)

let has code findings = List.mem code (codes findings)

let check_has ?(racecheck = true) code p =
  let findings = Lint.check ~racecheck p in
  Alcotest.(check bool)
    (code ^ " fires")
    true (has code findings);
  findings

let severity_of code findings =
  (List.find (fun (d : Diag.t) -> d.Diag.code = code) findings).Diag.severity

(* ------------------------------------------------------------------ *)
(* One crafted program per code *)

let test_multi_parallel () =
  let p =
    prog
      ~arrays:[ Build.array "A" [ v "N"; v "N" ] ]
      Build.(
        doall "r" ~lo:(int 0) ~hi:(v "N" - int 1)
          [
            doall "c" ~lo:(int 0) ~hi:(v "N" - int 1)
              [ assign [ write "A" [ var "r"; var "c" ] ] ];
          ])
  in
  let p =
    (* the builder cannot produce this shape; force both loops parallel *)
    match p.Types.phases with
    | [ ph ] ->
        let rec force (l : Types.loop) =
          {
            l with
            Types.parallel = true;
            body =
              List.map
                (function
                  | Types.Loop l -> Types.Loop (force l) | s -> s)
                l.Types.body;
          }
        in
        { p with Types.phases = [ { ph with Types.nest = force ph.Types.nest } ] }
    | _ -> assert false
  in
  let f = check_has ~racecheck:false "LINT-MULTI-PARALLEL" p in
  Alcotest.(check bool)
    "error severity" true
    (severity_of "LINT-MULTI-PARALLEL" f = Diag.Error)

let test_undeclared_array () =
  let p =
    prog
      ~arrays:[ Build.array "A" [ v "N" ] ]
      Build.(
        doall "k" ~lo:(int 0) ~hi:(v "N" - int 1)
          [ assign [ read "A" [ var "k" ]; write "B" [ var "k" ] ] ])
  in
  ignore (check_has ~racecheck:false "LINT-UNDECLARED-ARRAY" p)

let test_rank_mismatch () =
  let p =
    prog
      ~arrays:[ Build.array "A" [ v "N"; v "N" ] ]
      Build.(
        doall "k" ~lo:(int 0) ~hi:(v "N" - int 1)
          [ assign [ write "A" [ var "k" ] ] ])
  in
  let f = check_has ~racecheck:false "LINT-SUBSCRIPT" p in
  Alcotest.(check bool)
    "rank mismatch is an error" true
    (severity_of "LINT-SUBSCRIPT" f = Diag.Error)

let test_nonaffine_subscript () =
  let p =
    prog
      ~arrays:[ Build.array "A" [ Expr.mul (v "N") (v "N") ] ]
      Build.(
        do_ "k" ~lo:(int 0) ~hi:(v "N" - int 1)
          [ assign [ write "A" [ var "k" * var "k" ] ] ])
  in
  let f = check_has ~racecheck:false "LINT-SUBSCRIPT" p in
  Alcotest.(check bool)
    "non-affine is a warning" true
    (severity_of "LINT-SUBSCRIPT" f = Diag.Warning)

let test_unbound_param () =
  let p =
    prog
      ~arrays:[ Build.array "A" [ v "N" ] ]
      Build.(
        do_ "k" ~lo:(int 0) ~hi:(v "M" - int 1)
          [ assign [ write "A" [ var "k" ] ] ])
  in
  ignore (check_has ~racecheck:false "LINT-UNBOUND-PARAM" p)

let test_nonnormal () =
  let p =
    prog
      ~arrays:[ Build.array "A" [ v "N" ] ]
      Build.(
        do_ "k" ~lo:(int 1) ~hi:(v "N" - int 1)
          [ assign [ write "A" [ var "k" ] ] ])
  in
  let f = check_has ~racecheck:false "LINT-NONNORMAL" p in
  Alcotest.(check bool)
    "info severity" true
    (severity_of "LINT-NONNORMAL" f = Diag.Info)

let test_bounds () =
  let p =
    prog
      ~arrays:[ Build.array "A" [ v "N" ] ]
      Build.(
        do_ "k" ~lo:(int 0) ~hi:(v "N" - int 1)
          [ assign [ write "A" [ var "k" + var "N" ] ] ])
  in
  ignore (check_has ~racecheck:false "LINT-BOUNDS" p)

let test_dead_write () =
  let p =
    prog
      ~arrays:[ Build.array "A" [ v "N" ]; Build.array "B" [ v "N" ] ]
      Build.(
        do_ "k" ~lo:(int 0) ~hi:(v "N" - int 1)
          [ assign [ read "A" [ var "k" ]; write "B" [ var "k" ] ] ])
  in
  let f = check_has ~racecheck:false "LINT-DEAD-WRITE" p in
  Alcotest.(check bool)
    "names the array" true
    (List.exists
       (fun (d : Diag.t) ->
         d.Diag.code = "LINT-DEAD-WRITE" && d.Diag.where = Some "B")
       f)

let test_race () =
  (* declared parallel, but every iteration writes A(0) *)
  let p =
    prog
      ~arrays:[ Build.array "A" [ v "N" ] ]
      Build.(
        doall "k" ~lo:(int 0) ~hi:(v "N" - int 1)
          [ assign [ write "A" [ int 0 ] ] ])
  in
  let f = check_has "LINT-RACE" p in
  Alcotest.(check bool)
    "error severity" true
    (severity_of "LINT-RACE" f = Diag.Error)

let test_uncertified () =
  (* k*k is injective on 0..N-1, so sampling finds no conflict, but the
     descriptor degrades to the whole array: statically undecidable *)
  let p =
    prog
      ~arrays:[ Build.array "A" [ Expr.mul (v "N") (v "N") ] ]
      Build.(
        doall "k" ~lo:(int 0) ~hi:(v "N" - int 1)
          [ assign [ write "A" [ var "k" * var "k" ] ] ])
  in
  let f = check_has "LINT-UNCERTIFIED" p in
  Alcotest.(check bool)
    "info severity" true
    (severity_of "LINT-UNCERTIFIED" f = Diag.Info)

let test_symbolic_fallback () =
  (* emitted by the pipeline rather than a lint rule: an analysis step
     that leaves the closed-form symbolic fragment falls back to
     address enumeration and the run records the count *)
  let e = Codes.Registry.find "tfft2" in
  let t =
    Core.Pipeline.run e.program ~env:(e.env_of_size e.default_size) ~h:4
  in
  let f = Core.Pipeline.diagnostics t in
  Alcotest.(check bool)
    "LINT-SYMBOLIC-FALLBACK fires" true
    (has "LINT-SYMBOLIC-FALLBACK" f);
  Alcotest.(check bool)
    "info severity" true
    (severity_of "LINT-SYMBOLIC-FALLBACK" f = Diag.Info)

let test_catalog_covered () =
  (* every cataloged code has a negative test in this file *)
  let tested =
    [
      "LINT-MULTI-PARALLEL";
      "LINT-UNDECLARED-ARRAY";
      "LINT-SUBSCRIPT";
      "LINT-UNBOUND-PARAM";
      "LINT-NONNORMAL";
      "LINT-BOUNDS";
      "LINT-DEAD-WRITE";
      "LINT-RACE";
      "LINT-UNCERTIFIED";
      "LINT-SYMBOLIC-FALLBACK";
    ]
  in
  List.iter
    (fun (code, _, _) ->
      Alcotest.(check bool) (code ^ " has a test") true (List.mem code tested))
    Lint.catalog

(* ------------------------------------------------------------------ *)
(* Golden expected-code sets over the registry *)

let golden =
  [
    ("tfft2", [ "LINT-NONNORMAL"; "LINT-SUBSCRIPT"; "LINT-UNCERTIFIED" ]);
    ("jacobi2d", [ "LINT-NONNORMAL" ]);
    ("swim", [ "LINT-NONNORMAL" ]);
    ("tomcatv", [ "LINT-NONNORMAL" ]);
    ("matmul", []);
    (* congruence separation in Racecheck certifies ADI's row sweep,
       so it no longer carries LINT-UNCERTIFIED *)
    ("adi", [ "LINT-NONNORMAL" ]);
    ("redblack", [ "LINT-NONNORMAL" ]);
    ("trisolve", []);
    ("mgrid", [ "LINT-NONNORMAL" ]);
  ]

let test_registry_golden () =
  Alcotest.(check (list string))
    "golden covers the whole registry" Codes.Registry.names
    (List.map fst golden);
  List.iter
    (fun (name, expected) ->
      let e = Codes.Registry.find name in
      Alcotest.(check (list string))
        (name ^ " lint codes")
        expected
        (codes (Lint.check e.program)))
    golden

let test_registry_no_errors () =
  (* the property the CI lint job enforces: benchmarks never produce
     error-severity findings *)
  List.iter
    (fun (e : Codes.Registry.entry) ->
      List.iter
        (fun (d : Diag.t) ->
          if d.Diag.severity = Diag.Error then
            Alcotest.failf "%s: unexpected lint error %s (%s)" e.name
              d.Diag.code d.Diag.message)
        (Lint.check e.program))
    Codes.Registry.all

(* Every shipped surface-language sample lints without errors. *)
let sample_dir () =
  let rec up dir =
    let candidate = Filename.concat dir "examples/programs" in
    if Sys.file_exists candidate then candidate
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then failwith "examples/programs not found"
      else up parent
  in
  up (Sys.getcwd ())

let test_samples_no_errors () =
  let dir = sample_dir () in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".dsm")
    |> List.sort String.compare
  in
  Alcotest.(check bool) "found samples" true (files <> []);
  List.iter
    (fun f ->
      let p = Frontend.Parse.program_file (Filename.concat dir f) in
      List.iter
        (fun (d : Diag.t) ->
          if d.Diag.severity = Diag.Error then
            Alcotest.failf "%s: unexpected lint error %s (%s)" f d.Diag.code
              d.Diag.message)
        (Lint.check p))
    files

(* ------------------------------------------------------------------ *)
(* Pipeline and autopar wiring *)

let test_pipeline_records_lint () =
  let p =
    prog
      ~arrays:[ Build.array "A" [ v "N" ] ]
      Build.(
        do_ "k" ~lo:(int 1) ~hi:(v "N" - int 1)
          [ assign [ write "A" [ var "k" ] ] ])
  in
  let t = Core.Pipeline.run p ~env:(Env.of_list [ ("N", 16) ]) ~h:4 in
  Alcotest.(check bool)
    "LINT-NONNORMAL in pipeline diagnostics" true
    (List.exists
       (fun (d : Diag.t) -> d.Diag.code = "LINT-NONNORMAL")
       (Core.Pipeline.diagnostics t))

let test_pipeline_strict_refuses () =
  let p =
    prog
      ~arrays:[ Build.array "A" [ v "N" ] ]
      Build.(
        doall "k" ~lo:(int 0) ~hi:(v "N" - int 1)
          [ assign [ write "A" [ int 0 ] ] ])
  in
  let env = Env.of_list [ ("N", 16) ] in
  (match Core.Pipeline.run ~strict:true p ~env ~h:4 with
  | _ -> Alcotest.fail "strict run accepted a racy program"
  | exception Lint.Failed findings ->
      Alcotest.(check bool) "carries LINT-RACE" true (has "LINT-RACE" findings));
  (* non-strict: the same program still analyzes (degraded) *)
  let t = Core.Pipeline.run p ~env ~h:4 in
  Alcotest.(check bool) "degraded, not crashed" true (Core.Pipeline.degraded t)

let test_autopar_no_mismatch_diags () =
  List.iter
    (fun (e : Codes.Registry.entry) ->
      let c = Diag.collector () in
      let marked = Lint.autopar ~diags:c e.program in
      Alcotest.(check int)
        (e.name ^ ": no RACE-ORACLE-MISMATCH")
        0 (Diag.count c);
      Alcotest.(check int)
        (e.name ^ ": phase count preserved (modulo reduction splits)")
        (List.length (Autopar.recognize_reductions e.program).Types.phases)
        (List.length marked.Types.phases))
    Codes.Registry.all

let () =
  Alcotest.run "lint"
    [
      ( "catalog",
        [
          Alcotest.test_case "multi-parallel" `Quick test_multi_parallel;
          Alcotest.test_case "undeclared array" `Quick test_undeclared_array;
          Alcotest.test_case "rank mismatch" `Quick test_rank_mismatch;
          Alcotest.test_case "non-affine subscript" `Quick
            test_nonaffine_subscript;
          Alcotest.test_case "unbound param" `Quick test_unbound_param;
          Alcotest.test_case "non-normalized loop" `Quick test_nonnormal;
          Alcotest.test_case "out of bounds" `Quick test_bounds;
          Alcotest.test_case "dead write" `Quick test_dead_write;
          Alcotest.test_case "race" `Quick test_race;
          Alcotest.test_case "uncertified" `Quick test_uncertified;
          Alcotest.test_case "symbolic fallback" `Quick test_symbolic_fallback;
          Alcotest.test_case "catalog covered" `Quick test_catalog_covered;
        ] );
      ( "golden",
        [
          Alcotest.test_case "registry code sets" `Quick test_registry_golden;
          Alcotest.test_case "registry has no errors" `Quick
            test_registry_no_errors;
          Alcotest.test_case "samples have no errors" `Quick
            test_samples_no_errors;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "pipeline records lint" `Quick
            test_pipeline_records_lint;
          Alcotest.test_case "strict pipeline refuses" `Quick
            test_pipeline_strict_refuses;
          Alcotest.test_case "autopar mismatch-free" `Quick
            test_autopar_no_mismatch_diags;
        ] );
    ]
