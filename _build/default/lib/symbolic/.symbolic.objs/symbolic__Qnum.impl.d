lib/symbolic/qnum.ml: Format Printf Stdlib
