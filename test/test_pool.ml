(* Tests for the forked worker pool behind `dsmloc batch`: submission-
   order determinism whatever the worker count, crash isolation with a
   one-retry budget, and fleet metrics merging (counter totals equal
   the sum of the per-job worker snapshots). *)

module P = Core.Pool
module M = Core.Metrics

(* Worker body shared by the determinism tests: full pipeline on a
   registry kernel, rendered to the same report the CLI prints. *)
let analyze ~attempt:_ name =
  let e = Codes.Registry.find name in
  let env = e.env_of_size (min e.default_size 4) in
  let t = Core.Pipeline.run e.program ~env ~h:4 in
  Format.asprintf "%a" Core.Pipeline.report t

let reports_of outcomes =
  List.map
    (function
      | P.Done d -> (d.value : string)
      | P.Failed { reasons; _ } ->
          Alcotest.failf "job failed: %s" (String.concat "; " reasons))
    outcomes

(* counter total over the per-job snapshots, for cross-checking the
   pool's own merge *)
let summed name outcomes =
  List.fold_left
    (fun acc -> function
      | P.Done d -> (
          acc + try List.assoc name d.metrics.M.counters with Not_found -> 0)
      | P.Failed _ -> acc)
    0 outcomes

let prop_batch_deterministic =
  QCheck.Test.make ~name:"shuffled batch: 1/2/4 workers byte-identical"
    ~count:3
    QCheck.(
      make ~print:(fun l -> String.concat "," l)
        Gen.(
          let* names = shuffle_l Codes.Registry.names in
          let* k = int_range 1 3 in
          return (List.filteri (fun i _ -> i < k) names)))
    (fun names ->
      let runs =
        List.map
          (fun workers ->
            let outcomes, merged = P.map ~workers ~f:analyze names in
            (reports_of outcomes, merged, outcomes))
          [ 1; 2; 4 ]
      in
      let reports1, merged1, outcomes1 = List.hd runs in
      List.iter
        (fun (reports, merged, _) ->
          if reports <> reports1 then
            QCheck.Test.fail_report "reports differ across worker counts";
          if
            List.sort compare merged.M.counters
            <> List.sort compare merged1.M.counters
          then QCheck.Test.fail_report "merged counters differ")
        (List.tl runs);
      (* merged counter totals = sum of the per-job snapshots *)
      List.for_all
        (fun (name, total) -> total = summed name outcomes1)
        merged1.M.counters)

(* ------------------------------------------------------------------ *)
(* Crash isolation and the retry budget *)

let test_crash_retried () =
  (* job 2's first attempt dies by SIGKILL mid-job; the retry on a
     fresh worker succeeds and every other job is untouched *)
  let f ~attempt j =
    if j = 2 && attempt = 1 then Unix.kill (Unix.getpid ()) Sys.sigkill;
    j * j
  in
  let outcomes, _ = P.map ~workers:2 ~f [ 0; 1; 2; 3 ] in
  List.iteri
    (fun j outcome ->
      match outcome with
      | P.Done d ->
          Alcotest.(check int) (Printf.sprintf "job %d value" j) (j * j)
            d.value;
          if j = 2 then begin
            Alcotest.(check int) "crashed job took two attempts" 2 d.attempts;
            Alcotest.(check int) "one lost attempt on record" 1
              (List.length d.lost)
          end
          else Alcotest.(check int) "clean job: one attempt" 1 d.attempts
      | P.Failed _ -> Alcotest.failf "job %d should have been retried" j)
    outcomes

let test_crash_budget_exhausted () =
  (* a job that dies on every attempt is Failed after 1 + retries
     attempts; the rest of the batch still completes *)
  let f ~attempt:_ j =
    if j = 1 then Unix.kill (Unix.getpid ()) Sys.sigkill;
    j + 10
  in
  let outcomes, _ = P.map ~workers:2 ~retries:1 ~f [ 0; 1; 2 ] in
  (match List.nth outcomes 1 with
  | P.Failed { attempts; reasons } ->
      Alcotest.(check int) "two attempts spent" 2 attempts;
      Alcotest.(check int) "a reason per attempt" 2 (List.length reasons)
  | P.Done _ -> Alcotest.fail "always-crashing job cannot succeed");
  List.iter
    (fun j ->
      match List.nth outcomes j with
      | P.Done d -> Alcotest.(check int) "survivor" (j + 10) d.value
      | P.Failed _ -> Alcotest.failf "job %d lost to a sibling crash" j)
    [ 0; 2 ]

let test_exception_isolated () =
  (* an uncaught exception fails the job without killing the worker;
     with retries:0 it is Failed on the spot *)
  let f ~attempt:_ j = if j = 0 then failwith "boom" else j in
  let outcomes, _ = P.map ~workers:1 ~retries:0 ~f [ 0; 1 ] in
  (match List.hd outcomes with
  | P.Failed { attempts; reasons } ->
      Alcotest.(check int) "single attempt" 1 attempts;
      Alcotest.(check bool) "exception text captured" true
        (List.exists
           (fun r ->
             let n = String.length r in
             let rec go k =
               k + 4 <= n && (String.sub r k 4 = "boom" || go (k + 1))
             in
             go 0)
           reasons)
  | P.Done _ -> Alcotest.fail "raising job cannot succeed");
  match List.nth outcomes 1 with
  | P.Done d -> Alcotest.(check int) "same worker finished the rest" 1 d.value
  | P.Failed _ -> Alcotest.fail "healthy job lost"

let test_stream_order () =
  (* the stream callback fires in submission order even though later
     jobs finish first on a wide pool *)
  let f ~attempt:_ j =
    if j = 0 then Unix.sleepf 0.05;
    j
  in
  let seen = ref [] in
  let outcomes, _ =
    P.map ~workers:4
      ~stream:(fun i _ -> seen := i :: !seen)
      ~f [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "stream in submission order" [ 0; 1; 2; 3 ]
    (List.rev !seen);
  Alcotest.(check int) "all outcomes" 4 (List.length outcomes)

let test_empty_and_single () =
  let f ~attempt:_ j = j * 2 in
  let outcomes, merged = P.map ~workers:4 ~f [] in
  Alcotest.(check int) "empty batch" 0 (List.length outcomes);
  Alcotest.(check int) "empty merge" 0 (List.length merged.M.counters);
  let outcomes, _ = P.map ~workers:8 ~f [ 21 ] in
  match outcomes with
  | [ P.Done d ] -> Alcotest.(check int) "single job" 42 d.value
  | _ -> Alcotest.fail "one job, one outcome"

let () =
  Alcotest.run "pool"
    [
      ( "determinism",
        [ QCheck_alcotest.to_alcotest prop_batch_deterministic ] );
      ( "crash-isolation",
        [
          Alcotest.test_case "crash retried once" `Quick test_crash_retried;
          Alcotest.test_case "budget exhausted" `Quick
            test_crash_budget_exhausted;
          Alcotest.test_case "exception isolated" `Quick
            test_exception_isolated;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "stream order" `Quick test_stream_order;
          Alcotest.test_case "empty and single" `Quick test_empty_and_single;
        ] );
    ]
