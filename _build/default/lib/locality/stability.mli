(** Compile-time label stability.

    The LCG is built for one concrete parameter environment and
    processor count, but a compiler wants labels that hold for the
    deployment range: this module rebuilds the LCG under sampled
    parameter environments and a list of candidate processor counts and
    reports, per edge, whether its label is invariant - and if not,
    how it moves (typically L at small H degrading to C when the
    load-balance bounds squeeze the balanced solutions out, as in the
    paper's Eqs. 4-6 discussion). *)

open Symbolic

type edge_report = {
  array : string;
  src : string;
  dst : string;
  labels : (int * Table1.label list) list;
      (** per H: the labels seen across the sampled environments *)
  stable : Table1.label option;
      (** the label when it is the same everywhere *)
}

type t = edge_report list

val analyze :
  ?samples:int -> ?h_values:int list -> Ir.Types.program -> t
(** Default: 3 sampled environments, H in [2; 4; 8; 16; 32; 64]. *)

val all_stable : t -> bool
val pp : Format.formatter -> t -> unit
val sample_envs : ?samples:int -> Ir.Types.program -> Env.t list
