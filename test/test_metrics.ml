(* Unit tests for the Core.Metrics registry: interning, counters,
   reentrancy-safe timers, cache statistics, reset semantics, and the
   hand-rolled JSON emitter (validated by a small recursive-descent
   JSON syntax checker, since the project deliberately has no JSON
   dependency). *)

module M = Core.Metrics

(* ------------------------------------------------------------------ *)
(* A minimal RFC 8259 syntax checker. *)

let json_valid (s : string) : bool =
  let n = String.length s in
  let pos = ref 0 in
  let fail () = raise Exit in
  let peek () = if !pos >= n then fail () else s.[!pos] in
  let advance () = incr pos in
  let rec skip_ws () =
    if
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    then begin
      advance ();
      skip_ws ()
    end
  in
  let expect c = if peek () <> c then fail () else advance () in
  let digits () =
    let k = ref 0 in
    while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
      advance ();
      incr k
    done;
    if !k = 0 then fail ()
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> advance ()
          | 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> advance ()
                | _ -> fail ()
              done
          | _ -> fail ());
          go ()
      | c when Char.code c < 0x20 -> fail ()
      | _ ->
          advance ();
          go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> string_lit ()
    | 't' -> String.iter expect "true"
    | 'f' -> String.iter expect "false"
    | 'n' -> String.iter expect "null"
    | '-' | '0' .. '9' ->
        if peek () = '-' then advance ();
        (* leading zeros are forbidden: int part is 0 or [1-9][0-9]* *)
        (match peek () with
        | '0' -> (
            advance ();
            match if !pos < n then Some s.[!pos] else None with
            | Some '0' .. '9' -> fail ()
            | _ -> ())
        | '1' .. '9' -> digits ()
        | _ -> fail ());
        if !pos < n && s.[!pos] = '.' then begin
          advance ();
          digits ()
        end;
        if !pos < n && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
          advance ();
          if !pos < n && (s.[!pos] = '+' || s.[!pos] = '-') then advance ();
          digits ()
        end
    | _ -> fail ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            members ()
        | '}' -> advance ()
        | _ -> fail ()
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then advance ()
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            elems ()
        | ']' -> advance ()
        | _ -> fail ()
      in
      elems ()
  in
  try
    value ();
    skip_ws ();
    !pos = n
  with Exit -> false

let test_json_checker () =
  List.iter
    (fun (ok, s) ->
      Alcotest.(check bool) (Printf.sprintf "%S" s) ok (json_valid s))
    [
      (true, "{}");
      (true, "[1, 2.5, -3e4, \"a\\nb\", null, true, [], {\"k\":false}]");
      (true, "{\"a\":{\"b\":[0.25]}}");
      (false, "{");
      (false, "{\"a\":}");
      (false, "[1,]");
      (false, "01");
      (false, "1.");
      (false, "\"unterminated");
      (false, "{} trailing");
      (false, "nul");
    ]

(* ------------------------------------------------------------------ *)
(* Registry semantics.  Cell names are test-local ("t.*") so the suite
   never collides with the cells the library itself registers. *)

let test_interning () =
  let a = M.counter "t.interned" in
  let b = M.counter "t.interned" in
  M.incr a;
  M.incr b ~by:4;
  let snap = M.snapshot () in
  Alcotest.(check int) "one cell, shared count" 5
    (List.assoc "t.interned" snap.counters)

let test_kind_mismatch () =
  ignore (M.counter "t.kinded");
  Alcotest.check_raises "timer over counter name"
    (Invalid_argument "Metrics: cell kind mismatch for t.kinded") (fun () ->
      ignore (M.timer "t.kinded"))

let test_timer_basic () =
  let t = M.timer "t.timer" in
  let r = M.with_timer t (fun () -> 41 + 1) in
  Alcotest.(check int) "value returned" 42 r;
  M.add_time t 0.5;
  let snap = M.snapshot () in
  let calls, secs = List.assoc "t.timer" snap.timers in
  Alcotest.(check int) "two calls" 2 calls;
  Alcotest.(check bool) "external time recorded" true (secs >= 0.5)

let test_timer_reentrant () =
  let t = M.timer "t.reentrant" in
  (* burn measurable wall time in the inner frame only *)
  let burn () =
    let x = ref 0.0 in
    for k = 1 to 2_000_000 do
      x := !x +. float_of_int k
    done;
    !x
  in
  let t0 = M.now () in
  let _ = M.with_timer t (fun () -> M.with_timer t burn) in
  let elapsed = M.now () -. t0 in
  let snap = M.snapshot () in
  let calls, secs = List.assoc "t.reentrant" snap.timers in
  Alcotest.(check int) "both frames counted as calls" 2 calls;
  (* double-billing would record ~2x the elapsed wall time *)
  Alcotest.(check bool)
    (Printf.sprintf "no double-billing (recorded %.4fs, elapsed %.4fs)" secs
       elapsed)
    true
    (secs <= (elapsed *. 1.5) +. 0.01)

let test_timer_exception () =
  let t = M.timer "t.raises" in
  (try M.with_timer t (fun () -> failwith "boom") with Failure _ -> ());
  let snap = M.snapshot () in
  let calls, _ = List.assoc "t.raises" snap.timers in
  Alcotest.(check int) "failed call still counted" 1 calls

let test_cache_stats () =
  let c = M.cache "t.cache" in
  Alcotest.(check (float 1e-9)) "empty rate" 0.0 (M.hit_rate c);
  M.hit c;
  M.hit c;
  M.hit c;
  M.miss c;
  Alcotest.(check int) "lookups" 4 (M.lookups c);
  Alcotest.(check (float 1e-9)) "rate 3/4" 0.75 (M.hit_rate c)

let test_histogram () =
  let h = M.histogram "t.hist" in
  List.iter (M.observe h) [ 4.0; 1.0; 7.0 ];
  let snap = M.snapshot () in
  let n, sum, min_v, max_v = List.assoc "t.hist" snap.histograms in
  Alcotest.(check int) "n" 3 n;
  Alcotest.(check (float 1e-9)) "sum" 12.0 sum;
  Alcotest.(check (float 1e-9)) "min" 1.0 min_v;
  Alcotest.(check (float 1e-9)) "max" 7.0 max_v

let test_reset () =
  let c = M.counter "t.resettable" in
  M.incr c ~by:9;
  M.reset ();
  let snap = M.snapshot () in
  Alcotest.(check int) "zeroed" 0 (List.assoc "t.resettable" snap.counters);
  Alcotest.(check bool) "registration survives" true
    (List.mem_assoc "t.resettable" snap.counters)

let test_clearers () =
  (* every store self-registers, so a global clear empties this one *)
  let store : int Core.Artifact.store = Core.Artifact.store "t.artifact" in
  let k = Core.Artifact.Key.int 1 in
  Alcotest.(check int) "computed" 7 (Core.Artifact.find store k (fun () -> 7));
  Alcotest.(check int) "cached" 7 (Core.Artifact.find store k (fun () -> 8));
  Core.Artifact.clear_all ();
  Alcotest.(check int) "flushed by clear_all" 9
    (Core.Artifact.find store k (fun () -> 9))

(* ------------------------------------------------------------------ *)
(* JSON emission *)

let test_json_primitives () =
  Alcotest.(check string) "nan" "null" (M.json_float Float.nan);
  Alcotest.(check string) "inf" "null" (M.json_float Float.infinity);
  Alcotest.(check string) "integral" "3" (M.json_float 3.0);
  Alcotest.(check bool) "fraction parses" true
    (json_valid (M.json_float 0.12345));
  Alcotest.(check string) "escapes" "a\\\"b\\\\c\\n" (M.json_escape "a\"b\\c\n")

let test_snapshot_json_valid () =
  (* exercise one cell of every kind, then validate the whole document
     (which also contains all the library's own cells) *)
  M.incr (M.counter "t.json-counter");
  M.add_time (M.timer "t.json-timer") 0.25;
  M.observe (M.histogram "t.json-hist") 2.0;
  M.hit (M.cache "t.json-cache");
  let doc = M.to_json (M.snapshot ()) in
  Alcotest.(check bool) "valid JSON" true (json_valid doc);
  let contains needle hay =
    let nh = String.length hay and nn = String.length needle in
    let rec go k = k + nn <= nh && (String.sub hay k nn = needle || go (k + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains needle doc))
    [ "t.json-counter"; "t.json-timer"; "t.json-hist"; "t.json-cache";
      "hit_rate" ]

(* ------------------------------------------------------------------ *)
(* Parsing and merging: the worker side of the batch pool serialises
   snapshots with [to_json]; the parent parses them back with [of_json]
   and folds them with [merge]. *)

let test_json_roundtrip () =
  let snap =
    {
      M.counters = [ ("r.c", 7); ("r.zero", 0) ];
      timers = [ ("r.t", (3, 0.625)) ];
      histograms =
        [ ("r.h", (2, 9.5, 1.25, 8.25)); ("r.empty", (0, 0.0, 0.0, 0.0)) ];
      caches = [ ("r.$", (5, 2)) ];
    }
  in
  let doc = M.to_json snap in
  Alcotest.(check bool) "emitter output valid" true (json_valid doc);
  let back = M.of_json doc in
  Alcotest.(check int) "counter" 7 (List.assoc "r.c" back.counters);
  Alcotest.(check int) "zero counter kept" 0
    (List.assoc "r.zero" back.counters);
  let calls, secs = List.assoc "r.t" back.timers in
  Alcotest.(check int) "timer calls" 3 calls;
  Alcotest.(check (float 1e-9)) "timer seconds" 0.625 secs;
  let n, sum, mn, mx = List.assoc "r.h" back.histograms in
  Alcotest.(check int) "hist n" 2 n;
  Alcotest.(check (float 1e-9)) "hist sum" 9.5 sum;
  Alcotest.(check (float 1e-9)) "hist min" 1.25 mn;
  Alcotest.(check (float 1e-9)) "hist max" 8.25 mx;
  Alcotest.(check (pair int int)) "cache" (5, 2) (List.assoc "r.$" back.caches)

let test_of_json_rejects () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "%S rejected" s) true
        (match M.of_json s with
        | _ -> false
        | exception M.Parse_error _ -> true))
    [ ""; "{"; "[]"; "{\"counters\":[1]}"; "{\"counters\":{\"x\":}}";
      "{} trailing" ]

let test_merge_sums () =
  let a =
    {
      M.counters = [ ("m.x", 2); ("m.only-a", 1) ];
      timers = [ ("m.t", (1, 0.5)) ];
      histograms = [ ("m.h", (2, 6.0, 1.0, 5.0)) ];
      caches = [ ("m.$", (3, 1)) ];
    }
  in
  let b =
    {
      M.counters = [ ("m.x", 5); ("m.only-b", 4) ];
      timers = [ ("m.t", (2, 0.25)) ];
      histograms = [ ("m.h", (1, 9.0, 9.0, 9.0)) ];
      caches = [ ("m.$", (1, 6)) ];
    }
  in
  let m = M.merge a b in
  Alcotest.(check int) "shared counter sums" 7 (List.assoc "m.x" m.counters);
  Alcotest.(check int) "a-only kept" 1 (List.assoc "m.only-a" m.counters);
  Alcotest.(check int) "b-only kept" 4 (List.assoc "m.only-b" m.counters);
  let calls, secs = List.assoc "m.t" m.timers in
  Alcotest.(check int) "timer calls add" 3 calls;
  Alcotest.(check (float 1e-9)) "timer seconds add" 0.75 secs;
  let n, sum, mn, mx = List.assoc "m.h" m.histograms in
  Alcotest.(check int) "hist n adds" 3 n;
  Alcotest.(check (float 1e-9)) "hist sum adds" 15.0 sum;
  Alcotest.(check (float 1e-9)) "hist min" 1.0 mn;
  Alcotest.(check (float 1e-9)) "hist max" 9.0 mx;
  Alcotest.(check (pair int int)) "cache adds" (4, 7)
    (List.assoc "m.$" m.caches);
  (* identity: merging with the empty snapshot changes nothing *)
  let empty = { M.counters = []; timers = []; histograms = []; caches = [] } in
  Alcotest.(check int) "left identity" 7
    (List.assoc "m.x" (M.merge empty m).counters);
  Alcotest.(check int) "right identity" 7
    (List.assoc "m.x" (M.merge m empty).counters)

let test_absorb () =
  let snap =
    {
      M.counters = [ ("ab.c", 11) ];
      timers = [ ("ab.t", (2, 0.125)) ];
      histograms = [];
      caches = [ ("ab.$", (2, 3)) ];
    }
  in
  M.incr (M.counter "ab.c") ~by:4;
  M.absorb snap;
  let live = M.snapshot () in
  Alcotest.(check int) "absorbed into live cell" 15
    (List.assoc "ab.c" live.counters);
  let calls, secs = List.assoc "ab.t" live.timers in
  Alcotest.(check int) "timer created" 2 calls;
  Alcotest.(check (float 1e-9)) "timer seconds" 0.125 secs;
  Alcotest.(check (pair int int)) "cache created" (2, 3)
    (List.assoc "ab.$" live.caches)

(* The pipeline's own instrumentation: after one run on a registry code
   the stage timers have fired and the kernel caches have real hits -
   the acceptance bar for the --profile surface. *)
let test_pipeline_populates_registry () =
  M.reset ();
  Core.Artifact.clear_all ();
  let e = Codes.Registry.find "tfft2" in
  let env = e.env_of_size e.default_size in
  let t = Core.Pipeline.run e.program ~env ~h:4 in
  ignore (Core.Pipeline.simulate t);
  (* a second run over the same environment exercises the warm path of
     every memo keyed on Env.id, region.addresses included *)
  ignore (Core.Pipeline.run e.program ~env ~h:4);
  let snap = M.snapshot () in
  List.iter
    (fun name ->
      let calls, _ = List.assoc name snap.timers in
      Alcotest.(check bool) (name ^ " fired") true (calls > 0))
    [
      "pipeline.run"; "pipeline.lcg"; "pipeline.model"; "pipeline.solve";
      "pipeline.plan"; "lcg.build"; "lcg.classify"; "ilp.solve";
      "dsmsim.exec"; "descriptor.coalesce"; "descriptor.unionize";
    ];
  List.iter
    (fun name ->
      let hits, _ = List.assoc name snap.caches in
      Alcotest.(check bool) (name ^ " has hits") true (hits > 0))
    (* region.addresses no longer warms on the default (symbolic) path:
       event shapes answer what enumeration used to *)
    [ "env.eval"; "probe.memo"; "phase.analyze"; "shape.sites" ];
  Alcotest.(check bool) "edges classified" true
    (List.assoc "table1.edges" snap.counters > 0);
  Alcotest.(check bool) "messages simulated" true
    (List.assoc "exec.messages" snap.counters > 0);
  Alcotest.(check bool) "json valid" true (json_valid (M.to_json snap))

(* Cache effectiveness: a warm re-analysis must actually be answered
   from the artifact stores - nonzero entries, and a strictly positive
   fleet-wide hit count once the same kernel runs twice.  This is the
   test-level mirror of the CI cache-smoke assertion on the registry
   sweep. *)
let test_warm_run_hits_artifact_stores () =
  M.reset ();
  Core.Artifact.clear_all ();
  let e = Codes.Registry.find "jacobi2d" in
  let env = e.env_of_size e.default_size in
  ignore (Core.Pipeline.run e.program ~env ~h:4);
  ignore (Core.Pipeline.run e.program ~env ~h:4);
  let stats = Core.Artifact.stats () in
  let total_hits =
    List.fold_left (fun acc s -> acc + s.Core.Artifact.hits) 0 stats
  in
  let total_entries =
    List.fold_left (fun acc s -> acc + s.Core.Artifact.entries) 0 stats
  in
  Alcotest.(check bool) "stores populated" true (total_entries > 0);
  Alcotest.(check bool) "warm run hit the stores" true (total_hits > 0);
  (* and the --cache-stats rendering covers every registered store *)
  let report = Core.Artifact.report () in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Core.Artifact.s_name ^ " in report")
        true
        (contains report s.Core.Artifact.s_name))
    stats

let () =
  Alcotest.run "metrics"
    [
      ( "json-checker",
        [ Alcotest.test_case "accepts/rejects" `Quick test_json_checker ] );
      ( "registry",
        [
          Alcotest.test_case "interning" `Quick test_interning;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "timer basics" `Quick test_timer_basic;
          Alcotest.test_case "timer reentrancy" `Quick test_timer_reentrant;
          Alcotest.test_case "timer exception" `Quick test_timer_exception;
          Alcotest.test_case "cache stats" `Quick test_cache_stats;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "reset" `Quick test_reset;
          Alcotest.test_case "clearers" `Quick test_clearers;
          Alcotest.test_case "warm artifact hits" `Quick
            test_warm_run_hits_artifact_stores;
        ] );
      ( "json",
        [
          Alcotest.test_case "primitives" `Quick test_json_primitives;
          Alcotest.test_case "snapshot document" `Quick
            test_snapshot_json_valid;
          Alcotest.test_case "of_json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "of_json rejects" `Quick test_of_json_rejects;
        ] );
      ( "merge",
        [
          Alcotest.test_case "merge sums" `Quick test_merge_sums;
          Alcotest.test_case "absorb" `Quick test_absorb;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "instrumentation populates registry" `Quick
            test_pipeline_populates_registry;
        ] );
    ]
