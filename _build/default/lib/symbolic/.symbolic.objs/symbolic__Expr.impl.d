lib/symbolic/expr.ml: Format Hashtbl List Qnum Stdlib String
