(* Property layer guarding the descriptor algebra and the pipeline.

   Every algebraic operation (stride coalescing, row union, full
   simplification, offset adjustment, homogenization) is checked
   against the brute-force enumeration oracle (Ir.Enumerate expands the
   loop nest reference by reference), on randomly generated affine
   nests.  Two meta-properties pin the new memoization layer: results
   are identical cold (caches flushed) and warm, and the whole pipeline
   is deterministic - running it twice under the same probe seed yields
   byte-identical reports.  Finally parse/unparse is a structural
   round trip. *)

open Symbolic
open Ir
open Descriptor

let count = 200

(* ------------------------------------------------------------------ *)
(* Generators: constant-bound affine nests (always rectangular, so the
   descriptor expansion is defined and the oracle is exact). *)

let i = Expr.int
let v = Expr.var

let gen_affine_program =
  let open QCheck.Gen in
  let* depth = int_range 1 3 in
  let* bounds = list_repeat depth (int_range 2 5) in
  let* coeffs = list_repeat depth (int_range 0 7) in
  let* offset = int_range 0 10 in
  let* second_ref = bool in
  let* shift = int_range 0 9 in
  let* with_write = bool in
  let vars = List.mapi (fun k _ -> Printf.sprintf "v%d" k) bounds in
  let subscript extra =
    List.fold_left2
      (fun acc vn c -> Expr.add acc (Expr.mul (i c) (v vn)))
      (i (offset + extra))
      vars coeffs
  in
  let refs =
    (if second_ref then
       [ Build.read "A" [ subscript 0 ]; Build.read "A" [ subscript shift ] ]
     else [ Build.read "A" [ subscript 0 ] ])
    @ if with_write then [ Build.write "A" [ subscript 0 ] ] else []
  in
  let body = [ Build.assign refs ] in
  let nest =
    List.fold_right2
      (fun vn b inner -> [ Build.do_ vn ~lo:(i 0) ~hi:(i (b - 1)) inner ])
      (List.tl vars) (List.tl bounds) body
  in
  let outer =
    Build.doall (List.hd vars) ~lo:(i 0) ~hi:(i (List.hd bounds - 1)) nest
  in
  return
    (Build.program ~name:"gen" ~params:Assume.empty
       ~arrays:[ Build.array "A" [ i 2000 ] ]
       [ Build.phase "G" outer ])

let arb_affine =
  QCheck.make gen_affine_program ~print:(fun p ->
      Format.asprintf "%a" Types.pp_program p)

(* Two phases over the same array with the same stride and a shifted
   offset: the shape Unionize.homogenize is specified for. *)
let gen_shifted_pair =
  let open QCheck.Gen in
  let* n = int_range 3 8 in
  let* stride = int_range 1 4 in
  let* steps = int_range 0 6 in
  let shift = stride * steps in
  let idx extra = Expr.add (Expr.mul (i stride) (v "x")) (i extra) in
  return
    (Build.program ~name:"pair" ~params:Assume.empty
       ~arrays:[ Build.array "A" [ i 500 ] ]
       [
         Build.phase "P1"
           (Build.doall "x" ~lo:(i 0) ~hi:(i (n - 1))
              [ Build.assign [ Build.write "A" [ idx 0 ] ] ]);
         Build.phase "P2"
           (Build.doall "x" ~lo:(i 0) ~hi:(i (n - 1))
              [ Build.assign [ Build.read "A" [ idx shift ] ] ]);
       ])

let arb_shifted_pair =
  QCheck.make gen_shifted_pair ~print:(fun p ->
      Format.asprintf "%a" Types.pp_program p)

(* ------------------------------------------------------------------ *)
(* Oracles *)

let pd_of prog k =
  let ph = List.nth prog.Types.phases k in
  Pd.of_phase (Phase.analyze prog ph) ~array:"A"

let expand pd ~par =
  try Some (Region.sorted (Region.addresses Env.empty pd ~par))
  with Region.Not_rectangular _ -> None

let oracle prog k ~par =
  let ph = List.nth prog.Types.phases k in
  match par with
  | None -> Region.sorted (Enumerate.address_set prog Env.empty ph ~array:"A")
  | Some it ->
      Enumerate.iteration_addresses prog Env.empty ph ~array:"A" ~par:it
      |> List.map fst |> List.sort_uniq compare

(* Each transform of the simplification chain must leave the denoted
   address set - whole phase and per iteration - untouched. *)
let preserves_region transform prog =
  Probe.with_seed 501 (fun () ->
      let pd = transform (pd_of prog 0) in
      expand pd ~par:None = Some (oracle prog 0 ~par:None)
      && expand pd ~par:(Some 0) = Some (oracle prog 0 ~par:(Some 0))
      && expand pd ~par:(Some 1) = Some (oracle prog 0 ~par:(Some 1)))

let prop_coalesce_oracle =
  QCheck.Test.make ~name:"Coalesce.pd preserves the oracle region" ~count
    arb_affine
    (preserves_region Coalesce.pd)

let prop_unionize_rows_oracle =
  QCheck.Test.make ~name:"Unionize.rows preserves the oracle region" ~count
    arb_affine
    (preserves_region (fun pd -> Unionize.rows (Coalesce.pd pd)))

let prop_simplify_oracle =
  QCheck.Test.make ~name:"Unionize.simplify preserves the oracle region" ~count
    arb_affine
    (preserves_region Unionize.simplify)

let prop_simplify_idempotent =
  QCheck.Test.make ~name:"Unionize.simplify is idempotent on regions" ~count
    arb_affine (fun prog ->
      Probe.with_seed 502 (fun () ->
          let once = Unionize.simplify (pd_of prog 0) in
          let twice = Unionize.simplify once in
          expand once ~par:None = expand twice ~par:None
          && expand once ~par:(Some 0) = expand twice ~par:(Some 0)))

let prop_min_offset_oracle =
  QCheck.Test.make ~name:"Offset.min_offset = smallest oracle address" ~count
    arb_affine (fun prog ->
      Probe.with_seed 503 (fun () ->
          let pd = Unionize.simplify (pd_of prog 0) in
          match Offset.min_offset pd with
          | None -> false
          | Some e -> (
              match oracle prog 0 ~par:None with
              | [] -> false
              | lo :: _ -> Env.eval Env.empty e = lo)))

let prop_homogenize_union =
  QCheck.Test.make ~name:"Unionize.homogenize denotes the union of regions"
    ~count arb_shifted_pair (fun prog ->
      Probe.with_seed 504 (fun () ->
          let pd1 = Unionize.simplify (pd_of prog 0) in
          let pd2 = Unionize.simplify (pd_of prog 1) in
          match Unionize.homogenize pd1 pd2 with
          | None ->
              (* homogenization may conservatively decline; it must not
                 decline the trivial unshifted case *)
              oracle prog 0 ~par:None <> oracle prog 1 ~par:None
          | Some merged -> (
              match expand merged ~par:None with
              | None -> false
              | Some got ->
                  got
                  = List.sort_uniq compare
                      (oracle prog 0 ~par:None @ oracle prog 1 ~par:None))))

(* Offset adjustment: R = (tau - tau_min) / delta_par in parallel-stride
   steps; re-deriving tau from R must land back on the row offset. *)
let prop_adjust_distance =
  QCheck.Test.make ~name:"Offset.adjust_distance inverts to the offset" ~count
    arb_shifted_pair (fun prog ->
      Probe.with_seed 505 (fun () ->
          let pd1 = Unionize.simplify (pd_of prog 0) in
          let pd2 = Unionize.simplify (pd_of prog 1) in
          match Offset.tau_min [ pd1; pd2 ] with
          | None -> false
          | Some tau_min -> (
              let check pd =
                match
                  ( Offset.adjust_distance pd ~tau_min,
                    Offset.min_offset pd,
                    Pd.par_stride (List.hd pd.Pd.groups) )
                with
                | Some r, Some tau, Some dp ->
                    Env.eval Env.empty tau
                    = Env.eval Env.empty tau_min
                      + (Env.eval Env.empty r * Env.eval Env.empty dp)
                | _ -> false
              in
              check pd1 && check pd2)))

(* Memo coherence: flushing every cache (and re-seeding the probe
   stream, which flushes the seed-dependent tables) must not change any
   answer - a cold run and a warm run agree. *)
let prop_memo_coherence =
  QCheck.Test.make ~name:"cold and warm caches give identical results" ~count
    arb_affine (fun prog ->
      let compute () =
        Probe.with_seed 506 (fun () ->
            let pd = Unionize.simplify (pd_of prog 0) in
            (expand pd ~par:None, expand pd ~par:(Some 0)))
      in
      Core.Metrics.clear_caches ();
      let cold = compute () in
      let warm = compute () in
      Core.Metrics.clear_caches ();
      let cold2 = compute () in
      cold = warm && cold = cold2)

(* ------------------------------------------------------------------ *)
(* Frontend round trip and pipeline determinism *)

(* The parser rebalances affine sums, so structural equality is too
   strong for generated programs; the trip must instead be a fixed
   point of unparsing and leave the denoted address set untouched. *)
let prop_parse_unparse =
  QCheck.Test.make ~name:"parse (unparse p) = p (up to normalisation)" ~count
    arb_affine (fun prog ->
      let text = Frontend.Unparse.to_string prog in
      match Frontend.Parse.program text with
      | exception Frontend.Parse.Error _ -> false
      | parsed ->
          Frontend.Unparse.to_string parsed = text
          && oracle parsed 0 ~par:None = oracle prog 0 ~par:None)

let report_of t = Format.asprintf "%a" Core.Pipeline.report t

let prop_pipeline_deterministic =
  QCheck.Test.make ~name:"Pipeline.run twice = identical report" ~count
    arb_affine (fun prog ->
      let once () =
        Probe.with_seed 507 (fun () ->
            report_of (Core.Pipeline.run prog ~env:Env.empty ~h:4))
      in
      once () = once ())

(* ------------------------------------------------------------------ *)
(* The same two guarantees over every shipped surface program: the
   corpus exercises pow2 parameters, subroutines, repeat loops and
   multi-array phases that the generators above do not reach. *)

let samples_dir =
  let rec up dir =
    let candidate = Filename.concat dir "examples/programs" in
    if Sys.file_exists candidate && Sys.is_directory candidate then candidate
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then failwith "examples/programs not found"
      else up parent
  in
  up (Sys.getcwd ())

let sample_files () =
  Sys.readdir samples_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".dsm")
  |> List.sort compare

(* Midpoint bindings for each declared parameter (the dsmloc `file`
   command's default environment). *)
let midpoint_env (prog : Types.program) =
  List.fold_left
    (fun env (vn, d) ->
      match d with
      | Assume.Int_range (lo, hi) -> Env.add vn ((lo + hi) / 2) env
      | Assume.Pow2_of w -> Env.add vn (1 lsl Env.find env w) env
      | Assume.Expr_range _ -> env)
    Env.empty
    (Assume.to_list prog.params)

let test_samples_roundtrip () =
  List.iter
    (fun f ->
      let path = Filename.concat samples_dir f in
      let prog = Frontend.Parse.program_file path in
      match Frontend.Parse.program (Frontend.Unparse.to_string prog) with
      | parsed -> Alcotest.(check bool) (f ^ " roundtrips") true (parsed = prog)
      | exception Frontend.Parse.Error { line; message } ->
          Alcotest.fail (Printf.sprintf "%s: line %d: %s" f line message))
    (sample_files ())

let test_samples_deterministic () =
  List.iter
    (fun f ->
      let path = Filename.concat samples_dir f in
      let prog = Frontend.Parse.program_file path in
      let env = midpoint_env prog in
      let once () =
        Probe.with_seed 508 (fun () ->
            report_of (Core.Pipeline.run prog ~env ~h:4))
      in
      Alcotest.(check bool) (f ^ " deterministic") true (once () = once ()))
    (sample_files ())

let () =
  Alcotest.run "properties"
    [
      ( "descriptor-algebra",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_coalesce_oracle;
            prop_unionize_rows_oracle;
            prop_simplify_oracle;
            prop_simplify_idempotent;
            prop_min_offset_oracle;
            prop_homogenize_union;
            prop_adjust_distance;
          ] );
      ( "caching",
        [ QCheck_alcotest.to_alcotest prop_memo_coherence ] );
      ( "frontend",
        [
          QCheck_alcotest.to_alcotest prop_parse_unparse;
          Alcotest.test_case "all samples roundtrip" `Quick
            test_samples_roundtrip;
        ] );
      ( "pipeline",
        [
          QCheck_alcotest.to_alcotest prop_pipeline_deterministic;
          Alcotest.test_case "all samples deterministic" `Slow
            test_samples_deterministic;
        ] );
    ]
