lib/ir/enumerate.mli: Env Hashtbl Symbolic Types
