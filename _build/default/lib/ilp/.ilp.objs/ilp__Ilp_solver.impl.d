lib/ilp/ilp_solver.ml: Array Lp Qnum Symbolic
