lib/ir/linearize.mli: Expr Symbolic
