lib/ir/types.ml: Assume Expr Format List String Symbolic
