open Symbolic

type cmp = Le | Ge | Eq

type constr = { coeffs : Qnum.t array; cmp : cmp; rhs : Qnum.t }

type problem = {
  n_vars : int;
  objective : Qnum.t array;
  constraints : constr list;
}

type outcome =
  | Optimal of { value : Qnum.t; point : Qnum.t array }
  | Unbounded
  | Infeasible

let constr coeffs cmp rhs = { coeffs; cmp; rhs }
let of_ints l = Array.of_list (List.map Qnum.of_int l)

(* Standard-form tableau simplex.  We convert every constraint to
   [a.x + s = b] with slack/artificial variables, run phase 1 to drive
   the artificials out, then phase 2 on the real objective.  Bland's
   anti-cycling rule keeps it finite; rationals keep it exact. *)

type tableau = {
  m : int;  (** rows (constraints) *)
  n : int;  (** columns (all variables incl. slacks/artificials) *)
  a : Qnum.t array array;  (** m x n *)
  b : Qnum.t array;  (** m *)
  c : Qnum.t array;  (** n, objective to maximize *)
  basis : int array;  (** m basic column indices *)
}

let pivot (t : tableau) ~row ~col =
  let piv = t.a.(row).(col) in
  let inv = Qnum.inv piv in
  for j = 0 to t.n - 1 do
    t.a.(row).(j) <- Qnum.mul t.a.(row).(j) inv
  done;
  t.b.(row) <- Qnum.mul t.b.(row) inv;
  for i = 0 to t.m - 1 do
    if i <> row && not (Qnum.is_zero t.a.(i).(col)) then begin
      let f = t.a.(i).(col) in
      for j = 0 to t.n - 1 do
        t.a.(i).(j) <- Qnum.sub t.a.(i).(j) (Qnum.mul f t.a.(row).(j))
      done;
      t.b.(i) <- Qnum.sub t.b.(i) (Qnum.mul f t.b.(row))
    end
  done;
  t.basis.(row) <- col

(* Reduced cost of column j: c_j - c_B . B^-1 A_j (computed against the
   current tableau where basic columns are unit vectors). *)
let reduced_costs (t : tableau) =
  let z = Array.make t.n Qnum.zero in
  for j = 0 to t.n - 1 do
    let acc = ref t.c.(j) in
    for i = 0 to t.m - 1 do
      let cb = t.c.(t.basis.(i)) in
      if not (Qnum.is_zero cb) then
        acc := Qnum.sub !acc (Qnum.mul cb t.a.(i).(j))
    done;
    z.(j) <- !acc
  done;
  z

let objective_value (t : tableau) =
  let acc = ref Qnum.zero in
  for i = 0 to t.m - 1 do
    acc := Qnum.add !acc (Qnum.mul t.c.(t.basis.(i)) t.b.(i))
  done;
  !acc

(* Run simplex iterations until optimal or unbounded. *)
let rec iterate (t : tableau) =
  let rc = reduced_costs t in
  (* Bland: smallest index with positive reduced cost. *)
  let entering = ref (-1) in
  (try
     for j = 0 to t.n - 1 do
       if Qnum.sign rc.(j) > 0 then begin
         entering := j;
         raise Exit
       end
     done
   with Exit -> ());
  if !entering < 0 then `Optimal
  else begin
    let col = !entering in
    (* Min ratio test, Bland tie-break on basis index. *)
    let best = ref None in
    for i = 0 to t.m - 1 do
      if Qnum.sign t.a.(i).(col) > 0 then begin
        let ratio = Qnum.div t.b.(i) t.a.(i).(col) in
        match !best with
        | None -> best := Some (i, ratio)
        | Some (bi, br) ->
            let c = Qnum.compare ratio br in
            if c < 0 || (c = 0 && t.basis.(i) < t.basis.(bi)) then
              best := Some (i, ratio)
      end
    done;
    match !best with
    | None -> `Unbounded
    | Some (row, _) ->
        pivot t ~row ~col;
        iterate t
  end

let solve (p : problem) : outcome =
  let rows =
    (* Normalize to a.x (cmp) b with b >= 0. *)
    List.map
      (fun ct ->
        if Qnum.sign ct.rhs < 0 then
          {
            coeffs = Array.map Qnum.neg ct.coeffs;
            cmp = (match ct.cmp with Le -> Ge | Ge -> Le | Eq -> Eq);
            rhs = Qnum.neg ct.rhs;
          }
        else ct)
      p.constraints
  in
  let m = List.length rows in
  let n_slack =
    List.length (List.filter (fun r -> r.cmp <> Eq) rows)
  in
  (* Artificial variables: for Ge and Eq rows. *)
  let n_art =
    List.length (List.filter (fun r -> r.cmp <> Le) rows)
  in
  let n = p.n_vars + n_slack + n_art in
  let a = Array.make_matrix m n Qnum.zero in
  let b = Array.make m Qnum.zero in
  let basis = Array.make m 0 in
  let slack_at = ref p.n_vars and art_at = ref (p.n_vars + n_slack) in
  List.iteri
    (fun i r ->
      Array.iteri (fun j v -> if j < p.n_vars then a.(i).(j) <- v) r.coeffs;
      b.(i) <- r.rhs;
      (match r.cmp with
      | Le ->
          a.(i).(!slack_at) <- Qnum.one;
          basis.(i) <- !slack_at;
          incr slack_at
      | Ge ->
          a.(i).(!slack_at) <- Qnum.minus_one;
          incr slack_at;
          a.(i).(!art_at) <- Qnum.one;
          basis.(i) <- !art_at;
          incr art_at
      | Eq ->
          a.(i).(!art_at) <- Qnum.one;
          basis.(i) <- !art_at;
          incr art_at))
    rows;
  (* Phase 1: maximize -(sum of artificials). *)
  let c1 = Array.make n Qnum.zero in
  for j = p.n_vars + n_slack to n - 1 do
    c1.(j) <- Qnum.minus_one
  done;
  let t = { m; n; a; b; c = c1; basis } in
  (match iterate t with
  | `Unbounded -> assert false (* phase-1 objective is bounded by 0 *)
  | `Optimal -> ());
  if Qnum.sign (objective_value t) < 0 then Infeasible
  else begin
    (* Drive any lingering artificial out of the basis if possible. *)
    for i = 0 to m - 1 do
      if t.basis.(i) >= p.n_vars + n_slack then begin
        let found = ref false in
        for j = 0 to p.n_vars + n_slack - 1 do
          if (not !found) && not (Qnum.is_zero t.a.(i).(j)) then begin
            pivot t ~row:i ~col:j;
            found := true
          end
        done
      end
    done;
    (* Phase 2: real objective; forbid artificials re-entering by
       giving them a strongly negative cost contribution - simpler: we
       zero their columns. *)
    let c2 = Array.make n Qnum.zero in
    Array.iteri (fun j v -> if j < p.n_vars then c2.(j) <- v) p.objective;
    for j = p.n_vars + n_slack to n - 1 do
      (* erase artificial columns so they can never re-enter *)
      for i = 0 to m - 1 do
        t.a.(i).(j) <- Qnum.zero
      done
    done;
    let t2 = { t with c = c2 } in
    match iterate t2 with
    | `Unbounded -> Unbounded
    | `Optimal ->
        let point = Array.make p.n_vars Qnum.zero in
        for i = 0 to m - 1 do
          if t2.basis.(i) < p.n_vars then point.(t2.basis.(i)) <- t2.b.(i)
        done;
        Optimal { value = objective_value t2; point }
  end
