lib/ilp/lp.mli: Qnum Symbolic
