open Symbolic

type t = {
  prog : Ir.Types.program;
  env : Env.t;
  machine : Ilp.Cost.machine;
  lcg : Locality.Lcg.t;
  model : Ilp.Model.t;
  solution : Ilp.Solve.result;
  plan : Ilp.Distribution.plan;
  diags : Diag.collector;
}

(* The degradation ladder only catches failures with a documented
   conservative fallback; anything else (bugs, Stack_overflow, ...)
   still propagates. *)
let recoverable = function
  | Descriptor.Ard.Unsupported | Descriptor.Region.Not_rectangular _
  | Qnum.Overflow | Qnum.Division_by_zero | Division_by_zero | Env.Unbound _
  | Expr.Non_integral _ | Lattice.Outside_fragment _ ->
      true
  | _ -> false

let describe = function
  | Descriptor.Ard.Unsupported -> "unsupported (non-affine) subscript"
  | Descriptor.Region.Not_rectangular s -> "non-rectangular region: " ^ s
  | Qnum.Overflow -> "symbolic arithmetic overflow"
  | Qnum.Division_by_zero | Division_by_zero -> "division by zero"
  | Env.Unbound v -> "unbound parameter " ^ v
  | Expr.Non_integral s -> "non-integral expression: " ^ s
  | Lattice.Outside_fragment s ->
      "outside the closed-form fragment under --symbolic-only: " ^ s
  | e -> Printexc.to_string e

(* Total front door for surface text: any parse failure lands in the
   collector as a positioned Frontend-stage diagnostic instead of an
   exception.  [where] is the source's display name (a path, "<stdin>",
   "fuzz[17]", ...); the diagnostic position is "<where>:<line>". *)
let parse_program ?diags ~where source =
  let diags = match diags with Some d -> d | None -> Diag.collector () in
  match Frontend.Parse.program source with
  | prog -> Some prog
  | exception Frontend.Parse.Error { line; message } ->
      Diag.addf diags ~severity:Diag.Error ~stage:Diag.Frontend
        ~where:(Printf.sprintf "%s:%d" where line)
        ~code:"FRONTEND-PARSE" "%s" message;
      None

let guard ~strict ~diags ~stage ~code ~fallback f =
  try f ()
  with e when (not strict) && recoverable e ->
    Diag.addf diags ~severity:Diag.Error ~stage ~code
      "stage failed (%s); using conservative fallback" (describe e);
    fallback ()

let run_timer = Metrics.timer "pipeline.run"
let lint_timer = Metrics.timer "pipeline.lint"
let lcg_timer = Metrics.timer "pipeline.lcg"
let model_timer = Metrics.timer "pipeline.model"
let solve_timer = Metrics.timer "pipeline.solve"
let plan_timer = Metrics.timer "pipeline.plan"

let run ?machine ?(strict = false) ?(lint = true) ?diags prog ~env ~h =
  Metrics.with_timer run_timer @@ fun () ->
  let diags = match diags with Some d -> d | None -> Diag.collector () in
  let fallbacks_before = Lattice.fallback_count () in
  let machine =
    match machine with Some m -> m | None -> Ilp.Cost.default_machine ~h
  in
  (* Lint first: malformed input is reported with positions before any
     descriptor machinery can trip over it.  Under [strict] a program
     with Error-severity findings is refused outright. *)
  if lint then begin
    let findings = Metrics.with_timer lint_timer (fun () -> Lint.check ~diags prog) in
    if
      strict
      && List.exists (fun (f : Diag.t) -> f.Diag.severity = Diag.Error) findings
    then raise (Lint.Failed findings)
  end;
  let lcg =
    Metrics.with_timer lcg_timer @@ fun () ->
    guard ~strict ~diags ~stage:Diag.Lcg ~code:"LCG-FAIL"
      ~fallback:(fun () -> { Locality.Lcg.prog; env; h; graphs = [] })
      (fun () -> Locality.Lcg.build prog ~env ~h)
  in
  (* Whole-array degradation happens inside descriptor construction
     (Ard.of_site catches Unsupported); surface it as a warning per
     degraded node so callers can see which phases lost precision. *)
  List.iter
    (fun (g : Locality.Lcg.graph) ->
      List.iter
        (fun (n : Locality.Lcg.node) ->
          if not n.pd.Descriptor.Pd.exact then
            let where =
              match List.nth_opt prog.Ir.Types.phases n.phase_idx with
              | Some ph -> ph.Ir.Types.phase_name
              | None -> Printf.sprintf "phase %d" n.phase_idx
            in
            Diag.addf diags ~severity:Diag.Warning ~stage:Diag.Descriptors
              ~where ~code:"DESC-WHOLE-ARRAY"
              "%s: conservative whole-array descriptor (edges forced to C)"
              g.Locality.Lcg.array)
        g.Locality.Lcg.nodes)
    lcg.graphs;
  let model =
    Metrics.with_timer model_timer @@ fun () ->
    guard ~strict ~diags ~stage:Diag.Model ~code:"MODEL-FAIL"
      ~fallback:(fun () ->
        { Ilp.Model.lcg;
          n_phases = List.length prog.Ir.Types.phases;
          locality = [];
          bounds = [];
          storage = [];
        })
      (fun () -> Ilp.Model.of_lcg lcg)
  in
  let solve_failed = ref false in
  let solution =
    Metrics.with_timer solve_timer @@ fun () ->
    guard ~strict ~diags ~stage:Diag.Solve ~code:"SOLVE-FAIL"
      ~fallback:(fun () ->
        solve_failed := true;
        let block = Ilp.Distribution.block_plan lcg in
        { Ilp.Solve.p = block.chunk;
          d_cost = 0.0;
          c_cost = 0.0;
          objective = 0.0;
          broken = [];
          budget_exhausted = false;
        })
      (fun () -> Ilp.Solve.solve model machine)
  in
  if solution.broken <> [] then
    Diag.addf diags ~severity:Diag.Warning ~stage:Diag.Solve
      ~code:"SOLVE-BROKEN" "%d locality row(s) violated (priced as extra C)"
      (List.length solution.broken);
  if solution.budget_exhausted then begin
    Diag.addf diags ~severity:Diag.Warning ~stage:Diag.Solve
      ~code:"SOLVE-BUDGET"
      "solver search budget exhausted (incumbent may be sub-optimal); \
       falling back to the BLOCK baseline plan";
    solve_failed := true
  end;
  let plan =
    Metrics.with_timer plan_timer @@ fun () ->
    if !solve_failed then Ilp.Distribution.block_plan lcg
    else
      guard ~strict ~diags ~stage:Diag.Plan ~code:"PLAN-FAIL"
        ~fallback:(fun () -> Ilp.Distribution.block_plan lcg)
        (fun () -> Ilp.Distribution.of_solution lcg ~p:solution.p)
  in
  (* Fallbacks are correctness-neutral (the enumerated path computes
     the same answers) but mark where the closed-form fragment was left
     behind - the spots where analysis cost scales with data size. *)
  let fallbacks = Lattice.fallback_count () - fallbacks_before in
  if fallbacks > 0 && !Lattice.mode <> Lattice.Enumerated_only then
    Diag.addf diags ~severity:Diag.Info ~stage:Diag.Lint
      ~code:"LINT-SYMBOLIC-FALLBACK"
      "%d analysis step(s) left the closed-form symbolic fragment and fell \
       back to address enumeration (per-stage breakdown under the \
       symbolic.fallback.* counters in --profile)"
      fallbacks;
  { prog; env; machine; lcg; model; solution; plan; diags }

let diagnostics t = Diag.to_list t.diags
let degraded t = Diag.has_errors t.diags

let record_comm_error t msg =
  Diag.add t.diags ~severity:Diag.Error ~stage:Diag.Comm ~code:"COMM-SIZE" msg

let record_fault_stats t (st : Dsmsim.Fault.stats) =
  Diag.addf t.diags ~severity:Diag.Info ~stage:Diag.Exec ~code:"FAULT-INJECTED"
    "%d message(s): %d dropped, %d duplicated, %d truncated, %d recovered"
    st.messages st.dropped st.duplicated st.truncated st.recovered;
  let lost = Dsmsim.Fault.unrecovered st in
  if lost > 0 then
    Diag.addf t.diags ~severity:Diag.Warning ~stage:Diag.Exec
      ~code:"FAULT-UNRECOVERED"
      "%d corrupted message(s) survived the retry budget" lost

let record_faults t (r : Dsmsim.Exec.run) =
  match r.fault_stats with
  | None -> ()
  | Some st -> record_fault_stats t st

let simulate ?rounds ?faults ?retries t =
  let r =
    Dsmsim.Exec.run ?rounds ~on_error:(record_comm_error t) ?faults ?retries t.lcg
      t.plan t.machine
  in
  record_faults t r;
  r

let simulate_baseline ?rounds t =
  Dsmsim.Exec.run ?rounds ~on_error:(record_comm_error t) t.lcg
    (Ilp.Distribution.block_plan t.lcg)
    t.machine

let efficiency t = ((simulate t).efficiency, (simulate_baseline t).efficiency)

(* The analysis payload alone (LCG, model, solution, plan).  The
   --enum-oracle differential compares this byte for byte between the
   symbolic and enumerated accountings; diagnostics are compared
   structurally on the side because the fallback-visibility diagnostic
   is mode-dependent by design. *)
let report_core ppf t =
  Format.fprintf ppf "@[<v>%a@,=== Constraint model (Table 2 form) ===@,%a@,"
    Locality.Lcg.pp t.lcg Ilp.Model.pp t.model;
  Format.fprintf ppf "=== Solution ===@,objective %.1f (D %.1f + C %.1f)%s@,"
    t.solution.objective t.solution.d_cost t.solution.c_cost
    (match t.solution.broken with
    | [] -> ""
    | b -> Printf.sprintf "  (%d violated locality rows)" (List.length b));
  Format.fprintf ppf "%a" Ilp.Distribution.pp t.plan;
  Format.fprintf ppf "@]"

let report ppf t =
  Format.fprintf ppf "@[<v>%a" report_core t;
  (match diagnostics t with
  | [] -> ()
  | ds ->
      Format.fprintf ppf "@,=== Diagnostics ===@,%a" Diag.pp_table ds);
  Format.fprintf ppf "@]"
