(** SWIM-like shallow-water kernel: three coupled stencil phases over
    U, V, P plus new-value arrays, inside a timestep loop.

    CALC1 computes fluxes (CU, CV) from U, V, P with asymmetric
    one-sided stencils; CALC2 updates P from the fluxes; CALC3 copies
    the new fields back.  All phases are column-parallel with equal
    strides, so after offset adjustment every inter-phase edge is L and
    each array forms one cyclic chain - the all-local steady state the
    paper's approach aims for, with frontier reads at chunk borders. *)

open Symbolic
open Ir.Types

val params : Assume.t
val program : program
val env : n:int -> Env.t
