lib/ir/phase.ml: Assume Expr Linearize List Normalize String Symbolic Types
