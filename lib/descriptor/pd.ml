open Symbolic
open Ir

type dim = { stride : Expr.t; vars : string list; uniform : bool }

type row = {
  alphas : Expr.t list;
  signs : int list;
  offset : Expr.t;
  mix : Access_mix.t;
  phis : Expr.t list;
}

type group = { dims : dim list; par : int option; rows : row list }

type t = { array : string; ctx : Phase.t; groups : group list; exact : bool }

let group_of_ard (ard : Ard.t) : group =
  (* Drop loop-invariant (zero stride) dims; locate the parallel one. *)
  let live =
    List.filter (fun (d : Ard.dim) -> not (Expr.is_zero d.stride)) ard.dims
  in
  let par =
    match ard.par_var with
    | None -> None
    | Some v ->
        let rec find i = function
          | [] -> None
          | (d : Ard.dim) :: _ when List.mem v d.vars -> Some i
          | _ :: rest -> find (i + 1) rest
        in
        find 0 live
  in
  {
    dims =
      List.map
        (fun (d : Ard.dim) -> { stride = d.stride; vars = d.vars; uniform = d.uniform })
        live;
    par;
    rows =
      [
        {
          alphas = List.map (fun (d : Ard.dim) -> d.alpha) live;
          signs = List.map (fun (d : Ard.dim) -> d.sign) live;
          offset = ard.offset;
          mix = ard.mix;
          phis = [ ard.phi ];
        };
      ];
  }

let same_dims a b =
  List.length a.dims = List.length b.dims
  && a.par = b.par
  && List.for_all2 (fun (x : dim) (y : dim) -> Expr.equal x.stride y.stride) a.dims b.dims

let of_phase (ctx : Phase.t) ~array : t =
  let sites = Phase.sites_of_array ctx array in
  let ards = List.map (Ard.of_site ctx) sites in
  let exact = List.for_all (fun (a : Ard.t) -> a.exact) ards in
  let groups =
    List.fold_left
      (fun groups ard ->
        let g = group_of_ard ard in
        let rec insert = function
          | [] -> [ g ]
          | h :: rest when same_dims h g -> { h with rows = h.rows @ g.rows } :: rest
          | h :: rest -> h :: insert rest
        in
        insert groups)
      [] ards
  in
  { array; ctx; groups; exact }

(* Structural artifact keys.  [key] covers the enumeration-relevant
   content (array, groups, exactness) but deliberately not [ctx]: the
   addresses a PD denotes are a function of its rows alone, so two PDs
   that only differ in context share cache lines. *)
let mix_key (m : Access_mix.t) =
  Artifact.Key.(list [ bool m.Access_mix.reads; bool m.Access_mix.writes ])

let dim_key (d : dim) =
  Artifact.Key.(
    list [ expr d.stride; list (List.map str d.vars); bool d.uniform ])

let row_key (r : row) =
  Artifact.Key.(
    list
      [
        list (List.map expr r.alphas);
        list (List.map int r.signs);
        expr r.offset;
        mix_key r.mix;
        list (List.map expr r.phis);
      ])

let group_key (g : group) =
  Artifact.Key.(
    list
      [
        list (List.map dim_key g.dims);
        opt int g.par;
        list (List.map row_key g.rows);
      ])

let key (t : t) =
  Artifact.Key.(
    list [ str t.array; list (List.map group_key t.groups); bool t.exact ])

let digest t = Artifact.Key.hash (key t)

let par_stride g =
  Option.map (fun i -> (List.nth g.dims i).stride) g.par

let par_sign (r : row) (g : group) =
  match g.par with None -> 1 | Some i -> List.nth r.signs i

let seq_dims g =
  List.filteri (fun i _ -> g.par <> Some i) (List.mapi (fun i d -> (i, d)) g.dims)

let row_span_seq g (r : row) =
  List.fold_left
    (fun acc (i, (d : dim)) ->
      let alpha = List.nth r.alphas i in
      Expr.add acc (Expr.mul (Expr.sub alpha Expr.one) d.stride))
    Expr.zero (seq_dims g)

let group_mix g =
  List.fold_left
    (fun acc (r : row) -> Access_mix.join acc r.mix)
    { Access_mix.reads = false; writes = false }
    g.rows

let pd_mix t =
  List.fold_left
    (fun acc g -> Access_mix.join acc (group_mix g))
    { Access_mix.reads = false; writes = false }
    t.groups

let finest_seq asm g =
  match seq_dims g with
  | [] -> None
  | (i0, d0) :: rest ->
      Some
        (List.fold_left
           (fun (bi, (bd : dim)) (i, (d : dim)) ->
             if Probe.le asm d.stride bd.stride then (i, d) else (bi, bd))
           (i0, d0) rest)

let pp_row dims ppf (r : row) =
  Format.fprintf ppf "alphas=(%a) offset=%a %a"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Expr.pp)
    r.alphas Expr.pp r.offset Access_mix.pp r.mix;
  let has_neg = List.exists (fun s -> s < 0) r.signs in
  if has_neg then
    Format.fprintf ppf " signs=(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Format.pp_print_int)
      r.signs;
  ignore dims

let pp_group ppf g =
  Format.fprintf ppf "@[<v 2>strides=(%a)%s@,%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (d : dim) -> Expr.pp ppf d.stride))
    g.dims
    (match g.par with Some i -> Printf.sprintf " par=dim%d" i | None -> " par=none")
    (Format.pp_print_list (pp_row g.dims))
    g.rows

let pp ppf t =
  Format.fprintf ppf "@[<v 2>PD %s%s:@,%a@]" t.array
    (if t.exact then "" else " (inexact)")
    (Format.pp_print_list pp_group) t.groups
