lib/descriptor/unionize.mli: Pd
