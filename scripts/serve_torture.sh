#!/usr/bin/env bash
# Torture run for `dsmloc serve`: >=1000 mixed requests (warm repeats,
# edits, malformed programs, corrupt frames, deadline-busters, worker
# crashes, an overload burst, SIGTERM under load) against one daemon.
# Passes only if the daemon never crashes or hangs, every request gets
# the contractually right exit code, worker memory stays bounded
# (recycling engaged), and warm serving is faster than cold.
set -euo pipefail

DSMLOC=${DSMLOC:-_build/default/bin/dsmloc.exe}
CLIENTS=${CLIENTS:-8}
PER_CLIENT=${PER_CLIENT:-125}   # CLIENTS * PER_CLIENT >= 1000
TOTAL=$((CLIENTS * PER_CLIENT))
# Recycle threshold: low enough that even a reduced CI-sized run forces
# at least one planned worker recycle (crash/deadline respawns reset
# the per-worker job counter, so leave generous headroom).
_mwj=$(( TOTAL / 16 < 64 ? TOTAL / 16 : 64 ))
MAX_WORKER_JOBS=${MAX_WORKER_JOBS:-$(( _mwj < 4 ? 4 : _mwj ))}
WORK=$(mktemp -d /tmp/dsmloc-torture.XXXXXX)
SOCK="$WORK/serve.sock"
LOG="$WORK/serve.log"

[ -x "$DSMLOC" ] || { echo "build first: dune build ($DSMLOC missing)"; exit 1; }

cleanup() {
  [ -n "${DAEMON_PID:-}" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  [ -n "${BURST_PID:-}" ] && kill -9 "$BURST_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; tail -5 "$LOG" >&2 || true; exit 1; }

alive() { kill -0 "$DAEMON_PID" 2>/dev/null; }

now_ms() { echo $(( $(date +%s%N) / 1000000 )); }

# ------------------------------------------------------------------
# Program corpus: the jacobi sample plus per-client edited variants
# (different work weights -> different phase digests).
SRC=examples/programs/jacobi.dsm
[ -f "$SRC" ] || SRC=../examples/programs/jacobi.dsm
[ -f "$SRC" ] || fail "jacobi.dsm sample not found"
cp "$SRC" "$WORK/base.dsm"
for i in 1 2 3 4; do
  sed "s/work 4/work $((4 + i))/" "$WORK/base.dsm" > "$WORK/edit$i.dsm"
done
printf 'program broken\nreal A(\n' > "$WORK/broken.dsm"

# ------------------------------------------------------------------
echo "== starting daemon (4 workers, recycle every $MAX_WORKER_JOBS jobs)"
"$DSMLOC" serve --socket "$SOCK" --workers 4 --queue-cap 128 \
  --max-worker-jobs "$MAX_WORKER_JOBS" --max-worker-rss-kb 524288 \
  --drain-deadline 5 --test-hooks 2> "$LOG" &
DAEMON_PID=$!
for _ in $(seq 100); do [ -S "$SOCK" ] && break; sleep 0.05; done
[ -S "$SOCK" ] || fail "daemon did not come up"

req() { "$DSMLOC" request "$@" --socket "$SOCK" --timeout 60 --quiet >/dev/null 2>&1; }

# ------------------------------------------------------------------
echo "== cold vs warm"
t0=$(now_ms); req "$WORK/base.dsm" --env N=40 || fail "cold request"; t1=$(now_ms)
COLD=$(( t1 - t0 ))
req "$WORK/base.dsm" --env N=40 || fail "warm prime"
t0=$(now_ms); req "$WORK/base.dsm" --env N=40 || fail "warm request"; t1=$(now_ms)
WARM=$(( t1 - t0 ))
echo "   cold ${COLD}ms, warm ${WARM}ms"
[ "$WARM" -lt "$COLD" ] || fail "warm (${WARM}ms) not faster than cold (${COLD}ms)"

# ------------------------------------------------------------------
echo "== $TOTAL mixed requests on $CLIENTS concurrent clients"
client() {
  local id=$1 n rc prog
  for n in $(seq "$PER_CLIENT"); do
    case $(( (id * PER_CLIENT + n) % 50 )) in
      7)  # malformed program: contract says exit 1 (SERVE-PARSE)
          rc=0; req "$WORK/broken.dsm" || rc=$?
          [ "$rc" -eq 1 ] || { echo "req $id.$n: broken -> exit $rc"; return 1; } ;;
      19) # deadline-buster: exit 4 (SERVE-DEADLINE)
          rc=0; req "$WORK/base.dsm" --hang 30 --deadline 0.3 || rc=$?
          [ "$rc" -eq 4 ] || { echo "req $id.$n: deadline -> exit $rc"; return 1; } ;;
      37) # worker crash: exit 1 (SERVE-WORKER-LOST), fleet must survive
          rc=0; req "$WORK/base.dsm" --crash || rc=$?
          [ "$rc" -eq 1 ] || { echo "req $id.$n: crash -> exit $rc"; return 1; } ;;
      *)  # honest analysis: warm repeats + per-client edited variants
          prog=$WORK/base.dsm
          [ $(( n % 5 )) -eq 0 ] && prog=$WORK/edit$(( (id % 4) + 1 )).dsm
          rc=0; req "$prog" --env N=$(( 16 + (n % 8) * 4 )) || rc=$?
          [ "$rc" -eq 0 ] || { echo "req $id.$n: honest -> exit $rc"; return 1; } ;;
    esac
  done
}
CLIENT_PIDS=()
for c in $(seq "$CLIENTS"); do
  client "$c" > "$WORK/client$c.out" 2>&1 &
  CLIENT_PIDS+=($!)
done
FAILED=0
for pid in "${CLIENT_PIDS[@]}"; do
  wait "$pid" || FAILED=1
done
for c in $(seq "$CLIENTS"); do
  if [ -s "$WORK/client$c.out" ]; then cat "$WORK/client$c.out" >&2; FAILED=1; fi
done
[ "$FAILED" -eq 0 ] || fail "client errors above"
alive || fail "daemon died during the torture loop"

# ------------------------------------------------------------------
echo "== corrupt and truncated frames"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$SOCK" <<'EOF'
import socket, sys
for payload in [b'\xff' * 8,                # absurd length prefix
                b'\x00\x00\x00\x00\x00\x00\x00\x64partial',  # truncated
                b'garbage']:                # not even a header
    for _ in range(3):
        s = socket.socket(socket.AF_UNIX)
        s.settimeout(1)   # partial frames never get a reply: don't linger
        s.connect(sys.argv[1])
        s.sendall(payload)
        try: s.recv(4096)
        except OSError: pass
        s.close()
EOF
else
  echo "   (python3 missing, skipping raw-frame probes)"
fi
req "$WORK/base.dsm" --env N=40 || fail "daemon unhealthy after corrupt frames"
alive || fail "daemon died on corrupt frames"

# ------------------------------------------------------------------
echo "== memory bounded (recycling under load)"
RSS_KB=$(
  { ps -o rss= -p "$DAEMON_PID" 2>/dev/null
    for p in $(pgrep -P "$DAEMON_PID" 2>/dev/null); do
      ps -o rss= -p "$p" 2>/dev/null
    done; } | awk '{s+=$1} END {print s+0}')
echo "   daemon+workers RSS ${RSS_KB}kB after the loop"
[ "$RSS_KB" -lt 2097152 ] || fail "fleet RSS ${RSS_KB}kB exceeds 2GiB"

# ------------------------------------------------------------------
echo "== overload burst (dedicated 1-worker daemon, queue cap 1)"
BSOCK="$WORK/burst.sock"
"$DSMLOC" serve --socket "$BSOCK" --workers 1 --queue-cap 1 --test-hooks \
  2> "$WORK/burst.log" &
BURST_PID=$!
for _ in $(seq 100); do [ -S "$BSOCK" ] && break; sleep 0.05; done
BURST_CLIENT_PIDS=()
for i in $(seq 6); do
  ( set +e   # the request's exit code is data here, not a failure
    "$DSMLOC" request "$WORK/base.dsm" --socket "$BSOCK" --hang 0.5 \
      --timeout 60 --quiet >/dev/null 2>&1
    echo $? > "$WORK/burst$i.rc" ) &
  BURST_CLIENT_PIDS+=($!)
done
for pid in "${BURST_CLIENT_PIDS[@]}"; do wait "$pid" || true; done
SHED=0; SERVED=0
for i in $(seq 6); do
  rc=$(cat "$WORK/burst$i.rc")
  case "$rc" in
    0) SERVED=$((SERVED + 1)) ;;
    3) SHED=$((SHED + 1)) ;;
    *) fail "burst request exited $rc (want 0 or 3)" ;;
  esac
done
echo "   served $SERVED, shed $SHED"
[ "$SHED" -ge 1 ] || fail "no request was shed under a 6-deep burst"
[ "$SERVED" -ge 1 ] || fail "no request was served under the burst"
kill -TERM "$BURST_PID"; wait "$BURST_PID" || fail "burst daemon exited non-zero"
BURST_PID=

# ------------------------------------------------------------------
echo "== SIGTERM under load drains gracefully"
req "$WORK/base.dsm" --env N=40 || fail "pre-drain request"
( req "$WORK/base.dsm" --hang 1 || true ) &
sleep 0.2
kill -TERM "$DAEMON_PID"
DRAIN_START=$(now_ms)
if ! timeout 30 tail --pid="$DAEMON_PID" -f /dev/null 2>/dev/null; then
  while alive && [ $(( $(now_ms) - DRAIN_START )) -lt 30000 ]; do sleep 0.1; done
fi
alive && fail "daemon ignored SIGTERM for 30s"
wait "$DAEMON_PID" || fail "daemon exited non-zero on SIGTERM"
DAEMON_PID=
[ -S "$SOCK" ] && fail "socket not removed on shutdown"
grep -q "final metrics" "$LOG" || fail "no final metrics snapshot"
RECYCLES=$(grep -o '"pool.recycles":[0-9]*' "$LOG" | tail -1 | cut -d: -f2)
REQUESTS=$(grep -o '"serve.requests":[0-9]*' "$LOG" | tail -1 | cut -d: -f2)
echo "   served ${REQUESTS:-?} requests, ${RECYCLES:-?} worker recycles"
[ "${REQUESTS:-0}" -ge "$TOTAL" ] || fail "daemon served ${REQUESTS:-0} < $TOTAL requests"
[ "${RECYCLES:-0}" -ge 1 ] || fail "recycling never engaged across ${REQUESTS:-?} requests"

wait 2>/dev/null || true
echo "PASS: ${REQUESTS} requests, 0 daemon crashes/hangs, warm ${WARM}ms < cold ${COLD}ms, ${RECYCLES} recycles, fleet RSS ${RSS_KB}kB"
