lib/codes/matmul.mli: Assume Env Ir Symbolic
