lib/dsmsim/exec.ml: Array Comm Cost Distribution Env Format Hashtbl Ilp Ir Lcg List Locality Symbolic
