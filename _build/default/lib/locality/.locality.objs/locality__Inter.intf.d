lib/locality/inter.mli: Balance Descriptor Env Id Ir Symbolic Symmetry Table1
