(* Tests for the robustness layer: deterministic fault injection with
   bounded retry, the dataflow validator catching un-retried corruption,
   and the pipeline's degradation ladder (total analysis with recorded
   diagnostics instead of crashes). *)

open Symbolic
open Dsmsim

let pipeline entry_name size h =
  let e = Codes.Registry.find entry_name in
  let env = e.env_of_size size in
  Core.Pipeline.run e.program ~env ~h

(* ------------------------------------------------------------------ *)
(* Fault.parse / spec *)

let test_parse () =
  (match Fault.parse "42:0.5" with
  | Ok s ->
      Alcotest.(check int) "seed" 42 s.seed;
      Alcotest.(check (float 1e-9)) "drop" 0.5 s.drop;
      Alcotest.(check (float 1e-9)) "dup" 0.0 s.dup
  | Error e -> Alcotest.fail e);
  (match Fault.parse "7:0.1:0.2:0.3" with
  | Ok s ->
      Alcotest.(check (float 1e-9)) "drop" 0.1 s.drop;
      Alcotest.(check (float 1e-9)) "dup" 0.2 s.dup;
      Alcotest.(check (float 1e-9)) "trunc" 0.3 s.trunc
  | Error e -> Alcotest.fail e);
  let bad s =
    match Fault.parse s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad "x:0.5";
  bad "42:1.5";
  bad "42";
  bad "42:0.1:0.2"

(* ------------------------------------------------------------------ *)
(* Fault.apply semantics on a hand-built schedule *)

let one_message_sched words =
  [
    Comm.Frontier
      {
        array = "A";
        after_phase = 0;
        messages =
          [ { Comm.src = 0; dst = 1; ranges = [ (0, words - 1) ]; words } ];
      };
  ]

let test_apply_certain_outcomes () =
  (* drop = 1: the message is lost and the empty event removed *)
  let delivered, st =
    Fault.apply (Fault.spec ~drop:1.0 ~seed:1 ()) (one_message_sched 10)
  in
  Alcotest.(check int) "all dropped" 1 st.dropped;
  Alcotest.(check int) "unrecovered" 1 (Fault.unrecovered st);
  Alcotest.(check bool) "event removed" true (delivered = []);
  (* dup = 1: two copies delivered *)
  let delivered, st =
    Fault.apply (Fault.spec ~dup:1.0 ~seed:1 ()) (one_message_sched 10)
  in
  Alcotest.(check int) "duplicated" 1 st.duplicated;
  (match delivered with
  | [ Comm.Frontier f ] ->
      Alcotest.(check int) "two copies" 2 (List.length f.messages)
  | _ -> Alcotest.fail "expected one frontier event");
  (* trunc = 1: half the words survive *)
  let delivered, st =
    Fault.apply (Fault.spec ~trunc:1.0 ~seed:1 ()) (one_message_sched 10)
  in
  Alcotest.(check int) "truncated" 1 st.truncated;
  (match delivered with
  | [ Comm.Frontier { messages = [ m ]; _ } ] ->
      Alcotest.(check int) "half the words" 5 m.words;
      Alcotest.(check bool) "prefix range" true (m.ranges = [ (0, 4) ])
  | _ -> Alcotest.fail "expected one truncated message");
  (* a 1-word truncation has no deliverable prefix: counts as a drop *)
  let delivered, st =
    Fault.apply (Fault.spec ~trunc:1.0 ~seed:1 ()) (one_message_sched 1)
  in
  Alcotest.(check int) "1-word trunc drops" 1 st.dropped;
  Alcotest.(check bool) "nothing delivered" true (delivered = [])

let test_apply_deterministic () =
  let t = pipeline "jacobi2d" 4 4 in
  let sched = Comm.generate t.lcg t.plan in
  let spec = Fault.spec ~drop:0.3 ~dup:0.1 ~trunc:0.1 ~seed:123 () in
  let d1, s1 = Fault.apply spec ~retries:2 sched in
  let d2, s2 = Fault.apply spec ~retries:2 sched in
  Alcotest.(check bool) "same delivery" true (d1 = d2);
  Alcotest.(check bool) "same stats" true (s1 = s2);
  Alcotest.(check int) "every message drawn" (Comm.message_count sched)
    s1.messages;
  (* a different seed perturbs differently *)
  let d3, _ = Fault.apply { spec with seed = 124 } ~retries:2 sched in
  Alcotest.(check bool) "seed matters" true (d1 <> d3)

(* ------------------------------------------------------------------ *)
(* Acceptance: Validate flags un-retried corruption; bounded retry
   recovers it. *)

let validate_under_faults ~seed ~drop ~retries =
  let t = pipeline "jacobi2d" 4 4 in
  let rounds = if t.prog.repeats then 2 else 1 in
  let sched = Comm.generate t.lcg t.plan in
  let delivered, st = Fault.apply (Fault.spec ~drop ~seed ()) ~retries sched in
  (Validate.run ~rounds ~sched:delivered t.lcg t.plan, st)

let test_validate_catches_corruption () =
  (* seed chosen so that drops actually hit; no retry budget *)
  let r, st = validate_under_faults ~seed:42 ~drop:0.5 ~retries:0 in
  Alcotest.(check bool) "messages were lost" true (st.dropped > 0);
  Alcotest.(check int) "no recovery without retries" 0 st.recovered;
  Alcotest.(check bool) "validator flags stale reads" true (r.stale > 0);
  Alcotest.(check bool) "ok is false" false (Validate.ok r)

let test_retry_recovers () =
  let r, st = validate_under_faults ~seed:1 ~drop:0.5 ~retries:20 in
  Alcotest.(check bool) "faults occurred" true (st.recovered > 0);
  Alcotest.(check int) "all recovered" 0 (Fault.unrecovered st);
  Alcotest.(check int) "validator passes" 0 r.stale;
  Alcotest.(check bool) "retry log non-empty" true (st.retries <> []);
  Alcotest.(check bool) "attempts accounted" true (Fault.total_attempts st > 0)

let test_duplication_harmless () =
  (* duplicated delivery is idempotent for the versioned validator *)
  let t = pipeline "jacobi2d" 4 4 in
  let rounds = if t.prog.repeats then 2 else 1 in
  let sched = Comm.generate t.lcg t.plan in
  let delivered, st =
    Fault.apply (Fault.spec ~dup:1.0 ~seed:3 ()) ~retries:0 sched
  in
  Alcotest.(check int) "all duplicated" (Comm.message_count sched)
    st.duplicated;
  let r = Validate.run ~rounds ~sched:delivered t.lcg t.plan in
  Alcotest.(check int) "no stale reads" 0 r.stale

(* ------------------------------------------------------------------ *)
(* Exec integration: retry backoff is priced into parallel time *)

let test_exec_retry_accounting () =
  let t = pipeline "jacobi2d" 4 4 in
  let clean = Core.Pipeline.simulate t in
  Alcotest.(check (float 1e-9)) "no faults, no retry time" 0.0 clean.retry_time;
  Alcotest.(check bool) "no stats" true (clean.fault_stats = None);
  let faulty =
    Core.Pipeline.simulate ~faults:(Fault.spec ~drop:0.5 ~seed:1 ()) ~retries:20
      t
  in
  (match faulty.fault_stats with
  | None -> Alcotest.fail "expected fault stats"
  | Some st ->
      Alcotest.(check bool) "something recovered" true (st.recovered > 0);
      Alcotest.(check int) "nothing lost" 0 (Fault.unrecovered st));
  Alcotest.(check bool) "backoff priced" true (faulty.retry_time > 0.0);
  (* full recovery means same traffic plus the resend overhead *)
  Alcotest.(check (float 1e-6)) "par time = clean + retries"
    (clean.par_time +. faulty.retry_time)
    faulty.par_time;
  (* the fault summary lands in the pipeline diagnostics *)
  Alcotest.(check bool) "FAULT-INJECTED recorded" true
    (List.exists
       (fun (d : Core.Diag.t) -> d.code = "FAULT-INJECTED")
       (Core.Pipeline.diagnostics t))

(* ------------------------------------------------------------------ *)
(* Degradation ladder *)

let test_registry_codes_clean () =
  List.iter
    (fun (e : Codes.Registry.entry) ->
      let env = e.env_of_size e.default_size in
      let t = Core.Pipeline.run e.program ~env ~h:4 in
      Alcotest.(check bool)
        (e.name ^ " no error diagnostics")
        false
        (Core.Pipeline.degraded t))
    Codes.Registry.all

(* A quadratic subscript on the parallel loop is outside the ARD
   grammar: descriptor construction degrades the reference to the
   whole-array descriptor and the pipeline must still produce a plan. *)
let quad_program =
  Ir.Build.(
    program ~name:"quad"
      ~params:(Assume.of_list [ ("N", Assume.Int_range (8, 64)) ])
      ~arrays:[ array "A" [ var "N" * var "N" ]; array "B" [ var "N" ] ]
      [
        phase "QUAD"
          (doall "i" ~lo:(int 0)
             ~hi:(var "N" - int 1)
             [ assign [ read "A" [ var "i" * var "i" ]; write "B" [ var "i" ] ] ]);
        phase "SUM"
          (doall "i" ~lo:(int 0)
             ~hi:(var "N" - int 1)
             [ assign [ read "B" [ var "i" ]; write "B" [ var "i" ] ] ]);
      ])

let test_unsupported_subscript_degrades () =
  let env = Env.add "N" 16 Env.empty in
  let t = Core.Pipeline.run quad_program ~env ~h:4 in
  (* a full plan exists... *)
  Alcotest.(check int) "chunk per phase" 2 (Array.length t.plan.chunk);
  (* ...the degraded reference was diagnosed... *)
  Alcotest.(check bool) "DESC-WHOLE-ARRAY recorded" true
    (List.exists
       (fun (d : Core.Diag.t) -> d.code = "DESC-WHOLE-ARRAY")
       (Core.Pipeline.diagnostics t));
  (* ...the degraded node's pd is marked inexact... *)
  let inexact =
    List.exists
      (fun (g : Locality.Lcg.graph) ->
        List.exists
          (fun (n : Locality.Lcg.node) -> not n.pd.Descriptor.Pd.exact)
          g.nodes)
      t.lcg.graphs
  in
  Alcotest.(check bool) "inexact node present" true inexact;
  (* ...no edge incident to an inexact node claims locality... *)
  List.iter
    (fun (g : Locality.Lcg.graph) ->
      let nodes = Array.of_list g.nodes in
      List.iter
        (fun (e : Locality.Lcg.edge) ->
          let exact n = nodes.(n).Locality.Lcg.pd.Descriptor.Pd.exact in
          if not (exact e.src && exact e.dst) then
            Alcotest.(check bool)
              "degraded endpoints never L" true
              (e.label <> Locality.Table1.L))
        g.edges)
    t.lcg.graphs;
  (* ...and the program still simulates and validates end to end *)
  let r = Core.Pipeline.simulate t in
  Alcotest.(check bool) "simulates" true (r.par_time > 0.0);
  let v = Validate.run t.lcg t.plan in
  Alcotest.(check int) "dataflow still sound" 0 v.stale

let test_max_errors_cap () =
  let d = Core.Diag.collector ~max_errors:2 () in
  let add () =
    Core.Diag.add d ~severity:Core.Diag.Error ~stage:Core.Diag.Solve ~code:"X"
      "boom"
  in
  add ();
  add ();
  Alcotest.check_raises "cap enforced" (Core.Diag.Too_many_errors 2) add;
  (* warnings never count against the cap *)
  Core.Diag.add d ~severity:Core.Diag.Warning ~stage:Core.Diag.Solve ~code:"Y"
    "fine";
  Alcotest.(check int) "errors counted" 2 (Core.Diag.errors d)

let () =
  Alcotest.run "fault"
    [
      ( "spec",
        [
          Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "certain outcomes" `Quick
            test_apply_certain_outcomes;
          Alcotest.test_case "deterministic" `Quick test_apply_deterministic;
        ] );
      ( "validate",
        [
          Alcotest.test_case "catches corruption" `Quick
            test_validate_catches_corruption;
          Alcotest.test_case "retry recovers" `Quick test_retry_recovers;
          Alcotest.test_case "duplication harmless" `Quick
            test_duplication_harmless;
        ] );
      ( "exec",
        [ Alcotest.test_case "retry accounting" `Quick test_exec_retry_accounting ] );
      ( "degradation",
        [
          Alcotest.test_case "registry codes clean" `Quick
            test_registry_codes_clean;
          Alcotest.test_case "unsupported subscript" `Quick
            test_unsupported_subscript_degrades;
          Alcotest.test_case "max-errors cap" `Quick test_max_errors_cap;
        ] );
    ]
