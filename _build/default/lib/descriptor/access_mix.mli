(** Read/write mix of a descriptor row (rows may merge R and W sites). *)

type t = { reads : bool; writes : bool }

val of_access : Ir.Types.access -> t
val join : t -> t -> t
val read_only : t -> bool
val write_only : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
