open Symbolic

type overlap = No_overlap | Overlap of Expr.t | Overlap_unknown

type t = {
  shifted : Expr.t list;
  reverse : Expr.t list;
  overlap : overlap;
  write_overlap : bool;
}

(* Rows are congruent when their sequential structure and parallel
   stride agree. *)
let congruent asm (g1 : Id.group) (r1 : Id.row) (g2 : Id.group) (r2 : Id.row) =
  List.length g1.seq_dims = List.length g2.seq_dims
  && List.for_all2
       (fun (a : Pd.dim) (b : Pd.dim) -> Probe.equal asm a.stride b.stride)
       g1.seq_dims g2.seq_dims
  && List.length r1.seq_alphas = List.length r2.seq_alphas
  && List.for_all2 (fun a b -> Probe.equal asm a b) r1.seq_alphas r2.seq_alphas
  && Probe.equal asm r1.par_stride r2.par_stride

let pairs (id : Id.t) =
  let tagged =
    List.concat_map (fun (g : Id.group) -> List.map (fun r -> (g, r)) g.rows) id.groups
  in
  let rec go = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ go rest
  in
  go tagged

let analyze_raw (id : Id.t) : t =
  let asm = id.ctx.assume in
  let shifted = ref [] and reverse = ref [] in
  List.iter
    (fun ((g1, (r1 : Id.row)), (g2, (r2 : Id.row))) ->
      if congruent asm g1 r1 g2 r2 then
        if r1.par_sign = r2.par_sign then begin
          let d = Expr.sub r2.offset0 r1.offset0 in
          let d = if Probe.nonneg asm d then d else Expr.neg d in
          match Probe.sign asm d with
          | Some s when s > 0 -> shifted := d :: !shifted
          | _ -> ()
        end
        else begin
          (* Reverse pairs constrain the distribution only when the two
             rows approach each other: the decreasing row starts above
             the increasing one and they meet in the middle.  Delta_r is
             the inclusive element count of the span between the two
             starting positions - chunks advancing from both ends must
             satisfy delta_P * p * H <= Delta_r / 2. *)
          let inc, dec = if r1.par_sign > 0 then (r1, r2) else (r2, r1) in
          let d = Expr.sub dec.offset0 inc.offset0 in
          if Probe.nonneg asm d then
            reverse := Expr.add d Expr.one :: !reverse
        end)
    (pairs id);
  (* Delta_s: shared elements between the ID regions of two consecutive
     parallel iterations.  Detection is whole-ID sampled set
     intersection (covering both a row overlapping itself and a
     stencil's cross-row ghosts); when a closed-form candidate from the
     dense-interval formulas matches the sampled sizes it is reported
     as the distance, otherwise the overlap is flagged with unknown
     width. *)
  let tagged_rows =
    List.concat_map
      (fun (g : Id.group) -> List.map (fun r -> (g, r)) g.rows)
      id.groups
  in
  let region_at ?(only_writes = false) env i =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun ((g : Id.group), (r : Id.row)) ->
        if only_writes && not r.mix.Access_mix.writes then ()
        else begin
        let rec sweep base = function
          | [] -> Hashtbl.replace tbl base ()
          | (count, stride) :: rest ->
              for k = 0 to count - 1 do
                sweep (base + (k * stride)) rest
              done
        in
        let seq =
          List.map2
            (fun a (d : Pd.dim) -> (Env.eval env a, Env.eval env d.stride))
            r.seq_alphas g.seq_dims
        in
        let base =
          Env.eval env r.offset0
          + (i * r.par_sign * Env.eval env r.par_stride)
        in
        sweep base seq
        end)
      tagged_rows;
    tbl
  in
  let write_shared = ref false in
  let write_checks = ref 0 in
  let sampled_sizes =
    let sizes = ref [] and failed = ref false in
    let sample = Probe.sampler () in
    (try
       for _ = 1 to 12 do
         let env = sample asm in
         let s0 = region_at env 0 and s1 = region_at env 1 in
         let inter =
           Hashtbl.fold
             (fun a () acc -> if Hashtbl.mem s1 a then (a, env) :: acc else acc)
             s0 []
         in
         sizes := (List.length inter, env) :: !sizes;
         if inter <> [] && (not !write_shared) && !write_checks < 3 then begin
           incr write_checks;
           (* access-precise write check via the enumeration oracle:
              the unioned rows blur R/W mixes (Fig. 3(d) fuses a read
              and a write row), so ask the IR itself which of the
              shared cells are written *)
           let w0 = Hashtbl.create 32
           and a0 = Hashtbl.create 32
           and w1 = Hashtbl.create 32
           and a1 = Hashtbl.create 32 in
           Ir.Enumerate.iter id.ctx.prog env id.ctx.phase
             ~f:(fun ~par ~array ~addr access ~work:_ ->
               if String.equal array id.array then
                 match par with
                 | Some 0 ->
                     Hashtbl.replace a0 addr ();
                     if access = Ir.Types.Write then Hashtbl.replace w0 addr ()
                 | Some 1 ->
                     Hashtbl.replace a1 addr ();
                     if access = Ir.Types.Write then Hashtbl.replace w1 addr ()
                 | _ -> ());
           let hits w other =
             Hashtbl.fold (fun a () acc -> acc || Hashtbl.mem other a) w false
           in
           if hits w0 a1 || hits w1 a0 then write_shared := true
         end
       done
     with Expr.Non_integral _ | Env.Unbound _ -> failed := true);
    if !failed then None else Some !sizes
  in
  let dense (r : Id.row) =
    let count =
      List.fold_left (fun acc a -> Expr.mul acc a) Expr.one r.seq_alphas
    in
    Probe.equal asm (Expr.add r.span_seq Expr.one) count
  in
  let candidates =
    (* Self-overlap of each dense row, plus cross-row frontier formulas
       for dense row pairs with a common parallel stride; invariant
       rows (replication) contribute their whole extent. *)
    List.concat_map
      (fun ((_, (r : Id.row)) as _tr) ->
        if Expr.is_zero r.par_stride then [ Expr.add r.span_seq Expr.one ]
        else if dense r then
          [ Expr.add (Expr.sub r.span_seq r.par_stride) Expr.one ]
        else [])
      tagged_rows
    @ List.concat_map
        (fun ((_, (rj : Id.row)), (_, (rl : Id.row))) ->
          if
            dense rj && dense rl
            && Probe.equal asm rj.par_stride rl.par_stride
            && (not (Expr.is_zero rj.par_stride))
            && rj.par_sign = rl.par_sign
          then
            [
              (* UL_j(0) - LB_l(1) + 1 *)
              Expr.add
                (Expr.sub
                   (Expr.add rj.offset0 rj.span_seq)
                   (Expr.add rl.offset0 rl.par_stride))
                Expr.one;
            ]
          else [])
        (pairs id)
  in
  let positive_candidates =
    List.filter
      (fun e -> match Probe.sign asm e with Some s -> s > 0 | None -> false)
      candidates
  in
  let best_candidate =
    match positive_candidates with
    | [] -> None
    | e :: rest ->
        List.fold_left
          (fun acc x ->
            Option.bind acc (fun a ->
                if Probe.le asm x a then Some a
                else if Probe.le asm a x then Some x
                else None))
          (Some e) rest
  in
  let overlap =
    match id.ctx.par with
    | None -> No_overlap
    | Some _ -> (
        match sampled_sizes with
        | None ->
            (* Could not even sample: be conservative if any formula
               suggests sharing. *)
            if positive_candidates <> [] then Overlap_unknown else No_overlap
        | Some sizes ->
            let any = List.exists (fun (s, _) -> s > 0) sizes in
            if not any then No_overlap
            else (
              match best_candidate with
              | Some e
                when List.for_all
                       (fun (s, env) ->
                         try Env.eval env e = s
                         with Expr.Non_integral _ | Env.Unbound _ -> false)
                       sizes ->
                  Overlap e
              | _ -> Overlap_unknown))
  in
  let write_overlap =
    match overlap with
    | No_overlap -> false
    | Overlap _ -> !write_shared
    | Overlap_unknown ->
        (* if sampling worked, trust it; otherwise be conservative *)
        (match sampled_sizes with None -> true | Some _ -> !write_shared)
  in
  {
    shifted = List.sort_uniq Expr.compare !shifted;
    reverse = List.sort_uniq Expr.compare !reverse;
    overlap;
    write_overlap;
  }

(* [analyze] is re-entered for the same ID by the locality graph builder
   and again by [has_overlap]/[has_write_overlap] during modelling; the
   verdict depends on sampled environments, so the store is volatile
   (flushed when the probe stream is re-seeded).  The ID's structural
   key alone is not enough - the verdict also reads the analysis
   context (assumptions, parallel dimension, enumeration oracle), so
   the phase key is folded in. *)
let memo : t Artifact.store =
  Artifact.store ~capacity:4_096 ~volatile:true "symmetry.analyze"

let analyze (id : Id.t) : t =
  Artifact.find memo
    Artifact.Key.(list [ Ir.Phase.key id.ctx; Id.key id ])
    (fun () -> analyze_raw id)

let has_overlap id = (analyze id).overlap <> No_overlap
let has_write_overlap id = (analyze id).write_overlap

let all_congruent (id : Id.t) =
  let asm = id.ctx.assume in
  List.for_all
    (fun ((g1, r1), (g2, r2)) -> congruent asm g1 r1 g2 r2)
    (pairs id)

let pp ppf t =
  let pl name ppf = function
    | [] -> ()
    | l ->
        Format.fprintf ppf "%s: %a@ " name
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
             Expr.pp)
          l
  in
  Format.fprintf ppf "@[<h>%a%a%a@]" (pl "Delta_d") t.shifted (pl "Delta_r")
    t.reverse
    (fun ppf -> function
      | No_overlap -> Format.pp_print_string ppf "no overlap"
      | Overlap d -> Format.fprintf ppf "Delta_s: %a" Expr.pp d
      | Overlap_unknown -> Format.pp_print_string ppf "Delta_s: unknown")
    t.overlap
