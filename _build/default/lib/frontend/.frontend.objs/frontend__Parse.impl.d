lib/frontend/parse.ml: Assume Expr Format Fun Inline Ir Lexer List Printf String Symbolic Types
