open Locality

let markdown (t : Pipeline.t) =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# Locality analysis report: %s\n\n" t.prog.prog_name;
  add "- processors: **%d**\n- environment: `%s`\n\n" t.lcg.h
    (Format.asprintf "%a" Symbolic.Env.pp t.env);

  add "## Locality-Communication Graph\n\n```\n%s```\n\n"
    (Format.asprintf "%a" Lcg.pp t.lcg);
  add "<details><summary>Graphviz</summary>\n\n```dot\n%s```\n</details>\n\n"
    (Lcg.to_dot t.lcg);

  add "## Constraint model (Table 2 form)\n\n```\n%s```\n\n"
    (Format.asprintf "%a" Ilp.Model.pp t.model);

  add "## Solution and distribution plan\n\n";
  add "objective **%.1f** = load imbalance %.1f + communication %.1f%s\n\n"
    t.solution.objective t.solution.d_cost t.solution.c_cost
    (match t.solution.broken with
    | [] -> ""
    | b -> Printf.sprintf " (%d violated rows)" (List.length b));
  add "```\n%s```\n\n" (Format.asprintf "%a" Ilp.Distribution.pp t.plan);

  add "## Chains\n\n```\n%s```\n\n"
    (String.concat "\n"
       (List.map
          (fun c -> Format.asprintf "%a" Chain.pp c)
          (Chain.summaries t.lcg)));

  let sched =
    Dsmsim.Comm.generate ~on_error:(Pipeline.record_comm_error t) t.lcg t.plan
  in
  add "## Communication schedule\n\n";
  add
    "- %d redistribution events, %d frontier events\n- %d aggregated \
     messages, %d words total\n\n"
    (List.length (Dsmsim.Comm.redistributions sched))
    (List.length (Dsmsim.Comm.frontiers sched))
    (Dsmsim.Comm.message_count sched)
    (Dsmsim.Comm.total_words sched);

  add "## Simulation\n\n";
  let run = Pipeline.simulate t in
  let base = Pipeline.simulate_baseline t in
  add "| plan | efficiency | remote accesses | T_par (cycles) |\n";
  add "|---|---|---|---|\n";
  add "| LCG-derived | %.1f%% | %d | %.0f |\n" (100. *. run.efficiency)
    run.total_remote run.par_time;
  add "| BLOCK baseline | %.1f%% | %d | %.0f |\n\n" (100. *. base.efficiency)
    base.total_remote base.par_time;

  let rounds = if t.prog.repeats then 2 else 1 in
  let v = Dsmsim.Validate.run ~rounds t.lcg t.plan in
  add "## Dataflow validation\n\n";
  add
    "%s - %d reads replayed against versioned memory, %d stale.\n"
    (if Dsmsim.Validate.ok v then "**PASS**" else "**FAIL**")
    v.reads v.stale;

  (match Pipeline.diagnostics t with
  | [] -> ()
  | ds ->
      add "\n## Diagnostics\n\n";
      add "| severity | stage | code | message |\n|---|---|---|---|\n";
      List.iter
        (fun (d : Diag.t) ->
          add "| %s | %s | `%s` | %s |\n"
            (Diag.severity_to_string d.severity)
            (Diag.stage_to_string d.stage)
            d.code d.message)
        ds);
  Buffer.contents buf

let print ppf t = Format.pp_print_string ppf (markdown t)
