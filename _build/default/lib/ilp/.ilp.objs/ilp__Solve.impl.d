lib/ilp/solve.ml: Array Cost Descriptor Fun Hashtbl Ir Lcg List Locality Model Queue String Symbolic Table1
