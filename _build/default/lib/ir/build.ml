open Symbolic
open Types

let int = Expr.int
let var = Expr.var
let ( + ) = Expr.add
let ( - ) = Expr.sub
let ( * ) = Expr.mul
let ( / ) = Expr.div
let pow2 = Expr.pow2

let doall v ~lo ~hi body =
  Loop { var = v; lo; hi; step = Expr.one; parallel = true; body }

let do_ v ~lo ~hi ?(step = Expr.one) body =
  Loop { var = v; lo; hi; step; parallel = false; body }

let read array index = { array; index; access = Read }
let write array index = { array; index; access = Write }
let assign ?(work = 1) refs = Assign { refs; work }

let phase name = function
  | Loop nest -> { phase_name = name; nest }
  | Assign _ -> invalid_arg "Build.phase: phase body must be a loop nest"

let array name dims = { name; dims }

let program ?(repeats = false) ~name ~params ~arrays phases =
  { prog_name = name; params; arrays; phases; repeats }
