open Locality
open Ilp

type report = {
  reads : int;
  stale : int;
  stale_examples : (string * int * int) list;
}

let run ?(rounds = 1) ?on_error ?sched (lcg : Lcg.t) (plan : Distribution.plan)
    : report =
  let h = plan.h in
  let sched =
    match sched with Some s -> s | None -> Comm.generate ?on_error lcg plan
  in
  (* golden.(array, addr) = version after the latest sequential write *)
  let golden : (string * int, int) Hashtbl.t = Hashtbl.create 1024 in
  (* held.(proc, array, addr) = version of that processor's copy *)
  let held : (int * string * int, int) Hashtbl.t = Hashtbl.create 4096 in
  let g key = try Hashtbl.find golden key with Not_found -> 0 in
  let hv proc (a, x) = try Hashtbl.find held (proc, a, x) with Not_found -> 0 in
  let set_held proc (a, x) v = Hashtbl.replace held (proc, a, x) v in
  let reads = ref 0 and stale = ref 0 in
  let examples = ref [] in
  let counter = ref 0 in
  let sizes = Hashtbl.create 8 in
  let size_of array =
    match Hashtbl.find_opt sizes array with
    | Some s -> s
    | None ->
        let s = Comm.array_size ?on_error lcg array in
        Hashtbl.add sizes array s;
        s
  in
  let deliver (m : Comm.message) array =
    List.iter
      (fun (lo, hi) ->
        for a = lo to hi do
          set_held m.dst (array, a) (hv m.src (array, a))
        done)
      m.ranges
  in
  (* The round/phase/event protocol is Machine.walk's; this backend
     delivers every gated event (no written-set filter: an un-written
     frontier strip is a no-op copy) and replays accesses against the
     versioned memory. *)
  Machine.walk ~rounds ~sched ~phases:lcg.prog.phases
    ~step:(fun ~round:_ ~k ph ~incoming ~outgoing ->
        List.iter
          (function
            | Comm.Redistribute { array; messages; _ } ->
                List.iter (fun m -> deliver m array) messages
            | Comm.Frontier _ -> ())
          incoming;
        let chunk = plan.chunk.(k) in
        let privatized array = List.mem (k, array) plan.privatized in
        Ir.Enumerate.iter lcg.prog lcg.env ph
          ~f:(fun ~par ~array ~addr access ~work:_ ->
            if not (privatized array) then begin
              let key = (array, addr) in
              let proc =
                match par with
                | Some i -> i / max 1 chunk mod h
                | None -> 0
              in
              let layout = Distribution.layout_for plan ~array ~phase_idx:k in
              let owner =
                match layout with
                | Some l -> Distribution.proc_of plan l ~addr
                | None -> proc
              in
              match access with
              | Ir.Types.Write ->
                  incr counter;
                  Hashtbl.replace golden key !counter;
                  set_held owner key !counter;
                  if proc <> owner then set_held proc key !counter
              | Ir.Types.Read ->
                  incr reads;
                  let serving =
                    (* owned or halo-local reads use the local replica;
                       everything else is a direct get from the owner *)
                    match layout with
                    | Some l
                      when proc <> owner
                           && l.halo > 0
                           &&
                           let w = min l.halo l.block in
                           (match size_of array with
                           | Some s -> l.halo >= s
                           | None -> false)
                           || Distribution.proc_of plan l ~addr:(addr - w)
                              = proc
                           || Distribution.proc_of plan l ~addr:(addr + w)
                              = proc ->
                        proc
                    | _ -> if proc = owner then proc else owner
                  in
                  if hv serving key <> g key then begin
                    incr stale;
                    if List.length !examples < 10 then
                      examples := (array, addr, k) :: !examples
                  end
            end);
        (* outgoing frontier updates *)
        List.iter
          (function
            | Comm.Frontier { array; messages; _ } ->
                List.iter (fun m -> deliver m array) messages
            | Comm.Redistribute _ -> ())
          outgoing);
  { reads = !reads; stale = !stale; stale_examples = List.rev !examples }

let ok r = r.stale = 0

let pp ppf r =
  Format.fprintf ppf "reads %d, stale %d" r.reads r.stale;
  List.iter
    (fun (a, x, k) -> Format.fprintf ppf "@,  stale %s(%d) in phase %d" a x k)
    r.stale_examples
