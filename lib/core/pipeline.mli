(** End-to-end driver: the paper's whole tool-chain in one call.

    [run] takes a program with Polaris-style pre-marked parallel loops,
    a concrete parameter environment and a processor count, and
    performs: descriptor construction and simplification, attribute and
    privatizability analysis, intra/inter-phase locality analysis (the
    LCG), constraint generation (Table 2), overhead minimization
    (Eq. 7) and distribution planning.  [simulate] replays the program
    on the DSM machine model under the derived plan;
    [simulate_baseline] does the same under the naive BLOCK /
    owner-computes plan for comparison.

    {b Totality.}  [run] is total over well-parsed programs: each stage
    executes under a recovery wrapper that catches the analysis-layer
    exceptions with a documented conservative fallback
    ({!Diag.recoverable} failures - unsupported subscripts,
    non-rectangular regions, symbolic overflow, unbound parameters) and
    records a {!Diag.t} instead of crashing.  The degradation ladder
    (DESIGN.md, "Error handling & degradation ladder"):

    - descriptor failures degrade a reference to the whole-array
      descriptor and force its phase's edges to C (never falsely L);
    - LCG / model failures degrade to an empty graph / empty constraint
      set, which downstream yields the BLOCK baseline plan;
    - solver failures or plan-construction failures fall back to the
      BLOCK baseline plan directly.

    Passing [~strict:true] disables recovery: the first failure
    re-raises, for callers that prefer crashing to degrading. *)

open Symbolic

val recoverable : exn -> bool
(** The typed exceptions the degradation ladder knows a fallback for. *)

val describe : exn -> string
(** Human-readable one-liner for a {!recoverable} exception. *)

type t = {
  prog : Ir.Types.program;
  env : Env.t;
  machine : Ilp.Cost.machine;
  lcg : Locality.Lcg.t;
  model : Ilp.Model.t;
  solution : Ilp.Solve.result;
  plan : Ilp.Distribution.plan;
  diags : Diag.collector;  (** everything recorded during [run] *)
}

val run :
  ?machine:Ilp.Cost.machine ->
  ?strict:bool ->
  ?lint:bool ->
  ?diags:Diag.collector ->
  Ir.Types.program ->
  env:Env.t ->
  h:int ->
  t
(** [strict] (default false) re-raises instead of degrading.  [lint]
    (default true) runs the {!Lint} rule pass over the program before
    any analysis stage, recording its findings alongside the stage
    diagnostics; under [strict], [Error]-severity findings raise
    {!Lint.Failed} before analysis starts.  [diags] supplies an
    external collector (e.g. one with a [max_errors] cap); a fresh
    unbounded one is created otherwise. *)

val parse_program :
  ?diags:Diag.collector -> where:string -> string -> Ir.Types.program option
(** Total wrapper over {!Frontend.Parse.program}: a parse or lexer
    failure records a positioned [FRONTEND-PARSE] error diagnostic
    (stage [Frontend], position ["<where>:<line>"]) and returns [None]
    instead of raising.  [where] names the source for the position
    column (a path, ["<stdin>"], a generator tag). *)

val diagnostics : t -> Diag.t list
(** Diagnostics recorded so far, in order - grows as [simulate] /
    [simulate_baseline] record communication and fault diagnostics. *)

val degraded : t -> bool
(** True when any [Error]-severity diagnostic was recorded, i.e. at
    least one stage ran on its fallback. *)

val record_comm_error : t -> string -> unit
(** Record a [COMM-SIZE] error - the [on_error] callback to hand to
    {!Dsmsim.Comm.generate} when driving the simulator manually. *)

val record_fault_stats : t -> Dsmsim.Fault.stats -> unit
(** Record [FAULT-INJECTED] (and [FAULT-UNRECOVERED] when corruption
    survived the retry budget) for a manually-applied {!Dsmsim.Fault}
    perturbation. *)

val simulate :
  ?rounds:int -> ?faults:Dsmsim.Fault.spec -> ?retries:int -> t -> Dsmsim.Exec.run
(** Replays under the derived plan.  [faults]/[retries] inject
    deterministic message corruption with a bounded resend budget
    ({!Dsmsim.Fault}); fault summaries and unrecovered corruption are
    recorded into [t.diags] ([FAULT-INJECTED] / [FAULT-UNRECOVERED]),
    as are communication-schedule size failures ([COMM-SIZE]). *)

val simulate_baseline : ?rounds:int -> t -> Dsmsim.Exec.run

val efficiency : t -> float * float
(** (LCG-plan efficiency, BLOCK-baseline efficiency). *)

val report_core : Format.formatter -> t -> unit
(** The analysis payload alone: LCG, Table-2 model, solution, plan.
    Mode-independent by construction - the symbolic/enumerated
    differential oracle compares it byte for byte. *)

val report : Format.formatter -> t -> unit
(** {!report_core} followed (when non-empty) by the diagnostics
    table. *)
