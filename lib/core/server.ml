(* `dsmloc serve`: the warm analysis daemon.  See server.mli for the
   robustness contract and DESIGN.md section 15 for the protocol and
   state machines. *)

open Symbolic
module Wire = Frontend.Wire

type config = {
  socket : string option;
  workers : int;
  queue_cap : int;
  default_deadline : float option;
  max_frame : int;
  max_worker_jobs : int;
  max_worker_rss_kb : int;
  drain_deadline : float;
  max_connections : int;
  test_hooks : bool;
  verbose : bool;
}

let default_config =
  {
    socket = None;
    workers = 4;
    queue_cap = 64;
    default_deadline = None;
    max_frame = Wire.default_max_frame;
    max_worker_jobs = 256;
    max_worker_rss_kb = 1 lsl 20;
    drain_deadline = 5.0;
    max_connections = 64;
    test_hooks = false;
    verbose = false;
  }

(* ------------------------------------------------------------------ *)
(* Metrics *)

let req_counter = Metrics.counter "serve.requests"
let ok_counter = Metrics.counter "serve.ok"
let degraded_counter = Metrics.counter "serve.degraded"
let error_counter = Metrics.counter "serve.errors"
let shed_counter = Metrics.counter "serve.shed"
let bad_frame_counter = Metrics.counter "serve.bad_frames"
let bad_request_counter = Metrics.counter "serve.bad_requests"
let deadline_counter = Metrics.counter "serve.deadline"
let lost_counter = Metrics.counter "serve.worker_lost"
let latency_hist = Metrics.histogram "serve.latency_ms"
let depth_hist = Metrics.histogram "serve.queue_depth"

(* ------------------------------------------------------------------ *)
(* The worker side: everything here runs in a forked Pool.Server
   worker.  Request and reply records cross the fork boundary by
   Marshal, so they are plain data. *)

type wreq = {
  q_source : string;
  q_env : (string * int) list;
  q_procs : int;
  q_hang : float;
  q_crash : bool;
}

type wrep = {
  p_status : Wire.status;
  p_code : string option;
  p_hits : int;  (* artifact-store hits while serving this request *)
  p_body : string;
}

let mk_rep ?code status body =
  { p_status = status; p_code = code; p_hits = 0; p_body = body }

(* Whole-response artifact: a byte-for-byte repeat of (program, env,
   procs) is answered from the store - the strongest form of warm
   reuse.  Responses are pure functions of the key: the probe seed is
   derived from the program digest, so the cached bytes are exactly
   what a cold run would produce. *)
let response_store : wrep Artifact.store =
  Artifact.store ~capacity:1024 "serve.response"

let request_key (q : wreq) =
  Artifact.Key.(
    list
      [
        str (Digest.string q.q_source);
        list (List.map (fun (k, v) -> list [ str k; int v ]) q.q_env);
        int q.q_procs;
      ])

let artifact_hits_total () =
  List.fold_left (fun acc (s : Artifact.stat) -> acc + s.hits) 0
    (Artifact.stats ())

exception Reply of wrep

(* Mirror of the `dsmloc file` parameter defaulting: explicit bindings
   win; otherwise each declared range takes its midpoint and pow2
   parameters derive from their (already bound) exponent. *)
let env_of_request (prog : Ir.Types.program) bindings =
  if bindings <> [] then
    List.fold_left (fun env (k, v) -> Env.add k v env) Env.empty bindings
  else
    List.fold_left
      (fun env (v, d) ->
        match d with
        | Assume.Int_range (lo, hi) -> Env.add v ((lo + hi) / 2) env
        | Assume.Pow2_of w -> (
            match Env.find env w with
            | e -> Env.add v (1 lsl e) env
            | exception Env.Unbound _ ->
                raise
                  (Reply
                     (mk_rep ~code:"SERVE-BAD-REQUEST" Wire.Error
                        (Printf.sprintf
                           "parameter %s = 2^%s: %s is not bound (declare it \
                            first or pass %%env)"
                           v w w))))
        | Assume.Expr_range _ -> env)
      Env.empty
      (Assume.to_list prog.Ir.Types.params)

let compute (q : wreq) : wrep =
  let prog =
    try Frontend.Parse.program q.q_source
    with Frontend.Parse.Error { line; message } ->
      raise
        (Reply
           (mk_rep ~code:"SERVE-PARSE" Wire.Error
              (Printf.sprintf "line %d: %s" line message)))
  in
  let env = env_of_request prog q.q_env in
  let diags = Diag.collector () in
  let t = Pipeline.run ~diags prog ~env ~h:q.q_procs in
  let body = Format.asprintf "%a@." Pipeline.report t in
  if Pipeline.degraded t then mk_rep Wire.Degraded body
  else mk_rep Wire.Ok body

(* One request, inside the worker.  Test hooks run before the cache so
   a hang/crash behaves identically on warm repeats; the artifact-hit
   delta is measured around the store lookup so a response served from
   the store reports its own hit. *)
let serve_one ~test_hooks (q : wreq) : wrep =
  if test_hooks && q.q_crash then Unix.kill (Unix.getpid ()) Sys.sigkill;
  if test_hooks && q.q_hang > 0. then Unix.sleepf q.q_hang;
  let before = artifact_hits_total () in
  let rep =
    Artifact.find response_store (request_key q) @@ fun () ->
    let seed = Hashtbl.hash (Digest.string q.q_source) land 0x3FFFFFFF in
    match Probe.with_seed seed (fun () -> compute q) with
    | rep -> rep
    | exception Reply rep -> rep
    | exception e ->
        mk_rep ~code:"SERVE-INTERNAL" Wire.Error (Printexc.to_string e)
  in
  { rep with p_hits = artifact_hits_total () - before }

(* ------------------------------------------------------------------ *)
(* Parent-side plumbing *)

let rec restart f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart f

let write_all fd buf =
  let len = Bytes.length buf in
  let ofs = ref 0 in
  while !ofs < len do
    let n = restart (fun () -> Unix.write fd buf !ofs (len - !ofs)) in
    ofs := !ofs + n
  done

type conn = {
  c_id : int;
  c_rfd : Unix.file_descr;
  c_wfd : Unix.file_descr;  (* = c_rfd except in stdio mode *)
  c_stdio : bool;  (* never actually close the process's stdin/stdout *)
  c_dec : Wire.decoder;
  mutable c_out : (bytes * int) list;  (* pending writes: buffer, offset *)
  mutable c_inflight : int;  (* requests submitted, reply not yet queued *)
  mutable c_eof : bool;
  mutable c_closing : bool;  (* stop reading; close once flushed *)
  mutable c_dead : bool;
}

type pending = { pr_conn : conn; pr_submitted : float }

type state = {
  cfg : config;
  diags : Diag.collector;
  pool : (wreq, wrep) Pool.Server.t;
  mutable listen_fd : Unix.file_descr option;
  mutable conns : conn list;
  pending : (int, pending) Hashtbl.t;  (* pool job id -> requester *)
  mutable next_conn : int;
  mutable stop : bool;
}

let log st fmt =
  if st.cfg.verbose then
    Printf.ksprintf (fun s -> Printf.eprintf "dsmloc-serve: %s\n%!" s) fmt
  else Printf.ksprintf ignore fmt

(* Non-blocking buffered writes: replies queue on the connection and
   drain as the peer accepts them, so one slow reader never stalls the
   daemon. *)
let try_flush st conn =
  let rec go () =
    match conn.c_out with
    | [] -> ()
    | (buf, ofs) :: rest -> (
        let len = Bytes.length buf - ofs in
        match Unix.write conn.c_wfd buf ofs len with
        | n ->
            if n = len then begin
              conn.c_out <- rest;
              go ()
            end
            else conn.c_out <- (buf, ofs + n) :: rest
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error _ ->
            log st "conn %d: write failed, dropping" conn.c_id;
            conn.c_dead <- true)
  in
  if not conn.c_dead then go ()

let enqueue_reply st conn (resp : Wire.response) =
  if not conn.c_dead then begin
    let frame = Wire.encode_frame (Wire.encode_response resp) in
    conn.c_out <- conn.c_out @ [ (frame, 0) ];
    try_flush st conn
  end

let close_conn conn =
  if not conn.c_dead then begin
    conn.c_dead <- true;
    if not conn.c_stdio then (
      try Unix.close conn.c_rfd with Unix.Unix_error _ -> ())
  end

(* Retry-after hint on shed requests: proportional to the backlog per
   worker, from the observed mean service latency (50 ms floor when
   nothing completed yet). *)
let retry_after_hint st =
  let depth = Pool.Server.queue_depth st.pool + Pool.Server.in_flight st.pool in
  let mean_s =
    match
      List.assoc_opt "serve.latency_ms" (Metrics.snapshot ()).Metrics.histograms
    with
    | Some (n, sum, _, _) when n > 0 -> sum /. float_of_int n /. 1000.
    | _ -> 0.05
  in
  max 0.05 (mean_s *. float_of_int (depth + 1) /. float_of_int st.cfg.workers)

let handle_request st conn payload =
  match Wire.parse_request payload with
  | Error msg ->
      Metrics.incr bad_request_counter;
      Diag.addf st.diags ~severity:Diag.Warning ~stage:Diag.Serve
        ~code:"SERVE-BAD-REQUEST" "conn %d: %s" conn.c_id msg;
      enqueue_reply st conn
        (Wire.response ~code:"SERVE-BAD-REQUEST" Wire.Error msg)
  | Ok req ->
      Metrics.incr req_counter;
      let q =
        {
          q_source = req.Wire.source;
          q_env = req.Wire.env;
          q_procs = req.Wire.procs;
          (* hooks are inert unless the daemon opted in *)
          q_hang = (if st.cfg.test_hooks then req.Wire.hang else 0.);
          q_crash = st.cfg.test_hooks && req.Wire.crash;
        }
      in
      let deadline =
        match req.Wire.deadline with
        | Some d -> Some d
        | None -> st.cfg.default_deadline
      in
      let affinity = Hashtbl.hash (Digest.string q.q_source) in
      Metrics.observe depth_hist
        (float_of_int (Pool.Server.queue_depth st.pool));
      (match Pool.Server.submit st.pool ~affinity ?deadline q with
      | Ok id ->
          Hashtbl.replace st.pending id
            { pr_conn = conn; pr_submitted = Metrics.now () };
          conn.c_inflight <- conn.c_inflight + 1;
          log st "conn %d: request %d admitted (depth %d)" conn.c_id id
            (Pool.Server.queue_depth st.pool)
      | Error `Overloaded ->
          Metrics.incr shed_counter;
          let hint = retry_after_hint st in
          Diag.addf st.diags ~severity:Diag.Warning ~stage:Diag.Serve
            ~code:"SERVE-OVERLOAD"
            "conn %d: queue full (%d), shed with retry-after %.2fs" conn.c_id
            st.cfg.queue_cap hint;
          enqueue_reply st conn
            (Wire.response ~code:"SERVE-OVERLOAD" ~retry_after:hint
               Wire.Overload
               (Printf.sprintf
                  "queue full (%d queued); retry after the hint"
                  st.cfg.queue_cap)))

(* Drain every complete frame the connection has buffered. *)
let rec pump_frames st conn =
  if conn.c_dead || conn.c_closing then ()
  else
    match Wire.next conn.c_dec with
    | Wire.Frame payload ->
        handle_request st conn payload;
        pump_frames st conn
    | Wire.Need_more -> ()
    | Wire.Bad msg ->
        Metrics.incr bad_frame_counter;
        Diag.addf st.diags ~severity:Diag.Warning ~stage:Diag.Serve
          ~code:"SERVE-BAD-FRAME" "conn %d: %s" conn.c_id msg;
        enqueue_reply st conn
          (Wire.response ~code:"SERVE-BAD-FRAME" Wire.Error msg);
        (* a marshal-framed stream cannot be resynchronised *)
        conn.c_closing <- true

let read_conn st conn =
  let buf = Bytes.create 65536 in
  let rec go () =
    match Unix.read conn.c_rfd buf 0 (Bytes.length buf) with
    | 0 -> conn.c_eof <- true
    | n ->
        Wire.feed conn.c_dec buf ~pos:0 ~len:n;
        pump_frames st conn;
        if not conn.c_closing then go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ ->
        conn.c_dead <- true
  in
  if not (conn.c_dead || conn.c_closing) then go ()

let status_counter = function
  | Wire.Ok -> ok_counter
  | Wire.Degraded -> degraded_counter
  | Wire.Deadline -> deadline_counter
  | Wire.Overload -> shed_counter
  | Wire.Error -> error_counter

let handle_completion st (c : wrep Pool.Server.completion) =
  match Hashtbl.find_opt st.pending c.Pool.Server.c_id with
  | None -> ()
  | Some { pr_conn; pr_submitted } ->
      Hashtbl.remove st.pending c.Pool.Server.c_id;
      pr_conn.c_inflight <- pr_conn.c_inflight - 1;
      let elapsed_ms = (Metrics.now () -. pr_submitted) *. 1000. in
      Metrics.observe latency_hist elapsed_ms;
      let resp =
        match c.Pool.Server.c_outcome with
        | Ok rep ->
            Wire.response ?code:rep.p_code ~artifact_hits:rep.p_hits
              ~worker_requests:c.Pool.Server.c_worker_jobs ~elapsed_ms
              rep.p_status rep.p_body
        | Error (code, reason) ->
            let status, serve_code =
              match code with
              | "POOL-DEADLINE" -> (Wire.Deadline, "SERVE-DEADLINE")
              | "POOL-WORKER-LOST" | "POOL-BAD-FRAME" ->
                  (Wire.Error, "SERVE-WORKER-LOST")
              | "POOL-DRAIN" -> (Wire.Error, "SERVE-DRAIN")
              | _ -> (Wire.Error, "SERVE-INTERNAL")
            in
            Diag.addf st.diags ~severity:Diag.Warning ~stage:Diag.Serve
              ~code:serve_code "request %d: %s (%s after %d attempts)"
              c.Pool.Server.c_id reason code c.Pool.Server.c_attempts;
            (match serve_code with
            | "SERVE-WORKER-LOST" -> Metrics.incr lost_counter
            | _ -> ());
            Wire.response ~code:serve_code ~elapsed_ms status
              (Printf.sprintf "%s (%s)" reason code)
      in
      Metrics.incr (status_counter resp.Wire.status);
      log st "request %d: %s in %.1fms (worker request #%d)"
        c.Pool.Server.c_id
        (Wire.status_to_string resp.Wire.status)
        elapsed_ms c.Pool.Server.c_worker_jobs;
      enqueue_reply st pr_conn resp

(* ------------------------------------------------------------------ *)
(* Event loop *)

let mk_conn st ?(stdio = false) ~rfd ~wfd () =
  let c =
    {
      c_id = st.next_conn;
      c_rfd = rfd;
      c_wfd = wfd;
      c_stdio = stdio;
      c_dec = Wire.decoder ~max_frame:st.cfg.max_frame ();
      c_out = [];
      c_inflight = 0;
      c_eof = false;
      c_closing = false;
      c_dead = false;
    }
  in
  st.next_conn <- st.next_conn + 1;
  st.conns <- st.conns @ [ c ];
  c

let accept_new st listen_fd =
  let rec go () =
    match Unix.accept ~cloexec:true listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        if List.length st.conns >= st.cfg.max_connections then begin
          Metrics.incr shed_counter;
          let c = mk_conn st ~rfd:fd ~wfd:fd () in
          Diag.addf st.diags ~severity:Diag.Warning ~stage:Diag.Serve
            ~code:"SERVE-OVERLOAD" "connection limit %d reached, shedding"
            st.cfg.max_connections;
          enqueue_reply st c
            (Wire.response ~code:"SERVE-OVERLOAD"
               ~retry_after:(retry_after_hint st) Wire.Overload
               "connection limit reached");
          c.c_closing <- true
        end
        else begin
          let c = mk_conn st ~rfd:fd ~wfd:fd () in
          log st "conn %d: accepted" c.c_id
        end;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

(* Close connections that have nothing left to say: flushed and either
   half-closed by the peer (with no replies outstanding) or poisoned. *)
let sweep_conns st =
  List.iter
    (fun c ->
      if not c.c_dead then begin
        if c.c_closing && c.c_out = [] then close_conn c
        else if c.c_eof && c.c_inflight = 0 && c.c_out = [] then close_conn c
      end)
    st.conns;
  st.conns <- List.filter (fun c -> not c.c_dead) st.conns

let emit_final_snapshot () =
  Printf.eprintf "dsmloc-serve: final metrics %s\n%!"
    (Metrics.to_json (Metrics.snapshot ()))

let run ?(diags = Diag.collector ()) cfg =
  let cfg = { cfg with workers = max 1 cfg.workers } in
  let pool =
    Pool.Server.create ~workers:cfg.workers ~queue_cap:cfg.queue_cap
      ~retries:1 ~max_worker_jobs:cfg.max_worker_jobs
      ~max_worker_rss_kb:cfg.max_worker_rss_kb
      ~f:(serve_one ~test_hooks:cfg.test_hooks)
      ()
  in
  let st =
    {
      cfg;
      diags;
      pool;
      listen_fd = None;
      conns = [];
      pending = Hashtbl.create 64;
      next_conn = 0;
      stop = false;
    }
  in
  (match cfg.socket with
  | Some path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 128;
      Unix.set_nonblock fd;
      st.listen_fd <- Some fd;
      log st "listening on %s (%d workers)" path cfg.workers
  | None ->
      Unix.set_nonblock Unix.stdin;
      ignore (mk_conn st ~stdio:true ~rfd:Unix.stdin ~wfd:Unix.stdout ());
      log st "serving stdio (%d workers)" cfg.workers);
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> st.stop <- true)) in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> st.stop <- true)) in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigint old_int;
      (match (st.listen_fd, cfg.socket) with
      | Some fd, Some path ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          (try Unix.unlink path with Unix.Unix_error _ -> ())
      | _ -> ());
      List.iter close_conn st.conns;
      Pool.Server.destroy pool;
      emit_final_snapshot ())
  @@ fun () ->
  (* ---------------- main loop ---------------- *)
  let stdio_done () =
    cfg.socket = None
    && List.for_all
         (fun c -> c.c_dead || (c.c_eof && c.c_inflight = 0 && c.c_out = []))
         st.conns
  in
  while not (st.stop || stdio_done ()) do
    let reads =
      (match st.listen_fd with Some fd -> [ fd ] | None -> [])
      @ List.filter_map
          (fun c ->
            if c.c_dead || c.c_closing || c.c_eof then None else Some c.c_rfd)
          st.conns
      @ Pool.Server.readable_fds pool
    in
    let writes =
      List.filter_map
        (fun c -> if (not c.c_dead) && c.c_out <> [] then Some c.c_wfd else None)
        st.conns
    in
    let timeout =
      match Pool.Server.next_deadline pool with
      | Some d -> max 0.01 (min 0.5 (d -. Metrics.now ()))
      | None -> 0.5
    in
    let readable, writable, _ =
      try Unix.select reads writes [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    (match st.listen_fd with
    | Some fd when List.mem fd readable -> accept_new st fd
    | _ -> ());
    List.iter
      (fun c -> if List.mem c.c_rfd readable then read_conn st c)
      st.conns;
    let pool_readable =
      let pool_fds = Pool.Server.readable_fds pool in
      List.filter (fun fd -> List.mem fd pool_fds) readable
    in
    List.iter (handle_completion st)
      (Pool.Server.step pool ~readable:pool_readable ());
    List.iter
      (fun c -> if List.mem c.c_wfd writable then try_flush st c)
      st.conns;
    sweep_conns st
  done;
  (* ---------------- graceful drain ---------------- *)
  log st "drain: %d queued, %d in flight (deadline %.1fs)"
    (Pool.Server.queue_depth pool)
    (Pool.Server.in_flight pool)
    cfg.drain_deadline;
  (match (st.listen_fd, cfg.socket) with
  | Some fd, Some path ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      st.listen_fd <- None
  | _ -> ());
  List.iter (handle_completion st)
    (Pool.Server.drain pool ~deadline:cfg.drain_deadline);
  (* flush outstanding replies, bounded by a last short deadline *)
  let flush_until = Metrics.now () +. max 1.0 (cfg.drain_deadline /. 2.) in
  let rec flush_loop () =
    let waiting =
      List.filter (fun c -> (not c.c_dead) && c.c_out <> []) st.conns
    in
    if waiting <> [] && Metrics.now () < flush_until then begin
      let writes = List.map (fun c -> c.c_wfd) waiting in
      let _, writable, _ =
        try Unix.select [] writes [] 0.2
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun c -> if List.mem c.c_wfd writable then try_flush st c)
        waiting;
      flush_loop ()
    end
  in
  flush_loop ();
  log st "drained; %d requests total" (Pool.Server.recycles pool)

(* ------------------------------------------------------------------ *)
(* Client *)

module Client = struct
  let connect path =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "connect %s: %s" path (Unix.error_message e))

  let recv_response fd ~until =
    let dec = Wire.decoder () in
    let buf = Bytes.create 65536 in
    let rec go () =
      match Wire.next dec with
      | Wire.Frame payload -> (
          match Wire.parse_response payload with
          | Ok r -> Ok r
          | Error msg -> Error ("malformed response: " ^ msg))
      | Wire.Bad msg -> Error ("bad response frame: " ^ msg)
      | Wire.Need_more ->
          let left = until -. Unix.gettimeofday () in
          if left <= 0. then Error "timeout waiting for response"
          else begin
            match
              try Unix.select [ fd ] [] [] left
              with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
            with
            | [], _, _ -> go ()
            | _ -> (
                match restart (fun () -> Unix.read fd buf 0 (Bytes.length buf)) with
                | 0 ->
                    Error
                      (Printf.sprintf
                         "connection closed mid-response (%d bytes buffered)"
                         (Wire.buffered dec))
                | n ->
                    Wire.feed dec buf ~pos:0 ~len:n;
                    go ()
                | exception Unix.Unix_error (e, _, _) ->
                    Error (Unix.error_message e))
          end
    in
    go ()

  let raw ~socket ?(timeout = 60.) bytes =
    match connect socket with
    | Error _ as e -> e
    | Ok fd ->
        Fun.protect
          ~finally:(fun () ->
            try Unix.close fd with Unix.Unix_error _ -> ())
        @@ fun () ->
        (match write_all fd bytes with
        | () -> recv_response fd ~until:(Unix.gettimeofday () +. timeout)
        | exception Unix.Unix_error (e, _, _) ->
            Error (Unix.error_message e))

  let request ~socket ?timeout req =
    raw ~socket ?timeout (Wire.encode_frame (Wire.encode_request req))
end
