lib/dsmsim/comm.mli: Format Ilp Lcg Locality
