lib/symbolic/range.ml: Assume Env Expr List Option Probe Qnum String
