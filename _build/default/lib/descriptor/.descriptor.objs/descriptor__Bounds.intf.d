lib/descriptor/bounds.mli: Assume Expr Id Symbolic
