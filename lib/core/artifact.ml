(* Pipeline-level alias: the unified artifact cache lives at the bottom
   of the stack (lib/symbolic) because Range/Probe/Env store into it,
   but callers above the pipeline address it as [Core.Artifact], like
   [Core.Metrics]. *)
include Symbolic.Artifact
