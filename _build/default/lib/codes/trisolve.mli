(** Blocked triangular solve sweep: per-iteration regions that {e grow}
    with the parallel index.

    Each parallel iteration j of SOLVE updates column j of a lower
    triangular matrix reading rows 0..j - a triangular footprint whose
    per-iteration extent depends on the parallel index itself.  The
    descriptor algebra represents this exactly (alpha contains the
    parallel var), but no single CYCLIC(p) distribution balances it and
    the balanced-locality machinery must answer conservatively: the
    value of this kernel is exercising those give-up paths soundly
    (labels degrade to C; the simulator still runs correctly). *)

open Symbolic
open Ir.Types

val params : Assume.t
val program : program
val env : n:int -> Env.t
