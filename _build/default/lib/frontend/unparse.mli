(** IR -> surface-language pretty-printer.

    Produces text that {!Parse.program} accepts; the round trip
    preserves semantics (same access events under every environment),
    which the test suite checks on the benchmark kernels and on random
    programs.  Note the trip is not syntactic: parsing normalizes
    nothing, but unparsing renders each statement as
    [lhs = reads... work N] (or a bare reference when nothing is
    written), so statements with several writes are split. *)

val expr : Format.formatter -> Symbolic.Expr.t -> unit
(** Expression in surface syntax ([2^(e)] for pow2 atoms). *)

val program : Format.formatter -> Ir.Types.program -> unit
val to_string : Ir.Types.program -> string
